(* Randomized fault-injection soak: every engine runs a put workload
   under a seeded schedule of injected append/fsync/rename failures and
   torn tail writes, then crashes, recovers with faults disarmed, and
   must show (a) every acked write survived, (b) scans are sorted and
   free of phantom values, (c) the engine is still usable.

   The base seed matrix runs on every `dune runtest`; CI's fault-soak
   job and local runs can widen it with FAULT_SOAK_SEEDS="9,10,11". *)

open Evendb_util
open Evendb_storage

module type ENGINE = sig
  type t

  val name : string
  val open_ : Env.t -> t
  val close : t -> unit
  val put : t -> string -> string -> unit
  val get : t -> string -> string option
  val scan : t -> low:string -> high:string -> (string * string) list
end

(* All engines run in synchronous-durability mode so that "the put
   returned" means "the write must survive a crash" — the strongest
   contract, and the one fault injection is most likely to break.
   Thresholds are shrunk so flushes, compactions and splits all fire
   inside a few hundred puts. *)

module Evendb_engine : ENGINE = struct
  open Evendb_core

  type t = Db.t

  let name = "evendb"

  let config =
    {
      Config.default with
      persistence = Config.Sync;
      max_chunk_bytes = 8 * 1024;
      munk_rebalance_bytes = 6 * 1024;
      munk_rebalance_appended = 64;
      funk_log_limit_no_munk = 2 * 1024;
      funk_log_limit_with_munk = 8 * 1024;
      munk_cache_capacity = 4;
    }

  let open_ env = Db.open_ ~config env
  let close = Db.close
  let put = Db.put
  let get = Db.get
  let scan t ~low ~high = Db.scan t ~low ~high ()
end

module Lsm_engine : ENGINE = struct
  open Evendb_lsm

  type t = Lsm.t

  let name = "lsm"

  let config =
    {
      Lsm.Config.default with
      memtable_bytes = 2 * 1024;
      level_base_bytes = 8 * 1024;
      target_file_bytes = 4 * 1024;
      sync_writes = true;
    }

  let open_ env = Lsm.open_ ~config env
  let close = Lsm.close
  let put = Lsm.put
  let get = Lsm.get
  let scan t ~low ~high = Lsm.scan t ~low ~high ()
end

module Flsm_engine : ENGINE = struct
  open Evendb_flsm

  type t = Flsm.t

  let name = "flsm"

  let config =
    {
      Flsm.Config.default with
      memtable_bytes = 2 * 1024;
      guard_bytes = 8 * 1024;
      sync_writes = true;
    }

  let open_ env = Flsm.open_ ~config env
  let close = Flsm.close
  let put = Flsm.put
  let get = Flsm.get
  let scan t ~low ~high = Flsm.scan t ~low ~high ()
end

module Evendb_sharded_engine : ENGINE = struct
  open Evendb_core

  type t = Evendb_shard.t

  let name = "evendb-sharded"

  let config =
    {
      Config.default with
      persistence = Config.Sync;
      max_chunk_bytes = 8 * 1024;
      munk_rebalance_bytes = 6 * 1024;
      munk_rebalance_appended = 64;
      funk_log_limit_no_munk = 2 * 1024;
      funk_log_limit_with_munk = 8 * 1024;
      munk_cache_capacity = 4;
    }

  (* Split the soak's k0000..k0039 key range across three shards so
     faults land on every shard's log and on the SHARDS metadata. *)
  let boundaries = [ "k0013"; "k0027" ]

  let open_ env =
    (* First open provisions the SHARDS file and each shard's initial
       log under armed faults; provisioning is not the contract under
       test, so retry until the store comes up (the deterministic plan
       advances on every injected failure, so this terminates). *)
    let rec go n =
      try Evendb_shard.open_ ~config ~boundaries env
      with Env.Io_error _ when n > 0 -> go (n - 1)
    in
    go 1000

  let close = Evendb_shard.close
  let put = Evendb_shard.put
  let get = Evendb_shard.get
  let scan t ~low ~high = Evendb_shard.scan t ~low ~high ()
end

let engines =
  [
    (module Evendb_engine : ENGINE);
    (module Evendb_sharded_engine);
    (module Lsm_engine);
    (module Flsm_engine);
  ]

let key_of i = Printf.sprintf "k%04d" i
let value_of seq = Printf.sprintf "v%08d" seq

let seq_of_value ~ctx v =
  if String.length v <> 9 || v.[0] <> 'v' then
    Alcotest.failf "%s: corrupt value %S" ctx v;
  match int_of_string_opt (String.sub v 1 8) with
  | Some s -> s
  | None -> Alcotest.failf "%s: corrupt value %S" ctx v

(* One soak round: workload under fire -> crash -> clean recovery ->
   verification. [acked] holds the newest sequence number each key's
   successful puts reached; [attempted] the newest tried at all. A
   recovered value may land anywhere in (acked, attempted] — a put
   whose fsync failed after the append can still become durable — but
   below acked is lost durability and above attempted is corruption. *)
let soak (module E : ENGINE) ~seed () =
  let ctx = Printf.sprintf "%s seed %d" E.name seed in
  let plan = Fault.plan ~seed ~rate:0.02 () in
  let env = Env.memory ~faults:plan () in
  let db = E.open_ env in
  let nkeys = 40 in
  let acked = Hashtbl.create nkeys in
  let attempted = Hashtbl.create nkeys in
  let rng = Rng.create ((seed * 7919) + 1) in
  let seq = ref 0 in
  for _ = 1 to 600 do
    incr seq;
    let k = key_of (Rng.int rng nkeys) in
    Hashtbl.replace attempted k !seq;
    try
      E.put db k (value_of !seq);
      Hashtbl.replace acked k !seq
    with Env.Io_error _ -> ()
  done;
  Env.crash env;
  Fault.set_armed plan false;
  Alcotest.(check bool) (ctx ^ ": schedule injected faults") true (Fault.injected plan > 0);
  let db = E.open_ env in
  let check_value k v ~required =
    let s = seq_of_value ~ctx v in
    (match required with
    | Some acked_seq when s < acked_seq ->
      Alcotest.failf "%s: key %s lost durability (recovered seq %d < acked %d)" ctx k s
        acked_seq
    | _ -> ());
    match Hashtbl.find_opt attempted k with
    | Some att when s <= att -> ()
    | _ -> Alcotest.failf "%s: key %s has phantom value %S" ctx k v
  in
  Hashtbl.iter
    (fun k acked_seq ->
      match E.get db k with
      | None -> Alcotest.failf "%s: acked key %s missing after recovery" ctx k
      | Some v -> check_value k v ~required:(Some acked_seq))
    acked;
  let entries = E.scan db ~low:"" ~high:"\xff" in
  let rec check_sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.compare a b >= 0 then
        Alcotest.failf "%s: scan out of order (%S before %S)" ctx a b;
      check_sorted rest
    | _ -> ()
  in
  check_sorted entries;
  List.iter (fun (k, v) -> check_value k v ~required:(Hashtbl.find_opt acked k)) entries;
  Hashtbl.iter
    (fun k _ ->
      if not (List.mem_assoc k entries) then
        Alcotest.failf "%s: acked key %s missing from scan" ctx k)
    acked;
  (* Recovered store must remain fully usable. *)
  E.put db "zzz-post-recovery" "ok";
  Alcotest.(check (option string))
    (ctx ^ ": usable after recovery")
    (Some "ok")
    (E.get db "zzz-post-recovery");
  E.close db

(* A certain fault must surface to the caller as the typed error — not
   a Failure, not a unix exception, not silence — and leave the engine
   usable once the fault clears. *)
let typed_error_surfaces (module E : ENGINE) () =
  let plan = Fault.plan ~seed:99 ~rate:1.0 ~torn_fraction:0.0 () in
  Fault.set_armed plan false;
  let env = Env.memory ~faults:plan () in
  let db = E.open_ env in
  E.put db "a" "1";
  Fault.set_armed plan true;
  (try
     E.put db "b" "2";
     Alcotest.failf "%s: expected Env.Io_error from put under certain fault" E.name
   with
  | Env.Io_error _ -> ()
  | exn ->
    Alcotest.failf "%s: expected Env.Io_error, got %s" E.name (Printexc.to_string exn));
  Fault.set_armed plan false;
  E.put db "c" "3";
  Alcotest.(check (option string)) (E.name ^ ": pre-fault key") (Some "1") (E.get db "a");
  Alcotest.(check (option string)) (E.name ^ ": post-fault key") (Some "3") (E.get db "c");
  E.close db

(* Telemetry guard: a faulty workload must accumulate observable
   residue (counters, spans, per-chunk tables, hot-prefix sketch), and
   one [Db.reset_metrics] must zero all of it. *)
let reset_leaves_no_residue () =
  let open Evendb_core in
  let config =
    {
      Config.default with
      persistence = Config.Sync;
      max_chunk_bytes = 8 * 1024;
      munk_rebalance_bytes = 6 * 1024;
      munk_rebalance_appended = 64;
      funk_log_limit_no_munk = 2 * 1024;
      funk_log_limit_with_munk = 8 * 1024;
      munk_cache_capacity = 4;
    }
  in
  let plan = Fault.plan ~seed:11 ~rate:0.02 () in
  let env = Env.memory ~faults:plan () in
  let db = Db.open_ ~config env in
  for i = 1 to 400 do
    (try Db.put db (key_of (i mod 40)) (value_of i) with Env.Io_error _ -> ());
    if i mod 3 = 0 then
      try ignore (Db.get db (key_of (i mod 40))) with Env.Io_error _ -> ()
  done;
  Fault.set_armed plan false;
  Db.maintain db;
  Alcotest.(check bool)
    "faulty workload accumulated telemetry" true
    (Db.metrics_residue db <> []);
  Db.reset_metrics db;
  Alcotest.(check (list string)) "reset leaves no residue" [] (Db.metrics_residue db);
  Db.close db

let base_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let seeds =
  base_seeds
  @
  match Sys.getenv_opt "FAULT_SOAK_SEEDS" with
  | None | Some "" -> []
  | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)

let suite =
  [
    ( "faults",
      Alcotest.test_case "reset leaves no telemetry residue" `Quick reset_leaves_no_residue
      :: List.concat_map
        (fun (module E : ENGINE) ->
          Alcotest.test_case
            (Printf.sprintf "%s typed error surfaces" E.name)
            `Quick
            (typed_error_surfaces (module E))
          :: List.map
               (fun seed ->
                 Alcotest.test_case
                   (Printf.sprintf "%s soak seed %d" E.name seed)
                   `Quick
                   (soak (module E) ~seed))
               seeds)
        engines );
  ]
