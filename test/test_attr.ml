(* Per-op tail-latency attribution (PR 6): cause-sum invariants, the
   slow-op ring's bound and JSONL export, the fsync-dominance
   acceptance property on a real (disk, sync-durability) store, the
   stall watchdog, and the exporter hygiene satellites (timer min/max,
   Prometheus escaping). *)

open Evendb_storage
open Evendb_core
module Obs = Evendb_obs.Obs
module Attr = Evendb_obs.Attr
module Json = Test_telemetry.Json

let small_config () = Config.scaled ~factor:64 ()

let busy_ns ns =
  let stop = Obs.now_ns () + ns in
  while Obs.now_ns () < stop do
    ()
  done

(* ------------------------------------------------------------------ *)
(* Invariant: for every op kind, the attributed cause time never
   exceeds the op's wall time (outermost-timed-wins makes nested
   sections free, and sequential sections nest inside the op's own
   clock reads). Checked against a real store driving every hot path. *)

let cause_sums_bounded () =
  let db = Db.open_ ~config:(small_config ()) (Env.memory ()) in
  Fun.protect
    ~finally:(fun () -> Db.close db)
    (fun () ->
      for i = 1 to 3_000 do
        Db.put db (Printf.sprintf "key%06d" (i mod 997)) (String.make 120 'v')
      done;
      Db.maintain db;
      for i = 1 to 1_000 do
        ignore (Db.get db (Printf.sprintf "key%06d" (i mod 997)))
      done;
      ignore (Db.scan db ~low:"key" ~high:"kez" ~limit:200 ());
      let attr = Db.attr db in
      let j = Json.parse (Attr.to_json attr) in
      let ops = Json.get "ops" j in
      List.iter
        (fun kind ->
          match ops with
          | Json.Obj kvs when List.mem_assoc kind kvs ->
            let o = List.assoc kind kvs in
            let total = int_of_float (Json.to_num (Json.get "total_ns" o)) in
            let count = int_of_float (Json.to_num (Json.get "count" o)) in
            let causes =
              match Json.get "causes" o with
              | Json.Obj cs -> cs
              | _ -> Alcotest.fail "causes not an object"
            in
            let attributed =
              List.fold_left (fun a (_, v) -> a + int_of_float (Json.to_num v)) 0 causes
            in
            List.iter
              (fun (name, v) ->
                if Json.to_num v < 0.0 then Alcotest.failf "negative cause %s.%s" kind name)
              causes;
            (* One clock-granularity tick of slack per op. *)
            if attributed > total + (count * 1_000) then
              Alcotest.failf "%s: attributed %d ns > op total %d ns over %d ops" kind
                attributed total count
          | _ -> ())
        [ "put"; "get"; "delete"; "scan" ];
      Alcotest.(check bool)
        "puts were counted" true
        (Attr.op_count attr Attr.Put >= 3_000);
      Alcotest.(check bool) "gets were counted" true (Attr.op_count attr Attr.Get >= 1_000);
      (* Global bound across all kinds. *)
      let total_ops =
        List.fold_left (fun a k -> a + Attr.op_total_ns attr k) 0 [ Attr.Put; Attr.Get; Attr.Delete; Attr.Scan ]
      in
      let total_causes =
        List.fold_left (fun a c -> a + Attr.cause_total_ns attr c) 0 Attr.all_causes
      in
      Alcotest.(check bool)
        "causes bounded by op time globally" true
        (total_causes <= total_ops + 5_000_000))

(* ------------------------------------------------------------------ *)
(* The slow-op ring respects its bound under overflow and still counts
   every observation. *)

let ring_bound_under_overflow () =
  let obs = Obs.create () in
  let attr = Attr.create ~threshold_ns:1 ~ring:4 obs in
  let tm = Obs.timer obs "op" in
  for _ = 1 to 100 do
    Attr.with_op attr Attr.Put tm (fun () -> Attr.timed Attr.Fsync (fun () -> busy_ns 2_000))
  done;
  let kept = Attr.slow_ops attr in
  Alcotest.(check int) "ring bound" 4 (List.length kept);
  Alcotest.(check int) "every slow op counted" 100 (Attr.slow_seen attr);
  List.iter
    (fun (s : Attr.slow_op) ->
      Alcotest.(check string) "kind" "put" s.Attr.so_kind;
      Alcotest.(check bool) "dur over threshold" true (s.Attr.so_dur_ns >= 1))
    kept;
  (* Re-arming the threshold clears the ring but not the seen count's
     monotonicity contract: the ring restarts empty. *)
  Attr.set_threshold_ns attr 1_000_000_000;
  Alcotest.(check int) "ring cleared on re-arm" 0 (List.length (Attr.slow_ops attr))

(* ------------------------------------------------------------------ *)
(* The JSONL export round-trips through a real JSON parser, carries the
   tags, and its per-record arithmetic is self-consistent. *)

let jsonl_roundtrip () =
  let obs = Obs.create () in
  let attr = Attr.create ~threshold_ns:1 ~ring:16 obs in
  let tm = Obs.timer obs "op" in
  for i = 1 to 10 do
    Attr.with_op attr
      (if i mod 2 = 0 then Attr.Get else Attr.Put)
      tm
      (fun () ->
        Attr.timed Attr.Disk_read (fun () -> busy_ns 3_000);
        Attr.timed Attr.Lock_wait (fun () -> busy_ns 1_000))
  done;
  let jsonl = Attr.slow_ops_jsonl ~tags:[ ("engine", "test\"engine"); ("phase", "p1") ] attr in
  let lines = String.split_on_char '\n' jsonl |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "one line per retained op" 10 (List.length lines);
  List.iter
    (fun line ->
      let j = Json.parse line in
      Alcotest.(check string) "engine tag survives escaping" "test\"engine"
        (Json.to_str (Json.get "engine" j));
      Alcotest.(check string) "phase tag" "p1" (Json.to_str (Json.get "phase" j));
      let dur = int_of_float (Json.to_num (Json.get "dur_ns" j)) in
      let attributed = int_of_float (Json.to_num (Json.get "attributed_ns" j)) in
      let causes =
        match Json.get "causes" j with
        | Json.Obj cs -> cs
        | _ -> Alcotest.fail "causes not an object"
      in
      let sum = List.fold_left (fun a (_, v) -> a + int_of_float (Json.to_num v)) 0 causes in
      Alcotest.(check int) "attributed_ns = sum(causes)" sum attributed;
      Alcotest.(check bool) "attributed <= dur (+jitter)" true (attributed <= dur + 1_000);
      Alcotest.(check bool) "disk_read recorded" true (List.mem_assoc "disk_read" causes);
      Alcotest.(check bool) "kind present" true (Json.mem "kind" j);
      Alcotest.(check bool) "tid present" true (Json.mem "tid" j);
      Alcotest.(check bool) "threshold present" true (Json.mem "threshold_ns" j))
    lines

(* ------------------------------------------------------------------ *)
(* Acceptance property at reduced scale: on a real disk store in Sync
   persistence, the slow tail (ops over the warmup p95) is >= 80%
   attributed, with fsync the top cause by cumulative time. *)

let fsync_dominates_sync_tail () =
  let dir = Filename.temp_file "evendb_attr" "" in
  Sys.remove dir;
  let config = { (small_config ()) with Config.persistence = Config.Sync } in
  let env = Env.disk dir in
  let db = Db.open_ ~config env in
  Fun.protect
    ~finally:(fun () ->
      Db.close db;
      List.iter (fun name -> try Env.delete env name with _ -> ()) (Env.list_files env);
      try Unix.rmdir dir with _ -> ())
    (fun () ->
      let attr = Db.attr db in
      let value = String.make 200 'v' in
      let key i = Printf.sprintf "key%06d" (i mod 499) in
      (* Warmup: measure this machine's sync-put tail, then re-arm the
         ring at its p95 (the calibrate-then-measure idiom). *)
      let warm = 150 in
      let durs =
        Array.init warm (fun i ->
            let t0 = Obs.now_ns () in
            Db.put db (key i) value;
            Obs.now_ns () - t0)
      in
      Array.sort compare durs;
      let p95 = max 1 durs.(warm * 95 / 100) in
      Attr.set_threshold_ns attr p95;
      for i = 1 to 300 do
        Db.put db (key i) value
      done;
      let slows = Attr.slow_ops attr in
      Alcotest.(check bool)
        (Printf.sprintf "slow ops captured above p95=%dns" p95)
        true (slows <> []);
      let total = List.fold_left (fun a (s : Attr.slow_op) -> a + s.Attr.so_dur_ns) 0 slows in
      let by_cause = Hashtbl.create 8 in
      List.iter
        (fun (s : Attr.slow_op) ->
          List.iter
            (fun (c, ns) ->
              Hashtbl.replace by_cause c (ns + Option.value ~default:0 (Hashtbl.find_opt by_cause c)))
            s.Attr.so_causes)
        slows;
      let attributed = Hashtbl.fold (fun _ ns a -> a + ns) by_cause 0 in
      let top_cause, top_ns =
        Hashtbl.fold (fun c ns ((_, best) as acc) -> if ns > best then (c, ns) else acc)
          by_cause ("-", 0)
      in
      let share = float_of_int attributed /. float_of_int (max 1 total) in
      if share < 0.8 then
        Alcotest.failf "attributed share %.2f < 0.80 (total %dns over %d slow ops)" share total
          (List.length slows);
      if top_cause <> "fsync" then
        Alcotest.failf "top cause %s (%dns), expected fsync (fsync=%dns)" top_cause top_ns
          (Option.value ~default:0 (Hashtbl.find_opt by_cause "fsync")))

(* ------------------------------------------------------------------ *)
(* Stall watchdog: a cause holding a dominant share of the recent
   window trips the counter, fires the hook, and drops a trace event. *)

let watchdog_trips () =
  let obs = Obs.create () in
  let attr =
    Attr.create ~threshold_ns:max_int ~watchdog_share_ppm:100_000 ~watchdog_cooldown_ops:1 obs
  in
  let tm = Obs.timer obs "op" in
  let tripped = ref [] in
  Attr.set_trip_hook attr (fun c -> tripped := c :: !tripped);
  for _ = 1 to 192 do
    Attr.with_op attr Attr.Put tm (fun () -> Attr.timed Attr.Fsync (fun () -> busy_ns 30_000))
  done;
  Alcotest.(check bool) "watchdog tripped" true (Attr.watchdog_trips attr >= 1);
  Alcotest.(check bool) "hook fired" true (!tripped <> []);
  List.iter
    (fun c -> Alcotest.(check string) "fsync blamed" "fsync" (Attr.cause_name c))
    !tripped;
  let events = Obs.Trace.recent (Obs.trace obs) in
  Alcotest.(check bool) "stall_watchdog event in trace" true
    (List.exists (fun e -> e.Obs.Trace.ev_name = "stall_watchdog") events);
  (* Dominant-cause fraction is visible in the decayed gauges. *)
  Alcotest.(check bool) "fsync frac_ppm dominant" true (Attr.frac_ppm attr Attr.Fsync > 100_000);
  Attr.reset attr;
  Alcotest.(check int) "reset clears trips" 0 (Attr.watchdog_trips attr);
  Alcotest.(check int) "reset clears ring" 0 (List.length (Attr.slow_ops attr))

(* ------------------------------------------------------------------ *)
(* Satellite: timers report true min/max (not bucket estimates) in the
   snapshot and the JSON export. *)

let timer_min_max_exact () =
  let obs = Obs.create () in
  let tm = Obs.timer obs "lat" in
  List.iter (Obs.Timer.record_ns tm) [ 5_000; 137; 7_777_777 ];
  let _, _, _, mn, mx, _ = Obs.Timer.summary tm in
  Alcotest.(check int) "summary min" 137 mn;
  Alcotest.(check int) "summary max" 7_777_777 mx;
  let j = Json.parse (Obs.to_json obs) in
  let t = Json.get "lat" (Json.get "timers" j) in
  Alcotest.(check int) "json min_ns" 137 (int_of_float (Json.to_num (Json.get "min_ns" t)));
  Alcotest.(check int) "json max_ns" 7_777_777
    (int_of_float (Json.to_num (Json.get "max_ns" t)));
  match Obs.snapshot obs with
  | { Obs.metrics; _ } -> (
    match List.assoc "lat" metrics with
    | Obs.Timer tm ->
      Alcotest.(check int) "snapshot t_min_ns" 137 tm.Obs.t_min_ns;
      Alcotest.(check int) "snapshot t_max_ns" 7_777_777 tm.Obs.t_max_ns
    | _ -> Alcotest.fail "lat is not a timer")

(* ------------------------------------------------------------------ *)
(* Satellite: Prometheus exposition carries HELP/TYPE lines and escapes
   hostile label values per the exposition format. *)

let prometheus_hygiene () =
  let obs = Obs.create () in
  Obs.Counter.incr (Obs.counter obs "hits");
  Obs.Timer.record_ns (Obs.timer obs "lat") 42_000;
  (* A span name with every character the exposition format escapes in
     label values: backslash, double quote, newline. *)
  let hostile = "evil\"name\\with\nnewline" in
  Obs.Trace.with_span (Obs.trace obs) ~name:hostile (fun _ -> ());
  let out = Obs.to_prometheus obs in
  let contains sub =
    let n = String.length out and m = String.length sub in
    let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "HELP line for counters" true (contains "# HELP evendb_hits");
  Alcotest.(check bool) "TYPE line for counters" true (contains "# TYPE evendb_hits counter");
  Alcotest.(check bool) "TYPE line for timers" true (contains "# TYPE evendb_lat_ns summary");
  Alcotest.(check bool) "timer min sample" true (contains "evendb_lat_ns_min");
  Alcotest.(check bool) "timer max sample" true (contains "evendb_lat_ns_max");
  Alcotest.(check bool) "span HELP line" true (contains "# HELP evendb_span_count");
  Alcotest.(check bool)
    "hostile label value escaped" true
    (contains "evil\\\"name\\\\with\\nnewline");
  (* The raw (unescaped) forms must not appear inside a label value:
     every quote in the output is either a label delimiter or escaped. *)
  String.iteri
    (fun i c ->
      if c = '\n' && i > 0 && out.[i - 1] = 'h' then
        (* 'h' is the last char of "...with" — a raw newline there would
           mean the label leaked unescaped. *)
        Alcotest.fail "raw newline inside label value")
    out

let suite =
  [
    ( "attr",
      [
        Alcotest.test_case "cause sums bounded by op time" `Quick cause_sums_bounded;
        Alcotest.test_case "slow ring bound under overflow" `Quick ring_bound_under_overflow;
        Alcotest.test_case "slow-op JSONL round-trip" `Quick jsonl_roundtrip;
        Alcotest.test_case "fsync dominates sync-put tail (disk)" `Quick fsync_dominates_sync_tail;
        Alcotest.test_case "stall watchdog trips" `Quick watchdog_trips;
        Alcotest.test_case "timer min/max exact" `Quick timer_min_max_exact;
        Alcotest.test_case "prometheus HELP/TYPE + label escaping" `Quick prometheus_hygiene;
      ] );
  ]
