(* Unit and property tests for the utility substrate: varint, CRC-32C,
   bit tricks, RNG, Zipfian and power-law distributions, histogram,
   shared/exclusive lock, and the KV iterator algebra. *)

open Evendb_util

let qtest = QCheck_alcotest.to_alcotest

(* ---- Varint ---- *)

let varint_roundtrip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 16 in
      Varint.write buf n;
      let v, next = Varint.read (Buffer.contents buf) 0 in
      Alcotest.(check int) "value" n v;
      Alcotest.(check int) "consumed" (Buffer.length buf) next;
      Alcotest.(check int) "size" (Buffer.length buf) (Varint.encoded_size n))
    [ 0; 1; 127; 128; 129; 16383; 16384; 1 lsl 20; 1 lsl 40; max_int ]

let varint_sequence () =
  let buf = Buffer.create 64 in
  let values = [ 5; 300; 0; max_int; 77 ] in
  List.iter (Varint.write buf) values;
  let s = Buffer.contents buf in
  let rec check pos = function
    | [] -> Alcotest.(check int) "consumed all" (String.length s) pos
    | v :: rest ->
      let got, next = Varint.read s pos in
      Alcotest.(check int) "element" v got;
      check next rest
  in
  check 0 values

let varint_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Varint.write: negative") (fun () ->
      Varint.write (Buffer.create 4) (-1))

let varint_truncated () =
  let buf = Buffer.create 4 in
  Varint.write buf 300;
  let s = String.sub (Buffer.contents buf) 0 1 in
  Alcotest.check_raises "truncated" (Invalid_argument "Varint.read: truncated") (fun () ->
      ignore (Varint.read s 0))

let varint_qcheck =
  QCheck.Test.make ~name:"varint roundtrip (random)" ~count:500
    QCheck.(small_nat)
    (fun n ->
      let buf = Buffer.create 16 in
      Varint.write buf n;
      fst (Varint.read (Buffer.contents buf) 0) = n)

let varint_bytes_roundtrip =
  QCheck.Test.make ~name:"varint write_bytes/read_bytes" ~count:200 QCheck.small_nat (fun n ->
      let b = Bytes.create 16 in
      let stop = Varint.write_bytes b 3 n in
      let v, next = Varint.read_bytes b 3 in
      v = n && next = stop)

(* ---- CRC-32C ---- *)

let crc_known_vectors () =
  (* Standard CRC-32C test vector: "123456789" -> 0xE3069283. *)
  Alcotest.(check int32) "123456789" 0xE3069283l (Crc32c.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32c.string "")

let crc_mask_roundtrip =
  QCheck.Test.make ~name:"crc mask/unmask" ~count:500 QCheck.string (fun s ->
      let crc = Crc32c.string s in
      Crc32c.unmask (Crc32c.mask crc) = crc)

let crc_detects_flip =
  QCheck.Test.make ~name:"crc detects single-byte corruption" ~count:200
    QCheck.(string_of_size Gen.(int_range 1 64))
    (fun s ->
      let b = Bytes.of_string s in
      let i = String.length s / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
      Crc32c.string (Bytes.to_string b) <> Crc32c.string s)

let crc_bytes_slice () =
  let b = Bytes.of_string "xxhello worldyy" in
  Alcotest.(check int32) "slice" (Crc32c.string "hello world") (Crc32c.bytes b ~pos:2 ~len:11)

(* ---- Bits ---- *)

let bits_clz_exhaustive () =
  (* Every power of two and its neighbours, across the whole 62-bit
     range — a shift-overflow bug once lurked exactly at 2^15/2^31. *)
  for p = 0 to 61 do
    let v = 1 lsl p in
    Alcotest.(check int) (Printf.sprintf "clz 2^%d" p) (62 - p) (Bits.clz63 v);
    if v > 1 then
      Alcotest.(check int) (Printf.sprintf "clz 2^%d-1" p) (62 - (p - 1)) (Bits.clz63 (v - 1));
    if p >= 1 && p < 61 then
      Alcotest.(check int) (Printf.sprintf "clz 2^%d+1" p) (62 - p) (Bits.clz63 (v + 1))
  done

let bits_clz_qcheck =
  QCheck.Test.make ~name:"clz63 matches float log2" ~count:1000
    QCheck.(int_range 1 max_int)
    (fun v ->
      let expected = 62 - int_of_float (Float.log2 (float_of_int v) +. 1e-9) in
      (* float log2 is exact enough below 2^52; above, verify
         monotonically instead *)
      if v < 1 lsl 52 then Bits.clz63 v = expected
      else Bits.clz63 v >= 0 && Bits.clz63 v <= 10)

let bits_clz () =
  Alcotest.(check int) "clz 1" 62 (Bits.clz63 1);
  Alcotest.(check int) "clz 0" 63 (Bits.clz63 0);
  Alcotest.(check int) "clz max" 1 (Bits.clz63 max_int);
  Alcotest.(check int) "ceil_log2 1" 0 (Bits.ceil_log2 1);
  Alcotest.(check int) "ceil_log2 2" 1 (Bits.ceil_log2 2);
  Alcotest.(check int) "ceil_log2 3" 2 (Bits.ceil_log2 3);
  Alcotest.(check int) "next_pow2 100" 128 (Bits.next_pow2 100)

(* ---- RNG ---- *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_bounds =
  QCheck.Test.make ~name:"rng int bounds" ~count:500
    QCheck.(pair small_nat (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let rng_float_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int64 a) in
  let ys = List.init 20 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

(* ---- Zipf ---- *)

let zipf_range =
  QCheck.Test.make ~name:"zipf samples in range" ~count:500
    QCheck.(int_range 1 10_000)
    (fun n ->
      let z = Zipf.create n in
      let r = Rng.create n in
      let v = Zipf.next z r in
      v >= 0 && v < n)

let zipf_skew () =
  (* Rank 0 must dominate: with theta 0.99 over 1000 items it should
     receive >= 5% of the mass empirically. *)
  let z = Zipf.create ~theta:0.99 1000 in
  let r = Rng.create 3 in
  let hits = ref 0 in
  let total = 20_000 in
  for _ = 1 to total do
    if Zipf.next z r = 0 then incr hits
  done;
  Alcotest.(check bool) "head heavy" true (float_of_int !hits /. float_of_int total > 0.05)

let zipf_probability_sums () =
  let z = Zipf.create ~theta:0.9 100 in
  let sum = ref 0.0 in
  for i = 0 to 99 do
    sum := !sum +. Zipf.probability z i
  done;
  Alcotest.(check bool) "probabilities sum to 1" true (Float.abs (!sum -. 1.0) < 1e-9)

let zipf_monotone () =
  let z = Zipf.create ~theta:0.9 100 in
  for i = 0 to 98 do
    if Zipf.probability z i < Zipf.probability z (i + 1) then
      Alcotest.fail "probability not monotone in rank"
  done

let zipf_scramble_stable =
  QCheck.Test.make ~name:"scramble is stable and in range" ~count:500
    QCheck.(pair (int_range 1 100000) small_nat)
    (fun (n, rank) ->
      let a = Zipf.scramble n rank and b = Zipf.scramble n rank in
      a = b && a >= 0 && a < n)

let zipf_theta_frequencies () =
  (* Table 3's left column: theoretical head frequency at theta=0.99
     over the paper's key count magnitude should be close to 4.87%. *)
  let z = Zipf.create ~theta:0.99 (1 lsl 20) in
  let head = Zipf.probability z 0 *. 100.0 in
  Alcotest.(check bool) "head frequency plausible" true (head > 3.0 && head < 8.0)

(* ---- Power law ---- *)

let power_law_coverage () =
  let p = Power_law.create ~exponent:1.7 2000 in
  let cov = Power_law.head_coverage p ~fraction:0.01 in
  Alcotest.(check bool) "heavy head" true (cov > 0.8)

let power_law_range =
  QCheck.Test.make ~name:"power law samples in range" ~count:300
    QCheck.(int_range 1 5000)
    (fun n ->
      let p = Power_law.create ~exponent:1.3 n in
      let r = Rng.create n in
      let v = Power_law.next p r in
      v >= 0 && v < n)

let power_law_probability () =
  let p = Power_law.create ~exponent:1.5 100 in
  let sum = ref 0.0 in
  for i = 0 to 99 do
    sum := !sum +. Power_law.probability p i
  done;
  Alcotest.(check bool) "sums to 1" true (Float.abs (!sum -. 1.0) < 1e-9)

(* ---- Histogram ---- *)

let histogram_exact_small () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  Alcotest.(check int) "count" 10 (Histogram.count h);
  Alcotest.(check int) "min" 1 (Histogram.min_value h);
  Alcotest.(check int) "max" 10 (Histogram.max_value h);
  Alcotest.(check int) "p50" 5 (Histogram.percentile h 50.0);
  Alcotest.(check int) "p100" 10 (Histogram.percentile h 100.0);
  Alcotest.(check (float 0.001)) "mean" 5.5 (Histogram.mean h)

let histogram_relative_error =
  QCheck.Test.make ~name:"histogram p100 within 2% of max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (int_range 1 (1 lsl 40)))
    (fun values ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) values;
      let max_v = List.fold_left max 0 values in
      let p100 = Histogram.percentile h 100.0 in
      abs (p100 - max_v) <= (max_v / 50) + 1)

let histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 100;
  Histogram.record b 200;
  Histogram.merge_into ~src:b ~dst:a;
  Alcotest.(check int) "merged count" 2 (Histogram.count a);
  Alcotest.(check int) "merged max" 200 (Histogram.max_value a)

let histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty percentile" 0 (Histogram.percentile h 99.0);
  Alcotest.(check int) "empty min" 0 (Histogram.min_value h)

let histogram_percentiles () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.record h i
  done;
  (* One-pass extraction must agree with repeated single queries, even
     when the requested quantiles arrive out of order. *)
  let qs = [ 99.0; 50.0; 95.0 ] in
  Alcotest.(check (list int))
    "multi = repeated single"
    (List.map (Histogram.percentile h) qs)
    (Histogram.percentiles h qs);
  Alcotest.(check (list int)) "empty list" [] (Histogram.percentiles h []);
  let empty = Histogram.create () in
  Alcotest.(check (list int)) "empty histogram" [ 0; 0 ] (Histogram.percentiles empty [ 50.0; 99.0 ])

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let histogram_pp () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 3 ];
  let s = Format.asprintf "%a" Histogram.pp h in
  Alcotest.(check bool) "mentions count" true (contains_substring ~sub:"count=3" s)

let histogram_all_magnitudes () =
  (* One value at every power of two: recording and percentile lookup
     must stay in bounds across the whole range. *)
  let h = Histogram.create () in
  for p = 0 to 61 do
    Histogram.record h (1 lsl p)
  done;
  Alcotest.(check int) "count" 62 (Histogram.count h);
  Alcotest.(check bool) "p100 at top" true (Histogram.percentile h 100.0 >= 1 lsl 61)

let histogram_reset () =
  let h = Histogram.create () in
  Histogram.record h 5;
  Histogram.reset h;
  Alcotest.(check int) "after reset" 0 (Histogram.count h)

(* ---- Rwlock ---- *)

let rwlock_shared_parallel () =
  let l = Rwlock.create () in
  Rwlock.lock_shared l;
  Rwlock.lock_shared l;
  (* Two readers coexist; a writer cannot enter. *)
  Alcotest.(check bool) "no writer while readers" false (Rwlock.try_lock_exclusive l);
  Rwlock.unlock_shared l;
  Rwlock.unlock_shared l;
  Alcotest.(check bool) "writer after readers gone" true (Rwlock.try_lock_exclusive l);
  Rwlock.unlock_exclusive l

let rwlock_writer_blocks_writer () =
  let l = Rwlock.create () in
  Rwlock.lock_exclusive l;
  Alcotest.(check bool) "second writer rejected" false (Rwlock.try_lock_exclusive l);
  Rwlock.unlock_exclusive l

let rwlock_threads () =
  let l = Rwlock.create () in
  let counter = ref 0 in
  let workers =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 1000 do
              Rwlock.lock_exclusive l;
              incr counter;
              Rwlock.unlock_exclusive l
            done)
          ())
  in
  List.iter Thread.join workers;
  Alcotest.(check int) "writer mutual exclusion" 4000 !counter

(* ---- Kv_iter ---- *)

let e ?(version = 0) ?(counter = 0) ?value key : Kv_iter.entry =
  { key; value; version; counter }

let entry_order () =
  Alcotest.(check bool) "key order" true (Kv_iter.compare_entries (e "a") (e "b") < 0);
  Alcotest.(check bool) "newest first" true
    (Kv_iter.compare_entries (e ~version:5 "a") (e ~version:3 "a") < 0);
  Alcotest.(check bool) "counter tiebreak" true
    (Kv_iter.compare_entries (e ~version:5 ~counter:2 "a") (e ~version:5 ~counter:1 "a") < 0)

let merge_sorted () =
  let a = Kv_iter.of_list [ e "a"; e "c"; e "e" ] in
  let b = Kv_iter.of_list [ e "b"; e "d" ] in
  let merged = Kv_iter.to_list (Kv_iter.merge [ a; b ]) in
  Alcotest.(check (list string)) "merged order" [ "a"; "b"; "c"; "d"; "e" ]
    (List.map (fun (x : Kv_iter.entry) -> x.key) merged)

let merge_qcheck =
  QCheck.Test.make ~name:"merge of sorted lists is sorted" ~count:200
    QCheck.(pair (list (pair (string_of_size Gen.(int_range 1 4)) small_nat)) (list (pair (string_of_size Gen.(int_range 1 4)) small_nat)))
    (fun (xs, ys) ->
      let entries l =
        List.sort Kv_iter.compare_entries
          (List.map (fun (k, v) -> e ~version:v ("k" ^ k)) l)
      in
      let merged = Kv_iter.to_list (Kv_iter.merge [ Kv_iter.of_list (entries xs); Kv_iter.of_list (entries ys) ]) in
      let rec sorted = function
        | a :: (b :: _ as rest) -> Kv_iter.compare_entries a b <= 0 && sorted rest
        | _ -> true
      in
      sorted merged && List.length merged = List.length xs + List.length ys)

let dedup_keeps_newest () =
  let it =
    Kv_iter.of_list [ e ~version:9 ~value:"new" "a"; e ~version:3 ~value:"old" "a"; e "b" ]
  in
  match Kv_iter.to_list (Kv_iter.dedup it) with
  | [ first; second ] ->
    Alcotest.(check string) "key a" "a" first.Kv_iter.key;
    Alcotest.(check (option string)) "newest value" (Some "new") first.Kv_iter.value;
    Alcotest.(check string) "key b" "b" second.Kv_iter.key
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l)

let compact_no_floor () =
  (* Without a retained floor, only the newest version survives and
     newest tombstones are dropped. *)
  let it =
    Kv_iter.of_list
      [
        e ~version:9 ~value:"v9" "a"; e ~version:3 ~value:"v3" "a";
        e ~version:5 "b" (* tombstone *); e ~version:2 ~value:"old" "b";
      ]
  in
  let out = Kv_iter.to_list (Kv_iter.compact it) in
  Alcotest.(check int) "one survivor" 1 (List.length out);
  Alcotest.(check string) "a survives" "a" (List.hd out).Kv_iter.key;
  Alcotest.(check int) "newest version" 9 (List.hd out).Kv_iter.version

let compact_with_floor () =
  (* Floor 5: for key a with versions 9,5,3 -> keep 9 and 5 (5 is the
     newest version <= 5), drop 3. *)
  let it =
    Kv_iter.of_list
      [ e ~version:9 ~value:"v9" "a"; e ~version:5 ~value:"v5" "a"; e ~version:3 ~value:"v3" "a" ]
  in
  let out = Kv_iter.to_list (Kv_iter.compact ~min_retained_version:5 it) in
  Alcotest.(check (list int)) "versions retained" [ 9; 5 ]
    (List.map (fun (x : Kv_iter.entry) -> x.version) out)

let compact_keeps_tombstone_with_floor () =
  (* A tombstone shielding an older retained version must stay. *)
  let it =
    Kv_iter.of_list [ e ~version:9 "a" (* tombstone *); e ~version:2 ~value:"old" "a" ]
  in
  let out = Kv_iter.to_list (Kv_iter.compact ~min_retained_version:3 it) in
  Alcotest.(check int) "both retained" 2 (List.length out);
  Alcotest.(check bool) "newest is tombstone" true ((List.hd out).Kv_iter.value = None)

let compact_drop_tombstones_false () =
  let it = Kv_iter.of_list [ e ~version:5 "b" ] in
  let out = Kv_iter.to_list (Kv_iter.compact ~drop_tombstones:false it) in
  Alcotest.(check int) "tombstone kept" 1 (List.length out)

let compact_model =
  (* Model check: compact with no floor == newest entry per key,
     minus keys whose newest entry is a tombstone. *)
  QCheck.Test.make ~name:"compact matches map model" ~count:300
    QCheck.(list (triple (string_of_size Gen.(int_range 1 2)) (int_range 0 20) bool))
    (fun ops ->
      let entries =
        List.mapi
          (fun i (k, v, del) ->
            e ~version:v ~counter:i ?value:(if del then None else Some (string_of_int v)) ("k" ^ k))
          ops
      in
      let sorted = List.sort Kv_iter.compare_entries entries in
      let compacted = Kv_iter.to_list (Kv_iter.compact (Kv_iter.of_list sorted)) in
      let module M = Map.Make (String) in
      let model =
        List.fold_left
          (fun m (x : Kv_iter.entry) ->
            match M.find_opt x.key m with
            | Some (best : Kv_iter.entry) when Kv_iter.entry_newer best x -> m
            | _ -> M.add x.key x m)
          M.empty entries
      in
      let expected = M.filter (fun _ (x : Kv_iter.entry) -> x.value <> None) model in
      List.length compacted = M.cardinal expected
      && List.for_all
           (fun (x : Kv_iter.entry) ->
             match M.find_opt x.key expected with
             | Some best -> best.version = x.version && best.counter = x.counter
             | None -> false)
           compacted)

let filter_map_list () =
  let it = Kv_iter.of_list [ e ~version:1 "a"; e ~version:2 "b" ] in
  let out = Kv_iter.to_list (Kv_iter.filter (fun x -> x.Kv_iter.version > 1) it) in
  Alcotest.(check int) "filtered" 1 (List.length out)

let suite =
  [
    ( "varint",
      [
        Alcotest.test_case "roundtrip" `Quick varint_roundtrip;
        Alcotest.test_case "sequence" `Quick varint_sequence;
        Alcotest.test_case "negative rejected" `Quick varint_negative;
        Alcotest.test_case "truncated rejected" `Quick varint_truncated;
        qtest varint_qcheck;
        qtest varint_bytes_roundtrip;
      ] );
    ( "crc32c",
      [
        Alcotest.test_case "known vectors" `Quick crc_known_vectors;
        Alcotest.test_case "bytes slice" `Quick crc_bytes_slice;
        qtest crc_mask_roundtrip;
        qtest crc_detects_flip;
      ] );
    ( "bits",
      [
        Alcotest.test_case "clz and log2" `Quick bits_clz;
        Alcotest.test_case "clz exhaustive powers" `Quick bits_clz_exhaustive;
        qtest bits_clz_qcheck;
      ] );
    ( "rng",
      [
        Alcotest.test_case "deterministic" `Quick rng_deterministic;
        Alcotest.test_case "float range" `Quick rng_float_range;
        Alcotest.test_case "split independence" `Quick rng_split_independent;
        qtest rng_bounds;
      ] );
    ( "zipf",
      [
        Alcotest.test_case "head skew" `Quick zipf_skew;
        Alcotest.test_case "probability sums" `Quick zipf_probability_sums;
        Alcotest.test_case "probability monotone" `Quick zipf_monotone;
        Alcotest.test_case "theta head frequency" `Quick zipf_theta_frequencies;
        qtest zipf_range;
        qtest zipf_scramble_stable;
      ] );
    ( "power_law",
      [
        Alcotest.test_case "head coverage" `Quick power_law_coverage;
        Alcotest.test_case "probability sums" `Quick power_law_probability;
        qtest power_law_range;
      ] );
    ( "histogram",
      [
        Alcotest.test_case "exact small values" `Quick histogram_exact_small;
        Alcotest.test_case "merge" `Quick histogram_merge;
        Alcotest.test_case "empty" `Quick histogram_empty;
        Alcotest.test_case "reset" `Quick histogram_reset;
        Alcotest.test_case "all magnitudes in bounds" `Quick histogram_all_magnitudes;
        Alcotest.test_case "one-pass percentiles" `Quick histogram_percentiles;
        Alcotest.test_case "pp" `Quick histogram_pp;
        qtest histogram_relative_error;
      ] );
    ( "rwlock",
      [
        Alcotest.test_case "shared then exclusive" `Quick rwlock_shared_parallel;
        Alcotest.test_case "writer excludes writer" `Quick rwlock_writer_blocks_writer;
        Alcotest.test_case "threaded counter" `Quick rwlock_threads;
      ] );
    ( "kv_iter",
      [
        Alcotest.test_case "entry ordering" `Quick entry_order;
        Alcotest.test_case "merge sorted" `Quick merge_sorted;
        Alcotest.test_case "dedup keeps newest" `Quick dedup_keeps_newest;
        Alcotest.test_case "compact no floor" `Quick compact_no_floor;
        Alcotest.test_case "compact with floor" `Quick compact_with_floor;
        Alcotest.test_case "compact keeps shielding tombstone" `Quick compact_keeps_tombstone_with_floor;
        Alcotest.test_case "compact keeps tombstone when asked" `Quick compact_drop_tombstones_false;
        Alcotest.test_case "filter" `Quick filter_map_list;
        qtest merge_qcheck;
        qtest compact_model;
      ] );
  ]
