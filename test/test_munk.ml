(* Munk tests: the array-based linked list with sorted prefix and
   bypasses — ordering, versioned lookups, in-place overwrites,
   rebalance, splits, and a model-based property test. *)

open Evendb_util
open Evendb_munk.Munk

let qtest = QCheck_alcotest.to_alcotest

let e ?(version = 0) ?(counter = 0) ?value key : Kv_iter.entry = { key; value; version; counter }

let always_discard ~old_version:_ ~new_version:_ = true
let never_discard ~old_version:_ ~new_version:_ = false

let of_sorted_and_find () =
  let m = of_sorted [ e ~value:"a" "ka"; e ~value:"b" "kb"; e ~value:"c" "kc" ] in
  Alcotest.(check int) "count" 3 (entry_count m);
  Alcotest.(check (option string)) "find kb" (Some "b")
    (Option.bind (find_latest m "kb") (fun x -> x.Kv_iter.value));
  Alcotest.(check bool) "absent" true (find_latest m "kz" = None);
  Alcotest.(check bool) "below range" true (find_latest m "a" = None)

let out_of_order_rejected () =
  try
    ignore (of_sorted [ e "b"; e "a" ]);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let bypass_inserts () =
  let m = of_sorted [ e ~value:"1" "b"; e ~value:"3" "f" ] in
  put m (e ~version:1 ~value:"2" "d");
  put m (e ~version:1 ~value:"0" "a"); (* before the prefix head *)
  put m (e ~version:1 ~value:"4" "z"); (* after the prefix tail *)
  let keys = List.map (fun (x : Kv_iter.entry) -> x.key) (Kv_iter.to_list (iter m)) in
  Alcotest.(check (list string)) "list order with bypasses" [ "a"; "b"; "d"; "f"; "z" ] keys;
  Alcotest.(check int) "appended" 3 (appended_count m)

let version_chain () =
  let m = of_sorted [] in
  put m (e ~version:1 ~counter:0 ~value:"v1" "k");
  put m (e ~version:5 ~counter:1 ~value:"v5" "k");
  put m (e ~version:9 ~counter:2 ~value:"v9" "k");
  Alcotest.(check int) "all versions retained (never discard)" 3 (entry_count m);
  Alcotest.(check (option string)) "latest" (Some "v9")
    (Option.bind (find_latest m "k") (fun x -> x.Kv_iter.value));
  Alcotest.(check (option string)) "at 6" (Some "v5")
    (Option.bind (find_latest m ~max_version:6 "k") (fun x -> x.Kv_iter.value));
  Alcotest.(check (option string)) "at 1" (Some "v1")
    (Option.bind (find_latest m ~max_version:1 "k") (fun x -> x.Kv_iter.value));
  Alcotest.(check bool) "below all" true (find_latest m ~max_version:0 "k" = None)

let in_place_overwrite () =
  let m = of_sorted [] in
  put m (e ~version:1 ~counter:0 ~value:"v1" "k");
  put m ~may_discard:always_discard (e ~version:2 ~counter:1 ~value:"v2" "k");
  Alcotest.(check int) "overwritten in place" 1 (entry_count m);
  Alcotest.(check (option string)) "new value" (Some "v2")
    (Option.bind (find_latest m "k") (fun x -> x.Kv_iter.value))

let stale_put_does_not_clobber () =
  (* A put with an older (version, counter) must not overwrite a newer
     entry, even when discards are allowed. *)
  let m = of_sorted [] in
  put m (e ~version:5 ~counter:8 ~value:"newer" "k");
  put m ~may_discard:always_discard (e ~version:5 ~counter:2 ~value:"older" "k");
  Alcotest.(check (option string)) "newest wins" (Some "newer")
    (Option.bind (find_latest m "k") (fun x -> x.Kv_iter.value))

let tombstone_lookup () =
  let m = of_sorted [ e ~version:1 ~value:"v" "k" ] in
  put m (e ~version:3 ~counter:1 "k");
  (match find_latest m "k" with
  | Some { Kv_iter.value = None; _ } -> ()
  | _ -> Alcotest.fail "expected tombstone");
  match find_latest m ~max_version:2 "k" with
  | Some { Kv_iter.value = Some "v"; _ } -> ()
  | _ -> Alcotest.fail "old version reachable below tombstone"

let iter_range_bounds () =
  let m = of_sorted (List.init 10 (fun i -> e ~value:"v" (Printf.sprintf "k%02d" i))) in
  let keys it = List.map (fun (x : Kv_iter.entry) -> x.key) (Kv_iter.to_list it) in
  Alcotest.(check (list string)) "middle range" [ "k03"; "k04"; "k05" ]
    (keys (iter_range m ~low:"k03" ~high:"k05"));
  Alcotest.(check (list string)) "from below" [ "k00" ] (keys (iter_range m ~low:"" ~high:"k00"));
  Alcotest.(check (list string)) "empty range" [] (keys (iter_range m ~low:"k08" ~high:"k07"))

let rebalance_compacts () =
  let m = of_sorted [] in
  for v = 1 to 10 do
    put m (e ~version:v ~counter:v ~value:(string_of_int v) "k")
  done;
  Alcotest.(check int) "versions pile up" 10 (entry_count m);
  let m' = rebalance m ~min_retained_version:None in
  Alcotest.(check int) "compacted to newest" 1 (entry_count m');
  Alcotest.(check (option string)) "newest kept" (Some "10")
    (Option.bind (find_latest m' "k") (fun x -> x.Kv_iter.value));
  Alcotest.(check int) "appended reset" 0 (appended_count m')

let rebalance_retains_floor () =
  let m = of_sorted [] in
  List.iter (fun v -> put m (e ~version:v ~counter:v ~value:(string_of_int v) "k")) [ 2; 5; 9 ];
  let m' = rebalance m ~min_retained_version:(Some 6) in
  (* Keep 9 (newest) and 5 (newest <= 6); drop 2. *)
  Alcotest.(check int) "two retained" 2 (entry_count m');
  Alcotest.(check (option string)) "floor version reachable" (Some "5")
    (Option.bind (find_latest m' ~max_version:6 "k") (fun x -> x.Kv_iter.value))

let rebalance_drops_tombstoned_key () =
  let m = of_sorted [ e ~version:1 ~value:"v" "k"; e ~version:0 ~value:"w" "other" ] in
  put m (e ~version:3 ~counter:1 "k");
  let m' = rebalance m ~min_retained_version:None in
  Alcotest.(check bool) "tombstoned key removed" true (find_latest m' "k" = None);
  Alcotest.(check int) "other key kept" 1 (entry_count m')

let split_halves () =
  let m =
    of_sorted (List.init 20 (fun i -> e ~value:(String.make 40 'x') (Printf.sprintf "k%02d" i)))
  in
  let left, right = split_entries m ~min_retained_version:None in
  Alcotest.(check int) "no loss" 20 (List.length left + List.length right);
  Alcotest.(check bool) "both non-empty" true (left <> [] && right <> []);
  let last_left = (List.nth left (List.length left - 1) : Kv_iter.entry).key in
  let first_right = (List.hd right : Kv_iter.entry).key in
  Alcotest.(check bool) "disjoint ordered halves" true (String.compare last_left first_right < 0)

let split_single_key () =
  let m = of_sorted [ e ~value:"v" "only" ] in
  let left, right = split_entries m ~min_retained_version:None in
  Alcotest.(check int) "left has it" 1 (List.length left);
  Alcotest.(check int) "right empty" 0 (List.length right)

let split_keeps_versions_together () =
  let m = of_sorted [] in
  (* One fat multi-version key plus neighbours. *)
  List.iter (fun v -> put m (e ~version:v ~counter:v ~value:(String.make 60 'x') "mid")) [ 1; 2; 3 ];
  put m (e ~version:1 ~value:(String.make 60 'y') "aaa");
  put m (e ~version:1 ~value:(String.make 60 'z') "zzz");
  let left, right = split_entries m ~min_retained_version:(Some 0) in
  let sides_of_mid =
    List.filter (fun (x : Kv_iter.entry) -> x.key = "mid") left,
    List.filter (fun (x : Kv_iter.entry) -> x.key = "mid") right
  in
  match sides_of_mid with
  | [], [] -> Alcotest.fail "mid lost"
  | l, [] -> Alcotest.(check int) "all versions left" 3 (List.length l)
  | [], r -> Alcotest.(check int) "all versions right" 3 (List.length r)
  | _ -> Alcotest.fail "versions of one key split across halves"

let grow_beyond_initial_capacity () =
  let m = of_sorted [] in
  for i = 0 to 499 do
    put m (e ~version:i ~counter:i ~value:"v" (Printf.sprintf "k%05d" (i * 7 mod 500)))
  done;
  Alcotest.(check int) "all inserted" 500 (entry_count m);
  Alcotest.(check bool) "still searchable" true (find_latest m "k00007" <> None)

let model_property =
  QCheck.Test.make ~name:"munk matches map model" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 100) (pair (int_range 0 30) (option (string_of_size (Gen.return 3)))))
    (fun ops ->
      let m = of_sorted [] in
      let module M = Map.Make (String) in
      let model = ref M.empty in
      List.iteri
        (fun i (k, v) ->
          let key = Printf.sprintf "key%02d" k in
          put m (e ~version:1 ~counter:i ?value:v key);
          model := M.add key v !model)
        ops;
      M.for_all
        (fun key v ->
          match find_latest m key with
          | Some found -> found.Kv_iter.value = v
          | None -> false)
        !model)

let byte_size_tracks () =
  let m = of_sorted [] in
  let before = byte_size m in
  put m (e ~version:1 ~value:(String.make 100 'v') "key");
  Alcotest.(check bool) "grew by at least payload" true (byte_size m - before >= 103)

let suite =
  [
    ( "munk",
      [
        Alcotest.test_case "of_sorted + find" `Quick of_sorted_and_find;
        Alcotest.test_case "out-of-order rejected" `Quick out_of_order_rejected;
        Alcotest.test_case "bypass inserts keep order" `Quick bypass_inserts;
        Alcotest.test_case "version chain lookups" `Quick version_chain;
        Alcotest.test_case "in-place overwrite" `Quick in_place_overwrite;
        Alcotest.test_case "stale put does not clobber" `Quick stale_put_does_not_clobber;
        Alcotest.test_case "tombstone lookup" `Quick tombstone_lookup;
        Alcotest.test_case "iter_range bounds" `Quick iter_range_bounds;
        Alcotest.test_case "rebalance compacts versions" `Quick rebalance_compacts;
        Alcotest.test_case "rebalance honors floor" `Quick rebalance_retains_floor;
        Alcotest.test_case "rebalance drops tombstoned keys" `Quick rebalance_drops_tombstoned_key;
        Alcotest.test_case "split into ordered halves" `Quick split_halves;
        Alcotest.test_case "split single key" `Quick split_single_key;
        Alcotest.test_case "split keeps versions together" `Quick split_keeps_versions_together;
        Alcotest.test_case "growth" `Quick grow_beyond_initial_capacity;
        Alcotest.test_case "byte size tracking" `Quick byte_size_tracks;
        qtest model_property;
      ] );
  ]

(* ---- Concurrency regression: readers during array growth ---- *)

let concurrent_growth_readers () =
  (* A reader may follow a next-pointer published into a freshly grown
     array; it must re-fetch the container instead of faulting (a real
     bug found by the benchmark harness). *)
  let m = of_sorted [] in
  let stop = Atomic.make false in
  let errors = Atomic.make 0 in
  let readers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              (try
                 ignore (find_latest m "k00500");
                 ignore (Kv_iter.to_list (iter_range m ~low:"k00100" ~high:"k00200"))
               with _ -> Atomic.incr errors)
            done))
  in
  for i = 0 to 4999 do
    put m (e ~version:i ~counter:i ~value:"v" (Printf.sprintf "k%05d" (i * 7 mod 1000)))
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Alcotest.(check int) "no reader faults across growth" 0 (Atomic.get errors);
  Alcotest.(check int) "all entries present" 5000 (entry_count m)

let tombstone_counting () =
  let m = of_sorted [ e ~version:0 ~value:"v" "a"; e ~version:0 "dead" ] in
  Alcotest.(check int) "initial tombstones" 1 (tombstone_count m);
  put m (e ~version:1 ~counter:1 "a");
  Alcotest.(check int) "appended tombstone" 2 (tombstone_count m);
  (* In-place overwrite of a tombstone with a value decrements. *)
  put m ~may_discard:always_discard (e ~version:2 ~counter:2 ~value:"alive" "dead");
  Alcotest.(check int) "resurrection decrements" 1 (tombstone_count m);
  let m' = rebalance m ~min_retained_version:None in
  Alcotest.(check int) "rebalance clears tombstones" 0 (tombstone_count m')

let suite =
  suite
  @ [
      ( "munk_concurrency",
        [
          Alcotest.test_case "readers during growth" `Quick concurrent_growth_readers;
          Alcotest.test_case "tombstone counting" `Quick tombstone_counting;
        ] );
    ]
