(* Exhaustive crash-point exploration (PR 4).

   For every engine and both crash models, run a mixed workload on the
   journaled backend and recover at EVERY journal prefix, checking the
   persistence contract (acked+synced present, no resurrected deletes,
   scans sorted and bounded, store usable, scrub clean). The workload
   size and the reorder-seed matrix widen via environment variables:

     CRASH_EXPLORER_OPS            ops per run (default 200)
     CRASH_EXPLORER_REORDER_SEEDS  comma-separated seeds (default "7")

   The replication pair harness (primary + follower, crash either side
   at every crash point, promote / resume and re-verify) scales the
   same way:

     REPL_SOAK_OPS    ops per pair run (default 60)
     REPL_SOAK_SEEDS  comma-separated seeds (default "1") *)

open Evendb_storage
open Evendb_check

let ops =
  match Sys.getenv_opt "CRASH_EXPLORER_OPS" with
  | Some s -> (match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

let reorder_seeds =
  match Sys.getenv_opt "CRASH_EXPLORER_REORDER_SEEDS" with
  | None | Some "" -> [ 7 ]
  | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)

let modes =
  Backend.Drop_unsynced :: List.map (fun s -> Backend.Reorder_unsynced s) reorder_seeds

let pair_ops =
  match Sys.getenv_opt "REPL_SOAK_OPS" with
  | Some s -> (match int_of_string_opt s with Some n when n > 0 -> n | _ -> 60)
  | None -> 60

let pair_seeds =
  match Sys.getenv_opt "REPL_SOAK_SEEDS" with
  | None | Some "" -> [ 1 ]
  | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)

let check_contract engine mode () =
  let r = Crash_explorer.explore engine ~ops ~mode () in
  if r.Crash_explorer.violations <> [] then begin
    Format.eprintf "%a" Crash_explorer.pp_result r;
    let k, msg = List.hd r.Crash_explorer.violations in
    Alcotest.failf "%d violations; first @%d: %s"
      (List.length r.Crash_explorer.violations)
      k msg
  end;
  Alcotest.(check bool) "explored more prefixes than ops" true (r.Crash_explorer.crash_points > ops)

let check_pair seed () =
  let r = Crash_explorer.explore_pair ~ops:pair_ops ~seed () in
  if r.Crash_explorer.pair_violations <> [] then begin
    Format.eprintf "%a" Crash_explorer.pp_pair_result r;
    let at, msg = List.hd r.Crash_explorer.pair_violations in
    Alcotest.failf "%d violations; first %s: %s"
      (List.length r.Crash_explorer.pair_violations)
      at msg
  end;
  Alcotest.(check bool)
    "explored both journals" true
    (r.Crash_explorer.primary_points > 0 && r.Crash_explorer.replica_points > 0)

(* The harness must have teeth: an async store whose adapter claims
   sync-mode durability (and never checkpoints) has to produce lost
   durable writes at many crash points. *)
module Lying_engine : Crash_explorer.ENGINE = struct
  open Evendb_core

  type t = Db.t

  let name = "evendb-async-lying"

  let config =
    {
      Config.default with
      persistence = Config.Async;
      max_chunk_bytes = 8 * 1024;
      munk_rebalance_bytes = 6 * 1024;
      munk_rebalance_appended = 64;
      funk_log_limit_no_munk = 2 * 1024;
      funk_log_limit_with_munk = 8 * 1024;
      munk_cache_capacity = 4;
    }

  let open_ env = Db.open_ ~config env
  let close = Db.close
  let put = Db.put
  let delete = Db.delete
  let get = Db.get
  let scan t ~low ~high = Db.scan t ~low ~high ()
  let barrier _ = ()
  let durable_on_ack = true
end

let harness_detects_lost_durability () =
  let r =
    Crash_explorer.explore
      (module Lying_engine)
      ~ops:80 ~scrub:false ~mode:Backend.Drop_unsynced ()
  in
  Alcotest.(check bool)
    "lying engine caught" true
    (List.exists
       (fun (_, msg) ->
         let has_sub sub =
           let n = String.length sub and m = String.length msg in
           let rec at i = i + n <= m && (String.sub msg i n = sub || at (i + 1)) in
           at 0
         in
         has_sub "durable write lost" || has_sub "lost durable write")
       r.Crash_explorer.violations)

(* Telemetry guard on the recovery path: reopening after a crash
   repopulates spans and counters, and the full metrics reset must
   still zero every table afterwards. *)
let reset_clean_after_recovery () =
  let open Evendb_core in
  let config =
    {
      Config.default with
      max_chunk_bytes = 8 * 1024;
      munk_rebalance_bytes = 6 * 1024;
      munk_rebalance_appended = 64;
      funk_log_limit_no_munk = 2 * 1024;
      funk_log_limit_with_munk = 8 * 1024;
      munk_cache_capacity = 4;
    }
  in
  let env = Env.memory () in
  let db = Db.open_ ~config env in
  for i = 1 to 300 do
    Db.put db (Printf.sprintf "k%04d" (i mod 50)) (Printf.sprintf "v%08d" i)
  done;
  Db.checkpoint db;
  Env.crash env;
  let db = Db.open_ ~config env in
  ignore (Db.get db "k0001");
  Alcotest.(check bool)
    "recovery accumulated telemetry" true
    (Db.metrics_residue db <> []);
  Db.reset_metrics db;
  Alcotest.(check (list string)) "reset leaves no residue" [] (Db.metrics_residue db);
  Db.close db

let suite =
  let engine_cases =
    List.concat_map
      (fun engine ->
        let (module E : Crash_explorer.ENGINE) = engine in
        List.map
          (fun mode ->
            let label =
              Printf.sprintf "%s/%s" E.name
                (match mode with
                | Backend.Drop_unsynced -> "drop"
                | Backend.Reorder_unsynced s -> Printf.sprintf "reorder:%d" s)
            in
            Alcotest.test_case label `Slow (check_contract engine mode))
          modes)
      Crash_explorer.all_engines
  in
  [
    ( "crash-explorer",
      engine_cases
      @ List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "replication pair/drop seed:%d" seed)
              `Slow (check_pair seed))
          pair_seeds
      @ [
          Alcotest.test_case "harness detects lost durability" `Quick
            harness_detects_lost_durability;
          Alcotest.test_case "reset clean after recovery" `Quick reset_clean_after_recovery;
        ] );
  ]
