(* SSTable tests: build/read roundtrips, block splitting, versioned
   lookups, seeks, bloom section, header min-key, corruption checks. *)

open Evendb_util
open Evendb_storage
open Evendb_sstable

let qtest = QCheck_alcotest.to_alcotest

let e ?(version = 0) ?(counter = 0) ?value key : Kv_iter.entry = { key; value; version; counter }

let build env ?(name = "t.sst") ?(block_size = 4096) ?(with_bloom = false) ?(min_key = "") entries =
  let b = Sstable.Builder.create env ~block_size ~with_bloom ~name ~min_key () in
  List.iter (Sstable.Builder.add b) entries;
  Sstable.Builder.finish b;
  Sstable.Reader.open_ env name

let basic_roundtrip () =
  let env = Env.memory () in
  let entries = List.init 100 (fun i -> e ~version:i ~value:(Printf.sprintf "v%d" i) (Printf.sprintf "key%03d" i)) in
  let r = build env entries in
  Alcotest.(check int) "entry count" 100 (Sstable.Reader.entry_count r);
  Alcotest.(check (option string)) "first" (Some "key000") (Sstable.Reader.first_key r);
  Alcotest.(check (option string)) "last" (Some "key099") (Sstable.Reader.last_key r);
  List.iter
    (fun (x : Kv_iter.entry) ->
      match Sstable.Reader.get r x.key with
      | Some found ->
        Alcotest.(check (option string)) ("value of " ^ x.key) x.value found.Kv_iter.value
      | None -> Alcotest.failf "missing %s" x.key)
    entries;
  Alcotest.(check bool) "absent key" true (Sstable.Reader.get r "zzz" = None);
  Alcotest.(check bool) "below range" true (Sstable.Reader.get r "aaa" = None)

let small_blocks () =
  (* Force many blocks and verify lookups still work. *)
  let env = Env.memory () in
  let entries =
    List.init 500 (fun i -> e ~value:(String.make 50 'x') (Printf.sprintf "key%05d" i))
  in
  let r = build env ~block_size:128 entries in
  Alcotest.(check int) "count" 500 (Sstable.Reader.entry_count r);
  List.iter
    (fun i ->
      let k = Printf.sprintf "key%05d" i in
      if Sstable.Reader.get r k = None then Alcotest.failf "missing %s" k)
    [ 0; 1; 123; 250; 499 ]

let versioned_lookup () =
  let env = Env.memory () in
  let entries =
    [
      e ~version:9 ~counter:1 ~value:"v9" "k";
      e ~version:5 ~counter:0 ~value:"v5" "k";
      e ~version:2 ~counter:0 "k" (* old tombstone *);
    ]
  in
  let r = build env entries in
  Alcotest.(check (option string)) "latest" (Some "v9")
    (Option.bind (Sstable.Reader.get r "k") (fun x -> x.Kv_iter.value));
  Alcotest.(check (option string)) "at version 6" (Some "v5")
    (Option.bind (Sstable.Reader.get r ~max_version:6 "k") (fun x -> x.Kv_iter.value));
  (match Sstable.Reader.get r ~max_version:3 "k" with
  | Some { Kv_iter.value = None; version = 2; _ } -> ()
  | _ -> Alcotest.fail "expected tombstone at version 3");
  Alcotest.(check bool) "below all versions" true (Sstable.Reader.get r ~max_version:1 "k" = None);
  Alcotest.(check int) "all versions" 3 (List.length (Sstable.Reader.get_all_versions r "k"))

let versions_span_block_boundary () =
  (* Many versions of one key with tiny blocks: the builder must keep
     them in one block so versioned gets see all of them. *)
  let env = Env.memory () in
  let versions = List.init 50 (fun i -> e ~version:(49 - i) ~value:(string_of_int (49 - i)) "hot") in
  let entries = versions @ [ e ~version:0 ~value:"z" "later" ] in
  let r = build env ~block_size:64 entries in
  List.iter
    (fun v ->
      match Sstable.Reader.get r ~max_version:v "hot" with
      | Some found -> Alcotest.(check int) "exact version" v found.Kv_iter.version
      | None -> Alcotest.failf "missing version %d" v)
    [ 0; 7; 25; 49 ]

let iteration_order () =
  let env = Env.memory () in
  let entries = List.init 64 (fun i -> e ~value:"v" (Printf.sprintf "k%04d" (i * 3))) in
  let r = build env ~block_size:256 entries in
  let keys = List.map (fun (x : Kv_iter.entry) -> x.key) (Kv_iter.to_list (Sstable.Reader.iter r)) in
  Alcotest.(check (list string)) "full scan order"
    (List.map (fun (x : Kv_iter.entry) -> x.key) entries)
    keys

let seek () =
  let env = Env.memory () in
  let entries = List.init 100 (fun i -> e ~value:"v" (Printf.sprintf "k%04d" (i * 2))) in
  let r = build env ~block_size:256 entries in
  (* Seek to a present key. *)
  let it = Sstable.Reader.iter_from r "k0100" in
  (match it () with
  | Some x -> Alcotest.(check string) "exact seek" "k0100" x.Kv_iter.key
  | None -> Alcotest.fail "seek failed");
  (* Seek between keys lands on the next one. *)
  let it = Sstable.Reader.iter_from r "k0101" in
  (match it () with
  | Some x -> Alcotest.(check string) "between seek" "k0102" x.Kv_iter.key
  | None -> Alcotest.fail "seek failed");
  (* Seek before the first key. *)
  let it = Sstable.Reader.iter_from r "" in
  (match it () with
  | Some x -> Alcotest.(check string) "seek to start" "k0000" x.Kv_iter.key
  | None -> Alcotest.fail "seek failed");
  (* Seek past the end. *)
  let it = Sstable.Reader.iter_from r "zzz" in
  Alcotest.(check bool) "past end" true (it () = None)

let empty_table () =
  let env = Env.memory () in
  let r = build env [] in
  Alcotest.(check int) "count" 0 (Sstable.Reader.entry_count r);
  Alcotest.(check bool) "no first" true (Sstable.Reader.first_key r = None);
  Alcotest.(check bool) "get misses" true (Sstable.Reader.get r "x" = None);
  Alcotest.(check bool) "iter empty" true (Sstable.Reader.iter r () = None)

let min_key_header () =
  let env = Env.memory () in
  let r = build env ~min_key:"chunk-start" [ e ~value:"v" "x" ] in
  Alcotest.(check string) "chunk min key" "chunk-start" (Sstable.Reader.chunk_min_key r)

let bloom_section () =
  let env = Env.memory () in
  let entries = List.init 50 (fun i -> e ~value:"v" (Printf.sprintf "k%03d" i)) in
  let r = build env ~with_bloom:true entries in
  List.iter
    (fun (x : Kv_iter.entry) ->
      Alcotest.(check bool) ("may contain " ^ x.key) true (Sstable.Reader.may_contain r x.key))
    entries;
  let without = build env ~name:"nb.sst" entries in
  Alcotest.(check bool) "no bloom = always true" true (Sstable.Reader.may_contain without "zzz")

let out_of_order_rejected () =
  let env = Env.memory () in
  let b = Sstable.Builder.create env ~name:"o.sst" ~min_key:"" () in
  Sstable.Builder.add b (e ~value:"v" "b");
  (try
     Sstable.Builder.add b (e ~value:"v" "a");
     Alcotest.fail "expected out-of-order rejection"
   with Invalid_argument _ -> ())

let corrupt_footer_rejected () =
  let env = Env.memory () in
  ignore (build env ~name:"bad.sst" [ e ~value:"v" "k" ]);
  let data = Env.read_all env "bad.sst" in
  let f = Env.create env "bad.sst" in
  Env.append f (String.sub data 0 (String.length data - 3));
  Env.append f "XXX";
  Env.close_file f;
  (try
     ignore (Sstable.Reader.open_ env "bad.sst");
     Alcotest.fail "expected corruption rejection"
   with Env.Corruption _ -> ());
  Alcotest.(check bool) "detection counted" true (Env.corruptions_detected env > 0)

let random_model =
  QCheck.Test.make ~name:"sstable get matches model" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 80) (pair (int_range 0 200) small_nat))
    (fun pairs ->
      let entries =
        List.sort_uniq Kv_iter.compare_entries
          (List.map (fun (k, v) -> e ~version:v ~value:(string_of_int v) (Printf.sprintf "k%04d" k)) pairs)
      in
      let env = Env.memory () in
      let r = build env ~block_size:128 entries in
      List.for_all
        (fun (x : Kv_iter.entry) ->
          (* get at x's version must return the newest version <= it. *)
          let expected =
            List.fold_left
              (fun best (y : Kv_iter.entry) ->
                if String.equal y.key x.key && y.version <= x.version then
                  match best with
                  | Some (b : Kv_iter.entry) when b.version >= y.version -> best
                  | _ -> Some y
                else best)
              None entries
          in
          match (Sstable.Reader.get r ~max_version:x.version x.key, expected) with
          | Some found, Some want -> found.Kv_iter.version = want.version
          | None, None -> true
          | _ -> false)
        entries)

let suite =
  [
    ( "sstable",
      [
        Alcotest.test_case "roundtrip" `Quick basic_roundtrip;
        Alcotest.test_case "small blocks" `Quick small_blocks;
        Alcotest.test_case "versioned lookup" `Quick versioned_lookup;
        Alcotest.test_case "versions stay in one block" `Quick versions_span_block_boundary;
        Alcotest.test_case "iteration order" `Quick iteration_order;
        Alcotest.test_case "seek" `Quick seek;
        Alcotest.test_case "empty table" `Quick empty_table;
        Alcotest.test_case "min key header" `Quick min_key_header;
        Alcotest.test_case "bloom section" `Quick bloom_section;
        Alcotest.test_case "out-of-order rejected" `Quick out_of_order_rejected;
        Alcotest.test_case "corrupt footer rejected" `Quick corrupt_footer_rejected;
        qtest random_model;
      ] );
  ]

(* ---- Additional edge cases ---- *)

let binary_keys () =
  (* Keys containing NUL, 0xFF and other raw bytes must order and
     round-trip byte-exactly. *)
  let env = Env.memory () in
  let keys = [ "\x00"; "\x00\x01"; "a\x00b"; "a\x7f"; "\xfe"; "\xff\xff" ] in
  let sorted = List.sort String.compare keys in
  let entries = List.map (fun k -> e ~value:("v" ^ k) k) sorted in
  let r = build env entries in
  List.iter
    (fun k ->
      match Sstable.Reader.get r k with
      | Some found -> Alcotest.(check (option string)) "binary value" (Some ("v" ^ k)) found.Kv_iter.value
      | None -> Alcotest.failf "missing binary key %S" k)
    keys

let single_entry () =
  let env = Env.memory () in
  let r = build env [ e ~version:3 ~value:"only" "solo" ] in
  Alcotest.(check int) "count" 1 (Sstable.Reader.entry_count r);
  Alcotest.(check (option string)) "first=last" (Sstable.Reader.first_key r) (Sstable.Reader.last_key r);
  Alcotest.(check bool) "get works" true (Sstable.Reader.get r "solo" <> None)

let large_values () =
  let env = Env.memory () in
  let big = String.make 100_000 'B' in
  let r = build env ~block_size:4096 [ e ~value:big "huge"; e ~value:"s" "tiny" ] in
  (match Sstable.Reader.get r "huge" with
  | Some { Kv_iter.value = Some v; _ } -> Alcotest.(check int) "big value intact" 100_000 (String.length v)
  | _ -> Alcotest.fail "big value lost");
  Alcotest.(check bool) "neighbour fine" true (Sstable.Reader.get r "tiny" <> None)

let pathological_block_size () =
  (* block_size 1: every key in its own block; index still works. *)
  let env = Env.memory () in
  let entries = List.init 50 (fun i -> e ~value:"v" (Printf.sprintf "k%03d" i)) in
  let r = build env ~block_size:1 entries in
  Alcotest.(check int) "count" 50 (Sstable.Reader.entry_count r);
  List.iter
    (fun (x : Kv_iter.entry) ->
      if Sstable.Reader.get r x.key = None then Alcotest.failf "missing %s" x.key)
    entries

let reopen_same_file () =
  (* Multiple independent readers of one immutable table. *)
  let env = Env.memory () in
  ignore (build env ~name:"shared.sst" [ e ~value:"v" "k" ]);
  let r1 = Sstable.Reader.open_ env "shared.sst" in
  let r2 = Sstable.Reader.open_ env "shared.sst" in
  Alcotest.(check bool) "both read" true
    (Sstable.Reader.get r1 "k" <> None && Sstable.Reader.get r2 "k" <> None)

let suite =
  suite
  @ [
      ( "sstable_edges",
        [
          Alcotest.test_case "binary keys" `Quick binary_keys;
          Alcotest.test_case "single entry" `Quick single_entry;
          Alcotest.test_case "large values" `Quick large_values;
          Alcotest.test_case "block size 1" `Quick pathological_block_size;
          Alcotest.test_case "multiple readers" `Quick reopen_same_file;
        ] );
    ]
