(* The Evendb_obs registry: concurrency safety of the instruments,
   reset semantics, exporter shape, and end-to-end wiring into Db
   (maintenance spans, op timers, Read_stats percentiles). *)

open Evendb_obs
open Evendb_core
open Evendb_storage

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ---- instruments under concurrency ---- *)

let concurrent_bumps () =
  let obs = Obs.create () in
  let c = Obs.counter obs "c" in
  let g = Obs.gauge obs "g" in
  let tm = Obs.timer obs "t" in
  let per_domain = 10_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Obs.Counter.incr c;
              Obs.Gauge.add g 2;
              Obs.Timer.record_ns tm 1_000
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "counter" (4 * per_domain) (Obs.Counter.get c);
  Alcotest.(check int) "gauge" (8 * per_domain) (Obs.Gauge.get g);
  Alcotest.(check int) "timer count" (4 * per_domain) (Obs.Timer.count tm)

let registration_idempotent () =
  let obs = Obs.create () in
  let a = Obs.counter obs "same" in
  let b = Obs.counter obs "same" in
  Obs.Counter.incr a;
  Obs.Counter.incr b;
  Alcotest.(check int) "one cell" 2 (Obs.Counter.get a);
  (* Four domains racing to register distinct and shared names must
     not corrupt the registry. *)
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 100 do
              Obs.Counter.incr (Obs.counter obs (Printf.sprintf "n%d" (i mod 7)));
              Obs.Counter.incr (Obs.counter obs (Printf.sprintf "d%d" d))
            done))
  in
  List.iter Domain.join domains;
  let total =
    List.fold_left
      (fun acc (_, v) -> match v with Obs.Counter n -> acc + n | _ -> acc)
      0 (Obs.snapshot obs).Obs.metrics
  in
  Alcotest.(check int) "no lost increments" (2 + (4 * 200)) total

let reset_semantics () =
  let obs = Obs.create () in
  let c = Obs.counter obs "c" in
  let g = Obs.gauge obs "g" in
  let tm = Obs.timer obs "t" in
  let external_cell = ref 42 in
  Obs.probe obs "p" (fun () -> !external_cell);
  Obs.Counter.add c 5;
  Obs.Gauge.set g 7;
  Obs.Timer.record_ns tm 100;
  Obs.Trace.with_span (Obs.trace obs) ~name:"s" (fun _ -> ());
  Obs.reset obs;
  Alcotest.(check int) "counter zeroed" 0 (Obs.Counter.get c);
  Alcotest.(check int) "gauge zeroed" 0 (Obs.Gauge.get g);
  Alcotest.(check int) "timer zeroed" 0 (Obs.Timer.count tm);
  let stats = Obs.Trace.stats (Obs.trace obs) in
  Alcotest.(check bool)
    "span aggregates cleared" true
    (List.for_all (fun s -> s.Obs.Trace.span_count = 0) stats);
  (* Probes survive a reset: they read external state. *)
  let snap = Obs.snapshot obs in
  Alcotest.(check bool) "probe survives" true
    (List.exists (fun (n, v) -> n = "p" && v = Obs.Gauge 42) snap.Obs.metrics)

let span_attrs_accumulate () =
  let obs = Obs.create () in
  let tr = Obs.trace obs in
  Obs.Trace.with_span tr ~name:"work" ~attrs:[ ("bytes", 10) ] (fun sp ->
      Obs.Trace.add_attr sp "bytes" 5;
      Obs.Trace.add_attr sp "entries" 3);
  Obs.Trace.with_span tr ~name:"work" (fun sp -> Obs.Trace.add_attr sp "bytes" 1);
  match Obs.Trace.stats tr with
  | [ s ] ->
    Alcotest.(check string) "name" "work" s.Obs.Trace.span_name;
    Alcotest.(check int) "count" 2 s.Obs.Trace.span_count;
    Alcotest.(check int) "bytes total" 16 (List.assoc "bytes" s.Obs.Trace.span_attr_totals);
    Alcotest.(check int) "entries total" 3 (List.assoc "entries" s.Obs.Trace.span_attr_totals);
    Alcotest.(check bool) "duration nonneg" true (s.Obs.Trace.span_total_ns >= 0)
  | l -> Alcotest.failf "expected one span stat, got %d" (List.length l)

let exporters_shape () =
  let obs = Obs.create () in
  Obs.Counter.add (Obs.counter obs "ops.total") 3;
  Obs.Timer.record_ns (Obs.timer obs "db.put") 1_000;
  Obs.Trace.declare (Obs.trace obs) "rebalance";
  let json = Obs.to_json obs in
  List.iter
    (fun sub -> Alcotest.(check bool) (sub ^ " in json") true (contains_substring ~sub json))
    [ "\"counters\""; "\"ops.total\":3"; "\"db.put\""; "\"p99_ns\""; "\"rebalance\"" ];
  let prom = Obs.to_prometheus obs in
  List.iter
    (fun sub -> Alcotest.(check bool) (sub ^ " in prom") true (contains_substring ~sub prom))
    [ "evendb_ops_total 3"; "evendb_db_put_ns_count 1"; "evendb_span_count{name=\"rebalance\"} 0" ]

(* ---- wiring into the engines ---- *)

(* Small thresholds so a few hundred puts force munk maintenance. *)
let tiny_config =
  { (Config.scaled ~factor:256 ()) with Config.collect_read_stats = true }

let forced_rebalance_span () =
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  let find name stats =
    match List.find_opt (fun s -> s.Obs.Trace.span_name = name) stats with
    | Some s -> s
    | None -> Alcotest.failf "span %s not registered" name
  in
  (* Declared spans are visible (zeroed) before any maintenance. *)
  let before = find "munk_rebalance" (Obs.Trace.stats (Obs.trace (Db.obs db))) in
  Alcotest.(check int) "declared zeroed" 0 before.Obs.Trace.span_count;
  for i = 1 to 2_000 do
    Db.put db (Printf.sprintf "key%06d" (i mod 400)) (String.make 64 'v')
  done;
  Db.maintain db;
  let stats = Obs.Trace.stats (Obs.trace (Db.obs db)) in
  let reb = find "munk_rebalance" stats in
  Alcotest.(check bool) "rebalance recorded" true (reb.Obs.Trace.span_count > 0);
  Alcotest.(check bool) "rebalance entries attr" true
    (List.assoc "entries" reb.Obs.Trace.span_attr_totals > 0);
  Alcotest.(check bool) "rebalance duration" true (reb.Obs.Trace.span_total_ns > 0);
  Db.close db

let db_metrics_dump () =
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  for i = 1 to 500 do
    Db.put db (Printf.sprintf "key%06d" i) (String.make 32 'v')
  done;
  for i = 1 to 200 do
    ignore (Db.get db (Printf.sprintf "key%06d" i))
  done;
  ignore (Db.scan db ~limit:50 ~low:"key" ~high:"kez" ());
  Db.checkpoint db;
  let json = Db.metrics_dump db `Json in
  List.iter
    (fun sub -> Alcotest.(check bool) (sub ^ " present") true (contains_substring ~sub json))
    [
      "\"db.put\""; "\"db.get\""; "\"db.scan\""; "\"p50_ns\""; "\"p95_ns\""; "\"p99_ns\"";
      "\"funk.log_appends\""; "\"cache.row.hits\""; "\"cache.lfu.misses\"";
      "\"io.log.bytes_written\""; "\"io.sstable.bytes_written\""; "\"io.meta.bytes_written\"";
      "\"checkpoint\""; "\"munk_rebalance\""; "\"chunk_split\""; "\"recovery\"";
    ];
  (* The op timers actually ran. *)
  Alcotest.(check bool) "put timer counted" true
    (Obs.Timer.count (Obs.timer (Db.obs db) "db.put") = 500);
  Alcotest.(check bool) "get timer counted" true
    (Obs.Timer.count (Obs.timer (Db.obs db) "db.get") = 200);
  Db.close db

let read_stats_fractions () =
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  for i = 1 to 800 do
    Db.put db (Printf.sprintf "key%06d" i) (String.make 32 'v')
  done;
  Db.maintain db;
  for i = 1 to 400 do
    ignore (Db.get db (Printf.sprintf "key%06d" ((i * 7 mod 800) + 1)))
  done;
  ignore (Db.get db "missing-key");
  let s = Db.read_stats db in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 s.Read_stats.fractions in
  Alcotest.(check (float 1e-6)) "fractions sum to 1" 1.0 total;
  (* Detailed mode records percentile latencies per component. *)
  List.iter
    (fun (_, (l : Read_stats.latency)) ->
      Alcotest.(check bool) "p50 <= p95" true (l.Read_stats.p50 <= l.Read_stats.p95);
      Alcotest.(check bool) "p95 <= p99" true (l.Read_stats.p95 <= l.Read_stats.p99))
    s.Read_stats.latencies;
  Db.close db

let baseline_metrics which () =
  match which with
  | `Lsm ->
    let env = Env.memory () in
    let t = Evendb_lsm.Lsm.open_ ~config:(Evendb_lsm.Lsm.Config.scaled ~factor:256 ()) env in
    for i = 1 to 500 do
      Evendb_lsm.Lsm.put t (Printf.sprintf "key%06d" i) (String.make 32 'v')
    done;
    ignore (Evendb_lsm.Lsm.get t "key000001");
    let json = Evendb_lsm.Lsm.metrics_dump t `Json in
    List.iter
      (fun sub -> Alcotest.(check bool) (sub ^ " present") true (contains_substring ~sub json))
      [ "\"db.put\""; "\"wal.appends\""; "\"memtable_flush\""; "\"compaction\"" ];
    Evendb_lsm.Lsm.close t
  | `Flsm ->
    let env = Env.memory () in
    let t = Evendb_flsm.Flsm.open_ ~config:(Evendb_flsm.Flsm.Config.scaled ~factor:256 ()) env in
    for i = 1 to 500 do
      Evendb_flsm.Flsm.put t (Printf.sprintf "key%06d" i) (String.make 32 'v')
    done;
    ignore (Evendb_flsm.Flsm.get t "key000001");
    let json = Evendb_flsm.Flsm.metrics_dump t `Json in
    List.iter
      (fun sub -> Alcotest.(check bool) (sub ^ " present") true (contains_substring ~sub json))
      [ "\"db.put\""; "\"wal.appends\""; "\"fragment_append\""; "\"guard_merge\"" ];
    Evendb_flsm.Flsm.close t

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "concurrent bumps (4 domains)" `Quick concurrent_bumps;
        Alcotest.test_case "idempotent racy registration" `Quick registration_idempotent;
        Alcotest.test_case "reset semantics" `Quick reset_semantics;
        Alcotest.test_case "span attrs accumulate" `Quick span_attrs_accumulate;
        Alcotest.test_case "exporter shape" `Quick exporters_shape;
      ] );
    ( "obs-wiring",
      [
        Alcotest.test_case "forced munk rebalance span" `Quick forced_rebalance_span;
        Alcotest.test_case "db metrics dump" `Quick db_metrics_dump;
        Alcotest.test_case "read-stats fractions and percentiles" `Quick read_stats_fractions;
        Alcotest.test_case "lsm metrics dump" `Quick (baseline_metrics `Lsm);
        Alcotest.test_case "flsm metrics dump" `Quick (baseline_metrics `Flsm);
      ] );
  ]
