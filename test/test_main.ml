(* Aggregates every suite into one alcotest binary: `dune runtest`. *)

let () =
  Alcotest.run "evendb"
    (List.concat
       [
         Test_util.suite;
         Test_obs.suite;
         Test_telemetry.suite;
         Test_storage.suite;
         Test_bloom.suite;
         Test_log.suite;
         Test_sstable.suite;
         Test_cache.suite;
         Test_block_cache.suite;
         Test_sorted_view.suite;
         Test_munk.suite;
         Test_config.suite;
         Test_core.suite;
         Test_funk.suite;
         Test_recovery.suite;
         Test_concurrency.suite;
         Test_group_commit.suite;
         Test_shard.suite;
         Test_lsm.suite;
         Test_flsm.suite;
         Test_faults.suite;
         Test_scrub.suite;
         Test_snapshot.suite;
         Test_backup.suite;
         Test_repl.suite;
         Test_crash_explorer.suite;
         Test_ycsb.suite;
         Test_attr.suite;
         Test_sampler.suite;
       ])
