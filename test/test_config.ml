(* Config.validate: the open-time front door rejects nonsense knobs
   with a telling message instead of letting them wedge the store
   (a zero group-commit batch would deadlock every sync put; an empty
   slow-op ring would make attribution divide by zero; a watchdog
   share above 100% can never trip). *)

open Evendb_core
open Evendb_storage

let default_validates () = Config.validate Config.default

let rejects name cfg =
  Alcotest.test_case name `Quick (fun () ->
      match Config.validate cfg with
      | () -> Alcotest.failf "%s: expected Invalid_argument" name
      | exception Invalid_argument msg ->
        let prefix = "Config.validate:" in
        Alcotest.(check bool)
          (name ^ ": message identifies the validator")
          true
          (String.length msg >= String.length prefix
          && String.sub msg 0 (String.length prefix) = prefix))

let open_rejects_invalid () =
  let config = { Config.default with group_commit_max_batch = 0 } in
  match Db.open_ ~config (Env.memory ()) with
  | _ -> Alcotest.fail "Db.open_ accepted an invalid config"
  | exception Invalid_argument _ -> ()

let suite =
  [
    ( "config",
      [
        Alcotest.test_case "default validates" `Quick default_validates;
        Alcotest.test_case "Db.open_ runs validate" `Quick open_rejects_invalid;
        rejects "zero group-commit batch"
          { Config.default with group_commit_max_batch = 0 };
        rejects "negative group-commit batch"
          { Config.default with group_commit_max_batch = -4 };
        rejects "zero group-commit wait"
          { Config.default with group_commit_max_wait_ns = 0 };
        rejects "negative group-commit wait"
          { Config.default with group_commit_max_wait_ns = -1 };
        rejects "empty slow-op ring" { Config.default with attr_slow_ring = 0 };
        rejects "negative slow threshold"
          { Config.default with attr_slow_threshold_ns = -1 };
        rejects "watchdog share above 100%"
          { Config.default with attr_watchdog_share_ppm = 1_000_001 };
        rejects "negative watchdog share"
          { Config.default with attr_watchdog_share_ppm = -1 };
        rejects "negative watchdog cooldown"
          { Config.default with attr_watchdog_cooldown_ops = -1 };
        rejects "zero chunk size" { Config.default with max_chunk_bytes = 0 };
        rejects "zero po slots" { Config.default with po_slots = 0 };
        rejects "zero munk cache" { Config.default with munk_cache_capacity = 0 };
        rejects "negative checkpoint interval"
          { Config.default with checkpoint_every_puts = -1 };
        rejects "negative snapshot retention"
          { Config.default with snapshot_max_retained = -1 };
        rejects "zero replication window" { Config.default with repl_window = 0 };
        rejects "negative replication backoff"
          { Config.default with repl_retry_backoff_ns = -1 };
      ] );
  ]
