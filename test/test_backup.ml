(* Funk-grained incremental backup (ISSUE 9).

   - a chain of one full + two incrementals restores to a store that is
     byte-for-byte scan-equivalent to the source at the last snapshot's
     cut, opens normally, and scrubs clean;
   - incrementals actually increment: a shared funk ships its SSTable
     by reference and only the grown log suffix;
   - faults during ship leave only *.tmp debris — a retry publishes a
     clean archive and the restore is unaffected;
   - a flipped byte anywhere in an archive fails verification and
     rejects the restore; so does broken chain linkage;
   - restore refuses a non-empty destination. *)

open Evendb_storage
module Db = Evendb_core.Db
module Config = Evendb_core.Config
module Snapshot = Evendb_core.Snapshot
module Backup = Evendb_core.Backup

let config =
  {
    Config.default with
    persistence = Config.Sync;
    max_chunk_bytes = 8 * 1024;
    munk_rebalance_bytes = 6 * 1024;
    munk_rebalance_appended = 64;
    funk_log_limit_no_munk = 2 * 1024;
    funk_log_limit_with_munk = 8 * 1024;
    munk_cache_capacity = 4;
  }

let key_of i = Printf.sprintf "k%04d" i

(* A source store with three published snapshots and modest churn
   between them; returns the env and the expected state at the last
   cut. The default (large) structural limits keep funks stable across
   the cuts, so the incrementals exercise log-suffix sharing. *)
let build_source ?(config = { Config.default with persistence = Config.Sync }) () =
  let env = Env.memory () in
  let db = Db.open_ ~config env in
  for i = 0 to 99 do
    Db.put db (key_of i) (Printf.sprintf "v1_%04d" i)
  done;
  ignore (Db.snapshot db ~id:"s1");
  for i = 90 to 119 do
    Db.put db (key_of i) (Printf.sprintf "v2_%04d" i)
  done;
  for i = 0 to 9 do
    Db.delete db (key_of i)
  done;
  ignore (Db.snapshot db ~id:"s2");
  for i = 120 to 149 do
    Db.put db (key_of i) (Printf.sprintf "v3_%04d" i)
  done;
  let at_s3 = Db.scan db ~low:"" ~high:"zzzz" () in
  ignore (Db.snapshot db ~id:"s3");
  (* Churn past the last cut so restore equivalence is tested against
     the snapshot, not the live tail. *)
  for i = 0 to 19 do
    Db.put db (key_of i) "post-cut"
  done;
  Db.close db;
  (env, at_s3)

let ship_chain src dest =
  let _, s1 = Backup.ship ~src ~dest ~snapshot_id:"s1" () in
  let _, s2 = Backup.ship ~src ~dest ~snapshot_id:"s2" ~base_id:"s1" () in
  let _, s3 = Backup.ship ~src ~dest ~snapshot_id:"s3" ~base_id:"s2" () in
  (s1, s2, s3)

let restore_and_check dest at_s3 =
  let restored = Env.memory () in
  Backup.restore ~src:dest ~dest:restored;
  let db = Db.open_ ~config restored in
  Alcotest.(check (list (pair string string)))
    "restored store equals the source at the s3 cut" at_s3
    (Db.scan db ~low:"" ~high:"zzzz" ());
  Db.close db;
  let report = Evendb_check.Scrub.scrub restored in
  Alcotest.(check bool) "restored store scrubs clean" true (Evendb_check.Scrub.is_clean report)

let chain_roundtrip () =
  let src, at_s3 = build_source () in
  let dest = Env.memory () in
  let full, inc1, inc2 = ship_chain src dest in
  Alcotest.(check int) "three archives" 3 (List.length (Backup.list_archives dest));
  (* The increments must be increments: shipping everything again would
     cost at least the full archive's bytes. *)
  Alcotest.(check bool) "incrementals smaller than the full ship" true
    (inc1.Backup.bytes_shipped < full.Backup.bytes_shipped
    && inc2.Backup.bytes_shipped < full.Backup.bytes_shipped);
  restore_and_check dest at_s3

(* Same chain under the shrunk structural limits: the churn splits
   chunks and rotates funks between cuts, so the incrementals carry a
   mix of full funks, carried references, and log suffixes. *)
let multifunk_roundtrip () =
  let src, at_s3 = build_source ~config ()  in
  let dest = Env.memory () in
  ignore (ship_chain src dest);
  restore_and_check dest at_s3

let faulty_ship_then_retry () =
  let src, at_s3 = build_source () in
  (* Every destination append/rename fails until disarmed: the ship
     must raise, leaving no published archive — only tmp debris. *)
  let plan = Fault.plan ~seed:7 ~rate:1.0 ~torn_fraction:0.0 () in
  let dest = Env.memory ~faults:plan () in
  (match Backup.ship ~src ~dest ~snapshot_id:"s1" () with
  | _ -> Alcotest.fail "ship succeeded under a 100% fault rate"
  | exception Env.Io_error _ -> ());
  Fault.set_armed plan false;
  List.iter
    (fun name ->
      if not (Filename.check_suffix name ".tmp") then
        Alcotest.failf "interrupted ship published %s" name)
    (Env.list_files dest);
  (* Retries on the same destination publish a clean chain. *)
  ignore (ship_chain src dest);
  restore_and_check dest at_s3

let corrupt_archive_rejected () =
  let src, _ = build_source () in
  let dest = Env.memory () in
  ignore (ship_chain src dest);
  let name = match Backup.list_archives dest with (_, n) :: _ -> n | [] -> assert false in
  let data = Env.read_all dest name in
  let b = Bytes.of_string data in
  let pos = Bytes.length b / 2 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5A));
  Env.delete dest name;
  let f = Env.create dest name in
  Env.append f (Bytes.to_string b);
  Env.close_file f;
  (match Backup.verify dest name with
  | () -> Alcotest.fail "flipped archive verified"
  | exception Env.Corruption _ -> ());
  match Backup.restore ~src:dest ~dest:(Env.memory ()) with
  | () -> Alcotest.fail "flipped archive restored"
  | exception Env.Corruption _ -> ()

let broken_chain_rejected () =
  let src, _ = build_source () in
  let dest = Env.memory () in
  ignore (Backup.ship ~src ~dest ~snapshot_id:"s1" ());
  (* s3's base is s2, which the chain does not contain. *)
  ignore (Backup.ship ~src ~dest ~snapshot_id:"s3" ~base_id:"s2" ());
  match Backup.restore ~src:dest ~dest:(Env.memory ()) with
  | () -> Alcotest.fail "broken chain restored"
  | exception Env.Corruption _ -> ()

let nonempty_dest_refused () =
  let src, _ = build_source () in
  let dest = Env.memory () in
  ignore (Backup.ship ~src ~dest ~snapshot_id:"s1" ());
  let occupied = Env.memory () in
  let f = Env.create occupied "stray" in
  Env.append f "x";
  Env.close_file f;
  match Backup.restore ~src:dest ~dest:occupied with
  | () -> Alcotest.fail "restore into a non-empty directory"
  | exception Invalid_argument _ -> ()

let suite =
  [
    ( "backup",
      [
        Alcotest.test_case "full + 2 incrementals round-trip" `Quick chain_roundtrip;
        Alcotest.test_case "multi-funk chain round-trip" `Quick multifunk_roundtrip;
        Alcotest.test_case "faulty ship leaves only tmp; retry restores" `Quick
          faulty_ship_then_retry;
        Alcotest.test_case "corrupt archive rejected" `Quick corrupt_archive_rejected;
        Alcotest.test_case "broken chain linkage rejected" `Quick broken_chain_rejected;
        Alcotest.test_case "non-empty destination refused" `Quick nonempty_dest_refused;
      ] );
  ]
