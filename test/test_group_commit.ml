(* Group commit (sync durability at core scale): concurrent sync puts
   share fsyncs without ever weakening the contract — an acked put is
   durable at every crash point, a batch whose fsync fails surfaces the
   typed error to every member, and batch-of-1 degenerates to exactly
   the old per-op fsync behaviour. *)

open Evendb_storage
open Evendb_core
module Obs = Evendb_obs.Obs
module Attr = Evendb_obs.Attr

let sync_config =
  {
    Config.default with
    persistence = Config.Sync;
    max_chunk_bytes = 8 * 1024;
    munk_rebalance_bytes = 6 * 1024;
    munk_rebalance_appended = 64;
    funk_log_limit_no_munk = 2 * 1024;
    funk_log_limit_with_munk = 8 * 1024;
    munk_cache_capacity = 4;
  }

let counter_value snap name =
  match List.assoc_opt name snap.Obs.metrics with
  | Some (Obs.Counter n) -> n
  | _ -> Alcotest.failf "missing counter %s" name

let timer_summary snap name =
  match List.assoc_opt name snap.Obs.metrics with
  | Some (Obs.Timer t) -> t
  | _ -> Alcotest.failf "missing timer %s" name

(* ------------------------------------------------------------------ *)
(* Acked => durable under concurrency, at every crash point.           *)

let key d i = Printf.sprintf "d%d-k%03d" d i
let value d i = Printf.sprintf "val-%d-%03d" d i

let concurrent_acked_durable () =
  let journal, packed = Backend.journaled_memory () in
  let env = Env.of_backend packed in
  let db = Db.open_ ~config:sync_config env in
  let domains = 4 and per_domain = 40 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Db.put db (key d i) (value d i)
            done))
  in
  List.iter Domain.join workers;
  (* Every put above acked in sync mode, so its covering fsync is in
     the journal by now: crashing at the final prefix must keep all. *)
  let total = Backend.journal_length journal in
  let check_at k ~require_all =
    let env_k = Env.of_backend (Backend.replay_prefix journal k) in
    let db_k = Db.open_ ~config:sync_config env_k in
    for d = 0 to domains - 1 do
      for i = 0 to per_domain - 1 do
        match Db.get db_k (key d i) with
        | None ->
          if require_all then
            Alcotest.failf "acked %s missing at final crash point" (key d i)
        | Some v ->
          (* Each key is written exactly once: any surviving value must
             be the one written — never torn, never someone else's. *)
          if v <> value d i then
            Alcotest.failf "@%d: %s holds torn/foreign value %S" k (key d i) v
      done
    done;
    Db.close db_k
  in
  check_at total ~require_all:true;
  (* Mid-batch crash points: recovery must never fail and never serve
     a value that was not written (a torn group-commit tail must fall
     off the log, not surface). Stride keeps the sweep fast; the
     exhaustive single-threaded sweep lives in the crash explorer. *)
  let stride = max 1 (total / 50) in
  let k = ref 0 in
  while !k < total do
    check_at !k ~require_all:false;
    k := !k + stride
  done;
  (* Commit accounting: every sync put is a batch member exactly once,
     every batch fsyncs at least one log, and saved = members - fsyncs. *)
  let snap = Obs.snapshot (Db.obs db) in
  let puts = domains * per_domain in
  let batches = counter_value snap "commit.batches" in
  let fsyncs = counter_value snap "commit.fsyncs" in
  let saved = counter_value snap "commit.fsyncs_saved" in
  let sizes = timer_summary snap "commit.batch_size" in
  Alcotest.(check bool) "at least one batch" true (batches >= 1);
  Alcotest.(check bool) "no more batches than puts" true (batches <= puts);
  Alcotest.(check bool) "every batch fsynced something" true (fsyncs >= batches);
  Alcotest.(check int) "members = fsyncs + saved" puts (fsyncs + saved);
  Alcotest.(check int) "one size sample per batch" batches sizes.Obs.t_count;
  Db.close db

(* ------------------------------------------------------------------ *)
(* max_batch = 1 degenerates to per-op fsync.                          *)

let batch_of_one_degenerates () =
  let config = { sync_config with group_commit_max_batch = 1 } in
  let env = Env.memory () in
  let db = Db.open_ ~config env in
  let workers =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 29 do
              Db.put db (key d i) (value d i)
            done))
  in
  List.iter Domain.join workers;
  let snap = Obs.snapshot (Db.obs db) in
  Alcotest.(check int) "one batch per put" 90 (counter_value snap "commit.batches");
  Alcotest.(check int) "one fsync per put" 90 (counter_value snap "commit.fsyncs");
  Alcotest.(check int) "nothing saved" 0 (counter_value snap "commit.fsyncs_saved");
  Alcotest.(check int) "no batch ever exceeded 1"
    1
    (timer_summary snap "commit.batch_size").Obs.t_max_ns;
  Env.crash env;
  let db2 = Db.open_ ~config env in
  for d = 0 to 2 do
    for i = 0 to 29 do
      Alcotest.(check (option string))
        (key d i) (Some (value d i))
        (Db.get db2 (key d i))
    done
  done;
  Db.close db2;
  Db.close db

(* ------------------------------------------------------------------ *)
(* A failing batch fsync surfaces to every member as the typed error.  *)

let flaky_fsync_backend () =
  let armed = Atomic.make false in
  let (Backend.B (module Inner)) = Backend.memory () in
  let packed =
    Backend.B
      (module struct
        include Inner

        let fsync h =
          if Atomic.get armed then
            Io_error.raise_io ~op:"fsync" ~file:"<log>" ~detail:"injected fsync failure"
          else Inner.fsync h
      end)
  in
  (armed, packed)

let fsync_error_fans_out () =
  let armed, packed = flaky_fsync_backend () in
  (* Default (large) thresholds: nothing but the sync path fsyncs
     during this tiny workload, so every failure is a commit failure. *)
  let config = { Config.default with persistence = Config.Sync } in
  let env = Env.of_backend packed in
  let db = Db.open_ ~config env in
  Db.put db "seed" "v0";
  Atomic.set armed true;
  let outcomes = Array.make 4 `Pending in
  let workers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            outcomes.(d) <-
              (try
                 Db.put db (Printf.sprintf "armed-%d" d) "doomed";
                 `Acked
               with
              | Env.Io_error _ -> `Io_error
              | exn -> `Other (Printexc.to_string exn))))
  in
  List.iter Domain.join workers;
  Array.iteri
    (fun d o ->
      match o with
      | `Io_error -> ()
      | `Acked -> Alcotest.failf "writer %d acked while fsync was failing" d
      | `Other e -> Alcotest.failf "writer %d got untyped error %s" d e
      | `Pending -> Alcotest.failf "writer %d never finished" d)
    outcomes;
  (* The committer must recover once the device does: the next batch
     leads, fsyncs and acks normally, and pre-fault data is intact. *)
  Atomic.set armed false;
  Db.put db "after" "v1";
  Alcotest.(check (option string)) "pre-fault key" (Some "v0") (Db.get db "seed");
  Alcotest.(check (option string)) "post-fault key" (Some "v1") (Db.get db "after");
  Db.close db

(* ------------------------------------------------------------------ *)
(* Crash-point exploration over an explicitly multi-member committer.  *)

module Gc_engine : Evendb_check.Crash_explorer.ENGINE = struct
  type t = Db.t

  let name = "evendb-sync-gc8"

  let config =
    {
      sync_config with
      group_commit_max_batch = 8;
      group_commit_max_wait_ns = 50_000;
    }

  let open_ env = Db.open_ ~config env
  let close = Db.close
  let put = Db.put
  let delete = Db.delete
  let get = Db.get
  let scan t ~low ~high = Db.scan t ~low ~high ()
  let barrier = Db.checkpoint
  let durable_on_ack = true
end

let explorer_covers_group_commit mode () =
  let r = Evendb_check.Crash_explorer.explore (module Gc_engine) ~ops:120 ~mode () in
  if r.Evendb_check.Crash_explorer.violations <> [] then begin
    Format.eprintf "%a" Evendb_check.Crash_explorer.pp_result r;
    let k, msg = List.hd r.Evendb_check.Crash_explorer.violations in
    Alcotest.failf "@%d: %s" k msg
  end

let commit_wait_cause_exported () =
  Alcotest.(check bool)
    "commit_wait is an attribution cause" true
    (List.exists (fun c -> Attr.cause_name c = "commit_wait") Attr.all_causes)

let suite =
  [
    ( "group_commit",
      [
        Alcotest.test_case "concurrent acked => durable" `Quick concurrent_acked_durable;
        Alcotest.test_case "batch of 1 = per-op fsync" `Quick batch_of_one_degenerates;
        Alcotest.test_case "fsync error fans out to all members" `Quick
          fsync_error_fans_out;
        Alcotest.test_case "crash explorer: drop" `Slow
          (explorer_covers_group_commit Backend.Drop_unsynced);
        Alcotest.test_case "crash explorer: reorder" `Slow
          (explorer_covers_group_commit (Backend.Reorder_unsynced 7));
        Alcotest.test_case "commit_wait cause exported" `Quick commit_wait_cause_exported;
      ] );
  ]
