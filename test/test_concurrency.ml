(* Multi-domain concurrency tests (§3.2-§3.3): parallel puts and gets,
   atomic-scan snapshot invariants, concurrent splits, and the PO
   array's synchronization primitives. *)

open Evendb_storage
open Evendb_core

let tiny_config =
  {
    Config.default with
    max_chunk_bytes = 8 * 1024;
    munk_rebalance_bytes = 6 * 1024;
    munk_rebalance_appended = 64;
    funk_log_limit_no_munk = 2 * 1024;
    funk_log_limit_with_munk = 8 * 1024;
    munk_cache_capacity = 4;
    checkpoint_every_puts = 0;
  }

let key i = Printf.sprintf "key%06d" i

let parallel_disjoint_puts () =
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  let per_domain = 500 in
  let domains =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Db.put db (key ((d * per_domain) + i)) (Printf.sprintf "d%d-%d" d i)
            done))
  in
  List.iter Domain.join domains;
  for d = 0 to 2 do
    for i = 0 to per_domain - 1 do
      let k = key ((d * per_domain) + i) in
      if Db.get db k <> Some (Printf.sprintf "d%d-%d" d i) then
        Alcotest.failf "lost or wrong %s" k
    done
  done;
  Alcotest.(check int) "scan total" (3 * per_domain)
    (List.length (Db.scan db ~low:"" ~high:"zzzz" ()));
  Db.close db

let parallel_same_keys () =
  (* Contended overwrites: after the dust settles, each key holds the
     value of SOME completed put (no corruption, no resurrection). *)
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  let valid = Hashtbl.create 64 in
  for d = 0 to 2 do
    for r = 0 to 199 do
      Hashtbl.replace valid (Printf.sprintf "d%d-r%d" d r) ()
    done
  done;
  let domains =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            for r = 0 to 199 do
              for k = 0 to 9 do
                Db.put db (key k) (Printf.sprintf "d%d-r%d" d r)
              done
            done))
  in
  List.iter Domain.join domains;
  for k = 0 to 9 do
    match Db.get db (key k) with
    | Some v ->
      if not (Hashtbl.mem valid v) then Alcotest.failf "impossible value %s" v
    | None -> Alcotest.failf "key %d lost" k
  done;
  Db.close db

let readers_during_writes () =
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  for i = 0 to 99 do
    Db.put db (key i) "initial"
  done;
  let stop = Atomic.make false in
  let reader_errors = Atomic.make 0 in
  let readers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              for i = 0 to 99 do
                match Db.get db (key i) with
                | Some _ -> ()
                | None -> Atomic.incr reader_errors
              done
            done))
  in
  (* Writer churns values and forces splits/rebalances. *)
  for round = 0 to 20 do
    for i = 0 to 99 do
      Db.put db (key i) (Printf.sprintf "r%d" round)
    done
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Alcotest.(check int) "no reader ever missed a key" 0 (Atomic.get reader_errors);
  Db.close db

let scan_snapshot_monotone_pair () =
  (* Writer maintains the invariant a >= b (it writes a=i then b=i).
     Every atomic scan must observe b <= a; a non-atomic scan could
     see b > a (b written between reading a and b). *)
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  Db.put db "aaa" "0";
  Db.put db "bbb" "0";
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let scanner =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          let r = Db.scan db ~low:"aaa" ~high:"bbb" () in
          match (List.assoc_opt "aaa" r, List.assoc_opt "bbb" r) with
          | Some a, Some b ->
            if int_of_string b > int_of_string a then Atomic.incr violations
          | _ -> Atomic.incr violations
        done)
  in
  for i = 1 to 3000 do
    Db.put db "aaa" (string_of_int i);
    Db.put db "bbb" (string_of_int i)
  done;
  Atomic.set stop true;
  Domain.join scanner;
  Alcotest.(check int) "snapshot invariant held" 0 (Atomic.get violations);
  Db.close db

let scans_during_splits () =
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  let stop = Atomic.make false in
  let bad = Atomic.make 0 in
  let scanner =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          (* Count monotonicity: the store only grows in this test. *)
          let r = Db.scan db ~low:"" ~high:"zzzz" () in
          let sorted = List.sort compare r in
          if sorted <> r then Atomic.incr bad
        done)
  in
  for i = 0 to 1499 do
    Db.put db (key i) (String.make 64 'v')
  done;
  Atomic.set stop true;
  Domain.join scanner;
  Alcotest.(check int) "scans stayed sorted through splits" 0 (Atomic.get bad);
  Alcotest.(check bool) "splits did happen" true (Db.chunk_count db > 2);
  Db.close db

let concurrent_checkpoints () =
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  let writer =
    Domain.spawn (fun () ->
        for i = 0 to 999 do
          Db.put db (key i) "v"
        done)
  in
  for _ = 1 to 5 do
    Db.checkpoint db
  done;
  Domain.join writer;
  Db.checkpoint db;
  Env.crash env;
  let db = Db.open_ ~config:tiny_config env in
  Alcotest.(check int) "final checkpoint covered everything" 1000
    (List.length (Db.scan db ~low:"" ~high:"zzzz" ()));
  Db.close db

(* ---- Pending_ops primitives ---- *)

let po_put_protocol () =
  let po = Pending_ops.create ~slots:4 () in
  let slot = Pending_ops.begin_put po ~key:"k" in
  (* A scan waiting on this range must block until the put finishes. *)
  let released = Atomic.make false in
  let waiter =
    Domain.spawn (fun () ->
        Pending_ops.wait_pending_puts po ~low:"a" ~high:(Some "z") ~upto:100;
        Atomic.get released)
  in
  Thread.delay 0.05;
  Pending_ops.publish_put_version po slot ~key:"k" ~version:50;
  Thread.delay 0.05;
  Atomic.set released true;
  Pending_ops.finish po slot;
  Alcotest.(check bool) "waiter blocked until finish" true (Domain.join waiter)

let po_version_above_snapshot_not_awaited () =
  let po = Pending_ops.create ~slots:4 () in
  let slot = Pending_ops.begin_put po ~key:"k" in
  Pending_ops.publish_put_version po slot ~key:"k" ~version:200;
  (* Snapshot 100 < put version 200: no wait needed. *)
  Pending_ops.wait_pending_puts po ~low:"a" ~high:(Some "z") ~upto:100;
  Pending_ops.finish po slot

let po_disjoint_range_not_awaited () =
  let po = Pending_ops.create ~slots:4 () in
  let slot = Pending_ops.begin_put po ~key:"zz" in
  Pending_ops.wait_pending_puts po ~low:"a" ~high:(Some "m") ~upto:100;
  Pending_ops.finish po slot

let po_min_scan_version () =
  let po = Pending_ops.create ~slots:4 () in
  let s1 = Pending_ops.begin_scan po ~low:"a" ~high:(Some "m") in
  Pending_ops.publish_scan_version po s1 ~low:"a" ~high:(Some "m") ~version:42;
  Alcotest.(check int) "overlapping scan found" 42
    (Pending_ops.min_scan_version po ~low:"b" ~high:(Some "c") ~default:100);
  Alcotest.(check int) "disjoint range ignored" 100
    (Pending_ops.min_scan_version po ~low:"x" ~high:(Some "z") ~default:100);
  Alcotest.(check int) "capped at default" 42
    (Pending_ops.min_scan_version po ~low:"a" ~high:None ~default:100);
  Pending_ops.finish po s1

let po_exists_scan_between () =
  let po = Pending_ops.create ~slots:4 () in
  let s = Pending_ops.begin_scan po ~low:"a" ~high:(Some "z") in
  Pending_ops.publish_scan_version po s ~low:"a" ~high:(Some "z") ~version:10;
  Alcotest.(check bool) "scan inside window" true
    (Pending_ops.exists_scan_between po ~key:"k" ~old_version:8 ~new_version:12);
  Alcotest.(check bool) "scan below window" false
    (Pending_ops.exists_scan_between po ~key:"k" ~old_version:11 ~new_version:12);
  Alcotest.(check bool) "scan above window" false
    (Pending_ops.exists_scan_between po ~key:"k" ~old_version:5 ~new_version:10);
  Alcotest.(check bool) "key outside range" false
    (Pending_ops.exists_scan_between po ~key:"~~" ~old_version:8 ~new_version:12);
  Pending_ops.finish po s

let po_slot_exhaustion () =
  let po = Pending_ops.create ~slots:2 () in
  let s1 = Pending_ops.begin_put po ~key:"a" in
  let s2 = Pending_ops.begin_put po ~key:"b" in
  (* Third acquisition must block until a slot frees. *)
  let acquired = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let s3 = Pending_ops.begin_put po ~key:"c" in
        Atomic.set acquired true;
        Pending_ops.finish po s3)
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "blocked while full" false (Atomic.get acquired);
  Pending_ops.finish po s1;
  Domain.join d;
  Alcotest.(check bool) "acquired after release" true (Atomic.get acquired);
  Pending_ops.finish po s2

let split_eviction_stress () =
  (* Regression for the split/eviction race: concurrent writers force
     splits while the small munk cache forces evictions of freshly
     split chunks (previously corrupted the chunk index or hit the
     phase-2 assert). *)
  let env = Env.memory () in
  let config = { tiny_config with Config.munk_cache_capacity = 2 } in
  let db = Db.open_ ~config env in
  let n = 3000 in
  let domains =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            (* Each domain covers all 1500 keys, in a different order. *)
            for i = 0 to n - 1 do
              Db.put db (key ((i * ((6 * d) + 7)) mod 1500)) (Printf.sprintf "d%d-%d" d i)
            done))
  in
  List.iter Domain.join domains;
  (* Index integrity: scan sees each key exactly once, sorted. *)
  let r = Db.scan db ~low:"" ~high:"zzzz" () in
  let keys = List.map fst r in
  Alcotest.(check bool) "sorted" true (List.sort compare keys = keys);
  Alcotest.(check int) "no duplicates" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  Alcotest.(check bool) "all keys present" true (List.length keys = 1500);
  Db.close db

let suite =
  [
    ( "concurrency",
      [
        Alcotest.test_case "parallel disjoint puts" `Quick parallel_disjoint_puts;
        Alcotest.test_case "split/eviction stress" `Quick split_eviction_stress;
        Alcotest.test_case "contended same-key puts" `Quick parallel_same_keys;
        Alcotest.test_case "wait-free readers during writes" `Quick readers_during_writes;
        Alcotest.test_case "atomic scan pair invariant" `Quick scan_snapshot_monotone_pair;
        Alcotest.test_case "scans during splits" `Quick scans_during_splits;
        Alcotest.test_case "checkpoints under write load" `Quick concurrent_checkpoints;
      ] );
    ( "pending_ops",
      [
        Alcotest.test_case "put protocol blocking" `Quick po_put_protocol;
        Alcotest.test_case "newer put not awaited" `Quick po_version_above_snapshot_not_awaited;
        Alcotest.test_case "disjoint put not awaited" `Quick po_disjoint_range_not_awaited;
        Alcotest.test_case "min scan version" `Quick po_min_scan_version;
        Alcotest.test_case "exists_scan_between" `Quick po_exists_scan_between;
        Alcotest.test_case "slot exhaustion blocks" `Quick po_slot_exhaustion;
      ] );
  ]

let background_maintenance () =
  (* The paper's background threads: rebalances run on a maintainer
     domain; data stays intact and splits still happen. *)
  let env = Env.memory () in
  let config = { tiny_config with Config.background_maintenance = true } in
  let db = Db.open_ ~config env in
  let n = 3000 in
  let writers =
    List.init 2 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to (n / 2) - 1 do
              Db.put db (key ((d * n / 2) + i)) (String.make 64 'v')
            done))
  in
  List.iter Domain.join writers;
  (* Give the maintainer a moment, then force quiescence. *)
  Db.maintain db;
  Alcotest.(check bool) "splits happened" true (Db.chunk_count db > 2);
  for i = 0 to n - 1 do
    if Db.get db (key i) = None then Alcotest.failf "lost %s" (key i)
  done;
  Db.close db;
  (* close is idempotent and the maintainer is stopped *)
  Db.close db

let suite =
  suite
  @ [
      ( "background_maintenance",
        [ Alcotest.test_case "maintainer domain" `Quick background_maintenance ] );
    ]
