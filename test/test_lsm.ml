(* LSM baseline tests: correctness of the leveled engine so that the
   paper's comparisons measure performance, not bugs. *)

open Evendb_storage
open Evendb_lsm

let qtest = QCheck_alcotest.to_alcotest

let tiny_config =
  {
    Lsm.Config.default with
    memtable_bytes = 2 * 1024;
    level_base_bytes = 8 * 1024;
    target_file_bytes = 4 * 1024;
  }

let with_db ?(config = tiny_config) f =
  let env = Env.memory () in
  let db = Lsm.open_ ~config env in
  Fun.protect ~finally:(fun () -> Lsm.close db) (fun () -> f env db)

let key i = Printf.sprintf "key%06d" i

let put_get_delete () =
  with_db (fun _ db ->
      Lsm.put db "k" "v";
      Alcotest.(check (option string)) "get" (Some "v") (Lsm.get db "k");
      Lsm.put db "k" "v2";
      Alcotest.(check (option string)) "overwrite" (Some "v2") (Lsm.get db "k");
      Lsm.delete db "k";
      Alcotest.(check (option string)) "delete" None (Lsm.get db "k");
      Alcotest.(check (option string)) "absent" None (Lsm.get db "nope"))

let survives_flush_and_compaction () =
  with_db (fun _ db ->
      let n = 3000 in
      for i = 0 to n - 1 do
        Lsm.put db (key (i * 17 mod n)) (Printf.sprintf "v%d" i)
      done;
      Lsm.compact_now db;
      let counts = Lsm.level_file_counts db in
      Alcotest.(check bool) "deep levels populated" true (List.nth counts 1 + List.nth counts 2 > 0);
      for i = 0 to n - 1 do
        if Lsm.get db (key i) = None then Alcotest.failf "lost %s" (key i)
      done)

let deletes_across_levels () =
  with_db (fun _ db ->
      for i = 0 to 499 do
        Lsm.put db (key i) "v"
      done;
      Lsm.compact_now db;
      (* Tombstones land above the values, then compaction merges. *)
      for i = 0 to 99 do
        Lsm.delete db (key i)
      done;
      Lsm.compact_now db;
      for i = 0 to 99 do
        Alcotest.(check (option string)) "deleted stays deleted" None (Lsm.get db (key i))
      done;
      Alcotest.(check (option string)) "survivor intact" (Some "v") (Lsm.get db (key 100));
      Alcotest.(check int) "scan count" 400
        (List.length (Lsm.scan db ~low:"" ~high:"zzzz" ())))

let scan_semantics () =
  with_db (fun _ db ->
      for i = 0 to 99 do
        Lsm.put db (key i) (string_of_int i)
      done;
      Lsm.compact_now db;
      for i = 100 to 149 do
        Lsm.put db (key i) (string_of_int i)
      done;
      (* Scan spanning SSTables and the memtable. *)
      let r = Lsm.scan db ~low:(key 90) ~high:(key 110) () in
      Alcotest.(check int) "range size" 21 (List.length r);
      Alcotest.(check bool) "sorted" true (List.sort compare r = r);
      Alcotest.(check int) "limit" 5 (List.length (Lsm.scan db ~limit:5 ~low:"" ~high:"zzzz" ())))

let wal_recovery () =
  let env = Env.memory () in
  let db = Lsm.open_ ~config:tiny_config env in
  for i = 0 to 199 do
    Lsm.put db (key i) "persisted"
  done;
  Lsm.flush_wal db;
  Env.crash env;
  let db = Lsm.open_ ~config:tiny_config env in
  for i = 0 to 199 do
    Alcotest.(check (option string)) "replayed from WAL" (Some "persisted") (Lsm.get db (key i))
  done;
  Lsm.close db

let crash_loses_unsynced_wal () =
  let env = Env.memory () in
  let db = Lsm.open_ ~config:{ tiny_config with Lsm.Config.wal_fsync_every = 0 } env in
  Lsm.put db "k" "v";
  Env.crash env;
  let db = Lsm.open_ ~config:tiny_config env in
  Alcotest.(check (option string)) "unsynced put lost" None (Lsm.get db "k");
  Lsm.close db

let concurrent_readers_writer () =
  with_db (fun _ db ->
      for i = 0 to 99 do
        Lsm.put db (key i) "init"
      done;
      let stop = Atomic.make false in
      let misses = Atomic.make 0 in
      let readers =
        List.init 2 (fun _ ->
            Domain.spawn (fun () ->
                while not (Atomic.get stop) do
                  for i = 0 to 99 do
                    if Lsm.get db (key i) = None then Atomic.incr misses
                  done
                done))
      in
      for round = 0 to 10 do
        for i = 0 to 99 do
          Lsm.put db (key i) (Printf.sprintf "r%d" round)
        done
      done;
      Atomic.set stop true;
      List.iter Domain.join readers;
      Alcotest.(check int) "no reads lost during compactions" 0 (Atomic.get misses))

let scan_snapshot_invariant () =
  with_db (fun _ db ->
      Lsm.put db "aaa" "0";
      Lsm.put db "bbb" "0";
      let stop = Atomic.make false in
      let violations = Atomic.make 0 in
      let scanner =
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              let r = Lsm.scan db ~low:"aaa" ~high:"bbb" () in
              match (List.assoc_opt "aaa" r, List.assoc_opt "bbb" r) with
              | Some a, Some b ->
                if int_of_string b > int_of_string a then Atomic.incr violations
              | _ -> Atomic.incr violations
            done)
      in
      for i = 1 to 2000 do
        Lsm.put db "aaa" (string_of_int i);
        Lsm.put db "bbb" (string_of_int i)
      done;
      Atomic.set stop true;
      Domain.join scanner;
      Alcotest.(check int) "atomic scans" 0 (Atomic.get violations))

let model_random =
  QCheck.Test.make ~name:"lsm matches map model" ~count:20
    QCheck.(
      list_of_size
        Gen.(int_range 1 400)
        (pair (int_range 0 80) (option (string_of_size (Gen.return 4)))))
    (fun ops ->
      let env = Env.memory () in
      let db = Lsm.open_ ~config:tiny_config env in
      let module M = Map.Make (String) in
      let model = ref M.empty in
      List.iter
        (fun (k, v) ->
          let k = key k in
          (match v with Some v -> Lsm.put db k v | None -> Lsm.delete db k);
          model := M.add k v !model)
        ops;
      let ok = M.for_all (fun k v -> Lsm.get db k = v) !model in
      Lsm.close db;
      ok)

let write_amp_reported () =
  with_db (fun _ db ->
      for i = 0 to 999 do
        Lsm.put db (key i) (String.make 100 'v')
      done;
      Alcotest.(check bool) "wa > 1 (wal + flush)" true (Lsm.write_amplification db > 1.0))

let suite =
  [
    ( "lsm",
      [
        Alcotest.test_case "put/get/delete" `Quick put_get_delete;
        Alcotest.test_case "flush and compaction" `Quick survives_flush_and_compaction;
        Alcotest.test_case "deletes across levels" `Quick deletes_across_levels;
        Alcotest.test_case "scan semantics" `Quick scan_semantics;
        Alcotest.test_case "WAL recovery" `Quick wal_recovery;
        Alcotest.test_case "unsynced WAL lost on crash" `Quick crash_loses_unsynced_wal;
        Alcotest.test_case "readers during compactions" `Quick concurrent_readers_writer;
        Alcotest.test_case "scan snapshot invariant" `Quick scan_snapshot_invariant;
        Alcotest.test_case "write amplification reported" `Quick write_amp_reported;
        qtest model_random;
      ] );
  ]
