(* Integrity scrubbing and repair (PR 4).

   - single-byte flip detection: every sampled byte position of every
     file of a populated store, across all three engine layouts, must
     surface as a scrub finding when flipped;
   - repair: quarantines instead of deleting, rebuilds the manifest
     from the funk files, and never loses acked-and-synced writes;
   - degraded reads: a corrupt SSTable block yields typed failures and
     log fallbacks, never a crash;
   - the recovery orphan sweep must never touch quarantine/. *)

open Evendb_storage
open Evendb_check

let evendb_config =
  {
    Evendb_core.Config.default with
    persistence = Evendb_core.Config.Sync;
    max_chunk_bytes = 8 * 1024;
    munk_rebalance_bytes = 6 * 1024;
    munk_rebalance_appended = 64;
    funk_log_limit_no_munk = 2 * 1024;
    funk_log_limit_with_munk = 8 * 1024;
    munk_cache_capacity = 4;
  }

let key_of i = Printf.sprintf "k%04d" i
let value_of i = Printf.sprintf "value%04d" i

let build_evendb_store ?(items = 300) () =
  let env = Env.memory () in
  let db = Evendb_core.Db.open_ ~config:evendb_config env in
  for i = 0 to items - 1 do
    Evendb_core.Db.put db (key_of i) (value_of i)
  done;
  Evendb_core.Db.close db;
  env

let build_lsm_store () =
  let env = Env.memory () in
  let config =
    {
      Evendb_lsm.Lsm.Config.default with
      memtable_bytes = 2 * 1024;
      level_base_bytes = 8 * 1024;
      target_file_bytes = 4 * 1024;
      sync_writes = true;
    }
  in
  let db = Evendb_lsm.Lsm.open_ ~config env in
  for i = 0 to 299 do
    Evendb_lsm.Lsm.put db (key_of i) (value_of i)
  done;
  Evendb_lsm.Lsm.close db;
  env

let build_flsm_store () =
  let env = Env.memory () in
  let config =
    {
      Evendb_flsm.Flsm.Config.default with
      memtable_bytes = 2 * 1024;
      guard_bytes = 8 * 1024;
      sync_writes = true;
    }
  in
  let db = Evendb_flsm.Flsm.open_ ~config env in
  for i = 0 to 299 do
    Evendb_flsm.Flsm.put db (key_of i) (value_of i)
  done;
  Evendb_flsm.Flsm.close db;
  env

let rewrite env name data =
  let f = Env.create env name in
  Env.append f data;
  Env.fsync f;
  Env.close_file f

let flip_byte env name pos =
  let data = Env.read_all env name in
  let b = Bytes.of_string data in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5A));
  rewrite env name (Bytes.to_string b)

(* Sampled byte positions: exhaustive for small files, evenly spread
   (plus both edges, where headers and footers live) for larger ones. *)
let sample_positions len =
  if len <= 256 then List.init len (fun i -> i)
  else
    let spread = List.init 97 (fun i -> i * (len - 1) / 96) in
    let edges = List.init 8 (fun i -> i) @ List.init 8 (fun i -> len - 1 - i) in
    List.sort_uniq compare (spread @ edges)

let flips_detected label build () =
  let env = build () in
  let files =
    List.filter
      (fun n -> (not (Env.is_quarantined n)) && Env.size env n > 0)
      (Env.list_files env)
  in
  Alcotest.(check bool) (label ^ ": store has files") true (files <> []);
  Alcotest.(check bool) (label ^ ": clean before") true ((Scrub.scrub env).Scrub.findings = []);
  List.iter
    (fun name ->
      let original = Env.read_all env name in
      List.iter
        (fun pos ->
          flip_byte env name pos;
          let report = Scrub.scrub env in
          let hit =
            List.exists (fun (f : Scrub.finding) -> f.Scrub.f_file = name) report.Scrub.findings
          in
          if not hit then
            Alcotest.failf "%s: flip at %s[%d] undetected (%d findings elsewhere)" label name pos
              (List.length report.Scrub.findings);
          rewrite env name original)
        (sample_positions (String.length original)))
    files

let read_back env ~items =
  let db = Evendb_core.Db.open_ ~config:evendb_config env in
  Fun.protect
    ~finally:(fun () -> Evendb_core.Db.close db)
    (fun () ->
      for i = 0 to items - 1 do
        match Evendb_core.Db.get db (key_of i) with
        | Some v when v = value_of i -> ()
        | Some v -> Alcotest.failf "%s: wrong value %S" (key_of i) v
        | None -> Alcotest.failf "%s: lost" (key_of i)
      done)

(* A corrupt MANIFEST makes the store unopenable; repair rebuilds it
   from the funk files and every acked (sync-mode) write survives. *)
let repair_manifest_no_loss () =
  let items = 300 in
  let env = build_evendb_store ~items () in
  flip_byte env "MANIFEST" 3;
  (try
     ignore (Evendb_core.Db.open_ ~config:evendb_config env);
     Alcotest.fail "expected corruption on open"
   with Env.Corruption _ -> ());
  let report = Scrub.repair env in
  Alcotest.(check bool) "repair acted" true (report.Scrub.actions <> []);
  Alcotest.(check bool) "repair left no errors" true (Scrub.is_clean report);
  Alcotest.(check bool) "original quarantined" true
    (Env.exists env (Env.quarantined "MANIFEST"));
  read_back env ~items

(* With all data still in funk logs (no rebalance yet), wrecking an
   SSTable costs nothing: repair rebuilds it and every write survives. *)
let repair_sst_with_log_backup_no_loss () =
  let items = 20 in
  let env = build_evendb_store ~items () in
  flip_byte env "funk_00000000.sst" 2;
  let report = Scrub.repair env in
  Alcotest.(check bool) "repair left no errors" true (Scrub.is_clean report);
  read_back env ~items

(* Find an offset whose flip corrupts a data block only: the table
   still opens (header/index/bloom/footer intact) but verify fails. *)
let corrupt_one_data_block env name =
  let original = Env.read_all env name in
  let rec hunt pos =
    if pos >= String.length original then
      Alcotest.failf "%s: no data-block offset found" name
    else begin
      flip_byte env name pos;
      match
        let r = Evendb_sstable.Sstable.Reader.open_ env name in
        Evendb_sstable.Sstable.Reader.verify r
      with
      | () ->
        rewrite env name original;
        hunt (pos + 1)
      | exception Env.Corruption _ -> (
        match Evendb_sstable.Sstable.Reader.open_ env name with
        | _ -> () (* opens, but a block is bad: the shape we want *)
        | exception Env.Corruption _ ->
          rewrite env name original;
          hunt (pos + 1))
    end
  in
  hunt 8

(* Reads over a corrupt block degrade: typed Corruption or a log-served
   value — never an untyped crash — and detections are counted. *)
let degraded_reads_survive_corrupt_block () =
  let items = 300 in
  let env = build_evendb_store ~items () in
  (* Pick the largest funk SSTable: certainly holds rebalanced data. *)
  let sst =
    List.fold_left
      (fun best n ->
        if String.length n = 17 && String.sub n 0 5 = "funk_" && Filename.check_suffix n ".sst"
        then
          match best with
          | Some b when Env.size env b >= Env.size env n -> best
          | _ -> Some n
        else best)
      None (Env.list_files env)
  in
  let sst = match sst with Some s -> s | None -> Alcotest.fail "no funk sstable" in
  Alcotest.(check bool) "data-bearing table" true (Env.size env sst > 512);
  corrupt_one_data_block env sst;
  let db = Evendb_core.Db.open_ ~config:evendb_config env in
  Fun.protect
    ~finally:(fun () -> Evendb_core.Db.close db)
    (fun () ->
      let served = ref 0 and degraded = ref 0 in
      for i = 0 to items - 1 do
        match Evendb_core.Db.get db (key_of i) with
        | Some v when v = value_of i -> incr served
        | Some v -> Alcotest.failf "%s: wrong value %S" (key_of i) v
        | None -> Alcotest.failf "%s: silently missing" (key_of i)
        | exception Env.Corruption _ -> incr degraded
      done;
      Alcotest.(check bool) "most keys still served" true (!served > items / 2);
      Alcotest.(check bool) "detections counted" true (Env.corruptions_detected env > 0);
      (* Scans must not raise: the damaged chunk degrades to its log. *)
      ignore (Evendb_core.Db.scan db ~low:"" ~high:"zzzz" ());
      (* And the store still accepts writes. *)
      Evendb_core.Db.put db "probe" "alive";
      Alcotest.(check (option string)) "probe" (Some "alive") (Evendb_core.Db.get db "probe"))

let log_resyncs_counted () =
  let env = build_evendb_store ~items:20 () in
  (* All 20 writes live in the sentinel funk's log; tear one record. *)
  flip_byte env "funk_00000000.log" 6;
  let db = Evendb_core.Db.open_ ~config:evendb_config env in
  Fun.protect
    ~finally:(fun () -> Evendb_core.Db.close db)
    (fun () ->
      for i = 0 to 19 do
        ignore (Evendb_core.Db.get db (key_of i))
      done;
      Alcotest.(check bool) "resyncs counted" true (Env.log_resyncs env > 0))

(* The recovery orphan sweeps (all three engines) must never delete
   quarantined evidence — even files whose names would otherwise match
   the sweep patterns. *)
let quarantine_survives_recovery () =
  let evidence env =
    List.iter
      (fun n -> rewrite env (Env.quarantined n) "evidence")
      [ "funk_00000099.sst"; "lsm_99.sst"; "flsm_wal_99.log"; "stray.tmp" ]
  in
  let still_there env label =
    List.iter
      (fun n ->
        Alcotest.(check bool)
          (Printf.sprintf "%s keeps %s" label (Env.quarantined n))
          true
          (Env.exists env (Env.quarantined n)))
      [ "funk_00000099.sst"; "lsm_99.sst"; "flsm_wal_99.log"; "stray.tmp" ]
  in
  let env = build_evendb_store ~items:50 () in
  evidence env;
  Evendb_core.Db.close (Evendb_core.Db.open_ ~config:evendb_config env);
  still_there env "evendb";
  let env = build_lsm_store () in
  evidence env;
  Evendb_lsm.Lsm.close (Evendb_lsm.Lsm.open_ env);
  still_there env "lsm";
  let env = build_flsm_store () in
  evidence env;
  Evendb_flsm.Flsm.close (Evendb_flsm.Flsm.open_ env);
  still_there env "flsm"

(* The auxiliary namespaces added with snapshots/backup/replication
   (snapshots/<id>/ members, backup_*.evbk archives, REPL_LSN,
   FOLLOWER, FENCED) must scrub without a single finding — in
   particular no Unknown_file warning. *)
let aux_namespaces_scrub_clean () =
  let src = build_evendb_store ~items:60 () in
  let db = Evendb_core.Db.open_ ~config:evendb_config src in
  ignore (Evendb_core.Db.snapshot db ~id:"s1");
  Evendb_core.Db.fence db;
  Evendb_core.Db.close db;
  let dest = Env.memory () in
  ignore (Evendb_core.Backup.ship ~src ~dest ~snapshot_id:"s1" ());
  let follower_env = Env.memory () in
  let follower = Evendb_repl.Repl.Follower.open_ ~config:evendb_config follower_env in
  Evendb_repl.Repl.Follower.apply follower
    { Evendb_repl.Repl.lsn = 1; key = "k"; value = Some "v"; version = 1; counter = 0 };
  Evendb_repl.Repl.Follower.close follower;
  List.iter
    (fun (label, env) ->
      let report = Scrub.scrub env in
      if report.Scrub.findings <> [] then
        Alcotest.failf "%s: %d findings on a healthy store (first: %s)" label
          (List.length report.Scrub.findings)
          (match report.Scrub.findings with f :: _ -> f.Scrub.f_file | [] -> ""))
    [
      ("snapshot + FENCED", src);
      ("backup archives", dest);
      ("FOLLOWER + REPL_LSN", follower_env);
    ]

(* A member without a COMPLETE marker is crash debris the recovery
   sweep will drop: a Warning, never an Error. *)
let half_published_member_is_warning () =
  let env = build_evendb_store ~items:20 () in
  rewrite env (Env.snapshot_member ~id:"half" "funk_00000000.sst") "partial";
  let report = Scrub.scrub env in
  (match report.Scrub.findings with
  | [ f ] ->
    Alcotest.(check bool) "warning severity" true (f.Scrub.f_severity = Scrub.Warning);
    Alcotest.(check bool) "orphan kind" true (f.Scrub.f_kind = Scrub.Orphan)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  Alcotest.(check bool) "no errors" true (Scrub.is_clean report)

(* Repairing a store whose LIVE manifest is corrupt must not touch the
   healthy published snapshot: its members are private copies, not
   orphans of the rebuilt manifest. *)
let healthy_snapshot_survives_repair () =
  let items = 60 in
  let env = build_evendb_store ~items () in
  let db = Evendb_core.Db.open_ ~config:evendb_config env in
  ignore (Evendb_core.Db.snapshot db ~id:"keep");
  Evendb_core.Db.close db;
  flip_byte env "MANIFEST" 3;
  let report = Scrub.repair env in
  Alcotest.(check bool) "repair left no errors" true (Scrub.is_clean report);
  Alcotest.(check bool) "snapshot still published" true
    (Evendb_core.Snapshot.exists env ~id:"keep");
  let plen = String.length Env.quarantine_prefix in
  List.iter
    (fun n ->
      if
        Env.is_quarantined n
        && Env.split_snapshot (String.sub n plen (String.length n - plen)) <> None
      then Alcotest.failf "healthy snapshot member quarantined: %s" n)
    (Env.list_files env);
  read_back env ~items

(* A corrupt member invalidates the whole point-in-time copy: repair
   drops the snapshot rather than quarantining one member of it. *)
let corrupt_snapshot_member_drops_snapshot () =
  let env = build_evendb_store ~items:60 () in
  let db = Evendb_core.Db.open_ ~config:evendb_config env in
  ignore (Evendb_core.Db.snapshot db ~id:"bad");
  Evendb_core.Db.close db;
  flip_byte env (Env.snapshot_member ~id:"bad" "MANIFEST") 3;
  let report = Scrub.repair env in
  Alcotest.(check bool) "repair acted" true (report.Scrub.actions <> []);
  Alcotest.(check bool) "snapshot dropped" false (Evendb_core.Snapshot.exists env ~id:"bad");
  Alcotest.(check bool) "no member left behind" true
    (List.for_all (fun n -> Env.split_snapshot n = None) (Env.list_files env))

(* A flipped backup archive is untrusted evidence: quarantined, not
   deleted. *)
let corrupt_archive_quarantined () =
  let src = build_evendb_store ~items:60 () in
  let db = Evendb_core.Db.open_ ~config:evendb_config src in
  ignore (Evendb_core.Db.snapshot db ~id:"s1");
  Evendb_core.Db.close db;
  let dest = Env.memory () in
  ignore (Evendb_core.Backup.ship ~src ~dest ~snapshot_id:"s1" ());
  let name =
    match Evendb_core.Backup.list_archives dest with
    | (_, n) :: _ -> n
    | [] -> Alcotest.fail "no archive"
  in
  flip_byte dest name (Env.size dest name / 2);
  let report = Scrub.repair dest in
  Alcotest.(check bool) "quarantined" true (Env.exists dest (Env.quarantined name));
  Alcotest.(check bool) "gone from the live namespace" false (Env.exists dest name);
  Alcotest.(check bool) "post-repair clean" true (Scrub.is_clean report)

let suite_cases =
  [
    Alcotest.test_case "single-byte flips detected: evendb" `Slow
      (flips_detected "evendb" (fun () -> build_evendb_store ()));
    Alcotest.test_case "single-byte flips detected: lsm" `Slow
      (flips_detected "lsm" build_lsm_store);
    Alcotest.test_case "single-byte flips detected: flsm" `Slow
      (flips_detected "flsm" build_flsm_store);
    Alcotest.test_case "repair MANIFEST: no acked write lost" `Quick repair_manifest_no_loss;
    Alcotest.test_case "repair SSTable backed by log: no loss" `Quick
      repair_sst_with_log_backup_no_loss;
    Alcotest.test_case "corrupt block: reads degrade, never crash" `Quick
      degraded_reads_survive_corrupt_block;
    Alcotest.test_case "log resyncs are counted" `Quick log_resyncs_counted;
    Alcotest.test_case "recovery never sweeps quarantine/" `Quick quarantine_survives_recovery;
    Alcotest.test_case "aux namespaces scrub clean" `Quick aux_namespaces_scrub_clean;
    Alcotest.test_case "half-published member is a warning" `Quick
      half_published_member_is_warning;
    Alcotest.test_case "healthy snapshot survives repair" `Quick healthy_snapshot_survives_repair;
    Alcotest.test_case "corrupt snapshot member drops the snapshot" `Quick
      corrupt_snapshot_member_drops_snapshot;
    Alcotest.test_case "corrupt archive quarantined" `Quick corrupt_archive_quarantined;
  ]

let suite = [ ("scrub", suite_cases) ]
