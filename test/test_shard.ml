(* Range-sharded front end: routing, merged scans, persisted partition,
   crash durability through the shared environment, and the one-valid-
   exposition metrics contract. *)

open Evendb_storage
module Shard = Evendb_shard
module Config = Evendb_core.Config
module Db = Evendb_core.Db

let sync_config =
  {
    Config.default with
    persistence = Config.Sync;
    max_chunk_bytes = 8 * 1024;
    munk_rebalance_bytes = 6 * 1024;
    munk_rebalance_appended = 64;
    funk_log_limit_no_munk = 2 * 1024;
    funk_log_limit_with_munk = 8 * 1024;
    munk_cache_capacity = 4;
  }

let boundaries = [ "g"; "n" ]

let routing_and_point_ops () =
  let env = Env.memory () in
  let t = Shard.open_ ~config:sync_config ~boundaries env in
  Alcotest.(check int) "three shards" 3 (Shard.shard_count t);
  Alcotest.(check (list string)) "boundaries" boundaries (Shard.boundaries t);
  List.iter
    (fun (k, shard) -> Alcotest.(check int) ("route " ^ k) shard (Shard.route t k))
    [
      ("", 0);
      ("apple", 0);
      ("fzzz", 0);
      ("g", 1) (* boundary key belongs to the upper shard *);
      ("mango", 1);
      ("n", 2);
      ("zebra", 2);
    ];
  let pairs = [ ("apple", "0"); ("grape", "1"); ("mango", "2"); ("peach", "3") ] in
  List.iter (fun (k, v) -> Shard.put t k v) pairs;
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string)) ("get " ^ k) (Some v) (Shard.get t k);
      (* The value lives on the routed shard and nowhere else. *)
      for i = 0 to Shard.shard_count t - 1 do
        let here = Db.get (Shard.shard t i) k in
        if i = Shard.route t k then
          Alcotest.(check (option string)) (k ^ " on its shard") (Some v) here
        else
          Alcotest.(check (option string)) (k ^ " absent elsewhere") None here
      done)
    pairs;
  Shard.delete t "grape";
  Alcotest.(check (option string)) "deleted" None (Shard.get t "grape");
  Shard.close t

let scan_merges_across_shards () =
  let env = Env.memory () in
  let t = Shard.open_ ~config:sync_config ~boundaries env in
  let keys = List.init 26 (fun i -> String.make 1 (Char.chr (Char.code 'a' + i))) in
  (* Insert shuffled so arrival order never masks a merge bug. *)
  List.iter (fun k -> Shard.put t k ("v-" ^ k)) (List.rev keys);
  (* Db.scan treats [high] as inclusive; the shard merge must too. *)
  let expect lo hi = List.filter (fun k -> lo <= k && k <= hi) keys in
  let got lo hi = List.map fst (Shard.scan t ~low:lo ~high:hi ()) in
  Alcotest.(check (list string)) "full range" keys (got "" "zz");
  Alcotest.(check (list string)) "crosses both boundaries" (expect "c" "t") (got "c" "t");
  Alcotest.(check (list string)) "within one shard" (expect "h" "k") (got "h" "k");
  Alcotest.(check (list string)) "starts on a boundary" (expect "g" "p") (got "g" "p");
  Alcotest.(check (list string)) "singleton range" [ "x" ] (got "x" "x");
  Alcotest.(check (list string)) "empty range" [] (got "xa" "xz");
  (* Limit stops the merge mid-shard: first 5 keys of c..t, in order. *)
  Alcotest.(check (list string))
    "limit truncates across shards"
    [ "c"; "d"; "e"; "f"; "g" ]
    (List.map fst (Shard.scan t ~limit:5 ~low:"c" ~high:"t" ()));
  List.iter
    (fun (k, v) -> Alcotest.(check string) ("value of " ^ k) ("v-" ^ k) v)
    (Shard.scan t ~low:"" ~high:"zz" ());
  Shard.close t

let partition_persists_and_mismatch_rejected () =
  let env = Env.memory () in
  let t = Shard.open_ ~config:sync_config ~boundaries env in
  Shard.put t "apple" "1";
  Shard.put t "mango" "2";
  Shard.put t "zebra" "3";
  Shard.close t;
  (* Reopen without boundaries: the stored partition is authoritative. *)
  let t2 = Shard.open_ ~config:sync_config env in
  Alcotest.(check (list string)) "partition recovered" boundaries (Shard.boundaries t2);
  Alcotest.(check (option string)) "data intact" (Some "2") (Shard.get t2 "mango");
  Shard.close t2;
  (* Contradicting an existing partition must raise, not resplit. *)
  (match Shard.open_ ~config:sync_config ~boundaries:[ "q" ] env with
  | _ -> Alcotest.fail "mismatched boundaries accepted"
  | exception Invalid_argument _ -> ());
  (* Bad partitions rejected up front. *)
  (match Shard.open_ ~boundaries:[ "b"; "a" ] (Env.memory ()) with
  | _ -> Alcotest.fail "unsorted boundaries accepted"
  | exception Invalid_argument _ -> ());
  match Shard.open_ ~boundaries:(List.init 70 (Printf.sprintf "k%03d")) (Env.memory ()) with
  | _ -> Alcotest.fail "70 shards accepted"
  | exception Invalid_argument _ -> ()

let crash_keeps_acked_writes () =
  let env = Env.memory () in
  let t = Shard.open_ ~config:sync_config ~boundaries env in
  for i = 0 to 99 do
    Shard.put t (Printf.sprintf "%c%02d" (Char.chr (Char.code 'a' + (i mod 26))) i)
      (string_of_int i)
  done;
  Env.crash env;
  let t2 = Shard.open_ ~config:sync_config env in
  for i = 0 to 99 do
    let k = Printf.sprintf "%c%02d" (Char.chr (Char.code 'a' + (i mod 26))) i in
    Alcotest.(check (option string)) k (Some (string_of_int i)) (Shard.get t2 k)
  done;
  Alcotest.(check int) "scan after crash" 100
    (List.length (Shard.scan t2 ~low:"" ~high:"\xff" ()));
  Shard.close t2;
  Shard.close t

let concurrent_domains_across_shards () =
  let env = Env.memory () in
  let t = Shard.open_ ~config:sync_config ~boundaries env in
  (* One writer domain per shard region: the shards commit in parallel. *)
  let prefixes = [| "a"; "h"; "p" |] in
  let per_domain = 150 in
  let workers =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Shard.put t (Printf.sprintf "%s%04d" prefixes.(d) i) (Printf.sprintf "d%d-%d" d i)
            done))
  in
  List.iter Domain.join workers;
  for d = 0 to 2 do
    for i = 0 to per_domain - 1 do
      let k = Printf.sprintf "%s%04d" prefixes.(d) i in
      if Shard.get t k <> Some (Printf.sprintf "d%d-%d" d i) then
        Alcotest.failf "lost or wrong %s" k
    done
  done;
  Alcotest.(check int) "merged scan sees all" (3 * per_domain)
    (List.length (Shard.scan t ~low:"" ~high:"\xff" ()));
  Shard.close t

let has_sub sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let metrics_one_valid_exposition () =
  let env = Env.memory () in
  let t = Shard.open_ ~config:sync_config ~boundaries env in
  Shard.put t "apple" "1";
  Shard.put t "mango" "2";
  Shard.put t "zebra" "3";
  let prom = Shard.metrics_dump t `Prometheus in
  for i = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "shard %d labelled" i)
      true
      (has_sub (Printf.sprintf "shard=\"%d\"" i) prom)
  done;
  (* The exposition format forbids repeating # TYPE for a name: the
     merged dump must carry each exactly once. *)
  let type_lines =
    List.filter (has_sub "# TYPE ") (String.split_on_char '\n' prom)
  in
  Alcotest.(check int) "no duplicate TYPE lines"
    (List.length (List.sort_uniq compare type_lines))
    (List.length type_lines);
  Alcotest.(check bool) "commit metrics exported" true
    (has_sub "evendb_commit_batches" prom);
  let json = Shard.metrics_dump t `Json in
  Alcotest.(check bool) "json nests per shard" true (has_sub "\"shards\"" json);
  Shard.close t;
  (* close is idempotent *)
  Shard.close t

let suite =
  [
    ( "shard",
      [
        Alcotest.test_case "routing and point ops" `Quick routing_and_point_ops;
        Alcotest.test_case "scan merges across shards" `Quick scan_merges_across_shards;
        Alcotest.test_case "partition persists; mismatch rejected" `Quick
          partition_persists_and_mismatch_rejected;
        Alcotest.test_case "crash keeps acked writes" `Quick crash_keeps_acked_writes;
        Alcotest.test_case "concurrent domains across shards" `Quick
          concurrent_domains_across_shards;
        Alcotest.test_case "metrics: one valid exposition" `Quick
          metrics_one_valid_exposition;
      ] );
  ]
