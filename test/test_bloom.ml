(* Bloom filter tests: the no-false-negative invariant (a correctness
   requirement — a false negative would lose data on the read path),
   false-positive bounds, serialization, and the partitioned variant's
   segment accounting. *)

open Evendb_bloom

let qtest = QCheck_alcotest.to_alcotest

let no_false_negatives =
  QCheck.Test.make ~name:"bloom: no false negatives" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (string_of_size Gen.(int_range 1 16)))
    (fun keys ->
      let b = Bloom.create (List.length keys) in
      List.iter (Bloom.add b) keys;
      List.for_all (Bloom.mem b) keys)

let false_positive_rate () =
  let n = 2000 in
  let b = Bloom.create ~bits_per_key:10 n in
  for i = 0 to n - 1 do
    Bloom.add b (Printf.sprintf "present%08d" i)
  done;
  let fp = ref 0 in
  let probes = 10_000 in
  for i = 0 to probes - 1 do
    if Bloom.mem b (Printf.sprintf "absent%08d" i) then incr fp
  done;
  let rate = float_of_int !fp /. float_of_int probes in
  (* 10 bits/key gives ~1%; allow generous slack. *)
  Alcotest.(check bool) (Printf.sprintf "fp rate %.4f < 0.05" rate) true (rate < 0.05)

let serialization_roundtrip =
  QCheck.Test.make ~name:"bloom: serialize/deserialize" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 50) (string_of_size Gen.(int_range 1 8)))
    (fun keys ->
      let b = Bloom.create (List.length keys) in
      List.iter (Bloom.add b) keys;
      let b' = Bloom.deserialize (Bloom.serialize b) in
      List.for_all (Bloom.mem b') keys)

let deserialize_garbage () =
  Alcotest.check_raises "garbage rejected"
    (Invalid_argument "Bloom.deserialize: malformed input") (fun () ->
      ignore (Bloom.deserialize "not a bloom filter"))

let empty_filter () =
  let b = Bloom.create 10 in
  Alcotest.(check bool) "nothing present" false (Bloom.mem b "anything");
  Alcotest.(check (float 0.0001)) "no bits set" 0.0 (Bloom.fill_ratio b)

(* ---- Partitioned bloom ---- *)

let partitioned_segments () =
  let p = Partitioned_bloom.create ~segment_bytes:100 ~expected_keys_per_segment:16 () in
  (* Three segments worth of appends. *)
  for i = 0 to 29 do
    Partitioned_bloom.add p ~key:(Printf.sprintf "k%02d" i) ~log_offset:(i * 10)
  done;
  Alcotest.(check int) "segment count" 3 (Partitioned_bloom.segment_count p);
  (* A key in the first segment: its byte range must cover its offset. *)
  let segs = Partitioned_bloom.segments_maybe_containing p "k03" in
  Alcotest.(check bool) "found somewhere" true (segs <> []);
  Alcotest.(check bool) "covers offset 30" true
    (List.exists (fun (lo, hi) -> lo <= 30 && 30 < hi) segs)

let partitioned_no_false_negative =
  QCheck.Test.make ~name:"partitioned bloom: no false negatives" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 100) (string_of_size Gen.(int_range 1 12)))
    (fun keys ->
      let p = Partitioned_bloom.create ~segment_bytes:64 ~expected_keys_per_segment:8 () in
      List.iteri (fun i k -> Partitioned_bloom.add p ~key:k ~log_offset:(i * 16)) keys;
      List.for_all
        (fun k ->
          Partitioned_bloom.may_contain p k
          && Partitioned_bloom.segments_maybe_containing p k <> [])
        keys)

let partitioned_ranges_newest_first () =
  let p = Partitioned_bloom.create ~segment_bytes:50 ~expected_keys_per_segment:8 () in
  (* Same key in two segments: ranges must come newest first. *)
  Partitioned_bloom.add p ~key:"dup" ~log_offset:0;
  for i = 1 to 9 do
    Partitioned_bloom.add p ~key:(Printf.sprintf "pad%d" i) ~log_offset:(i * 10)
  done;
  Partitioned_bloom.add p ~key:"dup" ~log_offset:100;
  let segs = Partitioned_bloom.segments_maybe_containing p "dup" in
  Alcotest.(check bool) "at least two segments" true (List.length segs >= 2);
  (match segs with
  | (lo1, _) :: (lo2, _) :: _ ->
    Alcotest.(check bool) "newest first" true (lo1 > lo2)
  | _ -> Alcotest.fail "expected 2+ segments");
  (* Tail segment is open-ended. *)
  match segs with
  | (_, hi) :: _ -> Alcotest.(check int) "open tail" max_int hi
  | [] -> Alcotest.fail "no segments"

let partitioned_absent_key () =
  let p = Partitioned_bloom.create ~segment_bytes:100 ~expected_keys_per_segment:8 () in
  for i = 0 to 19 do
    Partitioned_bloom.add p ~key:(Printf.sprintf "key%04d" i) ~log_offset:(i * 20)
  done;
  (* Probing many absent keys: most must return no segments (the
     point of the filter: bounding log searches). *)
  let hits = ref 0 in
  for i = 0 to 999 do
    if Partitioned_bloom.segments_maybe_containing p (Printf.sprintf "no%06d" i) <> [] then
      incr hits
  done;
  Alcotest.(check bool) "few false positives" true (!hits < 100)

let suite =
  [
    ( "bloom",
      [
        qtest no_false_negatives;
        Alcotest.test_case "false-positive rate" `Quick false_positive_rate;
        qtest serialization_roundtrip;
        Alcotest.test_case "garbage rejected" `Quick deserialize_garbage;
        Alcotest.test_case "empty filter" `Quick empty_filter;
      ] );
    ( "partitioned_bloom",
      [
        Alcotest.test_case "segment rotation" `Quick partitioned_segments;
        Alcotest.test_case "ranges newest first, open tail" `Quick partitioned_ranges_newest_first;
        Alcotest.test_case "absent keys mostly filtered" `Quick partitioned_absent_key;
        qtest partitioned_no_false_negative;
      ] );
  ]
