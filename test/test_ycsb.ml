(* Workload-suite tests: key encodings, distribution plumbing, the
   trace generator, and a small end-to-end runner exercise on every
   engine. *)

open Evendb_storage
open Evendb_ycsb

let qtest = QCheck_alcotest.to_alcotest

(* ---- Keys ---- *)

let encode_decode =
  QCheck.Test.make ~name:"key encode/decode" ~count:300
    QCheck.(int_bound ((1 lsl 30) - 1))
    (fun v -> Keys.decode (Keys.encode v) = v)

let encoding_order =
  QCheck.Test.make ~name:"key encoding preserves order" ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) -> compare a b = compare (Keys.encode a) (Keys.encode b))

let composite_structure () =
  let k = Keys.composite ~prefix:5 ~suffix:0 in
  let low, high = Keys.composite_range ~prefix:5 in
  Alcotest.(check string) "low is suffix 0" k low;
  Alcotest.(check bool) "low <= high" true (String.compare low high <= 0);
  (* Keys of different prefixes never interleave. *)
  let _, high5 = Keys.composite_range ~prefix:5 in
  let low6, _ = Keys.composite_range ~prefix:6 in
  Alcotest.(check bool) "prefix ranges disjoint" true (String.compare high5 low6 < 0)

let key_length () =
  Alcotest.(check int) "14-byte keys (paper)" 14 (String.length (Keys.encode 0));
  Alcotest.(check int) "14-byte max" 14 (String.length (Keys.encode ((1 lsl 32) - 1)))

(* ---- Workload ---- *)

let load_keys_sorted () =
  List.iter
    (fun dist ->
      let sh = Workload.create_shared dist ~items:500 ~seed:1 in
      let keys = Workload.load_keys sh in
      let sorted = List.sort String.compare keys in
      Alcotest.(check bool)
        (Workload.dist_name dist ^ " load keys sorted")
        true (keys = sorted))
    [ Workload.Zipf_simple 0.99; Workload.Zipf_composite 0.99; Workload.Latest ]

let uniform_no_preload () =
  let sh = Workload.create_shared Workload.Uniform ~items:100 ~seed:1 in
  Alcotest.(check int) "uniform: pure ingestion" 0 (List.length (Workload.load_keys sh))

let samples_hit_loaded_keys () =
  List.iter
    (fun dist ->
      let sh = Workload.create_shared dist ~items:400 ~seed:2 in
      let keys = Workload.load_keys sh in
      let set = Hashtbl.create 512 in
      List.iter (fun k -> Hashtbl.replace set k ()) keys;
      let w = Workload.thread sh ~id:0 in
      for _ = 1 to 500 do
        let k = Workload.sample_key w in
        if not (Hashtbl.mem set k) then
          Alcotest.failf "%s sampled non-existent key %s" (Workload.dist_name dist) k
      done)
    [ Workload.Zipf_simple 0.99; Workload.Zipf_composite 0.99; Workload.Latest ]

let inserts_advance_count () =
  let sh = Workload.create_shared (Workload.Zipf_simple 0.99) ~items:10 ~seed:3 in
  let w = Workload.thread sh ~id:0 in
  let k1 = Workload.insert_key w in
  Alcotest.(check int) "count grew" 11 (Workload.current_items sh);
  let k2 = Workload.insert_key w in
  Alcotest.(check bool) "fresh keys differ" true (k1 <> k2)

let values_sized () =
  let sh = Workload.create_shared ~value_bytes:128 (Workload.Zipf_simple 0.99) ~items:10 ~seed:4 in
  let w = Workload.thread sh ~id:0 in
  Alcotest.(check int) "value size" 128 (String.length (Workload.make_value w));
  Alcotest.(check bool) "values vary" true (Workload.make_value w <> Workload.make_value w)

let composite_sampling_skew () =
  (* Composite keys: the hottest prefix must receive far more accesses
     than a random one. *)
  let sh = Workload.create_shared (Workload.Zipf_composite 0.99) ~items:6400 ~seed:5 in
  let w = Workload.thread sh ~id:0 in
  let counts = Hashtbl.create 128 in
  for _ = 1 to 5000 do
    let k = Workload.sample_key w in
    let prefix = String.sub k 0 8 in
    Hashtbl.replace counts prefix (1 + Option.value ~default:0 (Hashtbl.find_opt counts prefix))
  done;
  let max_count = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  Alcotest.(check bool) "head prefix dominates" true (max_count > 5000 / 20)

let mix_table_validation () =
  (try
     let e = Engine.evendb (Env.memory ()) in
     ignore (Runner.run e (Workload.create_shared (Workload.Zipf_simple 0.99) ~items:10 ~seed:1)
               [ (Runner.Read, 50) ] ~ops:10 ~threads:1);
     Alcotest.fail "expected mix rejection"
   with Invalid_argument _ -> ())

(* ---- Trace ---- *)

let trace_deterministic () =
  let t1 = Trace.create ~apps:100 ~seed:9 () in
  let t2 = Trace.create ~apps:100 ~seed:9 () in
  for _ = 1 to 100 do
    let k1, _ = Trace.next_event t1 and k2, _ = Trace.next_event t2 in
    Alcotest.(check string) "same stream" k1 k2
  done

let trace_keys_prefix_grouped () =
  let t = Trace.create ~apps:50 ~seed:10 () in
  for _ = 1 to 200 do
    let k, _ = Trace.next_event t in
    let app = Trace.app_of_key k in
    let low, high = Trace.app_range t app in
    if not (String.compare low k <= 0 && String.compare k high <= 0) then
      Alcotest.failf "key %s outside its app range" k
  done

let trace_heavy_tail () =
  let t = Trace.create ~apps:1000 ~theta:1.7 ~seed:11 () in
  let pop = Trace.popularity t ~samples:50_000 in
  let head = List.fold_left (fun acc (r, p) -> if r <= 10 then acc +. p else acc) 0.0 pop in
  Alcotest.(check bool) "top 1% heavy" true (head > 0.5)

(* ---- Runner over all engines ---- *)

let runner_end_to_end () =
  List.iter
    (fun (name, make) ->
      let e : Engine.t = make (Env.memory ()) in
      let sh = Workload.create_shared ~value_bytes:64 (Workload.Zipf_simple 0.99) ~items:200 ~seed:6 in
      Runner.load e sh;
      let r = Runner.run e sh Runner.workload_a ~ops:400 ~threads:2 in
      Alcotest.(check int) (name ^ " all ops ran") 400 r.Runner.ops;
      Alcotest.(check bool) (name ^ " latencies recorded") true
        (Evendb_util.Histogram.count r.Runner.get_hist > 0
        && Evendb_util.Histogram.count r.Runner.put_hist > 0);
      let r = Runner.run e sh (Runner.workload_e 10) ~ops:200 ~threads:1 in
      Alcotest.(check bool) (name ^ " scans recorded") true
        (Evendb_util.Histogram.count r.Runner.scan_hist > 0);
      e.Engine.close ())
    [
      ("evendb", Engine.evendb ?config:None);
      ("lsm", Engine.lsm ?config:None);
      ("flsm", Engine.flsm ?config:None);
    ]

let suite =
  [
    ( "keys",
      [
        Alcotest.test_case "composite structure" `Quick composite_structure;
        Alcotest.test_case "key length" `Quick key_length;
        qtest encode_decode;
        qtest encoding_order;
      ] );
    ( "workload",
      [
        Alcotest.test_case "load keys sorted" `Quick load_keys_sorted;
        Alcotest.test_case "uniform has no preload" `Quick uniform_no_preload;
        Alcotest.test_case "samples hit loaded keys" `Quick samples_hit_loaded_keys;
        Alcotest.test_case "inserts advance count" `Quick inserts_advance_count;
        Alcotest.test_case "value sizing" `Quick values_sized;
        Alcotest.test_case "composite skew" `Quick composite_sampling_skew;
        Alcotest.test_case "mix validation" `Quick mix_table_validation;
      ] );
    ( "trace",
      [
        Alcotest.test_case "deterministic" `Quick trace_deterministic;
        Alcotest.test_case "keys grouped by app" `Quick trace_keys_prefix_grouped;
        Alcotest.test_case "heavy tail" `Quick trace_heavy_tail;
      ] );
    ("runner", [ Alcotest.test_case "end to end, all engines" `Quick runner_end_to_end ]);
  ]

(* Differential testing: all three engines must agree with each other
   (and a model map) on the same randomized operation sequence —
   catches divergence between the paper system and its baselines that
   would silently invalidate every comparison benchmark. *)
let engines_agree =
  QCheck.Test.make ~name:"evendb/lsm/flsm agree on random ops" ~count:15
    QCheck.(
      list_of_size
        Gen.(int_range 1 300)
        (triple (int_range 0 50) (option (string_of_size (Gen.return 6))) (int_range 0 9)))
    (fun ops ->
      let mk f = f ?config:None (Env.memory ()) in
      let engines = [ mk Engine.evendb; mk Engine.lsm; mk Engine.flsm ] in
      let key i = Printf.sprintf "key%04d" i in
      let module M = Map.Make (String) in
      let model = ref M.empty in
      List.iter
        (fun (k, v, _) ->
          let k = key k in
          (match v with
          | Some v -> List.iter (fun (e : Engine.t) -> e.Engine.put k v) engines
          | None -> List.iter (fun (e : Engine.t) -> e.Engine.delete k) engines);
          model := M.add k v !model)
        ops;
      let gets_agree =
        M.for_all
          (fun k expected ->
            List.for_all (fun (e : Engine.t) -> e.Engine.get k = expected) engines)
          !model
      in
      let expected_scan =
        M.fold (fun k v acc -> match v with Some x -> (k, x) :: acc | None -> acc) !model []
        |> List.sort compare
      in
      let scans_agree =
        List.for_all
          (fun (e : Engine.t) ->
            e.Engine.scan ~low:"" ~high:"zzzz" ~limit:max_int = expected_scan)
          engines
      in
      List.iter (fun (e : Engine.t) -> e.Engine.close ()) engines;
      gets_agree && scans_agree)

let suite =
  suite @ [ ("differential", [ qtest engines_agree ]) ]
