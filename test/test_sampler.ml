(* Continuous-telemetry tests: windowed sampler correctness (delta
   percentiles vs a rank-based reference), ring and journal bounds,
   journal integrity under corruption and crash, the multi-domain
   sampler under concurrent load, the loopback HTTP endpoint, and
   fsck's handling of the telemetry namespace. *)

open Evendb_storage
open Evendb_core
module Obs = Evendb_obs.Obs
module Tel = Evendb_telemetry
module Sampler = Tel.Sampler
module Journal = Tel.Journal
module Scrub = Evendb_check.Scrub

let with_disk_env f =
  let dir = Filename.temp_file "evendb_sampler" "" in
  Sys.remove dir;
  let env = Env.disk dir in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun name -> try Env.delete env name with _ -> ()) (Env.list_files env);
      List.iter
        (fun sub -> try Unix.rmdir (Filename.concat dir sub) with _ -> ())
        [ "telemetry"; "quarantine" ];
      try Unix.rmdir dir with _ -> ())
    (fun () -> f dir env)

(* ------------------------------------------------------------------ *)
(* Windowed percentiles: the sampler's bucket-delta estimates must
   match a rank-based reference over exactly the window's values — a
   contaminated window (warmup leaking in) is off by orders of
   magnitude because the warmup distribution is disjoint. *)

let reference_percentile values p =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))) in
  List.nth sorted (rank - 1)

let windowed_percentiles () =
  let obs = Obs.create () in
  let tm = Obs.timer obs "lat" in
  (* Warmup: a disjoint, much slower distribution. *)
  for _ = 1 to 500 do
    Obs.Timer.record_ns tm 50_000_000
  done;
  let s = Sampler.create ~sources:[ ("", obs) ] () in
  ignore (Sampler.tick s);
  (* The window under test: 1..1000 µs. *)
  let values = List.init 1000 (fun i -> (i + 1) * 1_000) in
  List.iter (Obs.Timer.record_ns tm) values;
  let sample = Sampler.tick s in
  let w = List.assoc "lat" sample.Sampler.s_timers in
  Alcotest.(check int) "window count" 1000 w.Sampler.w_count;
  let mean_ref = List.fold_left ( + ) 0 values |> float_of_int in
  let mean_ref = mean_ref /. 1000. in
  Alcotest.(check bool)
    (Printf.sprintf "windowed mean %.1f ~ %.1f" w.Sampler.w_mean_ns mean_ref)
    true
    (Float.abs (w.Sampler.w_mean_ns -. mean_ref) /. mean_ref < 0.001);
  List.iter
    (fun (p, got) ->
      let r = reference_percentile values p in
      (* Bucket upper bounds: got >= true value, within the histogram's
         2^-6 sub-bucket resolution. *)
      let ok = got >= r && float_of_int got <= (float_of_int r *. 1.04) +. 64. in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f: got %d, reference %d" p got r)
        true ok)
    [ (50., w.Sampler.w_p50_ns); (95., w.Sampler.w_p95_ns); (99., w.Sampler.w_p99_ns) ];
  (* Max: bucket estimate of 1000µs, never contaminated by the 50ms
     warmup. *)
  Alcotest.(check bool) "windowed max ~ 1ms, not 50ms" true
    (w.Sampler.w_max_ns >= 1_000_000 && w.Sampler.w_max_ns < 2_000_000);
  (* A quiet window drops the timer entirely. *)
  let sample3 = Sampler.tick s in
  Alcotest.(check bool) "quiet window omits timer" true
    (List.assoc_opt "lat" sample3.Sampler.s_timers = None)

let counter_deltas_and_gauges () =
  let obs = Obs.create () in
  let c = Obs.counter obs "events" in
  let gauge = Obs.gauge obs "level" in
  let s = Sampler.create ~extra:(fun () -> [ ("extra.g", 7) ]) ~sources:[ ("", obs) ] () in
  Obs.Counter.add c 5;
  Obs.Gauge.set gauge 42;
  let s1 = Sampler.tick s in
  Alcotest.(check (option int)) "delta 5" (Some 5) (List.assoc_opt "events" s1.Sampler.s_deltas);
  Alcotest.(check (option int)) "gauge 42" (Some 42) (List.assoc_opt "level" s1.Sampler.s_gauges);
  Alcotest.(check (option int)) "extra gauge" (Some 7) (List.assoc_opt "extra.g" s1.Sampler.s_gauges);
  Obs.Counter.add c 3;
  let s2 = Sampler.tick s in
  Alcotest.(check (option int)) "delta 3" (Some 3) (List.assoc_opt "events" s2.Sampler.s_deltas);
  let s3 = Sampler.tick s in
  Alcotest.(check (option int)) "zero delta omitted" None (List.assoc_opt "events" s3.Sampler.s_deltas);
  Alcotest.(check (option int)) "gauge persists" (Some 42) (List.assoc_opt "level" s3.Sampler.s_gauges)

let ring_bound () =
  let obs = Obs.create () in
  let s = Sampler.create ~ring:4 ~sources:[ ("", obs) ] () in
  for _ = 1 to 10 do
    ignore (Sampler.tick s)
  done;
  let seqs = List.map (fun x -> x.Sampler.s_seq) (Sampler.samples s) in
  Alcotest.(check (list int)) "ring keeps newest 4" [ 6; 7; 8; 9 ] seqs;
  let last2 = List.map (fun x -> x.Sampler.s_seq) (Sampler.samples ~last:2 s) in
  Alcotest.(check (list int)) "last=2" [ 8; 9 ] last2

let json_roundtrip () =
  let obs = Obs.create () in
  let c = Obs.counter obs "n" in
  let tm = Obs.timer obs "t" in
  let s = Sampler.create ~sources:[ ("", obs) ] () in
  Obs.Counter.add c 2;
  Obs.Timer.record_ns tm 5_000;
  ignore (Sampler.tick s);
  Obs.Counter.add c 4;
  Obs.Timer.record_ns tm 9_000;
  ignore (Sampler.tick s);
  let parsed = Sampler.samples_of_json (Sampler.to_json s) in
  Alcotest.(check int) "two samples" 2 (List.length parsed);
  let orig = Sampler.samples s in
  List.iter2
    (fun a b ->
      Alcotest.(check int) "seq" a.Sampler.s_seq b.Sampler.s_seq;
      Alcotest.(check bool) "deltas" true (a.Sampler.s_deltas = b.Sampler.s_deltas);
      Alcotest.(check bool) "gauges" true (a.Sampler.s_gauges = b.Sampler.s_gauges);
      Alcotest.(check int) "timers" (List.length a.Sampler.s_timers)
        (List.length b.Sampler.s_timers))
    orig parsed

(* ------------------------------------------------------------------ *)
(* Journal *)

let journal_rotate_prune_replay () =
  let env = Env.memory () in
  let j = Journal.create env ~segment_bytes:256 ~max_segments:2 in
  let records = List.init 30 (fun i -> Printf.sprintf "record-%03d-%s" i (String.make 20 'x')) in
  List.iter (Journal.append j) records;
  Journal.close j;
  let segs = Journal.list_segments env in
  Alcotest.(check bool)
    (Printf.sprintf "pruned to <= 2 segments (got %d)" (List.length segs))
    true
    (List.length segs <= 2);
  let replayed = Journal.replay env in
  Alcotest.(check bool) "replay non-empty" true (replayed <> []);
  (* Replay must be a contiguous suffix of what was appended. *)
  let n = List.length replayed in
  let expected = List.filteri (fun i _ -> i >= 30 - n) records in
  Alcotest.(check (list string)) "replay = appended suffix" expected replayed

let journal_fresh_segment_per_create () =
  let env = Env.memory () in
  let j0 = Journal.create env ~segment_bytes:4096 ~max_segments:4 in
  Journal.append j0 "first-incarnation";
  Journal.close j0;
  let j1 = Journal.create env ~segment_bytes:4096 ~max_segments:4 in
  Journal.append j1 "second-incarnation";
  Journal.close j1;
  Alcotest.(check int) "two segments" 2 (List.length (Journal.list_segments env));
  Alcotest.(check (list string)) "replay crosses incarnations"
    [ "first-incarnation"; "second-incarnation" ] (Journal.replay env)

let journal_crc_flip_rejected () =
  with_disk_env (fun dir env ->
      let j = Journal.create env ~segment_bytes:65536 ~max_segments:2 in
      List.iter (Journal.append j) [ "alpha-record"; "beta-record"; "gamma-record" ];
      Journal.close j;
      let name = Journal.segment_name 0 in
      let ck = Journal.check env name in
      Alcotest.(check int) "3 clean records" 3 ck.Journal.ck_records;
      Alcotest.(check bool) "clean" true (ck.Journal.ck_error = None);
      (* Flip one payload byte of the second record on disk. The first
         frame is magic(6) + varint(1) + "alpha-record"(12) + crc(4);
         offset 24 lands inside "beta-record"'s payload. *)
      let path = Filename.concat dir name in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      let off = 24 in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      let ck = Journal.check env name in
      Alcotest.(check int) "only the prefix survives" 1 ck.Journal.ck_records;
      Alcotest.(check bool) "checksum error reported" true
        (match ck.Journal.ck_error with Some e -> e = "bad record checksum" | None -> false);
      Alcotest.(check (list string)) "records stop at the flip" [ "alpha-record" ]
        (Journal.records env name))

let journal_survives_crash () =
  let env = Env.memory () in
  let j = Journal.create env ~segment_bytes:65536 ~max_segments:4 in
  List.iter (Journal.append j) [ "r0"; "r1"; "r2"; "r3"; "r4" ];
  (* No close: the process dies here. Every append fsyncs, so all five
     frames survive the crash. *)
  Env.crash env;
  Alcotest.(check (list string)) "all fsynced records replay" [ "r0"; "r1"; "r2"; "r3"; "r4" ]
    (Journal.replay env);
  (* The next incarnation starts a fresh segment above the survivor. *)
  let j2 = Journal.create env ~segment_bytes:65536 ~max_segments:4 in
  Journal.append j2 "after-crash";
  Journal.close j2;
  Alcotest.(check (list string)) "history accumulates across the crash"
    [ "r0"; "r1"; "r2"; "r3"; "r4"; "after-crash" ] (Journal.replay env)

let journal_torn_tail_tolerated () =
  let env = Env.memory () in
  let j = Journal.create env ~segment_bytes:65536 ~max_segments:4 in
  Journal.append j "good-one";
  Journal.append j "good-two";
  Journal.close j;
  let name = Journal.segment_name 0 in
  (* A torn frame: claims 100 payload bytes, delivers 7. *)
  let f = Env.open_append env name in
  Env.append f "\100half-fr";
  Env.fsync f;
  Env.close_file f;
  let ck = Journal.check env name in
  Alcotest.(check int) "valid prefix parses" 2 ck.Journal.ck_records;
  Alcotest.(check bool) "truncation reported" true
    (ck.Journal.ck_error = Some "truncated record");
  Alcotest.(check (list string)) "replay stops at the tear" [ "good-one"; "good-two" ]
    (Journal.replay env)

(* ------------------------------------------------------------------ *)
(* Concurrency: a fast background sampler racing writers on several
   domains must lose nothing — after the dust settles, the summed
   per-window deltas equal the lifetime totals. *)

let multi_domain_hammer () =
  let obs = Obs.create () in
  let c = Obs.counter obs "ops" in
  let tm = Obs.timer obs "lat" in
  let s = Sampler.create ~ring:4096 ~sources:[ ("", obs) ] () in
  Sampler.start s ~interval_ns:1_000_000;
  let per_domain = 20_000 in
  let domains =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Counter.incr c;
              Obs.Timer.record_ns tm (1_000 + (((d * per_domain) + i) mod 1_000_000))
            done))
  in
  List.iter Domain.join domains;
  Sampler.stop s;
  ignore (Sampler.tick s);
  let samples = Sampler.samples s in
  Alcotest.(check bool)
    (Printf.sprintf "background domain ticked (%d samples)" (List.length samples))
    true
    (List.length samples >= 1);
  let sum_deltas =
    List.fold_left
      (fun acc x ->
        acc + match List.assoc_opt "ops" x.Sampler.s_deltas with Some d -> d | None -> 0)
      0 samples
  in
  Alcotest.(check int) "counter deltas sum to lifetime" (3 * per_domain) sum_deltas;
  let sum_counts =
    List.fold_left
      (fun acc x ->
        acc
        + match List.assoc_opt "lat" x.Sampler.s_timers with
          | Some w -> w.Sampler.w_count
          | None -> 0)
      0 samples
  in
  Alcotest.(check int) "windowed op counts sum to lifetime" (3 * per_domain) sum_counts

(* ------------------------------------------------------------------ *)
(* HTTP endpoint, over a live store. *)

let http_endpoint_smoke () =
  let config =
    {
      (Config.scaled ~factor:64 ()) with
      Config.telemetry_interval_ns = 20_000_000 (* 20ms: several ticks in the test *);
    }
  in
  let db = Db.open_ ~config (Env.memory ()) in
  Fun.protect
    ~finally:(fun () -> Db.close db)
    (fun () ->
      let port = Db.serve_telemetry db in
      Alcotest.(check bool) "ephemeral port bound" true (port > 0);
      Alcotest.(check int) "idempotent serve returns same port" port (Db.serve_telemetry db);
      for i = 1 to 500 do
        Db.put db (Printf.sprintf "user%04d" (i mod 40)) "v";
        ignore (Db.get db (Printf.sprintf "user%04d" (i mod 40)))
      done;
      Unix.sleepf 0.1;
      let status, metrics = Tel.Http.get ~port "/metrics" in
      Alcotest.(check int) "/metrics 200" 200 status;
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "summary family present" true
        (contains metrics "# TYPE evendb_db_put_ns summary");
      Alcotest.(check bool) "_sum sample present" true (contains metrics "evendb_db_put_ns_sum");
      Alcotest.(check bool) "no _mean sample" false (contains metrics "_ns_mean");
      let status, body = Tel.Http.get ~port "/series?last=4" in
      Alcotest.(check int) "/series 200" 200 status;
      let samples = Sampler.samples_of_json body in
      Alcotest.(check bool) "series has samples" true (samples <> []);
      let newest = List.nth samples (List.length samples - 1) in
      Alcotest.(check bool) "uptime gauge exported" true
        (List.assoc_opt "db.uptime_ns" newest.Sampler.s_gauges <> None);
      Alcotest.(check bool) "hot prefixes exported" true
        (List.exists
           (fun (n, _) -> String.length n > 4 && String.sub n 0 4 = "hot.")
           newest.Sampler.s_gauges);
      let status, body = Tel.Http.get ~port "/stat.json" in
      Alcotest.(check int) "/stat.json 200" 200 status;
      let j = Tel.Tiny_json.parse body in
      Alcotest.(check bool) "stat has uptime" true
        (Option.bind (Tel.Tiny_json.member "uptime_ns" j) Tel.Tiny_json.to_int <> None);
      Alcotest.(check bool) "stat has put rate" true
        (match
           Option.bind (Tel.Tiny_json.member "ops" j) (Tel.Tiny_json.member "put")
         with
        | Some v -> Option.bind (Tel.Tiny_json.member "count" v) Tel.Tiny_json.to_int = Some 500
        | None -> false);
      let status, body = Tel.Http.get ~port "/trace" in
      Alcotest.(check int) "/trace 200" 200 status;
      Alcotest.(check bool) "trace is json" true (String.length body > 0 && body.[0] = '{');
      let status, _ = Tel.Http.get ~port "/slow" in
      Alcotest.(check int) "/slow 200" 200 status;
      let status, _ = Tel.Http.get ~port "/no-such-endpoint" in
      Alcotest.(check int) "404 on unknown path" 404 status;
      Db.stop_telemetry db;
      Alcotest.(check bool) "endpoint down after stop" true
        (match Tel.Http.get ~port "/metrics" with
        | exception _ -> true
        | 200, _ -> false
        | _ -> true))

(* ------------------------------------------------------------------ *)
(* fsck: a corrupt old journal segment is an error and gets
   quarantined; a torn newest segment is only a warning; neither ever
   breaks Db.open_. *)

let scrub_quarantines_corrupt_segment () =
  with_disk_env (fun dir env ->
      (* Two incarnations' segments, then damage the older one. *)
      let j0 = Journal.create env ~segment_bytes:65536 ~max_segments:4 in
      Journal.append j0 "old-incarnation-record";
      Journal.close j0;
      let j1 = Journal.create env ~segment_bytes:65536 ~max_segments:4 in
      Journal.append j1 "new-incarnation-record";
      Journal.close j1;
      let seg0 = Journal.segment_name 0 in
      let path = Filename.concat dir seg0 in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      ignore (Unix.lseek fd 10 Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.of_string "X") 0 1);
      Unix.close fd;
      let report = Scrub.scrub env in
      let finding =
        List.find_opt (fun f -> f.Scrub.f_file = seg0) report.Scrub.findings
      in
      (match finding with
      | Some f ->
        Alcotest.(check bool) "old segment damage is an Error" true
          (f.Scrub.f_severity = Scrub.Error)
      | None -> Alcotest.fail "no finding for the corrupt segment");
      let repaired = Scrub.repair env in
      Alcotest.(check bool) "repair quarantined it" true
        (List.exists (fun (file, _) -> file = seg0) repaired.Scrub.actions);
      Alcotest.(check bool) "segment moved to quarantine" true
        (Env.exists env (Env.quarantined seg0) && not (Env.exists env seg0));
      (* The untouched newer segment still replays; the store opens. *)
      Alcotest.(check (list string)) "healthy history remains"
        [ "new-incarnation-record" ] (Journal.replay env);
      let db = Db.open_ env in
      Db.put db "k" "v";
      Alcotest.(check (option string)) "store works" (Some "v") (Db.get db "k");
      Db.close db)

let scrub_warns_on_torn_tail () =
  let env = Env.memory () in
  let j = Journal.create env ~segment_bytes:65536 ~max_segments:4 in
  Journal.append j "complete-record";
  Journal.close j;
  let name = Journal.segment_name 0 in
  let f = Env.open_append env name in
  Env.append f "\050torn";
  Env.close_file f;
  let report = Scrub.scrub env in
  (match List.find_opt (fun f -> f.Scrub.f_file = name) report.Scrub.findings with
  | Some f ->
    Alcotest.(check bool) "torn newest tail is a Warning" true
      (f.Scrub.f_severity = Scrub.Warning && f.Scrub.f_kind = Scrub.Log_garbage)
  | None -> Alcotest.fail "no finding for the torn segment");
  Alcotest.(check bool) "still no errors overall" true (Scrub.is_clean report)

(* A store with an active sampler writes its journal under telemetry/;
   reopening the same directory must neither sweep nor choke on it. *)
let open_preserves_journal () =
  with_disk_env (fun _dir env ->
      let config =
        { (Config.scaled ~factor:64 ()) with Config.telemetry_interval_ns = 5_000_000 }
      in
      let db = Db.open_ ~config env in
      ignore (Db.serve_telemetry db);
      for i = 1 to 100 do
        Db.put db (Printf.sprintf "k%03d" i) "v"
      done;
      Unix.sleepf 0.05;
      Db.close db;
      let before = Journal.replay env in
      Alcotest.(check bool) "journal has samples from the first run" true (before <> []);
      let db = Db.open_ ~config env in
      Db.close db;
      let after = Journal.replay env in
      Alcotest.(check bool) "reopen kept the journal intact" true
        (List.length after >= List.length before);
      (* The journaled records parse back into samples. *)
      List.iter
        (fun r ->
          match Sampler.sample_of_json r with
          | Some _ -> ()
          | None -> Alcotest.fail "journal record failed to parse as a sample")
        before)

let suite =
  [
    ( "sampler",
      [
        Alcotest.test_case "windowed percentiles vs reference" `Quick windowed_percentiles;
        Alcotest.test_case "counter deltas and gauges" `Quick counter_deltas_and_gauges;
        Alcotest.test_case "ring bound under overflow" `Quick ring_bound;
        Alcotest.test_case "series JSON round-trip" `Quick json_roundtrip;
        Alcotest.test_case "multi-domain hammer loses nothing" `Quick multi_domain_hammer;
      ] );
    ( "metrics journal",
      [
        Alcotest.test_case "rotation, pruning, replay order" `Quick journal_rotate_prune_replay;
        Alcotest.test_case "fresh segment per incarnation" `Quick journal_fresh_segment_per_create;
        Alcotest.test_case "flipped byte rejected by CRC" `Quick journal_crc_flip_rejected;
        Alcotest.test_case "replays after crash" `Quick journal_survives_crash;
        Alcotest.test_case "torn tail tolerated" `Quick journal_torn_tail_tolerated;
      ] );
    ( "telemetry endpoint",
      [ Alcotest.test_case "http smoke over loopback" `Quick http_endpoint_smoke ] );
    ( "telemetry fsck",
      [
        Alcotest.test_case "corrupt old segment quarantined" `Quick
          scrub_quarantines_corrupt_segment;
        Alcotest.test_case "torn newest tail is a warning" `Quick scrub_warns_on_torn_tail;
        Alcotest.test_case "open preserves the journal" `Quick open_preserves_journal;
      ] );
  ]
