(* Spatial-locality telemetry (PR 5): per-chunk heat, the hot-prefix
   Space-Saving sketch, the Chrome trace exporter, the flight recorder,
   and their wiring through the engine paths. *)

open Evendb_util
open Evendb_storage
open Evendb_core
module Obs = Evendb_obs.Obs
module Topk = Evendb_obs.Topk

(* ------------------------------------------------------------------ *)
(* A minimal recursive-descent JSON reader — just enough to check the
   exporters' output is well-formed without adding a dependency. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let lit l v =
      let m = String.length l in
      if !pos + m <= n && String.sub s !pos m = l then begin
        pos := !pos + m;
        v
      end
      else fail ("expected " ^ l)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' ->
          incr pos;
          Buffer.contents b
        | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 >= n then fail "bad \\u escape";
            (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some c when c < 128 -> Buffer.add_char b (Char.chr c)
            | Some _ -> Buffer.add_char b '?'
            | None -> fail "bad \\u escape");
            pos := !pos + 4
          | _ -> fail "bad escape");
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num s.[!pos] do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              members ((k, v) :: acc)
            | Some '}' ->
              incr pos;
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              incr pos;
              elems (v :: acc)
            | Some ']' ->
              incr pos;
              Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some _ -> parse_number ()
      | None -> fail "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let get k = function
    | Obj kvs -> (
      match List.assoc_opt k kvs with
      | Some v -> v
      | None -> raise (Bad ("missing key " ^ k)))
    | _ -> raise (Bad ("not an object looking up " ^ k))

  let mem k = function Obj kvs -> List.mem_assoc k kvs | _ -> false
  let to_list = function Arr l -> l | _ -> raise (Bad "not an array")
  let to_str = function Str s -> s | _ -> raise (Bad "not a string")
  let to_num = function Num f -> f | _ -> raise (Bad "not a number")
end

(* ------------------------------------------------------------------ *)
(* Heat decay *)

let heat_decay_ordering () =
  let hl = 1_000 in
  let cs = Chunk_stats.create ~half_life_ns:hl () in
  for _ = 1 to 100 do
    Chunk_stats.record_get cs 0 Chunk_stats.Funk ~now:0
  done;
  for _ = 1 to 10 do
    Chunk_stats.record_get cs 1 Chunk_stats.Funk ~now:0
  done;
  Alcotest.(check bool)
    "busy chunk outranks quiet one at t0" true
    (Chunk_stats.heat cs 0 ~now:0 > Chunk_stats.heat cs 1 ~now:0);
  (* Five half-lives later the big old burst has decayed 32x; recent
     traffic must outrank it. *)
  let t5 = 5 * hl in
  for _ = 1 to 10 do
    Chunk_stats.record_get cs 1 Chunk_stats.Munk ~now:t5
  done;
  let h0 = Chunk_stats.heat cs 0 ~now:t5 and h1 = Chunk_stats.heat cs 1 ~now:t5 in
  if not (h1 > h0) then
    Alcotest.failf "recently-hot chunk should outrank stale burst: h0=%.3f h1=%.3f" h0 h1;
  Alcotest.(check bool)
    "stale heat decays by 2^-5" true
    (abs_float (h0 -. (100.0 /. 32.0)) < 0.01);
  (* Heat goes to ~0 once traffic stops. *)
  Alcotest.(check bool)
    "heat vanishes after many half-lives" true
    (Chunk_stats.heat cs 0 ~now:(t5 + (60 * hl)) < 0.001)

let heat_transfer_split_merge () =
  let hl = 1_000 in
  let cs = Chunk_stats.create ~half_life_ns:hl () in
  for _ = 1 to 8 do
    Chunk_stats.record_put cs 0 ~now:0
  done;
  (* Split: both children inherit half the parent's heat; parent zeroed. *)
  Chunk_stats.transfer cs ~now:0 ~old_ids:[ 0 ] ~new_ids:[ 1; 2 ];
  Alcotest.(check bool) "parent heat zeroed" true (Chunk_stats.heat cs 0 ~now:0 = 0.0);
  Alcotest.(check bool)
    "children split the heat" true
    (abs_float (Chunk_stats.heat cs 1 ~now:0 -. 4.0) < 1e-9
    && abs_float (Chunk_stats.heat cs 2 ~now:0 -. 4.0) < 1e-9);
  (* Merge: the child inherits the sum. *)
  Chunk_stats.transfer cs ~now:0 ~old_ids:[ 1; 2 ] ~new_ids:[ 3 ];
  Alcotest.(check bool)
    "merge child inherits the sum" true
    (abs_float (Chunk_stats.heat cs 3 ~now:0 -. 8.0) < 1e-9);
  (* Op counters stay with the retired id. *)
  match Chunk_stats.stat cs 0 ~now:0 with
  | Some s -> Alcotest.(check int) "puts stay on the retired id" 8 s.Chunk_stats.st_puts
  | None -> Alcotest.fail "retired id lost its stats"

(* ------------------------------------------------------------------ *)
(* Space-Saving sketch *)

let topk_zipf_bounds () =
  let n_keys = 500 and samples = 30_000 and capacity = 64 in
  let z = Zipf.create ~theta:0.99 n_keys in
  let rng = Rng.create 42 in
  let sketch = Topk.create ~capacity () in
  let truth = Hashtbl.create 512 in
  for _ = 1 to samples do
    let k = Printf.sprintf "key%04d" (Zipf.next z rng) in
    Hashtbl.replace truth k (1 + (try Hashtbl.find truth k with Not_found -> 0));
    Topk.observe sketch k
  done;
  Alcotest.(check int) "total counts every observation" samples (Topk.total sketch);
  let entries = Topk.entries sketch in
  Alcotest.(check bool) "at most capacity entries" true (List.length entries <= capacity);
  let bound = samples / capacity in
  let rec check_sorted = function
    | (_, _, hi1) :: ((_, _, hi2) :: _ as rest) ->
      Alcotest.(check bool) "entries sorted by count_hi desc" true (hi1 >= hi2);
      check_sorted rest
    | _ -> ()
  in
  check_sorted entries;
  List.iter
    (fun (k, lo, hi) ->
      let t = try Hashtbl.find truth k with Not_found -> 0 in
      if not (lo <= t && t <= hi) then
        Alcotest.failf "true count of %s outside bounds: lo=%d true=%d hi=%d" k lo t hi;
      if hi - lo > bound then
        Alcotest.failf "error width of %s exceeds N/m: %d > %d" k (hi - lo) bound)
    entries;
  (* Every guaranteed heavy hitter (true count > N/m) must be present. *)
  Hashtbl.iter
    (fun k t ->
      if t > bound && not (List.exists (fun (k', _, _) -> k' = k) entries) then
        Alcotest.failf "heavy hitter %s (count %d > %d) missing from sketch" k t bound)
    truth;
  Topk.reset sketch;
  Alcotest.(check int) "reset zeroes the total" 0 (Topk.total sketch);
  Alcotest.(check int) "reset empties the table" 0 (List.length (Topk.entries sketch))

(* ------------------------------------------------------------------ *)
(* Chrome trace export *)

let chrome_trace_well_formed () =
  let obs = Obs.create () in
  let tr = Obs.trace obs in
  Obs.Trace.declare tr "alpha";
  for i = 1 to 5 do
    Obs.Trace.with_span tr ~name:"alpha" ~attrs:[ ("bytes", i * 10) ] (fun _ -> ())
  done;
  (* A second thread gives the export a second tid to name. *)
  let th = Thread.create (fun () -> Obs.Trace.with_span tr ~name:"beta" (fun _ -> ())) () in
  Thread.join th;
  let doc = Json.parse (Obs.to_chrome_trace ~process_name:"testproc" obs) in
  Alcotest.(check string)
    "displayTimeUnit" "ms"
    (Json.to_str (Json.get "displayTimeUnit" doc));
  let events = Json.to_list (Json.get "traceEvents" doc) in
  let phase e = Json.to_str (Json.get "ph" e) in
  let metas = List.filter (fun e -> phase e = "M") events in
  let xs = List.filter (fun e -> phase e = "X") events in
  Alcotest.(check int) "all events are M or X" (List.length events)
    (List.length metas + List.length xs);
  Alcotest.(check int) "one X event per span" 6 (List.length xs);
  (* One process_name metadata record carrying the given name. *)
  let process_names =
    List.filter (fun e -> Json.to_str (Json.get "name" e) = "process_name") metas
  in
  (match process_names with
  | [ e ] ->
    Alcotest.(check string)
      "process name from argument" "testproc"
      (Json.to_str (Json.get "name" (Json.get "args" e)))
  | l -> Alcotest.failf "expected exactly one process_name event, got %d" (List.length l));
  (* Every X event's pid/tid pair must be introduced by a thread_name
     metadata event, and timestamps must be sane. *)
  let pid_tid e =
    (int_of_float (Json.to_num (Json.get "pid" e)), int_of_float (Json.to_num (Json.get "tid" e)))
  in
  let named_threads =
    List.filter_map
      (fun e -> if Json.to_str (Json.get "name" e) = "thread_name" then Some (pid_tid e) else None)
      metas
  in
  List.iter
    (fun e ->
      if not (List.mem (pid_tid e) named_threads) then
        Alcotest.failf "X event %s has unnamed pid/tid" (Json.to_str (Json.get "name" e));
      Alcotest.(check bool) "ts positive" true (Json.to_num (Json.get "ts" e) > 0.0);
      Alcotest.(check bool) "dur non-negative" true (Json.to_num (Json.get "dur" e) >= 0.0))
    xs;
  let tids = List.sort_uniq compare (List.map snd (List.map pid_tid xs)) in
  Alcotest.(check int) "two distinct thread ids" 2 (List.length tids);
  (* Span attributes surface under args. *)
  let alpha = List.filter (fun e -> Json.to_str (Json.get "name" e) = "alpha") xs in
  Alcotest.(check int) "alpha spans exported" 5 (List.length alpha);
  List.iter
    (fun e ->
      Alcotest.(check bool) "alpha carries bytes attr" true
        (Json.mem "bytes" (Json.get "args" e)))
    alpha

(* ------------------------------------------------------------------ *)
(* Timer buckets in snapshots and JSON export *)

let timer_buckets_exported () =
  let obs = Obs.create () in
  let tm = Obs.timer obs "op" in
  List.iter (Obs.Timer.record_ns tm) [ 100; 250_000; 5_000_000; 5_100_000 ];
  let snap = Obs.snapshot obs in
  (match List.assoc_opt "op" snap.Obs.metrics with
  | Some (Obs.Timer s) ->
    Alcotest.(check int) "t_count" 4 s.Obs.t_count;
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 s.Obs.t_buckets in
    Alcotest.(check int) "bucket counts sum to t_count" 4 total;
    let rec ascending = function
      | (ub1, _) :: ((ub2, _) :: _ as rest) ->
        Alcotest.(check bool) "bucket bounds ascending" true (ub1 < ub2);
        ascending rest
      | _ -> ()
    in
    ascending s.Obs.t_buckets
  | _ -> Alcotest.fail "timer missing from snapshot");
  let doc = Json.parse (Obs.to_json obs) in
  let op = Json.get "op" (Json.get "timers" doc) in
  let buckets = Json.to_list (Json.get "buckets" op) in
  let total =
    List.fold_left
      (fun acc b ->
        match Json.to_list b with
        | [ _ub; c ] -> acc + int_of_float (Json.to_num c)
        | _ -> Alcotest.fail "bucket entry is not a pair")
      0 buckets
  in
  Alcotest.(check int) "JSON bucket counts sum to count" 4 total;
  (* The Prometheus exporter keeps its quantile-only shape. *)
  let prom = Obs.to_prometheus obs in
  Alcotest.(check bool) "prometheus has quantiles" true
    (String.length prom > 0
    &&
    let has_sub sub =
      let n = String.length sub and m = String.length prom in
      let rec at i = i + n <= m && (String.sub prom i n = sub || at (i + 1)) in
      at 0
    in
    has_sub "quantile" && not (has_sub "buckets"))

(* ------------------------------------------------------------------ *)
(* Monotonic clock *)

let monotonic_clock () =
  let a = Obs.now_ns () in
  let b = Obs.now_ns () in
  Alcotest.(check bool) "now_ns never goes back" true (b >= a);
  Alcotest.(check int)
    "wall mapping preserves intervals" (b - a)
    (Obs.to_wall_ns b - Obs.to_wall_ns a);
  let wall = Obs.to_wall_ns b in
  Alcotest.(check bool)
    "wall time is a plausible epoch" true
    (wall > 1_500_000_000 * 1_000_000_000 && wall < 4_000_000_000 * 1_000_000_000)

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let recorder_frames () =
  let obs = Obs.create () in
  let c = Obs.counter obs "c" in
  let tm = Obs.timer obs "t" in
  let r = Obs.recorder ~capacity:3 obs in
  Obs.Counter.add c 5;
  Obs.Timer.record_ns tm 10;
  let f1 = Obs.Recorder.tick r in
  Alcotest.(check (option int)) "counter delta" (Some 5) (List.assoc_opt "c" f1.Obs.Recorder.fr_deltas);
  Alcotest.(check (option int))
    "timer op-count delta" (Some 1)
    (List.assoc_opt "t.count" f1.Obs.Recorder.fr_deltas);
  Obs.Counter.add c 2;
  let f2 = Obs.Recorder.tick r in
  Alcotest.(check (option int)) "delta since last tick" (Some 2) (List.assoc_opt "c" f2.Obs.Recorder.fr_deltas);
  Alcotest.(check (option int))
    "zero-change series omitted" None
    (List.assoc_opt "t.count" f2.Obs.Recorder.fr_deltas);
  ignore (Obs.Recorder.tick r);
  ignore (Obs.Recorder.tick r);
  let frames = Obs.Recorder.frames r in
  Alcotest.(check int) "ring keeps capacity frames" 3 (List.length frames);
  Alcotest.(check int) "oldest frame dropped" 1 (List.hd frames).Obs.Recorder.fr_seq;
  let seqs = List.map (fun f -> f.Obs.Recorder.fr_seq) frames in
  Alcotest.(check (list int)) "frames oldest-first" [ 1; 2; 3 ] seqs;
  (* to_json parses and has one element per frame. *)
  let doc = Json.parse (Obs.Recorder.to_json r) in
  Alcotest.(check int) "json frames" 3 (List.length (Json.to_list (Json.get "frames" doc)));
  Obs.Recorder.reset r;
  Alcotest.(check int) "reset drops frames" 0 (List.length (Obs.Recorder.frames r));
  Obs.Counter.add c 7;
  let f = Obs.Recorder.tick r in
  Alcotest.(check (option int))
    "reset re-baselines deltas" (Some 7)
    (List.assoc_opt "c" f.Obs.Recorder.fr_deltas)

(* ------------------------------------------------------------------ *)
(* Per-chunk wiring through the engine *)

let small_config =
  {
    Config.default with
    max_chunk_bytes = 8 * 1024;
    munk_rebalance_bytes = 6 * 1024;
    munk_rebalance_appended = 64;
    funk_log_limit_no_munk = 2 * 1024;
    funk_log_limit_with_munk = 8 * 1024;
    munk_cache_capacity = 4;
  }

let key_of i = Printf.sprintf "k%05d" i

let chunk_wiring () =
  let db = Db.open_ ~config:small_config (Env.memory ()) in
  for i = 0 to 599 do
    Db.put db (key_of i) (String.make 64 'v')
  done;
  Db.maintain db;
  Alcotest.(check bool) "workload split the keyspace" true (Db.chunk_count db > 1);
  let residue = Db.metrics_residue db in
  let has suffix = List.exists (fun nm -> String.ends_with ~suffix nm) residue in
  Alcotest.(check bool) "puts recorded per chunk" true (has ".puts");
  Alcotest.(check bool) "splits recorded" true (has ".splits");
  Alcotest.(check bool) "rebalances recorded" true (has ".rebalances");
  (* Heat follows the key range across splits: live chunks carry it. *)
  let live_heat =
    List.fold_left
      (fun acc c -> acc +. c.Db.cs_stat.Chunk_stats.st_heat)
      0.0 (Db.chunk_stats db)
  in
  Alcotest.(check bool) "live chunks carry transferred heat" true (live_heat > 0.0);
  (* Quiescent structure: counters must now balance exactly. *)
  Db.reset_metrics db;
  Alcotest.(check (list string)) "reset leaves no residue" [] (Db.metrics_residue db);
  for i = 0 to 299 do
    ignore (Db.get db (key_of (i * 2)))
  done;
  ignore (Db.scan db ~low:"" ~high:"\xff" ());
  let cs = Db.chunk_stats db in
  Alcotest.(check int) "one stat row per live chunk" (Db.chunk_count db) (List.length cs);
  let sum f = List.fold_left (fun acc c -> acc + f c.Db.cs_stat) 0 cs in
  Alcotest.(check int) "every get counted once" 300 (sum (fun s -> s.Chunk_stats.st_gets));
  Alcotest.(check int)
    "get component split partitions the gets" 300
    (sum (fun s ->
         s.Chunk_stats.st_munk_hits + s.Chunk_stats.st_row_hits + s.Chunk_stats.st_funk_reads));
  Alcotest.(check bool) "scan visits recorded" true (sum (fun s -> s.Chunk_stats.st_scans) >= 1);
  let _, total = Db.hot_prefixes db in
  Alcotest.(check int) "sketch fed once per op" 300 total;
  Db.close db

(* Library-level mirror of the `evendb heat` acceptance check: on the
   default Zipf trace the sketch's top-1%-of-prefixes share must land
   within 5 points of the generator's analytic share. *)
let prefix_share_accuracy () =
  let open Evendb_ycsb in
  let config = { Config.default with topk_capacity = 4096 } in
  let db = Db.open_ ~config (Env.memory ()) in
  let sh = Workload.create_shared ~value_bytes:64 (Workload.Zipf_simple 0.99) ~items:4000 ~seed:5 in
  let w = Workload.thread sh ~id:0 in
  List.iter (fun k -> Db.put db k "v") (Workload.load_keys sh);
  Db.maintain db;
  Db.reset_metrics db;
  let ops = 20_000 in
  for _ = 1 to ops do
    ignore (Db.get db (Workload.sample_key w))
  done;
  let prefix_len = (Db.config db).Config.hot_prefix_len in
  let expected = Workload.prefix_weights sh ~prefix_len in
  let n1 = max 1 (List.length expected / 100) in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let expected_share = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 (take n1 expected) in
  let entries, total = Db.hot_prefixes db in
  Alcotest.(check int) "sketch saw every read" ops total;
  let observed_share =
    List.fold_left (fun acc (_, _, hi) -> acc +. float_of_int hi) 0.0 (take n1 entries)
    /. float_of_int total
  in
  if abs_float (observed_share -. expected_share) > 0.05 then
    Alcotest.failf "top-1%% share off by more than 5 points: observed %.4f expected %.4f"
      observed_share expected_share;
  Db.close db

(* The Db-level trace export inherits well-formedness; check it carries
   real maintenance spans. *)
let db_dump_trace () =
  let db = Db.open_ ~config:small_config (Env.memory ()) in
  for i = 0 to 399 do
    Db.put db (key_of i) (String.make 64 'v')
  done;
  Db.maintain db;
  let doc = Json.parse (Db.dump_trace db) in
  let events = Json.to_list (Json.get "traceEvents" doc) in
  let span_names =
    List.filter_map
      (fun e ->
        if Json.to_str (Json.get "ph" e) = "X" then Some (Json.to_str (Json.get "name" e))
        else None)
      events
  in
  Alcotest.(check bool) "maintenance spans exported" true (span_names <> []);
  Alcotest.(check bool) "a rebalance or split span appears" true
    (List.exists
       (fun n -> n = "munk_rebalance" || n = "chunk_split" || n = "cold_funk_rebalance")
       span_names);
  Db.close db

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "heat decay ordering" `Quick heat_decay_ordering;
        Alcotest.test_case "heat transfer on split/merge" `Quick heat_transfer_split_merge;
        Alcotest.test_case "space-saving bounds on zipf stream" `Quick topk_zipf_bounds;
        Alcotest.test_case "chrome trace well-formed" `Quick chrome_trace_well_formed;
        Alcotest.test_case "timer buckets exported" `Quick timer_buckets_exported;
        Alcotest.test_case "monotonic clock" `Quick monotonic_clock;
        Alcotest.test_case "flight recorder frames" `Quick recorder_frames;
        Alcotest.test_case "per-chunk wiring" `Quick chunk_wiring;
        Alcotest.test_case "prefix share accuracy" `Quick prefix_share_accuracy;
        Alcotest.test_case "db trace export" `Quick db_dump_trace;
      ] );
  ]
