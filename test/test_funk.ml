(* Funk lifecycle tests: the refcounted pin/retire discipline that
   lets readers keep using a replaced funk until they drain, and the
   ownership accounting used by splits; plus manifest and chunk-index
   unit tests. *)

open Evendb_util
open Evendb_storage
open Evendb_core

let e ?(version = 0) ?(counter = 0) ?value key : Kv_iter.entry = { key; value; version; counter }

let mk env ?(id = 1) entries =
  Funk.create_from_iter env ~block_bytes:512 ~id ~min_key:"" (Kv_iter.of_list entries)

let visible _ = true

let create_and_read () =
  let env = Env.memory () in
  let f = mk env [ e ~version:1 ~value:"v" "k" ] in
  Alcotest.(check string) "min key" "" (Funk.min_key f);
  (match Funk.get_from_sst f ~visible ~max_version:max_int "k" with
  | Some { Kv_iter.value = Some "v"; _ } -> ()
  | _ -> Alcotest.fail "sst read failed");
  (* Appends land in the log and shadow the sstable. *)
  ignore (Funk.append f (e ~version:5 ~counter:1 ~value:"newer" "k"));
  (match Funk.get_from_log f ~visible ~max_version:max_int "k" with
  | Some { Kv_iter.value = Some "newer"; _ } -> ()
  | _ -> Alcotest.fail "log read failed");
  let all = Kv_iter.to_list (Funk.all_entries f ~visible) in
  Alcotest.(check int) "merged versions" 2 (List.length all);
  Alcotest.(check int) "newest first" 5 (List.hd all).Kv_iter.version

let retire_deletes_files () =
  let env = Env.memory () in
  let f = mk env [ e ~value:"v" "k" ] in
  Alcotest.(check bool) "files exist" true (Env.exists env (Funk.sst_name 1));
  Funk.retire f;
  Alcotest.(check bool) "sst deleted" false (Env.exists env (Funk.sst_name 1));
  Alcotest.(check bool) "log deleted" false (Env.exists env (Funk.log_name 1))

let pinned_funk_survives_retire () =
  let env = Env.memory () in
  let f = mk env [ e ~value:"v" "k" ] in
  Alcotest.(check bool) "pin acquired" true (Funk.acquire f);
  Funk.retire f;
  (* Still pinned: files stay readable. *)
  Alcotest.(check bool) "files survive while pinned" true (Env.exists env (Funk.sst_name 1));
  (match Funk.get_from_sst f ~visible ~max_version:max_int "k" with
  | Some _ -> ()
  | None -> Alcotest.fail "pinned read failed");
  Funk.release f;
  Alcotest.(check bool) "deleted after release" false (Env.exists env (Funk.sst_name 1))

let acquire_after_retire_fails () =
  let env = Env.memory () in
  let f = mk env [ e ~value:"v" "k" ] in
  Funk.retire f;
  Alcotest.(check bool) "no pin after retire" false (Funk.acquire f)

let with_pin_raises_stale () =
  let env = Env.memory () in
  let f = mk env [ e ~value:"v" "k" ] in
  Funk.retire f;
  (try
     Funk.with_pin ~current:(fun () -> f) (fun _ -> ());
     Alcotest.fail "expected Stale"
   with Funk.Stale -> ())

let with_pin_follows_flip () =
  let env = Env.memory () in
  let old_funk = mk env ~id:1 [ e ~value:"old" "k" ] in
  let new_funk = mk env ~id:2 [ e ~value:"new" "k" ] in
  let current = Atomic.make old_funk in
  Funk.retire old_funk;
  Atomic.set current new_funk;
  let v =
    Funk.with_pin
      ~current:(fun () -> Atomic.get current)
      (fun f ->
        match Funk.get_from_sst f ~visible ~max_version:max_int "k" with
        | Some { Kv_iter.value = Some v; _ } -> v
        | _ -> "?")
  in
  Alcotest.(check string) "pin found replacement" "new" v

let ownership_sharing () =
  let env = Env.memory () in
  let f = mk env [ e ~value:"v" "k" ] in
  Funk.add_owner f;
  (* Two owners: first disown must not retire. *)
  Alcotest.(check bool) "not last" false (Funk.disown f);
  Alcotest.(check bool) "files alive" true (Env.exists env (Funk.sst_name 1));
  Alcotest.(check bool) "still acquirable" true (Funk.acquire f);
  Funk.release f;
  (* Last disown defers deletion: the caller must drop the funk from
     the manifest before retiring, so a crash between the two never
     leaves a manifest-live funk with deleted files. *)
  Alcotest.(check bool) "last owner" true (Funk.disown f);
  Alcotest.(check bool) "files survive until retire" true (Env.exists env (Funk.sst_name 1));
  Funk.retire f;
  Alcotest.(check bool) "deleted" false (Env.exists env (Funk.sst_name 1))

let log_segment_reads () =
  let env = Env.memory () in
  let f = mk env [] in
  let off1 = Funk.append f (e ~version:1 ~value:"a" "k") in
  let off2 = Funk.append f (e ~version:2 ~counter:1 ~value:"b" "k") in
  ignore (Funk.append f (e ~version:3 ~counter:2 ~value:"c" "k"));
  (* Restricting to the first record's range finds only version 1. *)
  (match
     Funk.get_from_log f ~segments:[ (off1, off2) ] ~visible ~max_version:max_int "k"
   with
  | Some found -> Alcotest.(check int) "bounded segment" 1 found.Kv_iter.version
  | None -> Alcotest.fail "segment read failed");
  (* Newest-first segment list returns the newest hit. *)
  match
    Funk.get_from_log f
      ~segments:[ (off2, max_int); (off1, off2) ]
      ~visible ~max_version:max_int "k"
  with
  | Some found -> Alcotest.(check int) "newest segment wins" 3 found.Kv_iter.version
  | None -> Alcotest.fail "segmented read failed"

let visibility_filter () =
  let env = Env.memory () in
  let f = mk env [] in
  ignore (Funk.append f (e ~version:10 ~value:"hidden" "k"));
  ignore (Funk.append f (e ~version:5 ~counter:1 ~value:"shown" "k"));
  let vis v = v <= 5 in
  (match Funk.get_from_log f ~visible:vis ~max_version:max_int "k" with
  | Some { Kv_iter.value = Some "shown"; _ } -> ()
  | _ -> Alcotest.fail "visibility filter leaked");
  Alcotest.(check int) "all_entries filtered" 1
    (List.length (Kv_iter.to_list (Funk.all_entries f ~visible:vis)))

(* ---- Manifest ---- *)

let manifest_roundtrip () =
  let env = Env.memory () in
  Alcotest.(check bool) "fresh = none" true (Manifest.load env = None);
  Manifest.store env { Manifest.next_id = 42; live = [ 3; 1; 7 ] };
  (match Manifest.load env with
  | Some m ->
    Alcotest.(check int) "next id" 42 m.Manifest.next_id;
    Alcotest.(check (list int)) "live ids" [ 1; 3; 7 ] (List.sort compare m.Manifest.live)
  | None -> Alcotest.fail "manifest lost");
  (* Overwrite is atomic replace. *)
  Manifest.store env { Manifest.next_id = 43; live = [ 9 ] };
  match Manifest.load env with
  | Some m -> Alcotest.(check (list int)) "replaced" [ 9 ] m.Manifest.live
  | None -> Alcotest.fail "manifest lost"

let manifest_corruption () =
  let env = Env.memory () in
  let f = Env.create env Manifest.file_name in
  Env.append f "garbage data here";
  Env.close_file f;
  try
    ignore (Manifest.load env);
    Alcotest.fail "expected corruption error"
  with Env.Corruption _ ->
    Alcotest.(check bool) "detection counted" true (Env.corruptions_detected env > 0)

(* ---- Chunk index ---- *)

let mk_chunk env ~id ~min_key =
  let funk =
    Funk.create_from_iter env ~block_bytes:512 ~id:(100 + id) ~min_key (Kv_iter.of_list [])
  in
  Chunk.create ~id ~min_key ~funk ~munk:None

let index_find () =
  let env = Env.memory () in
  let a = mk_chunk env ~id:0 ~min_key:"" in
  let b = mk_chunk env ~id:1 ~min_key:"m" in
  let c = mk_chunk env ~id:2 ~min_key:"t" in
  Chunk.set_next a (Some b);
  Chunk.set_next b (Some c);
  let idx = Chunk_index.build [ a; b; c ] in
  Alcotest.(check int) "size" 3 (Chunk_index.size idx);
  Alcotest.(check int) "below m" 0 (Chunk.id (Chunk_index.find idx "a"));
  Alcotest.(check int) "exactly m" 1 (Chunk.id (Chunk_index.find idx "m"));
  Alcotest.(check int) "inside m-t" 1 (Chunk.id (Chunk_index.find idx "p"));
  Alcotest.(check int) "beyond t" 2 (Chunk.id (Chunk_index.find idx "zz"));
  Alcotest.(check int) "empty key" 0 (Chunk.id (Chunk_index.find idx ""));
  let idx2 = Chunk_index.of_first_chunk a in
  Alcotest.(check int) "walked size" 3 (Chunk_index.size idx2)

let index_validation () =
  let env = Env.memory () in
  let b = mk_chunk env ~id:1 ~min_key:"m" in
  (try
     ignore (Chunk_index.build [ b ]);
     Alcotest.fail "expected missing-sentinel error"
   with Invalid_argument _ -> ());
  let a = mk_chunk env ~id:0 ~min_key:"" in
  let dup = mk_chunk env ~id:2 ~min_key:"m" in
  try
    ignore (Chunk_index.build [ a; b; dup ]);
    Alcotest.fail "expected unsorted error"
  with Invalid_argument _ -> ()

let chunk_covers () =
  let env = Env.memory () in
  let a = mk_chunk env ~id:0 ~min_key:"" in
  let b = mk_chunk env ~id:1 ~min_key:"m" in
  Chunk.set_next a (Some b);
  Alcotest.(check bool) "a covers below m" true (Chunk.covers a ~key:"h");
  Alcotest.(check bool) "a stops at m" false (Chunk.covers a ~key:"m");
  Alcotest.(check bool) "b covers m" true (Chunk.covers b ~key:"m");
  Alcotest.(check bool) "last chunk open-ended" true (Chunk.covers b ~key:"zzzz")

let chunk_counter_monotone () =
  let env = Env.memory () in
  let a = mk_chunk env ~id:0 ~min_key:"" in
  let c0 = Chunk.next_counter a in
  let c1 = Chunk.next_counter a in
  Alcotest.(check bool) "monotone" true (c1 > c0);
  let inherited =
    Chunk.create_inheriting ~id:9 ~min_key:"x" ~funk:(Chunk.funk a) ~munk:None
      ~counter:(Chunk.counter_base a)
  in
  Alcotest.(check bool) "child continues" true (Chunk.next_counter inherited > c1)

let suite =
  [
    ( "funk",
      [
        Alcotest.test_case "create and read paths" `Quick create_and_read;
        Alcotest.test_case "retire deletes files" `Quick retire_deletes_files;
        Alcotest.test_case "pin defers deletion" `Quick pinned_funk_survives_retire;
        Alcotest.test_case "acquire after retire" `Quick acquire_after_retire_fails;
        Alcotest.test_case "with_pin raises Stale" `Quick with_pin_raises_stale;
        Alcotest.test_case "with_pin follows flips" `Quick with_pin_follows_flip;
        Alcotest.test_case "split ownership sharing" `Quick ownership_sharing;
        Alcotest.test_case "bounded log segments" `Quick log_segment_reads;
        Alcotest.test_case "visibility filter" `Quick visibility_filter;
      ] );
    ( "manifest",
      [
        Alcotest.test_case "roundtrip" `Quick manifest_roundtrip;
        Alcotest.test_case "corruption rejected" `Quick manifest_corruption;
      ] );
    ( "chunk_index",
      [
        Alcotest.test_case "find" `Quick index_find;
        Alcotest.test_case "validation" `Quick index_validation;
        Alcotest.test_case "covers" `Quick chunk_covers;
        Alcotest.test_case "counters inherit" `Quick chunk_counter_monotone;
      ] );
  ]
