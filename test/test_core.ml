(* EvenDB end-to-end tests: the public API under configurations that
   force splits, funk rebalances, munk eviction and the row-cache
   path, plus model-based random testing. *)

open Evendb_storage
open Evendb_core

let qtest = QCheck_alcotest.to_alcotest

(* Tiny thresholds so a few hundred keys exercise every maintenance
   path. *)
let tiny_config =
  {
    Config.default with
    max_chunk_bytes = 8 * 1024;
    munk_rebalance_bytes = 6 * 1024;
    munk_rebalance_appended = 64;
    funk_log_limit_no_munk = 2 * 1024;
    funk_log_limit_with_munk = 8 * 1024;
    munk_cache_capacity = 4;
    row_cache_capacity_per_table = 64;
    checkpoint_every_puts = 0;
  }

let with_db ?(config = tiny_config) f =
  let env = Env.memory () in
  let db = Db.open_ ~config env in
  Fun.protect ~finally:(fun () -> Db.close db) (fun () -> f env db)

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%d" i

let put_get () =
  with_db (fun _ db ->
      Alcotest.(check (option string)) "empty store" None (Db.get db "missing");
      Db.put db "k" "v";
      Alcotest.(check (option string)) "read back" (Some "v") (Db.get db "k");
      Db.put db "k" "v2";
      Alcotest.(check (option string)) "overwrite" (Some "v2") (Db.get db "k"))

let delete_semantics () =
  with_db (fun _ db ->
      Db.put db "k" "v";
      Db.delete db "k";
      Alcotest.(check (option string)) "deleted" None (Db.get db "k");
      Db.delete db "never-existed";
      Alcotest.(check (option string)) "idempotent" None (Db.get db "never-existed");
      Db.put db "k" "again";
      Alcotest.(check (option string)) "reinsert" (Some "again") (Db.get db "k"))

let empty_and_edge_keys () =
  with_db (fun _ db ->
      Db.put db "" "empty-key";
      Db.put db "k" "";
      Alcotest.(check (option string)) "empty key" (Some "empty-key") (Db.get db "");
      Alcotest.(check (option string)) "empty value" (Some "") (Db.get db "k");
      let long = String.make 2000 'k' in
      Db.put db long (String.make 5000 'v');
      Alcotest.(check bool) "long key/value" true (Db.get db long <> None))

let scan_basic () =
  with_db (fun _ db ->
      for i = 0 to 99 do
        Db.put db (key i) (value i)
      done;
      let r = Db.scan db ~low:(key 10) ~high:(key 19) () in
      Alcotest.(check int) "inclusive range" 10 (List.length r);
      Alcotest.(check string) "first" (key 10) (fst (List.hd r));
      let sorted = List.sort compare r in
      Alcotest.(check bool) "sorted output" true (sorted = r);
      Alcotest.(check int) "limit" 3 (List.length (Db.scan db ~limit:3 ~low:(key 0) ~high:(key 99) ()));
      Alcotest.(check int) "empty range" 0 (List.length (Db.scan db ~low:"zz" ~high:"aa" ()));
      Alcotest.(check int) "whole store" 100
        (List.length (Db.scan db ~low:"" ~high:"zzzz" ())))

let scan_skips_tombstones () =
  with_db (fun _ db ->
      for i = 0 to 9 do
        Db.put db (key i) (value i)
      done;
      Db.delete db (key 5);
      let r = Db.scan db ~low:(key 0) ~high:(key 9) () in
      Alcotest.(check int) "tombstone hidden" 9 (List.length r);
      Alcotest.(check bool) "key5 absent" true (not (List.mem_assoc (key 5) r)))

let many_keys_split () =
  with_db (fun _ db ->
      let n = 2000 in
      for i = 0 to n - 1 do
        Db.put db (key (i * 13 mod n)) (String.make 64 'v')
      done;
      Alcotest.(check bool) "splits happened" true (Db.chunk_count db > 4);
      Alcotest.(check bool) "munk cache bounded" true
        (Db.munk_count db <= tiny_config.Config.munk_cache_capacity + 1);
      for i = 0 to n - 1 do
        if Db.get db (key i) = None then Alcotest.failf "lost %s" (key i)
      done;
      (* Scans across chunk boundaries. *)
      let r = Db.scan db ~low:(key 0) ~high:(key (n - 1)) () in
      Alcotest.(check int) "full scan" n (List.length r))

let overwrite_heavy () =
  with_db (fun _ db ->
      for round = 1 to 50 do
        for i = 0 to 20 do
          Db.put db (key i) (Printf.sprintf "round%d-%d" round i)
        done
      done;
      for i = 0 to 20 do
        Alcotest.(check (option string)) "last write wins" (Some (Printf.sprintf "round50-%d" i))
          (Db.get db (key i))
      done)

let eviction_and_row_cache () =
  with_db (fun _ db ->
      for i = 0 to 199 do
        Db.put db (key i) (value i)
      done;
      Db.maintain db;
      (* Explicitly evict the munk covering key 0: reads must fall back
         to the funk (bloom -> log -> sstable) and the row cache. *)
      Alcotest.(check bool) "evicted" true (Db.evict_munk db (key 0));
      Alcotest.(check (option string)) "read from funk" (Some (value 0)) (Db.get db (key 0));
      (* Second read may be served by the row cache — must be equal. *)
      Alcotest.(check (option string)) "read again (cached)" (Some (value 0)) (Db.get db (key 0));
      (* A put to the evicted chunk must keep reads fresh. *)
      Db.put db (key 0) "fresh";
      Alcotest.(check (option string)) "updated after eviction" (Some "fresh") (Db.get db (key 0));
      Db.delete db (key 1);
      Alcotest.(check (option string)) "delete after eviction" None (Db.get db (key 1)))

let eviction_scan () =
  with_db (fun _ db ->
      for i = 0 to 199 do
        Db.put db (key i) (value i)
      done;
      ignore (Db.evict_munk db (key 0));
      let r = Db.scan db ~low:(key 0) ~high:(key 199) () in
      Alcotest.(check int) "scan through munk-less chunk" 200 (List.length r))

let funk_rebalance_path () =
  (* Evict, then hammer the cold chunk with updates until its log
     crosses the limit and a cold funk rebalance (sstable+log merge)
     runs. *)
  with_db (fun _ db ->
      for i = 0 to 99 do
        Db.put db (key i) (value i)
      done;
      ignore (Db.evict_munk db (key 0));
      for round = 0 to 20 do
        for i = 0 to 99 do
          Db.put db (key i) (Printf.sprintf "r%d-%d" round i)
        done;
        Db.maintain db
      done;
      for i = 0 to 99 do
        Alcotest.(check (option string)) "value after cold rebalances"
          (Some (Printf.sprintf "r20-%d" i))
          (Db.get db (key i))
      done)

let write_amplification_sane () =
  with_db (fun _ db ->
      for i = 0 to 999 do
        Db.put db (key i) (String.make 200 'v')
      done;
      let wa = Db.write_amplification db in
      Alcotest.(check bool) (Printf.sprintf "wa=%.2f in (1, 50)" wa) true (wa > 1.0 && wa < 50.0);
      Alcotest.(check bool) "logical counted" true (Db.logical_bytes_written db >= 1000 * 200))

let stats_reporting () =
  let config = { tiny_config with Config.collect_read_stats = true } in
  with_db ~config (fun _ db ->
      for i = 0 to 49 do
        Db.put db (key i) (value i)
      done;
      for i = 0 to 49 do
        ignore (Db.get db (key i))
      done;
      let s = Db.read_stats db in
      Alcotest.(check int) "all gets classified" 50 s.Read_stats.total;
      let munk_share = List.assoc Read_stats.Munk_cache s.Read_stats.fractions in
      Alcotest.(check bool) "hot data served from munks" true (munk_share > 0.9))

let model_random =
  QCheck.Test.make ~name:"db matches map model (sequential)" ~count:30
    QCheck.(
      list_of_size
        Gen.(int_range 1 300)
        (triple (int_range 0 60) (option (string_of_size (Gen.return 4))) bool))
    (fun ops ->
      let env = Env.memory () in
      let db = Db.open_ ~config:tiny_config env in
      let module M = Map.Make (String) in
      let model = ref M.empty in
      List.iter
        (fun (k, v, _) ->
          let k = key k in
          match v with
          | Some v ->
            Db.put db k v;
            model := M.add k (Some v) !model
          | None ->
            Db.delete db k;
            model := M.add k None !model)
        ops;
      let gets_ok =
        M.for_all (fun k expected -> Db.get db k = expected) !model
      in
      let live =
        M.fold (fun k v acc -> match v with Some x -> (k, x) :: acc | None -> acc) !model []
        |> List.sort compare
      in
      let scan_ok = Db.scan db ~low:"" ~high:"zzzz" () = live in
      Db.close db;
      gets_ok && scan_ok)

let scan_snapshot_vs_put () =
  (* A scan's snapshot excludes later puts even single-threaded:
     sanity for version assignment (GV bumps on scan). *)
  with_db (fun _ db ->
      Db.put db "a" "1";
      let before = Db.scan db ~low:"a" ~high:"z" () in
      Db.put db "b" "2";
      let after = Db.scan db ~low:"a" ~high:"z" () in
      Alcotest.(check int) "before" 1 (List.length before);
      Alcotest.(check int) "after" 2 (List.length after))

let suite =
  [
    ( "db",
      [
        Alcotest.test_case "put/get" `Quick put_get;
        Alcotest.test_case "delete" `Quick delete_semantics;
        Alcotest.test_case "edge keys" `Quick empty_and_edge_keys;
        Alcotest.test_case "scan basics" `Quick scan_basic;
        Alcotest.test_case "scan skips tombstones" `Quick scan_skips_tombstones;
        Alcotest.test_case "splits under load" `Quick many_keys_split;
        Alcotest.test_case "overwrite heavy" `Quick overwrite_heavy;
        Alcotest.test_case "eviction and row cache" `Quick eviction_and_row_cache;
        Alcotest.test_case "scan through evicted chunk" `Quick eviction_scan;
        Alcotest.test_case "cold funk rebalance" `Quick funk_rebalance_path;
        Alcotest.test_case "write amplification sane" `Quick write_amplification_sane;
        Alcotest.test_case "read stats" `Quick stats_reporting;
        Alcotest.test_case "scan snapshot vs put" `Quick scan_snapshot_vs_put;
        qtest model_random;
      ] );
  ]

let merge_after_deletes () =
  (* The paper leaves chunk merging unimplemented (§3.4); we implement
     it: after mass deletion, maintenance folds underflowing chunks
     back together. A munk cache covering the store makes the live
     weights visible to the merge trigger. *)
  with_db ~config:{ tiny_config with Config.munk_cache_capacity = 256 } (fun _ db ->
      let n = 2000 in
      for i = 0 to n - 1 do
        Db.put db (key i) (String.make 64 'v')
      done;
      let chunks_before = Db.chunk_count db in
      Alcotest.(check bool) "grew" true (chunks_before > 4);
      for i = 0 to n - 1 do
        if i mod 10 <> 0 then Db.delete db (key i)
      done;
      Db.maintain db;
      let chunks_after = Db.chunk_count db in
      Alcotest.(check bool)
        (Printf.sprintf "merged %d -> %d" chunks_before chunks_after)
        true
        (chunks_after < chunks_before);
      (* Content is intact after merging. *)
      for i = 0 to n - 1 do
        let expected = if i mod 10 = 0 then Some (String.make 64 'v') else None in
        if Db.get db (key i) <> expected then Alcotest.failf "wrong content for %s" (key i)
      done;
      Alcotest.(check int) "scan after merge" (n / 10)
        (List.length (Db.scan db ~low:"" ~high:"zzzz" ())))

let merge_preserves_recovery () =
  let env = Env.memory () in
  let config = { tiny_config with Config.munk_cache_capacity = 256 } in
  let db = Db.open_ ~config env in
  for i = 0 to 999 do
    Db.put db (key i) (String.make 64 'v')
  done;
  for i = 0 to 999 do
    if i mod 5 <> 0 then Db.delete db (key i)
  done;
  Db.maintain db;
  Db.checkpoint db;
  Evendb_storage.Env.crash env;
  let db = Db.open_ ~config env in
  Alcotest.(check int) "recovered after merges" 200
    (List.length (Db.scan db ~low:"" ~high:"zzzz" ()));
  Db.close db

let suite =
  suite
  @ [
      ( "db_merge",
        [
          Alcotest.test_case "merge after deletes" `Quick merge_after_deletes;
          Alcotest.test_case "merge + recovery" `Quick merge_preserves_recovery;
        ] );
    ]

(* ---- Further behavioural coverage ---- *)

let values_survive_all_maintenance () =
  (* Churn one store through every maintenance path (splits, flushes,
     cold rebalances, evictions, merges) and verify the final state is
     exactly the last write of every key. *)
  with_db (fun _ db ->
      let n = 600 in
      for round = 0 to 4 do
        for i = 0 to n - 1 do
          Db.put db (key i) (Printf.sprintf "round%d-%d" round i)
        done;
        ignore (Db.evict_munk db (key (round * 100)));
        Db.maintain db
      done;
      for i = 0 to n - 1 do
        Alcotest.(check (option string)) (key i) (Some (Printf.sprintf "round4-%d" i))
          (Db.get db (key i))
      done)

let scan_limit_exact () =
  with_db (fun _ db ->
      for i = 0 to 49 do
        Db.put db (key i) (value i)
      done;
      List.iter
        (fun l ->
          Alcotest.(check int) (Printf.sprintf "limit %d" l) (min l 50)
            (List.length (Db.scan db ~limit:l ~low:"" ~high:"zzzz" ())))
        [ 0; 1; 7; 50; 100 ])

let checkpoint_version_advances () =
  with_db (fun _ db ->
      let v0 = Db.current_version db in
      Db.checkpoint db;
      let v1 = Db.current_version db in
      Alcotest.(check bool) "checkpoint bumps GV" true (v1 > v0);
      Db.put db "k" "v";
      Alcotest.(check int) "puts do not bump GV" v1 (Db.current_version db);
      ignore (Db.scan db ~low:"" ~high:"z" ());
      Alcotest.(check bool) "scans bump GV" true (Db.current_version db > v1))

let chunk_weights_reporting () =
  with_db (fun _ db ->
      for i = 0 to 99 do
        Db.put db (key i) (String.make 64 'v')
      done;
      let weights = Db.chunk_weights db in
      Alcotest.(check int) "one row per chunk" (Db.chunk_count db) (List.length weights);
      let total = List.fold_left (fun acc (_, w, _) -> acc + w) 0 weights in
      Alcotest.(check bool) "weights reflect data" true (total > 100 * 64))

let reopen_with_different_cache_config () =
  (* Cache sizing is volatile configuration: reopening with different
     capacities must not affect correctness. *)
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  for i = 0 to 199 do
    Db.put db (key i) (value i)
  done;
  Db.close db;
  let db =
    Db.open_ ~config:{ tiny_config with Config.munk_cache_capacity = 2; row_cache_capacity_per_table = 8 } env
  in
  for i = 0 to 199 do
    Alcotest.(check (option string)) (key i) (Some (value i)) (Db.get db (key i))
  done;
  Db.close db

let suite =
  suite
  @ [
      ( "db_behaviour",
        [
          Alcotest.test_case "survives all maintenance paths" `Quick values_survive_all_maintenance;
          Alcotest.test_case "scan limit exact" `Quick scan_limit_exact;
          Alcotest.test_case "GV discipline" `Quick checkpoint_version_advances;
          Alcotest.test_case "chunk weights reporting" `Quick chunk_weights_reporting;
          Alcotest.test_case "reopen with different caches" `Quick reopen_with_different_cache_config;
        ] );
    ]
