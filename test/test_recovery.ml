(* Recovery tests (§3.5): checkpointing, crash simulation, prefix
   consistency, epochs and the recovery table, synchronous mode, clean
   reopen. *)

open Evendb_storage
open Evendb_core

let tiny_config =
  {
    Config.default with
    max_chunk_bytes = 8 * 1024;
    munk_rebalance_bytes = 6 * 1024;
    munk_rebalance_appended = 64;
    funk_log_limit_no_munk = 2 * 1024;
    funk_log_limit_with_munk = 8 * 1024;
    munk_cache_capacity = 4;
    checkpoint_every_puts = 0;
  }

let key i = Printf.sprintf "key%06d" i

let clean_reopen () =
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  for i = 0 to 499 do
    Db.put db (key i) (string_of_int i)
  done;
  Db.delete db (key 100);
  Db.close db;
  (* close checkpoints, so nothing is lost. *)
  let db = Db.open_ ~config:tiny_config env in
  for i = 0 to 499 do
    if i = 100 then
      Alcotest.(check (option string)) "tombstone survives" None (Db.get db (key i))
    else
      Alcotest.(check (option string)) (key i) (Some (string_of_int i)) (Db.get db (key i))
  done;
  Alcotest.(check int) "scan after reopen" 499
    (List.length (Db.scan db ~low:"" ~high:"zzzz" ()));
  Db.close db

let crash_after_checkpoint () =
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  for i = 0 to 99 do
    Db.put db (key i) "durable"
  done;
  Db.checkpoint db;
  for i = 100 to 149 do
    Db.put db (key i) "volatile"
  done;
  Env.crash env;
  let db = Db.open_ ~config:tiny_config env in
  for i = 0 to 99 do
    Alcotest.(check (option string)) "checkpointed survives" (Some "durable") (Db.get db (key i))
  done;
  (* Everything after the checkpoint must be gone (no put landed in a
     synced file afterwards). *)
  for i = 100 to 149 do
    Alcotest.(check (option string)) "uncheckpointed lost" None (Db.get db (key i))
  done;
  Db.close db

let prefix_consistency () =
  (* The core guarantee: if a put survives the crash, every earlier
     put survives too — even when some fsyncs happen between
     checkpoints (funk rebuilds fsync their SSTables). *)
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  let n = 1500 in
  for i = 0 to n - 1 do
    Db.put db (key i) (string_of_int i);
    if i = n / 2 then Db.checkpoint db
  done;
  Env.crash env;
  let db = Db.open_ ~config:tiny_config env in
  let last_survivor = ref (-1) in
  let holes = ref [] in
  for i = 0 to n - 1 do
    match Db.get db (key i) with
    | Some _ ->
      if !last_survivor <> i - 1 then holes := i :: !holes;
      last_survivor := i
    | None -> ()
  done;
  Alcotest.(check (list int)) "no holes in the surviving prefix" [] !holes;
  Alcotest.(check bool) "checkpoint covered" true (!last_survivor >= n / 2);
  Db.close db

let overwrites_prefix_consistency () =
  (* With overwrites of one key, recovery must yield the version from
     a consistent point: not newer than any lost later write. *)
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  for v = 0 to 200 do
    Db.put db "x" (string_of_int v);
    Db.put db "marker" (string_of_int v);
    if v = 100 then Db.checkpoint db
  done;
  Env.crash env;
  let db = Db.open_ ~config:tiny_config env in
  (match (Db.get db "x", Db.get db "marker") with
  | Some x, Some m ->
    let x = int_of_string x and m = int_of_string m in
    Alcotest.(check bool) "at least the checkpoint" true (x >= 100 && m >= 100);
    (* marker v is written after x v: surviving marker v implies x >= v *)
    Alcotest.(check bool) "x not behind marker" true (x >= m)
  | _ -> Alcotest.fail "checkpointed keys lost");
  Db.close db

let epochs_across_crashes () =
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  Alcotest.(check int) "first epoch" 0 (Db.current_epoch db);
  Db.put db "a" "1";
  Db.checkpoint db;
  Env.crash env;
  let db = Db.open_ ~config:tiny_config env in
  Alcotest.(check bool) "epoch advanced" true (Db.current_epoch db > 0);
  Db.put db "b" "2";
  Db.checkpoint db;
  Env.crash env;
  let db = Db.open_ ~config:tiny_config env in
  Alcotest.(check bool) "epoch advanced again" true (Db.current_epoch db > 1);
  Alcotest.(check (option string)) "epoch-0 data" (Some "1") (Db.get db "a");
  Alcotest.(check (option string)) "epoch-1 data" (Some "2") (Db.get db "b");
  Db.close db

let crash_without_any_checkpoint () =
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  for i = 0 to 49 do
    Db.put db (key i) "v"
  done;
  Env.crash env;
  let db = Db.open_ ~config:tiny_config env in
  (* Nothing was checkpointed: the store must come back empty but
     functional. *)
  Alcotest.(check int) "no survivors" 0 (List.length (Db.scan db ~low:"" ~high:"zzzz" ()));
  Db.put db "new" "life";
  Alcotest.(check (option string)) "writable after recovery" (Some "life") (Db.get db "new");
  Db.close db

let sync_mode_survives_without_checkpoint () =
  let env = Env.memory () in
  let config = { tiny_config with Config.persistence = Config.Sync } in
  let db = Db.open_ ~config env in
  for i = 0 to 49 do
    Db.put db (key i) "fsynced"
  done;
  Env.crash env;
  let db = Db.open_ ~config env in
  for i = 0 to 49 do
    Alcotest.(check (option string)) "synchronous put survives" (Some "fsynced")
      (Db.get db (key i))
  done;
  Db.close db

let recovery_after_splits () =
  let env = Env.memory () in
  let db = Db.open_ ~config:tiny_config env in
  let n = 1200 in
  for i = 0 to n - 1 do
    Db.put db (key i) (String.make 64 'v')
  done;
  Alcotest.(check bool) "split happened" true (Db.chunk_count db > 2);
  Db.checkpoint db;
  Env.crash env;
  let db = Db.open_ ~config:tiny_config env in
  Alcotest.(check bool) "chunks rebuilt" true (Db.chunk_count db > 2);
  for i = 0 to n - 1 do
    if Db.get db (key i) = None then Alcotest.failf "lost %s after split recovery" (key i)
  done;
  Db.close db

let recovery_table_roundtrip () =
  let env = Env.memory () in
  let rt =
    Recovery_table.(add (add empty ~epoch:0 ~last_seq:1375) ~epoch:1 ~last_seq:956)
  in
  Recovery_table.store env rt;
  let rt' = Recovery_table.load env in
  Alcotest.(check (option int)) "epoch 0" (Some 1375) (Recovery_table.last_seq rt' ~epoch:0);
  Alcotest.(check (option int)) "epoch 1" (Some 956) (Recovery_table.last_seq rt' ~epoch:1);
  Alcotest.(check int) "max epoch" 1 (Recovery_table.max_epoch rt');
  (* Visibility (Table 1 semantics): epoch-0 version 1375 visible,
     1376 not; current epoch always visible. *)
  let v_ok = Evendb_core.Version.pack ~epoch:0 ~seq:1375 in
  let v_bad = Evendb_core.Version.pack ~epoch:0 ~seq:1376 in
  let v_cur = Evendb_core.Version.pack ~epoch:2 ~seq:999999 in
  Alcotest.(check bool) "<= checkpoint visible" true
    (Recovery_table.is_visible rt' ~current_epoch:2 v_ok);
  Alcotest.(check bool) "> checkpoint invisible" false
    (Recovery_table.is_visible rt' ~current_epoch:2 v_bad);
  Alcotest.(check bool) "current epoch visible" true
    (Recovery_table.is_visible rt' ~current_epoch:2 v_cur);
  Alcotest.(check bool) "unknown epoch invisible" false
    (Recovery_table.is_visible rt' ~current_epoch:5 (Evendb_core.Version.pack ~epoch:3 ~seq:1))

let version_packing () =
  let v = Version.pack ~epoch:7 ~seq:123456 in
  Alcotest.(check int) "epoch" 7 (Version.epoch v);
  Alcotest.(check int) "seq" 123456 (Version.seq v);
  Alcotest.(check bool) "epoch dominates" true
    (Version.pack ~epoch:2 ~seq:0 > Version.pack ~epoch:1 ~seq:(1 lsl 40));
  Alcotest.check_raises "epoch overflow"
    (Invalid_argument "Version.pack: epoch out of range") (fun () ->
      ignore (Version.pack ~epoch:(Version.max_epoch + 1) ~seq:0))

let checkpoint_file_roundtrip () =
  let env = Env.memory () in
  Alcotest.(check (option int)) "absent" None (Checkpoint_file.load env);
  Checkpoint_file.store env ~version:424242;
  Alcotest.(check (option int)) "roundtrip" (Some 424242) (Checkpoint_file.load env)

let auto_checkpoint () =
  let env = Env.memory () in
  let config = { tiny_config with Config.checkpoint_every_puts = 100 } in
  let db = Db.open_ ~config env in
  for i = 0 to 499 do
    Db.put db (key i) "v"
  done;
  Env.crash env;
  let db = Db.open_ ~config env in
  (* At least four auto-checkpoints fired: most data must survive. *)
  let survivors = List.length (Db.scan db ~low:"" ~high:"zzzz" ()) in
  Alcotest.(check bool) (Printf.sprintf "%d survivors >= 400" survivors) true (survivors >= 400);
  Db.close db

let suite =
  [
    ( "recovery",
      [
        Alcotest.test_case "clean reopen" `Quick clean_reopen;
        Alcotest.test_case "crash after checkpoint" `Quick crash_after_checkpoint;
        Alcotest.test_case "prefix consistency" `Quick prefix_consistency;
        Alcotest.test_case "overwrite prefix consistency" `Quick overwrites_prefix_consistency;
        Alcotest.test_case "epochs across crashes" `Quick epochs_across_crashes;
        Alcotest.test_case "crash without checkpoint" `Quick crash_without_any_checkpoint;
        Alcotest.test_case "sync mode" `Quick sync_mode_survives_without_checkpoint;
        Alcotest.test_case "recovery after splits" `Quick recovery_after_splits;
        Alcotest.test_case "auto checkpoint" `Quick auto_checkpoint;
      ] );
    ( "recovery_metadata",
      [
        Alcotest.test_case "recovery table (Table 1)" `Quick recovery_table_roundtrip;
        Alcotest.test_case "version packing" `Quick version_packing;
        Alcotest.test_case "checkpoint file" `Quick checkpoint_file_roundtrip;
      ] );
  ]

(* Property: crash at a random point -> survivors are a prefix.
   Writers append markers seq0, seq1, ... with a checkpoint sprinkled
   in; after the crash the set of surviving sequence numbers must be
   a prefix of the history and include everything up to the last
   checkpoint. *)
let crash_prefix_property =
  QCheck.Test.make ~name:"random crash point recovers a prefix" ~count:15
    QCheck.(pair (int_range 10 400) (int_range 0 400))
    (fun (total, ckpt_at) ->
      let ckpt_at = ckpt_at mod total in
      let env = Env.memory () in
      let db = Db.open_ ~config:tiny_config env in
      for i = 0 to total - 1 do
        Db.put db (Printf.sprintf "seq%06d" i) (string_of_int i);
        if i = ckpt_at then Db.checkpoint db
      done;
      Env.crash env;
      let db = Db.open_ ~config:tiny_config env in
      let last = ref (-1) in
      let holes = ref false in
      for i = 0 to total - 1 do
        match Db.get db (Printf.sprintf "seq%06d" i) with
        | Some _ ->
          if !last <> i - 1 then holes := true;
          last := i
        | None -> ()
      done;
      Db.close db;
      (not !holes) && !last >= ckpt_at)

let suite =
  suite
  @ [
      ( "recovery_property",
        [ QCheck_alcotest.to_alcotest crash_prefix_property ] );
    ]
