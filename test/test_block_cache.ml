(* Shared block cache (PR 8): the capacity bound must hold at every
   instant (not just eventually), a cached block is verified exactly
   once, LFU keeps hot blocks through cold churn, oversized blocks are
   served uncached, and namespace invalidation is surgical. The same
   properties are re-checked under 4-domain contention. *)

open Evendb_util
open Evendb_cache

let block n len = Bigslice.of_string (String.make len (Char.chr (n land 0xff)))

(* Drive > 2x the capacity of distinct blocks through the cache and
   assert the resident total never exceeds the budget after any
   insert. *)
let capacity_bound () =
  let cap = 64 * 1024 in
  let blk = 4 * 1024 in
  let bc = Block_cache.create ~capacity_bytes:cap () in
  let n = (2 * cap / blk) + 8 in
  for i = 0 to n - 1 do
    ignore (Block_cache.find_or_fill bc ~space:0 ~file:"f" ~index:i ~fill:(fun () -> block i blk));
    let r = Block_cache.resident_bytes bc in
    if r > cap then Alcotest.failf "resident %d > capacity %d after insert %d" r cap i
  done;
  Alcotest.(check bool) "evictions happened" true (Block_cache.evictions bc > 0);
  Alcotest.(check int) "distinct blocks: every access filled" n (Block_cache.fills bc);
  Alcotest.(check int) "distinct blocks: every access missed" n (Block_cache.misses bc)

(* CRC verification lives in the fill closure; a cached block must be
   served without running it again. *)
let fill_once () =
  let bc = Block_cache.create ~capacity_bytes:(1024 * 1024) () in
  let fills = ref 0 in
  let fill () =
    incr fills;
    block 1 512
  in
  for _ = 1 to 10 do
    let s = Block_cache.find_or_fill bc ~space:0 ~file:"f" ~index:0 ~fill in
    Alcotest.(check int) "slice length" 512 (Bigslice.length s)
  done;
  Alcotest.(check int) "verified exactly once" 1 !fills;
  Alcotest.(check int) "fills" 1 (Block_cache.fills bc);
  Alcotest.(check int) "misses" 1 (Block_cache.misses bc);
  Alcotest.(check int) "hits" 9 (Block_cache.hits bc)

(* One shard makes the policy observable: a block accessed 30+ times
   must survive a churn of 40 once-touched blocks through a 4-block
   budget. *)
let lfu_keeps_hot_blocks () =
  let blk = 1024 in
  let bc = Block_cache.create ~shards:1 ~capacity_bytes:(4 * blk) () in
  let fill_count = Array.make 64 0 in
  let get i =
    ignore
      (Block_cache.find_or_fill bc ~space:0 ~file:"f" ~index:i ~fill:(fun () ->
           fill_count.(i) <- fill_count.(i) + 1;
           block i blk))
  in
  for _ = 1 to 32 do
    get 0
  done;
  for i = 1 to 40 do
    get i
  done;
  get 0;
  Alcotest.(check int) "hot block never refilled" 1 fill_count.(0);
  Alcotest.(check bool) "cold churn evicted" true (Block_cache.evictions bc > 0)

(* A block larger than a shard's budget must be served (correctness)
   but never cached (the bound stays strict). *)
let oversized_served_uncached () =
  let bc = Block_cache.create ~shards:1 ~capacity_bytes:1024 () in
  for _ = 1 to 3 do
    let s =
      Block_cache.find_or_fill bc ~space:0 ~file:"big" ~index:0 ~fill:(fun () -> block 7 4096)
    in
    Alcotest.(check int) "served in full" 4096 (Bigslice.length s)
  done;
  Alcotest.(check int) "never resident" 0 (Block_cache.resident_bytes bc);
  Alcotest.(check int) "refilled every time" 3 (Block_cache.fills bc)

(* A fill that raises (corruption, I/O error) must cache nothing and
   leave the cache usable. *)
let failed_fill_caches_nothing () =
  let bc = Block_cache.create ~capacity_bytes:1024 () in
  (try
     ignore
       (Block_cache.find_or_fill bc ~space:0 ~file:"f" ~index:0 ~fill:(fun () ->
            failwith "bad crc"));
     Alcotest.fail "fill exception swallowed"
   with Failure _ -> ());
  Alcotest.(check int) "nothing resident" 0 (Block_cache.resident_bytes bc);
  let fills = ref 0 in
  let s =
    Block_cache.find_or_fill bc ~space:0 ~file:"f" ~index:0 ~fill:(fun () ->
        incr fills;
        block 3 128)
  in
  Alcotest.(check int) "retried fill runs" 1 !fills;
  Alcotest.(check int) "and serves" 128 (Bigslice.length s)

(* invalidate_file drops exactly one (space, file); invalidate_space
   drops one namespace and spares others — the shard/crash contract. *)
let invalidation_is_surgical () =
  let bc = Block_cache.create ~capacity_bytes:(1024 * 1024) () in
  let fills = ref 0 in
  let get space file i =
    ignore
      (Block_cache.find_or_fill bc ~space ~file ~index:i ~fill:(fun () ->
           incr fills;
           block i 256))
  in
  get 0 "a" 0;
  get 0 "a" 1;
  get 0 "b" 0;
  get 1 "a" 0;
  Alcotest.(check int) "four distinct blocks" 4 !fills;
  Block_cache.invalidate_file bc ~space:0 ~file:"a";
  get 0 "a" 0;
  get 0 "b" 0;
  get 1 "a" 0;
  Alcotest.(check int) "only (0, a) was dropped" 5 !fills;
  Block_cache.invalidate_space bc ~space:0;
  get 0 "a" 0;
  get 0 "b" 0;
  get 1 "a" 0;
  Alcotest.(check int) "space 0 dropped, space 1 kept" 7 !fills;
  Block_cache.clear bc;
  Alcotest.(check int) "empty after clear" 0 (Block_cache.resident_bytes bc)

(* Four domains hammer a shared working set larger than the cache.
   Invariants checked on every access from every domain: served slices
   carry the right bytes (a racing fill must never surface a torn or
   foreign block) and the resident total never exceeds capacity. *)
let concurrent_domains () =
  let cap = 32 * 1024 in
  let blk = 1024 in
  let per_domain = 5_000 in
  let bc = Block_cache.create ~capacity_bytes:cap () in
  let violation = Atomic.make false in
  let worker seed () =
    let st = Random.State.make [| 0xb10c; seed |] in
    for _ = 1 to per_domain do
      let i = Random.State.int st 128 in
      let s = Block_cache.find_or_fill bc ~space:0 ~file:"f" ~index:i ~fill:(fun () -> block i blk) in
      if Bigslice.length s <> blk || Bigslice.get s 0 <> Char.chr (i land 0xff) then
        Atomic.set violation true;
      if Block_cache.resident_bytes bc > cap then Atomic.set violation true
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
  List.iter Domain.join domains;
  Alcotest.(check bool) "no content/bound violation under 4 domains" false (Atomic.get violation);
  Alcotest.(check int) "every access is a hit or a miss" (4 * per_domain)
    (Block_cache.hits bc + Block_cache.misses bc);
  Alcotest.(check bool) "resident bound holds at rest" true (Block_cache.resident_bytes bc <= cap)

let suite =
  [
    ( "block_cache",
      [
        Alcotest.test_case "capacity bound holds at every insert" `Quick capacity_bound;
        Alcotest.test_case "a block is verified exactly once" `Quick fill_once;
        Alcotest.test_case "LFU keeps hot blocks through cold churn" `Quick lfu_keeps_hot_blocks;
        Alcotest.test_case "oversized blocks served but not cached" `Quick oversized_served_uncached;
        Alcotest.test_case "a failed fill caches nothing" `Quick failed_fill_caches_nothing;
        Alcotest.test_case "invalidation is per-file / per-space" `Quick invalidation_is_surgical;
        Alcotest.test_case "4-domain contention" `Quick concurrent_domains;
      ] );
  ]
