(* Storage environment tests: both backends, plus the memory backend's
   crash semantics that the recovery tests build on. *)

open Evendb_storage

let with_disk_env f =
  let dir = Filename.temp_file "evendb_test" "" in
  Sys.remove dir;
  let env = Env.disk dir in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun name -> try Env.delete env name with _ -> ()) (Env.list_files env);
      try Unix.rmdir dir with _ -> ())
    (fun () -> f env)

let both_backends name f =
  [
    Alcotest.test_case (name ^ " (memory)") `Quick (fun () -> f (Env.memory ()));
    Alcotest.test_case (name ^ " (disk)") `Quick (fun () -> with_disk_env f);
  ]

let append_read env =
  let file = Env.create env "a.dat" in
  Env.append file "hello ";
  Env.append file "world";
  Env.flush file;
  Alcotest.(check int) "file_size" 11 (Env.file_size file);
  Alcotest.(check int) "size" 11 (Env.size env "a.dat");
  Alcotest.(check string) "read_all" "hello world" (Env.read_all env "a.dat");
  Alcotest.(check string) "read_at" "world" (Env.read_at env "a.dat" ~off:6 ~len:5);
  Env.close_file file

let reopen_append env =
  let f1 = Env.create env "b.dat" in
  Env.append f1 "one";
  Env.close_file f1;
  let f2 = Env.open_append env "b.dat" in
  Alcotest.(check int) "resume position" 3 (Env.file_size f2);
  Env.append f2 "two";
  Env.close_file f2;
  Alcotest.(check string) "appended" "onetwo" (Env.read_all env "b.dat")

let rename_delete env =
  let f = Env.create env "old.dat" in
  Env.append f "data";
  Env.close_file f;
  Env.rename env ~old_name:"old.dat" ~new_name:"new.dat";
  Alcotest.(check bool) "old gone" false (Env.exists env "old.dat");
  Alcotest.(check string) "content moved" "data" (Env.read_all env "new.dat");
  Env.delete env "new.dat";
  Alcotest.(check bool) "deleted" false (Env.exists env "new.dat");
  (* Deleting a missing file is a no-op. *)
  Env.delete env "new.dat"

let read_out_of_range env =
  let f = Env.create env "c.dat" in
  Env.append f "abc";
  Env.close_file f;
  Alcotest.check_raises "beyond end" (Invalid_argument "Env.read_at: range beyond end of file")
    (fun () -> ignore (Env.read_at env "c.dat" ~off:1 ~len:5))

let missing_file env =
  Alcotest.(check bool) "exists" false (Env.exists env "nope");
  (try
     ignore (Env.size env "nope");
     Alcotest.fail "expected Not_found"
   with Not_found -> ())

let list_and_space env =
  let f1 = Env.create env "x1" and f2 = Env.create env "x2" in
  Env.append f1 "12345";
  Env.append f2 "123";
  Env.close_file f1;
  Env.close_file f2;
  let files = List.sort compare (Env.list_files env) in
  Alcotest.(check (list string)) "files" [ "x1"; "x2" ] files;
  Alcotest.(check int) "space" 8 (Env.space_used env)

let stats_accounting env =
  Io_stats.reset (Env.stats env);
  let f = Env.create env "s.dat" in
  Env.append f "0123456789";
  Env.fsync f;
  ignore (Env.read_at env "s.dat" ~off:0 ~len:4);
  Env.close_file f;
  let s = Io_stats.snapshot (Env.stats env) in
  Alcotest.(check int) "bytes written" 10 s.Io_stats.bytes_written;
  Alcotest.(check int) "bytes read" 4 s.Io_stats.bytes_read;
  Alcotest.(check bool) "fsync counted" true (s.Io_stats.fsyncs >= 1)

(* ---- Crash semantics (memory backend only) ---- *)

let crash_discards_unsynced () =
  let env = Env.memory () in
  let f = Env.create env "w.log" in
  Env.append f "durable";
  Env.fsync f;
  Env.append f "-volatile";
  Env.crash env;
  Alcotest.(check string) "unsynced suffix dropped" "durable" (Env.read_all env "w.log")

let crash_never_synced () =
  let env = Env.memory () in
  let f = Env.create env "v.log" in
  Env.append f "gone";
  Env.crash env;
  Alcotest.(check int) "empty after crash" 0 (Env.size env "v.log");
  ignore f

let crash_invalidates_handles () =
  let env = Env.memory () in
  let f = Env.create env "h.log" in
  Env.crash env;
  (try
     Env.append f "x";
     Alcotest.fail "expected stale handle failure"
   with Failure _ -> ())

let fsync_all_marks_everything () =
  let env = Env.memory () in
  let f1 = Env.create env "f1" and f2 = Env.create env "f2" in
  Env.append f1 "aaa";
  Env.append f2 "bbb";
  Env.fsync_all env;
  Env.crash env;
  Alcotest.(check string) "f1 survived" "aaa" (Env.read_all env "f1");
  Alcotest.(check string) "f2 survived" "bbb" (Env.read_all env "f2")

let crash_disk_rejected () =
  with_disk_env (fun env ->
      try
        Env.crash env;
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())

let concurrent_appends () =
  let env = Env.memory () in
  let f = Env.create env "conc" in
  let threads =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 500 do
              Env.append f "xy"
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "all appends landed" 4000 (Env.size env "conc")

let suite =
  [
    ( "env",
      both_backends "append/read" append_read
      @ both_backends "reopen append" reopen_append
      @ both_backends "rename/delete" rename_delete
      @ both_backends "read out of range" read_out_of_range
      @ both_backends "missing file" missing_file
      @ both_backends "list/space" list_and_space
      @ both_backends "io stats" stats_accounting );
    ( "crash",
      [
        Alcotest.test_case "drops unsynced suffix" `Quick crash_discards_unsynced;
        Alcotest.test_case "never-synced file empties" `Quick crash_never_synced;
        Alcotest.test_case "invalidates handles" `Quick crash_invalidates_handles;
        Alcotest.test_case "fsync_all makes durable" `Quick fsync_all_marks_everything;
        Alcotest.test_case "disk backend rejects crash" `Quick crash_disk_rejected;
        Alcotest.test_case "concurrent appends" `Quick concurrent_appends;
      ] );
  ]
