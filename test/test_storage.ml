(* Storage environment tests: both backends, plus the memory backend's
   crash semantics that the recovery tests build on. *)

open Evendb_storage

let with_disk_env f =
  let dir = Filename.temp_file "evendb_test" "" in
  Sys.remove dir;
  let env = Env.disk dir in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun name -> try Env.delete env name with _ -> ()) (Env.list_files env);
      try Unix.rmdir dir with _ -> ())
    (fun () -> f env)

let both_backends name f =
  [
    Alcotest.test_case (name ^ " (memory)") `Quick (fun () -> f (Env.memory ()));
    Alcotest.test_case (name ^ " (disk)") `Quick (fun () -> with_disk_env f);
  ]

let append_read env =
  let file = Env.create env "a.dat" in
  Env.append file "hello ";
  Env.append file "world";
  Env.flush file;
  Alcotest.(check int) "file_size" 11 (Env.file_size file);
  Alcotest.(check int) "size" 11 (Env.size env "a.dat");
  Alcotest.(check string) "read_all" "hello world" (Env.read_all env "a.dat");
  Alcotest.(check string) "read_at" "world" (Env.read_at env "a.dat" ~off:6 ~len:5);
  Env.close_file file

let reopen_append env =
  let f1 = Env.create env "b.dat" in
  Env.append f1 "one";
  Env.close_file f1;
  let f2 = Env.open_append env "b.dat" in
  Alcotest.(check int) "resume position" 3 (Env.file_size f2);
  Env.append f2 "two";
  Env.close_file f2;
  Alcotest.(check string) "appended" "onetwo" (Env.read_all env "b.dat")

let rename_delete env =
  let f = Env.create env "old.dat" in
  Env.append f "data";
  Env.close_file f;
  Env.rename env ~old_name:"old.dat" ~new_name:"new.dat";
  Alcotest.(check bool) "old gone" false (Env.exists env "old.dat");
  Alcotest.(check string) "content moved" "data" (Env.read_all env "new.dat");
  Env.delete env "new.dat";
  Alcotest.(check bool) "deleted" false (Env.exists env "new.dat");
  (* Deleting a missing file is a no-op. *)
  Env.delete env "new.dat"

let read_out_of_range env =
  let f = Env.create env "c.dat" in
  Env.append f "abc";
  Env.close_file f;
  Alcotest.check_raises "beyond end" (Invalid_argument "Env.read_at: range beyond end of file")
    (fun () -> ignore (Env.read_at env "c.dat" ~off:1 ~len:5))

let missing_file env =
  Alcotest.(check bool) "exists" false (Env.exists env "nope");
  (try
     ignore (Env.size env "nope");
     Alcotest.fail "expected Not_found"
   with Not_found -> ())

let list_and_space env =
  let f1 = Env.create env "x1" and f2 = Env.create env "x2" in
  Env.append f1 "12345";
  Env.append f2 "123";
  Env.close_file f1;
  Env.close_file f2;
  let files = List.sort compare (Env.list_files env) in
  Alcotest.(check (list string)) "files" [ "x1"; "x2" ] files;
  Alcotest.(check int) "space" 8 (Env.space_used env)

let stats_accounting env =
  Io_stats.reset (Env.stats env);
  let f = Env.create env "s.dat" in
  Env.append f "0123456789";
  Env.fsync f;
  ignore (Env.read_at env "s.dat" ~off:0 ~len:4);
  Env.close_file f;
  let s = Io_stats.snapshot (Env.stats env) in
  Alcotest.(check int) "bytes written" 10 s.Io_stats.bytes_written;
  Alcotest.(check int) "bytes read" 4 s.Io_stats.bytes_read;
  Alcotest.(check bool) "fsync counted" true (s.Io_stats.fsyncs >= 1)

(* ---- Crash semantics (memory backend only) ---- *)

let crash_discards_unsynced () =
  let env = Env.memory () in
  let f = Env.create env "w.log" in
  Env.append f "durable";
  Env.fsync f;
  Env.append f "-volatile";
  Env.crash env;
  Alcotest.(check string) "unsynced suffix dropped" "durable" (Env.read_all env "w.log")

let crash_never_synced () =
  let env = Env.memory () in
  let f = Env.create env "v.log" in
  Env.append f "gone";
  Env.crash env;
  Alcotest.(check int) "empty after crash" 0 (Env.size env "v.log");
  ignore f

let crash_invalidates_handles () =
  let env = Env.memory () in
  let f = Env.create env "h.log" in
  Env.crash env;
  (try
     Env.append f "x";
     Alcotest.fail "expected stale handle failure"
   with Failure _ -> ())

let fsync_all_marks_everything () =
  let env = Env.memory () in
  let f1 = Env.create env "f1" and f2 = Env.create env "f2" in
  Env.append f1 "aaa";
  Env.append f2 "bbb";
  Env.fsync_all env;
  Env.crash env;
  Alcotest.(check string) "f1 survived" "aaa" (Env.read_all env "f1");
  Alcotest.(check string) "f2 survived" "bbb" (Env.read_all env "f2")

let crash_disk_rejected () =
  with_disk_env (fun env ->
      try
        Env.crash env;
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())

let concurrent_appends () =
  let env = Env.memory () in
  let f = Env.create env "conc" in
  let threads =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 500 do
              Env.append f "xy"
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "all appends landed" 4000 (Env.size env "conc")

(* ---- Fault injection middleware ---- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let supports_crash_flag () =
  Alcotest.(check bool) "memory" true (Env.supports_crash (Env.memory ()));
  with_disk_env (fun env -> Alcotest.(check bool) "disk" false (Env.supports_crash env))

let middleware_stacking () =
  let plan = Fault.plan ~seed:7 ~rate:0.5 () in
  let env = Env.memory ~faults:plan () in
  let name = Env.backend_name env in
  Alcotest.(check bool) "counting outermost" true (contains ~sub:"counting" name);
  Alcotest.(check bool) "faulty layer present" true (contains ~sub:"faulty(7:0.5" name);
  Alcotest.(check bool) "memory innermost" true (contains ~sub:"memory" name);
  Alcotest.(check bool) "plain env has no faulty layer" false
    (contains ~sub:"faulty" (Env.backend_name (Env.memory ())))

let typed_error_fields () =
  let plan = Fault.plan ~seed:1 ~rate:1.0 ~torn_fraction:0.0 () in
  let env = Env.memory ~faults:plan () in
  let f = Env.create env "t.log" in
  (try
     Env.append f "hello";
     Alcotest.fail "expected Io_error"
   with Env.Io_error info ->
     Alcotest.(check string) "op" "append" info.Io_error.op;
     Alcotest.(check string) "file" "t.log" info.Io_error.file);
  (* A clean (non-torn) failure writes nothing, and Io_stats never
     counts a failed operation. *)
  Alcotest.(check int) "no bytes landed" 0 (Env.size env "t.log");
  Alcotest.(check int) "failed write not counted" 0
    (Io_stats.snapshot (Env.stats env)).Io_stats.bytes_written;
  Alcotest.(check (list (pair string int))) "counted by kind"
    [ ("append", 1); ("torn", 0); ("fsync", 0); ("rename", 0); ("corrupt", 0) ]
    (Fault.counts plan);
  Fault.set_armed plan false;
  Env.append f "hello";
  Alcotest.(check string) "disarmed plan injects nothing" "hello" (Env.read_all env "t.log");
  Env.close_file f

let torn_append_partial () =
  let plan = Fault.plan ~seed:5 ~rate:1.0 ~torn_fraction:1.0 () in
  let env = Env.memory ~faults:plan () in
  let f = Env.create env "torn.log" in
  (try
     Env.append f "0123456789";
     Alcotest.fail "expected Io_error"
   with Env.Io_error _ -> ());
  Fault.set_armed plan false;
  let n = Env.size env "torn.log" in
  Alcotest.(check bool) "strict prefix landed" true (n > 0 && n < 10);
  Env.close_file f

let deterministic_schedule () =
  let run () =
    let plan = Fault.plan ~seed:42 ~rate:0.3 () in
    let env = Env.memory ~faults:plan () in
    let f = Env.create env "d.log" in
    let failures = ref [] in
    for i = 0 to 199 do
      (try Env.append f (Printf.sprintf "record%04d" i)
       with Env.Io_error _ -> failures := i :: !failures);
      if i mod 10 = 0 then
        try Env.fsync f with Env.Io_error _ -> failures := (1000 + i) :: !failures
    done;
    Env.close_file f;
    (!failures, Fault.injected plan, Env.size env "d.log")
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  let _, injected, _ = a in
  Alcotest.(check bool) "schedule fired" true (injected > 0)

let parse_profile_roundtrip () =
  let p = Fault.parse_profile "42:0.01" in
  Alcotest.(check int) "seed" 42 (Fault.seed p);
  Alcotest.(check (float 1e-9)) "rate" 0.01 (Fault.rate p);
  Alcotest.(check string) "roundtrip" "42:0.01" (Fault.profile_string p);
  List.iter
    (fun s ->
      try
        ignore (Fault.parse_profile s);
        Alcotest.failf "expected Invalid_argument for %S" s
      with Invalid_argument _ -> ())
    [ "bogus"; "1:"; ":0.5"; "1:2.0"; "1:-0.1" ]

let suite =
  [
    ( "env",
      both_backends "append/read" append_read
      @ both_backends "reopen append" reopen_append
      @ both_backends "rename/delete" rename_delete
      @ both_backends "read out of range" read_out_of_range
      @ both_backends "missing file" missing_file
      @ both_backends "list/space" list_and_space
      @ both_backends "io stats" stats_accounting );
    ( "crash",
      [
        Alcotest.test_case "drops unsynced suffix" `Quick crash_discards_unsynced;
        Alcotest.test_case "never-synced file empties" `Quick crash_never_synced;
        Alcotest.test_case "invalidates handles" `Quick crash_invalidates_handles;
        Alcotest.test_case "fsync_all makes durable" `Quick fsync_all_marks_everything;
        Alcotest.test_case "disk backend rejects crash" `Quick crash_disk_rejected;
        Alcotest.test_case "concurrent appends" `Quick concurrent_appends;
      ] );
    ( "fault middleware",
      [
        Alcotest.test_case "supports_crash flag" `Quick supports_crash_flag;
        Alcotest.test_case "middleware stacking" `Quick middleware_stacking;
        Alcotest.test_case "typed error fields" `Quick typed_error_fields;
        Alcotest.test_case "torn append is a strict prefix" `Quick torn_append_partial;
        Alcotest.test_case "schedule is deterministic" `Quick deterministic_schedule;
        Alcotest.test_case "parse_profile" `Quick parse_profile_roundtrip;
      ] );
  ]
