(* Replication change-stream, follower and failover (ISSUE 9).

   - the commit-hook tap publishes acked writes with dense LSNs and the
     per-key supersede filter keeps only the newest emission;
   - shipping across a faulty link retries to convergence (counters
     prove both the faults and the retries happened);
   - the watermark makes redelivery idempotent and survives reopen;
   - a corrupt watermark is a typed corruption, not garbage state;
   - promote fences the old primary (writes raise [Db.Fenced]) and the
     promoted replica equals the primary's state. *)

open Evendb_storage
module Db = Evendb_core.Db
module Config = Evendb_core.Config
module Repl = Evendb_repl.Repl
module Obs = Evendb_obs.Obs

let config =
  {
    Config.default with
    persistence = Config.Sync;
    max_chunk_bytes = 8 * 1024;
    munk_rebalance_bytes = 6 * 1024;
    munk_rebalance_appended = 64;
    funk_log_limit_no_munk = 2 * 1024;
    funk_log_limit_with_munk = 8 * 1024;
    munk_cache_capacity = 4;
    repl_window = 8;
    repl_retry_backoff_ns = 0;
  }

let key_of i = Printf.sprintf "k%04d" i
let scan db = Db.scan db ~low:"" ~high:"zzzz" ()

let stream_tap_and_supersede () =
  let source = Repl.Source.create () in
  let env = Env.memory () in
  let db = Db.open_ ~config env in
  Repl.Source.attach source db;
  Db.put db "a" "1";
  Db.put db "b" "2";
  Db.put db "a" "3";
  Db.delete db "b";
  Alcotest.(check int) "dense LSNs" 4 (Repl.Source.head_lsn source);
  let records = Repl.Source.from source ~after:0 ~max:100 in
  Alcotest.(check (list int)) "stream order" [ 1; 2; 3; 4 ]
    (List.map (fun (r : Repl.record) -> r.Repl.lsn) records);
  Alcotest.(check (list (pair string (option string))))
    "keys and values" [ ("a", Some "1"); ("b", Some "2"); ("a", Some "3"); ("b", None) ]
    (List.map (fun (r : Repl.record) -> (r.Repl.key, r.Repl.value)) records);
  (* Detached: no further records. *)
  Repl.Source.detach db;
  Db.put db "c" "9";
  Alcotest.(check int) "detached tap emits nothing" 4 (Repl.Source.head_lsn source);
  Db.close db

let ship_over_faulty_link () =
  let source = Repl.Source.create () in
  let penv = Env.memory () in
  let pdb = Db.open_ ~config penv in
  Repl.Source.attach source pdb;
  let renv = Env.memory () in
  let follower = Repl.Follower.open_ ~config renv in
  let link = Repl.Link.create ~fault_seed:3 ~fault_rate_ppm:300_000 () in
  let ship = Repl.Ship.create ~config source follower link in
  for i = 0 to 149 do
    Db.put pdb (key_of (i mod 40)) (Printf.sprintf "v%04d" i);
    if i mod 7 = 0 then Db.delete pdb (key_of (i mod 13));
    if i mod 5 = 0 then Repl.Ship.pump ship
  done;
  Repl.Ship.pump ship;
  Alcotest.(check int) "no lag after pump" 0 (Repl.Ship.lag ship);
  Alcotest.(check (list (pair string string)))
    "replica converges with the primary" (scan pdb)
    (scan (Repl.Follower.db follower));
  Alcotest.(check bool) "faults were injected" true (Repl.Link.failures link > 0);
  let count name = Obs.Counter.get (Obs.counter (Db.obs (Repl.Follower.db follower)) name) in
  Alcotest.(check bool) "retries counted" true (count "repl.retries" > 0);
  Alcotest.(check bool) "records shipped counted" true (count "repl.records_shipped" > 0);
  Repl.Follower.close follower;
  Db.close pdb

let watermark_idempotent () =
  let renv = Env.memory () in
  let follower = Repl.Follower.open_ ~config renv in
  let r lsn v : Repl.record =
    { Repl.lsn; key = "k"; value = Some v; version = lsn; counter = 0 }
  in
  Repl.Follower.apply follower (r 1 "one");
  Repl.Follower.apply follower (r 2 "two");
  (* Redelivery at or below the watermark is a no-op. *)
  Repl.Follower.apply follower (r 1 "stale");
  Repl.Follower.apply follower (r 2 "stale");
  Alcotest.(check int) "watermark" 2 (Repl.Follower.applied_lsn follower);
  Alcotest.(check (option string)) "state" (Some "two") (Db.get (Repl.Follower.db follower) "k");
  Repl.Follower.close follower;
  (* The watermark survives reopen. *)
  let follower = Repl.Follower.open_ ~config renv in
  Alcotest.(check int) "watermark after reopen" 2 (Repl.Follower.applied_lsn follower);
  Repl.Follower.close follower

let corrupt_watermark_is_typed () =
  let renv = Env.memory () in
  let follower = Repl.Follower.open_ ~config renv in
  Repl.Follower.apply follower
    { Repl.lsn = 1; key = "k"; value = Some "v"; version = 1; counter = 0 };
  Repl.Follower.close follower;
  let data = Env.read_all renv Repl.watermark_file in
  let b = Bytes.of_string data in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x5A));
  Env.delete renv Repl.watermark_file;
  let f = Env.create renv Repl.watermark_file in
  Env.append f (Bytes.to_string b);
  Env.close_file f;
  match Repl.Follower.load_watermark renv with
  | _ -> Alcotest.fail "corrupt watermark loaded"
  | exception Env.Corruption _ -> ()

let promote_and_fence () =
  let source = Repl.Source.create () in
  let penv = Env.memory () in
  let pdb = Db.open_ ~config penv in
  Repl.Source.attach source pdb;
  let renv = Env.memory () in
  let follower = Repl.Follower.open_ ~config renv in
  for i = 0 to 79 do
    Db.put pdb (key_of i) (Printf.sprintf "v%04d" i)
  done;
  (* Ship only part of the stream: promotion must close the gap from
     the primary's durable state. *)
  let batch = Repl.Source.from source ~after:0 ~max:40 in
  List.iter (fun r -> Repl.Follower.apply follower r) batch;
  let expected = scan pdb in
  let promoted = Repl.promote ~primary:pdb follower in
  Alcotest.(check (list (pair string string)))
    "promoted equals the deposed primary" expected (scan promoted);
  (match Db.put pdb "x" "y" with
  | () -> Alcotest.fail "fenced primary accepted a write"
  | exception Db.Fenced -> ());
  Alcotest.(check bool) "fenced flag" true (Db.fenced pdb);
  (* Promotion removed follower state: direct writes now apply. *)
  Alcotest.(check bool) "follower marker gone" false (Env.exists renv Repl.follower_marker);
  Alcotest.(check bool) "watermark gone" false (Env.exists renv Repl.watermark_file);
  Db.put promoted "direct" "write";
  Alcotest.(check (option string)) "promoted accepts writes" (Some "write")
    (Db.get promoted "direct");
  let count name = Obs.Counter.get (Obs.counter (Db.obs promoted) name) in
  Alcotest.(check int) "failover counted" 1 (count "repl.failovers");
  (* The fence survives reopen. *)
  Db.close pdb;
  let pdb = Db.open_ ~config penv in
  (match Db.put pdb "x" "y" with
  | () -> Alcotest.fail "fence lost across reopen"
  | exception Db.Fenced -> ());
  Db.unfence pdb;
  Db.put pdb "x" "y";
  Db.close pdb;
  Db.close promoted

let suite =
  [
    ( "repl",
      [
        Alcotest.test_case "stream tap, dense LSNs, supersede" `Quick stream_tap_and_supersede;
        Alcotest.test_case "ship over a faulty link" `Quick ship_over_faulty_link;
        Alcotest.test_case "watermark idempotent, survives reopen" `Quick watermark_idempotent;
        Alcotest.test_case "corrupt watermark is typed" `Quick corrupt_watermark_is_typed;
        Alcotest.test_case "promote and fence" `Quick promote_and_fence;
      ] );
  ]
