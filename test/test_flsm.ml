(* FLSM (PebblesDB-like) baseline tests: guard-partitioned levels,
   fragment appends without child rewrites, and correctness under the
   same model checks as the other engines. *)

open Evendb_storage
open Evendb_flsm

let qtest = QCheck_alcotest.to_alcotest

let tiny_config =
  {
    Flsm.Config.default with
    memtable_bytes = 2 * 1024;
    guard_bytes = 8 * 1024;
    max_fragments_per_guard = 3;
  }

let with_db ?(config = tiny_config) f =
  let env = Env.memory () in
  let db = Flsm.open_ ~config env in
  Fun.protect ~finally:(fun () -> Flsm.close db) (fun () -> f env db)

let key i = Printf.sprintf "key%06d" i

let put_get_delete () =
  with_db (fun _ db ->
      Flsm.put db "k" "v";
      Alcotest.(check (option string)) "get" (Some "v") (Flsm.get db "k");
      Flsm.delete db "k";
      Alcotest.(check (option string)) "deleted" None (Flsm.get db "k"))

let guards_form () =
  with_db (fun _ db ->
      let n = 3000 in
      for i = 0 to n - 1 do
        Flsm.put db (key (i * 13 mod n)) (String.make 32 'v')
      done;
      Flsm.compact_now db;
      let guards = Flsm.guard_counts db in
      Alcotest.(check bool) "guards created below L0" true
        (List.exists (fun g -> g > 1) guards);
      for i = 0 to n - 1 do
        if Flsm.get db (key i) = None then Alcotest.failf "lost %s" (key i)
      done)

let overwrites_and_versions () =
  with_db (fun _ db ->
      for round = 0 to 20 do
        for i = 0 to 99 do
          Flsm.put db (key i) (Printf.sprintf "r%d" round)
        done
      done;
      Flsm.compact_now db;
      for i = 0 to 99 do
        Alcotest.(check (option string)) "newest wins across fragments" (Some "r20")
          (Flsm.get db (key i))
      done)

let deletes () =
  with_db (fun _ db ->
      for i = 0 to 299 do
        Flsm.put db (key i) "v"
      done;
      Flsm.compact_now db;
      for i = 0 to 49 do
        Flsm.delete db (key i)
      done;
      Flsm.compact_now db;
      for i = 0 to 49 do
        Alcotest.(check (option string)) "no resurrection" None (Flsm.get db (key i))
      done;
      Alcotest.(check int) "scan count" 250
        (List.length (Flsm.scan db ~low:"" ~high:"zzzz" ())))

let scan_correct () =
  with_db (fun _ db ->
      for i = 0 to 499 do
        Flsm.put db (key i) (string_of_int i)
      done;
      Flsm.compact_now db;
      let r = Flsm.scan db ~low:(key 100) ~high:(key 199) () in
      Alcotest.(check int) "range" 100 (List.length r);
      Alcotest.(check bool) "sorted" true (List.sort compare r = r))

let wal_recovery () =
  let env = Env.memory () in
  let db = Flsm.open_ ~config:tiny_config env in
  for i = 0 to 99 do
    Flsm.put db (key i) "persisted"
  done;
  Flsm.close db;
  Env.crash env;
  let db = Flsm.open_ ~config:tiny_config env in
  for i = 0 to 99 do
    Alcotest.(check (option string)) "recovered" (Some "persisted") (Flsm.get db (key i))
  done;
  Flsm.close db

let model_random =
  QCheck.Test.make ~name:"flsm matches map model" ~count:20
    QCheck.(
      list_of_size
        Gen.(int_range 1 400)
        (pair (int_range 0 80) (option (string_of_size (Gen.return 4)))))
    (fun ops ->
      let env = Env.memory () in
      let db = Flsm.open_ ~config:tiny_config env in
      let module M = Map.Make (String) in
      let model = ref M.empty in
      List.iter
        (fun (k, v) ->
          let k = key k in
          (match v with Some v -> Flsm.put db k v | None -> Flsm.delete db k);
          model := M.add k v !model)
        ops;
      Flsm.compact_now db;
      let ok = M.for_all (fun k v -> Flsm.get db k = v) !model in
      Flsm.close db;
      ok)

let lower_write_amp_than_lsm () =
  (* The FLSM design point: under heavy overwrite pressure its write
     amplification must not exceed the leveled LSM's. *)
  let run_flsm () =
    let env = Env.memory () in
    let db = Flsm.open_ ~config:tiny_config env in
    for i = 0 to 4999 do
      Flsm.put db (key (i mod 1000)) (String.make 64 'v')
    done;
    let wa = Flsm.write_amplification db in
    Flsm.close db;
    wa
  in
  let run_lsm () =
    let env = Env.memory () in
    let db =
      Evendb_lsm.Lsm.open_
        ~config:
          {
            Evendb_lsm.Lsm.Config.default with
            memtable_bytes = 2 * 1024;
            level_base_bytes = 8 * 1024;
            target_file_bytes = 4 * 1024;
          }
        env
    in
    for i = 0 to 4999 do
      Evendb_lsm.Lsm.put db (key (i mod 1000)) (String.make 64 'v')
    done;
    let wa = Evendb_lsm.Lsm.write_amplification db in
    Evendb_lsm.Lsm.close db;
    wa
  in
  let flsm_wa = run_flsm () and lsm_wa = run_lsm () in
  Alcotest.(check bool)
    (Printf.sprintf "flsm %.1f <= lsm %.1f * 1.1" flsm_wa lsm_wa)
    true (flsm_wa <= lsm_wa *. 1.1)

let suite =
  [
    ( "flsm",
      [
        Alcotest.test_case "put/get/delete" `Quick put_get_delete;
        Alcotest.test_case "guards form" `Quick guards_form;
        Alcotest.test_case "overwrites across fragments" `Quick overwrites_and_versions;
        Alcotest.test_case "deletes" `Quick deletes;
        Alcotest.test_case "scan" `Quick scan_correct;
        Alcotest.test_case "recovery" `Quick wal_recovery;
        Alcotest.test_case "write amp <= leveled LSM" `Quick lower_write_amp_than_lsm;
        qtest model_random;
      ] );
  ]
