(* Point-in-time snapshots (ISSUE 9).

   - isolation: writes and deletes after the cut are invisible to a
     snapshot reader;
   - a snapshot survives the structural churn of the live store
     (rebalances, splits, munk eviction) untouched — its members are
     private copies;
   - crash between pin and publish: a half-published snapshot (no
     COMPLETE marker) is swept at recovery, published ones survive;
   - the retention cap drops oldest-first;
   - identifiers are validated and collisions rejected. *)

open Evendb_storage
module Db = Evendb_core.Db
module Config = Evendb_core.Config
module Snapshot = Evendb_core.Snapshot

let config =
  {
    Config.default with
    persistence = Config.Sync;
    max_chunk_bytes = 8 * 1024;
    munk_rebalance_bytes = 6 * 1024;
    munk_rebalance_appended = 64;
    funk_log_limit_no_munk = 2 * 1024;
    funk_log_limit_with_munk = 8 * 1024;
    munk_cache_capacity = 4;
  }

let key_of i = Printf.sprintf "k%04d" i
let pairs = List.map (fun (k, v) -> (k, v))

let snapshot_scan env ~id =
  let r = Snapshot.open_reader env ~id in
  Snapshot.scan r ~low:"" ~high:"zzzz"

let isolation () =
  let env = Env.memory () in
  let db = Db.open_ ~config env in
  for i = 0 to 49 do
    Db.put db (key_of i) (Printf.sprintf "old%04d" i)
  done;
  let before = Db.scan db ~low:"" ~high:"zzzz" () in
  let info = Db.snapshot db ~id:"cut" in
  Alcotest.(check bool) "info id" true (info.Snapshot.id = "cut");
  (* Overwrite, delete, and extend the live store after the cut. *)
  for i = 0 to 49 do
    Db.put db (key_of i) (Printf.sprintf "new%04d" i)
  done;
  for i = 0 to 9 do
    Db.delete db (key_of i)
  done;
  Db.put db "zz_extra" "after";
  Alcotest.(check (list (pair string string)))
    "snapshot reader sees the cut, not the churn" (pairs before) (snapshot_scan env ~id:"cut");
  let r = Snapshot.open_reader env ~id:"cut" in
  Alcotest.(check (option string)) "point get at the cut" (Some "old0003")
    (Snapshot.get r "k0003");
  Alcotest.(check (option string)) "post-cut key invisible" None (Snapshot.get r "zz_extra");
  Alcotest.(check (option string))
    "live store sees the overwrite" (Some "new0020") (Db.get db "k0020");
  Alcotest.(check (option string)) "live store sees the delete" None (Db.get db "k0003");
  Db.close db

let survives_churn () =
  let env = Env.memory () in
  let db = Db.open_ ~config env in
  for i = 0 to 199 do
    Db.put db (key_of i) (Printf.sprintf "old%08d" i)
  done;
  let before = Db.scan db ~low:"" ~high:"zzzz" () in
  ignore (Db.snapshot db ~id:"pinned");
  (* Enough churn to split chunks, rebalance and retire the funks the
     snapshot copied from, then evict every munk. *)
  for round = 1 to 5 do
    for i = 0 to 399 do
      Db.put db (key_of i) (Printf.sprintf "r%02d_%04d" round i)
    done;
    Db.maintain db
  done;
  for i = 0 to 399 do
    ignore (Db.evict_munk db (key_of i))
  done;
  Alcotest.(check bool) "live store split" true (Db.chunk_count db > 1);
  Alcotest.(check (list (pair string string)))
    "snapshot unchanged through rebalance/split/eviction" (pairs before)
    (snapshot_scan env ~id:"pinned");
  Db.close db

let half_published_swept () =
  let env = Env.memory () in
  let db = Db.open_ ~config env in
  for i = 0 to 19 do
    Db.put db (key_of i) "v"
  done;
  let before_snap = Db.scan db ~low:"" ~high:"zzzz" () in
  ignore (Db.snapshot db ~id:"published");
  (* Fabricate the debris of a crash between pin and publish: members
     without a COMPLETE marker, plus an interrupted member .tmp inside
     the healthy snapshot. *)
  let write name data =
    let f = Env.create env name in
    Env.append f data;
    Env.fsync f;
    Env.close_file f
  in
  write (Env.snapshot_member ~id:"half" "funk_00000000.sst") "partial";
  write (Env.snapshot_member ~id:"half" "MANIFEST") "partial";
  write (Env.snapshot_member ~id:"published" "funk_00000000.sst.tmp") "torn";
  Db.close db;
  let db = Db.open_ ~config env in
  Alcotest.(check (list string))
    "only the published snapshot survives recovery" [ "published" ]
    (List.map (fun (i : Snapshot.info) -> i.Snapshot.id) (Db.list_snapshots db));
  Alcotest.(check bool)
    "half-published members swept" false
    (Env.exists env (Env.snapshot_member ~id:"half" "funk_00000000.sst"));
  Alcotest.(check bool)
    "member tmp swept" false
    (Env.exists env (Env.snapshot_member ~id:"published" "funk_00000000.sst.tmp"));
  Alcotest.(check (list (pair string string)))
    "published snapshot still readable" before_snap (snapshot_scan env ~id:"published");
  Db.close db

let retention_cap () =
  let env = Env.memory () in
  let db = Db.open_ ~config:{ config with Config.snapshot_max_retained = 2 } env in
  Db.put db "a" "1";
  ignore (Db.snapshot db ~id:"s1");
  Db.put db "b" "2";
  ignore (Db.snapshot db ~id:"s2");
  Db.put db "c" "3";
  ignore (Db.snapshot db ~id:"s3");
  Alcotest.(check (list string))
    "cap drops the oldest" [ "s2"; "s3" ]
    (List.map (fun (i : Snapshot.info) -> i.Snapshot.id) (Db.list_snapshots db));
  Db.close db

let id_validation () =
  let env = Env.memory () in
  let db = Db.open_ ~config env in
  Db.put db "a" "1";
  ignore (Db.snapshot db ~id:"ok-1");
  (match Db.snapshot db ~id:"ok-1" with
  | _ -> Alcotest.fail "duplicate id accepted"
  | exception Invalid_argument _ -> ());
  List.iter
    (fun id ->
      match Db.snapshot db ~id with
      | _ -> Alcotest.failf "invalid id %S accepted" id
      | exception Invalid_argument _ -> ())
    [ ""; ".."; "a/b"; "a b" ];
  Db.close db

let drop_and_metrics () =
  let env = Env.memory () in
  let db = Db.open_ ~config env in
  Db.put db "a" "1";
  ignore (Db.snapshot db ~id:"s1");
  Db.drop_snapshot db ~id:"s1";
  Alcotest.(check (list string)) "dropped" []
    (List.map (fun (i : Snapshot.info) -> i.Snapshot.id) (Db.list_snapshots db));
  let count name =
    Evendb_obs.Obs.Counter.get (Evendb_obs.Obs.counter (Db.obs db) name)
  in
  Alcotest.(check int) "snapshot.created" 1 (count "snapshot.created");
  Alcotest.(check int) "snapshot.dropped" 1 (count "snapshot.dropped");
  Db.close db

let suite =
  [
    ( "snapshot",
      [
        Alcotest.test_case "isolation at the cut" `Quick isolation;
        Alcotest.test_case "survives rebalance/split/eviction" `Quick survives_churn;
        Alcotest.test_case "half-published swept at recovery" `Quick half_published_swept;
        Alcotest.test_case "retention cap" `Quick retention_cap;
        Alcotest.test_case "id validation" `Quick id_validation;
        Alcotest.test_case "drop and metrics" `Quick drop_and_metrics;
      ] );
  ]
