(* Row cache and LFU munk-cache policy tests. *)

open Evendb_cache

(* ---- Row cache ---- *)

let basic () =
  let c = Row_cache.create ~capacity_per_table:4 () in
  Alcotest.(check (option string)) "miss" None (Row_cache.find c "k");
  Row_cache.insert c "k" "v" ~version:1 ~counter:0;
  Alcotest.(check (option string)) "hit" (Some "v") (Row_cache.find c "k");
  Alcotest.(check int) "hits" 1 (Row_cache.hits c);
  Alcotest.(check int) "misses" 1 (Row_cache.misses c)

let bulk_eviction () =
  (* 3 tables x capacity 2: inserting 7 fresh keys must evict the
     oldest batch. *)
  let c = Row_cache.create ~tables:3 ~capacity_per_table:2 () in
  for i = 0 to 6 do
    Row_cache.insert c (Printf.sprintf "k%d" i) "v" ~version:i ~counter:0
  done;
  Alcotest.(check (option string)) "oldest evicted" None (Row_cache.find c "k0");
  Alcotest.(check (option string)) "recent kept" (Some "v") (Row_cache.find c "k6")

let promotion_survives_rotation () =
  let c = Row_cache.create ~tables:3 ~capacity_per_table:2 () in
  Row_cache.insert c "hot" "v" ~version:1 ~counter:0;
  (* Keep touching "hot" while churning through other keys. *)
  for i = 0 to 19 do
    Row_cache.insert c (Printf.sprintf "churn%d" i) "x" ~version:1 ~counter:0;
    ignore (Row_cache.find c "hot")
  done;
  Alcotest.(check (option string)) "hot survived churn" (Some "v") (Row_cache.find c "hot")

let update_if_present () =
  let c = Row_cache.create ~capacity_per_table:4 () in
  (* Not present: put must NOT populate (write-heavy pollution). *)
  Row_cache.update_if_present c "k" "v1" ~version:1 ~counter:0;
  Alcotest.(check (option string)) "not populated" None (Row_cache.find c "k");
  Row_cache.insert c "k" "v1" ~version:1 ~counter:0;
  Row_cache.update_if_present c "k" "v2" ~version:2 ~counter:0;
  Alcotest.(check (option string)) "refreshed" (Some "v2") (Row_cache.find c "k")

let same_version_counter_ordering () =
  (* Concurrent same-version puts are ordered by the per-chunk counter:
     a stale (lower-counter) update must not clobber a newer one. *)
  let c = Row_cache.create ~capacity_per_table:4 () in
  Row_cache.insert c "k" "newer" ~version:5 ~counter:9;
  Row_cache.update_if_present c "k" "older" ~version:5 ~counter:3;
  Alcotest.(check (option string)) "stale update ignored" (Some "newer") (Row_cache.find c "k");
  Row_cache.update_if_present c "k" "newest" ~version:5 ~counter:12;
  Alcotest.(check (option string)) "newer update lands" (Some "newest") (Row_cache.find c "k");
  (* Same for the read path's insert. *)
  Row_cache.insert c "k" "ancient" ~version:1 ~counter:0;
  Alcotest.(check (option string)) "stale insert ignored" (Some "newest") (Row_cache.find c "k")

let invalidate () =
  let c = Row_cache.create ~capacity_per_table:4 () in
  Row_cache.insert c "k" "v" ~version:1 ~counter:0;
  Row_cache.invalidate c "k";
  Alcotest.(check (option string)) "gone" None (Row_cache.find c "k")

let invalidate_range () =
  let c = Row_cache.create ~capacity_per_table:8 () in
  List.iter
    (fun k -> Row_cache.insert c k "v" ~version:1 ~counter:0)
    [ "a"; "m1"; "m2"; "z" ];
  Row_cache.invalidate_range c ~low:"m" ~high:(Some "n");
  Alcotest.(check (option string)) "below kept" (Some "v") (Row_cache.find c "a");
  Alcotest.(check (option string)) "in range gone" None (Row_cache.find c "m1");
  Alcotest.(check (option string)) "in range gone 2" None (Row_cache.find c "m2");
  Alcotest.(check (option string)) "above kept" (Some "v") (Row_cache.find c "z");
  Row_cache.invalidate_range c ~low:"y" ~high:None;
  Alcotest.(check (option string)) "unbounded high" None (Row_cache.find c "z")

let length_dedups_shared () =
  let c = Row_cache.create ~tables:3 ~capacity_per_table:4 () in
  Row_cache.insert c "k" "v" ~version:1 ~counter:0;
  (* Force rotation so "k" gets shared into the head table via find. *)
  for i = 0 to 3 do
    Row_cache.insert c (Printf.sprintf "f%d" i) "x" ~version:1 ~counter:0
  done;
  ignore (Row_cache.find c "k");
  Alcotest.(check bool) "length counts keys once" true (Row_cache.length c <= 6)

let clear () =
  let c = Row_cache.create ~capacity_per_table:4 () in
  Row_cache.insert c "k" "v" ~version:1 ~counter:0;
  Row_cache.clear c;
  Alcotest.(check int) "empty" 0 (Row_cache.length c)

(* ---- LFU ---- *)

let lfu_admission () =
  let l = Lfu.create ~capacity:2 () in
  (match Lfu.on_access l 1 with
  | Lfu.Admit None -> ()
  | _ -> Alcotest.fail "expected Admit None");
  (match Lfu.on_access l 2 with
  | Lfu.Admit None -> ()
  | _ -> Alcotest.fail "expected Admit None for second");
  Alcotest.(check bool) "1 cached" true (Lfu.is_cached l 1);
  (* A one-hit wonder cannot displace an equally warm resident. *)
  (match Lfu.on_access l 3 with
  | Lfu.Skip -> ()
  | _ -> Alcotest.fail "expected Skip");
  (* Make 3 hotter than the coldest resident. *)
  (match Lfu.on_access l 3 with
  | Lfu.Admit (Some victim) ->
    Alcotest.(check bool) "victim was resident" true (victim = 1 || victim = 2)
  | d ->
    Alcotest.failf "expected Admit Some, got %s"
      (match d with
      | Lfu.Skip -> "Skip"
      | Lfu.Already_cached -> "Already_cached"
      | Lfu.Evict_other _ -> "Evict_other"
      | Lfu.Admit _ -> "Admit"))

let lfu_already_cached () =
  let l = Lfu.create ~capacity:2 () in
  ignore (Lfu.on_access l 1);
  (match Lfu.on_access l 1 with
  | Lfu.Already_cached -> ()
  | _ -> Alcotest.fail "expected Already_cached")

let lfu_hot_resists_eviction () =
  let l = Lfu.create ~capacity:1 () in
  for _ = 1 to 10 do
    ignore (Lfu.on_access l 1)
  done;
  (* A few accesses of 2 cannot displace well-established 1. *)
  (match Lfu.on_access l 2 with
  | Lfu.Skip -> ()
  | _ -> Alcotest.fail "cold challenger should be skipped");
  Alcotest.(check bool) "hot stays" true (Lfu.is_cached l 1)

let lfu_decay () =
  let l = Lfu.create ~capacity:1 ~decay_every:10 () in
  for _ = 1 to 8 do
    ignore (Lfu.on_access l 1)
  done;
  Alcotest.(check int) "freq before decay" 8 (Lfu.frequency l 1);
  (* Cross the decay threshold. *)
  ignore (Lfu.on_access l 2);
  ignore (Lfu.on_access l 2);
  Alcotest.(check bool) "frequency halved" true (Lfu.frequency l 1 <= 4)

let lfu_transfer () =
  let l = Lfu.create ~capacity:4 () in
  for _ = 1 to 5 do
    ignore (Lfu.on_access l 10)
  done;
  Lfu.transfer l ~old_id:10 ~new_ids:[ 20; 21 ];
  Alcotest.(check bool) "old forgotten" false (Lfu.is_cached l 10);
  Alcotest.(check bool) "child cached" true (Lfu.is_cached l 20 && Lfu.is_cached l 21);
  Alcotest.(check int) "frequency inherited" 5 (Lfu.frequency l 20)

let lfu_over_capacity_drains () =
  let l = Lfu.create ~capacity:2 () in
  ignore (Lfu.on_access l 1);
  ignore (Lfu.on_access l 2);
  ignore (Lfu.on_access l 2);
  (* Splitting 1 into two children overshoots capacity. *)
  Lfu.transfer l ~old_id:1 ~new_ids:[ 11; 12 ];
  Alcotest.(check int) "transiently over" 3 (List.length (Lfu.cached l));
  (match Lfu.on_access l 2 with
  | Lfu.Evict_other v -> Alcotest.(check bool) "evicts a child" true (v = 11 || v = 12)
  | _ -> Alcotest.fail "expected Evict_other to drain overflow");
  Alcotest.(check int) "back at capacity" 2 (List.length (Lfu.cached l))

let lfu_force_insert_and_drop () =
  let l = Lfu.create ~capacity:1 () in
  Alcotest.(check (option int)) "first force" None (Lfu.force_insert l 1);
  (match Lfu.force_insert l 2 with
  | Some 1 -> ()
  | _ -> Alcotest.fail "expected eviction of 1");
  Lfu.drop_cached l 2;
  Alcotest.(check bool) "dropped" false (Lfu.is_cached l 2)

let suite =
  [
    ( "row_cache",
      [
        Alcotest.test_case "basic hit/miss" `Quick basic;
        Alcotest.test_case "bulk eviction via table rotation" `Quick bulk_eviction;
        Alcotest.test_case "promotion survives rotation" `Quick promotion_survives_rotation;
        Alcotest.test_case "update only if present" `Quick update_if_present;
        Alcotest.test_case "same-version counter ordering" `Quick same_version_counter_ordering;
        Alcotest.test_case "invalidate" `Quick invalidate;
        Alcotest.test_case "invalidate range" `Quick invalidate_range;
        Alcotest.test_case "length dedups shared entries" `Quick length_dedups_shared;
        Alcotest.test_case "clear" `Quick clear;
      ] );
    ( "lfu",
      [
        Alcotest.test_case "admission and eviction" `Quick lfu_admission;
        Alcotest.test_case "already cached" `Quick lfu_already_cached;
        Alcotest.test_case "hot resists eviction" `Quick lfu_hot_resists_eviction;
        Alcotest.test_case "exponential decay" `Quick lfu_decay;
        Alcotest.test_case "split transfer" `Quick lfu_transfer;
        Alcotest.test_case "over-capacity drains" `Quick lfu_over_capacity_drains;
        Alcotest.test_case "force insert / drop" `Quick lfu_force_insert_and_drop;
      ] );
  ]
