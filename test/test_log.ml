(* Funk-log / WAL framing tests: roundtrips, torn-tail tolerance,
   corruption detection, range-bounded folds. *)

open Evendb_util
open Evendb_storage
open Evendb_log

let qtest = QCheck_alcotest.to_alcotest

let entry ?(version = 1) ?(counter = 0) ?value key : Kv_iter.entry =
  { key; value; version; counter }

let roundtrip () =
  let env = Env.memory () in
  let w = Log_file.Writer.create env "t.log" in
  let written =
    [
      entry ~value:"v1" "alpha";
      entry ~version:7 ~counter:3 ~value:"" "beta" (* empty value *);
      entry ~version:9 "gamma" (* tombstone *);
    ]
  in
  let offsets = List.map (Log_file.Writer.append w) written in
  Alcotest.(check int) "first offset" 0 (List.hd offsets);
  let read = Log_file.Reader.entries env "t.log" in
  Alcotest.(check int) "record count" 3 (List.length read);
  List.iter2
    (fun (off_expected, (e : Kv_iter.entry)) (off, (e' : Kv_iter.entry)) ->
      Alcotest.(check int) "offset" off_expected off;
      Alcotest.(check string) "key" e.key e'.key;
      Alcotest.(check (option string)) "value" e.value e'.value;
      Alcotest.(check int) "version" e.version e'.version;
      Alcotest.(check int) "counter" e.counter e'.counter)
    (List.combine offsets written)
    read

let random_roundtrip =
  QCheck.Test.make ~name:"log roundtrip (random entries)" ~count:100
    QCheck.(
      list_of_size
        Gen.(int_range 1 50)
        (triple (string_of_size Gen.(int_range 0 32)) (option string) small_nat))
    (fun records ->
      let env = Env.memory () in
      let w = Log_file.Writer.create env "r.log" in
      let written =
        List.map (fun (k, v, ver) -> entry ~version:ver ?value:v k) records
      in
      List.iter (fun e -> ignore (Log_file.Writer.append w e)) written;
      let read = List.map snd (Log_file.Reader.entries env "r.log") in
      read = written)

let torn_tail () =
  let env = Env.memory () in
  let w = Log_file.Writer.create env "torn.log" in
  ignore (Log_file.Writer.append w (entry ~value:"ok" "a"));
  Log_file.Writer.fsync w;
  ignore (Log_file.Writer.append w (entry ~value:"lost" "b"));
  (* Crash: the unsynced second record tears away. *)
  Env.crash env;
  let read = Log_file.Reader.entries env "torn.log" in
  Alcotest.(check int) "only synced record" 1 (List.length read);
  Alcotest.(check string) "survivor" "a" (snd (List.hd read)).Kv_iter.key;
  (* Appending after recovery resumes from the valid prefix. *)
  let w2 = Log_file.Writer.open_append env "torn.log" in
  ignore (Log_file.Writer.append w2 (entry ~value:"new" "c"));
  let read = Log_file.Reader.entries env "torn.log" in
  Alcotest.(check (list string)) "records after resume" [ "a"; "c" ]
    (List.map (fun (_, (e : Kv_iter.entry)) -> e.key) read)

let corrupt_middle_skipped () =
  let env = Env.memory () in
  let w = Log_file.Writer.create env "c.log" in
  ignore (Log_file.Writer.append w (entry ~value:"1" "a"));
  let off2 = Log_file.Writer.append w (entry ~value:"2" "b") in
  ignore (Log_file.Writer.append w (entry ~value:"3" "c"));
  (* Flip a byte inside record 2 by rewriting the file. *)
  let data = Bytes.of_string (Env.read_all env "c.log") in
  Bytes.set data (off2 + 6) '\xff';
  let f = Env.create env "c.log" in
  Env.append f (Bytes.to_string data);
  Env.close_file f;
  (* The reader resynchronizes past the corrupt record: only the
     damaged record is lost, not everything after it. *)
  let read = List.map (fun (_, (e : Kv_iter.entry)) -> e.key) (Log_file.Reader.entries env "c.log") in
  Alcotest.(check (list string)) "corrupt record skipped" [ "a"; "c" ] read;
  Alcotest.(check int) "valid prefix" off2 (Log_file.Reader.valid_prefix_length env "c.log")

let garbage_suffix_recovered () =
  let env = Env.memory () in
  let w = Log_file.Writer.create env "g.log" in
  ignore (Log_file.Writer.append w (entry ~value:"1" "a"));
  ignore (Log_file.Writer.append w (entry ~value:"2" "b"));
  Log_file.Writer.close w;
  (* A torn append leaves a garbage suffix (a partial record). *)
  let f = Env.open_append env "g.log" in
  Env.append f "\x0d\xf0\xad\x8b torn partial record";
  Env.close_file f;
  let read = List.map (fun (_, (e : Kv_iter.entry)) -> e.key) (Log_file.Reader.entries env "g.log") in
  Alcotest.(check (list string)) "garbage tail ignored" [ "a"; "b" ] read;
  (* Appends resume after the garbage; replay resyncs past it. *)
  let w2 = Log_file.Writer.open_append env "g.log" in
  ignore (Log_file.Writer.append w2 (entry ~value:"3" "c"));
  let read = List.map (fun (_, (e : Kv_iter.entry)) -> e.key) (Log_file.Reader.entries env "g.log") in
  Alcotest.(check (list string)) "resync past garbage" [ "a"; "b"; "c" ] read

let range_fold () =
  let env = Env.memory () in
  let w = Log_file.Writer.create env "rg.log" in
  let offsets =
    List.map
      (fun i -> Log_file.Writer.append w (entry ~version:i ~value:(string_of_int i) "k"))
      [ 0; 1; 2; 3; 4 ]
  in
  let from2 = List.nth offsets 2 in
  let versions =
    List.rev
      (Log_file.Reader.fold ~lo:from2 env "rg.log" ~init:[] ~f:(fun acc _ e ->
           e.Kv_iter.version :: acc))
  in
  Alcotest.(check (list int)) "fold from offset" [ 2; 3; 4 ] versions;
  let hi = List.nth offsets 4 in
  let versions =
    List.rev
      (Log_file.Reader.fold ~lo:from2 ~hi env "rg.log" ~init:[] ~f:(fun acc _ e ->
           e.Kv_iter.version :: acc))
  in
  Alcotest.(check (list int)) "bounded fold" [ 2; 3 ] versions

let missing_file_is_empty () =
  let env = Env.memory () in
  Alcotest.(check int) "no records" 0 (List.length (Log_file.Reader.entries env "ghost.log"));
  Alcotest.(check int) "no prefix" 0 (Log_file.Reader.valid_prefix_length env "ghost.log")

let size_tracks_appends () =
  let env = Env.memory () in
  let w = Log_file.Writer.create env "sz.log" in
  Alcotest.(check int) "empty" 0 (Log_file.Writer.size w);
  ignore (Log_file.Writer.append w (entry ~value:"xyz" "k"));
  Alcotest.(check int) "size matches file" (Env.size env "sz.log") (Log_file.Writer.size w)

let concurrent_writers () =
  let env = Env.memory () in
  let w = Log_file.Writer.create env "mt.log" in
  let threads =
    List.init 4 (fun t ->
        Thread.create
          (fun () ->
            for i = 1 to 250 do
              ignore
                (Log_file.Writer.append w (entry ~version:((t * 1000) + i) ~value:"v" "k"))
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "all records intact" 1000
    (List.length (Log_file.Reader.entries env "mt.log"))

let suite =
  [
    ( "log_file",
      [
        Alcotest.test_case "roundtrip" `Quick roundtrip;
        Alcotest.test_case "torn tail tolerated" `Quick torn_tail;
        Alcotest.test_case "corruption skipped by resync" `Quick corrupt_middle_skipped;
        Alcotest.test_case "garbage suffix recovered" `Quick garbage_suffix_recovered;
        Alcotest.test_case "range folds" `Quick range_fold;
        Alcotest.test_case "missing file = empty" `Quick missing_file_is_empty;
        Alcotest.test_case "size tracking" `Quick size_tracks_appends;
        Alcotest.test_case "concurrent writers" `Quick concurrent_writers;
        qtest random_roundtrip;
      ] );
  ]

(* ---- Additional edge cases ---- *)

let empty_key_and_value () =
  let env = Env.memory () in
  let w = Log_file.Writer.create env "e.log" in
  ignore (Log_file.Writer.append w (entry ~value:"" ""));
  ignore (Log_file.Writer.append w (entry ""));
  let read = List.map snd (Log_file.Reader.entries env "e.log") in
  Alcotest.(check int) "both records" 2 (List.length read);
  Alcotest.(check (option string)) "empty value" (Some "") (List.hd read).Kv_iter.value;
  Alcotest.(check (option string)) "tombstone" None (List.nth read 1).Kv_iter.value

let large_record () =
  let env = Env.memory () in
  let w = Log_file.Writer.create env "big.log" in
  let v = String.make 1_000_000 'x' in
  ignore (Log_file.Writer.append w (entry ~value:v "big"));
  match Log_file.Reader.entries env "big.log" with
  | [ (_, e) ] -> Alcotest.(check int) "megabyte value" 1_000_000
      (String.length (Option.get e.Kv_iter.value))
  | l -> Alcotest.failf "expected 1 record, got %d" (List.length l)

let fold_beyond_end () =
  let env = Env.memory () in
  let w = Log_file.Writer.create env "fb.log" in
  ignore (Log_file.Writer.append w (entry ~value:"v" "k"));
  let n = Log_file.Reader.fold ~lo:10_000 env "fb.log" ~init:0 ~f:(fun acc _ _ -> acc + 1) in
  Alcotest.(check int) "empty when lo beyond end" 0 n

let version_counter_extremes () =
  let env = Env.memory () in
  let w = Log_file.Writer.create env "x.log" in
  let big = entry ~version:max_int ~counter:max_int ~value:"v" "k" in
  ignore (Log_file.Writer.append w big);
  match Log_file.Reader.entries env "x.log" with
  | [ (_, e) ] ->
    Alcotest.(check int) "max version" max_int e.Kv_iter.version;
    Alcotest.(check int) "max counter" max_int e.Kv_iter.counter
  | _ -> Alcotest.fail "record lost"

let suite =
  suite
  @ [
      ( "log_edges",
        [
          Alcotest.test_case "empty key/value" `Quick empty_key_and_value;
          Alcotest.test_case "megabyte record" `Quick large_record;
          Alcotest.test_case "fold beyond end" `Quick fold_beyond_end;
          Alcotest.test_case "extreme version/counter" `Quick version_counter_extremes;
        ] );
    ]
