(* Sorted views (PR 8): the persistent merge order of a funk must be
   byte-equivalent to the live merge path, across fences, uncovered
   log suffixes, staleness, and corruption.

   - unit level: [Sorted_view.cursor] over sst+log files equals the
     reference merge (stably sorted log wins ties) on arbitrary ranges;
   - validation: [load] rejects corrupt, truncated-log and
     wrong-sstable views, and a mid-walk mismatch raises [Stale];
   - store level: a Db with views enabled returns exactly the scans of
     a Db with views disabled over the same randomized workload, and
     falls back transparently when the sidecar is corrupted;
   - scrubber: a corrupt view is a finding, repair regenerates it. *)

open Evendb_util
open Evendb_storage
open Evendb_sstable
open Evendb_log
open Evendb_core
module K = Kv_iter

let mk ?(c = 0) key version value = { K.key; value; version; counter = c }

let pp_entry fmt (e : K.entry) =
  Format.fprintf fmt "{%s v%d c%d %s}" e.key e.version e.counter
    (match e.value with Some v -> v | None -> "<tomb>")

let entry_t = Alcotest.testable pp_entry ( = )

let build_sst env name entries =
  let sorted = List.sort K.compare_entries entries in
  let b = Sstable.Builder.create env ~name ~min_key:"" () in
  List.iter (Sstable.Builder.add b) sorted;
  Sstable.Builder.finish b;
  (Sstable.Reader.open_ env name, sorted)

let write_log env name entries =
  let w = Log_file.Writer.create env name in
  List.iter (fun e -> ignore (Log_file.Writer.append w e)) entries;
  Log_file.Writer.fsync w;
  Log_file.Writer.close w

let append_log env name entries =
  let w = Log_file.Writer.open_append env name in
  List.iter (fun e -> ignore (Log_file.Writer.append w e)) entries;
  Log_file.Writer.fsync w;
  Log_file.Writer.close w

let rewrite env name data =
  let f = Env.create env name in
  Env.append f data;
  Env.fsync f;
  Env.close_file f

(* What the cursor must produce: log entries stably sorted (ties keep
   log order, and beat sstable entries), merged with the sorted
   sstable, restricted to the inclusive range. *)
let reference ~sst_sorted ~log_entries ~low ~high =
  let log_sorted = List.stable_sort K.compare_entries log_entries in
  K.to_list (K.merge [ K.of_list log_sorted; K.of_list sst_sorted ])
  |> List.filter (fun (e : K.entry) -> String.compare low e.key <= 0 && String.compare e.key high <= 0)

let check_range label view env sst ~sst_sorted ~log_entries ~low ~high =
  let got = K.to_list (Sorted_view.cursor view env ~sst ~log_name:"t.log" ~low ~high) in
  let want = reference ~sst_sorted ~log_entries ~low ~high in
  Alcotest.(check (list entry_t)) (Printf.sprintf "%s [%s, %s]" label low high) want got

(* --- unit: small deterministic merge, every interesting range ------ *)

let small_equivalence () =
  let env = Env.memory () in
  (* Multiple versions per key, split across sstable and log; the log
     holds both newer and older versions than the table, plus a
     tombstone and keys the table lacks entirely. *)
  let sst_in = [ mk "b" 10 (Some "b10"); mk "b" 4 (Some "b4"); mk "d" 6 (Some "d6"); mk "f" 2 (Some "f2") ] in
  let log_in =
    [ mk "c" 11 (Some "c11"); mk "b" 12 None; mk "a" 3 (Some "a3"); mk "d" 5 (Some "d5"); mk "g" 13 (Some "g13") ]
  in
  let sst, sst_sorted = build_sst env "t.sst" sst_in in
  write_log env "t.log" log_in;
  Sorted_view.build env ~sst ~log_name:"t.log" ~view_name:"t.view";
  let view =
    match Sorted_view.load env ~sst ~log_name:"t.log" ~view_name:"t.view" with
    | Some v -> v
    | None -> Alcotest.fail "fresh view failed to load"
  in
  Alcotest.(check int) "one token per entry" (List.length sst_in + List.length log_in)
    (Sorted_view.token_count view);
  Alcotest.(check int) "log fully covered" (Env.size env "t.log")
    (Sorted_view.covered_log_bytes view);
  let ranges =
    [ ("", "\xff"); ("a", "g"); ("b", "b"); ("b", "d"); ("aa", "cz"); ("e", "z"); ("x", "z"); ("d", "a") ]
  in
  List.iter
    (fun (low, high) -> check_range "small" view env sst ~sst_sorted ~log_entries:log_in ~low ~high)
    ranges

(* --- unit: enough tokens for several fences; random range seeks ---- *)

let fence_seek_equivalence () =
  let env = Env.memory () in
  let st = Random.State.make [| 0x5ee1; 8 |] in
  (* Globally unique versions so no exact-duplicate triples make the
     tie order observable. *)
  let next_v = ref 0 in
  let gen n =
    List.init n (fun _ ->
        incr next_v;
        let k = Printf.sprintf "k%04d" (Random.State.int st 250) in
        let value = if Random.State.int st 10 = 0 then None else Some (Printf.sprintf "v%d" !next_v) in
        mk k !next_v value)
  in
  let sst, sst_sorted = build_sst env "t.sst" (gen 600) in
  let log_in = gen 300 in
  write_log env "t.log" log_in;
  Sorted_view.build env ~sst ~log_name:"t.log" ~view_name:"t.view";
  let view =
    match Sorted_view.load env ~sst ~log_name:"t.log" ~view_name:"t.view" with
    | Some v -> v
    | None -> Alcotest.fail "fresh view failed to load"
  in
  Alcotest.(check int) "900 tokens" 900 (Sorted_view.token_count view);
  for _ = 1 to 60 do
    let a = Printf.sprintf "k%04d" (Random.State.int st 260) in
    let b = Printf.sprintf "k%04d" (Random.State.int st 260) in
    let low, high = if a <= b then (a, b) else (b, a) in
    check_range "fence" view env sst ~sst_sorted ~log_entries:log_in ~low ~high
  done;
  check_range "fence" view env sst ~sst_sorted ~log_entries:log_in ~low:"" ~high:"\xff"

(* --- unit: records appended after the build come from the suffix --- *)

let uncovered_suffix () =
  let env = Env.memory () in
  let st = Random.State.make [| 0x5ee1; 9 |] in
  let next_v = ref 0 in
  let gen n =
    List.init n (fun _ ->
        incr next_v;
        mk (Printf.sprintf "k%04d" (Random.State.int st 100)) !next_v (Some (Printf.sprintf "v%d" !next_v)))
  in
  let sst, sst_sorted = build_sst env "t.sst" (gen 150) in
  let covered = gen 80 in
  write_log env "t.log" covered;
  Sorted_view.build env ~sst ~log_name:"t.log" ~view_name:"t.view";
  let suffix = gen 60 in
  append_log env "t.log" suffix;
  (* Still loads: a longer log is staleness the cursor absorbs, not a
     validation failure. *)
  let view =
    match Sorted_view.load env ~sst ~log_name:"t.log" ~view_name:"t.view" with
    | Some v -> v
    | None -> Alcotest.fail "view must load with an uncovered suffix"
  in
  Alcotest.(check bool) "suffix is uncovered" true
    (Sorted_view.covered_log_bytes view < Env.size env "t.log");
  let log_entries = covered @ suffix in
  for _ = 1 to 20 do
    let a = Printf.sprintf "k%04d" (Random.State.int st 105) in
    let b = Printf.sprintf "k%04d" (Random.State.int st 105) in
    let low, high = if a <= b then (a, b) else (b, a) in
    check_range "suffix" view env sst ~sst_sorted ~log_entries ~low ~high
  done;
  check_range "suffix" view env sst ~sst_sorted ~log_entries ~low:"" ~high:"\xff"

(* --- validation: load rejects what it must ------------------------- *)

let load_validation () =
  let env = Env.memory () in
  let entries = List.init 50 (fun i -> mk (Printf.sprintf "k%03d" i) (i + 1) (Some "v")) in
  let sst, _ = build_sst env "t.sst" entries in
  write_log env "t.log" (List.init 20 (fun i -> mk (Printf.sprintf "q%03d" i) (100 + i) (Some "w")));
  Sorted_view.build env ~sst ~log_name:"t.log" ~view_name:"t.view";
  let load () = Sorted_view.load env ~sst ~log_name:"t.log" ~view_name:"t.view" in
  Alcotest.(check bool) "pristine view loads" true (load () <> None);
  let pristine = Env.read_all env "t.view" in
  Alcotest.(check bool) "pristine view well-formed" true (Sorted_view.well_formed pristine);
  (* Single flipped byte: structurally corrupt, load refuses. *)
  let b = Bytes.of_string pristine in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
  rewrite env "t.view" (Bytes.to_string b);
  Alcotest.(check bool) "flipped byte: not well-formed" false
    (Sorted_view.well_formed (Env.read_all env "t.view"));
  Alcotest.(check bool) "flipped byte: load refuses" true (load () = None);
  rewrite env "t.view" pristine;
  (* Log shorter than the covered prefix (post-crash shape): refuse. *)
  let log_bytes = Env.read_all env "t.log" in
  rewrite env "t.log" (String.sub log_bytes 0 (String.length log_bytes / 2));
  Alcotest.(check bool) "truncated log: load refuses" true (load () = None);
  rewrite env "t.log" log_bytes;
  Alcotest.(check bool) "restored log: loads again" true (load () <> None);
  (* A different sstable under the same view: refuse. *)
  let other, _ = build_sst env "u.sst" (List.init 7 (fun i -> mk (Printf.sprintf "z%d" i) (i + 1) (Some "x"))) in
  Alcotest.(check bool) "foreign sstable: load refuses" true
    (Sorted_view.load env ~sst:other ~log_name:"t.log" ~view_name:"t.view" = None)

(* --- staleness mid-walk: covered bytes changed under a loaded view - *)

let stale_mid_walk () =
  let env = Env.memory () in
  let sst, _ = build_sst env "t.sst" [] in
  write_log env "t.log" [ mk "a" 1 (Some "1"); mk "b" 2 (Some "2") ];
  Sorted_view.build env ~sst ~log_name:"t.log" ~view_name:"t.view";
  let view =
    match Sorted_view.load env ~sst ~log_name:"t.log" ~view_name:"t.view" with
    | Some v -> v
    | None -> Alcotest.fail "view failed to load"
  in
  (* The covered prefix is append-only in the real system; simulate a
     violation (bit rot under a cached view) and require Stale, never
     garbage entries. *)
  rewrite env "t.log" (String.make 256 '\xff');
  Alcotest.check_raises "tampered covered bytes raise Stale" Sorted_view.Stale (fun () ->
      ignore (K.to_list (Sorted_view.cursor view env ~sst ~log_name:"t.log" ~low:"" ~high:"\xff")))

(* --- store level: views on vs. views off, randomized workload ------ *)

let small_db_config ~views =
  {
    Config.default with
    max_chunk_bytes = 8 * 1024;
    munk_rebalance_bytes = 6 * 1024;
    munk_rebalance_appended = 64;
    funk_log_limit_no_munk = 2 * 1024;
    funk_log_limit_with_munk = 8 * 1024;
    munk_cache_capacity = 2;
    sorted_view_enabled = views;
    block_cache_bytes = (if views then 1024 * 1024 else 0);
  }

let key_of st = Printf.sprintf "k%04d" (Random.State.int st 400)

let db_differential () =
  let a = Db.open_ ~config:(small_db_config ~views:true) (Env.memory ()) in
  let b = Db.open_ ~config:(small_db_config ~views:false) (Env.memory ()) in
  let st = Random.State.make [| 0x5ee1; 10 |] in
  for i = 0 to 3_999 do
    let k = key_of st in
    if Random.State.int st 12 = 0 then begin
      Db.delete a k;
      Db.delete b k
    end
    else begin
      let v = Printf.sprintf "v%06d" i in
      Db.put a k v;
      Db.put b k v
    end;
    if i mod 400 = 399 then begin
      Db.maintain a;
      Db.maintain b;
      let k = key_of st in
      ignore (Db.evict_munk a k);
      ignore (Db.evict_munk b k)
    end
  done;
  (* Force funk-backed (munk-less) chunks so scans take the cold path,
     where the view engages on [a]. *)
  for i = 0 to 15 do
    let k = Printf.sprintf "k%04d" (i * 25) in
    ignore (Db.evict_munk a k);
    ignore (Db.evict_munk b k)
  done;
  for _ = 1 to 60 do
    let x = key_of st and y = key_of st in
    let low, high = if x <= y then (x, y) else (y, x) in
    let ra = Db.scan a ~low ~high () in
    let rb = Db.scan b ~low ~high () in
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "scan [%s, %s]" low high)
      rb ra
  done;
  Alcotest.(check (list (pair string string))) "full scan" (Db.scan b ~low:"" ~high:"\xff" ())
    (Db.scan a ~low:"" ~high:"\xff" ());
  let c name = Evendb_obs.Obs.Counter.get (Evendb_obs.Obs.counter (Db.obs a) name) in
  Alcotest.(check bool) "views were built" true (c "sorted_view.builds" > 0);
  Alcotest.(check bool) "scans were served by views" true (c "sorted_view.scans" > 0);
  Db.close a;
  Db.close b

(* --- store level: corrupt sidecar, scans fall back transparently --- *)

let runtime_fallback () =
  let env = Env.memory () in
  let db = Db.open_ ~config:(small_db_config ~views:true) env in
  let model = Hashtbl.create 256 in
  for i = 0 to 599 do
    let k = Printf.sprintf "k%04d" (i mod 300) in
    let v = Printf.sprintf "v%06d" i in
    Db.put db k v;
    Hashtbl.replace model k v
  done;
  for i = 0 to 11 do
    ignore (Db.evict_munk db (Printf.sprintf "k%04d" (i * 25)))
  done;
  let views = List.filter (fun n -> Filename.check_suffix n ".view") (Env.list_files env) in
  Alcotest.(check bool) "store has view sidecars" true (views <> []);
  (* Trash every sidecar under the live handle: loads fail, scans must
     silently use the merge path and lose nothing. *)
  List.iter (fun n -> rewrite env n (String.make 64 '\x00')) views;
  let expected =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
  in
  Alcotest.(check (list (pair string string)))
    "scan correct with every view corrupt" expected
    (Db.scan db ~low:"" ~high:"\xff" ());
  Db.close db

(* --- scrubber: corrupt views are findings; repair regenerates ------ *)

let scrub_detects_and_repairs () =
  let env = Env.memory () in
  let db = Db.open_ ~config:(small_db_config ~views:true) env in
  for i = 0 to 599 do
    Db.put db (Printf.sprintf "k%04d" (i mod 300)) (Printf.sprintf "v%06d" i)
  done;
  for i = 0 to 11 do
    ignore (Db.evict_munk db (Printf.sprintf "k%04d" (i * 25)))
  done;
  let expected = Db.scan db ~low:"" ~high:"\xff" () in
  Db.close db;
  let module Scrub = Evendb_check.Scrub in
  Alcotest.(check bool) "clean before" true (Scrub.is_clean (Scrub.scrub env));
  let victim =
    match List.filter (fun n -> Filename.check_suffix n ".view") (Env.list_files env) with
    | v :: _ -> v
    | [] -> Alcotest.fail "store has no view sidecars"
  in
  rewrite env victim (String.make 128 '\x7f');
  let report = Scrub.scrub env in
  Alcotest.(check bool) "corrupt view is a finding" true
    (List.exists (fun f -> f.Scrub.f_file = victim) (Scrub.errors report));
  let repaired = Scrub.repair env in
  Alcotest.(check bool) "repair acted on the view" true
    (List.mem_assoc victim repaired.Scrub.actions);
  Alcotest.(check bool) "clean after repair" true (Scrub.is_clean (Scrub.scrub env));
  Alcotest.(check bool) "regenerated view is well-formed" true
    (Sorted_view.well_formed (Env.read_all env victim));
  (* And the store still reads exactly what it held. *)
  let db = Db.open_ ~config:(small_db_config ~views:true) env in
  Alcotest.(check (list (pair string string))) "data intact after repair" expected
    (Db.scan db ~low:"" ~high:"\xff" ());
  Db.close db

let suite =
  [
    ( "sorted_view",
      [
        Alcotest.test_case "merge equivalence (small, all ranges)" `Quick small_equivalence;
        Alcotest.test_case "merge equivalence across fences" `Quick fence_seek_equivalence;
        Alcotest.test_case "uncovered log suffix is merged in" `Quick uncovered_suffix;
        Alcotest.test_case "load rejects corrupt/truncated/foreign" `Quick load_validation;
        Alcotest.test_case "mid-walk tampering raises Stale" `Quick stale_mid_walk;
        Alcotest.test_case "db scans: views on == views off" `Quick db_differential;
        Alcotest.test_case "corrupt sidecars: transparent fallback" `Quick runtime_fallback;
        Alcotest.test_case "scrub finds, repair regenerates" `Quick scrub_detects_and_repairs;
      ] );
  ]
