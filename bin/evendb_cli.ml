(* evendb: a small command-line front end to the store.

     evendb put  <dir> <key> <value>
     evendb get  <dir> <key>
     evendb del  <dir> <key>
     evendb scan <dir> <low> <high> [--limit N]
     evendb load <dir> [--items N] [--dist zipf|composite|uniform]
     evendb stat <dir> [--json | --prometheus] [--reset-check] [--url URL]
     evendb serve-telemetry <dir> [--port P] [--host H] [--duration-s S] [--drive OPS_PER_S]
     evendb top  <dir> [--url URL] [--interval-s S] [--iterations N] [--no-clear]
     evendb heat <dir> [--items N] [--ops N] [--dist zipf|composite] [--top K] [--json]
     evendb trace <dir> --out FILE [--ops N]
     evendb slow  <dir> [--out FILE] [--json] [--ops N] [--threshold-us US]
     evendb checkpoint <dir>
     evendb fsck <dir> [--repair]
     evendb snapshot <dir> [ID] [--drop]
     evendb backup <dir> <dest> [--snapshot ID] [--base ID]
     evendb restore <src> <dst>
     evendb fence <dir>
     evendb promote <dir> [--from PRIMARY_DIR]

   Every invocation except fsck and restore opens (recovering if
   needed) and cleanly closes the store in <dir>; fsck and restore work
   on raw directories without opening a store.

   A store carrying the FOLLOWER marker is a replication standby:
   direct writes (put/del/load) are refused — promote it first. A store
   carrying the FENCED marker is a deposed primary: every write raises
   and the CLI exits 5. *)

open Cmdliner
module Db = Evendb_core.Db
module Chunk_stats = Evendb_core.Chunk_stats
module Snapshot = Evendb_core.Snapshot
module Backup = Evendb_core.Backup
module Env = Evendb_storage.Env
module Fault = Evendb_storage.Fault
module Repl = Evendb_repl.Repl
module W = Evendb_ycsb.Workload
module Tel = Evendb_telemetry

module Shard = Evendb_shard

(* A directory holds either a plain store or a sharded one (created by
   [load --shards N]); the SHARDS partition file tells them apart. Every
   data command auto-detects — opening a sharded directory as a plain
   store would silently present a fresh empty root namespace. *)
type store = Plain of Db.t | Sharded of Shard.t

let run_guarded ~report f =
  match f () with
  | v ->
    report ();
    v
  | exception Env.Io_error info ->
    (* Storage failures (injected or real) are part of the CLI's
       contract: report and exit non-zero, don't crash. *)
    report ();
    Printf.eprintf "evendb: %s\n" (Evendb_storage.Io_error.to_string info);
    exit 3
  | exception Env.Corruption c ->
    report ();
    Printf.eprintf "evendb: %s\n" (Evendb_storage.Io_error.corruption_to_string c);
    exit 3
  | exception Db.Fenced ->
    report ();
    Printf.eprintf "evendb: store is fenced (deposed primary); writes are refused\n";
    exit 5

let fault_report faults () =
  Option.iter
    (fun p -> Printf.eprintf "injected faults (%s): %d\n" (Fault.profile_string p) (Fault.injected p))
    faults

(* Direct writes to a replication standby would diverge it from its
   primary silently; the only sanctioned write path is the stream (or
   promotion). Read-only commands pass [writes:false]. *)
(* Read-only commands may open a follower, but must not weaken it: the
   MODE marker follows the opening config, and a standby must stay
   Sync (an applied-but-unsynced stream record would be acked to the
   shipper yet lost on crash). *)
let follower_safe_config env config =
  if Env.exists env Repl.follower_marker then
    Some
      {
        (Option.value config ~default:Evendb_core.Config.default) with
        Evendb_core.Config.persistence = Evendb_core.Config.Sync;
      }
  else config

let refuse_follower_writes env =
  if Env.exists env Repl.follower_marker then begin
    Printf.eprintf
      "evendb: store is a replication follower; direct writes are refused (run `evendb \
       promote` to make it a primary)\n";
    exit 2
  end

let with_store ?fault_profile ?config ?(shards = 0) ?(writes = false) dir f =
  let faults = Option.map Fault.parse_profile fault_profile in
  run_guarded ~report:(fault_report faults) (fun () ->
      let env = Env.disk ?faults dir in
      if writes then refuse_follower_writes env;
      let config = follower_safe_config env config in
      if shards > 1 || Env.exists env "SHARDS" then begin
        let boundaries =
          if Env.exists env "SHARDS" then []
          else begin
            (* New sharded store: uniform split keys over the synthetic
               (YCSB-style) key space the load command populates. *)
            let key_space = 1 lsl Evendb_ycsb.Keys.key_bits in
            List.init (shards - 1) (fun i ->
                Evendb_ycsb.Keys.encode ((i + 1) * (key_space / shards)))
          end
        in
        let s = Shard.open_ ?config ~boundaries env in
        Fun.protect ~finally:(fun () -> Shard.close s) (fun () -> f (Sharded s))
      end
      else begin
        let db = Db.open_ ?config env in
        Fun.protect ~finally:(fun () -> Db.close db) (fun () -> f (Plain db))
      end)

(* Commands tied to one store's introspection surface (heat maps,
   traces, slow-op rings) stay single-store. *)
let with_db ?fault_profile ?config dir f =
  let faults = Option.map Fault.parse_profile fault_profile in
  run_guarded ~report:(fault_report faults) (fun () ->
      let env = Env.disk ?faults dir in
      if Env.exists env "SHARDS" then begin
        Printf.eprintf "evendb: %s is a sharded store; this command works on plain stores\n" dir;
        exit 2
      end;
      let config = follower_safe_config env config in
      let db = Db.open_ ?config env in
      Fun.protect ~finally:(fun () -> Db.close db) (fun () -> f db))

let s_put = function Plain db -> Db.put db | Sharded s -> Shard.put s
let s_get = function Plain db -> Db.get db | Sharded s -> Shard.get s
let s_delete = function Plain db -> Db.delete db | Sharded s -> Shard.delete s

let s_scan st ~limit ~low ~high =
  match st with
  | Plain db -> Db.scan db ~limit ~low ~high ()
  | Sharded s -> Shard.scan s ~limit ~low ~high ()

let s_checkpoint = function Plain db -> Db.checkpoint db | Sharded s -> Shard.checkpoint s

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-profile" ] ~docv:"SEED:RATE"
        ~doc:
          "Inject deterministic storage faults for this invocation: each append/fsync/rename \
           fails with probability RATE under a schedule derived from SEED (e.g. 42:0.01). An \
           optional third field adds read corruption: SEED:RATE:CORRUPT flips one byte per \
           read with probability CORRUPT (e.g. 42:0:0.05), which surfaces as typed corruption \
           errors and shows up in the io.corruptions metric. The injected count is printed to \
           stderr on exit.")

let dir_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR")
let key_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"KEY")

(* "host:port", "http://host:port[/path]" or a bare port, for commands
   that can talk to a live store's telemetry endpoint instead of
   opening the directory themselves. *)
let parse_endpoint url =
  let u =
    if String.length url >= 7 && String.sub url 0 7 = "http://" then
      String.sub url 7 (String.length url - 7)
    else url
  in
  let u = match String.index_opt u '/' with Some i -> String.sub u 0 i | None -> u in
  let fail () =
    Printf.eprintf "evendb: cannot parse endpoint %S (expected host:port)\n" url;
    exit 2
  in
  match String.rindex_opt u ':' with
  | Some i -> (
    let host = String.sub u 0 i in
    let host = if host = "" || host = "localhost" then "127.0.0.1" else host in
    match int_of_string_opt (String.sub u (i + 1) (String.length u - i - 1)) with
    | Some port -> (host, port)
    | None -> fail ())
  | None -> ( match int_of_string_opt u with Some port -> ("127.0.0.1", port) | None -> fail ())

let url_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "url" ] ~docv:"URL"
        ~doc:
          "Talk to a live store's telemetry endpoint (started with serve-telemetry) instead \
           of opening DIR — e.g. --url 127.0.0.1:9898.")
let value_arg = Arg.(required & pos 2 (some string) None & info [] ~docv:"VALUE")

let put_cmd =
  let run fault_profile dir key value =
    with_store ?fault_profile ~writes:true dir (fun st -> s_put st key value)
  in
  Cmd.v (Cmd.info "put" ~doc:"Write one key")
    Term.(const run $ fault_arg $ dir_arg $ key_arg $ value_arg)

let get_cmd =
  let run fault_profile dir key =
    with_store ?fault_profile dir (fun st ->
        match s_get st key with
        | Some v -> print_endline v
        | None ->
          prerr_endline "(not found)";
          exit 1)
  in
  Cmd.v (Cmd.info "get" ~doc:"Read one key") Term.(const run $ fault_arg $ dir_arg $ key_arg)

let del_cmd =
  let run fault_profile dir key =
    with_store ?fault_profile ~writes:true dir (fun st -> s_delete st key)
  in
  Cmd.v (Cmd.info "del" ~doc:"Delete one key") Term.(const run $ fault_arg $ dir_arg $ key_arg)

let scan_cmd =
  let low = Arg.(required & pos 1 (some string) None & info [] ~docv:"LOW") in
  let high = Arg.(required & pos 2 (some string) None & info [] ~docv:"HIGH") in
  let limit = Arg.(value & opt int 1000 & info [ "limit" ] ~doc:"Max rows.") in
  let run fault_profile dir low high limit =
    with_store ?fault_profile dir (fun st ->
        List.iter (fun (k, v) -> Printf.printf "%s\t%s\n" k v) (s_scan st ~limit ~low ~high))
  in
  Cmd.v (Cmd.info "scan" ~doc:"Atomic range query")
    Term.(const run $ fault_arg $ dir_arg $ low $ high $ limit)

let load_cmd =
  let items = Arg.(value & opt int 10_000 & info [ "items" ] ~doc:"Keys to load.") in
  let dist =
    Arg.(
      value
      & opt (enum [ ("zipf", `Zipf); ("composite", `Composite); ("uniform", `Uniform) ]) `Composite
      & info [ "dist" ] ~doc:"Key distribution.")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ]
          ~doc:
            "Create the store range-sharded over N independent shards (uniform split keys \
             over the synthetic key space). Only honored when the directory is fresh; an \
             existing store keeps its partition.")
  in
  let run fault_profile dir items dist shards =
    let d =
      match dist with
      | `Zipf -> Evendb_ycsb.Workload.Zipf_simple 0.99
      | `Composite -> Evendb_ycsb.Workload.Zipf_composite 0.99
      | `Uniform -> Evendb_ycsb.Workload.Uniform
    in
    with_store ?fault_profile ~shards ~writes:true dir (fun st ->
        let sh = Evendb_ycsb.Workload.create_shared ~value_bytes:128 d ~items ~seed:1 in
        let w = Evendb_ycsb.Workload.thread sh ~id:0 in
        let keys = Evendb_ycsb.Workload.load_keys sh in
        List.iter (fun k -> s_put st k (Evendb_ycsb.Workload.make_value w)) keys;
        Printf.printf "loaded %d keys\n" (List.length keys))
  in
  Cmd.v (Cmd.info "load" ~doc:"Bulk-load a synthetic dataset")
    Term.(const run $ fault_arg $ dir_arg $ items $ dist $ shards)

let stat_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Dump the full metrics registry (counters, gauges, op-latency timers, maintenance spans) as JSON.")
  in
  let prometheus =
    Arg.(value & flag & info [ "prometheus" ] ~doc:"Dump the metrics registry in Prometheus text format.")
  in
  let reset_check =
    Arg.(
      value & flag
      & info [ "reset-check" ]
          ~doc:
            "After reporting, reset every resettable metric (registry counters/timers/spans, \
             per-chunk stats, hot-prefix sketch, flight recorder) and verify they all read \
             zero; lists any residue and exits 4 — a regression guard for reset coverage of \
             newly added tables.")
  in
  (* Group-commit activity, aggregated over whichever stores the
     directory holds. Nothing to print on async stores (no committer:
     the counters read zero). *)
  let commit_summary snaps =
    let counter name =
      List.fold_left
        (fun acc snap ->
          List.fold_left
            (fun acc (n, v) ->
              match v with Evendb_obs.Obs.Counter c when n = name -> acc + c | _ -> acc)
            acc snap.Evendb_obs.Obs.metrics)
        0 snaps
    in
    let batches = counter "commit.batches" in
    if batches > 0 then begin
      let members, max_batch =
        List.fold_left
          (fun acc snap ->
            List.fold_left
              (fun (members, max_batch) (n, v) ->
                match v with
                | Evendb_obs.Obs.Timer tm when n = "commit.batch_size" ->
                  ( members
                    + int_of_float (tm.Evendb_obs.Obs.t_mean_ns *. float_of_int tm.Evendb_obs.Obs.t_count),
                    max max_batch tm.Evendb_obs.Obs.t_max_ns )
                | _ -> (members, max_batch))
              acc snap.Evendb_obs.Obs.metrics)
          (0, 0) snaps
      in
      Printf.printf "group commit:        %d batches, %d fsyncs (%d saved), mean batch %.1f, max %d\n"
        batches (counter "commit.fsyncs") (counter "commit.fsyncs_saved")
        (float_of_int members /. float_of_int batches)
        max_batch
    end
  in
  let timer_table snaps =
    (* Op-latency timers, including the true observed extremes (p99 is
       a bucket estimate; max_ns is exact). Batch-size histograms count
       members, not nanoseconds — they render in the group-commit line
       instead. *)
    let timers =
      List.concat_map
        (fun (label, snap) ->
          List.filter_map
            (fun (name, v) ->
              match v with
              | Evendb_obs.Obs.Timer tm
                when tm.Evendb_obs.Obs.t_count > 0 && name <> "commit.batch_size" ->
                Some (label ^ name, tm)
              | _ -> None)
            snap.Evendb_obs.Obs.metrics)
        snaps
    in
    if timers <> [] then begin
      Printf.printf "\n%-24s %10s %10s %10s %10s %10s %10s\n" "timer" "count" "p50_us"
        "p95_us" "p99_us" "min_us" "max_us";
      List.iter
        (fun (name, tm) ->
          let us ns = float_of_int ns /. 1e3 in
          Printf.printf "%-24s %10d %10.1f %10.1f %10.1f %10.1f %10.1f\n" name
            tm.Evendb_obs.Obs.t_count
            (us tm.Evendb_obs.Obs.t_p50_ns)
            (us tm.Evendb_obs.Obs.t_p95_ns)
            (us tm.Evendb_obs.Obs.t_p99_ns)
            (us tm.Evendb_obs.Obs.t_min_ns)
            (us tm.Evendb_obs.Obs.t_max_ns))
        timers
    end
  in
  (* Uptime plus lifetime op counts with derived rates. Counts come
     from the op timers, so they cover exactly what the latency table
     below reports. *)
  let ops_rates ~uptime_ns snaps =
    let up_s = float_of_int uptime_ns /. 1e9 in
    Printf.printf "uptime:              %.1fs\n" up_s;
    let count name =
      List.fold_left
        (fun acc snap ->
          List.fold_left
            (fun acc (n, v) ->
              match v with
              | Evendb_obs.Obs.Timer tm when n = name -> acc + tm.Evendb_obs.Obs.t_count
              | _ -> acc)
            acc snap.Evendb_obs.Obs.metrics)
        0 snaps
    in
    let parts =
      List.filter_map
        (fun (label, name) ->
          let c = count name in
          if c > 0 then
            Some (Printf.sprintf "%s %d (%.1f/s)" label c (float_of_int c /. Float.max up_s 1e-9))
          else None)
        [ ("put", "db.put"); ("get", "db.get"); ("del", "db.delete"); ("scan", "db.scan") ]
    in
    if parts <> [] then Printf.printf "ops:                 %s\n" (String.concat "  " parts)
  in
  (* --url: print the same uptime/rates section from a live store's
     /stat.json (where uptime and counts are the server's, not this
     short-lived CLI process's). *)
  let stat_from_url url =
    let host, port = parse_endpoint url in
    match Tel.Http.get ~host ~port "/stat.json" with
    | exception _ ->
      Printf.eprintf "evendb stat: cannot reach http://%s:%d/stat.json\n" host port;
      exit 1
    | status, _ when status <> 200 ->
      Printf.eprintf "evendb stat: http://%s:%d/stat.json returned %d\n" host port status;
      exit 1
    | _, body ->
      let j = Tel.Tiny_json.parse body in
      (match Option.bind (Tel.Tiny_json.member "uptime_ns" j) Tel.Tiny_json.to_int with
      | Some up -> Printf.printf "uptime:              %.1fs\n" (float_of_int up /. 1e9)
      | None -> ());
      let ops =
        match Option.bind (Tel.Tiny_json.member "ops" j) Tel.Tiny_json.to_obj with
        | Some fields ->
          List.filter_map
            (fun (name, v) ->
              match
                ( Option.bind (Tel.Tiny_json.member "count" v) Tel.Tiny_json.to_int,
                  Option.bind (Tel.Tiny_json.member "per_s" v) Tel.Tiny_json.to_float )
              with
              | Some c, Some r when c > 0 -> Some (Printf.sprintf "%s %d (%.1f/s)" name c r)
              | _ -> None)
            fields
        | None -> []
      in
      if ops <> [] then Printf.printf "ops:                 %s\n" (String.concat "  " ops)
  in
  let reset_check_dbs dbs =
    List.iter Db.reset_metrics dbs;
    match List.concat_map Db.metrics_residue dbs with
    | [] -> prerr_endline "reset check: clean"
    | residue ->
      Printf.eprintf "reset check: %d metrics still non-zero after reset:\n"
        (List.length residue);
      List.iter (Printf.eprintf "  %s\n") residue;
      exit 4
  in
  let run fault_profile dir json prometheus reset_check url =
    match (url, dir) with
    | Some url, _ -> stat_from_url url
    | None, None ->
      prerr_endline "evendb stat: a store DIR or --url is required";
      exit 2
    | None, Some dir ->
    with_store ?fault_profile dir (fun st ->
        (match st with
        | Plain db ->
          if json then print_string (Db.metrics_dump db `Json)
          else if prometheus then print_string (Db.metrics_dump db `Prometheus)
          else begin
            Printf.printf "chunks:              %d\n" (Db.chunk_count db);
            Printf.printf "resident munks:      %d\n" (Db.munk_count db);
            Printf.printf "funk log bytes:      %d\n" (Db.log_space db);
            Printf.printf "current epoch:       %d\n" (Db.current_epoch db);
            (match Db.list_snapshots db with
            | [] -> ()
            | snaps ->
              Printf.printf "snapshots:           %d (%s)\n" (List.length snaps)
                (String.concat ", " (List.map (fun i -> i.Snapshot.id) snaps)));
            let env = Env.disk dir in
            if Env.exists env Repl.follower_marker then
              Printf.printf "replication:         follower, applied LSN %d\n"
                (Repl.Follower.load_watermark env)
            else if Db.fenced db then Printf.printf "replication:         fenced (deposed primary)\n";
            let snap = Evendb_obs.Obs.snapshot (Db.obs db) in
            ops_rates ~uptime_ns:(Db.uptime_ns db) [ snap ];
            commit_summary [ snap ];
            timer_table [ ("", snap) ]
          end
        | Sharded s ->
          if json then print_string (Shard.metrics_dump s `Json)
          else if prometheus then print_string (Shard.metrics_dump s `Prometheus)
          else begin
            let n = Shard.shard_count s in
            Printf.printf "shards:              %d\n" n;
            Printf.printf "chunks:              %d\n" (Shard.chunk_count s);
            List.iteri
              (fun i db ->
                Printf.printf "  shard %-2d           %d chunks, %d munks, %d log bytes\n" i
                  (Db.chunk_count db) (Db.munk_count db) (Db.log_space db))
              (List.init n (Shard.shard s));
            let snaps =
              List.init n (fun i -> Evendb_obs.Obs.snapshot (Db.obs (Shard.shard s i)))
            in
            ops_rates ~uptime_ns:(Db.uptime_ns (Shard.shard s 0)) snaps;
            commit_summary snaps;
            timer_table
              (List.mapi (fun i snap -> (Printf.sprintf "s%02d/" i, snap)) snaps)
          end);
        if reset_check then
          match st with
          | Plain db -> reset_check_dbs [ db ]
          | Sharded s -> reset_check_dbs (List.init (Shard.shard_count s) (Shard.shard s)))
  in
  let dir_opt = Arg.(value & pos 0 (some string) None & info [] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "Store statistics: uptime, op counts with derived ops/s rates, group-commit and \
          latency tables (--json/--prometheus for the metrics registry; --url to query a \
          live store's telemetry endpoint)")
    Term.(const run $ fault_arg $ dir_opt $ json $ prometheus $ reset_check $ url_arg)

(* Minimal JSON string rendering for CLI reports (keys are ASCII but a
   user-chosen DIR or key may not be). *)
let jstr s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let take n l = List.filteri (fun i _ -> i < n) l

let heat_cmd =
  let items =
    Arg.(value & opt int 20_000 & info [ "items" ] ~doc:"Dataset size loaded before the trace.")
  in
  let ops =
    Arg.(value & opt int 50_000 & info [ "ops" ] ~doc:"Zipfian point reads to drive.")
  in
  let dist =
    Arg.(
      value
      & opt (enum [ ("zipf", `Zipf); ("composite", `Composite) ]) `Zipf
      & info [ "dist" ] ~doc:"Read-key distribution (theta 0.99).")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"Rows in the chunk and prefix tables.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable report.") in
  let run fault_profile dir items ops dist top json =
    let theta = 0.99 in
    let d = match dist with `Zipf -> W.Zipf_simple theta | `Composite -> W.Zipf_composite theta in
    (* A big sketch keeps the aggregate Space-Saving overestimate well
       under the report's accuracy target. *)
    let config = { Evendb_core.Config.default with topk_capacity = 4096 } in
    with_db ?fault_profile ~config dir (fun db ->
        let sh = W.create_shared ~value_bytes:128 d ~items ~seed:1 in
        let w = W.thread sh ~id:0 in
        List.iter (fun k -> Db.put db k (W.make_value w)) (W.load_keys sh);
        Db.maintain db;
        (* The load phase's put telemetry would dilute the read trace. *)
        Db.reset_metrics db;
        for _ = 1 to ops do
          ignore (Db.get db (W.sample_key w))
        done;
        let prefix_len = (Db.config db).Evendb_core.Config.hot_prefix_len in
        let expected = W.prefix_weights sh ~prefix_len in
        let distinct = List.length expected in
        let n1 = max 1 (distinct / 100) in
        let expected_share =
          List.fold_left (fun acc (_, w) -> acc +. w) 0.0 (take n1 expected)
        in
        let entries, total = Db.hot_prefixes db in
        let observed_share =
          if total = 0 then 0.0
          else
            List.fold_left (fun acc (_, _, hi) -> acc +. float_of_int hi) 0.0 (take n1 entries)
            /. float_of_int total
        in
        let cstats = Db.chunk_stats db in
        let by_heat =
          List.sort
            (fun a b ->
              compare b.Db.cs_stat.Chunk_stats.st_heat a.Db.cs_stat.Chunk_stats.st_heat)
            cstats
        in
        let resident = List.length (List.filter (fun c -> c.Db.cs_munk_resident) cstats) in
        (* Agreement: does the munk cache hold the chunks the heat score
           ranks hottest? 1.0 = the top-[resident] by heat are exactly
           the resident set. *)
        let m = min resident (List.length by_heat) in
        let agreement =
          if m = 0 then 1.0
          else
            float_of_int
              (List.length (List.filter (fun c -> c.Db.cs_munk_resident) (take m by_heat)))
            /. float_of_int m
        in
        if json then begin
          let buf = Buffer.create 4096 in
          Buffer.add_string buf "{\n";
          Buffer.add_string buf (Printf.sprintf "  \"dist\": %s,\n" (jstr (W.dist_name d)));
          Buffer.add_string buf (Printf.sprintf "  \"theta\": %.2f,\n" theta);
          Buffer.add_string buf (Printf.sprintf "  \"items\": %d,\n" items);
          Buffer.add_string buf (Printf.sprintf "  \"ops\": %d,\n" ops);
          Buffer.add_string buf (Printf.sprintf "  \"prefix_len\": %d,\n" prefix_len);
          Buffer.add_string buf (Printf.sprintf "  \"distinct_prefixes\": %d,\n" distinct);
          Buffer.add_string buf (Printf.sprintf "  \"top1pct_prefixes\": %d,\n" n1);
          Buffer.add_string buf
            (Printf.sprintf "  \"observed_top1pct_share\": %.6f,\n" observed_share);
          Buffer.add_string buf
            (Printf.sprintf "  \"expected_top1pct_share\": %.6f,\n" expected_share);
          Buffer.add_string buf (Printf.sprintf "  \"sketch_total\": %d,\n" total);
          Buffer.add_string buf (Printf.sprintf "  \"chunks\": %d,\n" (List.length cstats));
          Buffer.add_string buf (Printf.sprintf "  \"resident_munks\": %d,\n" resident);
          Buffer.add_string buf
            (Printf.sprintf "  \"munk_residency_agreement\": %.6f,\n" agreement);
          Buffer.add_string buf "  \"hot_prefixes\": [";
          List.iteri
            (fun i (p, lo, hi) ->
              if i > 0 then Buffer.add_string buf ",";
              Buffer.add_string buf
                (Printf.sprintf "\n    {\"prefix\": %s, \"count_lo\": %d, \"count_hi\": %d}"
                   (jstr p) lo hi))
            (take top entries);
          Buffer.add_string buf "\n  ],\n  \"hot_chunks\": [";
          List.iteri
            (fun i c ->
              if i > 0 then Buffer.add_string buf ",";
              let s = c.Db.cs_stat in
              Buffer.add_string buf
                (Printf.sprintf
                   "\n    {\"id\": %d, \"min_key\": %s, \"munk\": %b, \"heat\": %.3f, \
                    \"gets\": %d, \"puts\": %d, \"scans\": %d, \"munk_hits\": %d, \
                    \"row_hits\": %d, \"funk_reads\": %d, \"rebalances\": %d, \"splits\": %d}"
                   c.Db.cs_id (jstr c.Db.cs_min_key) c.Db.cs_munk_resident
                   s.Chunk_stats.st_heat s.Chunk_stats.st_gets s.Chunk_stats.st_puts
                   s.Chunk_stats.st_scans s.Chunk_stats.st_munk_hits s.Chunk_stats.st_row_hits
                   s.Chunk_stats.st_funk_reads s.Chunk_stats.st_rebalances
                   s.Chunk_stats.st_splits))
            (take top by_heat);
          Buffer.add_string buf "\n  ]\n}\n";
          print_string (Buffer.contents buf)
        end
        else begin
          Printf.printf "%s trace: %d reads over %d items (theta %.2f)\n" (W.dist_name d) ops
            items theta;
          Printf.printf "top 1%% of %d prefixes: %.1f%% of accesses (expected %.1f%%)\n"
            distinct (100.0 *. observed_share) (100.0 *. expected_share);
          Printf.printf "munk-residency agreement: %.0f%% (%d resident munks, %d chunks)\n\n"
            (100.0 *. agreement) resident (List.length cstats);
          Printf.printf "%-10s %-6s %10s %8s %8s %9s %9s %10s\n" "prefix" "" "count" "chunk"
            "heat" "gets" "puts" "cache-hit%";
          let chunk_rows = take top by_heat in
          let prefix_rows = take top entries in
          let rows = max (List.length chunk_rows) (List.length prefix_rows) in
          for i = 0 to rows - 1 do
            (match List.nth_opt prefix_rows i with
            | Some (p, _, hi) -> Printf.printf "%-10s %-6s %10d " p "" hi
            | None -> Printf.printf "%-10s %-6s %10s " "" "" "");
            match List.nth_opt chunk_rows i with
            | Some c ->
              let s = c.Db.cs_stat in
              let hitpct =
                if s.Chunk_stats.st_gets = 0 then 0.0
                else
                  100.0
                  *. float_of_int (s.Chunk_stats.st_munk_hits + s.Chunk_stats.st_row_hits)
                  /. float_of_int s.Chunk_stats.st_gets
              in
              Printf.printf "%7d%s %8.1f %9d %9d %9.1f\n" c.Db.cs_id
                (if c.Db.cs_munk_resident then "*" else " ")
                s.Chunk_stats.st_heat s.Chunk_stats.st_gets s.Chunk_stats.st_puts hitpct
            | None -> print_newline ()
          done;
          Printf.printf "(* = munk resident)\n"
        end)
  in
  Cmd.v
    (Cmd.info "heat"
       ~doc:
         "Drive a skewed read trace and report the spatial-locality telemetry: per-chunk heat \
          map, hot-prefix sketch, and the observed vs analytically-expected access share of \
          the top 1% of key prefixes.")
    Term.(const run $ fault_arg $ dir_arg $ items $ ops $ dist $ top $ json)

let trace_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the Chrome trace-event JSON here (load in chrome://tracing or Perfetto).")
  in
  let ops =
    Arg.(
      value & opt int 2_000
      & info [ "ops" ]
          ~doc:
            "Synthetic put/get ops to drive first so the span ring holds maintenance activity \
             (0 = dump only what opening produced, e.g. recovery).")
  in
  let run fault_profile dir out ops =
    with_db ?fault_profile dir (fun db ->
        if ops > 0 then begin
          let sh =
            W.create_shared ~value_bytes:128 (W.Zipf_composite 0.99) ~items:(max 64 (ops / 2))
              ~seed:1
          in
          let w = W.thread sh ~id:0 in
          for i = 1 to ops do
            if i land 1 = 0 then ignore (Db.get db (W.sample_key w))
            else Db.put db (W.sample_key w) (W.make_value w)
          done;
          Db.maintain db
        end;
        let json = Db.dump_trace db in
        let oc = open_out out in
        output_string oc json;
        close_out oc;
        Printf.eprintf "wrote %d bytes of trace JSON to %s\n" (String.length json) out)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Export the maintenance span ring (rebalances, splits, flushes, checkpoints...) as \
          Chrome trace-event JSON, optionally driving a synthetic workload first.")
    Term.(const run $ fault_arg $ dir_arg $ out $ ops)

let slow_cmd =
  let module Attr = Evendb_obs.Attr in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the report to $(docv) instead of stdout.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the slow-op log as JSONL (one object per op: kind, wall/duration ns, \
             per-cause breakdown, overlapping maintenance spans) instead of the table.")
  in
  let ops =
    Arg.(
      value & opt int 2_000
      & info [ "ops" ]
          ~doc:
            "Synthetic put/get ops to drive first so the slow-op ring holds attributed tail \
             operations (0 = report only what opening, e.g. recovery, produced).")
  in
  let threshold_us =
    Arg.(
      value & opt int 1_000
      & info [ "threshold-us" ] ~docv:"US"
          ~doc:
            "Slow-op threshold in microseconds; the ring is re-armed at this threshold \
             before any synthetic ops run.")
  in
  let run fault_profile dir out json ops threshold_us =
    with_db ?fault_profile dir (fun db ->
        let attr = Db.attr db in
        Attr.set_threshold_ns attr (max 1 (threshold_us * 1_000));
        if ops > 0 then begin
          let sh =
            W.create_shared ~value_bytes:128 (W.Zipf_composite 0.99) ~items:(max 64 (ops / 2))
              ~seed:1
          in
          let w = W.thread sh ~id:0 in
          for i = 1 to ops do
            if i land 1 = 0 then ignore (Db.get db (W.sample_key w))
            else Db.put db (W.sample_key w) (W.make_value w)
          done
        end;
        let emit s =
          match out with
          | None -> print_string s
          | Some file ->
            let oc = open_out file in
            output_string oc s;
            close_out oc;
            Printf.eprintf "wrote %d bytes to %s\n" (String.length s) file
        in
        if json then emit (Attr.slow_ops_jsonl attr)
        else begin
          let slows = Attr.slow_ops attr in
          let b = Buffer.create 4096 in
          let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
          bpf "slow ops (> %d us): %d seen, %d retained; watchdog trips: %d\n" threshold_us
            (Attr.slow_seen attr) (List.length slows) (Attr.watchdog_trips attr);
          if slows <> [] then
            bpf "%-8s %12s %6s %-16s %s\n" "kind" "dur_us" "attr%" "top cause" "breakdown (us)";
          List.iter
            (fun (s : Attr.slow_op) ->
              let attributed = List.fold_left (fun a (_, ns) -> a + ns) 0 s.Attr.so_causes in
              let top =
                match
                  List.sort (fun (_, a) (_, b) -> compare b a) s.Attr.so_causes
                with
                | (name, _) :: _ -> name
                | [] -> "-"
              in
              bpf "%-8s %12.1f %5.0f%% %-16s %s\n" s.Attr.so_kind
                (float_of_int s.Attr.so_dur_ns /. 1e3)
                (if s.Attr.so_dur_ns > 0 then
                   100.0 *. float_of_int attributed /. float_of_int s.Attr.so_dur_ns
                 else 0.0)
                top
                (String.concat " "
                   (List.map
                      (fun (c, ns) -> Printf.sprintf "%s=%.1f" c (float_of_int ns /. 1e3))
                      s.Attr.so_causes)))
            slows;
          emit (Buffer.contents b)
        end)
  in
  Cmd.v
    (Cmd.info "slow"
       ~doc:
         "Report the slow-op ring: every operation over the threshold with its wall time \
          decomposed into named stall causes (lock wait, log append, fsync, disk read, \
          rebalance, compaction) and the maintenance spans it overlapped. --json emits the \
          raw JSONL event log.")
    Term.(const run $ fault_arg $ dir_arg $ out $ json $ ops $ threshold_us)

let checkpoint_cmd =
  let run fault_profile dir = with_store ?fault_profile dir s_checkpoint in
  Cmd.v (Cmd.info "checkpoint" ~doc:"Force a durability checkpoint")
    Term.(const run $ fault_arg $ dir_arg)

let fsck_cmd =
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Fix what can be fixed. Untrusted files are quarantined under quarantine/ (never \
             deleted) before rebuilding from checksummed fragments; acked-and-synced data \
             survives.")
  in
  let run dir repair =
    (* Deliberately does not open the store: fsck must work on exactly
       the state a crashed or corrupted store cannot recover from. *)
    let env = Env.disk dir in
    let report = if repair then Evendb_check.Scrub.repair env else Evendb_check.Scrub.scrub env in
    Format.printf "%a" Evendb_check.Scrub.pp_report report;
    if not (Evendb_check.Scrub.is_clean report) then exit 2
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify on-disk integrity: every checksum (SSTable blocks, log records, metadata \
          payloads) and the manifest's cross-file references. Exits 2 if errors remain.")
    Term.(const run $ dir_arg $ repair)

let snapshot_cmd =
  let id_arg =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"ID" ~doc:"Snapshot identifier.")
  in
  let drop =
    Arg.(value & flag & info [ "drop" ] ~doc:"Drop snapshot $(i,ID) instead of creating it.")
  in
  let run fault_profile dir id drop =
    with_db ?fault_profile dir (fun db ->
        match (id, drop) with
        | None, true ->
          prerr_endline "evendb: --drop needs a snapshot ID";
          exit 2
        | None, false ->
          List.iter
            (fun (i : Snapshot.info) ->
              Printf.printf "%s\tversion %d\t%d funks\n" i.Snapshot.id i.Snapshot.version
                (List.length i.Snapshot.funks))
            (Db.list_snapshots db)
        | Some id, true ->
          Db.drop_snapshot db ~id;
          Printf.printf "dropped snapshot %s\n" id
        | Some id, false ->
          let info = Db.snapshot db ~id in
          Printf.printf "published snapshot %s at version %d (%d funks)\n" info.Snapshot.id
            info.Snapshot.version
            (List.length info.Snapshot.funks))
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Publish a point-in-time read-only snapshot under snapshots/ID/ (crash-safe: a \
          snapshot exists only once its COMPLETE marker is published; half-published \
          snapshots are swept at recovery). Without ID, list the published snapshots.")
    Term.(const run $ fault_arg $ dir_arg $ id_arg $ drop)

let backup_cmd =
  let dest_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"DEST") in
  let snap_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"ID"
          ~doc:
            "Ship snapshot $(docv) (published if it does not exist yet). Default: publish a \
             fresh auto-named snapshot at the current cut.")
  in
  let base_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "base" ] ~docv:"ID"
          ~doc:
            "Incremental: ship only funks changed since base snapshot $(docv) (SSTables of \
             shared funks are carried by reference; their logs ship only the grown suffix). \
             The base must be the snapshot of the previous archive in the chain.")
  in
  let run fault_profile dir dest snap base =
    with_db ?fault_profile dir (fun db ->
        let snapshot_id =
          match snap with
          | Some id when Snapshot.exists (Db.env db) ~id -> id
          | Some id -> (Db.snapshot db ~id).Snapshot.id
          | None ->
            let rec fresh n =
              let id = Printf.sprintf "auto-%04d" n in
              if Snapshot.exists (Db.env db) ~id then fresh (n + 1) else id
            in
            (Db.snapshot db ~id:(fresh 0)).Snapshot.id
        in
        let name, stats =
          Backup.ship ~obs:(Db.obs db) ~src:(Db.env db) ~dest:(Env.disk dest) ~snapshot_id
            ?base_id:base ()
        in
        Printf.printf "shipped snapshot %s to %s/%s: %d funks, %d bytes%s\n" snapshot_id dest
          name stats.Backup.funks_shipped stats.Backup.bytes_shipped
          (match base with Some b -> Printf.sprintf " (incremental over %s)" b | None -> ""))
  in
  Cmd.v
    (Cmd.info "backup"
       ~doc:
         "Ship a snapshot into a self-describing CRC-trailered archive in DEST \
          (backup_<seq>.evbk). With --base, only what changed since the base snapshot is \
          shipped. Interrupted ships leave only a *.tmp behind.")
    Term.(const run $ fault_arg $ dir_arg $ dest_arg $ snap_arg $ base_arg)

let restore_cmd =
  let src_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"SRC") in
  let dst_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"DST") in
  let run src dst =
    run_guarded
      ~report:(fun () -> ())
      (fun () ->
        match Backup.restore ~src:(Env.disk src) ~dest:(Env.disk dst) with
        | () -> Printf.printf "restored %s from the archive chain in %s\n" dst src
        | exception Invalid_argument msg ->
          Printf.eprintf "evendb: %s\n" msg;
          exit 2)
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:
         "Rebuild a store from the backup archive chain in SRC (one full plus any \
          incrementals) into the empty directory DST. The result opens normally and passes \
          fsck; a damaged archive or broken chain is rejected whole.")
    Term.(const run $ src_arg $ dst_arg)

let fence_cmd =
  let run fault_profile dir =
    with_db ?fault_profile dir (fun db ->
        Db.fence db;
        Printf.printf "fenced %s: all writes now fail until promotion copies its state\n" dir)
  in
  Cmd.v
    (Cmd.info "fence"
       ~doc:
         "Fence a (deposed) primary: publish the durable FENCED marker, after which every \
          write raises and the CLI exits 5. Reads stay available. Part of the failover \
          runbook — fence the old primary before promoting its replica.")
    Term.(const run $ fault_arg $ dir_arg)

let promote_cmd =
  let from_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"PRIMARY_DIR"
          ~doc:
            "The deposed primary's store. When reachable it is fenced and its recovered \
             durable state is applied onto the replica before promotion, so nothing acked is \
             lost. Omit when the primary's disk is gone; the replica then serves its last \
             applied state.")
  in
  let run dir from =
    run_guarded
      ~report:(fun () -> ())
      (fun () ->
        let renv = Env.disk dir in
        if not (Env.exists renv Repl.follower_marker) then begin
          Printf.eprintf "evendb: %s is not a replication follower\n" dir;
          exit 2
        end;
        let f = Repl.Follower.open_ renv in
        let applied = Repl.Follower.applied_lsn f in
        let primary = Option.map (fun d -> Db.open_ (Env.disk d)) from in
        let db = Repl.promote ?primary f in
        Printf.printf "promoted %s (watermark was LSN %d%s)\n" dir applied
          (match from with
          | Some d -> Printf.sprintf "; fenced and drained %s" d
          | None -> "; old primary unreachable — serving last applied state");
        Db.close db;
        Option.iter Db.close primary)
  in
  Cmd.v
    (Cmd.info "promote"
       ~doc:
         "Promote a replication follower to primary: fence the old primary (--from), top the \
          replica up from its recovered durable state, drop the FOLLOWER marker and \
          watermark, and checkpoint. The store then accepts direct writes.")
    Term.(const run $ dir_arg $ from_arg)

let serve_telemetry_cmd =
  let port_arg =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to bind (default 0 = ephemeral; the bound port is printed).")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Bind address.")
  in
  let duration_arg =
    Arg.(
      value & opt float 0.
      & info [ "duration-s" ] ~docv:"S"
          ~doc:"Serve for S seconds, then close the store and exit (default 0 = until killed).")
  in
  let drive_arg =
    Arg.(
      value & opt int 0
      & info [ "drive" ] ~docv:"OPS_PER_S"
          ~doc:
            "Apply a paced synthetic load (~70% gets, 30% puts over the loaded key space) \
             while serving, so the endpoint and evendb top have live traffic to show.")
  in
  let run fault_profile dir port host duration_s drive =
    with_db ?fault_profile dir (fun db ->
        let port = Db.serve_telemetry ~host ~port db in
        Printf.printf "serving telemetry on http://%s:%d/\n" host port;
        print_string "endpoints: /metrics /stat.json /series?last=N /trace /slow\n";
        flush stdout;
        let deadline =
          if duration_s > 0. then Some (Unix.gettimeofday () +. duration_s) else None
        in
        let continue () =
          match deadline with None -> true | Some d -> Unix.gettimeofday () < d
        in
        if drive > 0 then begin
          let state = ref 123456789 in
          let next () =
            state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
            !state
          in
          let value = String.make 64 'v' in
          (* Pace in 50ms batches so the load tracks OPS_PER_S without
             a clock read per op. *)
          let batch = max 1 (drive / 20) in
          while continue () do
            let t0 = Unix.gettimeofday () in
            for _ = 1 to batch do
              let k = Evendb_ycsb.Keys.encode (next () mod 100_000) in
              if next () mod 10 < 3 then Db.put db k value else ignore (Db.get db k)
            done;
            let budget = float_of_int batch /. float_of_int drive in
            let elapsed = Unix.gettimeofday () -. t0 in
            if budget > elapsed then Unix.sleepf (budget -. elapsed)
          done
        end
        else while continue () do Unix.sleepf 0.2 done)
  in
  Cmd.v
    (Cmd.info "serve-telemetry"
       ~doc:
         "Open the store and serve its continuous telemetry over loopback HTTP: the windowed \
          sampler starts (journaling under telemetry/ in the store directory) and /metrics, \
          /stat.json, /series, /trace and /slow become scrapeable until the process exits.")
    Term.(const run $ fault_arg $ dir_arg $ port_arg $ host_arg $ duration_arg $ drive_arg)

let top_cmd =
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval-s" ] ~docv:"S" ~doc:"Refresh interval between frames (default 2).")
  in
  let iterations_arg =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Render N frames then exit (default 0 = run until interrupted).")
  in
  let no_clear_arg =
    Arg.(
      value & flag
      & info [ "no-clear" ]
          ~doc:"Append frames instead of clearing the screen (for logs and CI).")
  in
  let run fault_profile dir url interval_s iterations no_clear =
    let render samples =
      if not no_clear then print_string Tel.Top.clear_screen;
      print_string (Tel.Top.render samples);
      flush stdout
    in
    let frames = if iterations > 0 then iterations else max_int in
    match url with
    | Some url ->
      let host, port = parse_endpoint url in
      for i = 1 to frames do
        (match Tel.Http.get ~host ~port "/series?last=8" with
        | 200, body -> render (Tel.Sampler.samples_of_json body)
        | status, _ ->
          Printf.eprintf "evendb top: /series returned HTTP %d\n" status;
          exit 1
        | exception _ ->
          Printf.eprintf "evendb top: cannot reach http://%s:%d/series\n" host port;
          exit 1);
        if i < frames then Unix.sleepf interval_s
      done
    | None -> (
      match dir with
      | None ->
        prerr_endline "evendb top: a store DIR or --url URL is required";
        exit 2
      | Some dir ->
        with_db ?fault_profile dir (fun db ->
            let sampler = Db.start_sampler db in
            for _ = 1 to frames do
              Unix.sleepf interval_s;
              render (Tel.Sampler.samples ~last:8 sampler)
            done))
  in
  let dir_opt = Arg.(value & pos 0 (some string) None & info [] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal view of a store: ops/s and windowed p50/p95/p99 per op kind, top \
          stall causes, cache hit rates, hottest key prefixes, replication lag. Reads a \
          live endpoint with --url, or opens DIR and samples in-process.")
    Term.(
      const run $ fault_arg $ dir_opt $ url_arg $ interval_arg $ iterations_arg $ no_clear_arg)

let () =
  let doc = "EvenDB: a key-value store optimized for spatial locality" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "evendb" ~doc)
          [
            put_cmd;
            get_cmd;
            del_cmd;
            scan_cmd;
            load_cmd;
            stat_cmd;
            serve_telemetry_cmd;
            top_cmd;
            heat_cmd;
            trace_cmd;
            slow_cmd;
            checkpoint_cmd;
            fsck_cmd;
            snapshot_cmd;
            backup_cmd;
            restore_cmd;
            fence_cmd;
            promote_cmd;
          ]))
