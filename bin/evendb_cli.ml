(* evendb: a small command-line front end to the store.

     evendb put  <dir> <key> <value>
     evendb get  <dir> <key>
     evendb del  <dir> <key>
     evendb scan <dir> <low> <high> [--limit N]
     evendb load <dir> [--items N] [--dist zipf|composite|uniform]
     evendb stat <dir> [--json | --prometheus]
     evendb checkpoint <dir>
     evendb fsck <dir> [--repair]

   Every invocation except fsck opens (recovering if needed) and
   cleanly closes the store in <dir>; fsck works on the raw directory
   without opening the store. *)

open Cmdliner
module Db = Evendb_core.Db
module Env = Evendb_storage.Env
module Fault = Evendb_storage.Fault

let with_db ?fault_profile dir f =
  let faults = Option.map Fault.parse_profile fault_profile in
  let report () =
    Option.iter
      (fun p -> Printf.eprintf "injected faults (%s): %d\n" (Fault.profile_string p) (Fault.injected p))
      faults
  in
  match
    let db = Db.open_ (Env.disk ?faults dir) in
    Fun.protect ~finally:(fun () -> Db.close db) (fun () -> f db)
  with
  | v ->
    report ();
    v
  | exception Env.Io_error info ->
    (* Storage failures (injected or real) are part of the CLI's
       contract: report and exit non-zero, don't crash. *)
    report ();
    Printf.eprintf "evendb: %s\n" (Evendb_storage.Io_error.to_string info);
    exit 3

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-profile" ] ~docv:"SEED:RATE"
        ~doc:
          "Inject deterministic storage faults for this invocation: each append/fsync/rename \
           fails with probability RATE under a schedule derived from SEED (e.g. 42:0.01). An \
           optional third field adds read corruption: SEED:RATE:CORRUPT flips one byte per \
           read with probability CORRUPT (e.g. 42:0:0.05), which surfaces as typed corruption \
           errors and shows up in the io.corruptions metric. The injected count is printed to \
           stderr on exit.")

let dir_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR")
let key_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"KEY")
let value_arg = Arg.(required & pos 2 (some string) None & info [] ~docv:"VALUE")

let put_cmd =
  let run fault_profile dir key value = with_db ?fault_profile dir (fun db -> Db.put db key value) in
  Cmd.v (Cmd.info "put" ~doc:"Write one key")
    Term.(const run $ fault_arg $ dir_arg $ key_arg $ value_arg)

let get_cmd =
  let run fault_profile dir key =
    with_db ?fault_profile dir (fun db ->
        match Db.get db key with
        | Some v -> print_endline v
        | None ->
          prerr_endline "(not found)";
          exit 1)
  in
  Cmd.v (Cmd.info "get" ~doc:"Read one key") Term.(const run $ fault_arg $ dir_arg $ key_arg)

let del_cmd =
  let run fault_profile dir key = with_db ?fault_profile dir (fun db -> Db.delete db key) in
  Cmd.v (Cmd.info "del" ~doc:"Delete one key") Term.(const run $ fault_arg $ dir_arg $ key_arg)

let scan_cmd =
  let low = Arg.(required & pos 1 (some string) None & info [] ~docv:"LOW") in
  let high = Arg.(required & pos 2 (some string) None & info [] ~docv:"HIGH") in
  let limit = Arg.(value & opt int 1000 & info [ "limit" ] ~doc:"Max rows.") in
  let run fault_profile dir low high limit =
    with_db ?fault_profile dir (fun db ->
        List.iter
          (fun (k, v) -> Printf.printf "%s\t%s\n" k v)
          (Db.scan db ~limit ~low ~high ()))
  in
  Cmd.v (Cmd.info "scan" ~doc:"Atomic range query")
    Term.(const run $ fault_arg $ dir_arg $ low $ high $ limit)

let load_cmd =
  let items = Arg.(value & opt int 10_000 & info [ "items" ] ~doc:"Keys to load.") in
  let dist =
    Arg.(
      value
      & opt (enum [ ("zipf", `Zipf); ("composite", `Composite); ("uniform", `Uniform) ]) `Composite
      & info [ "dist" ] ~doc:"Key distribution.")
  in
  let run fault_profile dir items dist =
    let d =
      match dist with
      | `Zipf -> Evendb_ycsb.Workload.Zipf_simple 0.99
      | `Composite -> Evendb_ycsb.Workload.Zipf_composite 0.99
      | `Uniform -> Evendb_ycsb.Workload.Uniform
    in
    with_db ?fault_profile dir (fun db ->
        let sh = Evendb_ycsb.Workload.create_shared ~value_bytes:128 d ~items ~seed:1 in
        let w = Evendb_ycsb.Workload.thread sh ~id:0 in
        let keys = Evendb_ycsb.Workload.load_keys sh in
        List.iter (fun k -> Db.put db k (Evendb_ycsb.Workload.make_value w)) keys;
        Printf.printf "loaded %d keys\n" (List.length keys))
  in
  Cmd.v (Cmd.info "load" ~doc:"Bulk-load a synthetic dataset")
    Term.(const run $ fault_arg $ dir_arg $ items $ dist)

let stat_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Dump the full metrics registry (counters, gauges, op-latency timers, maintenance spans) as JSON.")
  in
  let prometheus =
    Arg.(value & flag & info [ "prometheus" ] ~doc:"Dump the metrics registry in Prometheus text format.")
  in
  let run fault_profile dir json prometheus =
    with_db ?fault_profile dir (fun db ->
        if json then print_string (Db.metrics_dump db `Json)
        else if prometheus then print_string (Db.metrics_dump db `Prometheus)
        else begin
          Printf.printf "chunks:              %d\n" (Db.chunk_count db);
          Printf.printf "resident munks:      %d\n" (Db.munk_count db);
          Printf.printf "funk log bytes:      %d\n" (Db.log_space db);
          Printf.printf "current epoch:       %d\n" (Db.current_epoch db)
        end)
  in
  Cmd.v
    (Cmd.info "stat" ~doc:"Store statistics (--json/--prometheus for the metrics registry)")
    Term.(const run $ fault_arg $ dir_arg $ json $ prometheus)

let checkpoint_cmd =
  let run fault_profile dir = with_db ?fault_profile dir (fun db -> Db.checkpoint db) in
  Cmd.v (Cmd.info "checkpoint" ~doc:"Force a durability checkpoint")
    Term.(const run $ fault_arg $ dir_arg)

let fsck_cmd =
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Fix what can be fixed. Untrusted files are quarantined under quarantine/ (never \
             deleted) before rebuilding from checksummed fragments; acked-and-synced data \
             survives.")
  in
  let run dir repair =
    (* Deliberately does not open the store: fsck must work on exactly
       the state a crashed or corrupted store cannot recover from. *)
    let env = Env.disk dir in
    let report = if repair then Evendb_check.Scrub.repair env else Evendb_check.Scrub.scrub env in
    Format.printf "%a" Evendb_check.Scrub.pp_report report;
    if not (Evendb_check.Scrub.is_clean report) then exit 2
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify on-disk integrity: every checksum (SSTable blocks, log records, metadata \
          payloads) and the manifest's cross-file references. Exits 2 if errors remain.")
    Term.(const run $ dir_arg $ repair)

let () =
  let doc = "EvenDB: a key-value store optimized for spatial locality" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "evendb" ~doc)
          [ put_cmd; get_cmd; del_cmd; scan_cmd; load_cmd; stat_cmd; checkpoint_cmd; fsck_cmd ]))
