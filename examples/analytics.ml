(* Mobile-analytics scenario (the paper's §1.1 motivation): ingest a
   heavy-tailed stream of app events keyed by [app id · timestamp],
   then answer per-app insight queries with range scans.

     dune exec examples/analytics.exe *)

module Db = Evendb_core.Db
open Evendb_ycsb

let () =
  let env = Evendb_storage.Env.memory () in
  let config =
    { (Evendb_core.Config.scaled ~factor:64 ()) with munk_cache_capacity = 16 }
  in
  let db = Db.open_ ~config env in

  (* Ingest: events arrive in time order, NOT key order — popular apps'
     key ranges stay hot, which is exactly what EvenDB's chunks
     exploit. *)
  let trace = Trace.create ~apps:500 ~value_bytes:256 ~seed:2024 () in
  let events = 30_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to events do
    let key, value = Trace.next_event trace in
    Db.put db key value
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "ingested %d events in %.2fs (%.0f Kops), write amplification %.2f\n"
    events dt (float_of_int events /. dt /. 1000.0) (Db.write_amplification db);

  (* Insight query 1: recent events of a popular app. *)
  let popular = Trace.sample_app trace in
  let low, high = Trace.recent_range trace popular ~events:20 in
  let recent = Db.scan db ~limit:20 ~low ~high () in
  Printf.printf "app %05d: fetched %d recent events\n" popular (List.length recent);

  (* Insight query 2: per-app event counts for a handful of apps —
     each count is one atomic prefix scan. *)
  List.iter
    (fun app ->
      let low, high = Trace.app_range trace app in
      let n = List.length (Db.scan db ~low ~high ()) in
      Printf.printf "app %05d: %d events total\n" app n)
    (List.init 5 (fun _ -> Trace.sample_app trace));

  (* The store keeps hot apps' chunks in memory (munks): *)
  Printf.printf "chunks=%d, resident munks=%d\n" (Db.chunk_count db) (Db.munk_count db);
  Db.close db
