(* Crash recovery (§3.5): asynchronous persistence recovers to a
   consistent prefix of the write history — if a later put survives,
   every earlier put does too. The in-memory storage environment
   simulates power failure by discarding unsynced data.

     dune exec examples/crash_recovery.exe *)

module Db = Evendb_core.Db
module Env = Evendb_storage.Env

let key i = Printf.sprintf "event%08d" i

let () =
  let env = Env.memory () in
  let config =
    { (Evendb_core.Config.scaled ~factor:64 ()) with checkpoint_every_puts = 0 }
  in
  let db = Db.open_ ~config env in

  (* Phase 1: writes covered by an explicit checkpoint. *)
  for i = 0 to 999 do
    Db.put db (key i) (Printf.sprintf "durable-%d" i)
  done;
  Db.checkpoint db;
  Printf.printf "wrote 1000 events, checkpointed at version %d (epoch %d)\n"
    (Db.current_version db) (Db.current_epoch db);

  (* Phase 2: more writes, never checkpointed. *)
  for i = 1000 to 1499 do
    Db.put db (key i) (Printf.sprintf "volatile-%d" i)
  done;
  Printf.printf "wrote 500 more events without a checkpoint\n";

  (* Power failure. *)
  Env.crash env;
  print_endline "-- crash --";

  (* Recovery: no WAL replay; chunk metadata is rebuilt from the funk
     files and data loads lazily. The second epoch begins. *)
  let db = Db.open_ ~config env in
  Printf.printf "recovered into epoch %d\n" (Db.current_epoch db);
  let survived = ref 0 and lost = ref 0 and last_survivor = ref (-1) in
  for i = 0 to 1499 do
    match Db.get db (key i) with
    | Some _ ->
      incr survived;
      last_survivor := i
    | None -> incr lost
  done;
  Printf.printf "%d events survived, %d lost\n" !survived !lost;

  (* The consistency guarantee: survivors form a prefix — nothing
     after a lost event is visible. *)
  let prefix_consistent = !last_survivor + 1 = !survived in
  Printf.printf "survivors form a prefix of the history: %b\n" prefix_consistent;
  assert prefix_consistent;
  assert (!survived >= 1000);

  (* Uncheckpointed writes of the new epoch behave normally. *)
  Db.put db "post-crash" "alive";
  assert (Db.get db "post-crash" = Some "alive");
  Db.close db;
  print_endline "crash_recovery done"
