(* Messaging-backend scenario (§1.1): conversations keyed by
   [user id · conversation id · message seq] — a Facebook-Messenger-like
   "last 100 messages of a conversation" query is a bounded scan over
   a composite-key prefix.

     dune exec examples/messenger.exe *)

module Db = Evendb_core.Db
open Evendb_util

let message_key ~user ~conversation ~seq =
  Printf.sprintf "u%06d/c%04d/m%08d" user conversation seq

let () =
  let env = Evendb_storage.Env.memory () in
  let db = Db.open_ ~config:(Evendb_core.Config.scaled ~factor:64 ()) env in
  let rng = Rng.create 7 in
  let users = 200 and conversations_per_user = 5 in

  (* Seed mailboxes: skewed activity — a few users chat a lot. *)
  let zipf = Zipf.create ~theta:0.9 users in
  let seqs = Hashtbl.create 128 in
  for _ = 1 to 50_000 do
    let user = Zipf.scramble users (Zipf.next zipf rng) in
    let conversation = Rng.int rng conversations_per_user in
    let id = (user * conversations_per_user) + conversation in
    let seq = Option.value ~default:0 (Hashtbl.find_opt seqs id) in
    Hashtbl.replace seqs id (seq + 1);
    Db.put db
      (message_key ~user ~conversation ~seq)
      (Printf.sprintf "msg %d in u%d/c%d: %s" seq user conversation (Rng.string rng 48))
  done;

  (* "Open the app": fetch the last 100 messages of a user's busiest
     conversation. Messages of one conversation are contiguous, so
     this is a single chunk read in the common case. *)
  let user = Zipf.scramble users (Zipf.next zipf rng) in
  let conversation = 0 in
  let low = message_key ~user ~conversation ~seq:0 in
  let high = Printf.sprintf "u%06d/c%04d/~" user conversation in
  let all = Db.scan db ~low ~high () in
  let last_100 =
    let n = List.length all in
    List.filteri (fun i _ -> i >= n - 100) all
  in
  Printf.printf "user %d, conversation %d: %d messages, showing last %d\n" user conversation
    (List.length all) (List.length last_100);
  (match List.rev last_100 with
  | (k, v) :: _ -> Printf.printf "most recent: %s -> %s...\n" k (String.sub v 0 (min 40 (String.length v)))
  | [] -> ());

  (* Unread counts across all conversations of the user: one scan. *)
  let ulow = Printf.sprintf "u%06d/" user and uhigh = Printf.sprintf "u%06d/~" user in
  Printf.printf "user %d has %d messages across all conversations\n" user
    (List.length (Db.scan db ~low:ulow ~high:uhigh ()));
  Db.close db
