(* Quickstart: open a store, write, read, scan, checkpoint, close.

     dune exec examples/quickstart.exe [dir]

   With a directory argument the store persists on disk; without one
   it runs on the in-memory environment. *)

module Db = Evendb_core.Db

let () =
  let db =
    match Sys.argv with
    | [| _; dir |] -> Db.open_dir dir
    | _ -> Db.open_ (Evendb_storage.Env.memory ())
  in

  (* Point writes and reads. *)
  Db.put db "fruit/apple" "red";
  Db.put db "fruit/banana" "yellow";
  Db.put db "fruit/cherry" "dark red";
  Db.put db "vegetable/carrot" "orange";

  (match Db.get db "fruit/banana" with
  | Some colour -> Printf.printf "banana is %s\n" colour
  | None -> print_endline "banana missing!");

  (* Updates replace; deletes hide. *)
  Db.put db "fruit/apple" "green";
  Db.delete db "vegetable/carrot";
  assert (Db.get db "fruit/apple" = Some "green");
  assert (Db.get db "vegetable/carrot" = None);

  (* Atomic range scan: a consistent snapshot of a key range. *)
  let fruit = Db.scan db ~low:"fruit/" ~high:"fruit/~" () in
  Printf.printf "%d fruits:\n" (List.length fruit);
  List.iter (fun (k, v) -> Printf.printf "  %s -> %s\n" k v) fruit;

  (* Durability: everything written before the checkpoint survives a
     crash (asynchronous persistence, recovered to a consistent
     prefix). *)
  Db.checkpoint db;

  Printf.printf "chunks=%d resident munks=%d write amplification=%.2f\n"
    (Db.chunk_count db) (Db.munk_count db) (Db.write_amplification db);
  Db.close db;
  print_endline "quickstart done"
