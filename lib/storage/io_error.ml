type info = { op : string; file : string; detail : string }

exception Io_error of info

let raise_io ~op ~file ~detail = raise (Io_error { op; file; detail })

let to_string { op; file; detail } = Printf.sprintf "I/O error: %s %S: %s" op file detail

let () =
  Printexc.register_printer (function
    | Io_error info -> Some (to_string info)
    | _ -> None)

let of_unix ~op ~file err = Io_error { op; file; detail = Unix.error_message err }
