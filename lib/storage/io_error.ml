type info = { op : string; file : string; detail : string }

exception Io_error of info

let raise_io ~op ~file ~detail = raise (Io_error { op; file; detail })

let to_string { op; file; detail } = Printf.sprintf "I/O error: %s %S: %s" op file detail

type corruption = { c_file : string; c_detail : string }

exception Corruption of corruption

let raise_corruption ~file ~detail = raise (Corruption { c_file = file; c_detail = detail })

let corruption_to_string { c_file; c_detail } =
  Printf.sprintf "corruption: %S: %s" c_file c_detail

let () =
  Printexc.register_printer (function
    | Io_error info -> Some (to_string info)
    | Corruption c -> Some (corruption_to_string c)
    | _ -> None)

let of_unix ~op ~file err = Io_error { op; file; detail = Unix.error_message err }
