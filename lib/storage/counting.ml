(* Io_stats as middleware: every byte that reaches the inner backend is
   accounted, split by file kind. Failed operations are not counted —
   the stats describe I/O that happened, and a torn append's partial
   bytes are below this layer's resolution. *)

let wrap st ~kind_of_name (Backend.B (module Inner) : Backend.packed) : Backend.packed =
  Backend.B
    (module struct
      type handle = Io_stats.kind * Inner.handle

      let backend_name = "counting+" ^ Inner.backend_name
      let create name = (kind_of_name name, Inner.create name)
      let open_append name = (kind_of_name name, Inner.open_append name)

      let append (kind, h) b ~pos ~len =
        Inner.append h b ~pos ~len;
        Io_stats.add_write ~kind st len

      let handle_size (_, h) = Inner.handle_size h

      let fsync (kind, h) =
        Inner.fsync h;
        Io_stats.add_fsync ~kind st

      let close (_, h) = Inner.close h
      let size = Inner.size

      let read_at name ~off ~len =
        let s = Inner.read_at name ~off ~len in
        Io_stats.add_read ~kind:(kind_of_name name) st len;
        s

      let pread name ~off ~len =
        let s = Inner.pread name ~off ~len in
        Io_stats.add_read ~kind:(kind_of_name name) st len;
        s

      let exists = Inner.exists
      let delete = Inner.delete
      let rename = Inner.rename
      let list_files = Inner.list_files

      let sync_namespace () =
        (* A whole-namespace sync is one aggregate (Meta) fsync. *)
        let synced = Inner.sync_namespace () in
        if synced then Io_stats.add_fsync st;
        synced

      let supports_crash = Inner.supports_crash
      let crash = Inner.crash
    end)
