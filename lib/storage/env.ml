exception Io_error = Io_error.Io_error
exception Corruption = Io_error.Corruption

module type BACKEND = Backend.BACKEND

(* Files that [fsck --repair] moved aside live under this prefix; the
   engines' recovery sweeps and the scrubber must leave them alone. *)
let quarantine_prefix = "quarantine/"

let quarantined name = quarantine_prefix ^ name

let is_quarantined name =
  (* The bare directory itself shows up in disk listings. *)
  name = "quarantine"
  || String.length name >= String.length quarantine_prefix
     && String.sub name 0 (String.length quarantine_prefix) = quarantine_prefix

(* Published point-in-time snapshots live under [snapshots/<id>/...];
   recovery sweeps and the scrubber treat the prefix as a separate
   namespace (a snapshot member is never an orphan of the live store). *)
let snapshots_prefix = "snapshots/"

let snapshot_member ~id name = snapshots_prefix ^ id ^ "/" ^ name

let is_snapshot name =
  name = "snapshots"
  || String.length name >= String.length snapshots_prefix
     && String.sub name 0 (String.length snapshots_prefix) = snapshots_prefix

(* Continuous-telemetry artifacts (the windowed metrics journal) live
   under [telemetry/]: observational history, not data — recovery
   sweeps and the live store's orphan logic leave the prefix alone, and
   losing it can never lose user data. *)
let telemetry_prefix = "telemetry/"

let telemetry_member name = telemetry_prefix ^ name

let is_telemetry name =
  name = "telemetry"
  || String.length name >= String.length telemetry_prefix
     && String.sub name 0 (String.length telemetry_prefix) = telemetry_prefix

let split_snapshot name =
  if not (is_snapshot name) || name = "snapshots" then None
  else
    let rest =
      String.sub name (String.length snapshots_prefix)
        (String.length name - String.length snapshots_prefix)
    in
    match String.index_opt rest '/' with
    | None -> None (* the bare per-snapshot directory *)
    | Some i ->
      Some (String.sub rest 0 i, String.sub rest (i + 1) (String.length rest - i - 1))

(* An open file: the backend stack's handle packed with its module, so
   one [file] type covers every backend composition. *)
type fhandle = FH : (module Backend.BACKEND with type handle = 'h) * 'h -> fhandle

type t = {
  backend : Backend.packed; (* full middleware stack: counting → [fault] → base *)
  st : Io_stats.t;
  faults : Fault.plan option;
  ns_mutex : Mutex.t; (* protects [open_files] and [next_id] *)
  open_files : (int, file) Hashtbl.t; (* by handle id, for fsync_all *)
  mutable next_id : int;
  mutable generation : int; (* bumped by [crash] to invalidate handles *)
  corruptions : int Atomic.t; (* checksum/structure failures detected on reads *)
  log_resyncs : int Atomic.t; (* garbage regions skipped by log CRC resync *)
  mutable block_cache : Evendb_cache.Block_cache.t option;
      (* shared sstable-block cache; [sub] children inherit it *)
  cache_space : int; (* disambiguates file names across sub-namespaces *)
}

and file = {
  env : t;
  name : string;
  id : int;
  gen : int;
  fh : fhandle;
  f_mutex : Mutex.t;
  mutable closed : bool;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let stats t = t.st
let faults t = t.faults
let faults_injected t = match t.faults with None -> 0 | Some p -> Fault.injected p

(* Classify a file by its name so Io_stats can split bytes per kind.
   All engines share the conventions: record logs (funk logs, WALs)
   end in ".log", SSTables in ".sst"; anything else (manifests,
   checkpoint/recovery markers) is metadata. *)
let kind_of_name name : Io_stats.kind =
  if Filename.check_suffix name ".log" then Io_stats.Log
  else if Filename.check_suffix name ".sst" then Io_stats.Sstable
  else Io_stats.Meta

(* Cache-key namespaces are process-global so any two environments —
   related by [sub] or not — sharing one block cache can never collide
   on equal file names. *)
let next_cache_space = Atomic.make 0

let make ?faults base =
  let st = Io_stats.create () in
  let base = match faults with None -> base | Some p -> Fault.wrap p base in
  {
    backend = Counting.wrap st ~kind_of_name base;
    st;
    faults;
    ns_mutex = Mutex.create ();
    open_files = Hashtbl.create 64;
    next_id = 0;
    generation = 0;
    corruptions = Atomic.make 0;
    log_resyncs = Atomic.make 0;
    block_cache = None;
    cache_space = Atomic.fetch_and_add next_cache_space 1;
  }

let note_corruption t = Atomic.incr t.corruptions
let corruptions_detected t = Atomic.get t.corruptions
let note_log_resync t = Atomic.incr t.log_resyncs
let log_resyncs t = Atomic.get t.log_resyncs

let disk ?faults dir = make ?faults (Backend.disk dir)
let memory ?faults () = make ?faults (Backend.memory ())
let of_backend ?faults base = make ?faults base

(* A sub-environment layers a fresh Counting (its own Io_stats) over a
   name-prefixed view of the parent's FULL stack, so the parent's
   accounting and fault plan keep seeing every byte the child does —
   aggregate write-amp and deterministic injection stay correct for
   sharded stores. *)
let sub t ~prefix =
  let child = make (Backend.prefixed ~prefix t.backend) in
  (* The block cache is shared downward: all shards of a store draw
     from the parent's one budget (each child still has its own cache
     space, so equal names in sibling namespaces stay distinct). *)
  child.block_cache <- t.block_cache;
  child

let block_cache t = t.block_cache
let cache_space t = t.cache_space
let set_block_cache t bc = t.block_cache <- bc

(* Install a fresh shared cache unless one was inherited or installed
   already — a [Db] opened on a shard's sub-environment must join the
   store-wide cache, not shadow it. *)
let install_block_cache t ~capacity_bytes =
  match t.block_cache with
  | Some _ -> ()
  | None ->
    if capacity_bytes > 0 then
      t.block_cache <- Some (Evendb_cache.Block_cache.create ~capacity_bytes ())

let backend_name t = match t.backend with Backend.B (module M) -> M.backend_name
let supports_crash t = match t.backend with Backend.B (module M) -> M.supports_crash

(* Historically "memory" and "can simulate crashes" coincide; custom
   backends inherit whichever durability model they implement. *)
let is_memory t = supports_crash t

let check_live file =
  if file.closed then failwith "Env: operation on closed file";
  if file.gen <> file.env.generation then
    failwith "Env: stale file handle (environment crashed)"

let register t name fh =
  with_lock t.ns_mutex (fun () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let file =
        { env = t; name; id; gen = t.generation; fh; f_mutex = Mutex.create (); closed = false }
      in
      Hashtbl.replace t.open_files id file;
      file)

let invalidate_cached_blocks t name =
  match t.block_cache with
  | None -> ()
  | Some bc ->
    Evendb_cache.Block_cache.invalidate_file bc ~space:t.cache_space ~file:name

let create t name =
  (* [create] truncates: any cached blocks describe the old contents. *)
  invalidate_cached_blocks t name;
  match t.backend with
  | Backend.B (module M) -> register t name (FH ((module M), M.create name))

let open_append t name =
  match t.backend with
  | Backend.B (module M) -> register t name (FH ((module M), M.open_append name))

let append_bytes file b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Env.append_bytes: slice out of bounds";
  with_lock file.f_mutex (fun () ->
      check_live file;
      match file.fh with FH ((module M), h) -> M.append h b ~pos ~len)

let append file s =
  append_bytes file (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let file_size file =
  with_lock file.f_mutex (fun () ->
      match file.fh with FH ((module M), h) -> M.handle_size h)

let flush _file = ()

let fsync file =
  with_lock file.f_mutex (fun () ->
      check_live file;
      match file.fh with FH ((module M), h) -> M.fsync h)

let close_file file =
  with_lock file.f_mutex (fun () ->
      if not file.closed then begin
        file.closed <- true;
        (match file.fh with FH ((module M), h) -> M.close h);
        with_lock file.env.ns_mutex (fun () -> Hashtbl.remove file.env.open_files file.id)
      end)

let size t name = match t.backend with Backend.B (module M) -> M.size name

let read_at t name ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Env.read_at: negative range";
  match t.backend with Backend.B (module M) -> M.read_at name ~off ~len

let read_all t name =
  let n = size t name in
  if n = 0 then "" else read_at t name ~off:0 ~len:n

let pread t name ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Env.pread: negative range";
  match t.backend with Backend.B (module M) -> M.pread name ~off ~len

let exists t name = match t.backend with Backend.B (module M) -> M.exists name

let delete t name =
  invalidate_cached_blocks t name;
  match t.backend with Backend.B (module M) -> M.delete name

let rename t ~old_name ~new_name =
  invalidate_cached_blocks t old_name;
  invalidate_cached_blocks t new_name;
  match t.backend with Backend.B (module M) -> M.rename ~old_name ~new_name

let list_files t = match t.backend with Backend.B (module M) -> M.list_files ()

let space_used t =
  List.fold_left
    (fun acc name -> match size t name with n -> acc + n | exception Not_found -> acc)
    0 (list_files t)

let fsync_all t =
  match t.backend with
  | Backend.B (module M) ->
    if not (M.sync_namespace ()) then begin
      let files =
        with_lock t.ns_mutex (fun () ->
            Hashtbl.fold (fun _ f acc -> f :: acc) t.open_files [])
      in
      (* Closed/stale handles are skipped; real I/O failures propagate
         so a checkpoint never claims durability it doesn't have. *)
      List.iter (fun f -> try fsync f with Failure _ -> ()) files
    end

let crash t =
  match t.backend with
  | Backend.B (module M) ->
    M.crash ();
    (* Unsynced suffixes just vanished; cached blocks of this namespace
       may describe bytes that no longer exist. *)
    (match t.block_cache with
    | Some bc -> Evendb_cache.Block_cache.invalidate_space bc ~space:t.cache_space
    | None -> ());
    with_lock t.ns_mutex (fun () ->
        Hashtbl.reset t.open_files;
        t.generation <- t.generation + 1)
