type mem_file = {
  mutable data : Bytes.t;
  mutable len : int;
  mutable synced : int;
  mf_mutex : Mutex.t;
}

type backend =
  | Disk of { dir : string; read_fds : (string, Unix.file_descr) Hashtbl.t }
  | Memory of (string, mem_file) Hashtbl.t

type t = {
  backend : backend;
  st : Io_stats.t;
  ns_mutex : Mutex.t; (* protects the namespace tables and read fds *)
  open_files : (int, file) Hashtbl.t; (* by handle id, for fsync_all *)
  mutable next_id : int;
  mutable generation : int; (* bumped by [crash] to invalidate handles *)
}

and file = {
  env : t;
  name : string;
  kind : Io_stats.kind;
  id : int;
  gen : int;
  impl : file_impl;
  f_mutex : Mutex.t;
  mutable closed : bool;
}

and file_impl =
  | Dfile of { fd : Unix.file_descr; mutable dpos : int }
  | Mfile of mem_file

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let stats t = t.st

(* Classify a file by its name so Io_stats can split bytes per kind.
   All engines share the conventions: record logs (funk logs, WALs)
   end in ".log", SSTables in ".sst"; anything else (manifests,
   checkpoint/recovery markers) is metadata. *)
let kind_of_name name : Io_stats.kind =
  if Filename.check_suffix name ".log" then Io_stats.Log
  else if Filename.check_suffix name ".sst" then Io_stats.Sstable
  else Io_stats.Meta

let is_memory t = match t.backend with Memory _ -> true | Disk _ -> false

let disk dir =
  let rec mkdir_p d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mkdir_p dir;
  {
    backend = Disk { dir; read_fds = Hashtbl.create 64 };
    st = Io_stats.create ();
    ns_mutex = Mutex.create ();
    open_files = Hashtbl.create 64;
    next_id = 0;
    generation = 0;
  }

let memory () =
  {
    backend = Memory (Hashtbl.create 64);
    st = Io_stats.create ();
    ns_mutex = Mutex.create ();
    open_files = Hashtbl.create 64;
    next_id = 0;
    generation = 0;
  }

let path dir name = Filename.concat dir name

let check_live file =
  if file.closed then failwith "Env: operation on closed file";
  if file.gen <> file.env.generation then
    failwith "Env: stale file handle (environment crashed)"

let new_mem_file () =
  { data = Bytes.create 256; len = 0; synced = 0; mf_mutex = Mutex.create () }

let register t name impl =
  with_lock t.ns_mutex (fun () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let file =
        {
          env = t;
          name;
          kind = kind_of_name name;
          id;
          gen = t.generation;
          impl;
          f_mutex = Mutex.create ();
          closed = false;
        }
      in
      Hashtbl.replace t.open_files id file;
      file)

let drop_read_fd t name =
  match t.backend with
  | Memory _ -> ()
  | Disk d -> (
    match Hashtbl.find_opt d.read_fds name with
    | None -> ()
    | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Hashtbl.remove d.read_fds name)

let create t name =
  match t.backend with
  | Disk d ->
    with_lock t.ns_mutex (fun () -> drop_read_fd t name);
    let fd =
      Unix.openfile (path d.dir name) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    register t name (Dfile { fd; dpos = 0 })
  | Memory files ->
    let mf = new_mem_file () in
    with_lock t.ns_mutex (fun () -> Hashtbl.replace files name mf);
    register t name (Mfile mf)

let open_append t name =
  match t.backend with
  | Disk d ->
    let fd = Unix.openfile (path d.dir name) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
    let dpos = Unix.lseek fd 0 Unix.SEEK_END in
    register t name (Dfile { fd; dpos })
  | Memory files ->
    let mf =
      with_lock t.ns_mutex (fun () ->
          match Hashtbl.find_opt files name with
          | Some mf -> mf
          | None ->
            let mf = new_mem_file () in
            Hashtbl.replace files name mf;
            mf)
    in
    register t name (Mfile mf)

let mem_ensure mf extra =
  let need = mf.len + extra in
  if need > Bytes.length mf.data then begin
    let cap = max need (2 * Bytes.length mf.data) in
    let data = Bytes.create cap in
    Bytes.blit mf.data 0 data 0 mf.len;
    mf.data <- data
  end

let rec write_fully fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_fully fd b (pos + n) (len - n)
  end

let append_bytes file b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Env.append_bytes: slice out of bounds";
  with_lock file.f_mutex (fun () ->
      check_live file;
      (match file.impl with
      | Dfile d ->
        write_fully d.fd b pos len;
        d.dpos <- d.dpos + len
      | Mfile mf ->
        with_lock mf.mf_mutex (fun () ->
            mem_ensure mf len;
            Bytes.blit b pos mf.data mf.len len;
            mf.len <- mf.len + len));
      Io_stats.add_write ~kind:file.kind file.env.st len)

let append file s =
  append_bytes file (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let file_size file =
  with_lock file.f_mutex (fun () ->
      match file.impl with
      | Dfile d -> d.dpos
      | Mfile mf -> with_lock mf.mf_mutex (fun () -> mf.len))

let flush _file = ()

let fsync file =
  with_lock file.f_mutex (fun () ->
      check_live file;
      (match file.impl with
      | Dfile d -> Unix.fsync d.fd
      | Mfile mf -> with_lock mf.mf_mutex (fun () -> mf.synced <- mf.len));
      Io_stats.add_fsync ~kind:file.kind file.env.st)

let close_file file =
  with_lock file.f_mutex (fun () ->
      if not file.closed then begin
        file.closed <- true;
        (match file.impl with
        | Dfile d -> ( try Unix.close d.fd with Unix.Unix_error _ -> ())
        | Mfile _ -> ());
        with_lock file.env.ns_mutex (fun () -> Hashtbl.remove file.env.open_files file.id)
      end)

let find_mem files name =
  match Hashtbl.find_opt files name with
  | Some mf -> mf
  | None -> raise Not_found

let size t name =
  match t.backend with
  | Disk d ->
    let st =
      try Unix.stat (path d.dir name) with Unix.Unix_error (Unix.ENOENT, _, _) -> raise Not_found
    in
    st.Unix.st_size
  | Memory files ->
    let mf = with_lock t.ns_mutex (fun () -> find_mem files name) in
    with_lock mf.mf_mutex (fun () -> mf.len)

let read_at t name ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Env.read_at: negative range";
  let result =
    match t.backend with
    | Disk d ->
      with_lock t.ns_mutex (fun () ->
          let fd =
            match Hashtbl.find_opt d.read_fds name with
            | Some fd -> fd
            | None ->
              let fd =
                try Unix.openfile (path d.dir name) [ Unix.O_RDONLY ] 0
                with Unix.Unix_error (Unix.ENOENT, _, _) -> raise Not_found
              in
              Hashtbl.replace d.read_fds name fd;
              fd
          in
          let file_len = (Unix.fstat fd).Unix.st_size in
          if off + len > file_len then invalid_arg "Env.read_at: range beyond end of file";
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          let b = Bytes.create len in
          let rec read_fully pos remaining =
            if remaining > 0 then begin
              let n = Unix.read fd b pos remaining in
              if n = 0 then invalid_arg "Env.read_at: unexpected end of file";
              read_fully (pos + n) (remaining - n)
            end
          in
          read_fully 0 len;
          Bytes.unsafe_to_string b)
    | Memory files ->
      let mf = with_lock t.ns_mutex (fun () -> find_mem files name) in
      with_lock mf.mf_mutex (fun () ->
          if off + len > mf.len then invalid_arg "Env.read_at: range beyond end of file";
          Bytes.sub_string mf.data off len)
  in
  Io_stats.add_read ~kind:(kind_of_name name) t.st len;
  result

let read_all t name =
  let n = size t name in
  if n = 0 then "" else read_at t name ~off:0 ~len:n

let exists t name =
  match t.backend with
  | Disk d -> Sys.file_exists (path d.dir name)
  | Memory files -> with_lock t.ns_mutex (fun () -> Hashtbl.mem files name)

let delete t name =
  match t.backend with
  | Disk d ->
    with_lock t.ns_mutex (fun () -> drop_read_fd t name);
    (try Unix.unlink (path d.dir name) with Unix.Unix_error (Unix.ENOENT, _, _) -> ())
  | Memory files -> with_lock t.ns_mutex (fun () -> Hashtbl.remove files name)

let rename t ~old_name ~new_name =
  match t.backend with
  | Disk d ->
    with_lock t.ns_mutex (fun () ->
        drop_read_fd t old_name;
        drop_read_fd t new_name);
    Unix.rename (path d.dir old_name) (path d.dir new_name)
  | Memory files ->
    with_lock t.ns_mutex (fun () ->
        let mf = find_mem files old_name in
        Hashtbl.remove files old_name;
        Hashtbl.replace files new_name mf)

let list_files t =
  match t.backend with
  | Disk d ->
    Array.to_list (Sys.readdir d.dir)
  | Memory files ->
    with_lock t.ns_mutex (fun () -> Hashtbl.fold (fun name _ acc -> name :: acc) files [])

let space_used t =
  List.fold_left
    (fun acc name -> match size t name with n -> acc + n | exception Not_found -> acc)
    0 (list_files t)

let fsync_all t =
  match t.backend with
  | Disk _ ->
    let files = with_lock t.ns_mutex (fun () -> Hashtbl.fold (fun _ f acc -> f :: acc) t.open_files []) in
    List.iter (fun f -> try fsync f with Failure _ -> ()) files
  | Memory files ->
    with_lock t.ns_mutex (fun () ->
        Hashtbl.iter
          (fun _ mf -> with_lock mf.mf_mutex (fun () -> mf.synced <- mf.len))
          files);
    Io_stats.add_fsync t.st

let crash t =
  match t.backend with
  | Disk _ -> invalid_arg "Env.crash: only supported by the memory backend"
  | Memory files ->
    with_lock t.ns_mutex (fun () ->
        Hashtbl.iter
          (fun _ mf -> with_lock mf.mf_mutex (fun () -> mf.len <- mf.synced))
          files;
        Hashtbl.reset t.open_files;
        t.generation <- t.generation + 1)
