(** Typed storage failures.

    Every failure a storage backend can hit — a real [Unix] error on
    the disk backend, or an injected fault from the {!Fault} middleware
    — surfaces as one exception, [Io_error], carrying the operation,
    the file and a human-readable detail. Engines catch it to fail the
    current operation cleanly (never to corrupt state); everything else
    ([Not_found] for missing files, [Invalid_argument] for bad ranges)
    keeps its historical meaning. *)

type info = { op : string; file : string; detail : string }

exception Io_error of info

val raise_io : op:string -> file:string -> detail:string -> 'a

val to_string : info -> string

val of_unix : op:string -> file:string -> Unix.error -> exn
(** Wrap a [Unix.error] (the disk backend's failure mode). *)

(** {2 Corruption}

    [Io_error] means the device refused an operation; [Corruption]
    means the device answered but the bytes are wrong — a checksum
    mismatch, an impossible offset, a malformed structure. Readers
    raise it instead of [Invalid_argument] so engines can degrade
    (fall back to a surviving replica, count the event) rather than
    abort, and so [fsck] can report it uniformly. *)

type corruption = { c_file : string; c_detail : string }

exception Corruption of corruption

val raise_corruption : file:string -> detail:string -> 'a

val corruption_to_string : corruption -> string
