open Evendb_util
open Io_error

type plan = {
  seed : int;
  rate : float;
  torn_fraction : float;
  corrupt_rate : float;
  rng : Rng.t;
  rng_mutex : Mutex.t;
  armed : bool Atomic.t;
  inj_append : int Atomic.t;
  inj_torn : int Atomic.t;
  inj_fsync : int Atomic.t;
  inj_rename : int Atomic.t;
  inj_corrupt : int Atomic.t;
}

let plan ?(torn_fraction = 0.5) ?(corrupt_rate = 0.0) ~seed ~rate () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Fault.plan: rate must be in [0,1]";
  if torn_fraction < 0.0 || torn_fraction > 1.0 then
    invalid_arg "Fault.plan: torn_fraction must be in [0,1]";
  if corrupt_rate < 0.0 || corrupt_rate > 1.0 then
    invalid_arg "Fault.plan: corrupt_rate must be in [0,1]";
  {
    seed;
    rate;
    torn_fraction;
    corrupt_rate;
    rng = Rng.create seed;
    rng_mutex = Mutex.create ();
    armed = Atomic.make true;
    inj_append = Atomic.make 0;
    inj_torn = Atomic.make 0;
    inj_fsync = Atomic.make 0;
    inj_rename = Atomic.make 0;
    inj_corrupt = Atomic.make 0;
  }

let seed t = t.seed
let rate t = t.rate
let set_armed t armed = Atomic.set t.armed armed

let injected t =
  Atomic.get t.inj_append + Atomic.get t.inj_torn + Atomic.get t.inj_fsync
  + Atomic.get t.inj_rename + Atomic.get t.inj_corrupt

let counts t =
  [
    ("append", Atomic.get t.inj_append);
    ("torn", Atomic.get t.inj_torn);
    ("fsync", Atomic.get t.inj_fsync);
    ("rename", Atomic.get t.inj_rename);
    ("corrupt", Atomic.get t.inj_corrupt);
  ]

let parse_profile s =
  let bad () =
    invalid_arg
      "Fault.parse_profile: expected \"seed:rate[:corrupt_rate]\" with rates in [0,1]"
  in
  match String.split_on_char ':' s with
  | [ seed; rate ] -> (
    match (int_of_string_opt seed, float_of_string_opt rate) with
    | Some seed, Some rate when rate >= 0.0 && rate <= 1.0 -> plan ~seed ~rate ()
    | _ -> bad ())
  | [ seed; rate; corrupt ] -> (
    match (int_of_string_opt seed, float_of_string_opt rate, float_of_string_opt corrupt) with
    | Some seed, Some rate, Some corrupt_rate
      when rate >= 0.0 && rate <= 1.0 && corrupt_rate >= 0.0 && corrupt_rate <= 1.0 ->
      plan ~seed ~rate ~corrupt_rate ()
    | _ -> bad ())
  | _ -> bad ()

let profile_string t =
  if t.corrupt_rate > 0.0 then Printf.sprintf "%d:%g:%g" t.seed t.rate t.corrupt_rate
  else Printf.sprintf "%d:%g" t.seed t.rate

(* One locked draw per decision keeps the schedule deterministic for a
   given seed and sequence of operations, across threads. *)
let draw t =
  Mutex.lock t.rng_mutex;
  let x = Rng.float t.rng in
  Mutex.unlock t.rng_mutex;
  x

let fires t = Atomic.get t.armed && t.rate > 0.0 && draw t < t.rate

(* Corruption draws are gated on [corrupt_rate > 0.0] before touching
   the RNG, so plans without corruption keep their exact historical
   fault schedules. *)
let corrupt_fires t = Atomic.get t.armed && t.corrupt_rate > 0.0 && draw t < t.corrupt_rate

let draw_int t n =
  Mutex.lock t.rng_mutex;
  let k = Rng.int t.rng n in
  Mutex.unlock t.rng_mutex;
  k

(* [Some k] = write only the first [k] bytes, then fail (a torn tail). *)
let append_decision t ~len =
  if not (fires t) then None
  else if len > 1 && draw t < t.torn_fraction then begin
    Atomic.incr t.inj_torn;
    Mutex.lock t.rng_mutex;
    let k = 1 + Rng.int t.rng (len - 1) in
    Mutex.unlock t.rng_mutex;
    Some (Some k)
  end
  else begin
    Atomic.incr t.inj_append;
    Some None
  end

(* ------------------------------------------------------------------ *)
(* Middleware: wrap any backend with the fault schedule. Handles carry
   their file name so injected errors are attributable.                *)

let wrap p (Backend.B (module Inner) : Backend.packed) : Backend.packed =
  Backend.B
    (module struct
      type handle = string * Inner.handle

      let backend_name = Printf.sprintf "faulty(%s)+%s" (profile_string p) Inner.backend_name
      let create name = (name, Inner.create name)
      let open_append name = (name, Inner.open_append name)

      let append (name, h) b ~pos ~len =
        match append_decision p ~len with
        | None -> Inner.append h b ~pos ~len
        | Some None -> raise_io ~op:"append" ~file:name ~detail:"injected append failure"
        | Some (Some k) ->
          Inner.append h b ~pos ~len:k;
          raise_io ~op:"append" ~file:name
            ~detail:(Printf.sprintf "injected torn write (%d/%d bytes)" k len)

      let handle_size (_, h) = Inner.handle_size h

      (* The corrupt mode flips one byte of the returned slice (the
         on-disk bytes are untouched): it models a bit-rot read, and
         exercises checksum verification + the degraded read paths. *)
      let read_at name ~off ~len =
        let s = Inner.read_at name ~off ~len in
        if len > 0 && corrupt_fires p then begin
          Atomic.incr p.inj_corrupt;
          let i = draw_int p len in
          let mask = 1 + draw_int p 255 in
          let b = Bytes.of_string s in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
          Bytes.unsafe_to_string b
        end
        else s

      (* Same decision sequence as [read_at] (one corrupt draw, then
         position + mask), flipped on a private copy — never on the
         returned slice, which may be an mmap window onto the real
         file. *)
      let pread name ~off ~len =
        let s = Inner.pread name ~off ~len in
        if len > 0 && corrupt_fires p then begin
          Atomic.incr p.inj_corrupt;
          let i = draw_int p len in
          let mask = 1 + draw_int p 255 in
          let b = Evendb_util.Bigslice.copy s in
          Evendb_util.Bigslice.set b i
            (Char.chr (Char.code (Evendb_util.Bigslice.get b i) lxor mask));
          b
        end
        else s

      let fsync (name, h) =
        if fires p then begin
          Atomic.incr p.inj_fsync;
          raise_io ~op:"fsync" ~file:name ~detail:"injected fsync failure"
        end;
        Inner.fsync h

      let close (_, h) = Inner.close h
      let size = Inner.size
      let exists = Inner.exists
      let delete = Inner.delete

      let rename ~old_name ~new_name =
        if fires p then begin
          Atomic.incr p.inj_rename;
          raise_io ~op:"rename" ~file:old_name ~detail:"injected rename failure"
        end;
        Inner.rename ~old_name ~new_name

      let list_files = Inner.list_files

      let sync_namespace () =
        if fires p then begin
          Atomic.incr p.inj_fsync;
          raise_io ~op:"fsync_all" ~file:"*" ~detail:"injected fsync failure"
        end;
        Inner.sync_namespace ()

      let supports_crash = Inner.supports_crash
      let crash = Inner.crash
    end)
