open Io_error

module type BACKEND = sig
  type handle

  val backend_name : string
  val create : string -> handle
  val open_append : string -> handle
  val append : handle -> bytes -> pos:int -> len:int -> unit
  val handle_size : handle -> int
  val fsync : handle -> unit
  val close : handle -> unit
  val size : string -> int
  val read_at : string -> off:int -> len:int -> string
  val pread : string -> off:int -> len:int -> Evendb_util.Bigslice.t
  val exists : string -> bool
  val delete : string -> unit
  val rename : old_name:string -> new_name:string -> unit
  val list_files : unit -> string list
  val sync_namespace : unit -> bool
  val supports_crash : bool
  val crash : unit -> unit
end

type packed = B : (module BACKEND with type handle = 'h) -> packed

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Memory backend: an in-process filesystem that models crashes — each
   file tracks its last-synced length and [crash] drops every unsynced
   suffix.                                                             *)

type mem_file = {
  mutable data : Bytes.t;
  mutable len : int;
  mutable synced : int;
  mf_mutex : Mutex.t;
}

let memory_of_files init : packed =
  let files : (string, mem_file) Hashtbl.t = Hashtbl.create 64 in
  let ns_mutex = Mutex.create () in
  List.iter
    (fun (name, contents) ->
      let len = String.length contents in
      let data = Bytes.create (max 256 len) in
      Bytes.blit_string contents 0 data 0 len;
      Hashtbl.replace files name { data; len; synced = len; mf_mutex = Mutex.create () })
    init;
  let new_mem_file () =
    { data = Bytes.create 256; len = 0; synced = 0; mf_mutex = Mutex.create () }
  in
  let find name =
    match with_lock ns_mutex (fun () -> Hashtbl.find_opt files name) with
    | Some mf -> mf
    | None -> raise Not_found
  in
  let mem_ensure mf extra =
    let need = mf.len + extra in
    if need > Bytes.length mf.data then begin
      let cap = max need (2 * Bytes.length mf.data) in
      let data = Bytes.create cap in
      Bytes.blit mf.data 0 data 0 mf.len;
      mf.data <- data
    end
  in
  B
    (module struct
      type handle = mem_file

      let backend_name = "memory"

      let create name =
        let mf = new_mem_file () in
        with_lock ns_mutex (fun () -> Hashtbl.replace files name mf);
        mf

      let open_append name =
        with_lock ns_mutex (fun () ->
            match Hashtbl.find_opt files name with
            | Some mf -> mf
            | None ->
              let mf = new_mem_file () in
              Hashtbl.replace files name mf;
              mf)

      let append mf b ~pos ~len =
        with_lock mf.mf_mutex (fun () ->
            mem_ensure mf len;
            Bytes.blit b pos mf.data mf.len len;
            mf.len <- mf.len + len)

      let handle_size mf = with_lock mf.mf_mutex (fun () -> mf.len)
      let fsync mf = with_lock mf.mf_mutex (fun () -> mf.synced <- mf.len)
      let close _mf = ()
      let size name = handle_size (find name)

      let read_at name ~off ~len =
        let mf = find name in
        with_lock mf.mf_mutex (fun () ->
            if off + len > mf.len then
              invalid_arg "Env.read_at: range beyond end of file";
            Bytes.sub_string mf.data off len)

      (* Partial read mirroring [Disk.pread]: the slice is a private
         copy (the backing [Bytes.t] is mutable), taken under the same
         lock and with the same bounds contract as [read_at], so the
         block cache behaves identically under crash simulation. *)
      let pread name ~off ~len =
        let mf = find name in
        with_lock mf.mf_mutex (fun () ->
            if off + len > mf.len then
              invalid_arg "Env.read_at: range beyond end of file";
            let slice = Evendb_util.Bigslice.create len in
            Evendb_util.Bigslice.blit_from_bytes mf.data ~src_off:off slice
              ~dst_off:0 ~len;
            slice)

      let exists name = with_lock ns_mutex (fun () -> Hashtbl.mem files name)
      let delete name = with_lock ns_mutex (fun () -> Hashtbl.remove files name)

      let rename ~old_name ~new_name =
        with_lock ns_mutex (fun () ->
            match Hashtbl.find_opt files old_name with
            | None -> raise Not_found
            | Some mf ->
              Hashtbl.remove files old_name;
              Hashtbl.replace files new_name mf)

      let list_files () =
        with_lock ns_mutex (fun () ->
            Hashtbl.fold (fun name _ acc -> name :: acc) files [])

      let sync_namespace () =
        with_lock ns_mutex (fun () ->
            Hashtbl.iter
              (fun _ mf -> with_lock mf.mf_mutex (fun () -> mf.synced <- mf.len))
              files);
        true

      let supports_crash = true

      let crash () =
        with_lock ns_mutex (fun () ->
            Hashtbl.iter
              (fun _ mf -> with_lock mf.mf_mutex (fun () -> mf.len <- mf.synced))
              files)
    end)

let memory () : packed = memory_of_files []

(* ------------------------------------------------------------------ *)
(* Mutation journal: a middleware that records every state-changing
   backend operation, so the crash-point explorer can reconstruct the
   filesystem as it would look if power failed after any prefix of the
   history. Metadata operations (create/delete/rename) are durable at
   the point they happen — the same contract the memory and disk
   backends present — so a crash only loses unsynced appended bytes. *)

type journal_op =
  | J_create of string
  | J_open of string
  | J_append of string * string
  | J_fsync of string
  | J_delete of string
  | J_rename of string * string
  | J_sync_all

type journal = {
  j_mutex : Mutex.t;
  mutable j_ops : journal_op array;
  mutable j_len : int;
}

let new_journal () =
  { j_mutex = Mutex.create (); j_ops = Array.make 64 J_sync_all; j_len = 0 }

let j_push j op =
  with_lock j.j_mutex (fun () ->
      if j.j_len = Array.length j.j_ops then begin
        let ops = Array.make (2 * j.j_len) J_sync_all in
        Array.blit j.j_ops 0 ops 0 j.j_len;
        j.j_ops <- ops
      end;
      j.j_ops.(j.j_len) <- op;
      j.j_len <- j.j_len + 1)

let journal_length j = with_lock j.j_mutex (fun () -> j.j_len)

(* Only operations the inner backend completed are journaled: a failed
   op changed nothing, so it is not a crash point. Handles carry their
   file name (appends and fsyncs are journaled under the name the
   handle was opened with — nothing in this codebase renames a file it
   still holds open for writing). *)
let journaled j (B (module Inner) : packed) : packed =
  B
    (module struct
      type handle = string * Inner.handle

      let backend_name = "journaled+" ^ Inner.backend_name

      let create name =
        let h = Inner.create name in
        j_push j (J_create name);
        (name, h)

      let open_append name =
        let h = Inner.open_append name in
        j_push j (J_open name);
        (name, h)

      let append (name, h) b ~pos ~len =
        let s = Bytes.sub_string b pos len in
        Inner.append h b ~pos ~len;
        j_push j (J_append (name, s))

      let handle_size (_, h) = Inner.handle_size h

      let fsync (name, h) =
        Inner.fsync h;
        j_push j (J_fsync name)

      let close (_, h) = Inner.close h
      let size = Inner.size
      let read_at = Inner.read_at
      let pread = Inner.pread
      let exists = Inner.exists

      let delete name =
        Inner.delete name;
        j_push j (J_delete name)

      let rename ~old_name ~new_name =
        Inner.rename ~old_name ~new_name;
        j_push j (J_rename (old_name, new_name))

      let list_files = Inner.list_files

      let sync_namespace () =
        let r = Inner.sync_namespace () in
        if r then j_push j J_sync_all;
        r

      let supports_crash = Inner.supports_crash
      let crash = Inner.crash
    end)

let journaled_memory () =
  let j = new_journal () in
  (j, journaled j (memory ()))

type crash_mode = Drop_unsynced | Reorder_unsynced of int

(* Rebuild the filesystem state after ops [0, k), then crash it. In
   [Drop_unsynced] every file keeps exactly its synced prefix — the
   deterministic lower bound of what any correct disk guarantees. In
   [Reorder_unsynced seed] each file independently keeps a seeded
   random amount of its unsynced suffix (possibly torn mid-record),
   modeling a disk that reordered and partially persisted unsynced
   writes across files before the power failed. *)
let replay_prefix j ?(mode = Drop_unsynced) k : packed =
  let ops =
    with_lock j.j_mutex (fun () -> Array.sub j.j_ops 0 (max 0 (min k j.j_len)))
  in
  let files : (string, Buffer.t * int ref) Hashtbl.t = Hashtbl.create 64 in
  let ensure name =
    match Hashtbl.find_opt files name with
    | Some f -> f
    | None ->
      let f = (Buffer.create 256, ref 0) in
      Hashtbl.replace files name f;
      f
  in
  Array.iter
    (function
      | J_create name -> Hashtbl.replace files name (Buffer.create 256, ref 0)
      | J_open name -> ignore (ensure name)
      | J_append (name, s) ->
        let buf, _ = ensure name in
        Buffer.add_string buf s
      | J_fsync name -> (
        match Hashtbl.find_opt files name with
        | Some (buf, synced) -> synced := Buffer.length buf
        | None -> ())
      | J_delete name -> Hashtbl.remove files name
      | J_rename (old_name, new_name) -> (
        match Hashtbl.find_opt files old_name with
        | Some f ->
          Hashtbl.remove files old_name;
          Hashtbl.replace files new_name f
        | None -> ())
      | J_sync_all ->
        Hashtbl.iter (fun _ (buf, synced) -> synced := Buffer.length buf) files)
    ops;
  let survivors =
    Hashtbl.fold
      (fun name (buf, synced) acc ->
        let len = Buffer.length buf in
        let keep =
          match mode with
          | Drop_unsynced -> !synced
          | Reorder_unsynced seed ->
            if len = !synced then len
            else begin
              (* Seeded per (file, crash point): independent across
                 files, so later appends to one file can survive while
                 earlier appends to another are lost. *)
              let rng =
                Evendb_util.Rng.create (seed lxor Hashtbl.hash name lxor (k * 0x9e3779b1))
              in
              !synced + Evendb_util.Rng.int rng (len - !synced + 1)
            end
        in
        (name, Buffer.sub buf 0 keep) :: acc)
      files []
  in
  memory_of_files survivors
(* Disk backend: real files under a root directory. Unix failures
   surface as typed [Io_error]s; ENOENT keeps its historical
   [Not_found] meaning on reads.                                       *)

type disk_file = { fd : Unix.file_descr; df_name : string; mutable dpos : int }

let disk dir : packed =
  let rec mkdir_p d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mkdir_p dir;
  let read_fds : (string, Unix.file_descr) Hashtbl.t = Hashtbl.create 64 in
  (* Read-only mmap windows for [pread], keyed by name. A mapping can
     lag behind an append (files are append-only, never rewritten in
     place), so it is remapped whenever a request reaches past its
     length, and dropped alongside the read fd whenever the name is
     created over, deleted, or renamed. *)
  let mmaps : (string, Evendb_util.Bigslice.buf) Hashtbl.t = Hashtbl.create 64 in
  let fds_mutex = Mutex.create () in
  let path name = Filename.concat dir name in
  (* Names may carry a sub-directory (fsck --repair quarantines files
     under "quarantine/"); create the parent on demand. *)
  let ensure_parent name =
    let d = Filename.dirname (path name) in
    if d <> dir then mkdir_p d
  in
  let wrap ~op ~file f =
    try f () with Unix.Unix_error (e, _, _) -> raise (of_unix ~op ~file e)
  in
  let drop_read_fd name =
    with_lock fds_mutex (fun () ->
        Hashtbl.remove mmaps name;
        match Hashtbl.find_opt read_fds name with
        | None -> ()
        | Some fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Hashtbl.remove read_fds name)
  in
  let rec write_fully fd b pos len =
    if len > 0 then begin
      let n = Unix.write fd b pos len in
      write_fully fd b (pos + n) (len - n)
    end
  in
  B
    (module struct
      type handle = disk_file

      let backend_name = "disk"

      let create name =
        drop_read_fd name;
        ensure_parent name;
        let fd =
          wrap ~op:"create" ~file:name (fun () ->
              Unix.openfile (path name) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644)
        in
        { fd; df_name = name; dpos = 0 }

      let open_append name =
        ensure_parent name;
        wrap ~op:"open_append" ~file:name (fun () ->
            let fd = Unix.openfile (path name) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
            let dpos = Unix.lseek fd 0 Unix.SEEK_END in
            { fd; df_name = name; dpos })

      let append d b ~pos ~len =
        (* A short write still advances [dpos] by the bytes that made
           it out, so the handle's view matches the file. *)
        let written = ref 0 in
        (try
           write_fully d.fd b pos len;
           written := len
         with Unix.Unix_error (e, _, _) ->
           d.dpos <- d.dpos + !written;
           raise (of_unix ~op:"append" ~file:d.df_name e));
        d.dpos <- d.dpos + len

      let handle_size d = d.dpos

      let fsync d = wrap ~op:"fsync" ~file:d.df_name (fun () -> Unix.fsync d.fd)

      let close d = try Unix.close d.fd with Unix.Unix_error _ -> ()

      let size name =
        let st =
          try Unix.stat (path name) with
          | Unix.Unix_error (Unix.ENOENT, _, _) -> raise Not_found
          | Unix.Unix_error (e, _, _) -> raise (of_unix ~op:"size" ~file:name e)
        in
        st.Unix.st_size

      let read_at name ~off ~len =
        let fd =
          with_lock fds_mutex (fun () ->
              match Hashtbl.find_opt read_fds name with
              | Some fd -> fd
              | None ->
                let fd =
                  try Unix.openfile (path name) [ Unix.O_RDONLY ] 0 with
                  | Unix.Unix_error (Unix.ENOENT, _, _) -> raise Not_found
                  | Unix.Unix_error (e, _, _) -> raise (of_unix ~op:"read" ~file:name e)
                in
                Hashtbl.replace read_fds name fd;
                fd)
        in
        (* One shared fd per file: serialize the seek+read. *)
        with_lock fds_mutex (fun () ->
            wrap ~op:"read" ~file:name (fun () ->
                let file_len = (Unix.fstat fd).Unix.st_size in
                if off + len > file_len then
                  invalid_arg "Env.read_at: range beyond end of file";
                ignore (Unix.lseek fd off Unix.SEEK_SET);
                let b = Bytes.create len in
                let rec read_fully pos remaining =
                  if remaining > 0 then begin
                    let n = Unix.read fd b pos remaining in
                    if n = 0 then invalid_arg "Env.read_at: unexpected end of file";
                    read_fully (pos + n) (remaining - n)
                  end
                in
                read_fully 0 len;
                Bytes.unsafe_to_string b))

      let pread name ~off ~len =
        if len = 0 then begin
          (* Still validate the name and bounds like [read_at]. *)
          let file_len = size name in
          if off > file_len then invalid_arg "Env.read_at: range beyond end of file";
          Evendb_util.Bigslice.create 0
        end
        else
          with_lock fds_mutex (fun () ->
              let remap () =
                let fd =
                  try Unix.openfile (path name) [ Unix.O_RDONLY ] 0 with
                  | Unix.Unix_error (Unix.ENOENT, _, _) -> raise Not_found
                  | Unix.Unix_error (e, _, _) -> raise (of_unix ~op:"read" ~file:name e)
                in
                Fun.protect
                  ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
                  (fun () ->
                    wrap ~op:"read" ~file:name (fun () ->
                        let file_len = (Unix.fstat fd).Unix.st_size in
                        if off + len > file_len then
                          invalid_arg "Env.read_at: range beyond end of file";
                        let g =
                          Unix.map_file fd Bigarray.char Bigarray.c_layout false
                            [| file_len |]
                        in
                        let buf = Bigarray.array1_of_genarray g in
                        Hashtbl.replace mmaps name buf;
                        buf))
              in
              let buf =
                match Hashtbl.find_opt mmaps name with
                | Some buf when off + len <= Bigarray.Array1.dim buf -> buf
                | _ -> remap ()
              in
              Evendb_util.Bigslice.of_bigarray ~off ~len buf)

      let exists name = Sys.file_exists (path name)

      let delete name =
        drop_read_fd name;
        try Unix.unlink (path name) with
        | Unix.Unix_error (Unix.ENOENT, _, _) -> ()
        | Unix.Unix_error (e, _, _) -> raise (of_unix ~op:"delete" ~file:name e)

      let rename ~old_name ~new_name =
        drop_read_fd old_name;
        drop_read_fd new_name;
        ensure_parent new_name;
        wrap ~op:"rename" ~file:old_name (fun () ->
            Unix.rename (path old_name) (path new_name))

      let list_files () =
        (* Top-level files plus quarantined ones (as "quarantine/x")
           and snapshot members (as "snapshots/<id>/x"), matching the
           memory backend's flat view of those prefixes. *)
        Array.to_list (Sys.readdir dir)
        |> List.concat_map (fun name ->
               if Sys.is_directory (path name) then
                 if name = "quarantine" then
                   Array.to_list (Sys.readdir (path name))
                   |> List.map (fun f -> Filename.concat name f)
                 else if name = "snapshots" then
                   Array.to_list (Sys.readdir (path name))
                   |> List.concat_map (fun id ->
                          let sdir = Filename.concat name id in
                          if Sys.is_directory (path sdir) then
                            Array.to_list (Sys.readdir (path sdir))
                            |> List.map (fun f -> Filename.concat sdir f)
                          else [ sdir ])
                 else if name = "telemetry" then
                   Array.to_list (Sys.readdir (path name))
                   |> List.map (fun f -> Filename.concat name f)
                 else []
               else [ name ])
      let sync_namespace () = false
      let supports_crash = false
      let crash () = invalid_arg "Env.crash: backend does not support crash simulation"
    end)

(* ------------------------------------------------------------------ *)
(* Name-prefix middleware: a flat sub-namespace inside an existing
   backend. The prefix stays inside the file NAME (no directories) so
   the disk backend's top-level-only [list_files] still sees every
   prefixed file, and suffix-based classification (".log"/".sst") is
   unaffected. The structured names — "quarantine/x" (fsck's
   quarantine area) and "snapshots/<id>/x" (published snapshots) —
   keep their directory component outermost, so their files stay
   inside the directories every backend already lists; the prefix
   scopes the inner component ("quarantine/<prefix>x",
   "snapshots/<prefix><id>/x", "telemetry/<prefix>x"). *)

let quarantine_dir = "quarantine/"
let snapshots_dir = "snapshots/"
let telemetry_dir = "telemetry/"

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let strip ~prefix s = String.sub s (String.length prefix) (String.length s - String.length prefix)

let prefixed ~prefix (B (module Inner) : packed) : packed =
  if prefix = "" || String.contains prefix '/' then
    invalid_arg "Backend.prefixed: prefix must be non-empty and contain no '/'";
  let map name =
    if has_prefix ~prefix:quarantine_dir name then
      quarantine_dir ^ prefix ^ strip ~prefix:quarantine_dir name
    else if has_prefix ~prefix:snapshots_dir name then
      snapshots_dir ^ prefix ^ strip ~prefix:snapshots_dir name
    else if has_prefix ~prefix:telemetry_dir name then
      telemetry_dir ^ prefix ^ strip ~prefix:telemetry_dir name
    else prefix ^ name
  in
  let unmap name =
    if has_prefix ~prefix name then Some (strip ~prefix name)
    else if has_prefix ~prefix:(quarantine_dir ^ prefix) name then
      Some (quarantine_dir ^ strip ~prefix:(quarantine_dir ^ prefix) name)
    else if has_prefix ~prefix:(snapshots_dir ^ prefix) name then
      Some (snapshots_dir ^ strip ~prefix:(snapshots_dir ^ prefix) name)
    else if has_prefix ~prefix:(telemetry_dir ^ prefix) name then
      Some (telemetry_dir ^ strip ~prefix:(telemetry_dir ^ prefix) name)
    else None
  in
  B
    (module struct
      type handle = Inner.handle

      let backend_name = Printf.sprintf "prefixed(%s)+%s" prefix Inner.backend_name
      let create name = Inner.create (map name)
      let open_append name = Inner.open_append (map name)
      let append = Inner.append
      let handle_size = Inner.handle_size
      let fsync = Inner.fsync
      let close = Inner.close
      let size name = Inner.size (map name)
      let read_at name ~off ~len = Inner.read_at (map name) ~off ~len
      let pread name ~off ~len = Inner.pread (map name) ~off ~len
      let exists name = Inner.exists (map name)
      let delete name = Inner.delete (map name)
      let rename ~old_name ~new_name = Inner.rename ~old_name:(map old_name) ~new_name:(map new_name)
      let list_files () = List.filter_map unmap (Inner.list_files ())

      let sync_namespace () =
        (* Syncs the whole underlying namespace — a superset of this
           sub-namespace, which is safe (durability is monotone). *)
        Inner.sync_namespace ()

      let supports_crash = Inner.supports_crash
      let crash = Inner.crash
    end)
