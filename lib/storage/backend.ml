open Io_error

module type BACKEND = sig
  type handle

  val backend_name : string
  val create : string -> handle
  val open_append : string -> handle
  val append : handle -> bytes -> pos:int -> len:int -> unit
  val handle_size : handle -> int
  val fsync : handle -> unit
  val close : handle -> unit
  val size : string -> int
  val read_at : string -> off:int -> len:int -> string
  val exists : string -> bool
  val delete : string -> unit
  val rename : old_name:string -> new_name:string -> unit
  val list_files : unit -> string list
  val sync_namespace : unit -> bool
  val supports_crash : bool
  val crash : unit -> unit
end

type packed = B : (module BACKEND with type handle = 'h) -> packed

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Memory backend: an in-process filesystem that models crashes — each
   file tracks its last-synced length and [crash] drops every unsynced
   suffix.                                                             *)

type mem_file = {
  mutable data : Bytes.t;
  mutable len : int;
  mutable synced : int;
  mf_mutex : Mutex.t;
}

let memory () : packed =
  let files : (string, mem_file) Hashtbl.t = Hashtbl.create 64 in
  let ns_mutex = Mutex.create () in
  let new_mem_file () =
    { data = Bytes.create 256; len = 0; synced = 0; mf_mutex = Mutex.create () }
  in
  let find name =
    match with_lock ns_mutex (fun () -> Hashtbl.find_opt files name) with
    | Some mf -> mf
    | None -> raise Not_found
  in
  let mem_ensure mf extra =
    let need = mf.len + extra in
    if need > Bytes.length mf.data then begin
      let cap = max need (2 * Bytes.length mf.data) in
      let data = Bytes.create cap in
      Bytes.blit mf.data 0 data 0 mf.len;
      mf.data <- data
    end
  in
  B
    (module struct
      type handle = mem_file

      let backend_name = "memory"

      let create name =
        let mf = new_mem_file () in
        with_lock ns_mutex (fun () -> Hashtbl.replace files name mf);
        mf

      let open_append name =
        with_lock ns_mutex (fun () ->
            match Hashtbl.find_opt files name with
            | Some mf -> mf
            | None ->
              let mf = new_mem_file () in
              Hashtbl.replace files name mf;
              mf)

      let append mf b ~pos ~len =
        with_lock mf.mf_mutex (fun () ->
            mem_ensure mf len;
            Bytes.blit b pos mf.data mf.len len;
            mf.len <- mf.len + len)

      let handle_size mf = with_lock mf.mf_mutex (fun () -> mf.len)
      let fsync mf = with_lock mf.mf_mutex (fun () -> mf.synced <- mf.len)
      let close _mf = ()
      let size name = handle_size (find name)

      let read_at name ~off ~len =
        let mf = find name in
        with_lock mf.mf_mutex (fun () ->
            if off + len > mf.len then
              invalid_arg "Env.read_at: range beyond end of file";
            Bytes.sub_string mf.data off len)

      let exists name = with_lock ns_mutex (fun () -> Hashtbl.mem files name)
      let delete name = with_lock ns_mutex (fun () -> Hashtbl.remove files name)

      let rename ~old_name ~new_name =
        with_lock ns_mutex (fun () ->
            match Hashtbl.find_opt files old_name with
            | None -> raise Not_found
            | Some mf ->
              Hashtbl.remove files old_name;
              Hashtbl.replace files new_name mf)

      let list_files () =
        with_lock ns_mutex (fun () ->
            Hashtbl.fold (fun name _ acc -> name :: acc) files [])

      let sync_namespace () =
        with_lock ns_mutex (fun () ->
            Hashtbl.iter
              (fun _ mf -> with_lock mf.mf_mutex (fun () -> mf.synced <- mf.len))
              files);
        true

      let supports_crash = true

      let crash () =
        with_lock ns_mutex (fun () ->
            Hashtbl.iter
              (fun _ mf -> with_lock mf.mf_mutex (fun () -> mf.len <- mf.synced))
              files)
    end)

(* ------------------------------------------------------------------ *)
(* Disk backend: real files under a root directory. Unix failures
   surface as typed [Io_error]s; ENOENT keeps its historical
   [Not_found] meaning on reads.                                       *)

type disk_file = { fd : Unix.file_descr; df_name : string; mutable dpos : int }

let disk dir : packed =
  let rec mkdir_p d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mkdir_p dir;
  let read_fds : (string, Unix.file_descr) Hashtbl.t = Hashtbl.create 64 in
  let fds_mutex = Mutex.create () in
  let path name = Filename.concat dir name in
  let wrap ~op ~file f =
    try f () with Unix.Unix_error (e, _, _) -> raise (of_unix ~op ~file e)
  in
  let drop_read_fd name =
    with_lock fds_mutex (fun () ->
        match Hashtbl.find_opt read_fds name with
        | None -> ()
        | Some fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Hashtbl.remove read_fds name)
  in
  let rec write_fully fd b pos len =
    if len > 0 then begin
      let n = Unix.write fd b pos len in
      write_fully fd b (pos + n) (len - n)
    end
  in
  B
    (module struct
      type handle = disk_file

      let backend_name = "disk"

      let create name =
        drop_read_fd name;
        let fd =
          wrap ~op:"create" ~file:name (fun () ->
              Unix.openfile (path name) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644)
        in
        { fd; df_name = name; dpos = 0 }

      let open_append name =
        wrap ~op:"open_append" ~file:name (fun () ->
            let fd = Unix.openfile (path name) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
            let dpos = Unix.lseek fd 0 Unix.SEEK_END in
            { fd; df_name = name; dpos })

      let append d b ~pos ~len =
        (* A short write still advances [dpos] by the bytes that made
           it out, so the handle's view matches the file. *)
        let written = ref 0 in
        (try
           write_fully d.fd b pos len;
           written := len
         with Unix.Unix_error (e, _, _) ->
           d.dpos <- d.dpos + !written;
           raise (of_unix ~op:"append" ~file:d.df_name e));
        d.dpos <- d.dpos + len

      let handle_size d = d.dpos

      let fsync d = wrap ~op:"fsync" ~file:d.df_name (fun () -> Unix.fsync d.fd)

      let close d = try Unix.close d.fd with Unix.Unix_error _ -> ()

      let size name =
        let st =
          try Unix.stat (path name) with
          | Unix.Unix_error (Unix.ENOENT, _, _) -> raise Not_found
          | Unix.Unix_error (e, _, _) -> raise (of_unix ~op:"size" ~file:name e)
        in
        st.Unix.st_size

      let read_at name ~off ~len =
        let fd =
          with_lock fds_mutex (fun () ->
              match Hashtbl.find_opt read_fds name with
              | Some fd -> fd
              | None ->
                let fd =
                  try Unix.openfile (path name) [ Unix.O_RDONLY ] 0 with
                  | Unix.Unix_error (Unix.ENOENT, _, _) -> raise Not_found
                  | Unix.Unix_error (e, _, _) -> raise (of_unix ~op:"read" ~file:name e)
                in
                Hashtbl.replace read_fds name fd;
                fd)
        in
        (* One shared fd per file: serialize the seek+read. *)
        with_lock fds_mutex (fun () ->
            wrap ~op:"read" ~file:name (fun () ->
                let file_len = (Unix.fstat fd).Unix.st_size in
                if off + len > file_len then
                  invalid_arg "Env.read_at: range beyond end of file";
                ignore (Unix.lseek fd off Unix.SEEK_SET);
                let b = Bytes.create len in
                let rec read_fully pos remaining =
                  if remaining > 0 then begin
                    let n = Unix.read fd b pos remaining in
                    if n = 0 then invalid_arg "Env.read_at: unexpected end of file";
                    read_fully (pos + n) (remaining - n)
                  end
                in
                read_fully 0 len;
                Bytes.unsafe_to_string b))

      let exists name = Sys.file_exists (path name)

      let delete name =
        drop_read_fd name;
        try Unix.unlink (path name) with
        | Unix.Unix_error (Unix.ENOENT, _, _) -> ()
        | Unix.Unix_error (e, _, _) -> raise (of_unix ~op:"delete" ~file:name e)

      let rename ~old_name ~new_name =
        drop_read_fd old_name;
        drop_read_fd new_name;
        wrap ~op:"rename" ~file:old_name (fun () ->
            Unix.rename (path old_name) (path new_name))

      let list_files () = Array.to_list (Sys.readdir dir)
      let sync_namespace () = false
      let supports_crash = false
      let crash () = invalid_arg "Env.crash: backend does not support crash simulation"
    end)
