(** Deterministic fault injection middleware.

    A {!plan} is a seeded schedule of storage failures: with
    probability [rate] per eligible operation, an append, fsync or
    rename fails with a typed {!Io_error.Io_error}. A failing append
    may be {e torn} — a strict prefix of the record reaches the inner
    backend before the error — which is how the crash-consistency
    tests exercise the log layer's CRC resynchronization.

    The schedule is a pure function of the seed and the sequence of
    operations, so a failing soak run replays exactly from its seed.
    Reads are never {e failed} — injected faults model the write path
    (where durability bugs live) — but with a nonzero [corrupt_rate]
    a read may return bytes with one seeded bit-rot flip, exercising
    checksum verification and the degraded (fall-back-to-replica)
    read paths. Plans with [corrupt_rate = 0] draw nothing on reads,
    so their fault schedules are unchanged. *)

type plan

val plan : ?torn_fraction:float -> ?corrupt_rate:float -> seed:int -> rate:float -> unit -> plan
(** [rate] is the per-operation failure probability in [0,1];
    [torn_fraction] (default 0.5) is the share of injected append
    failures that tear (write a partial record) instead of failing
    cleanly; [corrupt_rate] (default 0) is the per-read probability of
    flipping one byte of the returned data. *)

val parse_profile : string -> plan
(** Parse a ["seed:rate[:corrupt_rate]"] command-line profile, e.g.
    ["42:0.01"] or ["42:0:0.05"]. Raises [Invalid_argument] on
    malformed input. *)

val profile_string : plan -> string

val seed : plan -> int
val rate : plan -> float

val set_armed : plan -> bool -> unit
(** Disarmed plans inject nothing (used by recovery/verification
    phases of the soak tests); counters are retained. *)

val injected : plan -> int
(** Total faults injected so far. *)

val counts : plan -> (string * int) list
(** Injected faults by kind: append / torn / fsync / rename / corrupt. *)

val wrap : plan -> Backend.packed -> Backend.packed
(** Wrap a backend so its write-path operations follow the plan. *)
