(** Pluggable storage backends.

    A backend is a flat namespace of append-only files, packaged as a
    first-class module satisfying {!BACKEND}. {!Env} drives every
    engine's I/O through exactly one (possibly middleware-wrapped)
    backend, so engines run unchanged on any stack:

    {v  Env  →  Counting (Io_stats)  →  [Fault]  →  Disk | Memory  v}

    Middleware ({!Fault.wrap}, {!Counting.wrap}) consumes a {!packed}
    backend and returns a new one wrapping it. Failures raise
    {!Io_error.Io_error}; [Not_found] / [Invalid_argument] keep their
    historical meaning for missing files and bad ranges. *)

module type BACKEND = sig
  type handle
  (** An open, append-only file. *)

  val backend_name : string

  val create : string -> handle
  (** Create (or truncate) a file, open for appending. *)

  val open_append : string -> handle
  (** Open positioned at the end; creates the file if absent. *)

  val append : handle -> bytes -> pos:int -> len:int -> unit
  val handle_size : handle -> int
  val fsync : handle -> unit
  val close : handle -> unit

  val size : string -> int
  (** Raises [Not_found] for a missing file. *)

  val read_at : string -> off:int -> len:int -> string

  val pread : string -> off:int -> len:int -> Evendb_util.Bigslice.t
  (** Partial read returning a bigarray-backed slice: an mmap window on
      the disk backend (zero-copy), a private buffer on the memory
      backend. Same bounds/missing-file contract as [read_at]. The
      slice is only guaranteed stable until the file is deleted,
      renamed, or created over. *)

  val exists : string -> bool
  val delete : string -> unit
  val rename : old_name:string -> new_name:string -> unit
  val list_files : unit -> string list

  val sync_namespace : unit -> bool
  (** Make the whole namespace durable in one shot, if the backend can;
      [false] means the caller must fsync open handles itself. *)

  val supports_crash : bool

  val crash : unit -> unit
  (** Discard all unsynced data (power-failure simulation). Raises
      [Invalid_argument] when [supports_crash] is false. *)
end

type packed = B : (module BACKEND with type handle = 'h) -> packed

val memory : unit -> packed
(** In-process filesystem with crash simulation: each file tracks its
    last-fsynced length and [crash] discards every unsynced suffix. *)

val memory_of_files : (string * string) list -> packed
(** A memory backend pre-populated with the given [(name, contents)]
    files, all fully synced — how {!replay_prefix} materializes a
    post-crash filesystem. *)

val disk : string -> packed
(** Real files under a directory (created if missing); fsync maps to
    [Unix.fsync]. Unix failures surface as {!Io_error.Io_error}. File
    names may carry a ["quarantine/"] prefix (fsck's quarantine
    sub-directory); [list_files] reports those as ["quarantine/x"]. *)

val prefixed : prefix:string -> packed -> packed
(** A flat sub-namespace: every file name is mapped to [prefix ^ name]
    in the inner backend (["quarantine/x"] to ["quarantine/" ^ prefix ^
    "x"], keeping fsck's quarantine directory outermost), and
    [list_files] returns only this sub-namespace's files with the
    prefix stripped. The prefix must be non-empty and contain no ['/']
    — it lives inside the name, so backends that only list top-level
    files still see everything. Disjoint prefixes give disjoint
    namespaces over one shared backend (the shard substrate); [crash] /
    [sync_namespace] act on the whole underlying namespace. *)

(** {2 Mutation journal}

    The crash-point explorer's substrate: {!journaled_memory} records
    every completed state-changing operation (create / open / append /
    fsync / delete / rename / sync-all), and {!replay_prefix}
    reconstructs the filesystem as it would look if power had failed
    right after op [k] — metadata operations are durable when issued,
    appended bytes only once fsynced. *)

type journal

type crash_mode =
  | Drop_unsynced  (** every file keeps exactly its synced prefix *)
  | Reorder_unsynced of int
      (** each file independently keeps a seeded random amount of its
          unsynced suffix (possibly torn mid-record) — a disk that
          reorders unsynced writes across files *)

val journaled : journal -> packed -> packed
(** Middleware recording completed mutations into the journal. *)

val journaled_memory : unit -> journal * packed
(** A fresh memory backend under a fresh journal. *)

val journal_length : journal -> int
(** Number of ops recorded so far — one more than the largest useful
    crash point. *)

val replay_prefix : journal -> ?mode:crash_mode -> int -> packed
(** [replay_prefix j ~mode k] replays ops [0, k) into a fresh memory
    backend and crashes it per [mode] (default {!Drop_unsynced}). The
    journal itself is not consumed; any prefix can be replayed any
    number of times. *)
