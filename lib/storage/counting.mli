(** I/O accounting middleware.

    [wrap st ~kind_of_name backend] routes every append, read and
    fsync of [backend] through {!Io_stats}, classifying each file with
    [kind_of_name]. This is the layer behind {!Env.stats}: the engines'
    write-amplification and read-I/O numbers are measured here, not
    estimated. Operations that fail (including injected {!Fault}
    failures from further down the stack) are not counted. *)

val wrap :
  Io_stats.t -> kind_of_name:(string -> Io_stats.kind) -> Backend.packed -> Backend.packed
