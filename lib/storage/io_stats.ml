type t = {
  bytes_written : int Atomic.t;
  bytes_read : int Atomic.t;
  write_ops : int Atomic.t;
  read_ops : int Atomic.t;
  fsyncs : int Atomic.t;
}

type snapshot = {
  bytes_written : int;
  bytes_read : int;
  write_ops : int;
  read_ops : int;
  fsyncs : int;
}

let create () : t =
  {
    bytes_written = Atomic.make 0;
    bytes_read = Atomic.make 0;
    write_ops = Atomic.make 0;
    read_ops = Atomic.make 0;
    fsyncs = Atomic.make 0;
  }

let add n c = ignore (Atomic.fetch_and_add c n)

let add_write (t : t) n =
  add n t.bytes_written;
  add 1 t.write_ops

let add_read (t : t) n =
  add n t.bytes_read;
  add 1 t.read_ops

let add_fsync (t : t) = add 1 t.fsyncs

let snapshot (t : t) : snapshot =
  {
    bytes_written = Atomic.get t.bytes_written;
    bytes_read = Atomic.get t.bytes_read;
    write_ops = Atomic.get t.write_ops;
    read_ops = Atomic.get t.read_ops;
    fsyncs = Atomic.get t.fsyncs;
  }

let reset (t : t) =
  Atomic.set t.bytes_written 0;
  Atomic.set t.bytes_read 0;
  Atomic.set t.write_ops 0;
  Atomic.set t.read_ops 0;
  Atomic.set t.fsyncs 0

let diff ~after ~before : snapshot =
  {
    bytes_written = after.bytes_written - before.bytes_written;
    bytes_read = after.bytes_read - before.bytes_read;
    write_ops = after.write_ops - before.write_ops;
    read_ops = after.read_ops - before.read_ops;
    fsyncs = after.fsyncs - before.fsyncs;
  }

let pp ppf s =
  Format.fprintf ppf "written=%dB read=%dB wops=%d rops=%d fsyncs=%d"
    s.bytes_written s.bytes_read s.write_ops s.read_ops s.fsyncs
