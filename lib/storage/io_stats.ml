type kind = Log | Sstable | Meta

let kind_name = function Log -> "log" | Sstable -> "sstable" | Meta -> "meta"
let all_kinds = [ Log; Sstable; Meta ]
let kind_index = function Log -> 0 | Sstable -> 1 | Meta -> 2
let n_kinds = 3

(* One cell block per file kind; the aggregate snapshot sums them, so
   the historical (kind-blind) accounting is unchanged. *)
type cells = {
  c_bytes_written : int Atomic.t;
  c_bytes_read : int Atomic.t;
  c_write_ops : int Atomic.t;
  c_read_ops : int Atomic.t;
  c_fsyncs : int Atomic.t;
}

type t = cells array (* indexed by kind *)

type snapshot = {
  bytes_written : int;
  bytes_read : int;
  write_ops : int;
  read_ops : int;
  fsyncs : int;
}

let create () : t =
  Array.init n_kinds (fun _ ->
      {
        c_bytes_written = Atomic.make 0;
        c_bytes_read = Atomic.make 0;
        c_write_ops = Atomic.make 0;
        c_read_ops = Atomic.make 0;
        c_fsyncs = Atomic.make 0;
      })

let add n c = ignore (Atomic.fetch_and_add c n)

let add_write ?(kind = Meta) (t : t) n =
  let c = t.(kind_index kind) in
  add n c.c_bytes_written;
  add 1 c.c_write_ops

let add_read ?(kind = Meta) (t : t) n =
  let c = t.(kind_index kind) in
  add n c.c_bytes_read;
  add 1 c.c_read_ops

let add_fsync ?(kind = Meta) (t : t) = add 1 t.(kind_index kind).c_fsyncs

let snapshot_cells (c : cells) : snapshot =
  {
    bytes_written = Atomic.get c.c_bytes_written;
    bytes_read = Atomic.get c.c_bytes_read;
    write_ops = Atomic.get c.c_write_ops;
    read_ops = Atomic.get c.c_read_ops;
    fsyncs = Atomic.get c.c_fsyncs;
  }

let sum_snapshots a b =
  {
    bytes_written = a.bytes_written + b.bytes_written;
    bytes_read = a.bytes_read + b.bytes_read;
    write_ops = a.write_ops + b.write_ops;
    read_ops = a.read_ops + b.read_ops;
    fsyncs = a.fsyncs + b.fsyncs;
  }

let zero = { bytes_written = 0; bytes_read = 0; write_ops = 0; read_ops = 0; fsyncs = 0 }

let snapshot (t : t) : snapshot =
  Array.fold_left (fun acc c -> sum_snapshots acc (snapshot_cells c)) zero t

let snapshot_kind (t : t) kind = snapshot_cells t.(kind_index kind)

let by_kind (t : t) = List.map (fun k -> (k, snapshot_kind t k)) all_kinds

let reset (t : t) =
  Array.iter
    (fun c ->
      Atomic.set c.c_bytes_written 0;
      Atomic.set c.c_bytes_read 0;
      Atomic.set c.c_write_ops 0;
      Atomic.set c.c_read_ops 0;
      Atomic.set c.c_fsyncs 0)
    t

let diff ~after ~before : snapshot =
  {
    bytes_written = after.bytes_written - before.bytes_written;
    bytes_read = after.bytes_read - before.bytes_read;
    write_ops = after.write_ops - before.write_ops;
    read_ops = after.read_ops - before.read_ops;
    fsyncs = after.fsyncs - before.fsyncs;
  }

let pp ppf s =
  Format.fprintf ppf "written=%dB read=%dB wops=%d rops=%d fsyncs=%d"
    s.bytes_written s.bytes_read s.write_ops s.read_ops s.fsyncs
