(** Byte-accurate storage accounting.

    Every read and write issued by an engine flows through one
    {!Io_stats.t}, so write amplification (physical bytes written /
    logical user bytes) and the read-I/O volumes of Table 2 and
    Figures 3c/7 are measured rather than estimated. Counters are
    atomics: safe to bump from any domain.

    Counters are additionally split by file {!kind} (log / sstable /
    metadata), so write amplification can be decomposed per source;
    the aggregate {!snapshot} sums the kinds and keeps its historical
    shape. *)

type t

type kind = Log | Sstable | Meta
(** What kind of file an I/O touched: an append-only record log (funk
    logs, WALs), an SSTable, or metadata (manifests, checkpoint and
    mode markers). *)

val kind_name : kind -> string
val all_kinds : kind list

type snapshot = {
  bytes_written : int;
  bytes_read : int;
  write_ops : int;
  read_ops : int;
  fsyncs : int;
}

val create : unit -> t

val add_write : ?kind:kind -> t -> int -> unit
(** [kind] defaults to [Meta]. *)

val add_read : ?kind:kind -> t -> int -> unit
val add_fsync : ?kind:kind -> t -> unit

val snapshot : t -> snapshot
(** Aggregate over all kinds (backward-compatible shape). *)

val snapshot_kind : t -> kind -> snapshot
val by_kind : t -> (kind * snapshot) list

val reset : t -> unit

val diff : after:snapshot -> before:snapshot -> snapshot
(** Component-wise subtraction, for measuring a bounded phase. *)

val pp : Format.formatter -> snapshot -> unit
