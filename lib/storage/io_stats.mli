(** Byte-accurate storage accounting.

    Every read and write issued by an engine flows through one
    {!Io_stats.t}, so write amplification (physical bytes written /
    logical user bytes) and the read-I/O volumes of Table 2 and
    Figures 3c/7 are measured rather than estimated. Counters are
    atomics: safe to bump from any domain. *)

type t

type snapshot = {
  bytes_written : int;
  bytes_read : int;
  write_ops : int;
  read_ops : int;
  fsyncs : int;
}

val create : unit -> t

val add_write : t -> int -> unit
val add_read : t -> int -> unit
val add_fsync : t -> unit

val snapshot : t -> snapshot
val reset : t -> unit

val diff : after:snapshot -> before:snapshot -> snapshot
(** Component-wise subtraction, for measuring a bounded phase. *)

val pp : Format.formatter -> snapshot -> unit
