(** Storage environment: a flat namespace of append-only files.

    All engines (EvenDB, the LSM and FLSM baselines) perform I/O
    exclusively through an [Env.t]. Underneath sits a layered stack of
    pluggable backends (see {!Backend}):

    {v  Env  →  Counting (Io_stats)  →  [Fault]  →  Disk | Memory  v}

    - {!disk} — real files under a directory (fsync maps to
      [Unix.fsync]);
    - {!memory} — an in-process filesystem that additionally models
      crashes: each file tracks its last-fsynced length, and {!crash}
      discards every unsynced suffix, which is how the recovery tests
      validate the paper's prefix-consistency guarantee (§3.5);
    - {!of_backend} — any custom {!Backend.packed} composition.

    Passing [?faults] threads a {!Fault.plan} into the stack, injecting
    deterministic append/fsync/rename failures and torn tail writes.
    Storage failures — real or injected — surface as the typed
    {!Io_error} exception; [Not_found] (missing file) and
    [Invalid_argument] (bad range) keep their historical meaning.

    Files are append-only (SSTables are written once; logs only grow),
    matching the paper's funk layout. Metadata operations (create,
    delete, rename) are treated as immediately durable; only appended
    data is subject to loss on [crash].

    All operations are thread-safe. *)

exception Io_error of Io_error.info
(** Typed storage failure (re-export of {!Io_error.Io_error}). *)

exception Corruption of Io_error.corruption
(** Typed on-disk corruption — a read answered but the bytes failed a
    checksum or structural check (re-export of {!Io_error.Corruption}).
    Raised by format readers (SSTable, manifest, checkpoint); engines
    degrade to a surviving replica where one exists, and every
    detection is counted (see {!corruptions_detected}). *)

module type BACKEND = Backend.BACKEND
(** Re-export, so implementing a custom backend needs only [Env]. *)

(** {2 Quarantine}

    [fsck --repair] moves files it cannot trust under the
    ["quarantine/"] prefix instead of deleting them. Recovery sweeps
    and the scrubber skip that prefix. *)

val quarantine_prefix : string

val quarantined : string -> string
(** [quarantined name] is the name's quarantine location. *)

val is_quarantined : string -> bool

(** {2 Snapshots namespace}

    Published point-in-time snapshots pin copies of the manifest,
    checkpoint and funk set under ["snapshots/<id>/"]. Like quarantine,
    the prefix is invisible to the live store's recovery sweep. *)

val snapshots_prefix : string

val snapshot_member : id:string -> string -> string
(** [snapshot_member ~id name] is [name]'s location inside snapshot
    [id]: ["snapshots/<id>/<name>"]. *)

val is_snapshot : string -> bool

val split_snapshot : string -> (string * string) option
(** [split_snapshot "snapshots/<id>/<name>"] is [Some (id, name)];
    [None] for anything else (including the bare directory entries). *)

(** {2 Telemetry namespace}

    The continuous-telemetry sampler journals its windowed metric
    samples under ["telemetry/"]. The prefix is observational history —
    recovery sweeps skip it, and the scrubber checks (and quarantines)
    its segments without ever blocking a store open. *)

val telemetry_prefix : string

val telemetry_member : string -> string
(** [telemetry_member name] is ["telemetry/<name>"]. *)

val is_telemetry : string -> bool

type t
type file

val disk : ?faults:Fault.plan -> string -> t
(** [disk dir] creates [dir] if missing and roots the namespace there. *)

val memory : ?faults:Fault.plan -> unit -> t

val of_backend : ?faults:Fault.plan -> Backend.packed -> t
(** Mount an arbitrary backend stack. The [Counting] (stats) layer is
    always applied outermost; [?faults] is spliced directly beneath it. *)

val sub : t -> prefix:string -> t
(** A child environment over a {!Backend.prefixed} view of this
    environment's full stack: disjoint prefixes partition one backend
    into independent flat namespaces (one per shard). The child has its
    own {!stats}; the parent's stats and fault plan still see (and may
    inject into) every child operation. *)

val stats : t -> Io_stats.t

val backend_name : t -> string
(** The full middleware stack, e.g. ["counting+faulty(7:0.01)+memory"]. *)

val is_memory : t -> bool

val supports_crash : t -> bool
(** Whether {!crash} is meaningful for this env's backend. Query this
    instead of catching the [Invalid_argument] that {!crash} raises on
    backends without crash simulation. *)

val faults : t -> Fault.plan option
val faults_injected : t -> int
(** Total storage faults injected so far (0 without a fault plan). *)

(** {2 Integrity counters} *)

val note_corruption : t -> unit
(** Called by format readers at every corruption detection site. *)

val corruptions_detected : t -> int

val note_log_resync : t -> unit
(** Called by the log reader for every garbage region it skipped over
    while resynchronizing on record CRCs. *)

val log_resyncs : t -> int

(** {2 Writing} *)

val create : t -> string -> file
(** Create (or truncate) a file and open it for appending. *)

val open_append : t -> string -> file
(** Open an existing file positioned at its end; creates it if absent. *)

val append : file -> string -> unit
val append_bytes : file -> bytes -> pos:int -> len:int -> unit

val file_size : file -> int
(** Current size including unflushed appends. After a failed (torn)
    append this reflects the bytes that actually reached the backend. *)

val flush : file -> unit
val fsync : file -> unit
(** [fsync] implies [flush]. *)

val close_file : file -> unit

(** {2 Reading} *)

val size : t -> string -> int
(** Raises [Not_found] if the file does not exist. *)

val read_at : t -> string -> off:int -> len:int -> string
(** Reads exactly [len] bytes; raises [Invalid_argument] if the range
    exceeds the file. Accounted in {!stats}. *)

val read_all : t -> string -> string

val pread : t -> string -> off:int -> len:int -> Evendb_util.Bigslice.t
(** Partial read returning a bigarray-backed slice — an mmap window on
    disk, a private copy in memory (see {!Backend.BACKEND.pread}).
    Same bounds/missing-file contract and stats accounting as
    {!read_at}. *)

val exists : t -> string -> bool

(** {2 Shared block cache}

    An environment may carry one {!Evendb_cache.Block_cache.t},
    shared by every sstable reader opened through it. {!sub} children
    inherit the parent's cache (one budget across all shards), each
    under its own {!cache_space} so equal file names in sibling
    namespaces never collide. The environment invalidates cached
    blocks on {!delete}, {!rename} and {!crash}. *)

val install_block_cache : t -> capacity_bytes:int -> unit
(** Install a fresh cache of the given capacity, unless one is already
    present (inherited or installed) or [capacity_bytes = 0]. *)

val set_block_cache : t -> Evendb_cache.Block_cache.t option -> unit
val block_cache : t -> Evendb_cache.Block_cache.t option

val cache_space : t -> int
(** This environment's cache-key namespace (process-globally unique). *)

(** {2 Namespace} *)

val delete : t -> string -> unit
(** Removes the file; no-op if absent. *)

val rename : t -> old_name:string -> new_name:string -> unit
(** Atomic replace, used to publish rebuilt funks and manifests. *)

val list_files : t -> string list
(** All file names, unsorted. *)

val space_used : t -> int
(** Total bytes across all files (Figure 4). *)

(** {2 Durability control} *)

val fsync_all : t -> unit
(** Make everything durable (checkpointing, §3.5): one namespace sync
    if the backend supports it, otherwise an fsync of every open file. *)

val crash : t -> unit
(** Crash-capable backends only: discard all unsynced data and
    invalidate open file handles, simulating a power failure. Raises
    [Invalid_argument] when {!supports_crash} is [false]. *)
