(** Storage environment: a flat namespace of append-only files.

    All engines (EvenDB, the LSM and FLSM baselines) perform I/O
    exclusively through an [Env.t], which routes every byte through an
    {!Io_stats.t}. Two backends:

    - [disk dir] — real files under [dir] (fsync maps to [Unix.fsync]);
    - [memory ()] — an in-process filesystem that additionally models
      crashes: each file tracks its last-fsynced length, and {!crash}
      discards every unsynced suffix, which is how the recovery tests
      validate the paper's prefix-consistency guarantee (§3.5).

    Files are append-only (SSTables are written once; logs only grow),
    matching the paper's funk layout. Metadata operations (create,
    delete, rename) are treated as immediately durable; only appended
    data is subject to loss on [crash].

    All operations are thread-safe. *)

type t
type file

val disk : string -> t
(** [disk dir] creates [dir] if missing and roots the namespace there. *)

val memory : unit -> t

val stats : t -> Io_stats.t

val is_memory : t -> bool

(** {2 Writing} *)

val create : t -> string -> file
(** Create (or truncate) a file and open it for appending. *)

val open_append : t -> string -> file
(** Open an existing file positioned at its end; creates it if absent. *)

val append : file -> string -> unit
val append_bytes : file -> bytes -> pos:int -> len:int -> unit

val file_size : file -> int
(** Current size including unflushed appends. *)

val flush : file -> unit
val fsync : file -> unit
(** [fsync] implies [flush]. *)

val close_file : file -> unit

(** {2 Reading} *)

val size : t -> string -> int
(** Raises [Not_found] if the file does not exist. *)

val read_at : t -> string -> off:int -> len:int -> string
(** Reads exactly [len] bytes; raises [Invalid_argument] if the range
    exceeds the file. Accounted in {!stats}. *)

val read_all : t -> string -> string

val exists : t -> string -> bool

(** {2 Namespace} *)

val delete : t -> string -> unit
(** Removes the file; no-op if absent. *)

val rename : t -> old_name:string -> new_name:string -> unit
(** Atomic replace, used to publish rebuilt funks and manifests. *)

val list_files : t -> string list
(** All file names, unsorted. *)

val space_used : t -> int
(** Total bytes across all files (Figure 4). *)

(** {2 Durability control} *)

val fsync_all : t -> unit
(** Sync every open appendable file (checkpointing, §3.5). *)

val crash : t -> unit
(** Memory backend only: discard all unsynced data and invalidate open
    file handles, simulating a power failure. Raises
    [Invalid_argument] on a disk env. *)
