(* Per-operation tail-latency attribution. See attr.mli for the model;
   the implementation notes here are about the hot path.

   One frame per domain, preallocated and reused: with_op flips it
   live, timed charges the outermost cause section into a small int
   array, and close folds the array into the instance under one mutex.
   The frame is domain-local state, NOT instance state — leaf layers
   (Log_file, Munk) call [timed] without any handle, and whichever
   instance opened the frame receives the charge. *)

type cause =
  | Lock_wait
  | Log_append
  | Fsync
  | Disk_read
  | Rebalance
  | Compaction
  | Commit_wait
  | Cache_read
  | View_build
  | Repl_ship

let all_causes =
  [
    Lock_wait; Log_append; Fsync; Disk_read; Rebalance; Compaction; Commit_wait; Cache_read;
    View_build; Repl_ship;
  ]

let n_causes = 10

let cause_index = function
  | Lock_wait -> 0
  | Log_append -> 1
  | Fsync -> 2
  | Disk_read -> 3
  | Rebalance -> 4
  | Compaction -> 5
  | Commit_wait -> 6
  | Cache_read -> 7
  | View_build -> 8
  | Repl_ship -> 9

let cause_name = function
  | Lock_wait -> "lock_wait"
  | Log_append -> "log_append"
  | Fsync -> "fsync"
  | Disk_read -> "disk_read"
  | Rebalance -> "rebalance"
  | Compaction -> "compaction"
  | Commit_wait -> "commit_wait"
  | Cache_read -> "cache_read"
  | View_build -> "view_build"
  | Repl_ship -> "repl_ship"

let cause_of_index =
  [|
    Lock_wait; Log_append; Fsync; Disk_read; Rebalance; Compaction; Commit_wait; Cache_read;
    View_build; Repl_ship;
  |]

type kind = Put | Get | Delete | Scan

let n_kinds = 4
let kind_index = function Put -> 0 | Get -> 1 | Delete -> 2 | Scan -> 3
let kind_name = function Put -> "put" | Get -> "get" | Delete -> "delete" | Scan -> "scan"
let all_kinds = [ Put; Get; Delete; Scan ]

type slow_op = {
  so_kind : string;
  so_start_ns : int;
  so_wall_ns : int;
  so_dur_ns : int;
  so_threshold_ns : int;
  so_tid : int;
  so_causes : (string * int) list;
  so_spans : (string * int) list;
}

type t = {
  a_enabled : bool;
  mutable a_threshold_ns : int; (* plain int: single-word reads/writes are atomic *)
  a_share_ppm : int;
  a_cooldown_ops : int;
  a_trace : Obs.Trace.t;
  a_trips : Obs.Counter.t;
  a_mutex : Mutex.t; (* guards everything below *)
  a_cause_total : int array; (* kind * n_causes + cause, cumulative ns *)
  a_op_total : int array; (* per kind, cumulative op wall ns *)
  a_op_count : int array;
  mutable a_total_ops : int; (* monotone op counter (cooldown clock) *)
  a_win_cause : int array; (* decayed window, per cause *)
  mutable a_win_total : int;
  mutable a_win_ops : int;
  a_last_trip : int array; (* a_total_ops at last trip, per cause *)
  a_ring : slow_op option array;
  mutable a_head : int;
  mutable a_slow_seen : int;
  mutable a_hook : (cause -> unit) option;
}

(* The domain-local op frame. fr_depth > 0 while inside a [timed]
   section, so nested sections fall through without touching the
   clock — the outermost cause wins and sums stay <= op wall time. *)
type frame = {
  mutable fr_live : bool;
  mutable fr_kind : int;
  mutable fr_depth : int;
  fr_causes : int array;
}

let frame_key =
  Domain.DLS.new_key (fun () ->
      { fr_live = false; fr_kind = 0; fr_depth = 0; fr_causes = Array.make n_causes 0 })

let watchdog_span = "stall_watchdog"

let create ?(enabled = true) ?(threshold_ns = 1_000_000) ?(ring = 256)
    ?(watchdog_share_ppm = 500_000) ?(watchdog_cooldown_ops = 4096) obs =
  if ring <= 0 then invalid_arg "Attr.create: ring <= 0";
  if threshold_ns <= 0 then invalid_arg "Attr.create: threshold_ns <= 0";
  let tr = Obs.trace obs in
  Obs.Trace.declare tr watchdog_span;
  let t =
    {
      a_enabled = enabled;
      a_threshold_ns = threshold_ns;
      a_share_ppm = watchdog_share_ppm;
      a_cooldown_ops = max 1 watchdog_cooldown_ops;
      a_trace = tr;
      a_trips = Obs.counter obs "attr.watchdog.trips";
      a_mutex = Mutex.create ();
      a_cause_total = Array.make (n_kinds * n_causes) 0;
      a_op_total = Array.make n_kinds 0;
      a_op_count = Array.make n_kinds 0;
      a_total_ops = 0;
      a_win_cause = Array.make n_causes 0;
      a_win_total = 0;
      a_win_ops = 0;
      (* Far enough in the "past" that the first check clears the
         cooldown, without min_int's subtraction overflow. *)
      a_last_trip = Array.make n_causes (-max 1 watchdog_cooldown_ops - 1);
      a_ring = Array.make ring None;
      a_head = 0;
      a_slow_seen = 0;
      a_hook = None;
    }
  in
  let locked f =
    Mutex.lock t.a_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.a_mutex) f
  in
  List.iter
    (fun c ->
      let i = cause_index c in
      Obs.probe obs
        ("attr.frac_ppm." ^ cause_name c)
        (fun () ->
          locked (fun () ->
              if t.a_win_total = 0 then 0 else t.a_win_cause.(i) * 1_000_000 / t.a_win_total));
      Obs.probe obs
        ("attr.total_ns." ^ cause_name c)
        (fun () ->
          locked (fun () ->
              let acc = ref 0 in
              for k = 0 to n_kinds - 1 do
                acc := !acc + t.a_cause_total.((k * n_causes) + i)
              done;
              !acc)))
    all_causes;
  Obs.probe obs "attr.slow.seen" (fun () -> locked (fun () -> t.a_slow_seen));
  Obs.probe obs "attr.slow.kept" (fun () ->
      locked (fun () ->
          Array.fold_left (fun acc s -> match s with Some _ -> acc + 1 | None -> acc) 0 t.a_ring));
  Obs.probe obs "attr.slow.threshold_ns" (fun () -> t.a_threshold_ns);
  t

let enabled t = t.a_enabled
let threshold_ns t = t.a_threshold_ns

let set_trip_hook t f =
  Mutex.lock t.a_mutex;
  t.a_hook <- Some f;
  Mutex.unlock t.a_mutex

let watchdog_trips t = Obs.Counter.get t.a_trips

(* ------------------------------------------------------------------ *)
(* Hot path                                                            *)

let timed cause f =
  let fr = Domain.DLS.get frame_key in
  if fr.fr_live && fr.fr_depth = 0 then begin
    fr.fr_depth <- 1;
    let t0 = Obs.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let d = Obs.now_ns () - t0 in
        fr.fr_depth <- 0;
        let i = cause_index cause in
        fr.fr_causes.(i) <- fr.fr_causes.(i) + if d > 0 then d else 0)
      f
  end
  else f ()

(* Overlap (ns) of closed trace spans with the op's [t0, t1] interval;
   only computed for slow ops, so the ring scan amortizes to nothing. *)
let overlapping_spans t ~t0 ~t1 =
  List.fold_left
    (fun acc (e : Obs.Trace.event) ->
      if e.Obs.Trace.ev_name = watchdog_span then acc
      else
        let s = e.Obs.Trace.ev_start_ns and d = e.Obs.Trace.ev_dur_ns in
        let overlap = min (s + d) t1 - max s t0 in
        if overlap <= 0 then acc
        else
          match List.assoc_opt e.Obs.Trace.ev_name acc with
          | Some prev -> (e.Obs.Trace.ev_name, prev + overlap) :: List.remove_assoc e.Obs.Trace.ev_name acc
          | None -> (e.Obs.Trace.ev_name, overlap) :: acc)
    []
    (Obs.Trace.recent t.a_trace)
  |> List.sort compare

(* Decayed window: halve everything once it covers ~1k ops, so the
   fractions track the last ~2k ops with integer arithmetic only. *)
let decay_window_locked t =
  if t.a_win_ops >= 1024 then begin
    for i = 0 to n_causes - 1 do
      t.a_win_cause.(i) <- t.a_win_cause.(i) asr 1
    done;
    t.a_win_total <- t.a_win_total asr 1;
    t.a_win_ops <- t.a_win_ops asr 1
  end

(* Watchdog decision, under the lock; returns the cause to fire on (if
   any) so the side effects can run outside the lock — the trip hook
   ticks the flight recorder, whose snapshot reads our probes, which
   retake a_mutex. *)
let watchdog_locked t =
  if t.a_share_ppm <= 0 || t.a_total_ops land 63 <> 0 || t.a_win_total < 1_000_000 then None
  else begin
    let best = ref (-1) and best_ns = ref 0 in
    for i = 0 to n_causes - 1 do
      if t.a_win_cause.(i) > !best_ns then begin
        best := i;
        best_ns := t.a_win_cause.(i)
      end
    done;
    if !best < 0 then None
    else
      let frac = !best_ns * 1_000_000 / t.a_win_total in
      if frac >= t.a_share_ppm && t.a_total_ops - t.a_last_trip.(!best) >= t.a_cooldown_ops then begin
        t.a_last_trip.(!best) <- t.a_total_ops;
        Some (cause_of_index.(!best), frac)
      end
      else None
  end

let close_op t fr ~t0 ~t1 ~tid =
  let dur = if t1 > t0 then t1 - t0 else 0 in
  let kind = fr.fr_kind in
  let threshold = t.a_threshold_ns in
  let slow = dur >= threshold in
  (* Trace.recent takes the trace mutex; do it before a_mutex so lock
     order stays trace-free inside attribution. *)
  let spans = if slow then overlapping_spans t ~t0 ~t1 else [] in
  Mutex.lock t.a_mutex;
  let base = kind * n_causes in
  for i = 0 to n_causes - 1 do
    let v = fr.fr_causes.(i) in
    if v > 0 then begin
      t.a_cause_total.(base + i) <- t.a_cause_total.(base + i) + v;
      t.a_win_cause.(i) <- t.a_win_cause.(i) + min v dur
    end
  done;
  t.a_op_total.(kind) <- t.a_op_total.(kind) + dur;
  t.a_op_count.(kind) <- t.a_op_count.(kind) + 1;
  t.a_win_total <- t.a_win_total + dur;
  t.a_win_ops <- t.a_win_ops + 1;
  t.a_total_ops <- t.a_total_ops + 1;
  decay_window_locked t;
  if slow then begin
    let causes = ref [] in
    for i = n_causes - 1 downto 0 do
      if fr.fr_causes.(i) > 0 then
        causes := (cause_name cause_of_index.(i), fr.fr_causes.(i)) :: !causes
    done;
    t.a_ring.(t.a_head) <-
      Some
        {
          so_kind = kind_name (List.nth all_kinds kind);
          so_start_ns = t0;
          so_wall_ns = Obs.to_wall_ns t0;
          so_dur_ns = dur;
          so_threshold_ns = threshold;
          so_tid = tid;
          so_causes = !causes;
          so_spans = spans;
        };
    t.a_head <- (t.a_head + 1) mod Array.length t.a_ring;
    t.a_slow_seen <- t.a_slow_seen + 1
  end;
  let trip = watchdog_locked t in
  let hook = t.a_hook in
  Mutex.unlock t.a_mutex;
  match trip with
  | None -> ()
  | Some (cause, frac) ->
    Obs.Counter.incr t.a_trips;
    Obs.Trace.with_span t.a_trace ~name:watchdog_span
      ~attrs:[ ("cause_" ^ cause_name cause, 1); ("frac_ppm", frac) ]
      (fun _ -> ());
    (match hook with Some f -> (try f cause with _ -> ()) | None -> ())

let with_op t kind timer f =
  if not t.a_enabled then Obs.Timer.time timer f
  else begin
    let fr = Domain.DLS.get frame_key in
    if fr.fr_live then Obs.Timer.time timer f
    else begin
      fr.fr_live <- true;
      fr.fr_kind <- kind_index kind;
      fr.fr_depth <- 0;
      Array.fill fr.fr_causes 0 n_causes 0;
      let tid = Thread.id (Thread.self ()) in
      let t0 = Obs.now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let t1 = Obs.now_ns () in
          fr.fr_live <- false;
          Obs.Timer.record_ns timer (t1 - t0);
          close_op t fr ~t0 ~t1 ~tid)
        f
    end
  end

(* ------------------------------------------------------------------ *)
(* Thresholds, introspection                                           *)

let clear_ring_locked t =
  Array.fill t.a_ring 0 (Array.length t.a_ring) None;
  t.a_head <- 0;
  t.a_slow_seen <- 0

let set_threshold_ns t ns =
  if ns <= 0 then invalid_arg "Attr.set_threshold_ns: ns <= 0";
  Mutex.lock t.a_mutex;
  t.a_threshold_ns <- ns;
  clear_ring_locked t;
  Mutex.unlock t.a_mutex

let frac_ppm t cause =
  Mutex.lock t.a_mutex;
  let i = cause_index cause in
  let v = if t.a_win_total = 0 then 0 else t.a_win_cause.(i) * 1_000_000 / t.a_win_total in
  Mutex.unlock t.a_mutex;
  v

let cause_total_ns t cause =
  Mutex.lock t.a_mutex;
  let i = cause_index cause in
  let acc = ref 0 in
  for k = 0 to n_kinds - 1 do
    acc := !acc + t.a_cause_total.((k * n_causes) + i)
  done;
  Mutex.unlock t.a_mutex;
  !acc

let op_count t kind =
  Mutex.lock t.a_mutex;
  let v = t.a_op_count.(kind_index kind) in
  Mutex.unlock t.a_mutex;
  v

let op_total_ns t kind =
  Mutex.lock t.a_mutex;
  let v = t.a_op_total.(kind_index kind) in
  Mutex.unlock t.a_mutex;
  v

let slow_ops t =
  Mutex.lock t.a_mutex;
  let n = Array.length t.a_ring in
  let acc = ref [] in
  for i = 0 to n - 1 do
    match t.a_ring.((t.a_head + i) mod n) with
    | Some s -> acc := s :: !acc
    | None -> ()
  done;
  Mutex.unlock t.a_mutex;
  List.rev !acc

let slow_seen t =
  Mutex.lock t.a_mutex;
  let v = t.a_slow_seen in
  Mutex.unlock t.a_mutex;
  v

let reset t =
  Mutex.lock t.a_mutex;
  Array.fill t.a_cause_total 0 (Array.length t.a_cause_total) 0;
  Array.fill t.a_op_total 0 n_kinds 0;
  Array.fill t.a_op_count 0 n_kinds 0;
  Array.fill t.a_win_cause 0 n_causes 0;
  t.a_win_total <- 0;
  t.a_win_ops <- 0;
  t.a_total_ops <- 0;
  Array.fill t.a_last_trip 0 n_causes (-t.a_cooldown_ops - 1);
  clear_ring_locked t;
  Mutex.unlock t.a_mutex;
  (* Trip state includes the registry counter (a counter has no set;
     compensate it down to zero). *)
  Obs.Counter.add t.a_trips (-Obs.Counter.get t.a_trips)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jfield buf first k render =
  if !first then first := false else Buffer.add_char buf ',';
  Buffer.add_char buf '"';
  Buffer.add_string buf (json_escape k);
  Buffer.add_string buf "\":";
  render buf

let jobj buf fields =
  Buffer.add_char buf '{';
  let first = ref true in
  List.iter (fun (k, render) -> jfield buf first k render) fields;
  Buffer.add_char buf '}'

let jint v buf = Buffer.add_string buf (string_of_int v)

let jstr s buf =
  Buffer.add_char buf '"';
  Buffer.add_string buf (json_escape s);
  Buffer.add_char buf '"'

let slow_record_fields ?(tags = []) s =
  List.map (fun (k, v) -> (k, jstr v)) tags
  @ [
      ("kind", jstr s.so_kind);
      ("wall_ns", jint s.so_wall_ns);
      ("dur_ns", jint s.so_dur_ns);
      ("threshold_ns", jint s.so_threshold_ns);
      ("tid", jint s.so_tid);
      ( "causes",
        fun buf -> jobj buf (List.map (fun (k, v) -> (k, jint v)) s.so_causes) );
      ( "attributed_ns",
        jint (List.fold_left (fun acc (_, v) -> acc + v) 0 s.so_causes) );
      ( "overlapping_spans",
        fun buf -> jobj buf (List.map (fun (k, v) -> (k, jint v)) s.so_spans) );
    ]

let slow_ops_jsonl ?tags t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      jobj buf (slow_record_fields ?tags s);
      Buffer.add_char buf '\n')
    (slow_ops t);
  Buffer.contents buf

let chrome_events t =
  List.concat_map
    (fun s ->
      let attributed = List.fold_left (fun acc (_, v) -> acc + v) 0 s.so_causes in
      let parent =
        {
          Obs.Trace.ev_name = "slow:" ^ s.so_kind;
          ev_start_ns = s.so_start_ns;
          ev_dur_ns = s.so_dur_ns;
          ev_tid = s.so_tid;
          ev_attrs =
            [
              ("threshold_ns", s.so_threshold_ns);
              ("unattributed_ns", max 0 (s.so_dur_ns - attributed));
            ];
        }
      in
      let _, children =
        List.fold_left
          (fun (cursor, acc) (name, ns) ->
            let ev =
              {
                Obs.Trace.ev_name = "cause:" ^ name;
                ev_start_ns = cursor;
                ev_dur_ns = ns;
                ev_tid = s.so_tid;
                ev_attrs = [];
              }
            in
            (cursor + ns, ev :: acc))
          (s.so_start_ns, []) s.so_causes
      in
      parent :: List.rev children)
    (slow_ops t)

let to_json t =
  let slow = slow_ops t in
  Mutex.lock t.a_mutex;
  let threshold = t.a_threshold_ns in
  let op_total = Array.copy t.a_op_total in
  let op_count = Array.copy t.a_op_count in
  let cause_total = Array.copy t.a_cause_total in
  let win_cause = Array.copy t.a_win_cause in
  let win_total = t.a_win_total in
  let slow_seen_n = t.a_slow_seen in
  Mutex.unlock t.a_mutex;
  let buf = Buffer.create 1024 in
  let causes_obj arr base =
    fun buf ->
      jobj buf
        (List.map (fun c -> (cause_name c, jint arr.(base + cause_index c))) all_causes)
  in
  let slow_total = List.fold_left (fun acc s -> acc + s.so_dur_ns) 0 slow in
  let slow_causes =
    List.fold_left
      (fun acc s ->
        List.iter
          (fun (name, v) ->
            match List.assoc_opt name !acc with
            | Some prev -> acc := (name, prev + v) :: List.remove_assoc name !acc
            | None -> acc := (name, v) :: !acc)
          s.so_causes;
        acc)
      (ref []) slow
  in
  let slow_causes = List.sort (fun (_, a) (_, b) -> compare b a) !slow_causes in
  let slow_attributed = List.fold_left (fun acc (_, v) -> acc + v) 0 slow_causes in
  let top_cause = match slow_causes with (n, _) :: _ -> n | [] -> "" in
  jobj buf
    [
      ("enabled", fun b -> Buffer.add_string b (string_of_bool t.a_enabled));
      ("threshold_ns", jint threshold);
      ( "ops",
        fun buf ->
          jobj buf
            (List.map
               (fun k ->
                 let ki = kind_index k in
                 ( kind_name k,
                   fun buf ->
                     jobj buf
                       [
                         ("count", jint op_count.(ki));
                         ("total_ns", jint op_total.(ki));
                         ("causes", causes_obj cause_total (ki * n_causes));
                       ] ))
               all_kinds) );
      ( "frac_ppm",
        fun buf ->
          jobj buf
            (List.map
               (fun c ->
                 ( cause_name c,
                   jint
                     (if win_total = 0 then 0
                      else win_cause.(cause_index c) * 1_000_000 / win_total) ))
               all_causes) );
      ( "watchdog",
        fun buf ->
          jobj buf
            [
              ("share_ppm", jint t.a_share_ppm);
              ("cooldown_ops", jint t.a_cooldown_ops);
              ("trips", jint (Obs.Counter.get t.a_trips));
            ] );
      ( "slow",
        fun buf ->
          jobj buf
            [
              ("seen", jint slow_seen_n);
              ("kept", jint (List.length slow));
              ("threshold_ns", jint threshold);
              ("total_ns", jint slow_total);
              ("attributed_ns", jint slow_attributed);
              ( "attributed_share",
                fun b ->
                  Buffer.add_string b
                    (Printf.sprintf "%.4f"
                       (if slow_total = 0 then 0.0
                        else float_of_int slow_attributed /. float_of_int slow_total)) );
              ("top_cause", jstr top_cause);
              ("causes", fun buf -> jobj buf (List.map (fun (k, v) -> (k, jint v)) slow_causes));
            ] );
    ];
  Buffer.contents buf
