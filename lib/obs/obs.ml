open Evendb_util

(* Monotonic clock (CLOCK_MONOTONIC via bechamel's noalloc stub), so an
   NTP step can never produce a negative or absurd duration. The
   wall-clock epoch below maps monotonic timestamps back to wall-clock
   time solely for trace export, where absolute timestamps matter. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())
let epoch_mono_ns = now_ns ()
let epoch_wall_ns = int_of_float (Unix.gettimeofday () *. 1e9)
let to_wall_ns ns = ns - epoch_mono_ns + epoch_wall_ns

(* ------------------------------------------------------------------ *)
(* Instruments                                                         *)

module Counter = struct
  type t = int Atomic.t

  let make () : t = Atomic.make 0
  let incr t = ignore (Atomic.fetch_and_add t 1)
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
  let reset t = Atomic.set t 0
end

module Gauge = struct
  type t = int Atomic.t

  let make () : t = Atomic.make 0
  let set t v = Atomic.set t v
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
  let reset t = Atomic.set t 0
end

module Timer = struct
  type t = { mutex : Mutex.t; hist : Histogram.t }

  let make () = { mutex = Mutex.create (); hist = Histogram.create () }

  let record_ns t ns =
    Mutex.lock t.mutex;
    Histogram.record t.hist ns;
    Mutex.unlock t.mutex

  let time t f =
    let t0 = now_ns () in
    Fun.protect ~finally:(fun () -> record_ns t (now_ns () - t0)) f

  let count t =
    Mutex.lock t.mutex;
    let n = Histogram.count t.hist in
    Mutex.unlock t.mutex;
    n

  (* (count, mean, [p50; p95; p99], min, max, buckets) under the lock. *)
  let summary t =
    Mutex.lock t.mutex;
    let n = Histogram.count t.hist in
    let mean = Histogram.mean t.hist in
    let ps = Histogram.percentiles t.hist [ 50.0; 95.0; 99.0 ] in
    let mn = Histogram.min_value t.hist in
    let mx = Histogram.max_value t.hist in
    let buckets = Histogram.buckets t.hist in
    Mutex.unlock t.mutex;
    (n, mean, ps, mn, mx, buckets)

  let reset t =
    Mutex.lock t.mutex;
    Histogram.reset t.hist;
    Mutex.unlock t.mutex
end

(* ------------------------------------------------------------------ *)
(* Event tracing                                                       *)

module Trace = struct
  type event = {
    ev_name : string;
    ev_start_ns : int;
    ev_dur_ns : int;
    ev_tid : int;
    ev_attrs : (string * int) list;
  }

  type agg = {
    mutable agg_count : int;
    mutable agg_total_ns : int;
    agg_attrs : (string, int) Hashtbl.t;
  }

  type t = {
    mutex : Mutex.t;
    ring : event option array;
    mutable head : int; (* next write position *)
    aggs : (string, agg) Hashtbl.t;
  }

  type span = {
    sp_trace : t;
    sp_name : string;
    sp_start_ns : int;
    sp_tid : int;
    sp_mutex : Mutex.t;
    mutable sp_attrs : (string * int) list;
  }

  type span_stat = {
    span_name : string;
    span_count : int;
    span_total_ns : int;
    span_attr_totals : (string * int) list;
  }

  let create ?(capacity = 256) () =
    if capacity <= 0 then invalid_arg "Obs.Trace.create: capacity <= 0";
    { mutex = Mutex.create (); ring = Array.make capacity None; head = 0; aggs = Hashtbl.create 16 }

  let agg_of_locked t name =
    match Hashtbl.find_opt t.aggs name with
    | Some a -> a
    | None ->
      let a = { agg_count = 0; agg_total_ns = 0; agg_attrs = Hashtbl.create 4 } in
      Hashtbl.replace t.aggs name a;
      a

  let declare t name =
    Mutex.lock t.mutex;
    ignore (agg_of_locked t name);
    Mutex.unlock t.mutex

  let add_attr span key v =
    Mutex.lock span.sp_mutex;
    span.sp_attrs <-
      (match List.assoc_opt key span.sp_attrs with
      | Some prev -> (key, prev + v) :: List.remove_assoc key span.sp_attrs
      | None -> (key, v) :: span.sp_attrs);
    Mutex.unlock span.sp_mutex

  let close_span span =
    let dur = now_ns () - span.sp_start_ns in
    let dur = if dur < 0 then 0 else dur in
    let t = span.sp_trace in
    Mutex.lock t.mutex;
    let a = agg_of_locked t span.sp_name in
    a.agg_count <- a.agg_count + 1;
    a.agg_total_ns <- a.agg_total_ns + dur;
    List.iter
      (fun (k, v) ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt a.agg_attrs k) in
        Hashtbl.replace a.agg_attrs k (prev + v))
      span.sp_attrs;
    t.ring.(t.head) <-
      Some
        {
          ev_name = span.sp_name;
          ev_start_ns = span.sp_start_ns;
          ev_dur_ns = dur;
          ev_tid = span.sp_tid;
          ev_attrs = List.rev span.sp_attrs;
        };
    t.head <- (t.head + 1) mod Array.length t.ring;
    Mutex.unlock t.mutex

  let with_span t ?(attrs = []) ~name f =
    let span =
      {
        sp_trace = t;
        sp_name = name;
        sp_start_ns = now_ns ();
        sp_tid = Thread.id (Thread.self ());
        sp_mutex = Mutex.create ();
        sp_attrs = List.rev attrs;
      }
    in
    Fun.protect ~finally:(fun () -> close_span span) (fun () -> f span)

  let stats t =
    Mutex.lock t.mutex;
    let all =
      Hashtbl.fold
        (fun name a acc ->
          let attrs =
            List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) a.agg_attrs [])
          in
          {
            span_name = name;
            span_count = a.agg_count;
            span_total_ns = a.agg_total_ns;
            span_attr_totals = attrs;
          }
          :: acc)
        t.aggs []
    in
    Mutex.unlock t.mutex;
    List.sort (fun a b -> String.compare a.span_name b.span_name) all

  let recent t =
    Mutex.lock t.mutex;
    let n = Array.length t.ring in
    let acc = ref [] in
    for i = 0 to n - 1 do
      match t.ring.((t.head + i) mod n) with
      | Some e -> acc := e :: !acc
      | None -> ()
    done;
    Mutex.unlock t.mutex;
    List.rev !acc

  let reset t =
    Mutex.lock t.mutex;
    Array.fill t.ring 0 (Array.length t.ring) None;
    t.head <- 0;
    Hashtbl.iter
      (fun _ a ->
        a.agg_count <- 0;
        a.agg_total_ns <- 0;
        Hashtbl.reset a.agg_attrs)
      t.aggs;
    Mutex.unlock t.mutex
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_timer of Timer.t
  | I_probe of (unit -> int)

type t = {
  mutex : Mutex.t; (* protects registration only; bumps are lock-free *)
  instruments : (string, instrument) Hashtbl.t;
  tr : Trace.t;
}

let create ?trace_capacity () =
  {
    mutex = Mutex.create ();
    instruments = Hashtbl.create 64;
    tr = Trace.create ?capacity:trace_capacity ();
  }

let trace t = t.tr

let register t name make describe =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.instruments name with
    | Some i -> describe i
    | None ->
      let i, v = make () in
      Hashtbl.replace t.instruments name i;
      Some v
  in
  Mutex.unlock t.mutex;
  match r with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Obs: %S already registered with another type" name)

let counter t name =
  register t name
    (fun () ->
      let c = Counter.make () in
      (I_counter c, c))
    (function I_counter c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () ->
      let g = Gauge.make () in
      (I_gauge g, g))
    (function I_gauge g -> Some g | _ -> None)

let timer t name =
  register t name
    (fun () ->
      let tm = Timer.make () in
      (I_timer tm, tm))
    (function I_timer tm -> Some tm | _ -> None)

let probe t name f =
  Mutex.lock t.mutex;
  Hashtbl.replace t.instruments name (I_probe f);
  Mutex.unlock t.mutex

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type timer_summary = {
  t_count : int;
  t_mean_ns : float;
  t_p50_ns : int;
  t_p95_ns : int;
  t_p99_ns : int;
  t_min_ns : int;
  t_max_ns : int;
  t_buckets : (int * int) list;
}

type value = Counter of int | Gauge of int | Timer of timer_summary

type snapshot = {
  metrics : (string * value) list;
  spans : Trace.span_stat list;
}

let snapshot t : snapshot =
  let instruments =
    Mutex.lock t.mutex;
    let l = Hashtbl.fold (fun name i acc -> (name, i) :: acc) t.instruments [] in
    Mutex.unlock t.mutex;
    l
  in
  let metrics =
    List.map
      (fun (name, i) ->
        let v =
          match i with
          | I_counter c -> Counter (Counter.get c)
          | I_gauge g -> Gauge (Gauge.get g)
          | I_probe f -> Gauge (try f () with _ -> 0)
          | I_timer tm ->
            let n, mean, ps, mn, mx, buckets = Timer.summary tm in
            let p50, p95, p99 =
              match ps with [ a; b; c ] -> (a, b, c) | _ -> (0, 0, 0)
            in
            Timer
              {
                t_count = n;
                t_mean_ns = mean;
                t_p50_ns = p50;
                t_p95_ns = p95;
                t_p99_ns = p99;
                t_min_ns = mn;
                t_max_ns = mx;
                t_buckets = buckets;
              }
        in
        (name, v))
      instruments
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { metrics; spans = Trace.stats t.tr }

let reset t =
  Mutex.lock t.mutex;
  Hashtbl.iter
    (fun _ i ->
      match i with
      | I_counter c -> Counter.reset c
      | I_gauge g -> Gauge.reset g
      | I_timer tm -> Timer.reset tm
      | I_probe _ -> ())
    t.instruments;
  Mutex.unlock t.mutex;
  Trace.reset t.tr

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_json_obj buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, render) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape k);
      Buffer.add_string buf "\":";
      render buf)
    fields;
  Buffer.add_char buf '}'

let jint v buf = Buffer.add_string buf (string_of_int v)
let jfloat v buf = Buffer.add_string buf (Printf.sprintf "%.1f" v)

let jstr s buf =
  Buffer.add_char buf '"';
  Buffer.add_string buf (json_escape s);
  Buffer.add_char buf '"'

let jbuckets buckets buf =
  Buffer.add_char buf '[';
  List.iteri
    (fun i (ub, c) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "[%d,%d]" ub c))
    buckets;
  Buffer.add_char buf ']'

let to_json t =
  let s = snapshot t in
  let counters = List.filter_map (function n, Counter v -> Some (n, jint v) | _ -> None) s.metrics in
  let gauges = List.filter_map (function n, Gauge v -> Some (n, jint v) | _ -> None) s.metrics in
  let timers =
    List.filter_map
      (function
        | n, Timer tm ->
          Some
            ( n,
              fun buf ->
                add_json_obj buf
                  [
                    ("count", jint tm.t_count);
                    ("mean_ns", jfloat tm.t_mean_ns);
                    ("p50_ns", jint tm.t_p50_ns);
                    ("p95_ns", jint tm.t_p95_ns);
                    ("p99_ns", jint tm.t_p99_ns);
                    ("min_ns", jint tm.t_min_ns);
                    ("max_ns", jint tm.t_max_ns);
                    ("buckets", jbuckets tm.t_buckets);
                  ] )
        | _ -> None)
      s.metrics
  in
  let spans =
    List.map
      (fun (st : Trace.span_stat) ->
        ( st.Trace.span_name,
          fun buf ->
            add_json_obj buf
              [
                ("count", jint st.Trace.span_count);
                ("total_ns", jint st.Trace.span_total_ns);
                ( "attrs",
                  fun buf ->
                    add_json_obj buf
                      (List.map (fun (k, v) -> (k, jint v)) st.Trace.span_attr_totals) );
              ] ))
      s.spans
  in
  let buf = Buffer.create 1024 in
  add_json_obj buf
    [
      ("counters", fun buf -> add_json_obj buf counters);
      ("gauges", fun buf -> add_json_obj buf gauges);
      ("timers", fun buf -> add_json_obj buf timers);
      ("spans", fun buf -> add_json_obj buf spans);
    ];
  Buffer.contents buf

let sanitize name =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_') name

(* Label values may contain any UTF-8; the exposition format requires
   backslash, double-quote and newline to be escaped (metric and label
   NAMES stay sanitized — the charset there is restricted). *)
let prom_label_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One exposition over any number of registries. Each metric name gets
   its # HELP / # TYPE pair exactly once (the format forbids repeats),
   followed by one sample per registry; a registry tagged [Some v]
   labels its samples [<label>="v"] — how a sharded store exports
   per-shard series without concatenating (invalid) documents. *)
let to_prometheus_parts ~label (parts : (string option * snapshot) list) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf l; Buffer.add_char buf '\n') fmt in
  (* Sample labels: the registry's tag plus any per-sample labels. *)
  let lbl who extra =
    let items =
      (match who with
      | None -> []
      | Some v -> [ Printf.sprintf "%s=\"%s\"" label (prom_label_escape v) ])
      @ extra
    in
    match items with [] -> "" | items -> "{" ^ String.concat "," items ^ "}"
  in
  (* Union of metric names in sorted order, each with its per-registry
     samples in [parts] order. *)
  let tbl : (string, (string option * value) list ref) Hashtbl.t = Hashtbl.create 64 in
  let names = ref [] in
  List.iter
    (fun (who, s) ->
      List.iter
        (fun (name, v) ->
          (match Hashtbl.find_opt tbl name with
          | Some r -> r := (who, v) :: !r
          | None ->
            Hashtbl.add tbl name (ref [ (who, v) ]);
            names := name :: !names))
        s.metrics)
    parts;
  (* Exposition-format discipline: every sample belongs to a family
     declared by HELP/TYPE, a summary family carries only its quantile
     samples plus [_sum]/[_count], and all samples of a family form one
     contiguous group. A timer therefore exports as three families —
     the summary, and [_min]/[_max] gauges (true observed extrema,
     which Prometheus summaries have no slot for). *)
  List.iter
    (fun name ->
      let samples = List.rev !(Hashtbl.find tbl name) in
      let m = "evendb_" ^ sanitize name in
      let each f = List.iter (fun (who, v) -> f who v) samples in
      match samples with
      | (_, Counter _) :: _ ->
        line "# HELP %s evendb counter %s" m (prom_label_escape name);
        line "# TYPE %s counter" m;
        each (fun who v -> match v with Counter c -> line "%s%s %d" m (lbl who []) c | _ -> ())
      | (_, Gauge _) :: _ ->
        line "# HELP %s evendb gauge %s" m (prom_label_escape name);
        line "# TYPE %s gauge" m;
        each (fun who v -> match v with Gauge g -> line "%s%s %d" m (lbl who []) g | _ -> ())
      | (_, Timer _) :: _ ->
        line "# HELP %s_ns evendb latency summary %s (nanoseconds)" m (prom_label_escape name);
        line "# TYPE %s_ns summary" m;
        each (fun who v ->
            match v with
            | Timer tm ->
              line "%s_ns%s %d" m (lbl who [ "quantile=\"0.5\"" ]) tm.t_p50_ns;
              line "%s_ns%s %d" m (lbl who [ "quantile=\"0.95\"" ]) tm.t_p95_ns;
              line "%s_ns%s %d" m (lbl who [ "quantile=\"0.99\"" ]) tm.t_p99_ns;
              line "%s_ns_sum%s %.1f" m (lbl who []) (tm.t_mean_ns *. float_of_int tm.t_count);
              line "%s_ns_count%s %d" m (lbl who []) tm.t_count
            | _ -> ());
        line "# HELP %s_ns_min evendb minimum observed latency %s (nanoseconds)" m
          (prom_label_escape name);
        line "# TYPE %s_ns_min gauge" m;
        each (fun who v ->
            match v with Timer tm -> line "%s_ns_min%s %d" m (lbl who []) tm.t_min_ns | _ -> ());
        line "# HELP %s_ns_max evendb maximum observed latency %s (nanoseconds)" m
          (prom_label_escape name);
        line "# TYPE %s_ns_max gauge" m;
        each (fun who v ->
            match v with Timer tm -> line "%s_ns_max%s %d" m (lbl who []) tm.t_max_ns | _ -> ())
      | [] -> ())
    (List.sort compare (List.rev !names));
  if List.exists (fun (_, s) -> s.spans <> []) parts then begin
    line "# HELP evendb_span_count closed spans per span name";
    line "# TYPE evendb_span_count counter";
    List.iter
      (fun (who, s) ->
        List.iter
          (fun (st : Trace.span_stat) ->
            line "evendb_span_count%s %d"
              (lbl who [ Printf.sprintf "name=\"%s\"" (prom_label_escape st.Trace.span_name) ])
              st.Trace.span_count)
          s.spans)
      parts;
    line "# HELP evendb_span_total_ns cumulative span duration per span name";
    line "# TYPE evendb_span_total_ns counter";
    List.iter
      (fun (who, s) ->
        List.iter
          (fun (st : Trace.span_stat) ->
            line "evendb_span_total_ns%s %d"
              (lbl who [ Printf.sprintf "name=\"%s\"" (prom_label_escape st.Trace.span_name) ])
              st.Trace.span_total_ns)
          s.spans)
      parts;
    if
      List.exists
        (fun (_, s) ->
          List.exists (fun (st : Trace.span_stat) -> st.Trace.span_attr_totals <> []) s.spans)
        parts
    then begin
      line "# HELP evendb_span_attr_total summed span attributes per span name";
      line "# TYPE evendb_span_attr_total counter";
      List.iter
        (fun (who, s) ->
          List.iter
            (fun (st : Trace.span_stat) ->
              List.iter
                (fun (k, v) ->
                  line "evendb_span_attr_total%s %d"
                    (lbl who
                       [
                         Printf.sprintf "name=\"%s\"" (prom_label_escape st.Trace.span_name);
                         Printf.sprintf "attr=\"%s\"" (prom_label_escape k);
                       ])
                    v)
                st.Trace.span_attr_totals)
            s.spans)
        parts
    end
  end;
  Buffer.contents buf

let to_prometheus t = to_prometheus_parts ~label:"shard" [ (None, snapshot t) ]

let to_prometheus_many ?(label = "shard") parts =
  to_prometheus_parts ~label (List.map (fun (v, t) -> (Some v, snapshot t)) parts)

(* Chrome trace-event (chrome://tracing / Perfetto) export of the span
   ring buffer. Complete events ("ph":"X") with microsecond wall-clock
   timestamps; one metadata event names the process and each thread id
   seen in the ring. *)
let to_chrome_trace ?(process_name = "evendb") ?(extra = []) t =
  let events = Trace.recent t.tr @ extra in
  let pid = Unix.getpid () in
  let jus ns buf = Buffer.add_string buf (Printf.sprintf "%.3f" (float_of_int ns /. 1e3)) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit fields =
    if !first then first := false else Buffer.add_char buf ',';
    add_json_obj buf fields
  in
  let metadata ~name ~tid ~value =
    emit
      [
        ("name", jstr name);
        ("ph", jstr "M");
        ("pid", jint pid);
        ("tid", jint tid);
        ("args", fun buf -> add_json_obj buf [ ("name", jstr value) ]);
      ]
  in
  metadata ~name:"process_name" ~tid:0 ~value:process_name;
  let tids =
    List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.Trace.ev_tid) events)
  in
  List.iter
    (fun tid -> metadata ~name:"thread_name" ~tid ~value:(Printf.sprintf "thread-%d" tid))
    tids;
  List.iter
    (fun (e : Trace.event) ->
      emit
        [
          ("name", jstr e.Trace.ev_name);
          ("cat", jstr "evendb");
          ("ph", jstr "X");
          ("ts", jus (to_wall_ns e.Trace.ev_start_ns));
          ("dur", jus e.Trace.ev_dur_ns);
          ("pid", jint pid);
          ("tid", jint e.Trace.ev_tid);
          ("args", fun buf -> add_json_obj buf (List.map (fun (k, v) -> (k, jint v)) e.Trace.ev_attrs));
        ])
    events;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Flight recorder: a ring of periodic snapshot deltas                  *)

module Recorder = struct
  type frame = {
    fr_seq : int;
    fr_at_ns : int;
    fr_wall_ns : int;
    fr_dur_ns : int;
    fr_deltas : (string * int) list;
    fr_gauges : (string * int) list;
  }

  type r = {
    r_mutex : Mutex.t;
    r_obs : t;
    r_ring : frame option array;
    mutable r_head : int;
    mutable r_seq : int;
    mutable r_last : (string * int) list; (* previous absolute counter values *)
    mutable r_last_at_ns : int;
  }

  type t = r

  (* Monotone series worth differencing: counters and timer op counts. *)
  let absolutes s =
    List.filter_map
      (function
        | n, Counter v -> Some (n, v)
        | n, Timer tm -> Some (n ^ ".count", tm.t_count)
        | _, Gauge _ -> None)
      s.metrics

  let create ?(capacity = 64) obs =
    if capacity <= 0 then invalid_arg "Obs.Recorder.create: capacity <= 0";
    {
      r_mutex = Mutex.create ();
      r_obs = obs;
      r_ring = Array.make capacity None;
      r_head = 0;
      r_seq = 0;
      r_last = absolutes (snapshot obs);
      r_last_at_ns = now_ns ();
    }

  let tick r =
    let s = snapshot r.r_obs in
    let at = now_ns () in
    let cur = absolutes s in
    Mutex.lock r.r_mutex;
    let deltas =
      List.filter_map
        (fun (n, v) ->
          let prev = Option.value ~default:0 (List.assoc_opt n r.r_last) in
          if v <> prev then Some (n, v - prev) else None)
        cur
    in
    let gauges = List.filter_map (function n, Gauge v -> Some (n, v) | _ -> None) s.metrics in
    let frame =
      {
        fr_seq = r.r_seq;
        fr_at_ns = at;
        fr_wall_ns = to_wall_ns at;
        fr_dur_ns = at - r.r_last_at_ns;
        fr_deltas = deltas;
        fr_gauges = gauges;
      }
    in
    r.r_ring.(r.r_head) <- Some frame;
    r.r_head <- (r.r_head + 1) mod Array.length r.r_ring;
    r.r_seq <- r.r_seq + 1;
    r.r_last <- cur;
    r.r_last_at_ns <- at;
    Mutex.unlock r.r_mutex;
    frame

  let frames r =
    Mutex.lock r.r_mutex;
    let n = Array.length r.r_ring in
    let acc = ref [] in
    for i = 0 to n - 1 do
      match r.r_ring.((r.r_head + i) mod n) with
      | Some f -> acc := f :: !acc
      | None -> ()
    done;
    Mutex.unlock r.r_mutex;
    List.rev !acc

  let reset r =
    Mutex.lock r.r_mutex;
    Array.fill r.r_ring 0 (Array.length r.r_ring) None;
    r.r_head <- 0;
    r.r_seq <- 0;
    r.r_last <- absolutes (snapshot r.r_obs);
    r.r_last_at_ns <- now_ns ();
    Mutex.unlock r.r_mutex

  let to_json r =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\"frames\":[";
    List.iteri
      (fun i f ->
        if i > 0 then Buffer.add_char buf ',';
        add_json_obj buf
          [
            ("seq", jint f.fr_seq);
            ("wall_ns", jint f.fr_wall_ns);
            ("dur_ns", jint f.fr_dur_ns);
            ("deltas", fun buf -> add_json_obj buf (List.map (fun (k, v) -> (k, jint v)) f.fr_deltas));
            ("gauges", fun buf -> add_json_obj buf (List.map (fun (k, v) -> (k, jint v)) f.fr_gauges));
          ])
      (frames r);
    Buffer.add_string buf "]}";
    Buffer.contents buf
end

let recorder ?capacity obs = Recorder.create ?capacity obs
