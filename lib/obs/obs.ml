open Evendb_util

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* ------------------------------------------------------------------ *)
(* Instruments                                                         *)

module Counter = struct
  type t = int Atomic.t

  let make () : t = Atomic.make 0
  let incr t = ignore (Atomic.fetch_and_add t 1)
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
  let reset t = Atomic.set t 0
end

module Gauge = struct
  type t = int Atomic.t

  let make () : t = Atomic.make 0
  let set t v = Atomic.set t v
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get t = Atomic.get t
  let reset t = Atomic.set t 0
end

module Timer = struct
  type t = { mutex : Mutex.t; hist : Histogram.t }

  let make () = { mutex = Mutex.create (); hist = Histogram.create () }

  let record_ns t ns =
    Mutex.lock t.mutex;
    Histogram.record t.hist ns;
    Mutex.unlock t.mutex

  let time t f =
    let t0 = now_ns () in
    Fun.protect ~finally:(fun () -> record_ns t (now_ns () - t0)) f

  let count t =
    Mutex.lock t.mutex;
    let n = Histogram.count t.hist in
    Mutex.unlock t.mutex;
    n

  (* (count, mean, [p50; p95; p99], max) under the lock, one pass. *)
  let summary t =
    Mutex.lock t.mutex;
    let n = Histogram.count t.hist in
    let mean = Histogram.mean t.hist in
    let ps = Histogram.percentiles t.hist [ 50.0; 95.0; 99.0 ] in
    let mx = Histogram.max_value t.hist in
    Mutex.unlock t.mutex;
    (n, mean, ps, mx)

  let reset t =
    Mutex.lock t.mutex;
    Histogram.reset t.hist;
    Mutex.unlock t.mutex
end

(* ------------------------------------------------------------------ *)
(* Event tracing                                                       *)

module Trace = struct
  type event = {
    ev_name : string;
    ev_start_ns : int;
    ev_dur_ns : int;
    ev_attrs : (string * int) list;
  }

  type agg = {
    mutable agg_count : int;
    mutable agg_total_ns : int;
    agg_attrs : (string, int) Hashtbl.t;
  }

  type t = {
    mutex : Mutex.t;
    ring : event option array;
    mutable head : int; (* next write position *)
    aggs : (string, agg) Hashtbl.t;
  }

  type span = {
    sp_trace : t;
    sp_name : string;
    sp_start_ns : int;
    sp_mutex : Mutex.t;
    mutable sp_attrs : (string * int) list;
  }

  type span_stat = {
    span_name : string;
    span_count : int;
    span_total_ns : int;
    span_attr_totals : (string * int) list;
  }

  let create ?(capacity = 256) () =
    if capacity <= 0 then invalid_arg "Obs.Trace.create: capacity <= 0";
    { mutex = Mutex.create (); ring = Array.make capacity None; head = 0; aggs = Hashtbl.create 16 }

  let agg_of_locked t name =
    match Hashtbl.find_opt t.aggs name with
    | Some a -> a
    | None ->
      let a = { agg_count = 0; agg_total_ns = 0; agg_attrs = Hashtbl.create 4 } in
      Hashtbl.replace t.aggs name a;
      a

  let declare t name =
    Mutex.lock t.mutex;
    ignore (agg_of_locked t name);
    Mutex.unlock t.mutex

  let add_attr span key v =
    Mutex.lock span.sp_mutex;
    span.sp_attrs <-
      (match List.assoc_opt key span.sp_attrs with
      | Some prev -> (key, prev + v) :: List.remove_assoc key span.sp_attrs
      | None -> (key, v) :: span.sp_attrs);
    Mutex.unlock span.sp_mutex

  let close_span span =
    let dur = now_ns () - span.sp_start_ns in
    let dur = if dur < 0 then 0 else dur in
    let t = span.sp_trace in
    Mutex.lock t.mutex;
    let a = agg_of_locked t span.sp_name in
    a.agg_count <- a.agg_count + 1;
    a.agg_total_ns <- a.agg_total_ns + dur;
    List.iter
      (fun (k, v) ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt a.agg_attrs k) in
        Hashtbl.replace a.agg_attrs k (prev + v))
      span.sp_attrs;
    t.ring.(t.head) <-
      Some
        {
          ev_name = span.sp_name;
          ev_start_ns = span.sp_start_ns;
          ev_dur_ns = dur;
          ev_attrs = List.rev span.sp_attrs;
        };
    t.head <- (t.head + 1) mod Array.length t.ring;
    Mutex.unlock t.mutex

  let with_span t ?(attrs = []) ~name f =
    let span =
      {
        sp_trace = t;
        sp_name = name;
        sp_start_ns = now_ns ();
        sp_mutex = Mutex.create ();
        sp_attrs = List.rev attrs;
      }
    in
    Fun.protect ~finally:(fun () -> close_span span) (fun () -> f span)

  let stats t =
    Mutex.lock t.mutex;
    let all =
      Hashtbl.fold
        (fun name a acc ->
          let attrs =
            List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) a.agg_attrs [])
          in
          {
            span_name = name;
            span_count = a.agg_count;
            span_total_ns = a.agg_total_ns;
            span_attr_totals = attrs;
          }
          :: acc)
        t.aggs []
    in
    Mutex.unlock t.mutex;
    List.sort (fun a b -> String.compare a.span_name b.span_name) all

  let recent t =
    Mutex.lock t.mutex;
    let n = Array.length t.ring in
    let acc = ref [] in
    for i = 0 to n - 1 do
      match t.ring.((t.head + i) mod n) with
      | Some e -> acc := e :: !acc
      | None -> ()
    done;
    Mutex.unlock t.mutex;
    List.rev !acc

  let reset t =
    Mutex.lock t.mutex;
    Array.fill t.ring 0 (Array.length t.ring) None;
    t.head <- 0;
    Hashtbl.iter
      (fun _ a ->
        a.agg_count <- 0;
        a.agg_total_ns <- 0;
        Hashtbl.reset a.agg_attrs)
      t.aggs;
    Mutex.unlock t.mutex
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_timer of Timer.t
  | I_probe of (unit -> int)

type t = {
  mutex : Mutex.t; (* protects registration only; bumps are lock-free *)
  instruments : (string, instrument) Hashtbl.t;
  tr : Trace.t;
}

let create ?trace_capacity () =
  {
    mutex = Mutex.create ();
    instruments = Hashtbl.create 64;
    tr = Trace.create ?capacity:trace_capacity ();
  }

let trace t = t.tr

let register t name make describe =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.instruments name with
    | Some i -> describe i
    | None ->
      let i, v = make () in
      Hashtbl.replace t.instruments name i;
      Some v
  in
  Mutex.unlock t.mutex;
  match r with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Obs: %S already registered with another type" name)

let counter t name =
  register t name
    (fun () ->
      let c = Counter.make () in
      (I_counter c, c))
    (function I_counter c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () ->
      let g = Gauge.make () in
      (I_gauge g, g))
    (function I_gauge g -> Some g | _ -> None)

let timer t name =
  register t name
    (fun () ->
      let tm = Timer.make () in
      (I_timer tm, tm))
    (function I_timer tm -> Some tm | _ -> None)

let probe t name f =
  Mutex.lock t.mutex;
  Hashtbl.replace t.instruments name (I_probe f);
  Mutex.unlock t.mutex

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type timer_summary = {
  t_count : int;
  t_mean_ns : float;
  t_p50_ns : int;
  t_p95_ns : int;
  t_p99_ns : int;
  t_max_ns : int;
}

type value = Counter of int | Gauge of int | Timer of timer_summary

type snapshot = {
  metrics : (string * value) list;
  spans : Trace.span_stat list;
}

let snapshot t : snapshot =
  let instruments =
    Mutex.lock t.mutex;
    let l = Hashtbl.fold (fun name i acc -> (name, i) :: acc) t.instruments [] in
    Mutex.unlock t.mutex;
    l
  in
  let metrics =
    List.map
      (fun (name, i) ->
        let v =
          match i with
          | I_counter c -> Counter (Counter.get c)
          | I_gauge g -> Gauge (Gauge.get g)
          | I_probe f -> Gauge (try f () with _ -> 0)
          | I_timer tm ->
            let n, mean, ps, mx = Timer.summary tm in
            let p50, p95, p99 =
              match ps with [ a; b; c ] -> (a, b, c) | _ -> (0, 0, 0)
            in
            Timer
              {
                t_count = n;
                t_mean_ns = mean;
                t_p50_ns = p50;
                t_p95_ns = p95;
                t_p99_ns = p99;
                t_max_ns = mx;
              }
        in
        (name, v))
      instruments
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { metrics; spans = Trace.stats t.tr }

let reset t =
  Mutex.lock t.mutex;
  Hashtbl.iter
    (fun _ i ->
      match i with
      | I_counter c -> Counter.reset c
      | I_gauge g -> Gauge.reset g
      | I_timer tm -> Timer.reset tm
      | I_probe _ -> ())
    t.instruments;
  Mutex.unlock t.mutex;
  Trace.reset t.tr

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_json_obj buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, render) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape k);
      Buffer.add_string buf "\":";
      render buf)
    fields;
  Buffer.add_char buf '}'

let jint v buf = Buffer.add_string buf (string_of_int v)
let jfloat v buf = Buffer.add_string buf (Printf.sprintf "%.1f" v)

let to_json t =
  let s = snapshot t in
  let counters = List.filter_map (function n, Counter v -> Some (n, jint v) | _ -> None) s.metrics in
  let gauges = List.filter_map (function n, Gauge v -> Some (n, jint v) | _ -> None) s.metrics in
  let timers =
    List.filter_map
      (function
        | n, Timer tm ->
          Some
            ( n,
              fun buf ->
                add_json_obj buf
                  [
                    ("count", jint tm.t_count);
                    ("mean_ns", jfloat tm.t_mean_ns);
                    ("p50_ns", jint tm.t_p50_ns);
                    ("p95_ns", jint tm.t_p95_ns);
                    ("p99_ns", jint tm.t_p99_ns);
                    ("max_ns", jint tm.t_max_ns);
                  ] )
        | _ -> None)
      s.metrics
  in
  let spans =
    List.map
      (fun (st : Trace.span_stat) ->
        ( st.Trace.span_name,
          fun buf ->
            add_json_obj buf
              [
                ("count", jint st.Trace.span_count);
                ("total_ns", jint st.Trace.span_total_ns);
                ( "attrs",
                  fun buf ->
                    add_json_obj buf
                      (List.map (fun (k, v) -> (k, jint v)) st.Trace.span_attr_totals) );
              ] ))
      s.spans
  in
  let buf = Buffer.create 1024 in
  add_json_obj buf
    [
      ("counters", fun buf -> add_json_obj buf counters);
      ("gauges", fun buf -> add_json_obj buf gauges);
      ("timers", fun buf -> add_json_obj buf timers);
      ("spans", fun buf -> add_json_obj buf spans);
    ];
  Buffer.contents buf

let sanitize name =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_') name

let to_prometheus t =
  let s = snapshot t in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf l; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, v) ->
      let m = "evendb_" ^ sanitize name in
      match v with
      | Counter c ->
        line "# TYPE %s counter" m;
        line "%s %d" m c
      | Gauge g ->
        line "# TYPE %s gauge" m;
        line "%s %d" m g
      | Timer tm ->
        line "# TYPE %s_ns summary" m;
        line "%s_ns{quantile=\"0.5\"} %d" m tm.t_p50_ns;
        line "%s_ns{quantile=\"0.95\"} %d" m tm.t_p95_ns;
        line "%s_ns{quantile=\"0.99\"} %d" m tm.t_p99_ns;
        line "%s_ns_count %d" m tm.t_count;
        line "%s_ns_mean %.1f" m tm.t_mean_ns;
        line "%s_ns_max %d" m tm.t_max_ns)
    s.metrics;
  if s.spans <> [] then begin
    line "# TYPE evendb_span_count counter";
    List.iter
      (fun (st : Trace.span_stat) ->
        line "evendb_span_count{name=\"%s\"} %d" (sanitize st.Trace.span_name)
          st.Trace.span_count)
      s.spans;
    line "# TYPE evendb_span_total_ns counter";
    List.iter
      (fun (st : Trace.span_stat) ->
        line "evendb_span_total_ns{name=\"%s\"} %d" (sanitize st.Trace.span_name)
          st.Trace.span_total_ns;
        List.iter
          (fun (k, v) ->
            line "evendb_span_attr_total{name=\"%s\",attr=\"%s\"} %d"
              (sanitize st.Trace.span_name) (sanitize k) v)
          st.Trace.span_attr_totals)
      s.spans
  end;
  Buffer.contents buf
