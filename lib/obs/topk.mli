(** Space-Saving top-K frequency sketch over a key stream.

    Tracks the heaviest hitters of an unbounded stream in O(capacity)
    memory with deterministic error bounds: after [N] observations into
    a sketch of capacity [m], every key with true frequency greater
    than [N/m] is present, and each reported count interval
    [(count_lo, count_hi)] brackets the key's true frequency with
    [count_hi - count_lo <= N/m].

    Used to watch the hot key-prefix distribution live on the engine
    read/write paths — the spatial-locality skew EvenDB bets on.
    Thread-safe; [observe] is O(1) for monitored keys. *)

type t

val create : ?capacity:int -> unit -> t
(** Sketch monitoring at most [capacity] (default 64) distinct keys. *)

val capacity : t -> int

val observe : ?weight:int -> t -> string -> unit
(** Feed one occurrence ([weight] occurrences) of [key] into the
    sketch. Non-positive weights are ignored. *)

val entries : t -> (string * int * int) list
(** Monitored keys as [(key, count_lo, count_hi)], sorted by
    [count_hi] descending (ties by key). [count_hi] is the sketch's
    estimate (never under the true frequency for monitored keys);
    [count_lo = count_hi - err] subtracts the recorded worst-case
    overestimation, so the true frequency lies in
    [\[count_lo, count_hi\]]. *)

val total : t -> int
(** Observations fed so far (sum of weights) — the [N] in the error
    bound [N/capacity]. *)

val reset : t -> unit
