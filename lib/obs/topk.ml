(* Space-Saving (Metwally, Agrawal & El Abbadi, 2005): a fixed set of m
   monitored keys. A hit bumps the key's count; a miss evicts the
   current minimum and adopts its count as the newcomer's
   overestimation error. Any key with true frequency > N/m is
   guaranteed to be monitored, and every count overestimates the truth
   by at most its recorded error (itself <= N/m). *)

type cell = { mutable count : int; mutable err : int }

type t = {
  mutex : Mutex.t;
  capacity : int;
  cells : (string, cell) Hashtbl.t;
  mutable total : int;
}

let create ?(capacity = 64) () =
  if capacity <= 0 then invalid_arg "Topk.create: capacity <= 0";
  { mutex = Mutex.create (); capacity; cells = Hashtbl.create capacity; total = 0 }

let capacity t = t.capacity

(* Linear min scan on eviction: under the skewed traffic this sketch
   exists to measure, almost every observation hits a monitored key and
   stays O(1); the O(m) path is the rare miss. *)
let evict_min_locked t =
  let victim = ref None in
  Hashtbl.iter
    (fun k c ->
      match !victim with
      | Some (_, vc) when vc.count <= c.count -> ()
      | _ -> victim := Some (k, c))
    t.cells;
  match !victim with
  | Some (k, c) ->
    Hashtbl.remove t.cells k;
    c.count
  | None -> 0

let observe ?(weight = 1) t key =
  if weight > 0 then begin
    Mutex.lock t.mutex;
    t.total <- t.total + weight;
    (match Hashtbl.find_opt t.cells key with
    | Some c -> c.count <- c.count + weight
    | None ->
      let floor = if Hashtbl.length t.cells >= t.capacity then evict_min_locked t else 0 in
      Hashtbl.replace t.cells key { count = floor + weight; err = floor });
    Mutex.unlock t.mutex
  end

let total t =
  Mutex.lock t.mutex;
  let n = t.total in
  Mutex.unlock t.mutex;
  n

let entries t =
  Mutex.lock t.mutex;
  let l = Hashtbl.fold (fun k c acc -> (k, c.count - c.err, c.count) :: acc) t.cells [] in
  Mutex.unlock t.mutex;
  List.sort
    (fun (ka, _, ha) (kb, _, hb) ->
      match compare hb ha with 0 -> String.compare ka kb | c -> c)
    l

let reset t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.cells;
  t.total <- 0;
  Mutex.unlock t.mutex
