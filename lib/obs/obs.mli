(** Unified observability substrate: a thread-safe metrics registry
    (counters, gauges, histogram-backed timers) plus a structured
    event-trace ring buffer with span helpers for long-running
    operations (rebalance, splits, compaction, checkpoints, recovery).

    One {!t} is owned by each engine instance; every layer of that
    engine bumps metrics registered in it. Registration is idempotent
    ([counter t name] twice returns the same cell), so call sites
    register once at open and keep the handle — bumping is a single
    atomic increment and never allocates.

    Two machine-readable exporters are provided: Prometheus-style text
    ({!to_prometheus}) and JSON ({!to_json}); both render the same
    {!snapshot}. *)

val now_ns : unit -> int
(** Monotonic-clock nanoseconds (CLOCK_MONOTONIC) — the clock behind
    every Timer/Trace measurement, immune to NTP steps. Differences are
    durations; absolute values are only meaningful relative to other
    [now_ns] readings in the same process. *)

val to_wall_ns : int -> int
(** Map a {!now_ns} reading to wall-clock nanoseconds since the Unix
    epoch, using a wall-clock epoch captured at library load. Only for
    export timestamps (e.g. trace files); never for durations. *)

(** {2 Instruments} *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val add : t -> int -> unit
  val get : t -> int
end

module Timer : sig
  type t

  val record_ns : t -> int -> unit
  (** Fold one duration (nanoseconds) into the timer's histogram. *)

  val time : t -> (unit -> 'a) -> 'a
  (** Run the function and record its wall-clock duration (also on
      exception). *)

  val count : t -> int

  val summary : t -> int * float * int list * int * int * (int * int) list
  (** [(count, mean_ns, [p50; p95; p99], min_ns, max_ns, buckets)],
      read atomically under the timer's lock. *)
end

(** {2 Event tracing} *)

module Trace : sig
  type t

  type span
  (** A span in flight; attributes may be attached before it closes. *)

  type event = {
    ev_name : string;
    ev_start_ns : int;
    ev_dur_ns : int;
    ev_tid : int;  (** id of the thread that opened the span *)
    ev_attrs : (string * int) list;
  }

  type span_stat = {
    span_name : string;
    span_count : int;
    span_total_ns : int;
    span_attr_totals : (string * int) list;  (** summed over closed spans *)
  }

  val create : ?capacity:int -> unit -> t
  (** Ring buffer of the [capacity] (default 256) most recent events.
      Aggregates (count, cumulative duration, attribute sums per span
      name) are kept forever. *)

  val declare : t -> string -> unit
  (** Pre-register a span name so it appears (zeroed) in {!stats} and
      in exports even before the first occurrence. *)

  val with_span : t -> ?attrs:(string * int) list -> name:string -> (span -> 'a) -> 'a
  (** Run the function under a span. The span is closed (event recorded,
      aggregates updated) when the function returns or raises. *)

  val add_attr : span -> string -> int -> unit
  (** Attach an integer attribute (bytes, entries, ...) to a span in
      flight; attributes of the same name accumulate. *)

  val stats : t -> span_stat list
  (** Per-name aggregates, sorted by name. *)

  val recent : t -> event list
  (** Most recent events, oldest first. *)

  val reset : t -> unit
end

(** {2 Registry} *)

type t

val create : ?trace_capacity:int -> unit -> t

val counter : t -> string -> Counter.t
val gauge : t -> string -> Gauge.t
val timer : t -> string -> Timer.t

val probe : t -> string -> (unit -> int) -> unit
(** Register a gauge computed at snapshot time (e.g. mirroring a
    counter owned by a lower layer that does not depend on this
    library). Re-registering a name replaces its probe. *)

val trace : t -> Trace.t

(** {2 Snapshots and exporters} *)

type timer_summary = {
  t_count : int;
  t_mean_ns : float;
  t_p50_ns : int;
  t_p95_ns : int;
  t_p99_ns : int;
  t_min_ns : int;  (** true observed minimum, not a bucket estimate *)
  t_max_ns : int;  (** true observed maximum, not a bucket estimate *)
  t_buckets : (int * int) list;
      (** non-empty histogram buckets as [(upper_bound_ns, count)],
          ascending — enough to re-aggregate percentiles externally *)
}

type value = Counter of int | Gauge of int | Timer of timer_summary

type snapshot = {
  metrics : (string * value) list;  (** sorted by name; probes render as gauges *)
  spans : Trace.span_stat list;
}

val snapshot : t -> snapshot

val reset : t -> unit
(** Zero every counter, gauge and timer and clear the trace. Probes
    are left registered (they read external state). *)

val to_json : t -> string
(** One JSON document: [{"counters":{..},"gauges":{..},"timers":{..},
    "spans":{..}}]. Timer entries carry count/mean/p50/p95/p99/min/max
    in nanoseconds plus a ["buckets"] array of
    [\[upper_bound_ns, count\]] pairs (full histogram shape for
    external re-aggregation); span entries carry count, cumulative
    duration and attribute totals. *)

val to_chrome_trace : ?process_name:string -> ?extra:Trace.event list -> t -> string
(** Export the span ring buffer in Chrome trace-event format (loadable
    in [chrome://tracing] and Perfetto): complete events ([ph:"X"])
    with wall-clock microsecond timestamps (see {!to_wall_ns}),
    process/thread ids, span attributes under ["args"], and metadata
    events naming the process and each thread. [extra] events (e.g.
    {!Attr.chrome_events} slow-op reconstructions) are appended after
    the ring's. *)

val to_prometheus : t -> string
(** Prometheus text exposition with [# HELP]/[# TYPE] lines: metric
    names are sanitized to [evendb_<name>]; a timer exports a
    [<m>_ns] summary family (quantile samples plus [_sum]/[_count])
    and separate [<m>_ns_min]/[<m>_ns_max] gauge families (true
    observed extrema); spans expose [evendb_span_count],
    [evendb_span_total_ns] and [evendb_span_attr_total], keyed by a
    [name] label whose value is escaped per the exposition format
    (backslash, double-quote, newline). Every sample belongs to a
    declared family and each family's samples form one contiguous
    group, so strict exposition parsers accept the document whole. *)

val to_prometheus_many : ?label:string -> (string * t) list -> string
(** One exposition over several registries (e.g. a sharded store's
    per-shard instances): each metric name gets its [# HELP]/[# TYPE]
    pair exactly once — the format forbids repeats, so concatenating
    {!to_prometheus} outputs would be invalid — followed by one sample
    per registry labelled [<label>="<value>"] (default label
    ["shard"]). *)

(** {2 Flight recorder}

    A ring of periodic snapshot {e deltas}: each {!Recorder.tick}
    snapshots the registry, differences every monotone series (counters
    and timer op counts) against the previous tick, and stores one
    frame. The ring keeps the last [capacity] frames, giving a bounded
    always-on record of "what changed lately" that survives until
    overwritten — the metrics analogue of the span ring buffer. *)

module Recorder : sig
  type frame = {
    fr_seq : int;  (** tick number since creation/reset *)
    fr_at_ns : int;  (** monotonic timestamp of the tick *)
    fr_wall_ns : int;  (** wall-clock timestamp, for export *)
    fr_dur_ns : int;  (** time covered: since the previous tick *)
    fr_deltas : (string * int) list;
        (** counter (and [<timer>.count]) increments over the frame;
            zero-change series are omitted *)
    fr_gauges : (string * int) list;  (** gauge/probe values at the tick *)
  }

  type t

  val tick : t -> frame
  (** Cut a frame now and append it to the ring. *)

  val frames : t -> frame list
  (** Retained frames, oldest first. *)

  val reset : t -> unit
  (** Drop all frames and re-baseline against the current registry
      state. *)

  val to_json : t -> string
  (** [{"frames":[{"seq","wall_ns","dur_ns","deltas":{..},
      "gauges":{..}},..]}], oldest first. *)
end

val recorder : ?capacity:int -> t -> Recorder.t
(** Create a flight recorder over this registry holding the last
    [capacity] (default 64) frames. The baseline is the registry state
    at creation time. *)
