(** Per-operation tail-latency attribution.

    Each get/put/delete/scan runs under an {e op frame} — a
    domain-local record opened by {!with_op} — and every known stall
    site on the hot path wraps itself in {!timed}, charging its wall
    time to a named {!cause}. When the op closes, its cause breakdown
    is folded into cumulative per-kind totals and a decayed recent
    window; ops slower than a configurable threshold are additionally
    recorded — with their full breakdown and the maintenance spans they
    overlapped — in a bounded slow-op ring exportable as JSONL and as
    causal child spans of the Chrome trace.

    Design constraints, in priority order:

    - {b Cheap when idle.} {!timed} with no frame open (background
      maintainer domains, recovery) is a single domain-local read and a
      branch; no clock is touched. With attribution disabled,
      {!with_op} degrades to [Obs.Timer.time].
    - {b Sums never exceed the whole.} Only the outermost {!timed}
      section accumulates — nested sections run their function
      directly — so the per-op cause total is at most the op's wall
      time (up to clock jitter between the two reads).
    - {b No hidden allocation on the hot path.} Frames are preallocated
      per domain and reused; cause accumulation is array stores. Slow
      ops allocate (they are rare by construction: above-p95-style
      thresholds), as does the periodic decay fold.

    A {!t} also drives the {e stall watchdog}: when any single cause
    exceeds a configured share of recent op time, it bumps the
    [attr.watchdog.trips] counter, drops a zero-duration
    ["stall_watchdog"] span into the trace ring, and calls the trip
    hook (the store wires it to a flight-recorder tick). *)

type cause =
  | Lock_wait  (** blocked acquiring a rebalance/writer lock, or a scan
                   waiting out pending puts *)
  | Log_append  (** funk-log / WAL record append, including the log
                    writer's internal mutex *)
  | Fsync  (** durability fsync (sync-mode puts, WAL sync policies,
               put-path checkpoints) *)
  | Disk_read  (** munk miss served from the funk (log/SSTable),
                   bloom rebuilds, munk loads, LSM level reads *)
  | Rebalance  (** EvenDB rebalance/split/merge/eviction work paid
                   inline by the op *)
  | Compaction  (** LSM/FLSM memtable flush + compaction paid inline
                    (the classic write stall) *)
  | Commit_wait  (** group commit: waiting for a batch to form, for the
                     leader slot, or for another domain's leader to
                     finish the batch's fsync *)
  | Cache_read  (** munk-less scan served through the sorted view +
                    shared block cache (the unified read path) *)
  | View_build  (** sorted-view rebuild paid inline by the op that
                    triggered the eviction/flush *)
  | Repl_ship  (** replication change-stream publish paid inline by the
                   put (enqueue into the shipping stream) *)

val all_causes : cause list
val cause_name : cause -> string

type kind = Put | Get | Delete | Scan

val kind_name : kind -> string

type t

val create :
  ?enabled:bool ->
  ?threshold_ns:int ->
  ?ring:int ->
  ?watchdog_share_ppm:int ->
  ?watchdog_cooldown_ops:int ->
  Obs.t ->
  t
(** [create obs] registers the attribution probes
    ([attr.frac_ppm.<cause>], [attr.total_ns.<cause>],
    [attr.slow.seen/kept/threshold_ns]) and the
    [attr.watchdog.trips] counter in [obs], and uses [obs]'s trace both
    to harvest overlapping maintenance spans for slow ops and to emit
    watchdog events. Defaults: [enabled = true], [threshold_ns] = 1ms,
    [ring] = 256 slow ops, [watchdog_share_ppm] = 500_000 (50% of
    recent op time), [watchdog_cooldown_ops] = 4096. *)

val enabled : t -> bool

(** {2 Hot path} *)

val with_op : t -> kind -> Obs.Timer.t -> (unit -> 'a) -> 'a
(** Run [f] as one attributed operation: opens this domain's frame,
    times [f] into [timer] (reusing the same two clock reads), and
    folds the frame's cause breakdown into [t]. If a frame is already
    open on this domain (an engine op nested inside another), or
    attribution is disabled, behaves exactly like [Obs.Timer.time]. *)

val timed : cause -> (unit -> 'a) -> 'a
(** Charge the duration of [f] to [cause] on the {e innermost open
    frame of the calling domain}, whichever instance owns it — which is
    what lets leaf layers (log writer, munk) report stalls without
    holding a handle. Outside any frame, or nested inside another
    [timed] section, runs [f] untimed. *)

(** {2 Thresholds and the watchdog} *)

val threshold_ns : t -> int

val set_threshold_ns : t -> int -> unit
(** Re-arm slow-op capture at a new threshold: clears the slow-op ring
    (records taken under the old threshold are not comparable) — the
    calibrate-then-measure idiom of the sync-durability bench. *)

val set_trip_hook : t -> (cause -> unit) -> unit
(** Called (outside all attribution locks) each time the watchdog
    trips; at most one hook is retained. *)

val watchdog_trips : t -> int

(** {2 Introspection} *)

val frac_ppm : t -> cause -> int
(** The cause's share of recent op wall time, in parts per million,
    over a decayed window of the last ~2k ops. *)

val cause_total_ns : t -> cause -> int
(** Cumulative nanoseconds charged to the cause across all op kinds. *)

val op_count : t -> kind -> int
val op_total_ns : t -> kind -> int

type slow_op = {
  so_kind : string;
  so_start_ns : int;  (** monotonic ({!Obs.now_ns}) *)
  so_wall_ns : int;  (** wall-clock start, for export *)
  so_dur_ns : int;
  so_threshold_ns : int;  (** threshold in force when recorded *)
  so_tid : int;
  so_causes : (string * int) list;  (** non-zero causes, ns *)
  so_spans : (string * int) list;
      (** trace spans (maintenance work on other domains, or inline
          work recorded as spans) overlapping the op, as
          [(span_name, overlap_ns)] — only spans already closed and
          still in the ring when the op ended are visible *)
}

val slow_ops : t -> slow_op list
(** Retained slow ops, oldest first (at most [ring]). *)

val slow_seen : t -> int
(** Total slow ops observed, including those overwritten in the ring. *)

val slow_ops_jsonl : ?tags:(string * string) list -> t -> string
(** One JSON object per line, oldest first; [tags] are extra string
    fields prepended to every record (e.g. engine/phase labels). *)

val chrome_events : t -> Obs.Trace.event list
(** The slow-op ring as synthetic trace events: one ["slow:<kind>"]
    parent per op plus sequential ["cause:<name>"] children laid out
    across its duration — feed as [?extra] to {!Obs.to_chrome_trace}
    so tail ops appear alongside the maintenance spans that explain
    them. *)

val to_json : t -> string
(** Everything above as one JSON document: per-kind op counts/time with
    full cause matrices, decayed fractions, watchdog state, and a
    summary of the retained slow ops (cumulative time, attributed
    share, top cause). *)

val reset : t -> unit
(** Zero totals, window, ring and trip state. Threshold and
    configuration survive. *)
