(** Append-only record log with CRC framing.

    Used for funk logs (per-chunk, §2.2) and the LSM baseline's WAL.
    Each record frames one versioned KV entry:

    {v [masked crc32c : 4B LE] [payload_len : varint] [payload] v}

    where the payload encodes op/key/version/counter/value. A torn or
    corrupt record is skipped, not fatal: the reader resynchronizes on
    the next valid CRC frame, so a crash that tears the tail of a log
    loses only the unsynced suffix — the behaviour the recovery
    semantics (§3.5) rely on — and a torn record mid-log (a failed
    append followed by successful ones) never hides the acknowledged
    records written after it. *)

open Evendb_util
open Evendb_storage

module Record : sig
  val encode : Buffer.t -> Kv_iter.entry -> unit
  (** Append the full framed record for one entry. *)

  val decode : string -> pos:int -> (Kv_iter.entry * int) option
  (** [decode s ~pos] returns the entry starting at [pos] and the
      position after it, or [None] if the data at [pos] is truncated
      or fails its checksum. *)
end

module Writer : sig
  type t

  val create : Env.t -> string -> t
  (** Create or truncate the log. *)

  val open_append : Env.t -> string -> t
  (** Append to an existing log. The tail is scanned to find the end
      of the last valid record; a torn tail is ignored (subsequent
      appends are written after the last valid record boundary as far
      as accounting is concerned — on the memory backend the torn
      bytes were already discarded by the crash). *)

  val append : t -> Kv_iter.entry -> int
  (** Append one record, returning the byte offset at which it starts
      (fed to the partitioned bloom filter). Thread-safe. *)

  val size : t -> int

  val append_count : t -> int
  (** Records appended through this writer (excludes records already
      in the file when it was opened with {!open_append}). *)

  val fsync : t -> unit
  val close : t -> unit
end

module Reader : sig
  val fold :
    ?lo:int -> ?hi:int -> Env.t -> string -> init:'a -> f:('a -> int -> Kv_iter.entry -> 'a) -> 'a
  (** [fold ~lo ~hi env name ~init ~f] applies [f acc offset entry] to
      every record whose frame starts in [\[lo, hi)], in log order.
      [lo] must be a record boundary (0 or an offset returned by
      {!Writer.append}). Defaults: the whole log. Missing file =
      empty log. Undecodable bytes (torn or corrupt records) are
      skipped via CRC resynchronization; each maximal garbage run is
      counted once on the env ({!Env.log_resyncs}). *)

  val entries : Env.t -> string -> (int * Kv_iter.entry) list
  (** All valid records with their offsets, in append order. *)

  val valid_prefix_length : Env.t -> string -> int
  (** Byte length of the longest prefix consisting of valid records. *)

  val garbage_regions : Env.t -> string -> (int * int) list
  (** Byte ranges [\[start, stop)] that decode as no valid record —
      torn tails or corrupted bytes — in file order. The scrubber's
      view of a log; does not touch the resync counter. *)
end
