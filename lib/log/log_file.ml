open Evendb_util
open Evendb_storage

(* Payload: [op : 1B] [klen : varint] [key] [version : varint]
   [counter : varint] and, for puts, [vlen : varint] [value]. *)

module Record = struct
  let op_put = 0
  let op_delete = 1

  let encode_payload buf (e : Kv_iter.entry) =
    Buffer.add_char buf (Char.chr (match e.value with Some _ -> op_put | None -> op_delete));
    Varint.write buf (String.length e.key);
    Buffer.add_string buf e.key;
    Varint.write buf e.version;
    Varint.write buf e.counter;
    match e.value with
    | Some v ->
      Varint.write buf (String.length v);
      Buffer.add_string buf v
    | None -> ()

  let add_u32_le buf (v : int32) =
    Buffer.add_char buf (Char.chr (Int32.to_int v land 0xff));
    Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xff));
    Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xff));
    Buffer.add_char buf (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xff))

  let read_u32_le s pos =
    let b i = Int32.of_int (Char.code s.[pos + i]) in
    Int32.logor (b 0)
      (Int32.logor
         (Int32.shift_left (b 1) 8)
         (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

  let encode buf e =
    let scratch = Buffer.create 256 in
    encode_payload scratch e;
    let payload = Buffer.contents scratch in
    add_u32_le buf (Crc32c.mask (Crc32c.string payload));
    Varint.write buf (String.length payload);
    Buffer.add_string buf payload

  let decode_payload s pos len : Kv_iter.entry =
    let fin = pos + len in
    let op = Char.code s.[pos] in
    let klen, p = Varint.read s (pos + 1) in
    let key = String.sub s p klen in
    let p = p + klen in
    let version, p = Varint.read s p in
    let counter, p = Varint.read s p in
    if op = op_delete then begin
      if p <> fin then invalid_arg "trailing bytes";
      { key; value = None; version; counter }
    end
    else begin
      let vlen, p = Varint.read s p in
      if p + vlen <> fin then invalid_arg "bad value length";
      { key; value = Some (String.sub s p vlen); version; counter }
    end

  let decode s ~pos =
    let n = String.length s in
    if pos + 5 > n then None
    else
      match
        let expected = Crc32c.unmask (read_u32_le s pos) in
        let len, p = Varint.read s (pos + 4) in
        if len < 0 || p + len > n then None
        else if Crc32c.string (String.sub s p len) <> expected then None
        else Some (decode_payload s p len, p + len)
      with
      | result -> result
      | exception Invalid_argument _ -> None
end

module Writer = struct
  type t = {
    file : Env.file;
    buf : Buffer.t;
    mutex : Mutex.t;
    mutable pos : int;
    mutable appends : int;
  }

  let create env name =
    {
      file = Env.create env name;
      buf = Buffer.create 1024;
      mutex = Mutex.create ();
      pos = 0;
      appends = 0;
    }

  let open_append env name =
    let file = Env.open_append env name in
    {
      file;
      buf = Buffer.create 1024;
      mutex = Mutex.create ();
      pos = Env.file_size file;
      appends = 0;
    }

  (* Append and fsync charge themselves to the calling op's attribution
     frame (Attr.timed is a no-op off the op hot path), so WAL/funk-log
     cost shows up as Log_append/Fsync without this layer holding any
     Attr handle. The append charge includes the writer mutex wait:
     serialization behind a contended log IS log-append stall. *)
  let append t e =
    Evendb_obs.Attr.timed Evendb_obs.Attr.Log_append @@ fun () ->
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        let start = t.pos in
        Buffer.clear t.buf;
        Record.encode t.buf e;
        let len = Buffer.length t.buf in
        (try Env.append t.file (Buffer.contents t.buf)
         with exn ->
           (* A failed append may be torn: some prefix of the record
              reached the backend. Resync to what actually landed so
              the next record starts after the garbage — readers skip
              it by CRC resynchronization. *)
           t.pos <- Env.file_size t.file;
           raise exn);
        t.pos <- start + len;
        t.appends <- t.appends + 1;
        start)

  let size t = t.pos

  let append_count t =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () -> t.appends)
  let fsync t = Evendb_obs.Attr.timed Evendb_obs.Attr.Fsync (fun () -> Env.fsync t.file)
  let close t = Env.close_file t.file
end

module Reader = struct
  let fold ?(lo = 0) ?hi env name ~init ~f =
    if not (Env.exists env name) then init
    else begin
      (* Read only the requested range: segment-bounded lookups must not
         pay for the whole log (that is the point of the partitioned
         bloom filter). [hi], when it is a segment boundary, is also a
         record boundary, so no record straddles it. *)
      let file_len = Env.size env name in
      let hi = match hi with None -> file_len | Some h -> min h file_len in
      if lo >= hi then init
      else begin
        let data = Env.read_at env name ~off:lo ~len:(hi - lo) in
        (* Torn writes leave garbage mid-log when appends resume after a
           failure. On a framing/CRC mismatch, resynchronize: scan ahead
           byte-by-byte for the next position that decodes as a valid
           record, so one torn record never hides the acknowledged
           records behind it. A spurious match needs a 32-bit CRC
           collision inside garbage. *)
        (* Each maximal garbage run is one resync event on the env's
           counter — the observable trace of torn writes survived. *)
        let rec go acc pos ~in_garbage =
          if pos >= hi - lo then acc
          else
            match Record.decode data ~pos with
            | None ->
              if not in_garbage then Env.note_log_resync env;
              go acc (pos + 1) ~in_garbage:true
            | Some (e, next) -> go (f acc (lo + pos) e) next ~in_garbage:false
        in
        go init 0 ~in_garbage:false
      end
    end

  let entries env name =
    List.rev (fold env name ~init:[] ~f:(fun acc off e -> (off, e) :: acc))

  let valid_prefix_length env name =
    if not (Env.exists env name) then 0
    else begin
      let data = Env.read_all env name in
      let rec go pos =
        match Record.decode data ~pos with
        | None -> pos
        | Some (_, next) -> go next
      in
      go 0
    end

  let garbage_regions env name =
    if not (Env.exists env name) then []
    else begin
      let data = Env.read_all env name in
      let n = String.length data in
      let rec go acc pos ~run_start =
        if pos >= n then
          match run_start with None -> List.rev acc | Some s -> List.rev ((s, n) :: acc)
        else
          match Record.decode data ~pos with
          | None ->
            let run_start = match run_start with None -> Some pos | some -> some in
            go acc (pos + 1) ~run_start
          | Some (_, next) -> (
            match run_start with
            | None -> go acc next ~run_start:None
            | Some s -> go ((s, pos) :: acc) next ~run_start:None)
      in
      go [] 0 ~run_start:None
    end
end
