(** CRC-32C (Castagnoli) checksum.

    Used to frame on-disk records (funk-log entries, SSTable footers) so
    that torn writes and corruption are detected on recovery. *)

val string : ?init:int32 -> string -> int32
(** [string s] is the CRC-32C of [s]. [init] continues a running
    checksum (default: fresh). *)

val bytes : ?init:int32 -> bytes -> pos:int -> len:int -> int32
(** [bytes b ~pos ~len] checksums the given slice. *)

val bigslice : ?init:int32 -> Bigslice.t -> pos:int -> len:int -> int32
(** [bigslice b ~pos ~len] checksums a bigarray-backed slice without
    copying it — the fill-time verification path of the block cache. *)

val mask : int32 -> int32
(** [mask crc] applies the standard rotation+offset masking (as in
    LevelDB/RocksDB) so that checksums of data containing embedded CRCs
    remain well-distributed. *)

val unmask : int32 -> int32
(** Inverse of {!mask}. *)
