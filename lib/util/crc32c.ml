let poly = 0x82f63b78l

let table =
  let t = Array.make 256 0l in
  for i = 0 to 255 do
    let c = ref (Int32.of_int i) in
    for _ = 0 to 7 do
      if Int32.logand !c 1l <> 0l then
        c := Int32.logxor (Int32.shift_right_logical !c 1) poly
      else c := Int32.shift_right_logical !c 1
    done;
    t.(i) <- !c
  done;
  t

let update crc byte =
  let idx = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int byte)) 0xffl) in
  Int32.logxor (Array.unsafe_get table idx) (Int32.shift_right_logical crc 8)

let finish crc = Int32.logxor crc 0xffffffffl
let start init = Int32.logxor init 0xffffffffl

let bytes ?(init = 0l) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32c.bytes: slice out of bounds";
  let crc = ref (start init) in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (Bytes.unsafe_get b i))
  done;
  finish !crc

let bigslice ?(init = 0l) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bigslice.length b then
    invalid_arg "Crc32c.bigslice: slice out of bounds";
  let crc = ref (start init) in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (Bigslice.unsafe_get b i))
  done;
  finish !crc

let string ?(init = 0l) s =
  let crc = ref (start init) in
  for i = 0 to String.length s - 1 do
    crc := update !crc (Char.code (String.unsafe_get s i))
  done;
  finish !crc

(* Masking as in LevelDB: rotate right 15 bits and add a constant, so a CRC
   computed over data that itself contains CRCs stays well distributed. *)
let mask_delta = 0xa282ead8l

let mask crc =
  let rot =
    Int32.logor (Int32.shift_right_logical crc 15) (Int32.shift_left crc 17)
  in
  Int32.add rot mask_delta

let unmask masked =
  let rot = Int32.sub masked mask_delta in
  Int32.logor (Int32.shift_right_logical rot 17) (Int32.shift_left rot 15)
