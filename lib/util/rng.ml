type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: expands a seed into well-distributed initial state. *)
let splitmix st =
  st := Int64.add !st 0x9e3779b97f4a7c15L;
  let z = !st in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix st in
  let s1 = splitmix st in
  let s2 = splitmix st in
  let s3 = splitmix st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (int64 t) land max_int in
  create seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let v = Int64.to_int (int64 t) land max_int in
  v mod bound

let float t =
  (* 53 high bits -> [0,1) *)
  let v = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let printable = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

let string t len =
  String.init len (fun _ -> printable.[int t (String.length printable)])
