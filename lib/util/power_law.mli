(** Table-based power-law sampler for arbitrary exponents.

    The YCSB Zipfian generator ({!Zipf}) only supports theta in (0,1);
    the production analytics trace of the paper's §1.1 is heavier
    (1% of app ids cover 94% of events), which needs an exponent
    above 1. This sampler precomputes the cumulative distribution
    P(rank) ∝ 1/rank^exponent and inverts it by binary search. *)

type t

val create : exponent:float -> int -> t
(** [create ~exponent n] over ranks [0..n-1] (rank 0 most popular).
    Raises [Invalid_argument] if [n <= 0] or [exponent <= 0]. *)

val item_count : t -> int

val next : t -> Rng.t -> int

val probability : t -> int -> float
(** Exact mass of a rank. *)

val head_coverage : t -> fraction:float -> float
(** Total probability of the top [fraction] of ranks. *)
