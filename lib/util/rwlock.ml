type t = {
  mutex : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable readers : int; (* active shared holders *)
  mutable writer : bool; (* exclusive holder present *)
  mutable waiting_writers : int;
}

let create () =
  {
    mutex = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    readers = 0;
    writer = false;
    waiting_writers = 0;
  }

let lock_shared t =
  Mutex.lock t.mutex;
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.can_read t.mutex
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mutex

let unlock_shared t =
  Mutex.lock t.mutex;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.signal t.can_write;
  Mutex.unlock t.mutex

let lock_exclusive t =
  Mutex.lock t.mutex;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.can_write t.mutex
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.mutex

let unlock_exclusive t =
  Mutex.lock t.mutex;
  t.writer <- false;
  if t.waiting_writers > 0 then Condition.signal t.can_write
  else Condition.broadcast t.can_read;
  Mutex.unlock t.mutex

let try_lock_shared t =
  Mutex.lock t.mutex;
  let ok = (not t.writer) && t.waiting_writers = 0 in
  if ok then t.readers <- t.readers + 1;
  Mutex.unlock t.mutex;
  ok

let try_lock_exclusive t =
  Mutex.lock t.mutex;
  let ok = (not t.writer) && t.readers = 0 in
  if ok then t.writer <- true;
  Mutex.unlock t.mutex;
  ok

let with_shared t f =
  lock_shared t;
  Fun.protect ~finally:(fun () -> unlock_shared t) f

let with_exclusive t f =
  lock_exclusive t;
  Fun.protect ~finally:(fun () -> unlock_exclusive t) f
