(* Log-linear buckets. Values below [sub_count] are stored exactly (one
   bucket per value); larger values with magnitude m = floor(log2 v) are
   grouped by their top [sub_bits] bits below the leading bit, giving a
   worst-case relative error of 2^-sub_bits. *)

let sub_bits = 6
let sub_count = 1 lsl sub_bits
let rows = 58 (* magnitudes 6..62 map to rows 1..57 *)

type t = {
  counts : int array;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
  mutable sum : float;
}

let create () =
  {
    counts = Array.make (rows * sub_count) 0;
    total = 0;
    min_v = max_int;
    max_v = 0;
    sum = 0.0;
  }

let magnitude v = 62 - Bits.clz63 v

let index_of v =
  if v < sub_count then v
  else begin
    let m = magnitude v in
    let row = m - sub_bits + 1 in
    let sub = (v lsr (m - sub_bits)) land (sub_count - 1) in
    (row * sub_count) + sub
  end

(* Upper-bound value represented by a bucket index. *)
let value_of idx =
  if idx < sub_count then idx
  else begin
    let row = idx / sub_count and sub = idx mod sub_count in
    let m = row + sub_bits - 1 in
    let low = (1 lsl m) lor (sub lsl (m - sub_bits)) in
    low lor ((1 lsl (m - sub_bits)) - 1)
  end

let record_many t v count =
  let v = if v < 0 then 0 else v in
  let idx = index_of v in
  if idx < 0 || idx >= Array.length t.counts then
    invalid_arg
      (Printf.sprintf "Histogram.record_many: v=%d idx=%d clz=%d" v idx (Bits.clz63 v));
  t.counts.(idx) <- t.counts.(idx) + count;
  t.total <- t.total + count;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  t.sum <- t.sum +. (float_of_int v *. float_of_int count)

let record t v = record_many t v 1

let merge_into ~src ~dst =
  Array.iteri (fun i c -> if c > 0 then dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.total <- dst.total + src.total;
  if src.min_v < dst.min_v then dst.min_v <- src.min_v;
  if src.max_v > dst.max_v then dst.max_v <- src.max_v;
  dst.sum <- dst.sum +. src.sum

let count t = t.total
let min_value t = if t.total = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

let percentile t p =
  if t.total = 0 then 0
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let target =
      let x = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
      if x < 1 then 1 else x
    in
    let seen = ref 0 in
    let result = ref t.max_v in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + c;
           if c > 0 && !seen >= target then begin
             result := min (value_of i) t.max_v;
             raise Exit
           end)
         t.counts
     with Exit -> ());
    !result
  end

(* One pass over the buckets for any number of percentiles: targets are
   visited in ascending rank order while the cumulative count advances,
   so the cost is O(buckets + |ps| log |ps|) rather than a full sweep
   per percentile. *)
let percentiles t ps =
  let n = List.length ps in
  if t.total = 0 || n = 0 then List.map (fun _ -> 0) ps
  else begin
    let targets = Array.make n 1 in
    List.iteri
      (fun i p ->
        let p = Float.max 0.0 (Float.min 100.0 p) in
        let x = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
        targets.(i) <- max 1 x)
      ps;
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> compare targets.(a) targets.(b)) order;
    let results = Array.make n t.max_v in
    let seen = ref 0 in
    let next = ref 0 in
    (try
       Array.iteri
         (fun i c ->
           if c > 0 then begin
             seen := !seen + c;
             while !next < n && targets.(order.(!next)) <= !seen do
               results.(order.(!next)) <- min (value_of i) t.max_v;
               incr next
             done;
             if !next >= n then raise Exit
           end)
         t.counts
     with Exit -> ());
    Array.to_list results
  end

let buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (value_of i, t.counts.(i)) :: !acc
  done;
  !acc

let pp ppf t =
  match percentiles t [ 50.0; 95.0; 99.0 ] with
  | [ p50; p95; p99 ] ->
    Format.fprintf ppf "count=%d mean=%.1f p50=%d p95=%d p99=%d max=%d" t.total (mean t) p50
      p95 p99 (max_value t)
  | _ -> assert false

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.total <- 0;
  t.min_v <- max_int;
  t.max_v <- 0;
  t.sum <- 0.0
