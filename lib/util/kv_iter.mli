(** Versioned key-value entries and iterators.

    Every storage component (munks, funk logs, SSTables, LSM levels)
    yields entries of the same shape so that merging, compaction and
    scans are written once. An entry with [value = None] is a tombstone
    (a logical delete that must be retained until compaction proves no
    older version remains below it). *)

type entry = {
  key : string;
  value : string option; (* [None] = tombstone *)
  version : int;
  counter : int; (* per-chunk tie-break for same-version puts *)
}

val entry_newer : entry -> entry -> bool
(** [entry_newer a b] when [a] supersedes [b] for the same key:
    higher version, or equal version and higher counter. *)

val compare_entries : entry -> entry -> int
(** Orders by key ascending, then newest-first ([entry_newer] first).
    This is the canonical on-disk and in-merge order. *)

type t = unit -> entry option
(** A pull iterator: [next ()] yields entries in {!compare_entries}
    order and [None] at exhaustion. Single-use. *)

val of_list : entry list -> t
(** The list must already be sorted by {!compare_entries}. *)

val to_list : t -> entry list

val merge : t list -> t
(** Heap-merge of sorted iterators into one sorted stream. On ties
    (same key, version and counter) the iterator earliest in the input
    list wins and later duplicates are still emitted (use {!dedup} or
    {!compact} to drop them). *)

val dedup : t -> t
(** Keep only the newest entry per key (including tombstones). Input
    must be sorted. *)

val compact : ?min_retained_version:int -> ?drop_tombstones:bool -> t -> t
(** Compaction filter (paper §3.4): for each key, keep the newest
    entry, plus every version down to (and including) the newest
    version at or below [min_retained_version], which an active scan
    may still need. When [min_retained_version] is absent, only the
    newest version per key survives. Tombstones at the old end of a
    key's retained list are dropped when [drop_tombstones] (default
    [true]; pass [false] for partial compactions where older data may
    survive elsewhere, e.g. lower LSM levels). *)

val filter : (entry -> bool) -> t -> t
val map_list : (entry -> entry) -> t -> t
