(** Shared/exclusive lock.

    The paper's per-chunk [rebalanceLock] (§3.2): puts acquire it in
    shared mode, rebalance acquires it in exclusive mode for short
    periods. Writers are given preference to avoid rebalance starvation
    under continuous put traffic. *)

type t

val create : unit -> t

val lock_shared : t -> unit
val unlock_shared : t -> unit

val try_lock_shared : t -> bool
(** Non-blocking shared acquire; fails when a writer holds or waits
    (same writer preference as {!lock_shared}). Lets put paths detect a
    contended lock cheaply and only then fall into the blocking —
    latency-attributed — acquire. *)

val lock_exclusive : t -> unit
val unlock_exclusive : t -> unit

val try_lock_exclusive : t -> bool
(** Non-blocking acquire, used by funk-change coordination so that
    losing threads wait for the winner instead of retrying. *)

val with_shared : t -> (unit -> 'a) -> 'a
val with_exclusive : t -> (unit -> 'a) -> 'a
