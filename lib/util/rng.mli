(** Deterministic pseudo-random number generation.

    A small, fast, splittable generator (splitmix64 seeding a
    xoshiro256**-style state) so that workloads are reproducible across
    runs and independent across worker threads. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t

val int64 : t -> int64
(** Uniform over all 64-bit values. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val string : t -> int -> string
(** [string t len] is a random printable-ASCII string of length [len]. *)
