type entry = {
  key : string;
  value : string option;
  version : int;
  counter : int;
}

let entry_newer a b =
  a.version > b.version || (a.version = b.version && a.counter > b.counter)

let compare_entries a b =
  let c = String.compare a.key b.key in
  if c <> 0 then c
  else begin
    let c = compare b.version a.version in
    if c <> 0 then c else compare b.counter a.counter
  end

type t = unit -> entry option

let of_list entries =
  let rest = ref entries in
  fun () ->
    match !rest with
    | [] -> None
    | e :: tl ->
      rest := tl;
      Some e

let to_list it =
  let rec go acc = match it () with None -> List.rev acc | Some e -> go (e :: acc) in
  go []

(* Array-based min-heap over (entry, source-rank, iterator). Source rank
   breaks exact ties deterministically in favour of earlier inputs. *)
module Heap = struct
  type node = { mutable e : entry; rank : int; src : t }
  type h = { mutable a : node array; mutable n : int }

  let less x y =
    let c = compare_entries x.e y.e in
    if c <> 0 then c < 0 else x.rank < y.rank

  let create () = { a = [||]; n = 0 }

  let swap h i j =
    let tmp = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if less h.a.(i) h.a.(p) then begin
        swap h i p;
        sift_up h p
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < h.n && less h.a.(l) h.a.(!m) then m := l;
    if r < h.n && less h.a.(r) h.a.(!m) then m := r;
    if !m <> i then begin
      swap h i !m;
      sift_down h !m
    end

  let push h node =
    if h.n = Array.length h.a then begin
      let cap = max 8 (2 * h.n) in
      let a = Array.make cap node in
      Array.blit h.a 0 a 0 h.n;
      h.a <- a
    end;
    h.a.(h.n) <- node;
    h.n <- h.n + 1;
    sift_up h (h.n - 1)

  let pop_top h =
    let top = h.a.(0) in
    h.n <- h.n - 1;
    if h.n > 0 then begin
      h.a.(0) <- h.a.(h.n);
      sift_down h 0
    end;
    top
end

let merge sources =
  let h = Heap.create () in
  List.iteri
    (fun rank src ->
      match src () with
      | None -> ()
      | Some e -> Heap.push h { Heap.e; rank; src })
    sources;
  fun () ->
    if h.Heap.n = 0 then None
    else begin
      let node = Heap.pop_top h in
      let result = node.Heap.e in
      (match node.Heap.src () with
      | None -> ()
      | Some e ->
        node.Heap.e <- e;
        Heap.push h node);
      Some result
    end

let dedup it =
  let last_key = ref None in
  let rec next () =
    match it () with
    | None -> None
    | Some e ->
      if !last_key = Some e.key then next ()
      else begin
        last_key := Some e.key;
        Some e
      end
  in
  next

let compact ?min_retained_version ?(drop_tombstones = true) it =
  (* Entries arrive sorted by key then newest-first. Per key we retain the
     newest entry plus every version down to (and including) the newest
     version <= min_retained_version; then we trim tombstones off the old
     end of the retained list. *)
  let pending = ref [] (* retained entries of current key, reversed *) in
  let cur_key = ref None in
  let floor_seen = ref false in
  let out = ref [] in
  let emit_pending () =
    (* !pending is newest-first reversed = oldest-first; trim old tombstones *)
    let rec trim = function
      | { value = None; _ } :: tl when drop_tombstones -> trim tl
      | l -> l
    in
    let retained = trim !pending in
    out := retained @ !out (* oldest-first onto front of accumulator *)
  in
  let keep e =
    match min_retained_version with
    | None -> false (* only the newest survives *)
    | Some m ->
      if !floor_seen then false
      else begin
        if e.version <= m then floor_seen := true;
        true
      end
  in
  let rec drain () =
    match it () with
    | None -> emit_pending ()
    | Some e ->
      (if !cur_key <> Some e.key then begin
         emit_pending ();
         cur_key := Some e.key;
         floor_seen := false;
         pending := [ e ];
         (* the newest entry always counts towards the floor check *)
         (match min_retained_version with
         | Some m when e.version <= m -> floor_seen := true
         | _ -> ())
       end
       else if keep e then pending := e :: !pending);
      drain ()
  in
  drain ();
  of_list (List.rev !out)

let filter p it =
  let rec next () =
    match it () with
    | None -> None
    | Some e -> if p e then Some e else next ()
  in
  next

let map_list f it =
  fun () ->
    match it () with
    | None -> None
    | Some e -> Some (f e)
