(* YCSB-compatible Zipfian generator (Gray et al.'s rejection-free method):
   precompute zeta(n, theta); sample u in [0,1); invert the two-point head
   analytically and the tail via the standard eta transform. *)

type t = {
  n : int;
  theta : float;
  zetan : float;
  alpha : float;
  eta : float;
  half_pow_theta : float;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

let create ?(theta = 0.99) n =
  if n <= 0 then invalid_arg "Zipf.create: n <= 0";
  if theta <= 0.0 || theta >= 1.0 then invalid_arg "Zipf.create: theta outside (0,1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; zetan; alpha; eta; half_pow_theta = Float.pow 0.5 theta }

let item_count t = t.n
let theta t = t.theta

let next t rng =
  let u = Rng.float rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. t.half_pow_theta then 1
  else
    let rank =
      float_of_int t.n *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    let r = int_of_float rank in
    if r >= t.n then t.n - 1 else if r < 0 then 0 else r

let probability t rank =
  if rank < 0 || rank >= t.n then invalid_arg "Zipf.probability: rank out of range";
  1.0 /. (Float.pow (float_of_int (rank + 1)) t.theta *. t.zetan)

(* 64-bit FNV-1a over the rank's bytes, reduced mod n. *)
let scramble n rank =
  let h = ref 0xcbf29ce484222325L in
  let x = ref rank in
  for _ = 0 to 7 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (!x land 0xff))) 0x100000001b3L;
    x := !x lsr 8
  done;
  Int64.to_int !h land max_int mod n

let next_scrambled t rng = scramble t.n (next t rng)

let latest ~item_count = create item_count

let next_latest t rng ~max_key =
  if max_key <= 0 then 0
  else
    let rank = next t rng mod max_key in
    max_key - 1 - rank
