(* A read-mostly byte slice over a char bigarray. Storage backends hand
   these out for partial reads: the disk backend can back them with an
   mmap window (zero-copy), the memory backend with a fresh buffer. The
   block cache holds them directly, so a cached block is never re-copied
   on the way to the decoder — only decoded keys/values are
   materialized as strings. *)

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { buf : buf; off : int; len : int }

let length t = t.len

let of_bigarray ?(off = 0) ?len buf =
  let buf_len = Bigarray.Array1.dim buf in
  let len = match len with Some l -> l | None -> buf_len - off in
  if off < 0 || len < 0 || off + len > buf_len then
    invalid_arg "Bigslice.of_bigarray: slice out of bounds";
  { buf; off; len }

let create len =
  of_bigarray (Bigarray.Array1.create Bigarray.char Bigarray.c_layout len)

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bigslice.get: index out of bounds";
  Bigarray.Array1.unsafe_get t.buf (t.off + i)

let unsafe_get t i = Bigarray.Array1.unsafe_get t.buf (t.off + i)

let set t i c =
  if i < 0 || i >= t.len then invalid_arg "Bigslice.set: index out of bounds";
  Bigarray.Array1.unsafe_set t.buf (t.off + i) c

let sub t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then
    invalid_arg "Bigslice.sub: slice out of bounds";
  { buf = t.buf; off = t.off + off; len }

let of_string s =
  let n = String.length s in
  let t = create n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set t.buf i (String.unsafe_get s i)
  done;
  t

let substring t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then
    invalid_arg "Bigslice.substring: slice out of bounds";
  String.init len (fun i -> Bigarray.Array1.unsafe_get t.buf (t.off + off + i))

let to_string t = substring t ~off:0 ~len:t.len

let copy t =
  let dst = create t.len in
  for i = 0 to t.len - 1 do
    Bigarray.Array1.unsafe_set dst.buf i (unsafe_get t i)
  done;
  dst

let blit_from_bytes src ~src_off dst ~dst_off ~len =
  if src_off < 0 || len < 0 || src_off + len > Bytes.length src then
    invalid_arg "Bigslice.blit_from_bytes: source out of bounds";
  if dst_off < 0 || dst_off + len > dst.len then
    invalid_arg "Bigslice.blit_from_bytes: destination out of bounds";
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set dst.buf (dst.off + dst_off + i)
      (Bytes.unsafe_get src (src_off + i))
  done
