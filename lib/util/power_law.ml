type t = {
  n : int;
  cumulative : float array; (* cumulative.(i) = P(rank <= i) *)
}

let create ~exponent n =
  if n <= 0 then invalid_arg "Power_law.create: n <= 0";
  if exponent <= 0.0 then invalid_arg "Power_law.create: exponent <= 0";
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) exponent);
    cumulative.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cumulative.(i) <- cumulative.(i) /. total
  done;
  { n; cumulative }

let item_count t = t.n

let next t rng =
  let u = Rng.float rng in
  (* First index with cumulative >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let probability t rank =
  if rank < 0 || rank >= t.n then invalid_arg "Power_law.probability: rank out of range";
  if rank = 0 then t.cumulative.(0) else t.cumulative.(rank) -. t.cumulative.(rank - 1)

let head_coverage t ~fraction =
  let top = max 1 (int_of_float (float_of_int t.n *. fraction)) in
  t.cumulative.(min (t.n - 1) (top - 1))
