(** Skewed key-access distributions, following the YCSB generators.

    The paper's synthetic workloads (§5.3) draw keys from Zipfian
    distributions over ranks, optionally scrambled so that popular keys
    are dispersed across the key space, plus a "latest" distribution
    skewed towards recently-inserted keys. *)

type t

val create : ?theta:float -> int -> t
(** [create ~theta n] is a Zipfian generator over ranks [0..n-1] with
    skew parameter [theta] (YCSB default [0.99]). Rank 0 is the most
    popular item. Raises [Invalid_argument] if [n <= 0] or
    [theta] is outside (0, 1). *)

val item_count : t -> int
val theta : t -> float

val next : t -> Rng.t -> int
(** [next t rng] samples a rank in [\[0, item_count t)]; smaller ranks
    are more popular. *)

val probability : t -> int -> float
(** [probability t rank] is the exact probability mass of [rank]. *)

val scramble : int -> int -> int
(** [scramble n rank] maps a rank to a stable pseudo-random position in
    [\[0, n)] (FNV-style hash then mod), dispersing popular items
    uniformly across the key space, as YCSB's ScrambledZipfian does. *)

val next_scrambled : t -> Rng.t -> int
(** [next_scrambled t rng] is [scramble (item_count t) (next t rng)]. *)

val latest : item_count:int -> t
(** Generator for the "latest" distribution: use {!next_latest}. *)

val next_latest : t -> Rng.t -> max_key:int -> int
(** [next_latest t rng ~max_key] samples a key index in [\[0, max_key)]
    skewed towards [max_key - 1] (the most recent insertion), per YCSB's
    SkewedLatest generator. *)
