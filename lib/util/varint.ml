let encoded_size n =
  if n < 0 then invalid_arg "Varint.encoded_size: negative";
  let rec go n acc = if n < 0x80 then acc else go (n lsr 7) (acc + 1) in
  go n 1

let write buf n =
  if n < 0 then invalid_arg "Varint.write: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let write_bytes b pos n =
  if n < 0 then invalid_arg "Varint.write_bytes: negative";
  let rec go pos n =
    if n < 0x80 then begin
      Bytes.set b pos (Char.chr n);
      pos + 1
    end else begin
      Bytes.set b pos (Char.chr (0x80 lor (n land 0x7f)));
      go (pos + 1) (n lsr 7)
    end
  in
  go pos n

let read s pos =
  let len = String.length s in
  let rec go pos shift acc =
    if pos >= len then invalid_arg "Varint.read: truncated";
    let c = Char.code (String.unsafe_get s pos) in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let read_bytes b pos =
  let len = Bytes.length b in
  let rec go pos shift acc =
    if pos >= len then invalid_arg "Varint.read_bytes: truncated";
    let c = Char.code (Bytes.unsafe_get b pos) in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0
