(** Small bit-twiddling helpers shared by the histogram and bloom filter. *)

val clz63 : int -> int
(** [clz63 v] counts leading zeros of [v] viewed as a 63-bit value.
    [clz63 1 = 62]; [clz63 0 = 63]. *)

val ceil_log2 : int -> int
(** Smallest [k] with [2^k >= v]; [ceil_log2 1 = 0]. Raises
    [Invalid_argument] for [v <= 0]. *)

val next_pow2 : int -> int
(** Smallest power of two [>= v]. *)
