(* Count-leading-zeros via downward binary search on the top bit. A
   shift-left formulation is a trap here: OCaml ints are 63-bit, so
   shifting a probe bit "up" can silently overflow the sign bit. *)
let floor_log2 v =
  (* v > 0 *)
  let n = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then begin
    n := !n + 32;
    v := !v lsr 32
  end;
  if !v lsr 16 <> 0 then begin
    n := !n + 16;
    v := !v lsr 16
  end;
  if !v lsr 8 <> 0 then begin
    n := !n + 8;
    v := !v lsr 8
  end;
  if !v lsr 4 <> 0 then begin
    n := !n + 4;
    v := !v lsr 4
  end;
  if !v lsr 2 <> 0 then begin
    n := !n + 2;
    v := !v lsr 2
  end;
  if !v lsr 1 <> 0 then n := !n + 1;
  !n

let clz63 v = if v <= 0 then 63 else 62 - floor_log2 v

let ceil_log2 v =
  if v <= 0 then invalid_arg "Bits.ceil_log2: v <= 0";
  if v = 1 then 0 else 63 - clz63 (v - 1)

let next_pow2 v = if v <= 1 then 1 else 1 lsl ceil_log2 v
