(** Latency histogram with bounded relative error.

    Log-linear bucketing (HdrHistogram-style): values are grouped into
    power-of-two magnitude ranges, each split into a fixed number of
    linear sub-buckets, giving ~1.5% worst-case relative error with a
    few KB of memory. Used for the paper's tail-latency figures. *)

type t

val create : unit -> t
(** Histogram accepting values in [\[0, 2^62)] (e.g. nanoseconds). *)

val record : t -> int -> unit
(** [record t v] adds one observation. Negative values clamp to 0. *)

val record_many : t -> int -> int -> unit
(** [record_many t v count] adds [count] observations of [v]. *)

val merge_into : src:t -> dst:t -> unit
(** Accumulate [src]'s counts into [dst] (for per-thread histograms). *)

val count : t -> int
val min_value : t -> int
val max_value : t -> int
val mean : t -> float

val percentile : t -> float -> int
(** [percentile t p] is the value at percentile [p] (in [\[0, 100\]]),
    e.g. [percentile t 95.0]. Returns 0 for an empty histogram. *)

val percentiles : t -> float list -> int list
(** [percentiles t ps] evaluates every percentile in [ps] (same
    convention as {!percentile}) in a single pass over the buckets,
    returning results positionally. All zeros for an empty histogram. *)

val buckets : t -> (int * int) list
(** Non-empty buckets as [(upper_bound, count)] pairs in ascending
    bucket order. The upper bound is the largest value the bucket can
    hold; together with {!count} this is enough for external tooling to
    re-aggregate percentiles within the histogram's relative error. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: count, mean, p50/p95/p99 and max. *)

val reset : t -> unit
