(** A byte slice over a char bigarray, used for zero-copy partial reads
    from storage backends (mmap windows on disk, fresh buffers in
    memory) and for cached sstable blocks. Slices may alias shared
    underlying storage; treat them as read-only unless you created the
    buffer yourself. *)

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val length : t -> int

val of_bigarray : ?off:int -> ?len:int -> buf -> t
(** View over an existing bigarray without copying. *)

val create : int -> t
(** Fresh uninitialized buffer of the given length. *)

val get : t -> int -> char
val unsafe_get : t -> int -> char

val set : t -> int -> char -> unit
(** Only meaningful on slices whose buffer the caller owns (e.g. from
    [create] or [copy]); writing to an mmap-backed window is a bug. *)

val sub : t -> off:int -> len:int -> t
(** Sub-slice sharing the same buffer; no copy. *)

val of_string : string -> t
val substring : t -> off:int -> len:int -> string
val to_string : t -> string

val copy : t -> t
(** Fresh private buffer with the same contents — used by the fault
    middleware to corrupt a returned slice without touching the
    (possibly mmap-backed) original. *)

val blit_from_bytes : Bytes.t -> src_off:int -> t -> dst_off:int -> len:int -> unit
