(** LEB128 variable-length integer encoding.

    Non-negative integers are encoded 7 bits at a time, least-significant
    group first, with the high bit of each byte acting as a continuation
    flag. Used throughout the on-disk formats (SSTable records, funk-log
    records) to keep small lengths and versions compact. *)

val encoded_size : int -> int
(** [encoded_size n] is the number of bytes [write] will emit for [n].
    Raises [Invalid_argument] if [n < 0]. *)

val write : Buffer.t -> int -> unit
(** [write buf n] appends the encoding of [n] to [buf].
    Raises [Invalid_argument] if [n < 0]. *)

val write_bytes : bytes -> int -> int -> int
(** [write_bytes b pos n] encodes [n] at [pos] and returns the position
    immediately after the encoding. *)

val read : string -> int -> int * int
(** [read s pos] decodes the integer starting at [pos], returning
    [(value, next_pos)]. Raises [Invalid_argument] on truncated input. *)

val read_bytes : bytes -> int -> int * int
(** [read_bytes b pos] is [read] over [bytes]. *)
