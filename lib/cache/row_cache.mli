(** Row cache: individual hot KV-pairs from munk-less chunks (§2.2, §4).

    Coarse-grained LRU implemented as a fixed-size queue of hash
    tables. Inserts go to the head table; when it fills, a fresh table
    is pushed at the head and the tail table is discarded, evicting its
    entries in bulk. A hit in a non-head table re-inserts the pair into
    the head table.

    Per the paper, the cache never holds stale values: a put updates
    the cached value only if the key is already present (it does not
    populate the cache, to avoid pollution under write-heavy loads);
    gets populate it after reading from disk. Entries carry the
    (version, counter) pair of the put that produced them, and an
    update only lands if it is newer — this is how EvenDB orders
    concurrent same-version puts on the cache (§3.3). All operations
    are thread-safe. *)

type t

val create : ?tables:int -> capacity_per_table:int -> unit -> t
(** [tables] defaults to 3 (the configuration of §5.1). *)

val find : t -> string -> string option
(** [find t key] returns the cached value and promotes the entry to
    the head table. [None] means "not cached" (the key may still exist
    on disk). *)

val insert : t -> string -> string -> version:int -> counter:int -> unit
(** Add on the read path (after a disk get). If a newer copy is
    already cached, it is kept. *)

val update_if_present : t -> string -> string -> version:int -> counter:int -> unit
(** Write path: refresh the cached copy only if one exists and is
    older than (version, counter). *)

val invalidate : t -> string -> unit
(** Remove a key everywhere (delete path). *)

val invalidate_range : t -> low:string -> high:string option -> unit
(** Remove all keys in [\[low, high\]] ([None] = unbounded) — used
    when a chunk gains a munk, after which puts stop refreshing the
    cache for that range. *)

val clear : t -> unit

val length : t -> int
(** Number of live entries (entries shared between tables count once). *)

val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Entries lost to tail-table drops (bulk LRU eviction); promoted
    copies that survive in a younger table are not counted. *)
