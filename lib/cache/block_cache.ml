(* Shared block cache: a sharded, byte-capacity-bounded cache of
   checksummed sstable blocks, sitting between [Env] and
   [Sstable.Reader] so every engine, chunk, and shard draws from one
   budget. Entries are bigarray-backed slices (mmap windows on disk,
   private buffers in memory) — a hit hands the cached slice straight
   to the decoder, no copy and no re-verification: the fill closure
   verified the block's CRC once, and cached blocks are trusted
   thereafter.

   Eviction is LFU with decay-by-halving, per shard, mirroring
   [Lfu] (the munk cache): each access bumps the entry's frequency,
   periodic halving lets cold entries age out, and the victim is the
   resident entry with the lowest frequency. The byte budget is split
   evenly across shards and enforced per shard before insert, so total
   resident bytes never exceed the configured capacity. *)

open Evendb_util

type key = { space : int; file : string; index : int }

type entry = { slice : Bigslice.t; mutable freq : int }

type shard = {
  mutex : Mutex.t;
  budget : int;
  tbl : (key, entry) Hashtbl.t;
  mutable resident : int;
  mutable accesses : int;
}

type t = {
  shards : shard array;
  capacity : int;
  decay_every : int;
  hit_count : int Atomic.t;
  miss_count : int Atomic.t;
  fill_count : int Atomic.t;
  eviction_count : int Atomic.t;
}

let default_shards = 8

let create ?(shards = default_shards) ~capacity_bytes () =
  if capacity_bytes < 0 then invalid_arg "Block_cache.create: capacity_bytes < 0";
  if shards <= 0 then invalid_arg "Block_cache.create: shards <= 0";
  let budget = capacity_bytes / shards in
  {
    shards =
      Array.init shards (fun _ ->
          {
            mutex = Mutex.create ();
            budget;
            tbl = Hashtbl.create 64;
            resident = 0;
            accesses = 0;
          });
    capacity = capacity_bytes;
    decay_every = 4096;
    hit_count = Atomic.make 0;
    miss_count = Atomic.make 0;
    fill_count = Atomic.make 0;
    eviction_count = Atomic.make 0;
  }

let capacity_bytes t = t.capacity

let with_lock sh f =
  Mutex.lock sh.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.mutex) f

let shard_of t key = t.shards.(Hashtbl.hash key land max_int mod Array.length t.shards)

let decay t sh =
  sh.accesses <- sh.accesses + 1;
  if sh.accesses >= t.decay_every then begin
    sh.accesses <- 0;
    Hashtbl.iter (fun _ e -> e.freq <- e.freq / 2) sh.tbl
  end

(* Coldest resident entry of the shard. *)
let victim sh =
  Hashtbl.fold
    (fun k e best ->
      match best with
      | Some (_, bf, _) when bf <= e.freq -> best
      | _ -> Some (k, e.freq, Bigslice.length e.slice))
    sh.tbl None

let evict_until t sh ~need =
  let rec go () =
    if sh.resident + need > sh.budget then
      match victim sh with
      | None -> ()
      | Some (k, _, len) ->
        Hashtbl.remove sh.tbl k;
        sh.resident <- sh.resident - len;
        Atomic.incr t.eviction_count;
        go ()
  in
  go ()

let find_or_fill t ~space ~file ~index ~fill =
  let key = { space; file; index } in
  let sh = shard_of t key in
  let cached =
    with_lock sh (fun () ->
        match Hashtbl.find_opt sh.tbl key with
        | Some e ->
          e.freq <- e.freq + 1;
          decay t sh;
          Some e.slice
        | None -> None)
  in
  match cached with
  | Some slice ->
    Atomic.incr t.hit_count;
    slice
  | None ->
    Atomic.incr t.miss_count;
    (* Fill outside the shard lock: the read (and CRC check) must not
       serialize unrelated lookups. Two racing fills of the same block
       both verify; the loser's insert just replaces an identical
       entry. *)
    let slice = fill () in
    Atomic.incr t.fill_count;
    let len = Bigslice.length slice in
    with_lock sh (fun () ->
        if len <= sh.budget then begin
          (match Hashtbl.find_opt sh.tbl key with
          | Some e ->
            (* Raced with another fill: keep the resident entry. *)
            e.freq <- e.freq + 1
          | None ->
            evict_until t sh ~need:len;
            Hashtbl.replace sh.tbl key { slice; freq = 1 };
            sh.resident <- sh.resident + len);
          decay t sh
        end);
    slice

let remove_matching t pred =
  Array.iter
    (fun sh ->
      with_lock sh (fun () ->
          let doomed =
            Hashtbl.fold (fun k e acc -> if pred k then (k, e) :: acc else acc) sh.tbl []
          in
          List.iter
            (fun (k, e) ->
              Hashtbl.remove sh.tbl k;
              sh.resident <- sh.resident - Bigslice.length e.slice)
            doomed))
    t.shards

let invalidate_file t ~space ~file =
  remove_matching t (fun k -> k.space = space && k.file = file)

let invalidate_space t ~space = remove_matching t (fun k -> k.space = space)

let clear t = remove_matching t (fun _ -> true)

let resident_bytes t =
  Array.fold_left (fun acc sh -> acc + with_lock sh (fun () -> sh.resident)) 0 t.shards

let hits t = Atomic.get t.hit_count
let misses t = Atomic.get t.miss_count
let fills t = Atomic.get t.fill_count
let evictions t = Atomic.get t.eviction_count
