(** Shared, capacity-bounded cache of checksummed sstable blocks.

    One instance sits between {!Env} and the sstable readers of every
    engine, chunk, and shard sharing that environment, so all block
    reads draw from a single byte budget. Keys are
    [(space, file, index)]: [space] is a unique id per environment
    namespace (shards on prefixed sub-namespaces reuse file names), and
    [index] the block's position in the file's block index.

    CRC verification happens exactly once, inside the fill closure; a
    hit returns the cached slice without copying or re-verifying.
    Eviction is LFU-with-decay per shard (see {!Lfu}); total resident
    bytes never exceed the configured capacity. *)

type t

val create : ?shards:int -> capacity_bytes:int -> unit -> t

val capacity_bytes : t -> int

val find_or_fill :
  t ->
  space:int ->
  file:string ->
  index:int ->
  fill:(unit -> Evendb_util.Bigslice.t) ->
  Evendb_util.Bigslice.t
(** Return the cached block, or run [fill] (outside any cache lock),
    insert the result, and return it. Exceptions from [fill]
    (corruption, I/O errors) propagate and cache nothing. A block
    larger than a shard's budget is served but never cached, keeping
    the bound strict. *)

val invalidate_file : t -> space:int -> file:string -> unit
(** Drop every cached block of the named file — called when the file is
    deleted, renamed, or created over. *)

val invalidate_space : t -> space:int -> unit
(** Drop every cached block of one environment's namespace (crash
    simulation). *)

val clear : t -> unit

val resident_bytes : t -> int
val hits : t -> int
val misses : t -> int
val fills : t -> int
val evictions : t -> int
