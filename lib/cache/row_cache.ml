type cached = {
  value : string;
  version : int;
  counter : int;
}

type t = {
  mutex : Mutex.t;
  capacity : int;
  n_tables : int;
  mutable queue : (string, cached) Hashtbl.t list; (* head first *)
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
}

let create ?(tables = 3) ~capacity_per_table () =
  if tables <= 0 then invalid_arg "Row_cache.create: tables <= 0";
  if capacity_per_table <= 0 then invalid_arg "Row_cache.create: capacity <= 0";
  {
    mutex = Mutex.create ();
    capacity = capacity_per_table;
    n_tables = tables;
    queue = List.init tables (fun _ -> Hashtbl.create 64);
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let head t = match t.queue with h :: _ -> h | [] -> assert false

let newer a ~version ~counter =
  a.version > version || (a.version = version && a.counter >= counter)

(* Push a fresh head table and drop the tail once the head fills. *)
let rotate_if_full t =
  if Hashtbl.length (head t) >= t.capacity then begin
    let keep = List.filteri (fun i _ -> i < t.n_tables - 1) t.queue in
    (* Entries of the dropped tail are evicted unless a promoted copy
       survives in a younger table. *)
    (match List.nth_opt t.queue (t.n_tables - 1) with
    | None -> ()
    | Some tail ->
      Hashtbl.iter
        (fun k _ ->
          if not (List.exists (fun table -> Hashtbl.mem table k) keep) then
            t.eviction_count <- t.eviction_count + 1)
        tail);
    t.queue <- Hashtbl.create 64 :: keep
  end

let add_to_head t key entry =
  rotate_if_full t;
  Hashtbl.replace (head t) key entry

let find_anywhere t key =
  let rec search = function
    | [] -> None
    | table :: rest -> (
      match Hashtbl.find_opt table key with
      | Some e -> Some (e, table)
      | None -> search rest)
  in
  search t.queue

let find t key =
  with_lock t (fun () ->
      match find_anywhere t key with
      | None ->
        t.miss_count <- t.miss_count + 1;
        None
      | Some (e, table) ->
        t.hit_count <- t.hit_count + 1;
        (* Promote: share the pair with the head table so it survives
           the tail being dropped. *)
        if table != head t then add_to_head t key e;
        Some e.value)

let insert t key value ~version ~counter =
  with_lock t (fun () ->
      match find_anywhere t key with
      | Some (e, _) when newer e ~version ~counter -> ()
      | _ -> add_to_head t key { value; version; counter })

let update_if_present t key value ~version ~counter =
  with_lock t (fun () ->
      match find_anywhere t key with
      | None -> ()
      | Some (e, _) when newer e ~version ~counter -> ()
      | Some _ ->
        (* Refresh every copy: stale values must never be served. *)
        List.iter
          (fun table ->
            if Hashtbl.mem table key then Hashtbl.replace table key { value; version; counter })
          t.queue)

let invalidate t key =
  with_lock t (fun () -> List.iter (fun table -> Hashtbl.remove table key) t.queue)

let invalidate_range t ~low ~high =
  with_lock t (fun () ->
      List.iter
        (fun table ->
          let doomed =
            Hashtbl.fold
              (fun k _ acc ->
                if
                  String.compare low k <= 0
                  && (match high with None -> true | Some h -> String.compare k h <= 0)
                then k :: acc
                else acc)
              table []
          in
          List.iter (Hashtbl.remove table) doomed)
        t.queue)

let clear t =
  with_lock t (fun () -> t.queue <- List.init t.n_tables (fun _ -> Hashtbl.create 64))

let length t =
  with_lock t (fun () ->
      let seen = Hashtbl.create 64 in
      List.iter
        (fun table -> Hashtbl.iter (fun k _ -> Hashtbl.replace seen k ()) table)
        t.queue;
      Hashtbl.length seen)

let hits t = t.hit_count
let misses t = t.miss_count
let evictions t = t.eviction_count
