(** LFU-with-decay admission/eviction policy for the munk cache (§4).

    "The munk cache applies an LFU eviction policy. We use exponential
    decay to maintain the recent access counts: periodically, all
    counters are sliced by a factor of two."

    The policy tracks access frequencies of *chunks* (by integer id)
    and maintains the cached set. On each access to an uncached chunk
    it decides whether the chunk has become hot enough to displace the
    coldest cached munk. Thread-safe. *)

type t

type decision =
  | Already_cached
  | Admit of int option
      (** Cache this chunk; evict the munk of the given chunk first
          (None while the cache has spare capacity). *)
  | Evict_other of int
      (** The accessed chunk stays cached, but the cache is over
          capacity (post-split inheritance): evict the given chunk. *)
  | Skip  (** Not hot enough to displace anything. *)

val create : capacity:int -> ?decay_every:int -> unit -> t
(** [capacity] is the maximum number of cached munks; [decay_every]
    (default 10_000) is the access count between decay sweeps. *)

val on_access : t -> int -> decision
(** Bump the chunk's frequency and decide. When [Admit] is returned
    the chunk is recorded as cached and the evictee (if any) as
    uncached — the caller performs the actual munk load/drop. *)

val is_cached : t -> int -> bool

val force_insert : t -> int -> int option
(** Unconditionally mark a chunk cached (initial load, splits),
    returning a chunk to evict if over capacity. *)

val remove : t -> int -> unit
(** Forget a chunk entirely (it was split away or merged). *)

val transfer : t -> old_id:int -> new_ids:int list -> unit
(** Split support: the children inherit the parent's frequency and
    cached status. May exceed capacity transiently; the next
    [on_access] rebalances. *)

val cached : t -> int list
val frequency : t -> int -> int

val drop_cached : t -> int -> unit
(** Mark a chunk as no longer cached but keep its frequency (explicit
    munk eviction). *)

(** {2 Statistics}

    A hit is an [on_access] to an already-cached chunk, a miss one to
    an uncached chunk (whether or not it is then admitted). Evictions
    count every removal decided by the policy ([Admit (Some _)],
    [Evict_other], over-capacity [force_insert]). *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
