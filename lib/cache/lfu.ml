type decision =
  | Already_cached
  | Admit of int option
  | Evict_other of int
  | Skip

type t = {
  mutex : Mutex.t;
  capacity : int;
  decay_every : int;
  freq : (int, int) Hashtbl.t;
  cached_set : (int, unit) Hashtbl.t;
  mutable accesses : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
}

let create ~capacity ?(decay_every = 10_000) () =
  if capacity <= 0 then invalid_arg "Lfu.create: capacity <= 0";
  {
    mutex = Mutex.create ();
    capacity;
    decay_every;
    freq = Hashtbl.create 256;
    cached_set = Hashtbl.create 256;
    accesses = 0;
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let bump t id =
  let f = Option.value ~default:0 (Hashtbl.find_opt t.freq id) in
  Hashtbl.replace t.freq id (f + 1);
  t.accesses <- t.accesses + 1;
  if t.accesses >= t.decay_every then begin
    t.accesses <- 0;
    Hashtbl.iter (fun k v -> Hashtbl.replace t.freq k (v / 2)) t.freq
  end;
  f + 1

(* Coldest cached chunk (lowest frequency), excluding [but]. *)
let victim ?but t =
  Hashtbl.fold
    (fun id () best ->
      if Some id = but then best
      else begin
        let f = Option.value ~default:0 (Hashtbl.find_opt t.freq id) in
        match best with
        | Some (_, bf) when bf <= f -> best
        | _ -> Some (id, f)
      end)
    t.cached_set None

let on_access t id =
  with_lock t (fun () ->
      let f = bump t id in
      if Hashtbl.mem t.cached_set id then begin
        t.hit_count <- t.hit_count + 1;
        (* Splits can leave the cache transiently over capacity
           (children inherit the parent's cached status); drain the
           excess here. *)
        if Hashtbl.length t.cached_set > t.capacity then begin
          match victim ~but:id t with
          | Some (vid, _) ->
            Hashtbl.remove t.cached_set vid;
            t.eviction_count <- t.eviction_count + 1;
            Evict_other vid
          | None -> Already_cached
        end
        else Already_cached
      end
      else begin
        t.miss_count <- t.miss_count + 1;
        if Hashtbl.length t.cached_set < t.capacity then begin
          Hashtbl.replace t.cached_set id ();
          Admit None
        end
        else
          match victim t with
          | Some (vid, vf) when f > vf ->
            Hashtbl.remove t.cached_set vid;
            t.eviction_count <- t.eviction_count + 1;
            Hashtbl.replace t.cached_set id ();
            Admit (Some vid)
          | _ -> Skip
      end)

let is_cached t id = with_lock t (fun () -> Hashtbl.mem t.cached_set id)

let force_insert t id =
  with_lock t (fun () ->
      if Hashtbl.mem t.cached_set id then None
      else begin
        Hashtbl.replace t.cached_set id ();
        if Hashtbl.length t.cached_set > t.capacity then begin
          match victim ~but:id t with
          | Some (vid, _) ->
            Hashtbl.remove t.cached_set vid;
            t.eviction_count <- t.eviction_count + 1;
            Some vid
          | None -> None
        end
        else None
      end)

let remove t id =
  with_lock t (fun () ->
      Hashtbl.remove t.cached_set id;
      Hashtbl.remove t.freq id)

let transfer t ~old_id ~new_ids =
  with_lock t (fun () ->
      let f = Option.value ~default:0 (Hashtbl.find_opt t.freq old_id) in
      let was_cached = Hashtbl.mem t.cached_set old_id in
      Hashtbl.remove t.cached_set old_id;
      Hashtbl.remove t.freq old_id;
      List.iter
        (fun id ->
          Hashtbl.replace t.freq id f;
          if was_cached then Hashtbl.replace t.cached_set id ())
        new_ids)

let cached t =
  with_lock t (fun () -> Hashtbl.fold (fun id () acc -> id :: acc) t.cached_set [])

let frequency t id =
  with_lock t (fun () -> Option.value ~default:0 (Hashtbl.find_opt t.freq id))

let drop_cached t id = with_lock t (fun () -> Hashtbl.remove t.cached_set id)

let hits t = with_lock t (fun () -> t.hit_count)
let misses t = with_lock t (fun () -> t.miss_count)
let evictions t = with_lock t (fun () -> t.eviction_count)
