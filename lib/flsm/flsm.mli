(** A fragmented LSM-tree (FLSM) — the PebblesDB-like baseline of §5.4.

    PebblesDB's key idea: levels are partitioned by {e guards}; when
    level i is compacted, each guard's fragments are merged and the
    output is *appended* as new fragments under the child guards of
    level i+1, without rewriting the child's existing data. Write
    amplification drops (data is rewritten once per level instead of
    repeatedly), at the cost of reads having to examine several
    overlapping fragments per guard.

    Guards are created by splitting oversized compaction outputs at
    key boundaries (a deterministic stand-in for PebblesDB's
    probabilistic guard sampling — it yields the same structure for a
    given data volume). The bottom level merges guards in place when
    they accumulate too many fragments.

    Reuses the LSM baseline's memtable and runs on the same
    instrumented storage environment. *)

open Evendb_storage

module Config : sig
  type t = {
    memtable_bytes : int;
    l0_compaction_trigger : int;
    max_fragments_per_guard : int;
        (** Fragment count that triggers compaction of a guard. *)
    guard_bytes : int;
        (** Target data volume per guard; compaction outputs larger
            than this create new child guards. *)
    bloom_bits_per_key : int;
    sstable_block_bytes : int;
    sync_writes : bool;
    wal_fsync_every : int;
    max_levels : int;
    attr_enabled : bool;  (** Per-op tail-latency cause attribution. *)
    block_cache_bytes : int;
        (** Shared sstable block cache installed on the env at open
            (default 32MiB; 0 disables — no-op if the env already
            carries one). *)
  }

  val default : t
  val scaled : ?factor:int -> unit -> t
end

type t

val open_ : ?config:Config.t -> Env.t -> t
val close : t -> unit

val put : t -> string -> string -> unit
val get : t -> string -> string option
val delete : t -> string -> unit
val scan : t -> ?limit:int -> low:string -> high:string -> unit -> (string * string) list

val compact_now : t -> unit

val env : t -> Env.t
val logical_bytes_written : t -> int
val write_amplification : t -> float

val fragment_counts : t -> int list
(** Total fragments per level. *)

val guard_counts : t -> int list

val debug_locate : t -> string -> string
(** Diagnostic: brute-force description of where a key's versions live. *)

(** {2 Observability} *)

val obs : t -> Evendb_obs.Obs.t
(** Op-latency timers ([db.put]/[db.get]/[db.delete]/[db.scan]),
    [flsm.stalls] (puts that paid an inline flush/compaction),
    [wal.appends], per-file-kind I/O probes, spans around
    [fragment_append], [guard_merge], [memtable_flush] and [recovery],
    and per-level shape metrics: [level<i>.bytes_written] (bytes landing
    in the level), [level<i>.bytes_compacted] (bytes compacted out of
    it), [level<i>.read_hits] (gets served by it), plus
    [level<i>.bytes]/[level<i>.files] probes of the current shape —
    names match the LSM baseline so write-amplification shape is
    directly comparable across engines. *)

val attr : t -> Evendb_obs.Attr.t
(** Per-op cause attribution: writer-mutex waits ([Lock_wait]), WAL
    appends/fsyncs (via the log layer), inline flush+compaction
    ([Compaction]) and fragment reads ([Disk_read]). *)

val metrics_dump : t -> [ `Json | `Prometheus ] -> string
