open Evendb_util
open Evendb_storage
open Evendb_sstable
open Evendb_log
open Evendb_obs

module K = Kv_iter
module Memtable = Evendb_lsm.Memtable

module Config = struct
  type t = {
    memtable_bytes : int;
    l0_compaction_trigger : int;
    max_fragments_per_guard : int;
    guard_bytes : int;
    bloom_bits_per_key : int;
    sstable_block_bytes : int;
    sync_writes : bool;
    wal_fsync_every : int;
    max_levels : int;
    attr_enabled : bool;
    block_cache_bytes : int;
  }

  let mib = 1024 * 1024

  let default =
    {
      memtable_bytes = 4 * mib;
      l0_compaction_trigger = 4;
      max_fragments_per_guard = 4;
      guard_bytes = 8 * mib;
      bloom_bits_per_key = 10;
      sstable_block_bytes = 4096;
      sync_writes = false;
      wal_fsync_every = 32768;
      max_levels = 5;
      attr_enabled = true;
      block_cache_bytes = 32 * mib;
    }

  let scaled ?(factor = 64) () =
    if factor <= 0 then invalid_arg "Flsm.Config.scaled: factor <= 0";
    {
      default with
      memtable_bytes = max 4096 (default.memtable_bytes / factor);
      guard_bytes = max 8192 (default.guard_bytes / factor);
    }
end

type fragment = {
  fid : int;
  reader : Sstable.Reader.t;
  smallest : string;
  largest : string;
  bytes : int;
  refs : int Atomic.t;
}

type guard = {
  guard_key : string;
  fragments : fragment list; (* newest first *)
}

type state = {
  mem : Memtable.t;
  imm : Memtable.t option;
  levels : guard list array; (* sorted by guard_key; first is "" *)
  pins : int Atomic.t;
  state_retired : bool Atomic.t;
}

type t = {
  env : Env.t;
  cfg : Config.t;
  state : state Atomic.t;
  writer : Mutex.t;
  seq : int Atomic.t;
  mutable wal : Log_file.Writer.t;
  mutable wal_gen : int;
  next_fid : int Atomic.t;
  snap_mutex : Mutex.t;
  snapshots : (int, int) Hashtbl.t;
  mutable next_ticket : int;
  logical_written : int Atomic.t;
  put_count : int Atomic.t;
  closed : bool Atomic.t;
  obs : Obs.t;
  attr : Attr.t; (* per-op tail-latency cause attribution *)
  tm_put : Obs.Timer.t;
  tm_get : Obs.Timer.t;
  tm_delete : Obs.Timer.t;
  tm_scan : Obs.Timer.t;
  ctr_stalls : Obs.Counter.t;
  ctr_wal_appends : Obs.Counter.t;
  ctr_io_errors : Obs.Counter.t; (* Io_errors observed by maintenance paths *)
  lvl_written : Obs.Counter.t array; (* bytes landing in level i *)
  lvl_compacted : Obs.Counter.t array; (* bytes compacted out of level i *)
  lvl_reads : Obs.Counter.t array; (* gets served by level i *)
}

let level_counters obs ~max_levels name =
  Array.init max_levels (fun i -> Obs.counter obs (Printf.sprintf "level%d.%s" i name))

let sst_name fid = Printf.sprintf "flsm_%08d.sst" fid
let wal_name gen = Printf.sprintf "flsm_wal_%08d.log" gen
let manifest_name = "FLSM_MANIFEST"

let env t = t.env
let logical_bytes_written t = Atomic.get t.logical_written
let obs t = t.obs
let attr t = t.attr

let metrics_dump t = function
  | `Json -> Obs.to_json t.obs
  | `Prometheus -> Obs.to_prometheus t.obs

let write_amplification t =
  let written = (Io_stats.snapshot (Env.stats t.env)).Io_stats.bytes_written in
  let logical = logical_bytes_written t in
  if logical = 0 then 0.0 else float_of_int written /. float_of_int logical

(* ------------------------------------------------------------------ *)
(* State lifecycle (same refcount discipline as the LSM baseline)      *)

let state_fragments s =
  Array.to_list s.levels |> List.concat_map (fun guards -> List.concat_map (fun g -> g.fragments) guards)

let fragment_release t f =
  if Atomic.fetch_and_add f.refs (-1) = 1 then Env.delete t.env (sst_name f.fid)

let release_state t s =
  if Atomic.fetch_and_add s.pins (-1) = 1 && Atomic.get s.state_retired then
    List.iter (fragment_release t) (state_fragments s)

let rec pin_state t =
  let s = Atomic.get t.state in
  ignore (Atomic.fetch_and_add s.pins 1);
  if Atomic.get s.state_retired then begin
    release_state t s;
    Domain.cpu_relax ();
    pin_state t
  end
  else s

let publish t s' =
  let old = Atomic.get t.state in
  Atomic.set t.state s';
  Atomic.set old.state_retired true;
  release_state t old

let fresh_state ~mem ~imm ~levels =
  Array.iter
    (fun guards ->
      List.iter
        (fun g -> List.iter (fun f -> ignore (Atomic.fetch_and_add f.refs 1)) g.fragments)
        guards)
    levels;
  { mem; imm; levels; pins = Atomic.make 1; state_retired = Atomic.make false }

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)

let store_manifest t levels =
  let buf = Buffer.create 256 in
  Varint.write buf (Atomic.get t.next_fid);
  Varint.write buf t.wal_gen;
  Varint.write buf (Atomic.get t.seq);
  Varint.write buf (Array.length levels);
  Array.iter
    (fun guards ->
      Varint.write buf (List.length guards);
      List.iter
        (fun g ->
          Varint.write buf (String.length g.guard_key);
          Buffer.add_string buf g.guard_key;
          Varint.write buf (List.length g.fragments);
          List.iter (fun f -> Varint.write buf f.fid) g.fragments)
        guards)
    levels;
  let payload = Buffer.contents buf in
  let crc = Crc32c.string payload in
  let tmp = manifest_name ^ ".tmp" in
  let file = Env.create t.env tmp in
  (* Write-tmp-then-rename: a failure leaves the old manifest intact. *)
  try
    Env.append file payload;
    Env.append file
      (String.init 4 (fun i ->
           Char.chr (Int32.to_int (Int32.shift_right_logical crc (8 * i)) land 0xff)));
    Env.fsync file;
    Env.close_file file;
    Env.rename t.env ~old_name:tmp ~new_name:manifest_name
  with exn ->
    Env.close_file file;
    (try Env.delete t.env tmp with _ -> ());
    raise exn

let manifest_corrupt env detail =
  Env.note_corruption env;
  Io_error.raise_corruption ~file:manifest_name ~detail

let load_manifest env =
  if not (Env.exists env manifest_name) then None
  else begin
    let data = Env.read_all env manifest_name in
    if String.length data < 4 then manifest_corrupt env "truncated";
    let payload = String.sub data 0 (String.length data - 4) in
    let stored =
      let b i = Int32.of_int (Char.code data.[String.length data - 4 + i]) in
      Int32.logor (b 0)
        (Int32.logor
           (Int32.shift_left (b 1) 8)
           (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))
    in
    if Crc32c.string payload <> stored then manifest_corrupt env "bad checksum";
    match
      let next_fid, pos = Varint.read payload 0 in
      let wal_gen, pos = Varint.read payload pos in
      let seq, pos = Varint.read payload pos in
      let n_levels, pos = Varint.read payload pos in
      let posr = ref pos in
      let levels =
        Array.init n_levels (fun _ ->
            let n_guards, pos = Varint.read payload !posr in
            posr := pos;
            List.init n_guards (fun _ ->
                let klen, pos = Varint.read payload !posr in
                let guard_key = String.sub payload pos klen in
                let pos = pos + klen in
                let n_frags, pos = Varint.read payload pos in
                posr := pos;
                let fids =
                  List.init n_frags (fun _ ->
                      let fid, pos = Varint.read payload !posr in
                      posr := pos;
                      fid)
                in
                (guard_key, fids)))
      in
      (next_fid, wal_gen, seq, levels)
    with
    | m -> Some m
    | exception Invalid_argument _ -> manifest_corrupt env "malformed payload"
  end

(* ------------------------------------------------------------------ *)
(* Fragment building                                                   *)

let open_fragment env fid =
  let reader = Sstable.Reader.open_ env (sst_name fid) in
  {
    fid;
    reader;
    smallest = Option.value ~default:"" (Sstable.Reader.first_key reader);
    largest = Option.value ~default:"" (Sstable.Reader.last_key reader);
    bytes = (try Env.size env (sst_name fid) with Not_found -> 0);
    refs = Atomic.make 0;
  }

let build_fragment t entries =
  Obs.Trace.with_span (Obs.trace t.obs) ~name:"fragment_append"
    ~attrs:[ ("entries", List.length entries) ]
    (fun sp ->
      let fid = Atomic.fetch_and_add t.next_fid 1 in
      let builder =
        Sstable.Builder.create t.env ~block_size:t.cfg.sstable_block_bytes
          ~bloom_bits_per_key:t.cfg.bloom_bits_per_key ~with_bloom:true ~name:(sst_name fid)
          ~min_key:"" ()
      in
      (try
         List.iter (Sstable.Builder.add builder) entries;
         Sstable.Builder.finish builder
       with exn ->
         Sstable.Builder.abort builder;
         raise exn);
      let frag = open_fragment t.env fid in
      Obs.Trace.add_attr sp "bytes" frag.bytes;
      frag)

(* [built] collects fragments created during one structural change so
   that, if it fails partway, every file it wrote can be removed. *)
let build_fragment_tracked t built entries =
  let f = build_fragment t entries in
  built := f :: !built;
  f

let discard_built t built =
  List.iter (fun f -> try Env.delete t.env (sst_name f.fid) with _ -> ()) !built

let entry_bytes (e : K.entry) =
  String.length e.key + (match e.value with Some v -> String.length v | None -> 0) + 16

(* Split an entry list into groups of <= guard_bytes at distinct-key
   boundaries; each group beyond the first becomes a new guard. *)
let split_into_groups t entries =
  let groups = ref [] and current = ref [] and bytes = ref 0 and last = ref None in
  List.iter
    (fun (e : K.entry) ->
      (match !last with
      | Some k when !bytes >= t.cfg.guard_bytes && not (String.equal k e.key) ->
        groups := List.rev !current :: !groups;
        current := [];
        bytes := 0
      | _ -> ());
      current := e :: !current;
      bytes := !bytes + entry_bytes e;
      last := Some e.key)
    entries;
  if !current <> [] then groups := List.rev !current :: !groups;
  List.rev !groups

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

let register_snapshot t seqno =
  Mutex.lock t.snap_mutex;
  let ticket = t.next_ticket in
  t.next_ticket <- ticket + 1;
  Hashtbl.replace t.snapshots ticket seqno;
  Mutex.unlock t.snap_mutex;
  ticket

let unregister_snapshot t ticket =
  Mutex.lock t.snap_mutex;
  Hashtbl.remove t.snapshots ticket;
  Mutex.unlock t.snap_mutex

let min_snapshot t ~default =
  Mutex.lock t.snap_mutex;
  let m = Hashtbl.fold (fun _ s acc -> min s acc) t.snapshots default in
  Mutex.unlock t.snap_mutex;
  m

(* ------------------------------------------------------------------ *)
(* Flush & guard compaction                                            *)

(* Insert merged output of a parent guard into [child_guards]
   (sorted). Each child guard that overlaps gets one new fragment;
   oversized partitions spawn new guards. Returns the updated child
   guard list. *)
let distribute_to_children t ~built child_guards entries =
  match entries with
  | [] -> child_guards
  | _ ->
    (* Partition entries by child guard boundaries. *)
    let rec partition guards entries acc =
      match guards with
      | [] -> List.rev acc
      | [ g ] -> List.rev ((g, entries) :: acc)
      | g :: (g2 :: _ as rest) ->
        let mine, theirs =
          List.partition (fun (e : K.entry) -> String.compare e.key g2.guard_key < 0) entries
        in
        partition rest theirs ((g, mine) :: acc)
    in
    let parts = partition child_guards entries [] in
    List.concat_map
      (fun (g, part) ->
        match part with
        | [] -> [ g ]
        | _ -> (
          match split_into_groups t part with
          | [] -> [ g ]
          | first :: extras ->
            let g' =
              { g with fragments = build_fragment_tracked t built first :: g.fragments }
            in
            g'
            :: List.map
                 (fun group ->
                   let gk = (List.hd group : K.entry).key in
                   { guard_key = gk; fragments = [ build_fragment_tracked t built group ] })
                 extras))
      parts

(* Merge all fragments of a guard into one sorted entry list. *)
let merge_guard t guard ~drop_tombstones =
  Obs.Trace.with_span (Obs.trace t.obs) ~name:"guard_merge"
    ~attrs:
      [
        ("fragments", List.length guard.fragments);
        ("bytes", List.fold_left (fun acc f -> acc + f.bytes) 0 guard.fragments);
      ]
    (fun sp ->
      let floor = min_snapshot t ~default:(Atomic.get t.seq) in
      let merged =
        K.to_list
          (K.compact ~min_retained_version:floor ~drop_tombstones
             (K.merge (List.map (fun f -> Sstable.Reader.iter f.reader) guard.fragments)))
      in
      Obs.Trace.add_attr sp "entries" (List.length merged);
      merged)

(* Compact the whole of level [i] into level [i+1]: each guard's
   fragments are merged and the output appended under the child
   guards; level [i] is left with empty guards. Moving the entire
   level preserves the cross-level version ordering (a partially-moved
   level could leave older sibling fragments above newer data). At the
   bottom level guards are merged in place instead. Caller holds the
   writer mutex. *)
let compact_level t i =
  let s = Atomic.get t.state in
  let levels = Array.copy s.levels in
  let bottom = i = Array.length levels - 1 in
  let built = ref [] in
  (* Bytes read out of level i as compaction input: every fragment for a
     level move, only multi-fragment guards for a bottom in-place merge.
     Counted only after a successful publish (failure atomicity). *)
  let input_bytes =
    List.fold_left
      (fun acc g ->
        if bottom && List.length g.fragments <= 1 then acc
        else List.fold_left (fun acc f -> acc + f.bytes) acc g.fragments)
      0 levels.(i)
  in
  try
    if bottom then
    levels.(i) <-
      List.concat_map
        (fun g ->
          if List.length g.fragments <= 1 then [ g ]
          else begin
            (* Tombstones may only be dropped if no *other* bottom
               fragment (a wide pre-split sibling) overlaps this
               guard's data — it could hold an older value the
               tombstone still masks. *)
            let g_lo =
              List.fold_left (fun acc f -> min acc f.smallest) (List.hd g.fragments).smallest
                g.fragments
            and g_hi =
              List.fold_left (fun acc f -> max acc f.largest) (List.hd g.fragments).largest
                g.fragments
            in
            let sibling_overlap =
              List.exists
                (fun g' ->
                  g'.guard_key <> g.guard_key
                  && List.exists
                       (fun f ->
                         String.compare f.smallest g_hi <= 0
                         && String.compare g_lo f.largest <= 0)
                       g'.fragments)
                levels.(i)
            in
            let merged = merge_guard t g ~drop_tombstones:(not sibling_overlap) in
            match split_into_groups t merged with
            | [] -> [ { g with fragments = [] } ]
            | first :: extras ->
              { g with fragments = [ build_fragment_tracked t built first ] }
              :: List.map
                   (fun group ->
                     {
                       guard_key = (List.hd group : K.entry).key;
                       fragments = [ build_fragment_tracked t built group ];
                     })
                   extras
          end)
        levels.(i)
    else begin
      let children = ref levels.(i + 1) in
      List.iter
        (fun g ->
          if g.fragments <> [] then begin
            let merged = merge_guard t g ~drop_tombstones:false in
            children := distribute_to_children t ~built !children merged
          end)
        levels.(i);
      levels.(i + 1) <- !children;
      levels.(i) <- List.map (fun g -> { g with fragments = [] }) levels.(i)
    end;
    (* Manifest before publish: publishing retires the old state, whose
       refcount release deletes the input fragments — the on-disk
       manifest must already reference the outputs by then. *)
    store_manifest t levels;
    publish t (fresh_state ~mem:(Atomic.get t.state).mem ~imm:(Atomic.get t.state).imm ~levels);
    Obs.Counter.add t.lvl_compacted.(i) input_bytes;
    let out_bytes = List.fold_left (fun acc f -> acc + f.bytes) 0 !built in
    Obs.Counter.add t.lvl_written.(if bottom then i else i + 1) out_bytes
  with exn ->
    (* Nothing was published: remove every fragment this compaction
       wrote and leave the engine on the old state. *)
    discard_built t built;
    raise exn

let rec compact t =
  let s = Atomic.get t.state in
  let l0_frags = List.concat_map (fun g -> g.fragments) s.levels.(0) in
  if List.length l0_frags >= t.cfg.l0_compaction_trigger then begin
    compact_level t 0;
    compact t
  end
  else begin
    (* A level with an overfull guard moves down wholesale. *)
    let doomed = ref None in
    Array.iteri
      (fun i guards ->
        if !doomed = None && i > 0 then
          if
            List.exists
              (fun g -> List.length g.fragments > t.cfg.max_fragments_per_guard)
              guards
          then doomed := Some i)
      s.levels;
    match !doomed with
    | None -> ()
    | Some i ->
      compact_level t i;
      compact t
  end

(* All callers hold the writer mutex, so no put can race a flush.

   Failure atomicity mirrors the LSM baseline: build the L0 fragment
   and the rotated WAL first, commit through the manifest, then publish
   and delete the old WAL. A failure before the manifest write leaves
   the engine exactly as it was. *)
let flush_memtable t =
  let s = Atomic.get t.state in
  if not (Memtable.is_empty s.mem) then
    Obs.Trace.with_span (Obs.trace t.obs) ~name:"memtable_flush"
      ~attrs:[ ("bytes", Memtable.byte_size s.mem) ]
      (fun _sp ->
        let floor = min_snapshot t ~default:(Atomic.get t.seq) in
        let entries =
          K.to_list
            (K.compact ~min_retained_version:floor ~drop_tombstones:false
               (Memtable.to_iter s.mem))
        in
        let frag = build_fragment t entries in
        let old_wal_gen = t.wal_gen in
        let old_wal = t.wal in
        let new_wal_gen = old_wal_gen + 1 in
        let new_wal =
          try Log_file.Writer.create t.env (wal_name new_wal_gen)
          with exn ->
            (try Env.delete t.env (sst_name frag.fid) with _ -> ());
            raise exn
        in
        let levels = Array.copy s.levels in
        (levels.(0) <-
           match levels.(0) with
           | [ g ] -> [ { g with fragments = frag :: g.fragments } ]
           | _ -> assert false);
        t.wal_gen <- new_wal_gen;
        t.wal <- new_wal;
        (try store_manifest t levels
         with exn ->
           t.wal_gen <- old_wal_gen;
           t.wal <- old_wal;
           Log_file.Writer.close new_wal;
           (try Env.delete t.env (wal_name new_wal_gen) with _ -> ());
           (try Env.delete t.env (sst_name frag.fid) with _ -> ());
           raise exn);
        publish t (fresh_state ~mem:Memtable.empty ~imm:None ~levels);
        Obs.Counter.add t.lvl_written.(0) frag.bytes;
        Log_file.Writer.close old_wal;
        (try Env.delete t.env (wal_name old_wal_gen) with _ -> ()))

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

let put_entry t key value_opt =
  (* As in Lsm: charge writer-mutex queueing (behind another put's
     inline flush) to Lock_wait only when the fast try_lock loses. *)
  if not (Mutex.try_lock t.writer) then
    Attr.timed Attr.Lock_wait (fun () -> Mutex.lock t.writer);
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.writer)
    (fun () ->
      let seq = Atomic.fetch_and_add t.seq 1 + 1 in
      let entry : K.entry = { key; value = value_opt; version = seq; counter = 0 } in
      ignore (Log_file.Writer.append t.wal entry);
      Obs.Counter.incr t.ctr_wal_appends;
      if t.cfg.sync_writes then Log_file.Writer.fsync t.wal
      else begin
        let n = Atomic.fetch_and_add t.put_count 1 + 1 in
        if t.cfg.wal_fsync_every > 0 && n mod t.cfg.wal_fsync_every = 0 then
          Log_file.Writer.fsync t.wal
      end;
      let s = Atomic.get t.state in
      Atomic.set t.state { s with mem = Memtable.add s.mem entry };
      ignore
        (Atomic.fetch_and_add t.logical_written
           (String.length key + match value_opt with Some v -> String.length v | None -> 0));
      if Memtable.byte_size (Atomic.get t.state).mem >= t.cfg.memtable_bytes then begin
        (* The put itself is already durable and applied; a maintenance
           I/O failure rolled itself back, so count it and carry on —
           the next put over the threshold retries. *)
        Obs.Counter.incr t.ctr_stalls;
        try
          Attr.timed Attr.Compaction (fun () ->
              flush_memtable t;
              compact t)
        with Env.Io_error _ | Env.Corruption _ -> Obs.Counter.incr t.ctr_io_errors
      end)

let put t key value =
  Attr.with_op t.attr Attr.Put t.tm_put (fun () -> put_entry t key (Some value))

let delete t key = Attr.with_op t.attr Attr.Delete t.tm_delete (fun () -> put_entry t key None)

let guard_for guards key =
  (* Last guard with guard_key <= key; guards sorted, first is "". *)
  let rec go best = function
    | [] -> best
    | g :: rest -> if String.compare g.guard_key key <= 0 then go (Some g) rest else best
  in
  go None guards

let get t key =
  Attr.with_op t.attr Attr.Get t.tm_get @@ fun () ->
  let s = pin_state t in
  Fun.protect
    ~finally:(fun () -> release_state t s)
    (fun () ->
      let from_levels () =
        let check f =
          if
            String.compare f.smallest key <= 0
            && String.compare key f.largest <= 0
            && Sstable.Reader.may_contain f.reader key
          then Sstable.Reader.get f.reader key
          else None
        in
        let rec search_level i =
          if i >= Array.length s.levels then None
          else begin
            (* Fragments never span below their guard's key, but
               fragments created before a guard split may extend past
               the next guard's key — so every guard with guard_key <=
               key must be examined, each fragment gated by its own
               range (and bloom). Within a level the newest hit wins:
               fragments come from different compactions and may hold
               different versions (the read penalty FLSM trades for its
               write savings). *)
            let best = ref None in
            let rec guards = function
              | g :: rest when String.compare g.guard_key key <= 0 ->
                List.iter
                  (fun f ->
                    match check f with
                    | Some e -> (
                      match !best with
                      | Some b when K.entry_newer b e -> ()
                      | _ -> best := Some e)
                    | None -> ())
                  g.fragments;
                guards rest
              | _ -> ()
            in
            guards s.levels.(i);
            match !best with
            | Some e ->
              if i < Array.length t.lvl_reads then Obs.Counter.incr t.lvl_reads.(i);
              Some e
            | None -> search_level (i + 1)
          end
        in
        search_level 0
      in
      let result =
        match Memtable.find_latest s.mem key with
        | Some e -> Some e
        | None -> (
          match Option.bind s.imm (fun imm -> Memtable.find_latest imm key) with
          | Some e -> Some e
          | None ->
            (* Both memtables missed: fragment reads across guards. *)
            Attr.timed Attr.Disk_read from_levels)
      in
      match result with
      | Some { K.value = Some v; _ } -> Some v
      | Some { K.value = None; _ } | None -> None)

let bounded it ~high =
  let stopped = ref false in
  fun () ->
    if !stopped then None
    else
      match it () with
      | Some (e : K.entry) when String.compare e.key high <= 0 -> Some e
      | _ ->
        stopped := true;
        None

let scan t ?limit ~low ~high () =
  Attr.with_op t.attr Attr.Scan t.tm_scan @@ fun () ->
  if String.compare low high > 0 then []
  else begin
    Mutex.lock t.writer;
    let s = pin_state t in
    let snap = Atomic.get t.seq in
    Mutex.unlock t.writer;
    let ticket = register_snapshot t snap in
    Fun.protect
      ~finally:(fun () ->
        unregister_snapshot t ticket;
        release_state t s)
      (fun () ->
        let frag_iters =
          Array.to_list s.levels
          |> List.concat_map (fun guards ->
                 List.concat_map
                   (fun g ->
                     List.filter_map
                       (fun f ->
                         if
                           String.compare f.smallest high <= 0
                           && String.compare low f.largest <= 0
                         then Some (bounded (Sstable.Reader.iter_from f.reader low) ~high)
                         else None)
                       g.fragments)
                   guards)
        in
        let iters =
          Memtable.iter_range s.mem ~low ~high
          :: (match s.imm with Some imm -> [ Memtable.iter_range imm ~low ~high ] | None -> [])
          @ frag_iters
        in
        let it = K.dedup (K.filter (fun (e : K.entry) -> e.version <= snap) (K.merge iters)) in
        let max_count = match limit with None -> max_int | Some l -> l in
        let rec go acc count =
          if count >= max_count then List.rev acc
          else
            match it () with
            | None -> List.rev acc
            | Some { K.value = None; _ } -> go acc count
            | Some { K.key; K.value = Some v; _ } -> go ((key, v) :: acc) (count + 1)
        in
        go [] 0)
  end

(* ------------------------------------------------------------------ *)
(* Open / close                                                        *)

let empty_levels n = Array.init n (fun _ -> [ { guard_key = ""; fragments = [] } ])

let span_names = [ "fragment_append"; "guard_merge"; "memtable_flush"; "recovery" ]

let setup_obs env =
  let obs = Obs.create () in
  List.iter (Obs.Trace.declare (Obs.trace obs)) span_names;
  let st = Env.stats env in
  List.iter
    (fun kind ->
      let kn = Io_stats.kind_name kind in
      Obs.probe obs
        (Printf.sprintf "io.%s.bytes_written" kn)
        (fun () -> (Io_stats.snapshot_kind st kind).Io_stats.bytes_written);
      Obs.probe obs
        (Printf.sprintf "io.%s.bytes_read" kn)
        (fun () -> (Io_stats.snapshot_kind st kind).Io_stats.bytes_read))
    Io_stats.all_kinds;
  Obs.probe obs "faults.injected" (fun () -> Env.faults_injected env);
  Obs.probe obs "io.corruptions" (fun () -> Env.corruptions_detected env);
  Obs.probe obs "log.resyncs" (fun () -> Env.log_resyncs env);
  obs

let open_internal config env =
  let obs = setup_obs env in
  match load_manifest env with
  | None ->
    let t =
      {
        env;
        cfg = config;
        state =
          Atomic.make
            {
              mem = Memtable.empty;
              imm = None;
              levels = empty_levels config.max_levels;
              pins = Atomic.make 1;
              state_retired = Atomic.make false;
            };
        writer = Mutex.create ();
        seq = Atomic.make 0;
        wal = Log_file.Writer.create env (wal_name 0);
        wal_gen = 0;
        next_fid = Atomic.make 0;
        snap_mutex = Mutex.create ();
        snapshots = Hashtbl.create 16;
        next_ticket = 0;
        logical_written = Atomic.make 0;
        put_count = Atomic.make 0;
        closed = Atomic.make false;
        obs;
        attr = Attr.create ~enabled:config.attr_enabled obs;
        tm_put = Obs.timer obs "db.put";
        tm_get = Obs.timer obs "db.get";
        tm_delete = Obs.timer obs "db.delete";
        tm_scan = Obs.timer obs "db.scan";
        ctr_stalls = Obs.counter obs "flsm.stalls";
        ctr_wal_appends = Obs.counter obs "wal.appends";
        ctr_io_errors = Obs.counter obs "io.errors";
        lvl_written = level_counters obs ~max_levels:config.max_levels "bytes_written";
        lvl_compacted = level_counters obs ~max_levels:config.max_levels "bytes_compacted";
        lvl_reads = level_counters obs ~max_levels:config.max_levels "read_hits";
      }
    in
    store_manifest t (empty_levels config.max_levels);
    t
  | Some (next_fid, wal_gen, seq, level_guards) ->
    Obs.Trace.with_span (Obs.trace obs) ~name:"recovery" (fun recovery_sp ->
    let levels =
      Array.map
        (fun guards ->
          List.map
            (fun (guard_key, fids) ->
              { guard_key; fragments = List.map (open_fragment env) fids })
            guards)
        level_guards
    in
    Array.iter
      (fun guards ->
        List.iter
          (fun g -> List.iter (fun f -> ignore (Atomic.fetch_and_add f.refs 1)) g.fragments)
          guards)
      levels;
    (* Sweep orphans: fragments a crashed build left outside the
       manifest, WALs of generations other than the live one, and
       leftover manifest tmp files. *)
    let live_fids =
      List.concat_map (fun guards -> List.concat_map snd guards) (Array.to_list level_guards)
    in
    List.iter
      (fun name ->
        let orphan_sst =
          match Scanf.sscanf_opt name "flsm_%d.sst" (fun fid -> fid) with
          | Some fid -> not (List.mem fid live_fids)
          | None -> false
        and stale_wal =
          match Scanf.sscanf_opt name "flsm_wal_%d.log" (fun gen -> gen) with
          | Some gen -> gen <> wal_gen
          | None -> false
        in
        if
          (orphan_sst || stale_wal || name = manifest_name ^ ".tmp")
          && not (Env.is_quarantined name)
        then
          try Env.delete env name with _ -> ())
      (Env.list_files env);
    let mem = ref Memtable.empty in
    let max_seq = ref seq in
    let replayed = ref 0 in
    List.iter
      (fun (_off, e) ->
        mem := Memtable.add !mem e;
        incr replayed;
        if e.K.version > !max_seq then max_seq := e.K.version)
      (Log_file.Reader.entries env (wal_name wal_gen));
    Obs.Trace.add_attr recovery_sp "entries" !replayed;
    {
      env;
      cfg = config;
      state =
        Atomic.make
          {
            mem = !mem;
            imm = None;
            levels;
            pins = Atomic.make 1;
            state_retired = Atomic.make false;
          };
      writer = Mutex.create ();
      seq = Atomic.make !max_seq;
      wal = Log_file.Writer.open_append env (wal_name wal_gen);
      wal_gen;
      next_fid = Atomic.make next_fid;
      snap_mutex = Mutex.create ();
      snapshots = Hashtbl.create 16;
      next_ticket = 0;
      logical_written = Atomic.make 0;
      put_count = Atomic.make 0;
      closed = Atomic.make false;
      obs;
      attr = Attr.create ~enabled:config.attr_enabled obs;
      tm_put = Obs.timer obs "db.put";
      tm_get = Obs.timer obs "db.get";
      tm_delete = Obs.timer obs "db.delete";
      tm_scan = Obs.timer obs "db.scan";
      ctr_stalls = Obs.counter obs "flsm.stalls";
      ctr_wal_appends = Obs.counter obs "wal.appends";
      ctr_io_errors = Obs.counter obs "io.errors";
      lvl_written = level_counters obs ~max_levels:(Array.length levels) "bytes_written";
      lvl_compacted = level_counters obs ~max_levels:(Array.length levels) "bytes_compacted";
      lvl_reads = level_counters obs ~max_levels:(Array.length levels) "read_hits";
    })

(* Probes of the current shape: total fragment bytes and fragment count
   per level (comparable to the LSM baseline's level<i>.bytes/files). *)
let register_block_cache_probes t =
  let with_bc f =
    match Env.block_cache t.env with
    | Some bc -> f bc
    | None -> 0
  in
  let module B = Evendb_cache.Block_cache in
  Obs.probe t.obs "blockcache.hits" (fun () -> with_bc B.hits);
  Obs.probe t.obs "blockcache.misses" (fun () -> with_bc B.misses);
  Obs.probe t.obs "blockcache.fills" (fun () -> with_bc B.fills);
  Obs.probe t.obs "blockcache.evictions" (fun () -> with_bc B.evictions);
  Obs.probe t.obs "blockcache.bytes" (fun () -> with_bc B.resident_bytes)

let register_level_probes t =
  Array.iteri
    (fun i _ ->
      Obs.probe t.obs
        (Printf.sprintf "level%d.bytes" i)
        (fun () ->
          let s = Atomic.get t.state in
          if i >= Array.length s.levels then 0
          else
            List.fold_left
              (fun acc g -> List.fold_left (fun acc f -> acc + f.bytes) acc g.fragments)
              0 s.levels.(i));
      Obs.probe t.obs
        (Printf.sprintf "level%d.files" i)
        (fun () ->
          let s = Atomic.get t.state in
          if i >= Array.length s.levels then 0
          else List.fold_left (fun acc g -> acc + List.length g.fragments) 0 s.levels.(i)))
    (Atomic.get t.state).levels

let open_ ?(config = Config.default) env =
  (* Level/fragment reads flow through [Sstable.Reader], which consults
     the env's shared block cache; installing here unifies the budget
     with any other engine opened over the same env. *)
  Env.install_block_cache env ~capacity_bytes:config.Config.block_cache_bytes;
  let t = open_internal config env in
  register_level_probes t;
  register_block_cache_probes t;
  t

let compact_now t =
  Mutex.lock t.writer;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.writer)
    (fun () ->
      flush_memtable t;
      compact t)

let close t =
  if Atomic.compare_and_set t.closed false true then begin
    Log_file.Writer.fsync t.wal;
    Env.fsync_all t.env;
    Log_file.Writer.close t.wal
  end

let fragment_counts t =
  Array.to_list
    (Array.map
       (fun guards -> List.fold_left (fun acc g -> acc + List.length g.fragments) 0 guards)
       (Atomic.get t.state).levels)

let guard_counts t =
  Array.to_list (Array.map List.length (Atomic.get t.state).levels)

let debug_locate t key =
  let s = Atomic.get t.state in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i guards ->
      List.iter
        (fun g ->
          List.iter
            (fun f ->
              match Sstable.Reader.get f.reader key with
              | Some e ->
                Buffer.add_string buf
                  (Printf.sprintf
                     "L%d guard=%S frag=%d range=[%S,%S] version=%d bloom=%b in_range=%b; " i
                     g.guard_key f.fid f.smallest f.largest e.K.version
                     (Sstable.Reader.may_contain f.reader key)
                     (String.compare f.smallest key <= 0 && String.compare key f.largest <= 0))
              | None -> ())
            g.fragments)
        guards)
    s.levels;
  (match guard_for s.levels.(1) key with
  | Some g -> Buffer.add_string buf (Printf.sprintf "L1 guard_for=%S; " g.guard_key)
  | None -> Buffer.add_string buf "L1 guard_for=NONE; ");
  (match guard_for s.levels.(2) key with
  | Some g -> Buffer.add_string buf (Printf.sprintf "L2 guard_for=%S" g.guard_key)
  | None -> Buffer.add_string buf "L2 guard_for=NONE");
  Buffer.contents buf
