(** Replication change-stream, follower mode and failover.

    The primary taps {!Evendb_core.Db.set_commit_hook}: each acked
    put/delete — under Sync persistence, after the group-commit fsync
    covering it — enters the {!Source} stream with a dense LSN, so the
    stream never carries unacked data. A {!Follower} applies records
    into a standby Sync store and persists a monotonic applied-LSN
    watermark after each durable apply; {!Ship} pumps the stream across
    a fault-injectable {!Link} with a bounded window and retry/backoff.
    {!promote} fences the old primary and tops the replica up from its
    recovered durable state, so failover loses nothing acked.

    Invariant: acked ⟺ replicated-or-recoverable. Every write acked by
    the primary is either already applied on the replica, or durable in
    the primary's funk logs and still pending in the stream at or after
    the replica's watermark — never in neither place. *)

open Evendb_storage
open Evendb_core

type record = {
  lsn : int;  (** Dense, 1-based stream position. *)
  key : string;
  value : string option;  (** [None] = delete. *)
  version : int;
  counter : int;
}

val follower_marker : string
(** ["FOLLOWER"] — marks a store as a standby; the CLI refuses direct
    writes to it (use [evendb promote]). *)

val watermark_file : string
(** ["REPL_LSN"] — the CRC-trailered applied-LSN watermark. *)

exception Stream_fault
(** An injected (or, in {!Ship.deliver}, a retries-exhausted) stream
    transport failure. *)

module Source : sig
  type t

  val create : unit -> t

  val attach : t -> Db.t -> unit
  (** Install the commit-hook tap on the primary. *)

  val detach : Db.t -> unit
  val publish : t -> Evendb_util.Kv_iter.entry -> unit
  (** The tap itself: assigns the next LSN, dropping entries already
      superseded by a newer emitted record for the same key. *)

  val head_lsn : t -> int
  val from : t -> after:int -> max:int -> record list
  (** Records with [after < lsn <= after + max], stream order. *)
end

module Follower : sig
  type t

  val open_ : ?config:Config.t -> Env.t -> t
  (** Open (or create, or recover) the standby store; persistence is
      forced to [Sync] so an applied record is durable before the
      watermark covers it. Writes the {!follower_marker}. *)

  val db : t -> Db.t
  val applied_lsn : t -> int

  val apply : t -> record -> unit
  (** Apply one record; no-op at or below the watermark (idempotent
      redelivery). The watermark advances only after the durable
      apply. *)

  val close : t -> unit
  val load_watermark : Env.t -> int
  (** 0 when the file is absent; raises [Env.Corruption] if damaged. *)
end

module Link : sig
  type t

  val create : ?fault_seed:int -> ?fault_rate_ppm:int -> unit -> t
  (** A deterministic fault plan: each send fails with probability
      [fault_rate_ppm] / 1e6 drawn from a generator seeded with
      [fault_seed] (no faults without a seed). *)

  val send : t -> (unit -> 'a) -> 'a
  (** Raises {!Stream_fault} on an injected failure (before delivery —
      the receiver observes nothing). *)

  val sends : t -> int
  val failures : t -> int
end

module Ship : sig
  type t

  val create : ?config:Config.t -> Source.t -> Follower.t -> Link.t -> t
  (** Window and backoff come from [config]'s [repl_window] /
      [repl_retry_backoff_ns]; counters ([repl.records_shipped],
      [repl.retries]) and gauges ([repl.lag_records]) register on the
      follower store's metrics registry. *)

  val pump : t -> unit
  (** Drain the stream until the follower catches up with the source
      head, at most [repl_window] records per batch, retrying each
      failed send with backoff (raises {!Stream_fault} only after 1000
      consecutive failures on one record). *)

  val lag : t -> int
end

val promote : ?primary:Db.t -> Follower.t -> Db.t
(** Promote the replica: when the old primary's store is reachable,
    fence it (durable [FENCED] marker — all subsequent writes there
    raise [Db.Fenced]) and apply a full differential of its recovered
    durable state onto the replica, so the promoted store equals the
    deposed primary's acked state. Removes the follower marker and
    watermark, checkpoints, bumps [repl.failovers], and returns the
    now-writable store. *)
