open Evendb_storage
open Evendb_core
module Obs = Evendb_obs.Obs
module Attr = Evendb_obs.Attr
module K = Evendb_util.Kv_iter

(* Replication change-stream (ROADMAP item 5).

   The primary's [Db.set_commit_hook] tap fires once per put/delete
   after the write is acked — under Sync persistence that is after the
   group-commit fsync covering it — so the stream, by construction,
   never contains unacked data. The {!Source} assigns each record a
   dense LSN; a per-key supersede filter drops records already overtaken
   at emission, so the stream converges to the primary's own per-key
   resolution. The {!Follower} applies records into a standby Sync
   store and persists a monotonic applied-LSN watermark *after* the
   durable apply, making redelivery idempotent (applies at or below the
   watermark are skipped; re-applying a lost-watermark record rewrites
   the same logical state). {!Ship} moves records across a fault-
   injectable {!Link} with a bounded in-flight window and bounded
   retry + backoff.

   Invariant (see README): a write acked by the primary is either
   already applied on the replica or still recoverable — present in the
   primary's durable funk logs *and* retained in the source stream from
   the replica's watermark onward. Failover ({!promote}) fences the old
   primary and tops the replica up from the fenced store's recovered
   state, so promotion loses nothing acked. *)

type record = {
  lsn : int; (* dense, 1-based *)
  key : string;
  value : string option; (* [None] = delete *)
  version : int;
  counter : int;
}

let follower_marker = "FOLLOWER"
let watermark_file = "REPL_LSN"

(* ------------------------------------------------------------------ *)
(* Source: the primary-side stream buffer                              *)

module Source = struct
  type t = {
    mutex : Mutex.t;
    mutable buf : record array;
    mutable len : int;
    latest : (string, int * int) Hashtbl.t; (* key -> newest emitted (version, counter) *)
  }

  let dummy = { lsn = 0; key = ""; value = None; version = 0; counter = 0 }

  let create () =
    { mutex = Mutex.create (); buf = Array.make 64 dummy; len = 0; latest = Hashtbl.create 256 }

  let with_lock t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let publish t (e : K.entry) =
    with_lock t (fun () ->
        let superseded =
          match Hashtbl.find_opt t.latest e.key with
          | Some (v, c) -> v > e.version || (v = e.version && c >= e.counter)
          | None -> false
        in
        if not superseded then begin
          Hashtbl.replace t.latest e.key (e.version, e.counter);
          if t.len = Array.length t.buf then begin
            let bigger = Array.make (2 * Array.length t.buf) dummy in
            Array.blit t.buf 0 bigger 0 t.len;
            t.buf <- bigger
          end;
          t.buf.(t.len) <-
            { lsn = t.len + 1; key = e.key; value = e.value; version = e.version; counter = e.counter };
          t.len <- t.len + 1
        end)

  let attach t db = Db.set_commit_hook db (Some (publish t))
  let detach db = Db.set_commit_hook db None

  let head_lsn t = with_lock t (fun () -> t.len)

  (* Records with [after < lsn <= after + max], stream order. *)
  let from t ~after ~max =
    with_lock t (fun () ->
        let hi = min t.len (after + max) in
        let rec collect acc i = if i < after then acc else collect (t.buf.(i) :: acc) (i - 1) in
        if hi <= after then [] else collect [] (hi - 1))
end

(* ------------------------------------------------------------------ *)
(* Follower: a standby store applying the stream                       *)

module Follower = struct
  type t = {
    db : Db.t;
    env : Env.t;
    mutable applied : int;
    applied_gauge : Obs.Gauge.t;
  }

  (* Watermark file: varint LSN + CRC32C LE trailer, tmp+fsync+rename.
     Persisted only after the record it covers is durably applied, so a
     crash can only lose watermark progress — never claim it. *)
  let u32_le_string (crc : int32) =
    String.init 4 (fun i ->
        Char.chr (Int32.to_int (Int32.shift_right_logical crc (8 * i)) land 0xff))

  let u32_le_of_string s pos =
    let b i = Int32.of_int (Char.code s.[pos + i]) in
    Int32.logor (b 0)
      (Int32.logor
         (Int32.shift_left (b 1) 8)
         (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

  let store_watermark env lsn =
    let buf = Buffer.create 16 in
    Evendb_util.Varint.write buf lsn;
    let payload = Buffer.contents buf in
    let tmp = watermark_file ^ ".tmp" in
    let f = Env.create env tmp in
    (try
       Env.append f payload;
       Env.append f (u32_le_string (Evendb_util.Crc32c.string payload));
       Env.fsync f;
       Env.close_file f;
       Env.rename env ~old_name:tmp ~new_name:watermark_file
     with exn ->
       Env.close_file f;
       (try Env.delete env tmp with _ -> ());
       raise exn)

  let load_watermark env =
    if not (Env.exists env watermark_file) then 0
    else begin
      let data = Env.read_all env watermark_file in
      let corrupt detail =
        Env.note_corruption env;
        Io_error.raise_corruption ~file:watermark_file ~detail
      in
      if String.length data < 5 then corrupt "truncated";
      let payload = String.sub data 0 (String.length data - 4) in
      if Evendb_util.Crc32c.string payload <> u32_le_of_string data (String.length data - 4)
      then corrupt "bad checksum";
      match Evendb_util.Varint.read payload 0 with
      | lsn, _ -> lsn
      | exception Invalid_argument _ -> corrupt "malformed payload"
    end

  let open_ ?(config = Config.default) env =
    (* The standby must ack nothing it could lose: force Sync. *)
    let config = { config with Config.persistence = Config.Sync } in
    if not (Env.exists env follower_marker) then begin
      let f = Env.create env follower_marker in
      Env.append f "follower";
      Env.fsync f;
      Env.close_file f
    end;
    let db = Db.open_ ~config env in
    let applied = load_watermark env in
    let applied_gauge = Obs.gauge (Db.obs db) "repl.applied_lsn" in
    Obs.Gauge.set applied_gauge applied;
    (* Eager-register so the family appears (zeroed, with HELP/TYPE) in
       every follower exposition, not only after the first promote. *)
    ignore (Obs.counter (Db.obs db) "repl.failovers");
    { db; env; applied; applied_gauge }

  let db t = t.db
  let applied_lsn t = t.applied

  let apply t r =
    if r.lsn > t.applied then begin
      (match r.value with
      | Some v -> Db.put t.db r.key v
      | None -> Db.delete t.db r.key);
      (* The put is durable (Sync) before the watermark moves. *)
      store_watermark t.env r.lsn;
      t.applied <- r.lsn;
      Obs.Gauge.set t.applied_gauge r.lsn
    end

  let close t = Db.close t.db
end

(* ------------------------------------------------------------------ *)
(* Link: an in-process transport with deterministic fault injection    *)

exception Stream_fault

module Link = struct
  type t = {
    rng : Random.State.t option;
    fail_ppm : int;
    mutable sends : int;
    mutable failures : int;
  }

  let create ?fault_seed ?(fault_rate_ppm = 0) () =
    {
      rng = Option.map (fun s -> Random.State.make [| s |]) fault_seed;
      fail_ppm = fault_rate_ppm;
      sends = 0;
      failures = 0;
    }

  let send t f =
    t.sends <- t.sends + 1;
    (match t.rng with
    | Some rng when t.fail_ppm > 0 && Random.State.int rng 1_000_000 < t.fail_ppm ->
      t.failures <- t.failures + 1;
      raise Stream_fault
    | _ -> ());
    f ()

  let sends t = t.sends
  let failures t = t.failures
end

(* ------------------------------------------------------------------ *)
(* Ship: pump records source -> follower                               *)

module Ship = struct
  type t = {
    source : Source.t;
    follower : Follower.t;
    link : Link.t;
    window : int;
    backoff_ns : int;
    max_attempts : int;
    shipped : Obs.Counter.t;
    retries : Obs.Counter.t;
    lag : Obs.Gauge.t;
  }

  let create ?(config = Config.default) source follower link =
    let obs = Db.obs (Follower.db follower) in
    {
      source;
      follower;
      link;
      window = config.Config.repl_window;
      backoff_ns = config.Config.repl_retry_backoff_ns;
      max_attempts = 1000;
      shipped = Obs.counter obs "repl.records_shipped";
      retries = Obs.counter obs "repl.retries";
      lag = Obs.gauge obs "repl.lag_records";
    }

  let lag t = Source.head_lsn t.source - Follower.applied_lsn t.follower

  let deliver t r =
    let rec attempt n =
      match Link.send t.link (fun () -> Follower.apply t.follower r) with
      | () -> Obs.Counter.incr t.shipped
      | exception Stream_fault ->
        if n >= t.max_attempts then raise Stream_fault;
        Obs.Counter.incr t.retries;
        if t.backoff_ns > 0 then Unix.sleepf (float_of_int t.backoff_ns /. 1e9);
        attempt (n + 1)
    in
    attempt 1

  (* Drain the stream until the follower has applied everything the
     source has emitted; at most [repl_window] records are handed out
     per batch between watermark advances. *)
  let pump t =
    let rec drain () =
      let head = Source.head_lsn t.source in
      let applied = Follower.applied_lsn t.follower in
      if applied < head then begin
        let batch = Source.from t.source ~after:applied ~max:t.window in
        List.iter (fun r -> Attr.timed Attr.Repl_ship (fun () -> deliver t r)) batch;
        drain ()
      end
    in
    drain ();
    Obs.Gauge.set t.lag (lag t)
end

(* ------------------------------------------------------------------ *)
(* Failover                                                            *)

(* Inclusive upper bound for full-store differential scans; keys are
   assumed shorter than this (the harness and CLI key spaces are). *)
let scan_high = String.make 128 '\xff'

let promote ?primary follower =
  (match primary with
  | Some pdb ->
    (* Fence first: no write can be acked by the old primary after the
       state we are about to copy. *)
    if not (Db.fenced pdb) then Db.fence pdb;
    (* The replica's state is a subset of the primary's acked state (it
       only ever applied acked records), so overwriting per key with the
       primary's recovered durable state yields exactly that state —
       every acked-and-recovered write present, nothing invented. *)
    let src = Db.scan pdb ~low:"" ~high:scan_high () in
    let dst = Db.scan (Follower.db follower) ~low:"" ~high:scan_high () in
    let src_tbl = Hashtbl.create (List.length src + 1) in
    List.iter (fun (k, v) -> Hashtbl.replace src_tbl k v) src;
    List.iter
      (fun (k, _) ->
        if not (Hashtbl.mem src_tbl k) then Db.delete (Follower.db follower) k)
      dst;
    let dst_tbl = Hashtbl.create (List.length dst + 1) in
    List.iter (fun (k, v) -> Hashtbl.replace dst_tbl k v) dst;
    List.iter
      (fun (k, v) ->
        if Hashtbl.find_opt dst_tbl k <> Some v then Db.put (Follower.db follower) k v)
      src
  | None -> ());
  (* Leave follower mode: new writes are accepted directly, and a stale
     watermark must not suppress applies from some future stream. *)
  Env.delete follower.Follower.env follower_marker;
  Env.delete follower.Follower.env watermark_file;
  Db.checkpoint (Follower.db follower);
  Obs.Counter.incr (Obs.counter (Db.obs (Follower.db follower)) "repl.failovers");
  Follower.db follower
