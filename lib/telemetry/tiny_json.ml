type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let lit l v =
    let m = String.length l in
    if !pos + m <= n && String.sub s !pos m = l then begin
      pos := !pos + m;
      v
    end
    else fail ("expected " ^ l)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
        incr pos;
        Buffer.contents b
      | '\\' ->
        incr pos;
        if !pos >= n then fail "bad escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "bad \\u escape";
          (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
          | Some c when c < 128 -> Buffer.add_char b (Char.chr c)
          | Some _ -> Buffer.add_char b '?'
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | _ -> fail "bad escape");
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
    while !pos < n && is_num s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_opt s = try Some (parse s) with Bad _ -> None

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function Num f -> Some (int_of_float f) | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_obj = function Obj o -> Some o | _ -> None
