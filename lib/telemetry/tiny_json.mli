(** A minimal recursive-descent JSON reader — just enough for the
    telemetry clients ([evendb top --url], journal replay, tests) to
    consume the exporters' output without adding a dependency. Numbers
    are floats; [\u] escapes outside ASCII decode to ['?']. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

val parse : string -> t
(** Raises {!Bad} on malformed input (with the failing offset). *)

val parse_opt : string -> t option

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects too. *)

val to_int : t -> int option
val to_float : t -> float option
val to_string : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
