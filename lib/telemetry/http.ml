type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body = { status; content_type = "text/plain; charset=utf-8"; body }
let json ?(status = 200) body = { status; content_type = "application/json"; body }

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  host : string;
  stop_flag : bool Atomic.t;
  domain : unit Domain.t;
}

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
      match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
      | Some c ->
        Buffer.add_char b (Char.chr c);
        i := !i + 2
      | None -> Buffer.add_char b '%')
    | '+' -> Buffer.add_char b ' '
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query qs =
  String.split_on_char '&' qs
  |> List.filter_map (fun pair ->
         if pair = "" then None
         else
           match String.index_opt pair '=' with
           | Some i ->
             Some
               ( percent_decode (String.sub pair 0 i),
                 percent_decode (String.sub pair (i + 1) (String.length pair - i - 1)) )
           | None -> Some (percent_decode pair, ""))

(* Read until the end of the request head (blank line); we only need
   the request line. *)
let read_request_line fd =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 256 in
  let rec go () =
    if Buffer.length acc > 65536 then None
    else
      let n = try Unix.read fd buf 0 (Bytes.length buf) with _ -> 0 in
      if n = 0 then
        if Buffer.length acc > 0 then Some (Buffer.contents acc) else None
      else begin
        Buffer.add_subbytes acc buf 0 n;
        let s = Buffer.contents acc in
        (* Head complete once we have the first CRLF — the request line
           is all we route on. *)
        if String.contains s '\n' then Some s else go ()
      end
  in
  match go () with
  | None -> None
  | Some s -> (
    match String.index_opt s '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      let line =
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line
    | None -> Some s)

let write_all fd s =
  let n = String.length s in
  let pos = ref 0 in
  (try
     while !pos < n do
       let w = Unix.write_substring fd s !pos (n - !pos) in
       if w <= 0 then raise Exit;
       pos := !pos + w
     done
   with _ -> ())

let respond fd (r : response) =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      r.status (status_text r.status) r.content_type (String.length r.body)
  in
  write_all fd (head ^ r.body)

let handle_connection handler fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
  let resp =
    match read_request_line fd with
    | None -> text ~status:400 "bad request\n"
    | Some line -> (
      match String.split_on_char ' ' line with
      | meth :: target :: _ when String.uppercase_ascii meth = "GET" ->
        let path, query =
          match String.index_opt target '?' with
          | Some i ->
            ( String.sub target 0 i,
              parse_query (String.sub target (i + 1) (String.length target - i - 1))
            )
          | None -> (target, [])
        in
        (try
           match handler ~path ~query with
           | Some r -> r
           | None -> text ~status:404 "not found\n"
         with _ -> text ~status:500 "internal error\n")
      | _ -> text ~status:400 "bad request\n")
  in
  respond fd resp

let start ?(host = "127.0.0.1") ~port handler =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock addr;
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stop_flag = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        let rec loop () =
          if not (Atomic.get stop_flag) then begin
            (match Unix.accept sock with
            | fd, _ ->
              if Atomic.get stop_flag then ( try Unix.close fd with _ -> ())
              else begin
                (try handle_connection handler fd with _ -> ());
                (try Unix.close fd with _ -> ())
              end
            | exception _ -> ());
            loop ()
          end
        in
        loop ())
  in
  { sock; bound_port; host; stop_flag; domain }

let port t = t.bound_port

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    (* Unblock the accept(2) the server domain is parked in. *)
    (try
       let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close s with _ -> ())
         (fun () ->
           Unix.connect s
             (Unix.ADDR_INET (Unix.inet_addr_of_string t.host, t.bound_port)))
     with _ -> ());
    Domain.join t.domain;
    try Unix.close t.sock with _ -> ()
  end

let get ?(host = "127.0.0.1") ~port path =
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close s with _ -> ())
    (fun () ->
      Unix.setsockopt_float s Unix.SO_RCVTIMEO 10.0;
      Unix.connect s (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      write_all s
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s:%d\r\nConnection: close\r\n\r\n"
           path host port);
      let buf = Bytes.create 65536 in
      let acc = Buffer.create 4096 in
      let rec drain () =
        let n = try Unix.read s buf 0 (Bytes.length buf) with _ -> 0 in
        if n > 0 then begin
          Buffer.add_subbytes acc buf 0 n;
          drain ()
        end
      in
      drain ();
      let raw = Buffer.contents acc in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> ( match int_of_string_opt code with Some c -> c | None -> 0)
        | _ -> 0
      in
      let body =
        (* Split the head off at the first blank line. *)
        let rec find i =
          if i + 3 >= String.length raw then None
          else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
          else find (i + 1)
        in
        match find 0 with
        | Some i -> String.sub raw i (String.length raw - i)
        | None -> ""
      in
      (status, body))
