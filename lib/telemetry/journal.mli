(** On-disk metrics journal: an append-only, CRC-framed record stream
    under the environment's ["telemetry/"] namespace.

    Layout: numbered segments ["telemetry/metrics_<n>.mj"], each
    starting with a 6-byte magic followed by frames of

    {v  varint(payload_len) · payload · CRC-32C(payload) LE32  v}

    Every append is fsynced (appends happen at sampler cadence — ~1/s —
    so durability is cheap), which bounds crash loss to the one frame
    in flight. A writer never appends to a pre-existing segment: each
    {!create} opens a fresh segment above the highest on disk, so a
    torn tail from a crashed incarnation is confined to that
    incarnation's last segment and {!replay} simply stops there.

    Rotation: when a frame would push the current segment past
    [segment_bytes] a new segment is started and the oldest segments
    beyond [max_segments] are deleted — the journal is bounded
    observational history, never a durability dependency. *)

open Evendb_storage

val segment_name : int -> string
(** ["telemetry/metrics_<n>.mj"]. *)

val parse_segment_name : string -> int option

val list_segments : Env.t -> (int * string) list
(** Journal segments present, ascending by index. *)

(** {2 Writing} *)

type t

val create : Env.t -> segment_bytes:int -> max_segments:int -> t
(** Open a fresh segment (above any already on disk) and prune old
    ones. [max_segments >= 1]; [segment_bytes] is a rotation threshold,
    not a hard cap (one oversized record still lands whole). *)

val append : t -> string -> unit
(** Frame, append and fsync one record; rotates first when the segment
    is full. Raises {!Env.Io_error} on storage failure — callers that
    must never stall an op path absorb it. *)

val close : t -> unit
(** Close the current segment file. Idempotent. *)

(** {2 Reading} *)

val records : Env.t -> string -> string list
(** Valid record payloads of one segment, in append order, stopping at
    the first undecodable byte (torn tail / corruption). Missing file
    or bad header yields []. *)

val replay : Env.t -> string list
(** All valid records across every segment, oldest segment first. *)

(** {2 Integrity (scrub)} *)

type check = {
  ck_records : int;  (** frames that decoded cleanly *)
  ck_valid_bytes : int;  (** header + clean frames *)
  ck_total_bytes : int;
  ck_error : string option;
      (** [None] when every byte decodes; otherwise what stopped the
          parse (bad magic, truncated frame, bad record checksum) *)
}

val check : Env.t -> string -> check
