let clear_screen = "\027[H\027[2J"

let g name s = List.assoc_opt name s.Sampler.s_gauges
let d name s = match List.assoc_opt name s.Sampler.s_deltas with Some v -> v | None -> 0

let fmt_ns ns =
  if ns >= 1_000_000_000 then Printf.sprintf "%.2fs" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else Printf.sprintf "%dns" ns

let fmt_bytes n =
  if n >= 1 lsl 30 then Printf.sprintf "%.1fGiB" (float_of_int n /. float_of_int (1 lsl 30))
  else if n >= 1 lsl 20 then Printf.sprintf "%.1fMiB" (float_of_int n /. float_of_int (1 lsl 20))
  else if n >= 1 lsl 10 then Printf.sprintf "%.1fKiB" (float_of_int n /. float_of_int (1 lsl 10))
  else Printf.sprintf "%dB" n

let fmt_count n =
  if n >= 1_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 10_000 then Printf.sprintf "%.1fk" (float_of_int n /. 1e3)
  else string_of_int n

(* The hit/miss probes export lifetime totals (they mirror cache-layer
   counters), so the windowed rate comes from the delta between the two
   newest samples' gauges. *)
let hit_rate cur prev ~hits ~misses =
  match (prev, g hits cur, g misses cur) with
  | Some p, Some h1, Some m1 -> (
    match (g hits p, g misses p) with
    | Some h0, Some m0 ->
      let dh = h1 - h0 and dm = m1 - m0 in
      if dh + dm > 0 then Some (float_of_int dh /. float_of_int (dh + dm), dh + dm)
      else None
    | _ -> None)
  | _ -> None

let attr_prefix = "attr.frac_ppm."
let hot_prefix = "hot."

let strip_prefix p s = String.sub s (String.length p) (String.length s - String.length p)

let starts_with p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let render samples =
  match List.rev samples with
  | [] -> "evendb top — no samples yet (waiting for the first tick)\n"
  | cur :: rest ->
    let prev = match rest with p :: _ -> Some p | [] -> None in
    let b = Buffer.create 2048 in
    let window_s = float_of_int cur.Sampler.s_dur_ns /. 1e9 in
    let uptime =
      match g "db.uptime_ns" cur with
      | Some ns -> Printf.sprintf "  uptime %s" (fmt_ns ns)
      | None -> ""
    in
    Printf.bprintf b "evendb top — sample #%d  window %.1fs%s\n\n" cur.Sampler.s_seq
      window_s uptime;
    (* Ops: one line per op-kind timer active in the window. *)
    let op_timers =
      List.filter
        (fun (name, _) ->
          List.mem name [ "db.put"; "db.get"; "db.delete"; "db.scan" ]
          || List.exists
               (fun k -> starts_with "shard" name && Filename.check_suffix name k)
               [ "db.put"; "db.get"; "db.delete"; "db.scan" ])
        cur.Sampler.s_timers
    in
    Buffer.add_string b "  OPS                ops/s     p50       p95       p99       max\n";
    if op_timers = [] then Buffer.add_string b "  (no ops in window)\n"
    else
      List.iter
        (fun (name, w) ->
          let rate =
            if window_s > 0. then float_of_int w.Sampler.w_count /. window_s else 0.
          in
          Printf.bprintf b "  %-18s %-9s %-9s %-9s %-9s %s\n" name
            (Printf.sprintf "%.0f" rate)
            (fmt_ns w.Sampler.w_p50_ns) (fmt_ns w.Sampler.w_p95_ns)
            (fmt_ns w.Sampler.w_p99_ns) (fmt_ns w.Sampler.w_max_ns))
        op_timers;
    (* Stall causes: attr.frac_ppm.* gauges, descending, top 5. *)
    let stalls =
      cur.Sampler.s_gauges
      |> List.filter_map (fun (name, v) ->
             if starts_with attr_prefix name && v > 0 then
               Some (strip_prefix attr_prefix name, v)
             else None)
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.filteri (fun i _ -> i < 5)
    in
    if stalls <> [] then begin
      Buffer.add_string b "\n  STALL CAUSES (share of recent op time)\n";
      List.iter
        (fun (cause, ppm) ->
          Printf.bprintf b "  %-22s %5.1f%%\n" cause (float_of_int ppm /. 10_000.))
        stalls
    end;
    (* Caches. *)
    let cache_lines =
      List.filter_map
        (fun (label, hits, misses) ->
          match hit_rate cur prev ~hits ~misses with
          | Some (r, lookups) ->
            Some
              (Printf.sprintf "  %-12s %5.1f%% hit  (%s lookups)\n" label (100. *. r)
                 (fmt_count lookups))
          | None -> None)
        [
          ("row cache", "cache.row.hits", "cache.row.misses");
          ("munk LFU", "cache.lfu.hits", "cache.lfu.misses");
          ("block cache", "blockcache.hits", "blockcache.misses");
        ]
    in
    if cache_lines <> [] then begin
      Buffer.add_string b "\n  CACHES (this window)\n";
      List.iter (Buffer.add_string b) cache_lines
    end;
    (* Hot prefixes: hot.<prefix> gauges are window-independent sketch
       counts; show the top ones. *)
    let hot =
      cur.Sampler.s_gauges
      |> List.filter_map (fun (name, v) ->
             if starts_with hot_prefix name then Some (strip_prefix hot_prefix name, v)
             else None)
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.filteri (fun i _ -> i < 8)
    in
    if hot <> [] then begin
      Buffer.add_string b "\n  HOT PREFIXES (lifetime sketch)\n";
      List.iter
        (fun (p, v) -> Printf.bprintf b "  %-18s %s ops\n" p (fmt_count v))
        hot
    end;
    (* Replication, when the repl gauges exist. *)
    (match (g "repl.lag_records" cur, g "repl.applied_lsn" cur) with
    | None, None -> ()
    | lag, applied ->
      Buffer.add_string b "\n  REPLICATION\n";
      (match lag with
      | Some l -> Printf.bprintf b "  lag %d records  (+%d shipped this window)\n" l
          (d "repl.records_shipped" cur)
      | None -> ());
      (match applied with
      | Some a -> Printf.bprintf b "  follower applied_lsn %d\n" a
      | None -> ()));
    (* Store shape. *)
    (match (g "db.chunks" cur, g "db.munks" cur, g "db.log_bytes" cur) with
    | Some chunks, Some munks, Some log_bytes ->
      Printf.bprintf b "\n  STORE  %d chunks  %d munks  logs %s" chunks munks
        (fmt_bytes log_bytes);
      (match g "blockcache.bytes" cur with
      | Some bytes -> Printf.bprintf b "  blockcache %s" (fmt_bytes bytes)
      | None -> ());
      Buffer.add_char b '\n'
    | _ -> ());
    Buffer.contents b
