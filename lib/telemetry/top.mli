(** Renderer behind [evendb top]: turns the tail of a sampler series
    into one fixed-layout text frame — ops/s and windowed p50/p99 per
    op kind, top stall causes, cache hit rates, hottest key prefixes,
    replication lag and store shape. Pure string building; the CLI owns
    the loop, the screen clearing and where the samples come from
    (in-process sampler or [/series] over HTTP). *)

val render : Sampler.sample list -> string
(** Render from the newest sample (rates, windowed percentiles, stall
    shares) plus the one before it (cache hit rates need gauge deltas —
    the cache probes export lifetime totals). Oldest-first input, as
    {!Sampler.samples} returns. An empty list renders a "no samples
    yet" frame. *)

val clear_screen : string
(** ANSI home+clear prefix for live refresh. *)
