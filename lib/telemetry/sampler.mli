(** Windowed time-series sampler over one or more {!Evendb_obs.Obs.t}
    registries.

    Each {!tick} cuts one {!sample} covering the window since the
    previous tick: counter {e deltas} (zero-change series omitted),
    gauge/probe absolute values, and per-timer {e windowed} statistics
    — count, mean, p50/p95/p99 and max computed from the timer's
    histogram-bucket deltas, i.e. the latency distribution of just the
    ops that completed inside the window, not the process lifetime.
    Samples land in a bounded in-memory ring (served by [/series]) and,
    optionally, in an on-disk {!Journal}.

    {!start} runs ticks on a background domain at a fixed interval;
    {!tick} may also be called directly (tests, [evendb top]'s
    in-process mode). Both serialize through one mutex, so a manual
    tick never races the background domain. *)

type win = {
  w_count : int;  (** ops completed in the window *)
  w_mean_ns : float;
  w_p50_ns : int;
  w_p95_ns : int;
  w_p99_ns : int;
  w_max_ns : int;
      (** upper bound of the highest bucket hit in the window — a
          bucket-resolution estimate (≤ 2{^ -6} relative error), unlike
          the lifetime max which is exact *)
}

type sample = {
  s_seq : int;
  s_wall_ns : int;  (** wall clock at the tick, for export *)
  s_dur_ns : int;  (** window length: time since the previous tick *)
  s_deltas : (string * int) list;  (** counter increments, sorted *)
  s_gauges : (string * int) list;  (** gauge/probe values, sorted *)
  s_timers : (string * win) list;
      (** only timers with at least one op in the window *)
}

type t

val create :
  ?ring:int ->
  ?journal:Journal.t ->
  ?extra:(unit -> (string * int) list) ->
  sources:(string * Evendb_obs.Obs.t) list ->
  unit ->
  t
(** [sources] are [(prefix, registry)] pairs; metric names from each
    registry are exported as [prefix ^ name] (use [""] for a single
    store, ["shard3."] etc. for sharded ones). [ring] (default 512)
    bounds the in-memory history. [extra], evaluated at each tick,
    contributes additional gauges (e.g. uptime, hot-prefix counts); a
    raising [extra] is absorbed. When [journal] is given, every sample
    is appended to it as one JSON record; storage errors are absorbed
    and counted ({!journal_errors}) — telemetry never takes the store
    down. *)

val tick : t -> sample

val samples : ?last:int -> t -> sample list
(** Retained samples, oldest first; [last] keeps only the newest [n]. *)

val journal_errors : t -> int

(** {2 Background domain} *)

val start : t -> interval_ns:int -> unit
(** Spawn the sampling domain (no-op if already running). It ticks
    every [interval_ns], checking for {!stop} every ≤50ms. *)

val stop : t -> unit
(** Signal and join the sampling domain. Idempotent. *)

val running : t -> bool

(** {2 Serialization} *)

val sample_to_json : sample -> string
(** One JSON object: [{"seq","wall_ns","dur_ns","deltas":{..},
    "gauges":{..},"timers":{"db.put":{"count","mean_ns","p50_ns",
    "p95_ns","p99_ns","max_ns"},..}}] — also the journal record
    format. *)

val to_json : ?last:int -> t -> string
(** [{"samples":[..]}], oldest first. *)

val samples_of_json : string -> sample list
(** Parse {!to_json} output (or a list of journal records wrapped the
    same way) back into samples — the client side of [/series], used by
    [evendb top --url]. Raises {!Tiny_json.Bad} on malformed input;
    unknown fields are ignored. *)

val sample_of_json : string -> sample option
(** Parse one {!sample_to_json} record (journal replay). *)
