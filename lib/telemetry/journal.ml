open Evendb_storage
open Evendb_util

let magic = "EVTJ1\n"

let segment_name i = Printf.sprintf "%smetrics_%06d.mj" Env.telemetry_prefix i

let parse_segment_name name =
  match Scanf.sscanf_opt name "telemetry/metrics_%6d.mj%!" (fun i -> i) with
  | Some i when i >= 0 -> Some i
  | _ -> None

let list_segments env =
  Env.list_files env
  |> List.filter_map (fun name ->
         match parse_segment_name name with
         | Some i -> Some (i, name)
         | None -> None)
  |> List.sort compare

type t = {
  env : Env.t;
  segment_bytes : int;
  max_segments : int;
  mutex : Mutex.t;
  mutable file : Env.file option;
  mutable index : int;
  mutable size : int;  (** bytes written to the current segment *)
}

let prune_locked t =
  (* Keep the newest [max_segments] segments, current one included. *)
  let segs = list_segments t.env in
  let excess = List.length segs - t.max_segments in
  if excess > 0 then
    List.iteri
      (fun i (_, name) -> if i < excess then Env.delete t.env name)
      segs

let open_segment_locked t index =
  let f = Env.create t.env (segment_name index) in
  Env.append f magic;
  Env.fsync f;
  t.file <- Some f;
  t.index <- index;
  t.size <- String.length magic

let create env ~segment_bytes ~max_segments =
  if segment_bytes < 64 then
    invalid_arg "Journal.create: segment_bytes must be >= 64";
  if max_segments < 1 then
    invalid_arg "Journal.create: max_segments must be >= 1";
  let t =
    {
      env;
      segment_bytes;
      max_segments;
      mutex = Mutex.create ();
      file = None;
      index = 0;
      size = 0;
    }
  in
  (* Never append to a segment from a previous incarnation — its tail
     may be torn. Start fresh above the highest index on disk. *)
  let next =
    match List.rev (list_segments env) with
    | (hi, _) :: _ -> hi + 1
    | [] -> 0
  in
  open_segment_locked t next;
  prune_locked t;
  t

let frame payload =
  let b = Buffer.create (String.length payload + 9) in
  Varint.write b (String.length payload);
  Buffer.add_string b payload;
  let crc = Crc32c.string payload in
  Buffer.add_char b (Char.chr (Int32.to_int (Int32.logand crc 0xffl)));
  Buffer.add_char b
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc 8) 0xffl)));
  Buffer.add_char b
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc 16) 0xffl)));
  Buffer.add_char b
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc 24) 0xffl)));
  Buffer.contents b

let append t payload =
  let fr = frame payload in
  Mutex.protect t.mutex (fun () ->
      match t.file with
      | None -> ()  (* closed: drop silently — observational data *)
      | Some f ->
        let f =
          if t.size + String.length fr > t.segment_bytes && t.size > String.length magic
          then begin
            Env.close_file f;
            open_segment_locked t (t.index + 1);
            prune_locked t;
            Option.get t.file
          end
          else f
        in
        Env.append f fr;
        Env.fsync f;
        t.size <- t.size + String.length fr)

let close t =
  Mutex.protect t.mutex (fun () ->
      match t.file with
      | None -> ()
      | Some f ->
        Env.close_file f;
        t.file <- None)

type check = {
  ck_records : int;
  ck_valid_bytes : int;
  ck_total_bytes : int;
  ck_error : string option;
}

let scan_data data =
  let total = String.length data in
  let mlen = String.length magic in
  if total < mlen || String.sub data 0 mlen <> magic then
    ( [],
      { ck_records = 0; ck_valid_bytes = 0; ck_total_bytes = total;
        ck_error = Some "bad segment magic" } )
  else begin
    let records = ref [] in
    let count = ref 0 in
    let pos = ref mlen in
    let error = ref None in
    (try
       while !pos < total do
         let frame_start = !pos in
         let len, next =
           try Varint.read data !pos
           with Invalid_argument _ ->
             pos := frame_start;
             raise Exit
         in
         if len < 0 || next + len + 4 > total then begin
           pos := frame_start;
           raise Exit
         end;
         let payload = String.sub data next len in
         let crc_off = next + len in
         let stored =
           let b i = Int32.of_int (Char.code data.[crc_off + i]) in
           Int32.logor (b 0)
             (Int32.logor
                (Int32.shift_left (b 1) 8)
                (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))
         in
         if Crc32c.string payload <> stored then begin
           pos := frame_start;
           error := Some "bad record checksum";
           raise Exit
         end;
         records := payload :: !records;
         incr count;
         pos := crc_off + 4
       done
     with Exit ->
       if !error = None then error := Some "truncated record");
    ( List.rev !records,
      { ck_records = !count; ck_valid_bytes = !pos; ck_total_bytes = total;
        ck_error = !error } )
  end

let read_segment env name =
  match Env.read_all env name with
  | data -> Some data
  | exception _ -> None

let records env name =
  match read_segment env name with
  | None -> []
  | Some data -> fst (scan_data data)

let replay env =
  list_segments env |> List.concat_map (fun (_, name) -> records env name)

let check env name =
  match read_segment env name with
  | None ->
    { ck_records = 0; ck_valid_bytes = 0; ck_total_bytes = 0;
      ck_error = Some "unreadable segment" }
  | Some data -> snd (scan_data data)
