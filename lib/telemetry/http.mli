(** A deliberately minimal HTTP/1.0-style server for the telemetry
    endpoint: one accept-loop domain, one request per connection
    ([Connection: close]), GET only, no external dependencies. Not a
    general web server — it exists so an operator (or Prometheus, or
    [evendb top --url]) can scrape a live store over loopback. *)

type response = { status : int; content_type : string; body : string }

val text : ?status:int -> string -> response
val json : ?status:int -> string -> response

type t

val start :
  ?host:string ->
  port:int ->
  (path:string -> query:(string * string) list -> response option) ->
  t
(** Bind [host] (default ["127.0.0.1"]) and serve requests on a
    background domain. [port = 0] binds an ephemeral port — read it
    back with {!port}. The handler runs on the server domain; [None]
    renders as 404, an exception as 500 (the loop never dies on a bad
    request). [query] is the percent-decoded query string. Raises
    [Unix.Unix_error] if the bind fails (e.g. port in use). *)

val port : t -> int

val stop : t -> unit
(** Close the listener and join the server domain. Idempotent. *)

val get : ?host:string -> port:int -> string -> int * string
(** Blocking one-shot client: [get ~port "/series?last=4"] returns
    [(status, body)]. Used by [evendb top --url] and the tests. *)
