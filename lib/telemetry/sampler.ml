module Obs = Evendb_obs.Obs

type win = {
  w_count : int;
  w_mean_ns : float;
  w_p50_ns : int;
  w_p95_ns : int;
  w_p99_ns : int;
  w_max_ns : int;
}

type sample = {
  s_seq : int;
  s_wall_ns : int;
  s_dur_ns : int;
  s_deltas : (string * int) list;
  s_gauges : (string * int) list;
  s_timers : (string * win) list;
}

(* Per-timer window baseline: lifetime count, lifetime mean, cumulative
   buckets at the previous tick. *)
type timer_prev = { tp_count : int; tp_mean : float; tp_buckets : (int * int) list }

type t = {
  sources : (string * Obs.t) list;
  ring : int;
  journal : Journal.t option;
  extra : (unit -> (string * int) list) option;
  mutex : Mutex.t;
  prev_counters : (string, int) Hashtbl.t;
  prev_timers : (string, timer_prev) Hashtbl.t;
  mutable seq : int;
  mutable last_tick_ns : int;  (** monotonic *)
  mutable ring_buf : sample list;  (** newest first, length <= ring *)
  mutable ring_len : int;
  journal_errors : int Atomic.t;
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
}

let create ?(ring = 512) ?journal ?extra ~sources () =
  if ring < 1 then invalid_arg "Sampler.create: ring must be >= 1";
  {
    sources;
    ring;
    journal;
    extra;
    mutex = Mutex.create ();
    prev_counters = Hashtbl.create 64;
    prev_timers = Hashtbl.create 16;
    seq = 0;
    last_tick_ns = Obs.now_ns ();
    ring_buf = [];
    ring_len = 0;
    journal_errors = Atomic.make 0;
    stop_flag = Atomic.make false;
    domain = None;
  }

(* Windowed percentile over delta buckets, matching the Histogram
   convention: rank ceil(p/100 * total) (at least 1) over ascending
   cumulative counts; the answer is the bucket's upper bound. *)
let delta_percentile buckets total p =
  let target = max 1 (int_of_float (ceil (p /. 100. *. float_of_int total))) in
  let rec go acc = function
    | [] -> (match List.rev buckets with (ub, _) :: _ -> ub | [] -> 0)
    | (ub, c) :: rest ->
      let acc = acc + c in
      if acc >= target then ub else go acc rest
  in
  go 0 buckets

let window_of_timer prev (s : Obs.timer_summary) =
  let dc = s.Obs.t_count - prev.tp_count in
  if dc <= 0 then None
  else begin
    (* Cumulative bucket counts are monotone, so the window's
       distribution is the per-bucket difference. [t_buckets] lists
       only non-empty buckets; a bucket absent from [prev] was empty
       then. *)
    let prev_count ub =
      match List.assoc_opt ub prev.tp_buckets with Some c -> c | None -> 0
    in
    let delta =
      List.filter_map
        (fun (ub, c) ->
          let d = c - prev_count ub in
          if d > 0 then Some (ub, d) else None)
        s.Obs.t_buckets
    in
    let dtotal = List.fold_left (fun a (_, c) -> a + c) 0 delta in
    if dtotal = 0 then None
    else
      let mean =
        (s.Obs.t_mean_ns *. float_of_int s.Obs.t_count
        -. prev.tp_mean *. float_of_int prev.tp_count)
        /. float_of_int dc
      in
      let max_ns =
        match List.rev delta with (ub, _) :: _ -> ub | [] -> 0
      in
      Some
        {
          w_count = dc;
          w_mean_ns = mean;
          w_p50_ns = delta_percentile delta dtotal 50.;
          w_p95_ns = delta_percentile delta dtotal 95.;
          w_p99_ns = delta_percentile delta dtotal 99.;
          w_max_ns = max_ns;
        }
  end

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let sample_to_json s =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\"seq\":%d,\"wall_ns\":%d,\"dur_ns\":%d" s.s_seq s.s_wall_ns
    s.s_dur_ns;
  let obj key items render =
    Printf.bprintf b ",\"%s\":{" key;
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b "\"%s\":" (json_escape name);
        render v)
      items;
    Buffer.add_char b '}'
  in
  obj "deltas" s.s_deltas (fun v -> Printf.bprintf b "%d" v);
  obj "gauges" s.s_gauges (fun v -> Printf.bprintf b "%d" v);
  obj "timers" s.s_timers (fun w ->
      Printf.bprintf b
        "{\"count\":%d,\"mean_ns\":%.1f,\"p50_ns\":%d,\"p95_ns\":%d,\"p99_ns\":%d,\"max_ns\":%d}"
        w.w_count w.w_mean_ns w.w_p50_ns w.w_p95_ns w.w_p99_ns w.w_max_ns);
  Buffer.add_char b '}';
  Buffer.contents b

let tick_locked t =
  let now = Obs.now_ns () in
  let dur = now - t.last_tick_ns in
  t.last_tick_ns <- now;
  let deltas = ref [] in
  let gauges = ref [] in
  let timers = ref [] in
  List.iter
    (fun (prefix, obs) ->
      let snap = Obs.snapshot obs in
      List.iter
        (fun (name, value) ->
          let name = prefix ^ name in
          match value with
          | Obs.Counter v ->
            let prev =
              match Hashtbl.find_opt t.prev_counters name with
              | Some p -> p
              | None -> 0
            in
            Hashtbl.replace t.prev_counters name v;
            if v - prev <> 0 then deltas := (name, v - prev) :: !deltas
          | Obs.Gauge v -> gauges := (name, v) :: !gauges
          | Obs.Timer s ->
            let prev =
              match Hashtbl.find_opt t.prev_timers name with
              | Some p -> p
              | None -> { tp_count = 0; tp_mean = 0.; tp_buckets = [] }
            in
            Hashtbl.replace t.prev_timers name
              {
                tp_count = s.Obs.t_count;
                tp_mean = s.Obs.t_mean_ns;
                tp_buckets = s.Obs.t_buckets;
              };
            (match window_of_timer prev s with
            | Some w -> timers := (name, w) :: !timers
            | None -> ()))
        snap.Obs.metrics)
    t.sources;
  (match t.extra with
  | Some f -> ( try gauges := List.rev_append (f ()) !gauges with _ -> ())
  | None -> ());
  let by_name (a, _) (b, _) = compare (a : string) b in
  let s =
    {
      s_seq = t.seq;
      s_wall_ns = Obs.to_wall_ns now;
      s_dur_ns = dur;
      s_deltas = List.sort by_name !deltas;
      s_gauges = List.sort by_name !gauges;
      s_timers = List.sort by_name !timers;
    }
  in
  t.seq <- t.seq + 1;
  t.ring_buf <- s :: t.ring_buf;
  t.ring_len <- t.ring_len + 1;
  if t.ring_len > t.ring then begin
    t.ring_buf <- List.filteri (fun i _ -> i < t.ring) t.ring_buf;
    t.ring_len <- t.ring
  end;
  (match t.journal with
  | Some j -> (
    try Journal.append j (sample_to_json s)
    with _ -> Atomic.incr t.journal_errors)
  | None -> ());
  s

let tick t = Mutex.protect t.mutex (fun () -> tick_locked t)

let samples ?last t =
  Mutex.protect t.mutex (fun () ->
      let newest_first =
        match last with
        | Some n -> List.filteri (fun i _ -> i < n) t.ring_buf
        | None -> t.ring_buf
      in
      List.rev newest_first)

let journal_errors t = Atomic.get t.journal_errors

let start t ~interval_ns =
  if interval_ns < 1 then invalid_arg "Sampler.start: interval_ns must be >= 1";
  Mutex.protect t.mutex (fun () ->
      match t.domain with
      | Some _ -> ()
      | None ->
        Atomic.set t.stop_flag false;
        let d =
          Domain.spawn (fun () ->
              let max_nap = 0.050 in
              let rec sleep_until deadline =
                if not (Atomic.get t.stop_flag) then begin
                  let left =
                    float_of_int (deadline - Obs.now_ns ()) /. 1e9
                  in
                  if left > 0. then begin
                    Unix.sleepf (Float.min left max_nap);
                    sleep_until deadline
                  end
                end
              in
              let rec loop () =
                if not (Atomic.get t.stop_flag) then begin
                  sleep_until (Obs.now_ns () + interval_ns);
                  if not (Atomic.get t.stop_flag) then begin
                    (try ignore (tick t) with _ -> ());
                    loop ()
                  end
                end
              in
              loop ())
        in
        t.domain <- Some d)

let stop t =
  let d =
    Mutex.protect t.mutex (fun () ->
        let d = t.domain in
        t.domain <- None;
        Atomic.set t.stop_flag true;
        d)
  in
  match d with Some d -> Domain.join d | None -> ()

let running t = Mutex.protect t.mutex (fun () -> t.domain <> None)

let to_json ?last t =
  let ss = samples ?last t in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"samples\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (sample_to_json s))
    ss;
  Buffer.add_string b "]}";
  Buffer.contents b

(* {2 Parsing (client side)} *)

let sample_of_value (j : Tiny_json.t) : sample option =
  let open Tiny_json in
  let int_field key ~default =
    match member key j with
    | Some v -> ( match to_int v with Some i -> i | None -> default)
    | None -> default
  in
  let assoc_ints key =
    match member key j with
    | Some (Obj fields) ->
      List.filter_map (fun (k, v) -> Option.map (fun i -> (k, i)) (to_int v)) fields
    | _ -> []
  in
  let timers =
    match member "timers" j with
    | Some (Obj fields) ->
      List.filter_map
        (fun (k, tv) ->
          let fi key ~default =
            match member key tv with
            | Some v -> ( match to_int v with Some i -> i | None -> default)
            | None -> default
          in
          let ff key =
            match member key tv with
            | Some v -> ( match to_float v with Some f -> f | None -> 0.)
            | None -> 0.
          in
          match member "count" tv with
          | Some _ ->
            Some
              ( k,
                {
                  w_count = fi "count" ~default:0;
                  w_mean_ns = ff "mean_ns";
                  w_p50_ns = fi "p50_ns" ~default:0;
                  w_p95_ns = fi "p95_ns" ~default:0;
                  w_p99_ns = fi "p99_ns" ~default:0;
                  w_max_ns = fi "max_ns" ~default:0;
                } )
          | None -> None)
        fields
    | _ -> []
  in
  match member "seq" j with
  | None -> None
  | Some _ ->
    Some
      {
        s_seq = int_field "seq" ~default:0;
        s_wall_ns = int_field "wall_ns" ~default:0;
        s_dur_ns = int_field "dur_ns" ~default:0;
        s_deltas = assoc_ints "deltas";
        s_gauges = assoc_ints "gauges";
        s_timers = timers;
      }

let samples_of_json body =
  let j = Tiny_json.parse body in
  match Tiny_json.member "samples" j with
  | Some (Tiny_json.Arr items) -> List.filter_map sample_of_value items
  | _ -> []

let sample_of_json record =
  match Tiny_json.parse_opt record with
  | Some j -> sample_of_value j
  | None -> None
