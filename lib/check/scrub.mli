(** On-disk integrity scrubber ([evendb fsck]).

    Walks every file of a store directory — without opening the store —
    classifies each by name, and verifies whatever integrity that kind
    of file promises: SSTable checksums and structural tiling, log
    record framing, metadata payload CRCs, and the cross-file
    referential integrity of the EvenDB manifest (every live funk id
    must resolve to files, some live funk must carry the sentinel ""
    min-key).

    The scrubber also understands the auxiliary namespaces: members of
    published snapshots under ["snapshots/<id>/"] are verified like
    their live-store counterparts (a member of a half-published
    snapshot is a warning — the recovery sweep drops it), backup
    archives ([backup_*.evbk]) are structurally validated, and the
    replication files ([REPL_LSN] watermark, [FOLLOWER] / [FENCED]
    markers) are recognized. A healthy snapshot member is never
    quarantined by {!repair}. Telemetry journal segments under
    ["telemetry/"] are frame-checked: a torn tail on the {e newest}
    segment is only a warning (a crashed sampler legitimately leaves
    one; replay stops there), while damage to an older segment is an
    error and {!repair} quarantines the segment — a corrupt journal
    never breaks [Db.open_], which skips the namespace entirely.

    {!repair} additionally fixes what it can. The rule is: never
    destroy bytes — an untrusted file is {e quarantined} (renamed under
    ["quarantine/"], which recovery sweeps ignore) before anything is
    rebuilt in its place, and rebuilt content comes only from
    CRC-verified fragments ({!Sstable.Reader.salvage}, valid log
    records). Acked-and-synced data therefore survives repair; what a
    corruption already destroyed is reported, not resurrected. *)

open Evendb_storage

type severity = Error | Warning

type kind =
  | Bad_checksum  (** payload or block failed its CRC *)
  | Structural  (** malformed layout, bad refs, missing sentinel *)
  | Log_garbage  (** undecodable log region (torn tail or bit rot) *)
  | Missing_file  (** a manifest-live file is absent *)
  | Orphan  (** a data file no manifest references (swept at recovery) *)
  | Leftover_tmp  (** interrupted write-tmp-then-rename *)
  | Unknown_file  (** name matches no known layout *)

type finding = {
  f_file : string;
  f_severity : severity;
  f_kind : kind;
  f_detail : string;
}

type report = {
  files_checked : int;
  findings : finding list;  (** sorted by file name *)
  actions : (string * string) list;
      (** (file, what was done) — empty unless repairing *)
}

val errors : report -> finding list
val is_clean : report -> bool
(** No [Error]-severity findings. *)

val scrub : Env.t -> report
(** Verify everything; mutate nothing. *)

val repair : Env.t -> report
(** Scrub, then fix what can be fixed: quarantine corrupt files,
    rebuild SSTables from salvageable blocks (plus, for funks, the keys
    still covered by the funk's log), rewrite logs to their valid
    records, reconstruct the EvenDB MANIFEST from the funk files
    present, reset an unreadable MODE to the conservative ["async"],
    and delete leftover [.tmp] files. The returned report carries the
    {e post}-repair findings (what remains wrong) plus the action log. *)

val pp_report : Format.formatter -> report -> unit
