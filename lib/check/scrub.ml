open Evendb_util
open Evendb_storage
open Evendb_sstable
open Evendb_log
open Evendb_core

type severity = Error | Warning

type kind =
  | Bad_checksum
  | Structural
  | Log_garbage
  | Missing_file
  | Orphan
  | Leftover_tmp
  | Unknown_file

type finding = {
  f_file : string;
  f_severity : severity;
  f_kind : kind;
  f_detail : string;
}

type report = {
  files_checked : int;
  findings : finding list;
  actions : (string * string) list;
}

let errors r = List.filter (fun f -> f.f_severity = Error) r.findings
let is_clean r = errors r = []

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

type file_class =
  | Funk_sst of int
  | Funk_log of int
  | Funk_view of int  (* derived sorted-view sidecar *)
  | Baseline_sst  (* lsm_*.sst / flsm_*.sst *)
  | Baseline_log  (* lsm_wal_*.log / flsm_wal_*.log *)
  | Evendb_manifest
  | Baseline_manifest  (* LSM_MANIFEST / FLSM_MANIFEST *)
  | Checkpoint
  | Recovery_table
  | Mode
  | Snapshot_complete of string  (* snapshots/<id>/COMPLETE *)
  | Snapshot_member of string * string  (* snapshot id, bare member name *)
  | Backup_archive  (* backup_*.evbk *)
  | Repl_watermark  (* REPL_LSN *)
  | Follower_marker  (* FOLLOWER *)
  | Fenced_marker  (* FENCED *)
  | Telemetry_journal of int  (* telemetry/metrics_*.mj *)
  | Tmp
  | Unknown

let rec classify name =
  if Filename.check_suffix name ".tmp" then Tmp
  else if Env.is_telemetry name then
    match Evendb_telemetry.Journal.parse_segment_name name with
    | Some i -> Telemetry_journal i
    | None -> Unknown
  else
    match Env.split_snapshot name with
    | Some (id, member) ->
      if member = Snapshot.complete_name then Snapshot_complete id
      else Snapshot_member (id, member)
    | None ->
      classify_flat name

and classify_flat name =
  if name = Manifest.file_name then Evendb_manifest
  else if name = "LSM_MANIFEST" || name = "FLSM_MANIFEST" then Baseline_manifest
  else if name = Checkpoint_file.file_name then Checkpoint
  else if name = Recovery_table.file_name then Recovery_table
  else if name = "MODE" then Mode
  else if name = "REPL_LSN" then Repl_watermark
  else if name = "FOLLOWER" then Follower_marker
  else if name = "FENCED" then Fenced_marker
  else if Backup.parse_archive_name name <> None then Backup_archive
  else
    match Scanf.sscanf_opt name "funk_%8d.sst%!" (fun id -> id) with
    | Some id -> Funk_sst id
    | None -> (
      match Scanf.sscanf_opt name "funk_%8d.log%!" (fun id -> id) with
      | Some id -> Funk_log id
      | None ->
        (match Scanf.sscanf_opt name "funk_%8d.view%!" (fun id -> id) with
        | Some id -> Funk_view id
        | None ->
        if
          Scanf.sscanf_opt name "lsm_wal_%d.log%!" (fun g -> g) <> None
          || Scanf.sscanf_opt name "flsm_wal_%d.log%!" (fun g -> g) <> None
        then Baseline_log
        else if
          Scanf.sscanf_opt name "lsm_%d.sst%!" (fun f -> f) <> None
          || Scanf.sscanf_opt name "flsm_%d.sst%!" (fun f -> f) <> None
        then Baseline_sst
        else Unknown))

(* ------------------------------------------------------------------ *)
(* Checks                                                              *)

let u32_le s pos =
  let b i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

(* Every metadata file shares the same frame: payload + CRC32C LE. *)
let check_crc_trailer env name =
  let data = Env.read_all env name in
  if String.length data < 4 then Some "truncated"
  else
    let payload = String.sub data 0 (String.length data - 4) in
    if Crc32c.string payload <> u32_le data (String.length data - 4) then Some "bad checksum"
    else None

let check_sst env name =
  try
    let r = Sstable.Reader.open_ env name in
    Sstable.Reader.verify r;
    []
  with Env.Corruption c ->
    [ { f_file = name; f_severity = Error; f_kind = Bad_checksum; f_detail = c.c_detail } ]

let check_log env name =
  List.map
    (fun (lo, hi) ->
      {
        f_file = name;
        f_severity = Warning;
        f_kind = Log_garbage;
        f_detail = Printf.sprintf "undecodable bytes [%d, %d)" lo hi;
      })
    (Log_file.Reader.garbage_regions env name)

(* A sorted view is healthy when structurally sound — magic, trailer
   CRC, parseable layout. Staleness (valid view of an older log state)
   is NOT a finding: the loader rejects stale views at open and the
   next eviction rebuilds them; flagging them would make every
   post-crash scrub noisy for files that cannot lose data. *)
let check_view env name =
  if Sorted_view.well_formed (Env.read_all env name) then []
  else begin
    Env.note_corruption env;
    [
      {
        f_file = name;
        f_severity = Error;
        f_kind = Bad_checksum;
        f_detail = "sorted view fails structural check (magic/CRC/layout)";
      };
    ]
  end

let check_mode env name =
  match Env.read_all env name with
  | "sync" | "async" -> []
  | other ->
    Env.note_corruption env;
    [
      {
        f_file = name;
        f_severity = Error;
        f_kind = Structural;
        f_detail = Printf.sprintf "unrecognized persistence mode %S" other;
      };
    ]

(* A member of a *published* snapshot is checked like its live-store
   counterpart — same formats, frozen names. The snapshot MANIFEST is
   only CRC-validated: its funk ids reference the snapshot's own copies,
   never the live store, so cross-file checks against the live layout
   would be meaningless. *)
let check_snapshot_member env name ~member =
  match classify_flat member with
  | Funk_sst _ | Baseline_sst -> check_sst env name
  | Funk_log _ | Baseline_log -> check_log env name
  | Funk_view _ -> check_view env name
  | Evendb_manifest | Checkpoint | Recovery_table -> (
    match check_crc_trailer env name with
    | None -> []
    | Some detail ->
      Env.note_corruption env;
      [ { f_file = name; f_severity = Error; f_kind = Bad_checksum; f_detail = detail } ])
  | Mode -> check_mode env name
  | _ ->
    [
      {
        f_file = name;
        f_severity = Warning;
        f_kind = Unknown_file;
        f_detail = "unexpected member of a published snapshot";
      };
    ]

(* Cross-file referential integrity of the EvenDB layout: every
   manifest-live funk id must resolve to its files, and the sentinel
   ""-min-key funk must exist (recovery refuses to start without it). *)
let check_manifest_refs env (manifest : Manifest.t) ~funk_ssts ~funk_logs =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let mention sev kind file detail =
    add { f_file = file; f_severity = sev; f_kind = kind; f_detail = detail }
  in
  let live = manifest.Manifest.live in
  List.iter
    (fun id ->
      if not (List.mem id funk_ssts) then
        mention Error Missing_file (Funk.sst_name id) "manifest-live funk SSTable missing";
      if not (List.mem id funk_logs) then
        mention Error Missing_file (Funk.log_name id) "manifest-live funk log missing")
    live;
  List.iter
    (fun id ->
      if not (List.mem id live) then
        mention Warning Orphan (Funk.sst_name id) "funk not referenced by the manifest")
    (List.filter (fun id -> not (List.mem id live)) funk_ssts);
  (* Sentinel check only when every live SSTable is readable — a corrupt
     one is already reported and may well be the sentinel. *)
  let min_keys =
    List.filter_map
      (fun id ->
        if List.mem id funk_ssts then
          try Some (Sstable.Reader.chunk_min_key (Sstable.Reader.open_ env (Funk.sst_name id)))
          with Env.Corruption _ -> None
        else None)
      live
  in
  if
    live <> []
    && List.length min_keys = List.length live
    && not (List.mem "" min_keys)
  then
    mention Error Structural Manifest.file_name "no live funk carries the sentinel \"\" min-key";
  List.rev !findings

let scrub_findings env =
  let files = List.filter (fun n -> not (Env.is_quarantined n)) (Env.list_files env) in
  let funk_ssts = List.filter_map (fun n -> match classify n with Funk_sst id -> Some id | _ -> None) files in
  let funk_logs = List.filter_map (fun n -> match classify n with Funk_log id -> Some id | _ -> None) files in
  (* The newest journal segment may legitimately end mid-frame (crash
     between append and fsync) — a torn tail there is a warning, the
     same damage in an older segment is real corruption. *)
  let telem_max =
    List.fold_left
      (fun acc n -> match classify n with Telemetry_journal i -> max acc i | _ -> acc)
      (-1) files
  in
  let per_file =
    List.concat_map
      (fun name ->
        match classify name with
        | Funk_sst _ | Baseline_sst -> check_sst env name
        | Funk_log _ | Baseline_log -> check_log env name
        | Funk_view _ -> check_view env name
        | Evendb_manifest -> (
          match Manifest.load env with
          | Some m -> check_manifest_refs env m ~funk_ssts ~funk_logs
          | None -> []
          | exception Env.Corruption c ->
            [ { f_file = name; f_severity = Error; f_kind = Bad_checksum; f_detail = c.c_detail } ])
        | Baseline_manifest | Recovery_table | Checkpoint -> (
          match check_crc_trailer env name with
          | None -> []
          | Some detail ->
            Env.note_corruption env;
            [ { f_file = name; f_severity = Error; f_kind = Bad_checksum; f_detail = detail } ])
        | Mode -> check_mode env name
        | Snapshot_complete id -> (
          match Snapshot.load_complete env ~id with
          | _ -> []
          | exception Env.Corruption c ->
            [ { f_file = name; f_severity = Error; f_kind = Bad_checksum; f_detail = c.c_detail } ])
        | Snapshot_member (id, member) ->
          if not (Snapshot.exists env ~id) then
            [
              {
                f_file = name;
                f_severity = Warning;
                f_kind = Orphan;
                f_detail = "member of a half-published snapshot (no COMPLETE marker); the \
                            recovery sweep drops it";
              };
            ]
          else check_snapshot_member env name ~member
        | Backup_archive -> (
          match Backup.verify env name with
          | () -> []
          | exception Env.Corruption c ->
            [ { f_file = name; f_severity = Error; f_kind = Bad_checksum; f_detail = c.c_detail } ])
        | Repl_watermark -> (
          (* varint LSN + CRC32C trailer — the shared metadata frame. *)
          match check_crc_trailer env name with
          | None -> []
          | Some detail ->
            Env.note_corruption env;
            [ { f_file = name; f_severity = Error; f_kind = Bad_checksum; f_detail = detail } ])
        | Follower_marker | Fenced_marker ->
          (* Presence alone carries the meaning; content is free-form. *)
          []
        | Telemetry_journal i -> (
          match (Evendb_telemetry.Journal.check env name).ck_error with
          | None -> []
          | Some detail when i = telem_max ->
            [
              {
                f_file = name;
                f_severity = Warning;
                f_kind = Log_garbage;
                f_detail =
                  detail ^ " (torn journal tail — expected after a crash; replay stops here)";
              };
            ]
          | Some detail ->
            Env.note_corruption env;
            [ { f_file = name; f_severity = Error; f_kind = Bad_checksum; f_detail = detail } ])
        | Tmp ->
          [
            {
              f_file = name;
              f_severity = Warning;
              f_kind = Leftover_tmp;
              f_detail = "leftover temporary file (interrupted write-then-rename)";
            };
          ]
        | Unknown ->
          [
            {
              f_file = name;
              f_severity = Warning;
              f_kind = Unknown_file;
              f_detail = "name matches no known layout";
            };
          ])
      files
  in
  ( List.length files,
    List.sort (fun a b -> compare (a.f_file, a.f_detail) (b.f_file, b.f_detail)) per_file )

let scrub env =
  let files_checked, findings = scrub_findings env in
  { files_checked; findings; actions = [] }

(* ------------------------------------------------------------------ *)
(* Repair                                                              *)

let quarantine env name =
  Env.rename env ~old_name:name ~new_name:(Env.quarantined name)

let log_keys env name =
  List.map (fun (_off, (e : Kv_iter.entry)) -> e.key) (Log_file.Reader.entries env name)

let min_string = function
  | [] -> ""
  | k :: rest -> List.fold_left min k rest

(* Rebuild an SSTable from its CRC-verified blocks. For a funk the log
   still covers its keyspace, so the log's smallest key participates in
   the min-key reconstruction when the header checksum is gone. *)
let rebuild_sst env name ~companion_log =
  let recovered_min, entries = Sstable.Reader.salvage env name in
  quarantine env name;
  let min_key =
    match recovered_min with
    | Some k -> k
    | None ->
      let candidates =
        List.map (fun (e : Kv_iter.entry) -> e.key) entries
        @ (match companion_log with Some l -> log_keys env l | None -> [])
      in
      min_string candidates
  in
  let b = Sstable.Builder.create env ~name ~min_key () in
  List.iter (Sstable.Builder.add b) entries;
  Sstable.Builder.finish b;
  Printf.sprintf "quarantined and rebuilt from %d salvaged entries (min-key %S)"
    (List.length entries) min_key

let rebuild_missing_sst env name ~companion_log =
  let min_key =
    match companion_log with Some l -> min_string (log_keys env l) | None -> ""
  in
  let b = Sstable.Builder.create env ~name ~min_key () in
  Sstable.Builder.finish b;
  Printf.sprintf "recreated empty (min-key %S); its log still serves reads" min_key

let rewrite_log env name =
  let entries = Log_file.Reader.entries env name in
  quarantine env name;
  let w = Log_file.Writer.create env name in
  List.iter (fun (_off, e) -> ignore (Log_file.Writer.append w e)) entries;
  Log_file.Writer.fsync w;
  Log_file.Writer.close w;
  Printf.sprintf "quarantined and rewrote %d valid records" (List.length entries)

(* Views are derived data: repair is always regeneration from the
   sstable + log (both already repaired — repairs run in file-name
   order and ".log" < ".sst" < ".view"). The bad copy is quarantined
   as evidence like every other repair; a companion-repair may already
   have deleted it, in which case there is nothing to preserve. *)
let regen_view env name ~id =
  if Env.exists env name then quarantine env name;
  match Sstable.Reader.open_ env (Funk.sst_name id) with
  | sst ->
    Sorted_view.build env ~sst ~log_name:(Funk.log_name id) ~view_name:name;
    "regenerated from SSTable + log (derived data; no loss possible)"
  | exception Env.Corruption _ ->
    "quarantined; SSTable unreadable — the view rebuilds at the next eviction"

let rewrite_mode env =
  let tmp = "MODE.tmp" in
  let f = Env.create env tmp in
  Env.append f "async";
  Env.fsync f;
  Env.close_file f;
  Env.rename env ~old_name:tmp ~new_name:"MODE";
  "reset to \"async\" (conservative: only checkpointed data is trusted)"

(* Rebuild the manifest from the funk files actually present (run after
   the per-file repairs, so every surviving SSTable opens). *)
let rebuild_manifest env =
  if Env.exists env Manifest.file_name then quarantine env Manifest.file_name;
  let files = List.filter (fun n -> not (Env.is_quarantined n)) (Env.list_files env) in
  let ids =
    List.sort_uniq compare
      (List.filter_map
         (fun n -> match classify n with Funk_sst id -> Some id | _ -> None)
         files)
  in
  let openable =
    List.filter
      (fun id ->
        match Sstable.Reader.open_ env (Funk.sst_name id) with
        | _ -> true
        | exception Env.Corruption _ -> false)
      ids
  in
  let has_sentinel =
    List.exists
      (fun id -> Sstable.Reader.chunk_min_key (Sstable.Reader.open_ env (Funk.sst_name id)) = "")
      openable
  in
  let next_id = 1 + List.fold_left max (-1) openable in
  let live, next_id =
    if has_sentinel then (openable, next_id)
    else begin
      (* No sentinel survived: fabricate an empty one so the store
         opens; its range is served (empty) until data is re-ingested. *)
      let b = Sstable.Builder.create env ~name:(Funk.sst_name next_id) ~min_key:"" () in
      Sstable.Builder.finish b;
      Log_file.Writer.close (Log_file.Writer.create env (Funk.log_name next_id));
      (openable @ [ next_id ], next_id + 1)
    end
  in
  Manifest.store env { Manifest.next_id; live };
  Printf.sprintf "rebuilt from directory: %d live funks, next id %d" (List.length live) next_id

(* A rebuilt funk's min-key is a guess (smallest surviving key) — safe
   anywhere except the sentinel, whose true min-key is "". If no live
   funk carries the sentinel after the per-file repairs, the smallest
   chunk's range is extended down to "": keys below its first real key
   route to it and correctly read as absent. *)
let ensure_sentinel env =
  match (try Manifest.load env with Env.Corruption _ -> None) with
  | None -> None
  | Some m -> (
    let readable =
      List.filter_map
        (fun id ->
          try Some (id, Sstable.Reader.open_ env (Funk.sst_name id)) with Env.Corruption _ -> None)
        m.Manifest.live
    in
    if readable = [] || List.exists (fun (_, r) -> Sstable.Reader.chunk_min_key r = "") readable
    then None
    else begin
      let id, r =
        List.fold_left
          (fun (bi, br) (i, cand) ->
            if Sstable.Reader.chunk_min_key cand < Sstable.Reader.chunk_min_key br then (i, cand)
            else (bi, br))
          (List.hd readable) (List.tl readable)
      in
      let name = Funk.sst_name id in
      let tmp = name ^ ".rebuild.tmp" in
      let b = Sstable.Builder.create env ~name:tmp ~min_key:"" () in
      let it = Sstable.Reader.iter r in
      let rec drain () =
        match it () with
        | Some e ->
          Sstable.Builder.add b e;
          drain ()
        | None -> ()
      in
      drain ();
      Sstable.Builder.finish b;
      Env.rename env ~old_name:tmp ~new_name:name;
      Some (name, "promoted to sentinel: min-key extended down to \"\"")
    end)

let repair env =
  let _, findings = scrub_findings env in
  let actions = ref [] in
  let act file what = actions := (file, what) :: !actions in
  let manifest_needs_rebuild = ref false in
  (* One repair per file even when it has several findings. *)
  let seen = Hashtbl.create 16 in
  (* One drop per snapshot even when several members are damaged. *)
  let dropped_snapshots = Hashtbl.create 4 in
  let drop_snapshot id reason =
    if not (Hashtbl.mem dropped_snapshots id) then begin
      Hashtbl.replace dropped_snapshots id ();
      Snapshot.drop env ~id;
      act
        (Env.snapshot_member ~id "")
        (Printf.sprintf
           "snapshot %s dropped (%s); a snapshot is a derived artifact — re-snapshot the \
            live store instead of repairing a damaged cut"
           id reason)
    end
  in
  List.iter
    (fun f ->
      if not (Hashtbl.mem seen f.f_file) then begin
        Hashtbl.replace seen f.f_file ();
        let name = f.f_file in
        match (classify name, f.f_kind) with
        | Funk_sst id, Missing_file ->
          act name (rebuild_missing_sst env name ~companion_log:(Some (Funk.log_name id)));
          (* The repaired table no longer matches the old view; drop
             the (derived) sidecar rather than leave it stale. *)
          Env.delete env (Funk.view_name id)
        | Funk_sst id, _ ->
          act name (rebuild_sst env name ~companion_log:(Some (Funk.log_name id)));
          Env.delete env (Funk.view_name id)
        | Funk_log id, Missing_file ->
          act name "treated as empty (recovery recreates it)";
          Env.delete env (Funk.view_name id)
        | Funk_log id, _ ->
          act name (rewrite_log env name);
          Env.delete env (Funk.view_name id)
        | Funk_view id, _ -> act name (regen_view env name ~id)
        | Baseline_sst, _ -> act name (rebuild_sst env name ~companion_log:None)
        | Baseline_log, _ -> act name (rewrite_log env name)
        | Evendb_manifest, (Bad_checksum | Structural) -> manifest_needs_rebuild := true
        | Evendb_manifest, _ -> ()
        | Baseline_manifest, _ ->
          quarantine env name;
          act name
            "quarantined (unrepairable without its engine; the store reopens empty — recover \
             the quarantined copy manually)"
        | Checkpoint, _ ->
          quarantine env name;
          act name
            "quarantined; recovery treats the last epoch as uncheckpointed (async-mode writes \
             since the previous checkpoint become invisible)"
        | Recovery_table, _ ->
          quarantine env name;
          act name
            "quarantined; visibility of previous epochs' uncheckpointed writes is lost"
        | Mode, _ -> act name (rewrite_mode env)
        | Snapshot_complete id, _ -> drop_snapshot id "COMPLETE marker unreadable"
        | Snapshot_member (id, _), _ ->
          (* Healthy members are never touched (their findings filter out
             above); a damaged member poisons the whole cut. *)
          drop_snapshot id "damaged member"
        | Backup_archive, _ ->
          quarantine env name;
          act name
            "quarantined (damaged archive breaks the restore chain; re-ship from a live \
             snapshot)"
        | Repl_watermark, _ ->
          quarantine env name;
          act name
            "quarantined; the follower re-applies from LSN 0 (stream applies are idempotent)"
        | (Follower_marker | Fenced_marker), _ -> ()
        | Telemetry_journal _, _ ->
          quarantine env name;
          act name
            "quarantined (observational history only; the live sampler starts a fresh \
             segment)"
        | Tmp, _ ->
          Env.delete env name;
          act name "deleted leftover temporary file"
        | Unknown, _ -> ()
      end)
    (List.filter (fun f -> f.f_kind <> Orphan) findings);
  (* Manifest last: missing-file repairs above may have recreated the
     very files a rebuilt manifest should reference. *)
  if !manifest_needs_rebuild then act Manifest.file_name (rebuild_manifest env);
  (match ensure_sentinel env with
  | Some (file, what) -> act file what
  | None -> ());
  let files_checked, remaining = scrub_findings env in
  { files_checked; findings = remaining; actions = List.rev !actions }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let severity_name = function Error -> "error" | Warning -> "warning"

let kind_name = function
  | Bad_checksum -> "bad-checksum"
  | Structural -> "structural"
  | Log_garbage -> "log-garbage"
  | Missing_file -> "missing-file"
  | Orphan -> "orphan"
  | Leftover_tmp -> "leftover-tmp"
  | Unknown_file -> "unknown-file"

let pp_report ppf r =
  Format.fprintf ppf "scrubbed %d files: %d findings@." r.files_checked (List.length r.findings);
  List.iter
    (fun f ->
      Format.fprintf ppf "  [%s] %s: %s (%s)@." (severity_name f.f_severity) f.f_file f.f_detail
        (kind_name f.f_kind))
    r.findings;
  List.iter (fun (file, what) -> Format.fprintf ppf "  repair %s: %s@." file what) r.actions
