open Evendb_util
open Evendb_storage

module type ENGINE = sig
  type t

  val name : string
  val open_ : Env.t -> t
  val close : t -> unit
  val put : t -> string -> string -> unit
  val delete : t -> string -> unit
  val get : t -> string -> string option
  val scan : t -> low:string -> high:string -> (string * string) list
  val barrier : t -> unit
  val durable_on_ack : bool
end

(* Thresholds shrunk so flushes, rebalances, splits and compactions all
   fire within a few hundred operations — the structurally interesting
   crash windows. *)

module Evendb_engine (M : sig
  val mode : Evendb_core.Config.persistence
end) : ENGINE = struct
  open Evendb_core

  type t = Db.t

  let name =
    match M.mode with Config.Sync -> "evendb-sync" | Config.Async -> "evendb-async"

  let config =
    {
      Config.default with
      persistence = M.mode;
      max_chunk_bytes = 8 * 1024;
      munk_rebalance_bytes = 6 * 1024;
      munk_rebalance_appended = 64;
      funk_log_limit_no_munk = 2 * 1024;
      funk_log_limit_with_munk = 8 * 1024;
      munk_cache_capacity = 4;
    }

  let open_ env = Db.open_ ~config env
  let close = Db.close
  let put = Db.put
  let delete = Db.delete
  let get = Db.get
  let scan t ~low ~high = Db.scan t ~low ~high ()
  let barrier = Db.checkpoint
  let durable_on_ack = match M.mode with Config.Sync -> true | Config.Async -> false
end

module Evendb_sync = Evendb_engine (struct
  let mode = Evendb_core.Config.Sync
end)

module Evendb_async = Evendb_engine (struct
  let mode = Evendb_core.Config.Async
end)

module Lsm_engine : ENGINE = struct
  open Evendb_lsm

  type t = Lsm.t

  let name = "lsm-sync"

  let config =
    {
      Lsm.Config.default with
      memtable_bytes = 2 * 1024;
      level_base_bytes = 8 * 1024;
      target_file_bytes = 4 * 1024;
      sync_writes = true;
    }

  let open_ env = Lsm.open_ ~config env
  let close = Lsm.close
  let put = Lsm.put
  let delete = Lsm.delete
  let get = Lsm.get
  let scan t ~low ~high = Lsm.scan t ~low ~high ()
  let barrier _ = ()
  let durable_on_ack = true
end

module Flsm_engine : ENGINE = struct
  open Evendb_flsm

  type t = Flsm.t

  let name = "flsm-sync"

  let config =
    {
      Flsm.Config.default with
      memtable_bytes = 2 * 1024;
      guard_bytes = 8 * 1024;
      sync_writes = true;
    }

  let open_ env = Flsm.open_ ~config env
  let close = Flsm.close
  let put = Flsm.put
  let delete = Flsm.delete
  let get = Flsm.get
  let scan t ~low ~high = Flsm.scan t ~low ~high ()
  let barrier _ = ()
  let durable_on_ack = true
end

let evendb_sync = (module Evendb_sync : ENGINE)
let evendb_async = (module Evendb_async : ENGINE)
let lsm_sync = (module Lsm_engine : ENGINE)
let flsm_sync = (module Flsm_engine : ENGINE)
let all_engines = [ evendb_sync; evendb_async; lsm_sync; flsm_sync ]

(* ------------------------------------------------------------------ *)
(* Workload recording                                                  *)

(* One recorded mutation. [s]/[l] bracket its journal footprint; an op
   is "attempted" at crash point k when s < k (some trace may exist)
   and "required" once durable_at <= k. *)
type record = {
  r_key : string;
  r_seq : int;
  r_value : string option; (* None = delete *)
  r_s : int;
  mutable r_durable_at : int;
}

let key_of i = Printf.sprintf "k%04d" i
let value_of seq = Printf.sprintf "v%08d" seq

let seq_of_value v =
  if String.length v = 9 && v.[0] = 'v' then int_of_string_opt (String.sub v 1 8) else None

type result = {
  engine : string;
  mode : Backend.crash_mode;
  ops_run : int;
  crash_points : int;
  violations : (int * string) list;
}

let mode_name = function
  | Backend.Drop_unsynced -> "drop"
  | Backend.Reorder_unsynced seed -> Printf.sprintf "reorder:%d" seed

(* The per-key persistence contract at crash point [k]: the recovered
   value must be at least as new as the newest durable mutation and no
   newer than anything attempted. *)
let check_key ~by_seq ~records ~k key observed =
  let ops = List.filter (fun r -> r.r_key = key) records in
  let attempted = List.filter (fun r -> r.r_s < k) ops in
  let required =
    List.fold_left
      (fun acc r ->
        if r.r_durable_at <= k then
          match acc with Some b when b.r_seq > r.r_seq -> acc | _ -> Some r
        else acc)
      None attempted
  in
  let floor_seq = match required with Some r -> r.r_seq | None -> -1 in
  match observed with
  | Some v -> (
    match seq_of_value v with
    | None -> Some (Printf.sprintf "%s: unparseable value %S" key v)
    | Some seq -> (
      match Hashtbl.find_opt by_seq seq with
      | None -> Some (Printf.sprintf "%s: value %S matches no operation" key v)
      | Some r ->
        if r.r_key <> key then
          Some (Printf.sprintf "%s: value %S belongs to key %s" key v r.r_key)
        else if r.r_value = None then
          Some (Printf.sprintf "%s: tombstone seq %d served as a value" key seq)
        else if r.r_s >= k then
          Some (Printf.sprintf "%s: value seq %d from an operation after the crash" key seq)
        else if seq < floor_seq then
          Some
            (Printf.sprintf "%s: lost durable write — serves seq %d, checkpointed seq %d" key
               seq floor_seq)
        else None))
  | None -> (
    match required with
    | None -> None
    | Some r when r.r_value = None -> None
    | Some r ->
      (* A newer attempted delete explains the absence. *)
      if List.exists (fun o -> o.r_seq > r.r_seq && o.r_value = None) attempted then None
      else
        Some
          (Printf.sprintf "%s: durable write lost — seq %d (checkpointed) missing" key r.r_seq)
    )

let explore (module E : ENGINE) ?(ops = 200) ?(keys = 24) ?(barrier_every = 40) ?(seed = 1)
    ?(scrub = true) ~mode () =
  let journal, packed = Backend.journaled_memory () in
  let env = Env.of_backend packed in
  let records = ref [] in
  let by_seq = Hashtbl.create (ops * 2) in
  let record r =
    records := r :: !records;
    Hashtbl.replace by_seq r.r_seq r
  in
  let jlen () = Backend.journal_length journal in
  (* Run the workload, journaling everything including open and close. *)
  let db = E.open_ env in
  let rng = Rng.create seed in
  let seq = ref 0 in
  let barrier () =
    E.barrier db;
    let l = jlen () in
    List.iter (fun r -> if r.r_durable_at > l then r.r_durable_at <- l) !records
  in
  for i = 1 to ops do
    let key = key_of (Rng.int rng keys) in
    let s = jlen () in
    let roll = Rng.int rng 10 in
    if roll < 7 then begin
      incr seq;
      let v = value_of !seq in
      E.put db key v;
      record
        {
          r_key = key;
          r_seq = !seq;
          r_value = Some v;
          r_s = s;
          r_durable_at = (if E.durable_on_ack then jlen () else max_int);
        }
    end
    else if roll < 9 then begin
      incr seq;
      E.delete db key;
      record
        {
          r_key = key;
          r_seq = !seq;
          r_value = None;
          r_s = s;
          r_durable_at = (if E.durable_on_ack then jlen () else max_int);
        }
    end
    else ignore (E.scan db ~low:(key_of 0) ~high:(key_of keys));
    if barrier_every > 0 && i mod barrier_every = 0 then barrier ()
  done;
  barrier ();
  E.close db;
  let total = jlen () in
  let records = !records in
  let violations = ref [] in
  let violate k msg = violations := (k, Printf.sprintf "[%s] %s" E.name msg) :: !violations in
  for k = 0 to total do
    let env_k = Env.of_backend (Backend.replay_prefix journal ~mode k) in
    match E.open_ env_k with
    | exception exn -> violate k (Printf.sprintf "recovery failed: %s" (Printexc.to_string exn))
    | db2 ->
      (try
         (* Point reads. *)
         for i = 0 to keys - 1 do
           let key = key_of i in
           match E.get db2 key with
           | observed -> (
             match check_key ~by_seq ~records ~k key observed with
             | Some msg -> violate k msg
             | None -> ())
           | exception exn ->
             violate k (Printf.sprintf "get %s raised %s" key (Printexc.to_string exn))
         done;
         (* Scan: sorted, duplicate-free, same per-key bounds. *)
         (match E.scan db2 ~low:(key_of 0) ~high:(key_of keys) with
         | pairs ->
           let rec sorted = function
             | (a, _) :: ((b, _) :: _ as rest) ->
               if String.compare a b >= 0 then
                 violate k (Printf.sprintf "scan unsorted/duplicate at %s >= %s" a b);
               sorted rest
             | _ -> ()
           in
           sorted pairs;
           List.iter
             (fun (key, v) ->
               match check_key ~by_seq ~records ~k key (Some v) with
               | Some msg -> violate k ("scan: " ^ msg)
               | None -> ())
             pairs;
           for i = 0 to keys - 1 do
             let key = key_of i in
             if not (List.mem_assoc key pairs) then
               match check_key ~by_seq ~records ~k key None with
               | Some msg -> violate k ("scan: " ^ msg)
               | None -> ()
           done
         | exception exn -> violate k (Printf.sprintf "scan raised %s" (Printexc.to_string exn)));
         (* Usability: the recovered store must accept new writes. *)
         (try
            E.put db2 "zz_probe" "alive";
            match E.get db2 "zz_probe" with
            | Some "alive" -> ()
            | other ->
              violate k
                (Printf.sprintf "probe write not readable: %s"
                   (match other with Some v -> v | None -> "missing"))
          with exn -> violate k (Printf.sprintf "probe write raised %s" (Printexc.to_string exn)))
       with exn -> violate k (Printf.sprintf "checks raised %s" (Printexc.to_string exn)));
      (try E.close db2
       with exn -> violate k (Printf.sprintf "close raised %s" (Printexc.to_string exn)));
      if scrub then
        List.iter
          (fun (f : Scrub.finding) ->
            let tolerated =
              match (f.f_kind, mode) with
              (* Only a reordering disk can tear a record mid-log; under
                 Drop_unsynced every surviving log is a clean prefix. *)
              | Scrub.Log_garbage, Backend.Reorder_unsynced _ -> true
              | Scrub.Log_garbage, Backend.Drop_unsynced -> false
              | _ -> f.f_severity = Scrub.Warning
            in
            if not tolerated then
              violate k
                (Printf.sprintf "scrub: %s: %s" f.f_file f.f_detail))
          (Scrub.scrub env_k).Scrub.findings
  done;
  {
    engine = E.name;
    mode;
    ops_run = ops;
    crash_points = total + 1;
    violations = List.rev !violations;
  }

let pp_result ppf r =
  Format.fprintf ppf "%s/%s: %d ops, %d crash points, %d violations@." r.engine
    (mode_name r.mode) r.ops_run r.crash_points (List.length r.violations);
  List.iter (fun (k, msg) -> Format.fprintf ppf "  @@%d %s@." k msg) r.violations

(* ------------------------------------------------------------------ *)
(* Pair exploration: primary + replica, crash either side anywhere     *)

module Repl = Evendb_repl.Repl

type pair_result = {
  pair_seed : int;
  pair_ops : int;
  primary_points : int;
  replica_points : int;
  pair_violations : (string * string) list;
}

(* Same shrunk thresholds as the single-node engines, plus a small
   shipping window and no real backoff sleep (the injected faults are
   deterministic; waiting between retries would only slow the sweep). *)
let pair_config =
  let open Evendb_core in
  {
    Config.default with
    persistence = Config.Sync;
    max_chunk_bytes = 8 * 1024;
    munk_rebalance_bytes = 6 * 1024;
    munk_rebalance_appended = 64;
    funk_log_limit_no_munk = 2 * 1024;
    funk_log_limit_with_munk = 8 * 1024;
    munk_cache_capacity = 4;
    repl_window = 8;
    repl_retry_backoff_ns = 0;
  }

let pair_scan_high = "zzzz"

let explore_pair ?(ops = 60) ?(keys = 24) ?(seed = 1) ?(fault_rate_ppm = 120_000) () =
  let open Evendb_core in
  let config = pair_config in
  let pjournal, ppacked = Backend.journaled_memory () in
  let rjournal, rpacked = Backend.journaled_memory () in
  let penv = Env.of_backend ppacked in
  let renv = Env.of_backend rpacked in
  let pjlen () = Backend.journal_length pjournal in
  let rjlen () = Backend.journal_length rjournal in
  let records = ref [] in
  let by_seq = Hashtbl.create (ops * 2) in
  let record r =
    records := r :: !records;
    Hashtbl.replace by_seq r.r_seq r
  in
  (* Timeline samples: (primary journal, replica journal) after each
     step. Sample 0 is the pre-open empty pair; a crash point p on the
     primary inside step i pairs with the replica frozen at the previous
     sample (shipping for step i only runs after the primary op acks),
     and a replica crash point r inside step i's shipping pairs with the
     primary having completed the step. *)
  let samples = ref [ (0, 0) ] in
  let sample () = samples := (pjlen (), rjlen ()) :: !samples in
  let source = Repl.Source.create () in
  let pdb = Db.open_ ~config penv in
  Repl.Source.attach source pdb;
  let follower = Repl.Follower.open_ ~config renv in
  let link = Repl.Link.create ~fault_seed:seed ~fault_rate_ppm () in
  let ship = Repl.Ship.create ~config source follower link in
  sample ();
  let rng = Rng.create seed in
  let seq = ref 0 in
  for _ = 1 to ops do
    let key = key_of (Rng.int rng keys) in
    let s = pjlen () in
    incr seq;
    if Rng.int rng 10 < 8 then begin
      let v = value_of !seq in
      Db.put pdb key v;
      record { r_key = key; r_seq = !seq; r_value = Some v; r_s = s; r_durable_at = pjlen () }
    end
    else begin
      Db.delete pdb key;
      record { r_key = key; r_seq = !seq; r_value = None; r_s = s; r_durable_at = pjlen () }
    end;
    Repl.Ship.pump ship;
    sample ()
  done;
  let final_state = Db.scan pdb ~low:"" ~high:pair_scan_high () in
  Repl.Follower.close follower;
  Db.close pdb;
  sample ();
  let records = !records in
  let samples = Array.of_list (List.rev !samples) in
  let violations = ref [] in
  let violate side k msg = violations := (Printf.sprintf "%s@%d" side k, msg) :: !violations in
  let safely f = try f () with _ -> () in
  let mode = Backend.Drop_unsynced in
  (* Everything a recovered replica serves must map to a write the
     primary acked strictly before the paired primary crash point — the
     stream is fed post-ack, so any other value means unacked (or
     invented) bytes leaked into the change-stream. *)
  let check_serves_only_acked fdb ~p_bound ~side ~at =
    if Repl.Follower.applied_lsn fdb > Repl.Source.head_lsn source then
      violate side at "watermark beyond the stream head";
    let db = Repl.Follower.db fdb in
    for i = 0 to keys - 1 do
      let key = key_of i in
      match Db.get db key with
      | None -> ()
      | Some v -> (
        match seq_of_value v with
        | None -> violate side at (Printf.sprintf "replica: %s: unparseable value %S" key v)
        | Some sq -> (
          match Hashtbl.find_opt by_seq sq with
          | None ->
            violate side at (Printf.sprintf "replica: %s: value %S matches no operation" key v)
          | Some r ->
            if r.r_key <> key then
              violate side at (Printf.sprintf "replica: %s: value %S belongs to key %s" key v r.r_key)
            else if r.r_value = None then
              violate side at (Printf.sprintf "replica: %s: tombstone seq %d served as a value" key sq)
            else if r.r_s >= p_bound then
              violate side at
                (Printf.sprintf "replica: %s: serves seq %d, not acked by the primary before the crash"
                   key sq)))
      | exception exn ->
        violate side at (Printf.sprintf "replica: get %s raised %s" key (Printexc.to_string exn))
    done
  in
  (* Primary dies at journal prefix [p]; the replica froze at [r].
     Recover both, promote, and require the promoted store to satisfy
     the single-node durability oracle at [p] — failover loses nothing
     the dead primary had acked. *)
  let check_primary_crash ~p ~r =
    let penv_k = Env.of_backend (Backend.replay_prefix pjournal ~mode p) in
    let renv_k = Env.of_backend (Backend.replay_prefix rjournal ~mode r) in
    match Repl.Follower.open_ ~config renv_k with
    | exception exn ->
      violate "primary" p
        (Printf.sprintf "replica (at %d) recovery failed: %s" r (Printexc.to_string exn))
    | f2 -> (
      check_serves_only_acked f2 ~p_bound:p ~side:"primary" ~at:p;
      match Db.open_ ~config penv_k with
      | exception exn ->
        safely (fun () -> Repl.Follower.close f2);
        violate "primary" p (Printf.sprintf "primary recovery failed: %s" (Printexc.to_string exn))
      | pdb2 ->
        (try
           let promoted = Repl.promote ~primary:pdb2 f2 in
           (match Db.put pdb2 "kfence" "x" with
           | () -> violate "primary" p "old primary accepted a write after fencing"
           | exception Db.Fenced -> ()
           | exception exn ->
             violate "primary" p
               (Printf.sprintf "fenced write raised %s, not Fenced" (Printexc.to_string exn)));
           for i = 0 to keys - 1 do
             let key = key_of i in
             match Db.get promoted key with
             | observed -> (
               match check_key ~by_seq ~records ~k:p key observed with
               | Some msg -> violate "primary" p ("promoted: " ^ msg)
               | None -> ())
             | exception exn ->
               violate "primary" p
                 (Printf.sprintf "promoted: get %s raised %s" key (Printexc.to_string exn))
           done;
           (try
              Db.put promoted "zz_probe" "alive";
              if Db.get promoted "zz_probe" <> Some "alive" then
                violate "primary" p "promoted probe write not readable"
            with exn ->
              violate "primary" p (Printf.sprintf "promoted probe raised %s" (Printexc.to_string exn)));
           Db.close promoted
         with exn ->
           violate "primary" p (Printf.sprintf "promotion raised %s" (Printexc.to_string exn));
           safely (fun () -> Repl.Follower.close f2));
        safely (fun () -> Db.close pdb2);
        List.iter
          (fun (f : Scrub.finding) ->
            let tolerated = f.f_severity = Scrub.Warning && f.f_kind <> Scrub.Log_garbage in
            if not tolerated then
              violate "primary" p (Printf.sprintf "promoted scrub: %s: %s" f.f_file f.f_detail))
          (Scrub.scrub renv_k).Scrub.findings)
  in
  (* Replica dies at journal prefix [r] while the primary (at [p])
     lives on. Recover the replica, resume shipping from the still-live
     source across a fresh faulty link, and require convergence to the
     primary's final state — the watermark is monotonic and redelivery
     idempotent, so a replica crash never loses or duplicates stream
     records. *)
  let check_replica_crash ~p ~r =
    let renv_k = Env.of_backend (Backend.replay_prefix rjournal ~mode r) in
    match Repl.Follower.open_ ~config renv_k with
    | exception exn ->
      violate "replica" r (Printf.sprintf "recovery failed: %s" (Printexc.to_string exn))
    | f2 ->
      check_serves_only_acked f2 ~p_bound:p ~side:"replica" ~at:r;
      let w0 = Repl.Follower.applied_lsn f2 in
      (try
         let link2 = Repl.Link.create ~fault_seed:(seed + r) ~fault_rate_ppm () in
         let ship2 = Repl.Ship.create ~config source f2 link2 in
         Repl.Ship.pump ship2;
         if Repl.Follower.applied_lsn f2 < w0 then violate "replica" r "watermark went backwards";
         if Repl.Ship.lag ship2 <> 0 then violate "replica" r "resume pump left lag";
         let got = Db.scan (Repl.Follower.db f2) ~low:"" ~high:pair_scan_high () in
         if got <> final_state then
           violate "replica" r
             (Printf.sprintf "resumed replica diverges from the primary (%d vs %d pairs)"
                (List.length got) (List.length final_state))
       with exn -> violate "replica" r (Printf.sprintf "resume raised %s" (Printexc.to_string exn)));
      safely (fun () -> Repl.Follower.close f2)
  in
  for i = 1 to Array.length samples - 1 do
    let p_prev, r_prev = samples.(i - 1) in
    let p_cur, r_cur = samples.(i) in
    for p = p_prev + 1 to p_cur do
      check_primary_crash ~p ~r:r_prev
    done;
    for r = r_prev + 1 to r_cur do
      check_replica_crash ~p:p_cur ~r
    done
  done;
  {
    pair_seed = seed;
    pair_ops = ops;
    primary_points = pjlen ();
    replica_points = rjlen ();
    pair_violations = List.rev !violations;
  }

let pp_pair_result ppf r =
  Format.fprintf ppf
    "pair seed %d: %d ops, %d primary + %d replica crash points, %d violations@." r.pair_seed
    r.pair_ops r.primary_points r.replica_points
    (List.length r.pair_violations);
  List.iter (fun (at, msg) -> Format.fprintf ppf "  %s %s@." at msg) r.pair_violations
