open Evendb_util
open Evendb_storage

module type ENGINE = sig
  type t

  val name : string
  val open_ : Env.t -> t
  val close : t -> unit
  val put : t -> string -> string -> unit
  val delete : t -> string -> unit
  val get : t -> string -> string option
  val scan : t -> low:string -> high:string -> (string * string) list
  val barrier : t -> unit
  val durable_on_ack : bool
end

(* Thresholds shrunk so flushes, rebalances, splits and compactions all
   fire within a few hundred operations — the structurally interesting
   crash windows. *)

module Evendb_engine (M : sig
  val mode : Evendb_core.Config.persistence
end) : ENGINE = struct
  open Evendb_core

  type t = Db.t

  let name =
    match M.mode with Config.Sync -> "evendb-sync" | Config.Async -> "evendb-async"

  let config =
    {
      Config.default with
      persistence = M.mode;
      max_chunk_bytes = 8 * 1024;
      munk_rebalance_bytes = 6 * 1024;
      munk_rebalance_appended = 64;
      funk_log_limit_no_munk = 2 * 1024;
      funk_log_limit_with_munk = 8 * 1024;
      munk_cache_capacity = 4;
    }

  let open_ env = Db.open_ ~config env
  let close = Db.close
  let put = Db.put
  let delete = Db.delete
  let get = Db.get
  let scan t ~low ~high = Db.scan t ~low ~high ()
  let barrier = Db.checkpoint
  let durable_on_ack = match M.mode with Config.Sync -> true | Config.Async -> false
end

module Evendb_sync = Evendb_engine (struct
  let mode = Evendb_core.Config.Sync
end)

module Evendb_async = Evendb_engine (struct
  let mode = Evendb_core.Config.Async
end)

module Lsm_engine : ENGINE = struct
  open Evendb_lsm

  type t = Lsm.t

  let name = "lsm-sync"

  let config =
    {
      Lsm.Config.default with
      memtable_bytes = 2 * 1024;
      level_base_bytes = 8 * 1024;
      target_file_bytes = 4 * 1024;
      sync_writes = true;
    }

  let open_ env = Lsm.open_ ~config env
  let close = Lsm.close
  let put = Lsm.put
  let delete = Lsm.delete
  let get = Lsm.get
  let scan t ~low ~high = Lsm.scan t ~low ~high ()
  let barrier _ = ()
  let durable_on_ack = true
end

module Flsm_engine : ENGINE = struct
  open Evendb_flsm

  type t = Flsm.t

  let name = "flsm-sync"

  let config =
    {
      Flsm.Config.default with
      memtable_bytes = 2 * 1024;
      guard_bytes = 8 * 1024;
      sync_writes = true;
    }

  let open_ env = Flsm.open_ ~config env
  let close = Flsm.close
  let put = Flsm.put
  let delete = Flsm.delete
  let get = Flsm.get
  let scan t ~low ~high = Flsm.scan t ~low ~high ()
  let barrier _ = ()
  let durable_on_ack = true
end

let evendb_sync = (module Evendb_sync : ENGINE)
let evendb_async = (module Evendb_async : ENGINE)
let lsm_sync = (module Lsm_engine : ENGINE)
let flsm_sync = (module Flsm_engine : ENGINE)
let all_engines = [ evendb_sync; evendb_async; lsm_sync; flsm_sync ]

(* ------------------------------------------------------------------ *)
(* Workload recording                                                  *)

(* One recorded mutation. [s]/[l] bracket its journal footprint; an op
   is "attempted" at crash point k when s < k (some trace may exist)
   and "required" once durable_at <= k. *)
type record = {
  r_key : string;
  r_seq : int;
  r_value : string option; (* None = delete *)
  r_s : int;
  mutable r_durable_at : int;
}

let key_of i = Printf.sprintf "k%04d" i
let value_of seq = Printf.sprintf "v%08d" seq

let seq_of_value v =
  if String.length v = 9 && v.[0] = 'v' then int_of_string_opt (String.sub v 1 8) else None

type result = {
  engine : string;
  mode : Backend.crash_mode;
  ops_run : int;
  crash_points : int;
  violations : (int * string) list;
}

let mode_name = function
  | Backend.Drop_unsynced -> "drop"
  | Backend.Reorder_unsynced seed -> Printf.sprintf "reorder:%d" seed

(* The per-key persistence contract at crash point [k]: the recovered
   value must be at least as new as the newest durable mutation and no
   newer than anything attempted. *)
let check_key ~by_seq ~records ~k key observed =
  let ops = List.filter (fun r -> r.r_key = key) records in
  let attempted = List.filter (fun r -> r.r_s < k) ops in
  let required =
    List.fold_left
      (fun acc r ->
        if r.r_durable_at <= k then
          match acc with Some b when b.r_seq > r.r_seq -> acc | _ -> Some r
        else acc)
      None attempted
  in
  let floor_seq = match required with Some r -> r.r_seq | None -> -1 in
  match observed with
  | Some v -> (
    match seq_of_value v with
    | None -> Some (Printf.sprintf "%s: unparseable value %S" key v)
    | Some seq -> (
      match Hashtbl.find_opt by_seq seq with
      | None -> Some (Printf.sprintf "%s: value %S matches no operation" key v)
      | Some r ->
        if r.r_key <> key then
          Some (Printf.sprintf "%s: value %S belongs to key %s" key v r.r_key)
        else if r.r_value = None then
          Some (Printf.sprintf "%s: tombstone seq %d served as a value" key seq)
        else if r.r_s >= k then
          Some (Printf.sprintf "%s: value seq %d from an operation after the crash" key seq)
        else if seq < floor_seq then
          Some
            (Printf.sprintf "%s: lost durable write — serves seq %d, checkpointed seq %d" key
               seq floor_seq)
        else None))
  | None -> (
    match required with
    | None -> None
    | Some r when r.r_value = None -> None
    | Some r ->
      (* A newer attempted delete explains the absence. *)
      if List.exists (fun o -> o.r_seq > r.r_seq && o.r_value = None) attempted then None
      else
        Some
          (Printf.sprintf "%s: durable write lost — seq %d (checkpointed) missing" key r.r_seq)
    )

let explore (module E : ENGINE) ?(ops = 200) ?(keys = 24) ?(barrier_every = 40) ?(seed = 1)
    ?(scrub = true) ~mode () =
  let journal, packed = Backend.journaled_memory () in
  let env = Env.of_backend packed in
  let records = ref [] in
  let by_seq = Hashtbl.create (ops * 2) in
  let record r =
    records := r :: !records;
    Hashtbl.replace by_seq r.r_seq r
  in
  let jlen () = Backend.journal_length journal in
  (* Run the workload, journaling everything including open and close. *)
  let db = E.open_ env in
  let rng = Rng.create seed in
  let seq = ref 0 in
  let barrier () =
    E.barrier db;
    let l = jlen () in
    List.iter (fun r -> if r.r_durable_at > l then r.r_durable_at <- l) !records
  in
  for i = 1 to ops do
    let key = key_of (Rng.int rng keys) in
    let s = jlen () in
    let roll = Rng.int rng 10 in
    if roll < 7 then begin
      incr seq;
      let v = value_of !seq in
      E.put db key v;
      record
        {
          r_key = key;
          r_seq = !seq;
          r_value = Some v;
          r_s = s;
          r_durable_at = (if E.durable_on_ack then jlen () else max_int);
        }
    end
    else if roll < 9 then begin
      incr seq;
      E.delete db key;
      record
        {
          r_key = key;
          r_seq = !seq;
          r_value = None;
          r_s = s;
          r_durable_at = (if E.durable_on_ack then jlen () else max_int);
        }
    end
    else ignore (E.scan db ~low:(key_of 0) ~high:(key_of keys));
    if barrier_every > 0 && i mod barrier_every = 0 then barrier ()
  done;
  barrier ();
  E.close db;
  let total = jlen () in
  let records = !records in
  let violations = ref [] in
  let violate k msg = violations := (k, Printf.sprintf "[%s] %s" E.name msg) :: !violations in
  for k = 0 to total do
    let env_k = Env.of_backend (Backend.replay_prefix journal ~mode k) in
    match E.open_ env_k with
    | exception exn -> violate k (Printf.sprintf "recovery failed: %s" (Printexc.to_string exn))
    | db2 ->
      (try
         (* Point reads. *)
         for i = 0 to keys - 1 do
           let key = key_of i in
           match E.get db2 key with
           | observed -> (
             match check_key ~by_seq ~records ~k key observed with
             | Some msg -> violate k msg
             | None -> ())
           | exception exn ->
             violate k (Printf.sprintf "get %s raised %s" key (Printexc.to_string exn))
         done;
         (* Scan: sorted, duplicate-free, same per-key bounds. *)
         (match E.scan db2 ~low:(key_of 0) ~high:(key_of keys) with
         | pairs ->
           let rec sorted = function
             | (a, _) :: ((b, _) :: _ as rest) ->
               if String.compare a b >= 0 then
                 violate k (Printf.sprintf "scan unsorted/duplicate at %s >= %s" a b);
               sorted rest
             | _ -> ()
           in
           sorted pairs;
           List.iter
             (fun (key, v) ->
               match check_key ~by_seq ~records ~k key (Some v) with
               | Some msg -> violate k ("scan: " ^ msg)
               | None -> ())
             pairs;
           for i = 0 to keys - 1 do
             let key = key_of i in
             if not (List.mem_assoc key pairs) then
               match check_key ~by_seq ~records ~k key None with
               | Some msg -> violate k ("scan: " ^ msg)
               | None -> ()
           done
         | exception exn -> violate k (Printf.sprintf "scan raised %s" (Printexc.to_string exn)));
         (* Usability: the recovered store must accept new writes. *)
         (try
            E.put db2 "zz_probe" "alive";
            match E.get db2 "zz_probe" with
            | Some "alive" -> ()
            | other ->
              violate k
                (Printf.sprintf "probe write not readable: %s"
                   (match other with Some v -> v | None -> "missing"))
          with exn -> violate k (Printf.sprintf "probe write raised %s" (Printexc.to_string exn)))
       with exn -> violate k (Printf.sprintf "checks raised %s" (Printexc.to_string exn)));
      (try E.close db2
       with exn -> violate k (Printf.sprintf "close raised %s" (Printexc.to_string exn)));
      if scrub then
        List.iter
          (fun (f : Scrub.finding) ->
            let tolerated =
              match (f.f_kind, mode) with
              (* Only a reordering disk can tear a record mid-log; under
                 Drop_unsynced every surviving log is a clean prefix. *)
              | Scrub.Log_garbage, Backend.Reorder_unsynced _ -> true
              | Scrub.Log_garbage, Backend.Drop_unsynced -> false
              | _ -> f.f_severity = Scrub.Warning
            in
            if not tolerated then
              violate k
                (Printf.sprintf "scrub: %s: %s" f.f_file f.f_detail))
          (Scrub.scrub env_k).Scrub.findings
  done;
  {
    engine = E.name;
    mode;
    ops_run = ops;
    crash_points = total + 1;
    violations = List.rev !violations;
  }

let pp_result ppf r =
  Format.fprintf ppf "%s/%s: %d ops, %d crash points, %d violations@." r.engine
    (mode_name r.mode) r.ops_run r.crash_points (List.length r.violations);
  List.iter (fun (k, msg) -> Format.fprintf ppf "  @@%d %s@." k msg) r.violations
