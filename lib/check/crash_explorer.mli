(** Exhaustive crash-point exploration.

    Runs a deterministic mixed workload against an engine on a
    journaled in-memory backend ({!Backend.journaled_memory}), then for
    {e every} prefix of the mutation journal reconstructs the
    filesystem as if power had failed right there
    ({!Backend.replay_prefix}), recovers, and checks the persistence
    contract:

    - every write that was acked {e and} covered by a durability
      barrier (sync-mode ack, or an explicit checkpoint in async mode)
      is present;
    - no key serves a value older than its durability bound or newer
      than anything attempted — in particular an acked-and-synced
      delete never resurrects;
    - scans return sorted, duplicate-free results obeying the same
      per-key bounds;
    - the recovered store accepts and serves new writes;
    - the recovered directory passes {!Scrub} with no errors (log
      garbage is tolerated only where the crash mode can tear records).

    Two crash models are explored: [Drop_unsynced] (each file keeps
    exactly its synced prefix) and [Reorder_unsynced] (each file
    independently keeps a seeded random slice of its unsynced suffix —
    a disk that reorders writes across files). *)

open Evendb_storage

(** A key-value engine under exploration. *)
module type ENGINE = sig
  type t

  val name : string
  val open_ : Env.t -> t
  val close : t -> unit
  val put : t -> string -> string -> unit
  val delete : t -> string -> unit
  val get : t -> string -> string option
  val scan : t -> low:string -> high:string -> (string * string) list

  val barrier : t -> unit
  (** Make everything acked so far durable (checkpoint / fsync). *)

  val durable_on_ack : bool
  (** [true] when an acked write is already durable (sync modes);
      [false] when durability waits for the next {!barrier}. *)
end

val evendb_sync : (module ENGINE)
val evendb_async : (module ENGINE)
(** EvenDB with test-scaled thresholds, in both persistence modes. *)

val lsm_sync : (module ENGINE)
val flsm_sync : (module ENGINE)

val all_engines : (module ENGINE) list

type result = {
  engine : string;
  mode : Backend.crash_mode;
  ops_run : int;  (** workload operations executed *)
  crash_points : int;  (** journal prefixes explored (ops_journal + 1) *)
  violations : (int * string) list;
      (** (crash point, description); empty = contract holds *)
}

val explore :
  (module ENGINE) ->
  ?ops:int ->
  ?keys:int ->
  ?barrier_every:int ->
  ?seed:int ->
  ?scrub:bool ->
  mode:Backend.crash_mode ->
  unit ->
  result
(** Run the workload ([ops] operations over [keys] keys, ~70% put /
    20% delete / 10% scan, an explicit {!ENGINE.barrier} every
    [barrier_every] ops) and explore every crash point. Defaults:
    200 ops, 24 keys, barrier every 40 ops, seed 1, scrub on.
    Violations abort nothing — the full list comes back for reporting. *)

val pp_result : Format.formatter -> result -> unit

(** {1 Pair exploration}

    A Sync primary replicating to a follower over a fault-injected
    link, with {e either} node crashed at {e every} point of its
    mutation journal ([Drop_unsynced] model):

    - primary crash at [p], replica frozen at its last shipped state:
      recover both, {!Evendb_repl.Repl.promote} — the promoted store
      must satisfy the single-node durability oracle at [p] (failover
      loses nothing acked), the fenced old primary must refuse writes,
      and the promoted directory must scrub clean;
    - replica crash at [r]: the recovered replica must serve only data
      the primary had acked (nothing unacked ever leaks into the
      change-stream), and resuming shipment from the watermark across a
      fresh faulty link must converge to the primary's final state
      (monotonic watermark, idempotent redelivery). *)

type pair_result = {
  pair_seed : int;
  pair_ops : int;
  primary_points : int;  (** primary journal prefixes explored *)
  replica_points : int;  (** replica journal prefixes explored *)
  pair_violations : (string * string) list;
      (** (["primary@p"] or ["replica@r"], description) *)
}

val explore_pair :
  ?ops:int -> ?keys:int -> ?seed:int -> ?fault_rate_ppm:int -> unit -> pair_result
(** Defaults: 60 ops (80% put / 20% delete) over 24 keys, seed 1, link
    fault rate 120000 ppm. *)

val pp_pair_result : Format.formatter -> pair_result -> unit
