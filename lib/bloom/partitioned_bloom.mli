(** Partitioned Bloom filter over a funk log (paper §3.1, §5.5).

    "The Bloom filter is partitioned into a handful of filters, each
    summarizing the content of part of the log, limiting sequential
    searches to a small section of the log."

    The log's byte range is covered by consecutive segments of
    [segment_bytes] each; the open tail segment keeps absorbing new
    appends until it fills, then a fresh segment filter is started. A
    lookup returns the segments that may contain the key, newest
    first, so the caller scans only those slices of the log. With
    [segment_bytes = log_size_limit / split_factor] this is the
    paper's k-way split. *)

type t

val create : ?bits_per_key:int -> segment_bytes:int -> expected_keys_per_segment:int -> unit -> t
(** Raises [Invalid_argument] if [segment_bytes <= 0]. *)

val add : t -> key:string -> log_offset:int -> unit
(** Record that a log record for [key] begins at [log_offset]. Offsets
    must be non-decreasing across calls (logs are append-only). Not
    thread-safe with concurrent [add]s; callers hold the chunk's put
    synchronization. *)

val segments_maybe_containing : t -> string -> (int * int) list
(** [segments_maybe_containing t key] is the list of [(start_offset,
    end_offset)] half-open byte ranges (newest first) whose filters
    report a possible match; the tail segment's [end_offset] is
    [max_int] (scan to end of log). An empty list proves the key is
    absent from the log. *)

val may_contain : t -> string -> bool

val segment_count : t -> int
