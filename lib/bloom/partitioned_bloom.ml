type segment = {
  filter : Bloom.t;
  seg_start : int;
  mutable seg_end : int; (* max_int while the segment is still open *)
}

type t = {
  bits_per_key : int;
  segment_bytes : int;
  expected_keys : int;
  mutable segments : segment list; (* newest first *)
}

let create ?(bits_per_key = 10) ~segment_bytes ~expected_keys_per_segment () =
  if segment_bytes <= 0 then invalid_arg "Partitioned_bloom.create: segment_bytes <= 0";
  {
    bits_per_key;
    segment_bytes;
    expected_keys = max 16 expected_keys_per_segment;
    segments = [];
  }

let fresh_segment t seg_start =
  {
    filter = Bloom.create ~bits_per_key:t.bits_per_key t.expected_keys;
    seg_start;
    seg_end = max_int;
  }

let add t ~key ~log_offset =
  let seg =
    match t.segments with
    | head :: _ when log_offset - head.seg_start < t.segment_bytes -> head
    | rest ->
      (match rest with
      | head :: _ -> head.seg_end <- log_offset
      | [] -> ());
      let seg = fresh_segment t log_offset in
      t.segments <- seg :: t.segments;
      seg
  in
  Bloom.add seg.filter key

let segments_maybe_containing t key =
  List.filter_map
    (fun seg ->
      if Bloom.mem seg.filter key then Some (seg.seg_start, seg.seg_end) else None)
    t.segments

let may_contain t key = List.exists (fun seg -> Bloom.mem seg.filter key) t.segments

let segment_count t = List.length t.segments
