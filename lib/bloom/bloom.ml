type t = {
  bits : Bytes.t;
  nbits : int;
  k : int;
}

(* 64-bit FNV-1a; a second independent hash is derived by re-mixing, which
   is enough for double hashing (Kirsch & Mitzenmacher). *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to String.length s - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code (String.unsafe_get s i)))) 0x100000001b3L
  done;
  !h

let remix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let create ?(bits_per_key = 10) n =
  if bits_per_key <= 0 then invalid_arg "Bloom.create: bits_per_key <= 0";
  let n = max 1 n in
  let nbits = max 64 (n * bits_per_key) in
  let nbits = (nbits + 7) / 8 * 8 in
  let k = int_of_float (0.69314718056 *. float_of_int bits_per_key) in
  let k = max 1 (min 30 k) in
  { bits = Bytes.make (nbits / 8) '\000'; nbits; k }

let probes t key f =
  let h1 = fnv1a key in
  let h2 = remix h1 in
  let h = ref h1 in
  for _ = 1 to t.k do
    let bit = Int64.to_int !h land max_int mod t.nbits in
    f bit;
    h := Int64.add !h h2
  done

let set_bit b i =
  let byte = i lsr 3 and off = i land 7 in
  Bytes.unsafe_set b byte (Char.unsafe_chr (Char.code (Bytes.unsafe_get b byte) lor (1 lsl off)))

let get_bit b i =
  let byte = i lsr 3 and off = i land 7 in
  Char.code (Bytes.unsafe_get b byte) land (1 lsl off) <> 0

let add t key = probes t key (fun bit -> set_bit t.bits bit)

let mem t key =
  let ok = ref true in
  probes t key (fun bit -> if not (get_bit t.bits bit) then ok := false);
  !ok

let bit_count t = t.nbits

let fill_ratio t =
  let set = ref 0 in
  for i = 0 to t.nbits - 1 do
    if get_bit t.bits i then incr set
  done;
  float_of_int !set /. float_of_int t.nbits

let serialize t =
  let buf = Buffer.create (Bytes.length t.bits + 8) in
  Evendb_util.Varint.write buf t.nbits;
  Evendb_util.Varint.write buf t.k;
  Buffer.add_bytes buf t.bits;
  Buffer.contents buf

let deserialize s =
  try
    let nbits, pos = Evendb_util.Varint.read s 0 in
    let k, pos = Evendb_util.Varint.read s pos in
    if nbits <= 0 || nbits mod 8 <> 0 || k <= 0 || k > 30 then
      invalid_arg "Bloom.deserialize: bad header";
    let nbytes = nbits / 8 in
    if String.length s - pos <> nbytes then invalid_arg "Bloom.deserialize: size mismatch";
    { bits = Bytes.of_string (String.sub s pos nbytes); nbits; k }
  with Invalid_argument _ -> invalid_arg "Bloom.deserialize: malformed input"
