(** Bloom filter over string keys.

    Standard m-bit filter with [k] probes derived from one 128-bit hash
    by double hashing. Thread-safety: construction (adds) must be
    externally synchronized; queries after construction are safe from
    any domain (the bit array is no longer mutated). *)

type t

val create : ?bits_per_key:int -> int -> t
(** [create ~bits_per_key n] sizes the filter for [n] expected keys
    (default 10 bits/key, ~1% false-positive rate); the probe count is
    derived as [ln 2 * bits_per_key], clamped to [\[1, 30\]]. *)

val add : t -> string -> unit
val mem : t -> string -> bool
val bit_count : t -> int

val fill_ratio : t -> float
(** Fraction of set bits (diagnostic). *)

val serialize : t -> string
val deserialize : string -> t
(** Raises [Invalid_argument] on malformed input. *)
