(* Multi-domain front end: partition the key space into range shards,
   each an independent Db.t on its own flat sub-namespace of the shared
   environment (Env.sub / Backend.prefixed — "s00.", "s01.", ...).

   The store itself is already safe under arbitrary concurrency, but a
   single Db.t serializes structural work (manifest, checkpoints,
   maintenance) behind instance-wide points; disjoint shards remove
   every such point of contact between disjoint key ranges —
   KV-Tandem's scalable-front-end / persistent-tier split at laptop
   scale. Routing is a binary search over the split keys; scans visit
   only the shards their range touches, in key order, so the
   concatenation of per-shard results IS the merged cursor (ranges are
   disjoint and sorted).

   Group commit is the one thing the shards deliberately SHARE: under
   Sync, one committer serves every shard, so concurrent puts routed to
   different shards still coalesce into one batch (the committer fsyncs
   each distinct log in the batch once, and the journal makes the
   2nd..Nth fsync of one transaction nearly free). Per-shard committers
   would fragment the writer population — with uniform keys, d writers
   over d shards degenerate to batches of one, i.e. per-op fsync.

   Consistency: point ops hit exactly one shard and keep the full Db.t
   guarantees (including sync durability through the shared group
   committer). A cross-shard scan is a sequence of per-shard snapshots,
   not one global snapshot — same contract as any range-sharded store
   without a cross-shard transaction layer.

   The split keys are fixed at creation and persisted in a checksummed
   SHARDS file in the root namespace, so every reopen (including
   post-crash recovery) rebuilds the same partition. *)

open Evendb_storage
open Evendb_core

type t = {
  env : Env.t;
  boundaries : string array; (* strictly increasing split keys *)
  shards : Db.t array; (* length = boundaries + 1 *)
  commit_obs : Evendb_obs.Obs.t option; (* shared committer's metrics (Sync only) *)
  closed : bool Atomic.t;
}

let max_shards = 64
let shards_file = "SHARDS"
let shard_prefix i = Printf.sprintf "s%02d." i

(* --- SHARDS metadata: varint count + length-prefixed keys + CRC --- *)

let u32_le_string (crc : int32) =
  String.init 4 (fun i -> Char.chr (Int32.to_int (Int32.shift_right_logical crc (8 * i)) land 0xff))

let u32_le_of_string s pos =
  let b i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let store_boundaries env boundaries =
  let buf = Buffer.create 64 in
  Evendb_util.Varint.write buf (Array.length boundaries);
  Array.iter
    (fun k ->
      Evendb_util.Varint.write buf (String.length k);
      Buffer.add_string buf k)
    boundaries;
  let payload = Buffer.contents buf in
  let tmp = shards_file ^ ".tmp" in
  let file = Env.create env tmp in
  try
    Env.append file payload;
    Env.append file (u32_le_string (Evendb_util.Crc32c.string payload));
    Env.fsync file;
    Env.close_file file;
    Env.rename env ~old_name:tmp ~new_name:shards_file
  with exn ->
    Env.close_file file;
    (try Env.delete env tmp with _ -> ());
    raise exn

let corrupt env detail =
  Env.note_corruption env;
  Evendb_storage.Io_error.raise_corruption ~file:shards_file ~detail

let load_boundaries env =
  if not (Env.exists env shards_file) then None
  else begin
    let data = Env.read_all env shards_file in
    if String.length data < 4 then corrupt env "truncated";
    let payload = String.sub data 0 (String.length data - 4) in
    if Evendb_util.Crc32c.string payload <> u32_le_of_string data (String.length data - 4) then
      corrupt env "bad checksum";
    match
      let n, pos = Evendb_util.Varint.read payload 0 in
      let keys = Array.make n "" in
      let pos = ref pos in
      for i = 0 to n - 1 do
        let len, p = Evendb_util.Varint.read payload !pos in
        if p + len > String.length payload then invalid_arg "short key";
        keys.(i) <- String.sub payload p len;
        pos := p + len
      done;
      keys
    with
    | keys -> Some keys
    | exception Invalid_argument _ -> corrupt env "malformed payload"
  end

let check_boundaries boundaries =
  let n = Array.length boundaries + 1 in
  if n > max_shards then
    invalid_arg (Printf.sprintf "Evendb_shard: %d shards (max %d)" n max_shards);
  Array.iteri
    (fun i k ->
      if i > 0 && boundaries.(i - 1) >= k then
        invalid_arg "Evendb_shard: boundaries must be strictly increasing")
    boundaries

(* ------------------------------------------------------------------ *)

let open_ ?config ?(shared_commit = true) ?(boundaries = []) env =
  let requested = Array.of_list boundaries in
  check_boundaries requested;
  let boundaries =
    match load_boundaries env with
    | Some stored ->
      (* The on-disk partition is authoritative: data already lives in
         its shards' namespaces. Re-specifying a different one is a
         caller bug, not something to silently repartition over. *)
      if Array.length requested > 0 && stored <> requested then
        invalid_arg "Evendb_shard.open_: boundaries differ from the stored partition";
      stored
    | None ->
      store_boundaries env requested;
      requested
  in
  let cfg = match config with Some c -> c | None -> Config.default in
  (* One committer across all shards (see the header): it lives in its
     own Obs so batch/fsync counters aren't double-reported per shard.
     [shared_commit = false] gives each shard its own committer
     instead — the right trade when writers are shard-affine (batches
     would span every shard's log for no coalescing gain; independent
     per-shard commit streams overlap in the kernel). *)
  let committer, commit_obs =
    if shared_commit && cfg.Config.persistence = Config.Sync then begin
      let obs = Evendb_obs.Obs.create () in
      ( Some
          (Group_commit.create ~max_batch:cfg.Config.group_commit_max_batch
             ~max_wait_ns:cfg.Config.group_commit_max_wait_ns obs),
        Some obs )
    end
    else (None, None)
  in
  (* Install the block cache on the parent env before the sub-envs are
     cut: children inherit the parent's cache, so every shard shares
     ONE store-wide budget instead of multiplying it by shard count.
     Per-shard [Db.open_] then sees a cache already present and leaves
     it alone. *)
  Env.install_block_cache env ~capacity_bytes:cfg.Config.block_cache_bytes;
  let shards =
    Array.init
      (Array.length boundaries + 1)
      (fun i -> Db.open_ ~config:cfg ?committer (Env.sub env ~prefix:(shard_prefix i)))
  in
  { env; boundaries; shards; commit_obs; closed = Atomic.make false }

let shard_count t = Array.length t.shards
let boundaries t = Array.to_list t.boundaries
let env t = t.env
let shard t i = t.shards.(i)

(* Index of the shard covering [key]: the number of split keys <= key. *)
let route t key =
  let lo = ref 0 and hi = ref (Array.length t.boundaries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.boundaries.(mid) <= key then lo := mid + 1 else hi := mid
  done;
  !lo

let put t key value = Db.put t.shards.(route t key) key value
let get t key = Db.get t.shards.(route t key) key
let delete t key = Db.delete t.shards.(route t key) key

let scan t ?(limit = max_int) ~low ~high () =
  if low > high || limit <= 0 then []
  else begin
    (* Shards are disjoint, sorted ranges: visiting them in order and
       concatenating per-shard results is the merged cursor. Stop as
       soon as the limit fills — later shards only hold larger keys. *)
    let i1 = route t high in
    let rec go i remaining acc =
      if i > i1 || remaining <= 0 then List.concat (List.rev acc)
      else
        let rows = Db.scan t.shards.(i) ~limit:remaining ~low ~high () in
        go (i + 1) (remaining - List.length rows) (rows :: acc)
    in
    go (route t low) limit []
  end

let maintain t = Array.iter Db.maintain t.shards
let checkpoint t = Array.iter Db.checkpoint t.shards

let close t =
  if not (Atomic.exchange t.closed true) then Array.iter Db.close t.shards

let logical_bytes_written t =
  Array.fold_left (fun acc db -> acc + Db.logical_bytes_written db) 0 t.shards

let chunk_count t = Array.fold_left (fun acc db -> acc + Db.chunk_count db) 0 t.shards

(* Shard 0's attribution instance: per-op frames are domain-local, so
   whichever shard's Db opened the frame receives the charge — but the
   harness wants a single handle. Cross-shard aggregation would need
   merge support in Attr; shard 0 is a representative sample under
   uniform routing. *)
let attr t = Db.attr t.shards.(0)

let metrics_dump t = function
  | `Prometheus ->
    (* The shared committer reports under shard="commit": its batches
       span shards, so charging them to any one shard would lie. *)
    let per_shard =
      Array.to_list (Array.mapi (fun i db -> (string_of_int i, Db.obs db)) t.shards)
    in
    let instances =
      match t.commit_obs with
      | Some obs -> per_shard @ [ ("commit", obs) ]
      | None -> per_shard
    in
    Evendb_obs.Obs.to_prometheus_many ~label:"shard" instances
  | `Json ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\"shards\":{";
    Array.iteri
      (fun i db ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%d\":" i);
        Buffer.add_string buf (Db.metrics_dump db `Json))
      t.shards;
    Buffer.add_char buf '}';
    (match t.commit_obs with
    | Some obs ->
      Buffer.add_string buf ",\"commit\":";
      Buffer.add_string buf (Evendb_obs.Obs.to_json obs)
    | None -> ());
    Buffer.add_char buf '}';
    Buffer.contents buf
