(** Range-sharded front end over independent {!Evendb_core.Db}
    instances.

    [open_ ~boundaries:[k1; ...; k_{n-1}]] partitions the key space
    into [n] shards ([shard 0 = (-inf, k1)], [shard i = [k_i, k_{i+1})],
    [shard n-1 = [k_{n-1}, +inf)]), each a full store — own chunks,
    caches, maintenance, group committer — on a disjoint flat
    sub-namespace ({!Evendb_storage.Env.sub}) of one shared
    environment. Point ops route by key; scans visit the touched
    shards in key order and concatenate (disjoint sorted ranges — the
    concatenation is the merged cursor).

    The partition is persisted in a checksummed [SHARDS] file at the
    namespace root; reopening rebuilds the same shards, and passing
    different [boundaries] over an existing store raises.

    Consistency: point ops keep every single-shard guarantee (atomic,
    sync-durable when configured); a cross-shard scan is a sequence of
    per-shard snapshots, not one global snapshot. *)

open Evendb_storage

type t

val open_ :
  ?config:Evendb_core.Config.t -> ?shared_commit:bool -> ?boundaries:string list -> Env.t -> t
(** [boundaries] are the strictly-increasing split keys (empty = one
    shard). [config] applies to every shard. Raises [Invalid_argument]
    on an unsorted partition, more than 64 shards, or boundaries that
    contradict an existing store's [SHARDS] file.

    [shared_commit] (default [true]) gives all shards one group
    committer, so sync puts routed to different shards coalesce into
    shared fsync batches — the right default when writers spread over
    shards. Pass [false] for per-shard committers when writers are
    shard-affine: batches then never span another shard's log and
    independent per-shard commit streams overlap in the kernel. Only
    meaningful under [Sync] persistence. *)

val close : t -> unit
(** Close every shard. Idempotent. *)

val put : t -> string -> string -> unit
val get : t -> string -> string option
val delete : t -> string -> unit

val scan : t -> ?limit:int -> low:string -> high:string -> unit -> (string * string) list

val maintain : t -> unit
val checkpoint : t -> unit

val shard_count : t -> int
val boundaries : t -> string list
val env : t -> Env.t
(** The shared root environment (aggregate I/O stats live here). *)

val shard : t -> int -> Evendb_core.Db.t
(** Direct access to one shard's store (tests, per-shard stats). *)

val route : t -> string -> int
(** Index of the shard covering the key. *)

val logical_bytes_written : t -> int
val chunk_count : t -> int

val attr : t -> Evendb_obs.Attr.t
(** Shard 0's attribution instance (a representative sample; frames are
    charged to whichever shard ran the op). *)

val metrics_dump : t -> [ `Json | `Prometheus ] -> string
(** [`Prometheus] renders all shards in one valid exposition with a
    [shard="<i>"] label on every sample
    ({!Evendb_obs.Obs.to_prometheus_many}); [`Json] nests one document
    per shard under ["shards"]. *)
