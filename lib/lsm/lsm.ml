open Evendb_util
open Evendb_storage
open Evendb_sstable
open Evendb_log
open Evendb_obs

module K = Kv_iter

module Config = struct
  type t = {
    memtable_bytes : int;
    l0_compaction_trigger : int;
    level_base_bytes : int;
    level_size_multiplier : int;
    target_file_bytes : int;
    bloom_bits_per_key : int;
    sstable_block_bytes : int;
    sync_writes : bool;
    wal_fsync_every : int;
    max_levels : int;
    attr_enabled : bool;
    block_cache_bytes : int;
  }

  let mib = 1024 * 1024

  let default =
    {
      memtable_bytes = 4 * mib;
      l0_compaction_trigger = 4;
      level_base_bytes = 16 * mib;
      level_size_multiplier = 10;
      target_file_bytes = 4 * mib;
      bloom_bits_per_key = 10;
      sstable_block_bytes = 4096;
      sync_writes = false;
      wal_fsync_every = 32768;
      max_levels = 7;
      attr_enabled = true;
      block_cache_bytes = 32 * mib;
    }

  let scaled ?(factor = 64) () =
    if factor <= 0 then invalid_arg "Lsm.Config.scaled: factor <= 0";
    {
      default with
      memtable_bytes = max 4096 (default.memtable_bytes / factor);
      (* Keep L1 a few memtables wide even at small scale, or the tree
         grows unrealistically deep and write amplification explodes
         beyond what RocksDB would show. *)
      level_base_bytes = max 16384 (default.level_base_bytes * 4 / factor);
      target_file_bytes = max 4096 (default.target_file_bytes / factor);
    }
end

type file_meta = {
  fid : int;
  reader : Sstable.Reader.t;
  smallest : string;
  largest : string;
  bytes : int;
  refs : int Atomic.t; (* one per state referencing the file *)
}

type state = {
  mem : Memtable.t;
  imm : Memtable.t option; (* memtable being flushed *)
  levels : file_meta list array; (* 0 = L0 newest first; others by smallest *)
  pins : int Atomic.t; (* 1 for being current + one per active reader *)
  state_retired : bool Atomic.t;
}

type t = {
  env : Env.t;
  cfg : Config.t;
  state : state Atomic.t;
  writer : Mutex.t; (* serializes puts and structural changes *)
  seq : int Atomic.t; (* last assigned sequence number *)
  mutable wal : Log_file.Writer.t;
  mutable wal_gen : int;
  next_fid : int Atomic.t;
  snap_mutex : Mutex.t;
  snapshots : (int, int) Hashtbl.t; (* ticket -> seqno of active scans *)
  mutable next_ticket : int;
  logical_written : int Atomic.t;
  put_count : int Atomic.t;
  closed : bool Atomic.t;
  obs : Obs.t;
  attr : Attr.t; (* per-op tail-latency cause attribution *)
  tm_put : Obs.Timer.t;
  tm_get : Obs.Timer.t;
  tm_delete : Obs.Timer.t;
  tm_scan : Obs.Timer.t;
  ctr_stalls : Obs.Counter.t; (* puts that paid an inline flush/compaction *)
  ctr_wal_appends : Obs.Counter.t;
  ctr_io_errors : Obs.Counter.t; (* Io_errors observed by maintenance paths *)
  (* Per-level shape counters (comparable across the three engines):
     bytes landing in level i (flush/compaction outputs), bytes read
     out of level i as compaction input, and gets served by level i. *)
  lvl_written : Obs.Counter.t array;
  lvl_compacted : Obs.Counter.t array;
  lvl_reads : Obs.Counter.t array;
}

let level_counters obs ~max_levels name =
  Array.init max_levels (fun i -> Obs.counter obs (Printf.sprintf "level%d.%s" i name))

let sst_name fid = Printf.sprintf "lsm_%08d.sst" fid
let wal_name gen = Printf.sprintf "lsm_wal_%08d.log" gen
let manifest_name = "LSM_MANIFEST"

let env t = t.env
let logical_bytes_written t = Atomic.get t.logical_written
let obs t = t.obs
let attr t = t.attr

let metrics_dump t = function
  | `Json -> Obs.to_json t.obs
  | `Prometheus -> Obs.to_prometheus t.obs

let write_amplification t =
  let written = (Io_stats.snapshot (Env.stats t.env)).Io_stats.bytes_written in
  let logical = logical_bytes_written t in
  if logical = 0 then 0.0 else float_of_int written /. float_of_int logical

(* ------------------------------------------------------------------ *)
(* File and state lifecycle                                            *)

let delete_file t fm =
  Env.delete t.env (sst_name fm.fid)

let file_release t fm =
  if Atomic.fetch_and_add fm.refs (-1) = 1 then delete_file t fm

let state_files s = Array.to_list s.levels |> List.concat

let release_state t s =
  if Atomic.fetch_and_add s.pins (-1) = 1 && Atomic.get s.state_retired then
    List.iter (file_release t) (state_files s)

let rec pin_state t =
  let s = Atomic.get t.state in
  ignore (Atomic.fetch_and_add s.pins 1);
  if Atomic.get s.state_retired then begin
    release_state t s;
    Domain.cpu_relax ();
    pin_state t
  end
  else s

(* Publish [s'] as current. Caller holds the writer mutex and must have
   bumped refs of every file included in [s']. *)
let publish t s' =
  let old = Atomic.get t.state in
  Atomic.set t.state s';
  Atomic.set old.state_retired true;
  release_state t old

let fresh_state ~mem ~imm ~levels =
  Array.iter (fun files -> List.iter (fun fm -> ignore (Atomic.fetch_and_add fm.refs 1)) files) levels;
  { mem; imm; levels; pins = Atomic.make 1; state_retired = Atomic.make false }

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)

let store_manifest t levels =
  let buf = Buffer.create 256 in
  Varint.write buf (Atomic.get t.next_fid);
  Varint.write buf t.wal_gen;
  Varint.write buf (Atomic.get t.seq);
  Varint.write buf (Array.length levels);
  Array.iter
    (fun files ->
      Varint.write buf (List.length files);
      List.iter (fun fm -> Varint.write buf fm.fid) files)
    levels;
  let payload = Buffer.contents buf in
  let crc = Crc32c.string payload in
  let tmp = manifest_name ^ ".tmp" in
  let file = Env.create t.env tmp in
  (* Write-tmp-then-rename: a failure leaves the old manifest intact. *)
  try
    Env.append file payload;
    Env.append file
      (String.init 4 (fun i ->
           Char.chr (Int32.to_int (Int32.shift_right_logical crc (8 * i)) land 0xff)));
    Env.fsync file;
    Env.close_file file;
    Env.rename t.env ~old_name:tmp ~new_name:manifest_name
  with exn ->
    Env.close_file file;
    (try Env.delete t.env tmp with _ -> ());
    raise exn

let manifest_corrupt env detail =
  Env.note_corruption env;
  Io_error.raise_corruption ~file:manifest_name ~detail

let load_manifest env =
  if not (Env.exists env manifest_name) then None
  else begin
    let data = Env.read_all env manifest_name in
    if String.length data < 4 then manifest_corrupt env "truncated";
    let payload = String.sub data 0 (String.length data - 4) in
    let stored =
      let b i = Int32.of_int (Char.code data.[String.length data - 4 + i]) in
      Int32.logor (b 0)
        (Int32.logor
           (Int32.shift_left (b 1) 8)
           (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))
    in
    if Crc32c.string payload <> stored then manifest_corrupt env "bad checksum";
    match
      let next_fid, pos = Varint.read payload 0 in
      let wal_gen, pos = Varint.read payload pos in
      let seq, pos = Varint.read payload pos in
      let n_levels, pos = Varint.read payload pos in
      let posr = ref pos in
      let levels =
        Array.init n_levels (fun _ ->
            let n, pos = Varint.read payload !posr in
            posr := pos;
            List.init n (fun _ ->
                let fid, pos = Varint.read payload !posr in
                posr := pos;
                fid))
      in
      (next_fid, wal_gen, seq, levels)
    with
    | m -> Some m
    | exception Invalid_argument _ -> manifest_corrupt env "malformed payload"
  end

(* ------------------------------------------------------------------ *)
(* Building SSTables                                                   *)

let open_file_meta env fid =
  let reader = Sstable.Reader.open_ env (sst_name fid) in
  let smallest = Option.value ~default:"" (Sstable.Reader.first_key reader) in
  let largest = Option.value ~default:"" (Sstable.Reader.last_key reader) in
  let bytes = try Env.size env (sst_name fid) with Not_found -> 0 in
  { fid; reader; smallest; largest; bytes; refs = Atomic.make 0 }

let build_file t it =
  let fid = Atomic.fetch_and_add t.next_fid 1 in
  let builder =
    Sstable.Builder.create t.env ~block_size:t.cfg.sstable_block_bytes
      ~bloom_bits_per_key:t.cfg.bloom_bits_per_key ~with_bloom:true ~name:(sst_name fid)
      ~min_key:"" ()
  in
  (try
     let rec drain () =
       match it () with
       | None -> ()
       | Some e ->
         Sstable.Builder.add builder e;
         drain ()
     in
     drain ();
     Sstable.Builder.finish builder
   with exn ->
     Sstable.Builder.abort builder;
     raise exn);
  open_file_meta t.env fid

(* Split a sorted entry stream into files of ~target bytes, breaking
   only between distinct keys. *)
let build_files t it =
  let files = ref [] in
  let current = ref [] in
  let bytes = ref 0 in
  let last_key = ref None in
  let entry_bytes (e : K.entry) =
    String.length e.key + (match e.value with Some v -> String.length v | None -> 0) + 16
  in
  let flush_current () =
    if !current <> [] then begin
      files := build_file t (K.of_list (List.rev !current)) :: !files;
      current := [];
      bytes := 0
    end
  in
  let rec go () =
    match it () with
    | None -> ()
    | Some e ->
      (match !last_key with
      | Some k when !bytes >= t.cfg.target_file_bytes && not (String.equal k e.K.key) ->
        flush_current ()
      | _ -> ());
      current := e :: !current;
      bytes := !bytes + entry_bytes e;
      last_key := Some e.K.key;
      go ()
  in
  (try
     go ();
     flush_current ()
   with exn ->
     (* No partial output survives a failed multi-file build. *)
     List.iter (delete_file t) !files;
     raise exn);
  List.rev !files

(* ------------------------------------------------------------------ *)
(* Snapshot registry (atomic scans)                                    *)

let register_snapshot t seqno =
  Mutex.lock t.snap_mutex;
  let ticket = t.next_ticket in
  t.next_ticket <- ticket + 1;
  Hashtbl.replace t.snapshots ticket seqno;
  Mutex.unlock t.snap_mutex;
  ticket

let unregister_snapshot t ticket =
  Mutex.lock t.snap_mutex;
  Hashtbl.remove t.snapshots ticket;
  Mutex.unlock t.snap_mutex

let min_snapshot t ~default =
  Mutex.lock t.snap_mutex;
  let m = Hashtbl.fold (fun _ s acc -> min s acc) t.snapshots default in
  Mutex.unlock t.snap_mutex;
  m

(* ------------------------------------------------------------------ *)
(* Flush and compaction (inline on the write path)                     *)

let overlaps fm ~low ~high =
  String.compare fm.smallest high <= 0 && String.compare low fm.largest <= 0

let level_total files = List.fold_left (fun acc fm -> acc + fm.bytes) 0 files

let level_limit t i = t.cfg.level_base_bytes * int_of_float (float_of_int t.cfg.level_size_multiplier ** float_of_int (i - 1))

(* All callers hold the writer mutex, so no put can race a flush: the
   memtable and WAL are frozen for the duration.

   Failure atomicity: build the L0 file and the rotated WAL first, then
   commit through the manifest, and only then publish the new state and
   delete the old WAL. An I/O failure before the manifest write leaves
   the engine exactly as it was (old WAL, old manifest, memtable
   intact) with any partial files removed; a crash after the manifest
   write recovers the new state. *)
let flush_memtable t =
  let s = Atomic.get t.state in
  if not (Memtable.is_empty s.mem) then
    Obs.Trace.with_span (Obs.trace t.obs) ~name:"memtable_flush"
      ~attrs:[ ("bytes", Memtable.byte_size s.mem) ]
      (fun _sp ->
        (* Build the L0 file; mild compaction bounded by active
           snapshots. Readers keep seeing the old state (which still
           holds the memtable) until publication. *)
        let floor = min_snapshot t ~default:(Atomic.get t.seq) in
        let file =
          build_file t
            (K.compact ~min_retained_version:floor ~drop_tombstones:false
               (Memtable.to_iter s.mem))
        in
        let old_wal_gen = t.wal_gen in
        let old_wal = t.wal in
        let new_wal_gen = old_wal_gen + 1 in
        let new_wal =
          try Log_file.Writer.create t.env (wal_name new_wal_gen)
          with exn ->
            delete_file t file;
            raise exn
        in
        let levels = Array.copy s.levels in
        levels.(0) <- file :: levels.(0);
        t.wal_gen <- new_wal_gen;
        t.wal <- new_wal;
        (try store_manifest t levels
         with exn ->
           t.wal_gen <- old_wal_gen;
           t.wal <- old_wal;
           Log_file.Writer.close new_wal;
           (try Env.delete t.env (wal_name new_wal_gen) with _ -> ());
           delete_file t file;
           raise exn);
        publish t (fresh_state ~mem:Memtable.empty ~imm:None ~levels);
        Obs.Counter.add t.lvl_written.(0) file.bytes;
        Log_file.Writer.close old_wal;
        (try Env.delete t.env (wal_name old_wal_gen) with _ -> ()))

let rec compact t =
  let s = Atomic.get t.state in
  let levels = s.levels in
  if List.length levels.(0) >= t.cfg.l0_compaction_trigger then begin
    Obs.Trace.with_span (Obs.trace t.obs) ~name:"compaction" ~attrs:[ ("level", 0) ]
      (fun sp ->
    (* L0 -> L1: merge every L0 file with all overlapping L1 files. *)
    let l0 = levels.(0) in
    Obs.Trace.add_attr sp "bytes" (level_total l0);
    let low = List.fold_left (fun acc fm -> min acc fm.smallest) (List.hd l0).smallest l0 in
    let high = List.fold_left (fun acc fm -> max acc fm.largest) (List.hd l0).largest l0 in
    let l1_in, l1_out = List.partition (fun fm -> overlaps fm ~low ~high) levels.(1) in
    let floor = min_snapshot t ~default:(Atomic.get t.seq) in
    let deeper_data =
      Array.exists (fun files -> files <> []) (Array.sub levels 2 (Array.length levels - 2))
      || l1_out <> []
    in
    let inputs =
      (* L0 newest-first already; keep that priority order for merge
         ties, then L1. *)
      List.map (fun fm -> Sstable.Reader.iter fm.reader) l0
      @ List.map (fun fm -> Sstable.Reader.iter fm.reader) l1_in
    in
    let merged =
      K.compact ~min_retained_version:floor ~drop_tombstones:(not deeper_data) (K.merge inputs)
    in
    let new_files = build_files t merged in
    let new_l1 =
      List.sort (fun a b -> String.compare a.smallest b.smallest) (new_files @ l1_out)
    in
    let levels' = Array.copy levels in
    levels'.(0) <- [];
    levels'.(1) <- new_l1;
    (* Manifest before publish: publishing retires the old state, whose
       refcount release deletes the input files — the on-disk manifest
       must already reference the outputs by then. *)
    (try store_manifest t levels'
     with exn ->
       List.iter (delete_file t) new_files;
       raise exn);
    publish t (fresh_state ~mem:s.mem ~imm:s.imm ~levels:levels');
    Obs.Counter.add t.lvl_compacted.(0) (level_total l0);
    Obs.Counter.add t.lvl_compacted.(1) (level_total l1_in);
    Obs.Counter.add t.lvl_written.(1) (level_total new_files));
    compact t
  end
  else begin
    (* Leveled compaction for L1.. *)
    let n = Array.length levels in
    let overfull = ref None in
    for i = 1 to n - 2 do
      if !overfull = None && level_total levels.(i) > level_limit t i then overfull := Some i
    done;
    match !overfull with
    | None -> ()
    | Some i ->
      (match levels.(i) with
      | [] -> ()
      | victim :: _ ->
        Obs.Trace.with_span (Obs.trace t.obs) ~name:"compaction"
          ~attrs:[ ("level", i); ("bytes", victim.bytes) ]
          (fun _sp ->
        let child_in, child_out =
          List.partition
            (fun fm -> overlaps fm ~low:victim.smallest ~high:victim.largest)
            levels.(i + 1)
        in
        let floor = min_snapshot t ~default:(Atomic.get t.seq) in
        let deeper_data =
          i + 2 < n && Array.exists (fun files -> files <> []) (Array.sub levels (i + 2) (n - i - 2))
        in
        let inputs =
          Sstable.Reader.iter victim.reader
          :: List.map (fun fm -> Sstable.Reader.iter fm.reader) child_in
        in
        let merged =
          K.compact ~min_retained_version:floor
            ~drop_tombstones:((not deeper_data) && child_out = [])
            (K.merge inputs)
        in
        let new_files = build_files t merged in
        let new_child =
          List.sort (fun a b -> String.compare a.smallest b.smallest) (new_files @ child_out)
        in
        let levels' = Array.copy levels in
        levels'.(i) <- List.tl levels.(i);
        levels'.(i + 1) <- new_child;
        (try store_manifest t levels'
         with exn ->
           List.iter (delete_file t) new_files;
           raise exn);
        publish t
          (fresh_state ~mem:(Atomic.get t.state).mem ~imm:(Atomic.get t.state).imm
             ~levels:levels');
        Obs.Counter.add t.lvl_compacted.(i) victim.bytes;
        Obs.Counter.add t.lvl_compacted.(i + 1) (level_total child_in);
        Obs.Counter.add t.lvl_written.(i + 1) (level_total new_files));
        compact t)
  end

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

let put_entry t key value_opt =
  (* Writer-mutex queueing behind another put's inline flush is where
     LSM write stalls spread; charge the blocking wait to Lock_wait
     only when the fast try_lock loses. *)
  if not (Mutex.try_lock t.writer) then
    Attr.timed Attr.Lock_wait (fun () -> Mutex.lock t.writer);
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.writer)
    (fun () ->
      let seq = Atomic.fetch_and_add t.seq 1 + 1 in
      let entry : K.entry = { key; value = value_opt; version = seq; counter = 0 } in
      ignore (Log_file.Writer.append t.wal entry);
      Obs.Counter.incr t.ctr_wal_appends;
      if t.cfg.sync_writes then Log_file.Writer.fsync t.wal
      else begin
        let n = Atomic.fetch_and_add t.put_count 1 + 1 in
        if t.cfg.wal_fsync_every > 0 && n mod t.cfg.wal_fsync_every = 0 then
          Log_file.Writer.fsync t.wal
      end;
      let s = Atomic.get t.state in
      let mem' = Memtable.add s.mem entry in
      (* Memtable-only change: levels and their refcounts are shared
         with the previous state. *)
      Atomic.set t.state
        { s with mem = mem' }
        (* note: same pins/retired cell — readers pinning either record
           guard the same files *);
      ignore
        (Atomic.fetch_and_add t.logical_written
           (String.length key + match value_opt with Some v -> String.length v | None -> 0));
      if Memtable.byte_size mem' >= t.cfg.memtable_bytes then begin
        (* This put pays for the flush (and any cascading compaction)
           inline — the paper's write stall. The put itself is already
           durable and applied; if maintenance hits an I/O failure it
           rolled itself back, so count the fault and carry on — the
           next put over the threshold retries. *)
        Obs.Counter.incr t.ctr_stalls;
        try
          Attr.timed Attr.Compaction (fun () ->
              flush_memtable t;
              compact t)
        with Env.Io_error _ | Env.Corruption _ -> Obs.Counter.incr t.ctr_io_errors
      end)

let put t key value =
  Attr.with_op t.attr Attr.Put t.tm_put (fun () -> put_entry t key (Some value))

let delete t key = Attr.with_op t.attr Attr.Delete t.tm_delete (fun () -> put_entry t key None)

let find_in_levels ?on_hit s ~max_version key =
  (* L0 newest-first, then deeper levels; the first hit is the newest
     because levels are age-ordered. *)
  let check fm =
    if
      String.compare fm.smallest key <= 0
      && String.compare key fm.largest <= 0
      && Sstable.Reader.may_contain fm.reader key
    then Sstable.Reader.get fm.reader ~max_version key
    else None
  in
  let rec search_files = function
    | [] -> None
    | fm :: rest -> ( match check fm with Some e -> Some e | None -> search_files rest)
  in
  let rec search_levels i =
    if i >= Array.length s.levels then None
    else
      match search_files s.levels.(i) with
      | Some e ->
        (match on_hit with Some f -> f i | None -> ());
        Some e
      | None -> search_levels (i + 1)
  in
  search_levels 0

let get t key =
  Attr.with_op t.attr Attr.Get t.tm_get @@ fun () ->
  let s = pin_state t in
  Fun.protect
    ~finally:(fun () -> release_state t s)
    (fun () ->
      let on_hit i = if i < Array.length t.lvl_reads then Obs.Counter.incr t.lvl_reads.(i) in
      let result =
        match Memtable.find_latest s.mem key with
        | Some e -> Some e
        | None -> (
          match Option.bind s.imm (fun imm -> Memtable.find_latest imm key) with
          | Some e -> Some e
          | None ->
            (* Both memtables missed: the rest is SSTable reads. *)
            Attr.timed Attr.Disk_read (fun () ->
                find_in_levels ~on_hit s ~max_version:max_int key))
      in
      match result with
      | Some { K.value = Some v; _ } -> Some v
      | Some { K.value = None; _ } | None -> None)

let bounded it ~high =
  let stopped = ref false in
  fun () ->
    if !stopped then None
    else
      match it () with
      | Some (e : K.entry) when String.compare e.key high <= 0 -> Some e
      | _ ->
        stopped := true;
        None

let scan t ?limit ~low ~high () =
  Attr.with_op t.attr Attr.Scan t.tm_scan @@ fun () ->
  if String.compare low high > 0 then []
  else begin
    (* Take the writer mutex briefly so (state, seq) are consistent:
       every put with a smaller seqno has already published. *)
    Mutex.lock t.writer;
    let s = pin_state t in
    let snap = Atomic.get t.seq in
    Mutex.unlock t.writer;
    let ticket = register_snapshot t snap in
    Fun.protect
      ~finally:(fun () ->
        unregister_snapshot t ticket;
        release_state t s)
      (fun () ->
        let iters =
          Memtable.iter_range s.mem ~low ~high
          :: (match s.imm with Some imm -> [ Memtable.iter_range imm ~low ~high ] | None -> [])
          @ (Array.to_list s.levels
            |> List.concat_map (fun files ->
                   List.filter_map
                     (fun fm ->
                       if overlaps fm ~low ~high then
                         Some (bounded (Sstable.Reader.iter_from fm.reader low) ~high)
                       else None)
                     files))
        in
        let it =
          K.dedup (K.filter (fun (e : K.entry) -> e.version <= snap) (K.merge iters))
        in
        let max_count = match limit with None -> max_int | Some l -> l in
        let rec go acc count =
          if count >= max_count then List.rev acc
          else
            match it () with
            | None -> List.rev acc
            | Some { K.value = None; _ } -> go acc count
            | Some { K.key; K.value = Some v; _ } -> go ((key, v) :: acc) (count + 1)
        in
        go [] 0)
  end

(* ------------------------------------------------------------------ *)
(* Open / close                                                        *)

let span_names = [ "memtable_flush"; "compaction"; "recovery" ]

let setup_obs env =
  let obs = Obs.create () in
  List.iter (Obs.Trace.declare (Obs.trace obs)) span_names;
  let st = Env.stats env in
  List.iter
    (fun kind ->
      let kn = Io_stats.kind_name kind in
      Obs.probe obs
        (Printf.sprintf "io.%s.bytes_written" kn)
        (fun () -> (Io_stats.snapshot_kind st kind).Io_stats.bytes_written);
      Obs.probe obs
        (Printf.sprintf "io.%s.bytes_read" kn)
        (fun () -> (Io_stats.snapshot_kind st kind).Io_stats.bytes_read))
    Io_stats.all_kinds;
  Obs.probe obs "faults.injected" (fun () -> Env.faults_injected env);
  Obs.probe obs "io.corruptions" (fun () -> Env.corruptions_detected env);
  Obs.probe obs "log.resyncs" (fun () -> Env.log_resyncs env);
  obs

let open_internal config env =
  let obs = setup_obs env in
  match load_manifest env with
  | None ->
    let t =
      {
        env;
        cfg = config;
        state =
          Atomic.make
            {
              mem = Memtable.empty;
              imm = None;
              levels = Array.make config.max_levels [];
              pins = Atomic.make 1;
              state_retired = Atomic.make false;
            };
        writer = Mutex.create ();
        seq = Atomic.make 0;
        wal = Log_file.Writer.create env (wal_name 0);
        wal_gen = 0;
        next_fid = Atomic.make 0;
        snap_mutex = Mutex.create ();
        snapshots = Hashtbl.create 16;
        next_ticket = 0;
        logical_written = Atomic.make 0;
        put_count = Atomic.make 0;
        closed = Atomic.make false;
        obs;
        attr = Attr.create ~enabled:config.attr_enabled obs;
        tm_put = Obs.timer obs "db.put";
        tm_get = Obs.timer obs "db.get";
        tm_delete = Obs.timer obs "db.delete";
        tm_scan = Obs.timer obs "db.scan";
        ctr_stalls = Obs.counter obs "lsm.stalls";
        ctr_wal_appends = Obs.counter obs "wal.appends";
        ctr_io_errors = Obs.counter obs "io.errors";
        lvl_written = level_counters obs ~max_levels:config.max_levels "bytes_written";
        lvl_compacted = level_counters obs ~max_levels:config.max_levels "bytes_compacted";
        lvl_reads = level_counters obs ~max_levels:config.max_levels "read_hits";
      }
    in
    store_manifest t (Array.make config.max_levels []);
    t
  | Some (next_fid, wal_gen, seq, level_fids) ->
    Obs.Trace.with_span (Obs.trace obs) ~name:"recovery" (fun recovery_sp ->
    let levels =
      Array.map (List.map (fun fid -> open_file_meta env fid)) level_fids
    in
    let levels =
      if Array.length levels < config.max_levels then
        Array.append levels (Array.make (config.max_levels - Array.length levels) [])
      else levels
    in
    Array.iter (fun files -> List.iter (fun fm -> ignore (Atomic.fetch_and_add fm.refs 1)) files) levels;
    (* Sweep orphans: sstables a crashed build left outside the
       manifest, WALs of generations other than the live one, and
       leftover manifest tmp files. *)
    let live_fids = List.concat (Array.to_list level_fids) in
    List.iter
      (fun name ->
        let orphan_sst =
          match Scanf.sscanf_opt name "lsm_%d.sst" (fun fid -> fid) with
          | Some fid -> not (List.mem fid live_fids)
          | None -> false
        and stale_wal =
          match Scanf.sscanf_opt name "lsm_wal_%d.log" (fun gen -> gen) with
          | Some gen -> gen <> wal_gen
          | None -> false
        in
        if
          (orphan_sst || stale_wal || name = manifest_name ^ ".tmp")
          && not (Env.is_quarantined name)
        then
          try Env.delete env name with _ -> ())
      (Env.list_files env);
    (* Replay the WAL (an LSM must; contrast §3.5). *)
    let mem = ref Memtable.empty in
    let max_seq = ref seq in
    let replayed = ref 0 in
    List.iter
      (fun (_off, e) ->
        mem := Memtable.add !mem e;
        incr replayed;
        if e.K.version > !max_seq then max_seq := e.K.version)
      (Log_file.Reader.entries env (wal_name wal_gen));
    Obs.Trace.add_attr recovery_sp "entries" !replayed;
    {
      env;
      cfg = config;
      state =
        Atomic.make
          {
            mem = !mem;
            imm = None;
            levels;
            pins = Atomic.make 1;
            state_retired = Atomic.make false;
          };
      writer = Mutex.create ();
      seq = Atomic.make !max_seq;
      wal = Log_file.Writer.open_append env (wal_name wal_gen);
      wal_gen;
      next_fid = Atomic.make next_fid;
      snap_mutex = Mutex.create ();
      snapshots = Hashtbl.create 16;
      next_ticket = 0;
      logical_written = Atomic.make 0;
      put_count = Atomic.make 0;
      closed = Atomic.make false;
      obs;
      attr = Attr.create ~enabled:config.attr_enabled obs;
      tm_put = Obs.timer obs "db.put";
      tm_get = Obs.timer obs "db.get";
      tm_delete = Obs.timer obs "db.delete";
      tm_scan = Obs.timer obs "db.scan";
      ctr_stalls = Obs.counter obs "lsm.stalls";
      ctr_wal_appends = Obs.counter obs "wal.appends";
      ctr_io_errors = Obs.counter obs "io.errors";
      lvl_written = level_counters obs ~max_levels:config.max_levels "bytes_written";
      lvl_compacted = level_counters obs ~max_levels:config.max_levels "bytes_compacted";
      lvl_reads = level_counters obs ~max_levels:config.max_levels "read_hits";
    })

(* Snapshot-time level shape, next to the byte-flow counters above. *)
let register_block_cache_probes t =
  let with_bc f =
    match Env.block_cache t.env with
    | Some bc -> f bc
    | None -> 0
  in
  let module B = Evendb_cache.Block_cache in
  Obs.probe t.obs "blockcache.hits" (fun () -> with_bc B.hits);
  Obs.probe t.obs "blockcache.misses" (fun () -> with_bc B.misses);
  Obs.probe t.obs "blockcache.fills" (fun () -> with_bc B.fills);
  Obs.probe t.obs "blockcache.evictions" (fun () -> with_bc B.evictions);
  Obs.probe t.obs "blockcache.bytes" (fun () -> with_bc B.resident_bytes)

let register_level_probes t =
  for i = 0 to t.cfg.max_levels - 1 do
    Obs.probe t.obs
      (Printf.sprintf "level%d.bytes" i)
      (fun () -> level_total (Atomic.get t.state).levels.(i));
    Obs.probe t.obs
      (Printf.sprintf "level%d.files" i)
      (fun () -> List.length (Atomic.get t.state).levels.(i))
  done

let open_ ?(config = Config.default) env =
  (* Level/fragment reads flow through [Sstable.Reader], which consults
     the env's shared block cache; installing here unifies the budget
     with any other engine opened over the same env. *)
  Env.install_block_cache env ~capacity_bytes:config.Config.block_cache_bytes;
  let t = open_internal config env in
  register_level_probes t;
  register_block_cache_probes t;
  t

let compact_now t =
  Mutex.lock t.writer;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.writer)
    (fun () ->
      flush_memtable t;
      compact t)

let flush_wal t = Log_file.Writer.fsync t.wal

let close t =
  if Atomic.compare_and_set t.closed false true then begin
    Log_file.Writer.fsync t.wal;
    Env.fsync_all t.env;
    Log_file.Writer.close t.wal
  end

let level_file_counts t =
  Array.to_list (Array.map List.length (Atomic.get t.state).levels)

let level_bytes t = Array.to_list (Array.map level_total (Atomic.get t.state).levels)
