(** A leveled LSM-tree key-value store — the RocksDB-like baseline the
    paper compares against (§5).

    Classic design: a global write-ahead log, an in-memory memtable,
    and levels of immutable SSTables. L0 files are flushed memtables
    (overlapping); L1+ files are non-overlapping and each level is
    [level_size_multiplier] times larger than the previous. Background
    work is performed inline on the write path (flushes when the
    memtable fills, compactions when a level overflows), which
    reproduces the paper's observed compaction stalls.

    Runs on the same instrumented {!Evendb_storage.Env} as EvenDB, so
    throughput and write-amplification comparisons are
    apples-to-apples. Supports atomic scans via sequence-number
    snapshots; active snapshots block version garbage collection in
    compactions, like EvenDB's PO array does. *)

open Evendb_storage

module Config : sig
  type t = {
    memtable_bytes : int;  (** Flush trigger. *)
    l0_compaction_trigger : int;  (** #L0 files that triggers L0→L1. *)
    level_base_bytes : int;  (** L1 capacity; Li = base * mult^(i-1). *)
    level_size_multiplier : int;
    target_file_bytes : int;  (** Output file size during compaction. *)
    bloom_bits_per_key : int;
    sstable_block_bytes : int;
    sync_writes : bool;  (** fsync the WAL on every put. *)
    wal_fsync_every : int;  (** Async mode: fsync WAL every N puts (0 = only at close). *)
    max_levels : int;
    attr_enabled : bool;  (** Per-op tail-latency cause attribution. *)
    block_cache_bytes : int;
        (** Shared sstable block cache installed on the env at open
            (default 32MiB; 0 disables — no-op if the env already
            carries one). *)
  }

  val default : t

  val scaled : ?factor:int -> unit -> t
  (** Shrink all size thresholds by [factor] (default 64), preserving
      ratios. *)
end

type t

val open_ : ?config:Config.t -> Env.t -> t
(** Opens or recovers: the manifest restores the level structure and
    the WAL is replayed into a fresh memtable (unlike EvenDB, an LSM
    must replay its log on recovery). *)

val close : t -> unit

val put : t -> string -> string -> unit
val get : t -> string -> string option
val delete : t -> string -> unit

val scan : t -> ?limit:int -> low:string -> high:string -> unit -> (string * string) list

val compact_now : t -> unit
(** Drive flush + compaction to quiescence (phase boundaries in
    benchmarks). *)

val flush_wal : t -> unit

(** {2 Introspection} *)

val env : t -> Env.t
val logical_bytes_written : t -> int
val write_amplification : t -> float
val level_file_counts : t -> int list
val level_bytes : t -> int list

(** {2 Observability} *)

val obs : t -> Evendb_obs.Obs.t
(** Op-latency timers ([db.put]/[db.get]/[db.delete]/[db.scan]),
    [lsm.stalls] (puts that paid an inline flush/compaction),
    [wal.appends], per-file-kind I/O probes, spans around
    [memtable_flush], [compaction] (with a [level] attribute) and
    [recovery], and per-level shape metrics: [level<i>.bytes_written]
    (bytes landing in the level), [level<i>.bytes_compacted] (bytes
    compacted out of it), [level<i>.read_hits] (gets served by it),
    plus [level<i>.bytes]/[level<i>.files] probes of the current
    shape. *)

val attr : t -> Evendb_obs.Attr.t
(** Per-op cause attribution: writer-mutex waits ([Lock_wait]), WAL
    appends/fsyncs (via the log layer), inline flush+compaction
    ([Compaction] — the classic write stall) and level reads
    ([Disk_read]). *)

val metrics_dump : t -> [ `Json | `Prometheus ] -> string
