open Evendb_util

module M = Map.Make (String)

type t = {
  map : Kv_iter.entry list M.t; (* newest first per key *)
  bytes : int;
  count : int;
}

let empty = { map = M.empty; bytes = 0; count = 0 }

let entry_bytes (e : Kv_iter.entry) =
  String.length e.key + (match e.value with Some v -> String.length v | None -> 0) + 48

let add t (e : Kv_iter.entry) =
  let existing = Option.value ~default:[] (M.find_opt e.key t.map) in
  (* Writers are serialized and versions are monotone, so prepending
     keeps newest-first order. *)
  {
    map = M.add e.key (e :: existing) t.map;
    bytes = t.bytes + entry_bytes e;
    count = t.count + 1;
  }

let find_latest t ?(max_version = max_int) key =
  match M.find_opt key t.map with
  | None -> None
  | Some versions -> List.find_opt (fun (e : Kv_iter.entry) -> e.version <= max_version) versions

let byte_size t = t.bytes
let entry_count t = t.count
let is_empty t = t.count = 0

let iter_range t ~low ~high =
  let seq =
    M.to_seq_from low t.map
    |> Seq.take_while (fun (k, _) -> String.compare k high <= 0)
    |> Seq.concat_map (fun (_, versions) -> List.to_seq versions)
  in
  let state = ref seq in
  fun () ->
    match Seq.uncons !state with
    | None -> None
    | Some (e, rest) ->
      state := rest;
      Some e

let to_iter t =
  let seq = M.to_seq t.map |> Seq.concat_map (fun (_, versions) -> List.to_seq versions) in
  let state = ref seq in
  fun () ->
    match Seq.uncons !state with
    | None -> None
    | Some (e, rest) ->
      state := rest;
      Some e
