(** LSM memtable: an immutable sorted map of multi-versioned entries.

    Functional (persistent) so that readers can snapshot it with one
    atomic load while the single-writer path produces updated
    versions. All versions of a key are retained until flush, which is
    what makes snapshot scans sound. *)

open Evendb_util

type t

val empty : t

val add : t -> Kv_iter.entry -> t
val find_latest : t -> ?max_version:int -> string -> Kv_iter.entry option

val byte_size : t -> int
(** Approximate payload bytes (flush trigger). *)

val entry_count : t -> int
val is_empty : t -> bool

val iter_range : t -> low:string -> high:string -> Kv_iter.t
(** Canonical order over [low <= key <= high]. *)

val to_iter : t -> Kv_iter.t
