(** Munk: the in-memory representation of a chunk (§3.1).

    "A munk holds KV pairs in an array-based linked list. When a munk
    is created, some prefix of this array is populated, sorted by key
    [...] New KV entries are appended after this prefix. As new entries
    are added, they create bypasses in the linked list [...] Keys can
    thus be searched efficiently via binary search on the sorted prefix
    followed by a short traversal of a bypass path."

    Entries are kept in canonical order (key ascending, then newest
    version first); multiple versions of a key are adjacent cells in
    the list. Lookups and iteration are lock-free: cells are immutable
    records replaced wholesale (a single pointer store) and list
    splicing publishes the new cell's [next] before linking it in.
    Mutations ([put]) are serialized by an internal mutex — the
    caller's chunk-level rebalanceLock only coordinates puts with
    rebalance, not puts with each other. *)

open Evendb_util

type t

val of_sorted : Kv_iter.entry list -> t
(** Build from entries already in {!Kv_iter.compare_entries} order
    (they become the sorted prefix). Raises [Invalid_argument] if out
    of order. *)

val of_iter : Kv_iter.t -> t

val entry_count : t -> int
(** Live cells, including superseded versions awaiting rebalance. *)

val appended_count : t -> int
(** Cells inserted since the sorted prefix was built — the unsorted
    region whose growth triggers munk rebalance. *)

val byte_size : t -> int
(** Approximate heap footprint of keys+values (rebalance/split trigger). *)

val tombstone_count : t -> int
(** Live tombstone cells — drives opportunistic compaction and the
    underflow-merge trigger. *)

val put : t -> ?may_discard:(old_version:int -> new_version:int -> bool) -> Kv_iter.entry -> unit
(** Insert an entry. If it directly supersedes the current newest
    version of its key and [may_discard ~old_version ~new_version]
    holds (no active scan needs the old version), the cell is replaced
    in place; otherwise a new cell is linked in, retaining the old
    version for concurrent scans. Default [may_discard]: never — all
    versions retained. *)

val find_latest : t -> ?max_version:int -> string -> Kv_iter.entry option
(** Newest entry for the key with version [<= max_version]. Returns
    tombstones. Lock-free. *)

val iter : t -> Kv_iter.t
(** Iterate the whole munk in canonical order. Lock-free; concurrent
    puts may or may not be observed. *)

val iter_range : t -> low:string -> high:string -> Kv_iter.t
(** Entries with [low <= key <= high]. *)

val rebalance : t -> min_retained_version:int option -> t
(** Build a fresh compacted, fully-sorted munk (§3.4). Must run with
    puts blocked (chunk rebalanceLock held exclusively); concurrent
    reads of the old munk remain valid. *)

val split_entries : t -> min_retained_version:int option -> Kv_iter.entry list * Kv_iter.entry list
(** Compact and split into two halves of roughly equal byte size; the
    second half is non-empty when the munk has at least two distinct
    keys. Used by chunk splits. *)
