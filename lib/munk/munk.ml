open Evendb_util

type node = {
  mutable entry : Kv_iter.entry;
  mutable next : int; (* array index; -1 terminates the list *)
}

type t = {
  mutable arr : node array;
  mutable size : int; (* allocated cells *)
  sorted : int; (* length of the sorted prefix *)
  mutable head : int; (* first cell in list order; -1 when empty *)
  mutex : Mutex.t; (* serializes puts; readers never take it *)
  mutable bytes : int;
  mutable appended : int;
  mutable tombs : int; (* live tombstone cells (merge/GC trigger) *)
}

let entry_bytes (e : Kv_iter.entry) =
  String.length e.key + (match e.value with Some v -> String.length v | None -> 0) + 64

let dummy_entry : Kv_iter.entry = { key = ""; value = None; version = 0; counter = 0 }

let of_sorted entries =
  let n = List.length entries in
  let arr = Array.make (max 16 (2 * n)) { entry = dummy_entry; next = -1 } in
  let bytes = ref 0 in
  let prev = ref None in
  List.iteri
    (fun i e ->
      (match !prev with
      | Some p when Kv_iter.compare_entries p e >= 0 ->
        invalid_arg
          (Printf.sprintf "Munk.of_sorted: entries out of order (%S v%d c%d >= %S v%d c%d)"
             p.key p.version p.counter e.key e.version e.counter)
      | _ -> ());
      prev := Some e;
      arr.(i) <- { entry = e; next = (if i = n - 1 then -1 else i + 1) };
      bytes := !bytes + entry_bytes e)
    entries;
  {
    arr;
    size = n;
    sorted = n;
    head = (if n = 0 then -1 else 0);
    mutex = Mutex.create ();
    bytes = !bytes;
    appended = 0;
    tombs = List.length (List.filter (fun (e : Kv_iter.entry) -> e.value = None) entries);
  }

let of_iter it = of_sorted (Kv_iter.to_list it)

let entry_count t = t.size
let appended_count t = t.appended
let byte_size t = t.bytes
let tombstone_count t = t.tombs

(* Last prefix index whose entry is strictly below [e] in canonical
   order; -1 if none. The prefix is canonically sorted, so plain binary
   search applies. *)
let prefix_predecessor t (e : Kv_iter.entry) =
  let arr = t.arr in
  let lo = ref 0 and hi = ref (t.sorted - 1) and result = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if Kv_iter.compare_entries arr.(mid).entry e < 0 then begin
      result := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !result

(* Walk the bypass path from the prefix predecessor to the exact list
   position of [e]: returns (pred, succ) such that pred.entry < e <=
   succ.entry in canonical order (-1 for list head / tail). *)
let find_position t e =
  let arr = t.arr in
  let start = prefix_predecessor t e in
  let pred = ref start in
  let cur = ref (if start < 0 then t.head else arr.(start).next) in
  let continue = ref true in
  while !continue && !cur >= 0 do
    if Kv_iter.compare_entries arr.(!cur).entry e < 0 then begin
      pred := !cur;
      cur := arr.(!cur).next
    end
    else continue := false
  done;
  (!pred, !cur)

let grow t =
  let cap = 2 * Array.length t.arr in
  let arr = Array.make cap t.arr.(0) in
  Array.blit t.arr 0 arr 0 t.size;
  (* Nodes are shared by reference, so readers traversing the old array
     observe the same cells; only the container is replaced. Readers
     that encounter an index beyond their captured array re-fetch
     [t.arr] (see [node_at]): the writer installs the grown array
     before publishing any index into it. *)
  t.arr <- arr

(* Lock-free read of cell [i]: a concurrent put may have published an
   index that only exists in the freshly grown array. *)
let rec node_at t arr i =
  if i < Array.length arr then arr.(i)
  else begin
    Domain.cpu_relax ();
    node_at t t.arr i
  end

let put t ?(may_discard = fun ~old_version:_ ~new_version:_ -> false) (e : Kv_iter.entry) =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let pred, succ = find_position t e in
      let overwrote =
        succ >= 0
        && begin
             let old = t.arr.(succ).entry in
             String.equal old.key e.key
             && Kv_iter.entry_newer e old
             && may_discard ~old_version:old.version ~new_version:e.version
           end
      in
      if overwrote then begin
        let node = t.arr.(succ) in
        t.bytes <- t.bytes - entry_bytes node.entry + entry_bytes e;
        t.tombs <-
          t.tombs
          + (if e.value = None then 1 else 0)
          - (if node.entry.value = None then 1 else 0);
        (* Single pointer store: readers see either the old or the new
           entry, both internally consistent. *)
        node.entry <- e
      end
      else begin
        if t.size = Array.length t.arr then grow t;
        let idx = t.size in
        t.arr.(idx) <- { entry = e; next = succ };
        t.size <- idx + 1;
        (* Publish after the cell is fully initialized. *)
        if pred < 0 then t.head <- idx else t.arr.(pred).next <- idx;
        t.bytes <- t.bytes + entry_bytes e;
        t.appended <- t.appended + 1;
        if e.value = None then t.tombs <- t.tombs + 1
      end)

let find_latest t ?(max_version = max_int) key =
  let arr = t.arr in
  (* Position just before the first entry of [key] (which, canonically,
     is the newest version). *)
  let probe : Kv_iter.entry = { key; value = None; version = max_int; counter = max_int } in
  let start = prefix_predecessor t probe in
  let cur = ref (if start < 0 then t.head else (node_at t arr start).next) in
  let result = ref None in
  (try
     while !cur >= 0 do
       let node = node_at t arr !cur in
       let e = node.entry in
       let c = String.compare e.key key in
       if c > 0 then raise Exit
       else if c = 0 && e.version <= max_version then begin
         result := Some e;
         raise Exit
       end
       else cur := node.next
     done
   with Exit -> ());
  !result

let iter_from t start_idx stop_after =
  let arr = t.arr in
  let cur = ref start_idx in
  fun () ->
    if !cur < 0 then None
    else begin
      let node = node_at t arr !cur in
      let e = node.entry in
      match stop_after with
      | Some high when String.compare e.Kv_iter.key high > 0 ->
        cur := -1;
        None
      | _ ->
        cur := node.next;
        Some e
    end

let iter t = iter_from t t.head None

let iter_range t ~low ~high =
  let probe : Kv_iter.entry = { key = low; value = None; version = max_int; counter = max_int } in
  let p = prefix_predecessor t probe in
  let arr = t.arr in
  let start = if p < 0 then t.head else (node_at t arr p).next in
  (* Skip any bypass entries still below [low]. *)
  let cur = ref start in
  let continue = ref true in
  while !continue && !cur >= 0 do
    let node = node_at t arr !cur in
    if String.compare node.entry.key low < 0 then cur := node.next else continue := false
  done;
  iter_from t !cur (Some high)

(* Charged to the calling op's attribution frame when a put pays for
   rebalance inline (Attr.timed is free off the op hot path). *)
let rebalance t ~min_retained_version =
  Evendb_obs.Attr.timed Evendb_obs.Attr.Rebalance (fun () ->
      of_iter (Kv_iter.compact ?min_retained_version (iter t)))

let split_entries t ~min_retained_version =
  let entries = Kv_iter.to_list (Kv_iter.compact ?min_retained_version (iter t)) in
  let total = List.fold_left (fun acc e -> acc + entry_bytes e) 0 entries in
  let left = ref [] and right = ref [] in
  (* Accumulate into [left] until half the bytes are placed, then switch
     — but only between distinct keys, so all versions of the boundary
     key stay on one side. *)
  let rec assign acc_bytes last_left_key = function
    | [] -> ()
    | (e : Kv_iter.entry) :: rest ->
      let same_as_left = match last_left_key with Some k -> String.equal k e.key | None -> false in
      if acc_bytes * 2 < total || same_as_left || last_left_key = None then begin
        left := e :: !left;
        assign (acc_bytes + entry_bytes e) (Some e.key) rest
      end
      else begin
        right := e :: !right;
        List.iter (fun e -> right := e :: !right) rest
      end
  in
  assign 0 None entries;
  (List.rev !left, List.rev !right)
