(** Multi-domain workload runner (the YCSB driver of §5.1).

    Spawns worker domains that issue an identical operation mix
    against one engine, collecting per-operation latency histograms
    and a throughput-over-time series (for the dynamics figures). *)

open Evendb_util

type op =
  | Update  (** put to an existing (distribution-sampled) key *)
  | Insert  (** put to a fresh key *)
  | Read
  | Scan of int  (** scan this many rows from a sampled start key *)
  | Read_modify_write

type mix = (op * int) list
(** Operation percentages; must sum to 100. *)

val workload_p : mix
val workload_a : mix
val workload_b : mix
val workload_c : mix
val workload_d : mix
val workload_e : int -> mix
val workload_f : mix

type result = {
  ops : int;
  seconds : float;
  kops : float;
  put_hist : Histogram.t;
  get_hist : Histogram.t;
  scan_hist : Histogram.t;
  windows : (float * float) list;
      (** (window end time in s, throughput in Kops) series. *)
  failed_ops : int;
      (** Operations that raised a typed storage error ({!Evendb_storage.Env.Io_error}) —
          nonzero only when benchmarking under an injected fault profile. *)
}

val load : Engine.t -> Workload.shared -> unit
(** Insert the initial dataset in ascending key order, then run the
    engine's maintenance to quiescence (the paper's load phase). *)

val run :
  ?window_seconds:float ->
  ?warmup_ops:int ->
  Engine.t -> Workload.shared -> mix -> ops:int -> threads:int -> result
(** Execute [ops] operations split across [threads] domains. Raises
    [Invalid_argument] if the mix does not sum to 100 or
    [threads < 1]. *)
