(** Key encodings for the synthetic benchmarks (§5.3.1).

    "The keys are 32-bit integers in decimal encoding (10 bytes), which
    YCSB pads with a 4-byte prefix (so effectively, the keys are 14
    byte long)." For composite keys, "the key's 14 most significant
    bits comprise the primary attribute", drawn from a Zipf
    distribution, with the remainder uniform. *)

val key_bits : int
(** 32: keys are 32-bit integers. *)

val prefix_bits : int
(** 14: the composite primary attribute. *)

val encode : int -> string
(** 14-byte key: "user" + 10-digit zero-padded decimal. Raises
    [Invalid_argument] outside [\[0, 2^32)]. *)

val decode : string -> int

val simple : int -> string
(** Key for the i-th item of a simple-key workload (items are placed
    by a stable scramble so that popular ranks disperse uniformly). *)

val composite : prefix:int -> suffix:int -> string
(** Composite key from a [prefix_bits]-bit primary attribute and an
    18-bit suffix. *)

val composite_range : prefix:int -> string * string
(** [low, high] keys spanning exactly the prefix's key range (for
    per-prefix scans). *)
