(** YCSB-style workload generation (§5.3.1).

    Four key-access distributions from the paper:

    - {e Zipf-simple} — Zipfian ranks over a random permutation of
      simple keys;
    - {e Zipf-composite} — a Zipfian primary attribute (the key's top
      14 bits) with a uniform remainder;
    - {e Latest} — skewed towards recently inserted keys;
    - {e Uniform} — uniformly random keys (ingestion only);
    - {e Range-uniform} — uniform within per-worker contiguous key
      slices (ingestion with spatial locality: worker [i] owns slice
      [i mod n] of the key space).

    A {!shared} value holds the dataset geometry and the (atomic) item
    counter; each worker domain derives a deterministic per-thread
    generator with {!thread}. *)

type dist =
  | Zipf_simple of float  (** theta *)
  | Zipf_composite of float
  | Latest
  | Uniform
  | Range_uniform of int  (** worker-affine slices; [n] = slice count *)

val dist_name : dist -> string

type shared
type t

val create_shared : ?value_bytes:int -> dist -> items:int -> seed:int -> shared
(** [items] is the initial dataset cardinality; [value_bytes]
    defaults to 800 (the paper's value size). *)

val thread : shared -> id:int -> t
(** Deterministic independent generator for worker [id]. *)

val initial_items : shared -> int
val current_items : shared -> int
val value_bytes : shared -> int
val dist : shared -> dist

val load_keys : shared -> string list
(** The initial dataset's keys in ascending order (the paper loads in
    key order). Empty for [Uniform]/[Range_uniform] (pure ingestion). *)

val sample_key : t -> string
(** A key to read or update, drawn from the distribution. *)

val insert_key : t -> string
(** A fresh key (workloads D/E); advances the shared item counter. *)

val scan_start : t -> string

val make_value : t -> string
(** A value of [value_bytes] length, cheaply varied per call. *)

val key_space_high : string
(** Upper bound above every generated key (open-ended scans). *)

val prefix_weights : shared -> prefix_len:int -> (string * float) list
(** Analytic access distribution bucketed by the leading [prefix_len]
    bytes of the key, sorted hottest-first; weights sum to 1. Computed
    exactly by enumerating the Zipfian generator's support (collisions
    of the rank scramble included), so it is the ground truth for
    {!sample_key}'s key stream as the op count grows. Raises
    [Invalid_argument] for [Latest]/[Uniform]. *)
