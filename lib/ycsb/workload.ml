open Evendb_util

type dist =
  | Zipf_simple of float
  | Zipf_composite of float
  | Latest
  | Uniform
  | Range_uniform of int

let dist_name = function
  | Zipf_simple _ -> "Zipf-simple"
  | Zipf_composite _ -> "Zipf-composite"
  | Latest -> "Latest-simple"
  | Uniform -> "Uniform"
  | Range_uniform n -> Printf.sprintf "Range-uniform/%d" n

type shared = {
  sh_dist : dist;
  sh_items : int;
  item_count : int Atomic.t;
  sh_value_bytes : int;
  p_count : int; (* composite: number of live prefixes *)
  per_prefix : int; (* composite: items per prefix *)
  prefix_stride : int; (* spread of prefix values over the 14-bit space *)
  suffix_stride : int;
  seed : int;
}

type t = {
  sh : shared;
  t_id : int; (* worker id: selects the slice under [Range_uniform] *)
  rng : Rng.t;
  zipf : Zipf.t option;
  latest : Zipf.t option;
  value_base : Bytes.t;
  mutable value_tick : int;
}

let suffix_space = 1 lsl (Keys.key_bits - Keys.prefix_bits)
let prefix_space = 1 lsl Keys.prefix_bits

let create_shared ?(value_bytes = 800) dist ~items ~seed =
  if items <= 0 then invalid_arg "Workload.create_shared: items <= 0";
  (match dist with
  | Range_uniform n when n < 1 -> invalid_arg "Workload.create_shared: Range_uniform n < 1"
  | _ -> ());
  let p_count = max 1 (min prefix_space (items / 64)) in
  let per_prefix = max 1 (items / p_count) in
  {
    sh_dist = dist;
    sh_items = items;
    item_count = Atomic.make items;
    sh_value_bytes = value_bytes;
    p_count;
    per_prefix;
    prefix_stride = max 1 (prefix_space / p_count);
    suffix_stride = max 1 (suffix_space / per_prefix);
    seed;
  }

let initial_items sh = sh.sh_items
let current_items sh = Atomic.get sh.item_count
let value_bytes sh = sh.sh_value_bytes
let dist sh = sh.sh_dist

let thread sh ~id =
  let rng = Rng.create (sh.seed + (id * 7919) + 13) in
  let zipf =
    match sh.sh_dist with
    | Zipf_simple theta -> Some (Zipf.create ~theta sh.sh_items)
    | Zipf_composite theta -> Some (Zipf.create ~theta sh.p_count)
    | Latest | Uniform | Range_uniform _ -> None
  in
  let latest =
    match sh.sh_dist with Latest -> Some (Zipf.latest ~item_count:sh.sh_items) | _ -> None
  in
  {
    sh;
    t_id = id;
    rng;
    zipf;
    latest;
    value_base = Bytes.of_string (Rng.string rng sh.sh_value_bytes);
    value_tick = 0;
  }

(* Simple keys: item j maps to a stable pseudo-random 32-bit position,
   dispersing the dataset across the key space. *)
let item_key j = Keys.encode (Zipf.scramble (1 lsl Keys.key_bits) j)

let composite_key sh ~prefix_idx ~k =
  Keys.composite ~prefix:(prefix_idx * sh.prefix_stride) ~suffix:(k * sh.suffix_stride)

let load_keys sh =
  match sh.sh_dist with
  | Uniform | Range_uniform _ -> []
  | Zipf_composite _ ->
    List.concat
      (List.init sh.p_count (fun prefix_idx ->
           List.init sh.per_prefix (fun k -> composite_key sh ~prefix_idx ~k)))
  | Zipf_simple _ | Latest ->
    List.sort_uniq String.compare (List.init sh.sh_items item_key)

let sample_key t =
  match t.sh.sh_dist with
  | Zipf_simple _ ->
    let rank = Zipf.next (Option.get t.zipf) t.rng in
    item_key (Zipf.scramble t.sh.sh_items rank)
  | Zipf_composite _ ->
    let rank = Zipf.next (Option.get t.zipf) t.rng in
    let prefix_idx = Zipf.scramble t.sh.p_count rank in
    composite_key t.sh ~prefix_idx ~k:(Rng.int t.rng t.sh.per_prefix)
  | Latest ->
    let j =
      Zipf.next_latest (Option.get t.latest) t.rng ~max_key:(Atomic.get t.sh.item_count)
    in
    item_key j
  | Uniform -> Keys.encode (Rng.int t.rng (1 lsl Keys.key_bits))
  | Range_uniform n ->
    (* Worker i draws only from slice (i mod n) of the key space — the
       paper's spatially-local deployment, where each writer owns a
       contiguous range. Slices align with the sharded front end's
       default boundaries when n = shard count. *)
    let slice = (1 lsl Keys.key_bits) / n in
    Keys.encode (((t.t_id mod n) * slice) + Rng.int t.rng slice)

let insert_key t =
  match t.sh.sh_dist with
  | Zipf_composite _ ->
    ignore (Atomic.fetch_and_add t.sh.item_count 1);
    let rank = Zipf.next (Option.get t.zipf) t.rng in
    let prefix_idx = Zipf.scramble t.sh.p_count rank in
    Keys.composite ~prefix:(prefix_idx * t.sh.prefix_stride)
      ~suffix:(Rng.int t.rng suffix_space)
  | Uniform ->
    ignore (Atomic.fetch_and_add t.sh.item_count 1);
    Keys.encode (Rng.int t.rng (1 lsl Keys.key_bits))
  | Range_uniform n ->
    ignore (Atomic.fetch_and_add t.sh.item_count 1);
    let slice = (1 lsl Keys.key_bits) / n in
    Keys.encode (((t.t_id mod n) * slice) + Rng.int t.rng slice)
  | Zipf_simple _ | Latest ->
    let j = Atomic.fetch_and_add t.sh.item_count 1 in
    item_key j

let scan_start = sample_key

let make_value t =
  (* Refresh a small window so values differ between puts without
     regenerating the whole buffer. *)
  t.value_tick <- t.value_tick + 1;
  let b = Bytes.copy t.value_base in
  let tick = string_of_int t.value_tick in
  Bytes.blit_string tick 0 b 0 (min (String.length tick) (Bytes.length b));
  Bytes.unsafe_to_string b

let key_space_high = "user~"

(* Exact access-probability mass per key prefix, by enumerating the
   generator's support: every (rank, key) pair a Zipfian sampler can
   produce, weighted by its exact probability. This is the analytic
   ground truth the hot-prefix sketch is checked against. *)
let prefix_weights sh ~prefix_len =
  let tbl = Hashtbl.create 1024 in
  let add key w =
    let p =
      if String.length key <= prefix_len then key else String.sub key 0 prefix_len
    in
    let prev = try Hashtbl.find tbl p with Not_found -> 0.0 in
    Hashtbl.replace tbl p (prev +. w)
  in
  (match sh.sh_dist with
  | Zipf_simple theta ->
    let z = Zipf.create ~theta sh.sh_items in
    for rank = 0 to sh.sh_items - 1 do
      add (item_key (Zipf.scramble sh.sh_items rank)) (Zipf.probability z rank)
    done
  | Zipf_composite theta ->
    let z = Zipf.create ~theta sh.p_count in
    for rank = 0 to sh.p_count - 1 do
      let prefix_idx = Zipf.scramble sh.p_count rank in
      let w = Zipf.probability z rank /. float_of_int sh.per_prefix in
      for k = 0 to sh.per_prefix - 1 do
        add (composite_key sh ~prefix_idx ~k) w
      done
    done
  | Latest | Uniform | Range_uniform _ ->
    invalid_arg "Workload.prefix_weights: needs a Zipfian distribution");
  List.sort
    (fun (p1, w1) (p2, w2) ->
      match compare w2 w1 with 0 -> String.compare p1 p2 | c -> c)
    (Hashtbl.fold (fun p w acc -> (p, w) :: acc) tbl [])
