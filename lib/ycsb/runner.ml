open Evendb_util

type op =
  | Update
  | Insert
  | Read
  | Scan of int
  | Read_modify_write

type mix = (op * int) list

let workload_p = [ (Update, 100) ]
let workload_a = [ (Update, 50); (Read, 50) ]
let workload_b = [ (Update, 5); (Read, 95) ]
let workload_c = [ (Read, 100) ]
let workload_d = [ (Insert, 5); (Read, 95) ]
let workload_e rows = [ (Insert, 5); (Scan rows, 95) ]
let workload_f = [ (Read_modify_write, 100) ]

type result = {
  ops : int;
  seconds : float;
  kops : float;
  put_hist : Histogram.t;
  get_hist : Histogram.t;
  scan_hist : Histogram.t;
  windows : (float * float) list;
  failed_ops : int;
}

let now () = Unix.gettimeofday ()

let load (engine : Engine.t) shared =
  let w = Workload.thread shared ~id:997 in
  (* Under an injected fault profile individual load puts may fail with
     a typed storage error; the key is simply absent, which the
     workloads tolerate (reads of missing keys are misses). *)
  List.iter
    (fun key ->
      try engine.Engine.put key (Workload.make_value w)
      with Evendb_storage.Env.Io_error _ -> ())
    (Workload.load_keys shared);
  try engine.Engine.maintain () with Evendb_storage.Env.Io_error _ -> ()

(* Expand the mix into a 100-slot lookup table. *)
let mix_table mix =
  let total = List.fold_left (fun acc (_, p) -> acc + p) 0 mix in
  if total <> 100 then invalid_arg "Runner: mix must sum to 100";
  let table = Array.make 100 Read in
  let pos = ref 0 in
  List.iter
    (fun (op, pct) ->
      for _ = 1 to pct do
        table.(!pos) <- op;
        incr pos
      done)
    mix;
  table

let max_windows = 65536

let run ?(window_seconds = 1.0) ?(warmup_ops = 0) (engine : Engine.t) shared mix ~ops ~threads =
  if threads < 1 then invalid_arg "Runner.run: threads < 1";
  let table = mix_table mix in
  let window_ops = Array.init max_windows (fun _ -> Atomic.make 0) in
  let t0 = ref 0.0 in
  let do_op w rng put_hist get_hist scan_hist failed op =
    let t_start = now () in
    (try
       match op with
    | Update -> engine.Engine.put (Workload.sample_key w) (Workload.make_value w)
    | Insert -> engine.Engine.put (Workload.insert_key w) (Workload.make_value w)
    | Read -> ignore (engine.Engine.get (Workload.sample_key w))
    | Scan rows ->
      ignore
        (engine.Engine.scan ~low:(Workload.scan_start w) ~high:Workload.key_space_high
           ~limit:rows)
    | Read_modify_write ->
      let key = Workload.sample_key w in
      ignore (engine.Engine.get key);
      engine.Engine.put key (Workload.make_value w)
     with Evendb_storage.Env.Io_error _ ->
       (* Injected fault: the op failed cleanly; count it and keep
          driving load. Its latency still lands in the histogram —
          failure paths are part of the measured distribution. *)
       incr failed);
    let elapsed_ns = int_of_float ((now () -. t_start) *. 1e9) in
    (match op with
    | Update | Insert -> Histogram.record put_hist elapsed_ns
    | Read -> Histogram.record get_hist elapsed_ns
    | Scan _ -> Histogram.record scan_hist elapsed_ns
    | Read_modify_write ->
      Histogram.record get_hist elapsed_ns;
      Histogram.record put_hist elapsed_ns);
    ignore rng;
    let widx = int_of_float ((now () -. !t0) /. window_seconds) in
    if widx >= 0 && widx < max_windows then
      ignore (Atomic.fetch_and_add window_ops.(widx) 1)
  in
  let worker id n_ops =
    let w = Workload.thread shared ~id in
    let rng = Rng.create (1000 + id) in
    let put_hist = Histogram.create ()
    and get_hist = Histogram.create ()
    and scan_hist = Histogram.create () in
    let failed = ref 0 in
    for _ = 1 to n_ops do
      do_op w rng put_hist get_hist scan_hist failed table.(Rng.int rng 100)
    done;
    (put_hist, get_hist, scan_hist, !failed)
  in
  (* Warmup (cache priming, §5.3): run outside the measured span. *)
  if warmup_ops > 0 then begin
    t0 := now ();
    ignore (worker 9999 warmup_ops)
  end;
  let per_thread = ops / threads in
  (* A fault-tolerant engine wrapper (bench harness with a fault
     profile) absorbs failed ops before our handler sees them; fold its
     delta over the measured span into the same count. *)
  let absorbed0 = engine.Engine.absorbed_failures () in
  t0 := now ();
  let domains =
    List.init threads (fun id -> Domain.spawn (fun () -> worker id per_thread))
  in
  let results = List.map Domain.join domains in
  let seconds = now () -. !t0 in
  let put_hist = Histogram.create ()
  and get_hist = Histogram.create ()
  and scan_hist = Histogram.create () in
  let failed_ops = ref 0 in
  List.iter
    (fun (p, g, s, f) ->
      Histogram.merge_into ~src:p ~dst:put_hist;
      Histogram.merge_into ~src:g ~dst:get_hist;
      Histogram.merge_into ~src:s ~dst:scan_hist;
      failed_ops := !failed_ops + f)
    results;
  let total_ops = per_thread * threads in
  let windows =
    let acc = ref [] in
    let last = int_of_float (seconds /. window_seconds) in
    for i = min last (max_windows - 1) downto 0 do
      let n = Atomic.get window_ops.(i) in
      acc := ((float_of_int (i + 1) *. window_seconds), float_of_int n /. window_seconds /. 1000.0) :: !acc
    done;
    !acc
  in
  {
    ops = total_ops;
    seconds;
    kops = (if seconds > 0.0 then float_of_int total_ops /. seconds /. 1000.0 else 0.0);
    put_hist;
    get_hist;
    scan_hist;
    windows;
    failed_ops = !failed_ops + (engine.Engine.absorbed_failures () - absorbed0);
  }
