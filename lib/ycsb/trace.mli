(** Synthetic production-analytics trace (§1.1, §5.2).

    Stand-in for the paper's proprietary mobile-analytics log: a
    stream of app events whose app-id popularity is heavy-tailed
    (Figure 1 shows ~1% of apps covering ~94% of events), keyed by the
    composite [app id · timestamp · sequence] and carrying ~800-byte
    records. Events arrive in timestamp order — i.e., *not* in primary
    key order, which is exactly the spatial-locality stress the paper
    studies.

    Determinism: the same [seed] yields the same trace. *)


type t

val create : ?apps:int -> ?theta:float -> ?value_bytes:int -> seed:int -> unit -> t
(** Defaults: 2000 apps (scaled from the paper's 60K), power-law
    exponent [theta = 1.7] (matching the paper's head coverage: ~1%
    of apps cover ~94% of events), 800-byte values. *)

val apps : t -> int

val next_event : t -> string * string
(** [(key, value)] of the next event; keys are composite
    ["app<id5>/<ts10>/<seq4>"] so all events of an app share a key
    prefix. *)

val app_of_key : string -> int

val sample_app : t -> int
(** An app id drawn from the popularity distribution (for queries:
    popular apps are queried more often, §5.2). *)

val app_range : t -> int -> string * string
(** Key range covering all events of an app. *)

val recent_range : t -> int -> events:int -> string * string
(** Key range approximately covering the app's most recent [events]
    events (the paper's "1-minute history" scans). *)

val popularity : t -> samples:int -> (int * float) list
(** Empirical (rank, probability) pairs from [samples] draws —
    regenerates Figure 1. *)
