(** Uniform facade over the three storage engines so the workload
    runner and every benchmark treat them interchangeably. *)

open Evendb_storage

type t = {
  name : string;
  put : string -> string -> unit;
  get : string -> string option;
  delete : string -> unit;
  scan : low:string -> high:string -> limit:int -> (string * string) list;
  maintain : unit -> unit;  (** Drive compaction/flushes to quiescence. *)
  close : unit -> unit;
  env : Env.t;
  logical_bytes : unit -> int;
  metrics : unit -> string;  (** JSON metrics snapshot (see {!Evendb_obs.Obs.to_json}). *)
  attr : unit -> Evendb_obs.Attr.t;
      (** The engine's per-op tail-latency attribution handle: slow-op
          ring, cause fractions and watchdog (see {!Evendb_obs.Attr}).
          Benchmarks use it to calibrate slow thresholds and export
          per-phase breakdowns. *)
  absorbed_failures : unit -> int;
      (** Operations swallowed by {!fault_tolerant} (0 on a bare engine). *)
}

val evendb : ?config:Evendb_core.Config.t -> Env.t -> t

val evendb_sharded :
  ?config:Evendb_core.Config.t -> ?shared_commit:bool -> shards:int -> Env.t -> t
(** {!Evendb_shard} front end: [shards] range shards with uniform split
    keys over the YCSB key space, all inside [env] (disjoint
    name-prefixed sub-namespaces). *)

val lsm : ?config:Evendb_lsm.Lsm.Config.t -> Env.t -> t
val flsm : ?config:Evendb_flsm.Flsm.Config.t -> Env.t -> t

val fault_tolerant : t -> t
(** Wrap every operation so a typed {!Env.Io_error} is absorbed and
    counted instead of propagating — benchmarks under an injected
    fault profile keep driving load when an operation fails cleanly.
    Applied by the bench harness whenever a fault profile is set. *)

val write_amplification : t -> float
(** Physical bytes written / logical bytes accepted (measured from the
    environment's I/O counters). *)

val bytes_read : t -> int
val bytes_written : t -> int
val space_used : t -> int
