open Evendb_util

type t = {
  n_apps : int;
  zipf : Power_law.t;
  rng : Rng.t;
  value_bytes : int;
  mutable clock : int; (* global event timestamp *)
  per_app_seq : int array; (* events emitted per app *)
  value_base : string;
}

let create ?(apps = 2000) ?(theta = 1.7) ?(value_bytes = 800) ~seed () =
  if apps <= 0 then invalid_arg "Trace.create: apps <= 0";
  let rng = Rng.create seed in
  {
    n_apps = apps;
    zipf = Power_law.create ~exponent:theta apps;
    rng;
    value_bytes;
    clock = 0;
    per_app_seq = Array.make apps 0;
    value_base = Rng.string rng value_bytes;
  }

let apps t = t.n_apps

(* Rank -> app id dispersal, so popular apps are spread over the id
   space like real app ids. *)
let app_of_rank t rank = Zipf.scramble t.n_apps rank

let sample_app t = app_of_rank t (Power_law.next t.zipf t.rng)

let key ~app ~ts ~seq = Printf.sprintf "app%05d/%010d/%04d" app ts seq

let next_event t =
  let app = sample_app t in
  t.clock <- t.clock + 1;
  let seq = t.per_app_seq.(app) in
  t.per_app_seq.(app) <- seq + 1;
  let k = key ~app ~ts:t.clock ~seq:(seq land 9999) in
  let v =
    let b = Bytes.of_string t.value_base in
    let stamp = string_of_int t.clock in
    Bytes.blit_string stamp 0 b 0 (min (String.length stamp) (Bytes.length b));
    Bytes.unsafe_to_string b
  in
  (k, v)

let app_of_key k =
  if String.length k < 8 || String.sub k 0 3 <> "app" then invalid_arg "Trace.app_of_key";
  int_of_string (String.sub k 3 5)

let app_range t app =
  if app < 0 || app >= t.n_apps then invalid_arg "Trace.app_range";
  (Printf.sprintf "app%05d/" app, Printf.sprintf "app%05d~" app)

let recent_range t app ~events =
  (* Events of one app are spread over the global clock; approximate
     the "last N events" window by a timestamp range sized by the
     app's observed event share. *)
  let emitted = max 1 t.per_app_seq.(app) in
  let span = max 1 (t.clock * events / emitted) in
  let lo_ts = max 0 (t.clock - span) in
  (Printf.sprintf "app%05d/%010d" app lo_ts, Printf.sprintf "app%05d~" app)

let popularity t ~samples =
  let counts = Array.make t.n_apps 0 in
  let rng = Rng.copy t.rng in
  for _ = 1 to samples do
    let rank = Power_law.next t.zipf rng in
    counts.(rank) <- counts.(rank) + 1
  done;
  Array.to_list counts
  |> List.mapi (fun rank c -> (rank + 1, float_of_int c /. float_of_int samples))
  |> List.filter (fun (_, p) -> p > 0.0)
