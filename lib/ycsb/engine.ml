open Evendb_storage

type t = {
  name : string;
  put : string -> string -> unit;
  get : string -> string option;
  delete : string -> unit;
  scan : low:string -> high:string -> limit:int -> (string * string) list;
  maintain : unit -> unit;
  close : unit -> unit;
  env : Env.t;
  logical_bytes : unit -> int;
  metrics : unit -> string;
  attr : unit -> Evendb_obs.Attr.t;
  absorbed_failures : unit -> int;
}

let evendb ?config env =
  let db = Evendb_core.Db.open_ ?config env in
  {
    name = "EvenDB";
    put = Evendb_core.Db.put db;
    get = Evendb_core.Db.get db;
    delete = Evendb_core.Db.delete db;
    scan = (fun ~low ~high ~limit -> Evendb_core.Db.scan db ~limit ~low ~high ());
    maintain = (fun () -> Evendb_core.Db.maintain db);
    close = (fun () -> Evendb_core.Db.close db);
    env;
    logical_bytes = (fun () -> Evendb_core.Db.logical_bytes_written db);
    metrics = (fun () -> Evendb_core.Db.metrics_dump db `Json);
    attr = (fun () -> Evendb_core.Db.attr db);
    absorbed_failures = (fun () -> 0);
  }

(* Range-sharded front end over the YCSB key space: n shards with
   uniform split keys over [Keys.encode]'s full range, so the scrambled
   (uniform) key stream load-balances across them — and so
   [Workload.Range_uniform shards] slices map one-to-one onto shards. *)
let evendb_sharded ?config ?shared_commit ~shards env =
  if shards < 1 then invalid_arg "Engine.evendb_sharded: shards < 1";
  let boundaries =
    let key_space = 1 lsl Keys.key_bits in
    List.init (shards - 1) (fun i -> Keys.encode ((i + 1) * (key_space / shards)))
  in
  let db = Evendb_shard.open_ ?config ?shared_commit ~boundaries env in
  {
    name = Printf.sprintf "EvenDB-sharded-%d" shards;
    put = Evendb_shard.put db;
    get = Evendb_shard.get db;
    delete = Evendb_shard.delete db;
    scan = (fun ~low ~high ~limit -> Evendb_shard.scan db ~limit ~low ~high ());
    maintain = (fun () -> Evendb_shard.maintain db);
    close = (fun () -> Evendb_shard.close db);
    env;
    logical_bytes = (fun () -> Evendb_shard.logical_bytes_written db);
    metrics = (fun () -> Evendb_shard.metrics_dump db `Json);
    attr = (fun () -> Evendb_shard.attr db);
    absorbed_failures = (fun () -> 0);
  }

let lsm ?config env =
  let db = Evendb_lsm.Lsm.open_ ?config env in
  {
    name = "RocksDB-like LSM";
    put = Evendb_lsm.Lsm.put db;
    get = Evendb_lsm.Lsm.get db;
    delete = Evendb_lsm.Lsm.delete db;
    scan = (fun ~low ~high ~limit -> Evendb_lsm.Lsm.scan db ~limit ~low ~high ());
    maintain = (fun () -> Evendb_lsm.Lsm.compact_now db);
    close = (fun () -> Evendb_lsm.Lsm.close db);
    env;
    logical_bytes = (fun () -> Evendb_lsm.Lsm.logical_bytes_written db);
    metrics = (fun () -> Evendb_lsm.Lsm.metrics_dump db `Json);
    attr = (fun () -> Evendb_lsm.Lsm.attr db);
    absorbed_failures = (fun () -> 0);
  }

let flsm ?config env =
  let db = Evendb_flsm.Flsm.open_ ?config env in
  {
    name = "PebblesDB-like FLSM";
    put = Evendb_flsm.Flsm.put db;
    get = Evendb_flsm.Flsm.get db;
    delete = Evendb_flsm.Flsm.delete db;
    scan = (fun ~low ~high ~limit -> Evendb_flsm.Flsm.scan db ~limit ~low ~high ());
    maintain = (fun () -> Evendb_flsm.Flsm.compact_now db);
    close = (fun () -> Evendb_flsm.Flsm.close db);
    env;
    logical_bytes = (fun () -> Evendb_flsm.Flsm.logical_bytes_written db);
    metrics = (fun () -> Evendb_flsm.Flsm.metrics_dump db `Json);
    attr = (fun () -> Evendb_flsm.Flsm.attr db);
    absorbed_failures = (fun () -> 0);
  }

let bytes_written t = (Io_stats.snapshot (Env.stats t.env)).Io_stats.bytes_written
let bytes_read t = (Io_stats.snapshot (Env.stats t.env)).Io_stats.bytes_read

let write_amplification t =
  let logical = t.logical_bytes () in
  if logical = 0 then 0.0 else float_of_int (bytes_written t) /. float_of_int logical

let space_used t = Env.space_used t.env

(* Benchmarks under an injected fault profile must keep driving load
   when an operation fails cleanly: wrap every op so a typed storage
   error is absorbed and counted instead of killing the experiment.
   Reads cannot be injected, but scans and gets are wrapped anyway so
   the facade stays uniformly total. *)
let fault_tolerant e =
  let absorbed = Atomic.make 0 in
  let guard f = try f () with Env.Io_error _ -> Atomic.incr absorbed in
  let guard_v default f = try f () with Env.Io_error _ -> Atomic.incr absorbed; default in
  {
    e with
    put = (fun k v -> guard (fun () -> e.put k v));
    delete = (fun k -> guard (fun () -> e.delete k));
    get = (fun k -> guard_v None (fun () -> e.get k));
    scan = (fun ~low ~high ~limit -> guard_v [] (fun () -> e.scan ~low ~high ~limit));
    maintain = (fun () -> guard e.maintain);
    close = (fun () -> guard e.close);
    absorbed_failures = (fun () -> e.absorbed_failures () + Atomic.get absorbed);
  }
