open Evendb_util

let key_bits = 32
let prefix_bits = 14
let suffix_bits = key_bits - prefix_bits
let max_key = 1 lsl key_bits

(* Hot path for every workload op: a hand-rolled digit fill is ~5x
   cheaper than [Printf.sprintf "user%010d"], and at 8 sync writers on
   one core the per-op CPU sits directly on the group-commit batch
   reform path. Output is byte-identical to the sprintf form. *)
let encode v =
  if v < 0 || v >= max_key then invalid_arg "Keys.encode: out of range";
  let b = Bytes.make 14 '0' in
  Bytes.blit_string "user" 0 b 0 4;
  let rec fill i v =
    if v > 0 then begin
      Bytes.unsafe_set b i (Char.unsafe_chr (Char.code '0' + (v mod 10)));
      fill (i - 1) (v / 10)
    end
  in
  fill 13 v;
  Bytes.unsafe_to_string b

let decode s =
  if String.length s <> 14 || String.sub s 0 4 <> "user" then
    invalid_arg "Keys.decode: malformed key";
  int_of_string (String.sub s 4 10)

let simple i = encode (Zipf.scramble max_key i)

let composite ~prefix ~suffix =
  if prefix < 0 || prefix >= 1 lsl prefix_bits then invalid_arg "Keys.composite: bad prefix";
  if suffix < 0 || suffix >= 1 lsl suffix_bits then invalid_arg "Keys.composite: bad suffix";
  encode ((prefix lsl suffix_bits) lor suffix)

let composite_range ~prefix =
  (composite ~prefix ~suffix:0, composite ~prefix ~suffix:((1 lsl suffix_bits) - 1))
