open Evendb_util

let key_bits = 32
let prefix_bits = 14
let suffix_bits = key_bits - prefix_bits
let max_key = 1 lsl key_bits

let encode v =
  if v < 0 || v >= max_key then invalid_arg "Keys.encode: out of range";
  Printf.sprintf "user%010d" v

let decode s =
  if String.length s <> 14 || String.sub s 0 4 <> "user" then
    invalid_arg "Keys.decode: malformed key";
  int_of_string (String.sub s 4 10)

let simple i = encode (Zipf.scramble max_key i)

let composite ~prefix ~suffix =
  if prefix < 0 || prefix >= 1 lsl prefix_bits then invalid_arg "Keys.composite: bad prefix";
  if suffix < 0 || suffix >= 1 lsl suffix_bits then invalid_arg "Keys.composite: bad suffix";
  encode ((prefix lsl suffix_bits) lor suffix)

let composite_range ~prefix =
  (composite ~prefix ~suffix:0, composite ~prefix ~suffix:((1 lsl suffix_bits) - 1))
