open Evendb_util
open Evendb_storage
open Evendb_bloom

let magic = "EVSST002"
let footer_magic = "EVSSTEND"

(* index_off, index_len, bloom_off, bloom_len, index_crc, bloom_crc, magic *)
let footer_size = 8 + 8 + 8 + 8 + 4 + 4 + 8

(* Entry encoding inside a block:
   [op : 1B] [klen] [key] [version] [counter] ([vlen] [value] for puts),
   varints throughout. Every region of the file is covered by a CRC32C:
   the header's min-key, each data block (checksum stored in its index
   entry), the bloom section and the index itself (checksums in the
   footer). A flipped byte anywhere is detected either by one of those
   checksums or by the structural invariants [open_] enforces on the
   footer's offsets, and surfaces as the typed [Env.Corruption]. *)

let op_put = 0
let op_delete = 1

let encode_entry buf (e : Kv_iter.entry) =
  Buffer.add_char buf (Char.chr (match e.value with Some _ -> op_put | None -> op_delete));
  Varint.write buf (String.length e.key);
  Buffer.add_string buf e.key;
  Varint.write buf e.version;
  Varint.write buf e.counter;
  match e.value with
  | Some v ->
    Varint.write buf (String.length v);
    Buffer.add_string buf v
  | None -> ()

let decode_entry s pos : Kv_iter.entry * int =
  let op = Char.code s.[pos] in
  let klen, p = Varint.read s (pos + 1) in
  let key = String.sub s p klen in
  let p = p + klen in
  let version, p = Varint.read s p in
  let counter, p = Varint.read s p in
  if op = op_delete then ({ key; value = None; version; counter }, p)
  else begin
    let vlen, p = Varint.read s p in
    ({ key; value = Some (String.sub s p vlen); version; counter }, p + vlen)
  end

(* Same decoders over a cached (bigarray-backed) block: only the keys
   and values are materialized as strings; the block itself is never
   copied. Out-of-bounds access raises [Invalid_argument], like the
   string decoders, so both paths share their corruption handling. *)
let read_varint_big (b : Bigslice.t) pos =
  let rec go acc shift pos =
    let c = Char.code (Bigslice.get b pos) in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 <> 0 then go acc (shift + 7) (pos + 1) else (acc, pos + 1)
  in
  go 0 0 pos

let decode_entry_big (b : Bigslice.t) pos : Kv_iter.entry * int =
  let op = Char.code (Bigslice.get b pos) in
  let klen, p = read_varint_big b (pos + 1) in
  let key = Bigslice.substring b ~off:p ~len:klen in
  let p = p + klen in
  let version, p = read_varint_big b p in
  let counter, p = read_varint_big b p in
  if op = op_delete then ({ Kv_iter.key; value = None; version; counter }, p)
  else begin
    let vlen, p = read_varint_big b p in
    ({ Kv_iter.key; value = Some (Bigslice.substring b ~off:p ~len:vlen); version; counter },
     p + vlen)
  end

type block_meta = {
  first_key : string;
  offset : int;
  length : int;
  entries : int;
  crc : int32; (* unmasked CRC32C of the block's bytes *)
}

let add_u64_le buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let read_u64_le s pos =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

let add_u32_le buf (v : int32) =
  let v = Int32.to_int v land 0xffffffff in
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let read_u32_le s pos =
  let b i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

module Builder = struct
  type t = {
    env : Env.t;
    file : Env.file;
    name : string;
    block_size : int;
    bloom_bits_per_key : int;
    with_bloom : bool;
    block : Buffer.t;
    mutable block_first_key : string option;
    mutable block_entries : int;
    mutable pos : int;
    mutable index : block_meta list; (* reversed *)
    mutable count : int;
    mutable last : Kv_iter.entry option;
    mutable keys : string list; (* distinct keys for the bloom, reversed *)
    mutable finished : bool;
  }

  let create env ?(block_size = 4096) ?(bloom_bits_per_key = 10) ?(with_bloom = false)
      ~name ~min_key () =
    let file = Env.create env name in
    let header = Buffer.create 64 in
    Buffer.add_string header magic;
    Varint.write header (String.length min_key);
    Buffer.add_string header min_key;
    add_u32_le header (Crc32c.mask (Crc32c.string min_key));
    Env.append file (Buffer.contents header);
    {
      env;
      file;
      name;
      block_size;
      bloom_bits_per_key;
      with_bloom;
      block = Buffer.create (2 * block_size);
      block_first_key = None;
      block_entries = 0;
      pos = Buffer.length header;
      index = [];
      count = 0;
      last = None;
      keys = [];
      finished = false;
    }

  let flush_block t =
    match t.block_first_key with
    | None -> ()
    | Some first_key ->
      let length = Buffer.length t.block in
      let contents = Buffer.contents t.block in
      Env.append t.file contents;
      t.index <-
        { first_key; offset = t.pos; length; entries = t.block_entries;
          crc = Crc32c.string contents }
        :: t.index;
      t.pos <- t.pos + length;
      Buffer.clear t.block;
      t.block_first_key <- None;
      t.block_entries <- 0

  let add t (e : Kv_iter.entry) =
    if t.finished then invalid_arg "Sstable.Builder.add: already finished";
    (match t.last with
    | Some prev when Kv_iter.compare_entries prev e >= 0 ->
      invalid_arg "Sstable.Builder.add: entries out of order"
    | _ -> ());
    if t.with_bloom then begin
      match t.keys with
      | k :: _ when String.equal k e.key -> ()
      | _ -> t.keys <- e.key :: t.keys
    end;
    (* Only split between distinct keys so that all versions of a key
       live in one block (versioned lookups then read a single block). *)
    (match t.last with
    | Some prev
      when Buffer.length t.block >= t.block_size && not (String.equal prev.key e.key) ->
      flush_block t
    | _ -> ());
    if t.block_first_key = None then t.block_first_key <- Some e.key;
    encode_entry t.block e;
    t.block_entries <- t.block_entries + 1;
    t.count <- t.count + 1;
    t.last <- Some e

  let entry_count t = t.count

  let abort t =
    if not t.finished then begin
      t.finished <- true;
      Env.close_file t.file;
      (try Env.delete t.env t.name with _ -> ())
    end

  let finish_exn t =
    flush_block t;
    (* Bloom section *)
    let bloom_off = t.pos in
    let bloom_str =
      if not t.with_bloom then ""
      else begin
        let filter = Bloom.create ~bits_per_key:t.bloom_bits_per_key (List.length t.keys) in
        List.iter (fun k -> Bloom.add filter k) t.keys;
        Bloom.serialize filter
      end
    in
    if bloom_str <> "" then Env.append t.file bloom_str;
    let bloom_len = String.length bloom_str in
    t.pos <- t.pos + bloom_len;
    (* Index section *)
    let index_buf = Buffer.create 1024 in
    let blocks = List.rev t.index in
    Varint.write index_buf (List.length blocks);
    Varint.write index_buf t.count;
    List.iter
      (fun b ->
        Varint.write index_buf (String.length b.first_key);
        Buffer.add_string index_buf b.first_key;
        Varint.write index_buf b.offset;
        Varint.write index_buf b.length;
        Varint.write index_buf b.entries;
        add_u32_le index_buf (Crc32c.mask b.crc))
      blocks;
    let index_str = Buffer.contents index_buf in
    let index_off = t.pos in
    Env.append t.file index_str;
    t.pos <- t.pos + String.length index_str;
    (* Footer *)
    let footer = Buffer.create footer_size in
    add_u64_le footer index_off;
    add_u64_le footer (String.length index_str);
    add_u64_le footer bloom_off;
    add_u64_le footer bloom_len;
    add_u32_le footer (Crc32c.mask (Crc32c.string index_str));
    add_u32_le footer (Crc32c.mask (Crc32c.string bloom_str));
    Buffer.add_string footer footer_magic;
    Env.append t.file (Buffer.contents footer);
    Env.fsync t.file;
    Env.close_file t.file

  (* A table is never observable half-written: if any append or fsync
     of the tail sections fails, the partial file is deleted. *)
  let finish t =
    if t.finished then invalid_arg "Sstable.Builder.finish: already finished";
    t.finished <- true;
    try finish_exn t
    with exn ->
      Env.close_file t.file;
      (try Env.delete t.env t.name with _ -> ());
      raise exn
end

module Reader = struct
  type t = {
    env : Env.t;
    name : string;
    chunk_min_key : string;
    blocks : block_meta array;
    count : int;
    bloom : Bloom.t option;
  }

  let corrupt env name detail =
    Env.note_corruption env;
    Io_error.raise_corruption ~file:name ~detail

  let open_ env name =
    let corrupt detail = corrupt env name detail in
    let file_len =
      try Env.size env name with Not_found -> corrupt "file missing"
    in
    if file_len < footer_size + String.length magic then corrupt "file too small";
    match
      (* Header *)
      let header = Env.read_at env name ~off:0 ~len:(min file_len 4096) in
      if String.sub header 0 8 <> magic then corrupt "bad magic";
      let min_key_len, p = Varint.read header 8 in
      let chunk_min_key =
        if p + min_key_len + 4 <= String.length header then String.sub header p min_key_len
        else
          (* pathological: huge min key spilling past the probe read *)
          Env.read_at env name ~off:p ~len:min_key_len
      in
      let header_crc_str =
        if p + min_key_len + 4 <= String.length header then String.sub header (p + min_key_len) 4
        else Env.read_at env name ~off:(p + min_key_len) ~len:4
      in
      let header_crc = Crc32c.unmask (read_u32_le header_crc_str 0) in
      if Crc32c.string chunk_min_key <> header_crc then corrupt "header checksum mismatch";
      let header_len = p + min_key_len + 4 in
      (* Footer *)
      let footer = Env.read_at env name ~off:(file_len - footer_size) ~len:footer_size in
      if String.sub footer (footer_size - 8) 8 <> footer_magic then corrupt "bad footer magic";
      let index_off = read_u64_le footer 0 in
      let index_len = read_u64_le footer 8 in
      let bloom_off = read_u64_le footer 16 in
      let bloom_len = read_u64_le footer 24 in
      let index_crc = Crc32c.unmask (read_u32_le footer 32) in
      let bloom_crc = Crc32c.unmask (read_u32_le footer 36) in
      (* The three sections must tile the file exactly: blocks from the
         end of the header to bloom_off, bloom to index_off, index to
         the footer. A flipped byte in any footer offset breaks this. *)
      if bloom_off < header_len || bloom_off + bloom_len <> index_off
         || index_off + index_len + footer_size <> file_len
      then corrupt "footer offsets inconsistent";
      let index_str =
        if index_len = 0 then "" else Env.read_at env name ~off:index_off ~len:index_len
      in
      if Crc32c.string index_str <> index_crc then corrupt "index checksum mismatch";
      let n_blocks, p = Varint.read index_str 0 in
      let count, p = Varint.read index_str p in
      let pos = ref p in
      let expected_off = ref header_len in
      let blocks =
        Array.init n_blocks (fun _ ->
            let klen, p = Varint.read index_str !pos in
            let first_key = String.sub index_str p klen in
            let p = p + klen in
            let offset, p = Varint.read index_str p in
            let length, p = Varint.read index_str p in
            let entries, p = Varint.read index_str p in
            let crc = Crc32c.unmask (read_u32_le index_str p) in
            pos := p + 4;
            if offset <> !expected_off then corrupt "blocks not contiguous";
            expected_off := offset + length;
            { first_key; offset; length; entries; crc })
      in
      if !expected_off <> bloom_off then corrupt "blocks do not reach bloom section";
      let bloom =
        if bloom_len = 0 then begin
          if Crc32c.string "" <> bloom_crc then corrupt "bloom checksum mismatch";
          None
        end
        else begin
          let bloom_str = Env.read_at env name ~off:bloom_off ~len:bloom_len in
          if Crc32c.string bloom_str <> bloom_crc then corrupt "bloom checksum mismatch";
          Some (Bloom.deserialize bloom_str)
        end
      in
      { env; name; chunk_min_key; blocks; count; bloom }
    with
    | t -> t
    | exception Invalid_argument _ ->
      (* A stray decode/range failure while parsing means a mangled
         structure the explicit checks didn't name. *)
      corrupt "malformed structure"

  let name t = t.name
  let chunk_min_key t = t.chunk_min_key
  let entry_count t = t.count

  (* Direct, always-verifying block read: bypasses the shared block
     cache so [verify] (scrub) checks the bytes actually on disk, not a
     trusted cached copy. *)
  let read_block t i =
    let b = t.blocks.(i) in
    let data = Env.read_at t.env t.name ~off:b.offset ~len:b.length in
    if Crc32c.string data <> b.crc then
      corrupt t.env t.name (Printf.sprintf "block %d checksum mismatch" i);
    data

  (* Serving-path block read through the environment's shared cache:
     the fill closure verifies the CRC once, a hit returns the cached
     slice with no copy and no re-verification. *)
  let fetch_block t i =
    let b = t.blocks.(i) in
    let fill () =
      let data = Env.pread t.env t.name ~off:b.offset ~len:b.length in
      if Crc32c.bigslice data ~pos:0 ~len:b.length <> b.crc then
        corrupt t.env t.name (Printf.sprintf "block %d checksum mismatch" i);
      data
    in
    match Env.block_cache t.env with
    | Some bc ->
      Evendb_cache.Block_cache.find_or_fill bc ~space:(Env.cache_space t.env)
        ~file:t.name ~index:i ~fill
    | None -> fill ()

  let block_entries t i =
    let n = t.blocks.(i).entries in
    let entries = Array.make n None in
    match Env.block_cache t.env with
    | None ->
      (* No cache installed: the historical string read path. *)
      let data = read_block t i in
      (match
         let pos = ref 0 in
         for j = 0 to n - 1 do
           let e, next = decode_entry data !pos in
           entries.(j) <- Some e;
           pos := next
         done
       with
      | () -> Array.map Option.get entries
      | exception Invalid_argument _ ->
        corrupt t.env t.name (Printf.sprintf "block %d undecodable" i))
    | Some _ ->
      let data = fetch_block t i in
      (match
         let pos = ref 0 in
         for j = 0 to n - 1 do
           let e, next = decode_entry_big data !pos in
           entries.(j) <- Some e;
           pos := next
         done
       with
      | () -> Array.map Option.get entries
      | exception Invalid_argument _ ->
        corrupt t.env t.name (Printf.sprintf "block %d undecodable" i))

  let verify t =
    (* [open_] already checked header, footer offsets, index and bloom
       checksums; what remains is every data block. *)
    Array.iteri (fun i _ -> ignore (read_block t i)) t.blocks

  let first_key t =
    if Array.length t.blocks = 0 then None else Some t.blocks.(0).first_key

  let last_key t =
    let nb = Array.length t.blocks in
    if nb = 0 then None
    else begin
      let entries = block_entries t (nb - 1) in
      Some entries.(Array.length entries - 1).key
    end

  (* Last block whose first_key <= key; -1 when key precedes everything. *)
  let find_block t key =
    let lo = ref 0 and hi = ref (Array.length t.blocks - 1) and result = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if String.compare t.blocks.(mid).first_key key <= 0 then begin
        result := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    !result

  let may_contain t key = match t.bloom with None -> true | Some b -> Bloom.mem b key

  let get t ?(max_version = max_int) key =
    let bi = find_block t key in
    if bi < 0 then None
    else begin
      (* All versions of a key are within one block (builder splits only
         between distinct keys). *)
      let entries = block_entries t bi in
      let result = ref None in
      (try
         Array.iter
           (fun (e : Kv_iter.entry) ->
             let c = String.compare e.key key in
             if c > 0 then raise Exit
             else if c = 0 && e.version <= max_version then begin
               result := Some e;
               raise Exit
             end)
           entries
       with Exit -> ());
      !result
    end

  let get_all_versions t key =
    let bi = find_block t key in
    if bi < 0 then []
    else
      Array.to_list (block_entries t bi)
      |> List.filter (fun (e : Kv_iter.entry) -> String.equal e.key key)

  let iter_blocks_from t start_block skip_until =
    let bi = ref start_block in
    let cur = ref [||] in
    let ci = ref 0 in
    let rec next () =
      if !ci < Array.length !cur then begin
        let e = (!cur).(!ci) in
        incr ci;
        match skip_until with
        | Some k when String.compare e.Kv_iter.key k < 0 -> next ()
        | _ -> Some e
      end
      else if !bi < Array.length t.blocks then begin
        cur := block_entries t !bi;
        ci := 0;
        incr bi;
        next ()
      end
      else None
    in
    next

  let iter t = iter_blocks_from t 0 None

  (* Iterator positioned at the [n]th entry of the table (0-based,
     counted across blocks in file order) — the sorted view's seek
     primitive: its fences record how many sstable entries a token
     prefix consumed, so a cursor can resume mid-table without key
     comparisons. *)
  let iter_from_nth t n =
    if n < 0 then invalid_arg "Sstable.iter_from_nth: negative index";
    let bi = ref 0 and skip = ref n in
    while !bi < Array.length t.blocks && !skip >= t.blocks.(!bi).entries do
      skip := !skip - t.blocks.(!bi).entries;
      incr bi
    done;
    if !bi >= Array.length t.blocks then fun () -> None
    else begin
      let cur = ref (block_entries t !bi) in
      let ci = ref !skip in
      let bi = ref (!bi + 1) in
      let rec next () =
        if !ci < Array.length !cur then begin
          let e = (!cur).(!ci) in
          incr ci;
          Some e
        end
        else if !bi < Array.length t.blocks then begin
          cur := block_entries t !bi;
          ci := 0;
          incr bi;
          next ()
        end
        else None
      in
      next
    end

  let iter_from t key =
    let bi = find_block t key in
    let start = if bi < 0 then 0 else bi in
    iter_blocks_from t start (Some key)

  (* Best-effort extraction from a damaged table, for fsck --repair:
     whatever the index can still locate and whose block checksum still
     verifies is recovered; everything else is dropped. Conservative by
     design — nothing is decoded unless its CRC passed, so salvage can
     never resurrect garbage. Returns (min_key if trustworthy, entries
     in canonical order). Never raises [Env.Corruption]. *)
  let salvage env name =
    let try_opt f = try Some (f ()) with _ -> None in
    match try_opt (fun () -> Env.size env name) with
    | None -> (None, [])
    | Some file_len when file_len < footer_size + String.length magic -> (None, [])
    | Some file_len ->
      let min_key =
        try_opt (fun () ->
            let header = Env.read_at env name ~off:0 ~len:(min file_len 4096) in
            if String.sub header 0 8 <> magic then raise Exit;
            let min_key_len, p = Varint.read header 8 in
            let k =
              if p + min_key_len <= String.length header then String.sub header p min_key_len
              else Env.read_at env name ~off:p ~len:min_key_len
            in
            let crc_str =
              if p + min_key_len + 4 <= String.length header then
                String.sub header (p + min_key_len) 4
              else Env.read_at env name ~off:(p + min_key_len) ~len:4
            in
            if Crc32c.string k <> Crc32c.unmask (read_u32_le crc_str 0) then raise Exit;
            k)
      in
      let entries =
        match
          try_opt (fun () ->
              let footer = Env.read_at env name ~off:(file_len - footer_size) ~len:footer_size in
              if String.sub footer (footer_size - 8) 8 <> footer_magic then raise Exit;
              let index_off = read_u64_le footer 0 in
              let index_len = read_u64_le footer 8 in
              if index_off < 0 || index_len < 0 || index_off + index_len > file_len then
                raise Exit;
              let index_str =
                if index_len = 0 then "" else Env.read_at env name ~off:index_off ~len:index_len
              in
              if Crc32c.string index_str <> Crc32c.unmask (read_u32_le footer 32) then raise Exit;
              index_str)
        with
        | None -> []
        | Some index_str -> (
          match
            try_opt (fun () ->
                let n_blocks, p = Varint.read index_str 0 in
                let _count, p = Varint.read index_str p in
                let pos = ref p in
                List.init n_blocks (fun _ ->
                    let klen, p = Varint.read index_str !pos in
                    let first_key = String.sub index_str p klen in
                    let p = p + klen in
                    let offset, p = Varint.read index_str p in
                    let length, p = Varint.read index_str p in
                    let entries, p = Varint.read index_str p in
                    let crc = Crc32c.unmask (read_u32_le index_str p) in
                    pos := p + 4;
                    { first_key; offset; length; entries; crc }))
          with
          | None -> []
          | Some blocks ->
            List.concat_map
              (fun b ->
                match
                  try_opt (fun () ->
                      if b.offset < 0 || b.length < 0 || b.offset + b.length > file_len then
                        raise Exit;
                      let data = Env.read_at env name ~off:b.offset ~len:b.length in
                      if Crc32c.string data <> b.crc then raise Exit;
                      let out = ref [] in
                      let pos = ref 0 in
                      for _ = 1 to b.entries do
                        let e, next = decode_entry data !pos in
                        out := e :: !out;
                        pos := next
                      done;
                      List.rev !out)
                with
                | Some es -> es
                | None -> [])
              blocks)
      in
      (min_key, entries)
end
