open Evendb_util
open Evendb_storage
open Evendb_bloom

let magic = "EVSST001"
let footer_magic = "EVSSTEND"
let footer_size = 8 + 8 + 8 + 8 + 4 + 8

(* Entry encoding inside a block:
   [op : 1B] [klen] [key] [version] [counter] ([vlen] [value] for puts),
   varints throughout. Blocks need no per-entry CRC: the index CRC plus
   immutability make silent truncation detectable, and blocks are only
   reachable through the verified index. *)

let op_put = 0
let op_delete = 1

let encode_entry buf (e : Kv_iter.entry) =
  Buffer.add_char buf (Char.chr (match e.value with Some _ -> op_put | None -> op_delete));
  Varint.write buf (String.length e.key);
  Buffer.add_string buf e.key;
  Varint.write buf e.version;
  Varint.write buf e.counter;
  match e.value with
  | Some v ->
    Varint.write buf (String.length v);
    Buffer.add_string buf v
  | None -> ()

let decode_entry s pos : Kv_iter.entry * int =
  let op = Char.code s.[pos] in
  let klen, p = Varint.read s (pos + 1) in
  let key = String.sub s p klen in
  let p = p + klen in
  let version, p = Varint.read s p in
  let counter, p = Varint.read s p in
  if op = op_delete then ({ key; value = None; version; counter }, p)
  else begin
    let vlen, p = Varint.read s p in
    ({ key; value = Some (String.sub s p vlen); version; counter }, p + vlen)
  end

type block_meta = {
  first_key : string;
  offset : int;
  length : int;
  entries : int;
}

let add_u64_le buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let read_u64_le s pos =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

let add_u32_le buf (v : int32) =
  let v = Int32.to_int v land 0xffffffff in
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let read_u32_le s pos =
  let b i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

module Builder = struct
  type t = {
    env : Env.t;
    file : Env.file;
    name : string;
    block_size : int;
    bloom_bits_per_key : int;
    with_bloom : bool;
    block : Buffer.t;
    mutable block_first_key : string option;
    mutable block_entries : int;
    mutable pos : int;
    mutable index : block_meta list; (* reversed *)
    mutable count : int;
    mutable last : Kv_iter.entry option;
    mutable keys : string list; (* distinct keys for the bloom, reversed *)
    mutable finished : bool;
  }

  let create env ?(block_size = 4096) ?(bloom_bits_per_key = 10) ?(with_bloom = false)
      ~name ~min_key () =
    let file = Env.create env name in
    let header = Buffer.create 64 in
    Buffer.add_string header magic;
    Varint.write header (String.length min_key);
    Buffer.add_string header min_key;
    Env.append file (Buffer.contents header);
    {
      env;
      file;
      name;
      block_size;
      bloom_bits_per_key;
      with_bloom;
      block = Buffer.create (2 * block_size);
      block_first_key = None;
      block_entries = 0;
      pos = Buffer.length header;
      index = [];
      count = 0;
      last = None;
      keys = [];
      finished = false;
    }

  let flush_block t =
    match t.block_first_key with
    | None -> ()
    | Some first_key ->
      let length = Buffer.length t.block in
      Env.append t.file (Buffer.contents t.block);
      t.index <- { first_key; offset = t.pos; length; entries = t.block_entries } :: t.index;
      t.pos <- t.pos + length;
      Buffer.clear t.block;
      t.block_first_key <- None;
      t.block_entries <- 0

  let add t (e : Kv_iter.entry) =
    if t.finished then invalid_arg "Sstable.Builder.add: already finished";
    (match t.last with
    | Some prev when Kv_iter.compare_entries prev e >= 0 ->
      invalid_arg "Sstable.Builder.add: entries out of order"
    | _ -> ());
    if t.with_bloom then begin
      match t.keys with
      | k :: _ when String.equal k e.key -> ()
      | _ -> t.keys <- e.key :: t.keys
    end;
    (* Only split between distinct keys so that all versions of a key
       live in one block (versioned lookups then read a single block). *)
    (match t.last with
    | Some prev
      when Buffer.length t.block >= t.block_size && not (String.equal prev.key e.key) ->
      flush_block t
    | _ -> ());
    if t.block_first_key = None then t.block_first_key <- Some e.key;
    encode_entry t.block e;
    t.block_entries <- t.block_entries + 1;
    t.count <- t.count + 1;
    t.last <- Some e

  let entry_count t = t.count

  let abort t =
    if not t.finished then begin
      t.finished <- true;
      Env.close_file t.file;
      (try Env.delete t.env t.name with _ -> ())
    end

  let finish_exn t =
    flush_block t;
    (* Bloom section *)
    let bloom_off = t.pos in
    let bloom_str =
      if not t.with_bloom then ""
      else begin
        let filter = Bloom.create ~bits_per_key:t.bloom_bits_per_key (List.length t.keys) in
        List.iter (fun k -> Bloom.add filter k) t.keys;
        Bloom.serialize filter
      end
    in
    if bloom_str <> "" then Env.append t.file bloom_str;
    let bloom_len = String.length bloom_str in
    t.pos <- t.pos + bloom_len;
    (* Index section *)
    let index_buf = Buffer.create 1024 in
    let blocks = List.rev t.index in
    Varint.write index_buf (List.length blocks);
    Varint.write index_buf t.count;
    List.iter
      (fun b ->
        Varint.write index_buf (String.length b.first_key);
        Buffer.add_string index_buf b.first_key;
        Varint.write index_buf b.offset;
        Varint.write index_buf b.length;
        Varint.write index_buf b.entries)
      blocks;
    let index_str = Buffer.contents index_buf in
    let index_off = t.pos in
    Env.append t.file index_str;
    t.pos <- t.pos + String.length index_str;
    (* Footer *)
    let footer = Buffer.create footer_size in
    add_u64_le footer index_off;
    add_u64_le footer (String.length index_str);
    add_u64_le footer bloom_off;
    add_u64_le footer bloom_len;
    add_u32_le footer (Crc32c.mask (Crc32c.string index_str));
    Buffer.add_string footer footer_magic;
    Env.append t.file (Buffer.contents footer);
    Env.fsync t.file;
    Env.close_file t.file

  (* A table is never observable half-written: if any append or fsync
     of the tail sections fails, the partial file is deleted. *)
  let finish t =
    if t.finished then invalid_arg "Sstable.Builder.finish: already finished";
    t.finished <- true;
    try finish_exn t
    with exn ->
      Env.close_file t.file;
      (try Env.delete t.env t.name with _ -> ());
      raise exn
end

module Reader = struct
  type t = {
    env : Env.t;
    name : string;
    chunk_min_key : string;
    blocks : block_meta array;
    count : int;
    bloom : Bloom.t option;
  }

  let open_ env name =
    let file_len = try Env.size env name with Not_found -> invalid_arg "Sstable: no such file" in
    if file_len < footer_size + String.length magic then invalid_arg "Sstable: file too small";
    (* Header *)
    let header = Env.read_at env name ~off:0 ~len:(min file_len 4096) in
    if String.sub header 0 8 <> magic then invalid_arg "Sstable: bad magic";
    let min_key_len, p = Varint.read header 8 in
    let chunk_min_key =
      if p + min_key_len <= String.length header then String.sub header p min_key_len
      else
        (* pathological: huge min key spilling past the probe read *)
        Env.read_at env name ~off:p ~len:min_key_len
    in
    (* Footer *)
    let footer = Env.read_at env name ~off:(file_len - footer_size) ~len:footer_size in
    if String.sub footer (footer_size - 8) 8 <> footer_magic then
      invalid_arg "Sstable: bad footer magic";
    let index_off = read_u64_le footer 0 in
    let index_len = read_u64_le footer 8 in
    let bloom_off = read_u64_le footer 16 in
    let bloom_len = read_u64_le footer 24 in
    let index_crc = Crc32c.unmask (read_u32_le footer 32) in
    if index_off + index_len > file_len then invalid_arg "Sstable: index out of range";
    let index_str =
      if index_len = 0 then "" else Env.read_at env name ~off:index_off ~len:index_len
    in
    if Crc32c.string index_str <> index_crc then invalid_arg "Sstable: index checksum mismatch";
    let n_blocks, p = Varint.read index_str 0 in
    let count, p = Varint.read index_str p in
    let pos = ref p in
    let blocks =
      Array.init n_blocks (fun _ ->
          let klen, p = Varint.read index_str !pos in
          let first_key = String.sub index_str p klen in
          let p = p + klen in
          let offset, p = Varint.read index_str p in
          let length, p = Varint.read index_str p in
          let entries, p = Varint.read index_str p in
          pos := p;
          { first_key; offset; length; entries })
    in
    let bloom =
      if bloom_len = 0 then None
      else Some (Bloom.deserialize (Env.read_at env name ~off:bloom_off ~len:bloom_len))
    in
    { env; name; chunk_min_key; blocks; count; bloom }

  let name t = t.name
  let chunk_min_key t = t.chunk_min_key
  let entry_count t = t.count

  let read_block t i =
    let b = t.blocks.(i) in
    Env.read_at t.env t.name ~off:b.offset ~len:b.length

  let block_entries t i =
    let data = read_block t i in
    let n = t.blocks.(i).entries in
    let entries = Array.make n None in
    let pos = ref 0 in
    for j = 0 to n - 1 do
      let e, next = decode_entry data !pos in
      entries.(j) <- Some e;
      pos := next
    done;
    Array.map Option.get entries

  let first_key t =
    if Array.length t.blocks = 0 then None else Some t.blocks.(0).first_key

  let last_key t =
    let nb = Array.length t.blocks in
    if nb = 0 then None
    else begin
      let entries = block_entries t (nb - 1) in
      Some entries.(Array.length entries - 1).key
    end

  (* Last block whose first_key <= key; -1 when key precedes everything. *)
  let find_block t key =
    let lo = ref 0 and hi = ref (Array.length t.blocks - 1) and result = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if String.compare t.blocks.(mid).first_key key <= 0 then begin
        result := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    !result

  let may_contain t key = match t.bloom with None -> true | Some b -> Bloom.mem b key

  let get t ?(max_version = max_int) key =
    let bi = find_block t key in
    if bi < 0 then None
    else begin
      (* All versions of a key are within one block (builder splits only
         between distinct keys). *)
      let entries = block_entries t bi in
      let result = ref None in
      (try
         Array.iter
           (fun (e : Kv_iter.entry) ->
             let c = String.compare e.key key in
             if c > 0 then raise Exit
             else if c = 0 && e.version <= max_version then begin
               result := Some e;
               raise Exit
             end)
           entries
       with Exit -> ());
      !result
    end

  let get_all_versions t key =
    let bi = find_block t key in
    if bi < 0 then []
    else
      Array.to_list (block_entries t bi)
      |> List.filter (fun (e : Kv_iter.entry) -> String.equal e.key key)

  let iter_blocks_from t start_block skip_until =
    let bi = ref start_block in
    let cur = ref [||] in
    let ci = ref 0 in
    let rec next () =
      if !ci < Array.length !cur then begin
        let e = (!cur).(!ci) in
        incr ci;
        match skip_until with
        | Some k when String.compare e.Kv_iter.key k < 0 -> next ()
        | _ -> Some e
      end
      else if !bi < Array.length t.blocks then begin
        cur := block_entries t !bi;
        ci := 0;
        incr bi;
        next ()
      end
      else None
    in
    next

  let iter t = iter_blocks_from t 0 None

  let iter_from t key =
    let bi = find_block t key in
    let start = if bi < 0 then 0 else bi in
    iter_blocks_from t start (Some key)
end
