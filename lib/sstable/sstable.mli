(** Block-based Sorted String Table.

    The compacted, sorted half of a funk (§2.2) and the file format of
    the LSM/FLSM baselines. Entries are stored in canonical order (key
    ascending, then newest version first) in ~4 KB blocks; an index of
    (first key, offset, length) per block is loaded into memory when
    the table is opened, so a point lookup reads exactly one block run.

    The header records the owning chunk's minimal key, which lets
    EvenDB rebuild its chunk list from the funk files alone on
    recovery — there is no global manifest to replay (§3.5). An
    optional embedded Bloom filter serves the LSM baselines.

    Every region is covered by a CRC32C — the header's min-key, each
    data block, the bloom section and the index — and the footer's
    offsets must tile the file exactly, so any single flipped byte is
    detected on read and surfaces as the typed {!Env.Corruption}.

    Files are immutable once [finish]ed; readers are safe to share
    across domains. *)

open Evendb_util
open Evendb_storage

module Builder : sig
  type t

  val create :
    Env.t -> ?block_size:int -> ?bloom_bits_per_key:int -> ?with_bloom:bool ->
    name:string -> min_key:string -> unit -> t
  (** Start writing table [name]. [min_key] is recorded in the header
      (the chunk's range start; baselines pass the first key or ""). *)

  val add : t -> Kv_iter.entry -> unit
  (** Entries must arrive in {!Kv_iter.compare_entries} order; raises
      [Invalid_argument] otherwise. *)

  val entry_count : t -> int

  val finish : t -> unit
  (** Write index + footer, fsync and close. A finished empty table is
      valid and opens to an empty reader. If an I/O failure interrupts
      the tail sections, the partial file is deleted and the error
      re-raised — a table never exists half-written. *)

  val abort : t -> unit
  (** Discard an unfinished build: close and delete the partial file.
      Call when an {!Env.Io_error} interrupted {!add}. No-op after
      [finish]. *)
end

module Reader : sig
  type t

  val open_ : Env.t -> string -> t
  (** Loads header, block index and bloom filter, verifying their
      checksums and the footer's structural invariants. Raises
      {!Env.Corruption} (and counts it on the env) if the file is
      missing, malformed or fails a checksum. *)

  val verify : t -> unit
  (** Verify every data block's checksum ([open_] already verified the
      rest). Raises {!Env.Corruption} on the first bad block. *)

  val salvage : Env.t -> string -> string option * Kv_iter.entry list
  (** Best-effort extraction from a damaged table (fsck --repair):
      the header min-key if its checksum holds, plus the entries of
      every block whose checksum holds. Drops anything unverifiable —
      never resurrects garbage, never raises {!Env.Corruption}. *)

  val name : t -> string
  val chunk_min_key : t -> string
  val entry_count : t -> int

  val first_key : t -> string option
  val last_key : t -> string option
  (** Smallest/largest user key present (None when empty). *)

  val get : t -> ?max_version:int -> string -> Kv_iter.entry option
  (** Newest entry for the key with [version <= max_version]
      (default: newest overall). Tombstones are returned, not
      filtered: the caller decides what a delete means at its level. *)

  val get_all_versions : t -> string -> Kv_iter.entry list
  (** All stored versions of a key, newest first. *)

  val may_contain : t -> string -> bool
  (** Bloom check; [true] when no bloom was embedded. *)

  val iter : t -> Kv_iter.t
  (** Full scan in canonical order. Blocks are fetched lazily. *)

  val iter_from : t -> string -> Kv_iter.t
  (** Scan starting at the first entry with key >= the argument. *)

  val iter_from_nth : t -> int -> Kv_iter.t
  (** Scan starting at the [n]th entry (0-based, across blocks in file
      order); empty when [n >= entry_count]. The sorted view's seek
      primitive. *)
end
