(* Per-chunk access statistics with an exponentially-decayed heat
   score. The table is a grow-only array indexed by the dense chunk id:
   the hot path is one lock-free array load plus atomic increments; a
   mutex is taken only to install a new cell or grow the array (both
   rare — once per chunk). The heat accumulator is the one non-atomic
   field, guarded by a tiny per-cell mutex and decayed on update. *)

type cell = {
  gets : int Atomic.t;
  puts : int Atomic.t;
  scans : int Atomic.t;
  munk_hits : int Atomic.t;
  row_hits : int Atomic.t;
  funk_reads : int Atomic.t;
  rebalances : int Atomic.t;
  splits : int Atomic.t;
  heat_mutex : Mutex.t;
  mutable heat : float;
  mutable heat_at_ns : int;
}

type t = {
  cells : cell option array Atomic.t;
  grow : Mutex.t;
  half_life_ns : float;
}

type component = Munk | Row | Funk

type stat = {
  st_gets : int;
  st_puts : int;
  st_scans : int;
  st_munk_hits : int;
  st_row_hits : int;
  st_funk_reads : int;
  st_rebalances : int;
  st_splits : int;
  st_heat : float;
}

let zero =
  {
    st_gets = 0;
    st_puts = 0;
    st_scans = 0;
    st_munk_hits = 0;
    st_row_hits = 0;
    st_funk_reads = 0;
    st_rebalances = 0;
    st_splits = 0;
    st_heat = 0.0;
  }

let create ~half_life_ns () =
  if half_life_ns <= 0 then invalid_arg "Chunk_stats.create: half_life_ns <= 0";
  {
    cells = Atomic.make (Array.make 16 None);
    grow = Mutex.create ();
    half_life_ns = float_of_int half_life_ns;
  }

let new_cell ~now =
  {
    gets = Atomic.make 0;
    puts = Atomic.make 0;
    scans = Atomic.make 0;
    munk_hits = Atomic.make 0;
    row_hits = Atomic.make 0;
    funk_reads = Atomic.make 0;
    rebalances = Atomic.make 0;
    splits = Atomic.make 0;
    heat_mutex = Mutex.create ();
    heat = 0.0;
    heat_at_ns = now;
  }

(* Install under the mutex; a stale reader that raced the plain array
   store lands here and picks up the same cell. *)
let install t id ~now =
  Mutex.lock t.grow;
  let arr = Atomic.get t.cells in
  let arr =
    if id < Array.length arr then arr
    else begin
      let bigger = Array.make (max (id + 1) (2 * Array.length arr)) None in
      Array.blit arr 0 bigger 0 (Array.length arr);
      Atomic.set t.cells bigger;
      bigger
    end
  in
  let c =
    match arr.(id) with
    | Some c -> c
    | None ->
      let c = new_cell ~now in
      arr.(id) <- Some c;
      c
  in
  Mutex.unlock t.grow;
  c

let cell t id ~now =
  if id < 0 then invalid_arg "Chunk_stats.cell: negative id";
  let arr = Atomic.get t.cells in
  if id < Array.length arr then
    match arr.(id) with Some c -> c | None -> install t id ~now
  else install t id ~now

(* Decay-on-update: heat <- heat * 2^(-dt/half_life) + weight. Between
   touches the stored value goes stale; readers decay it to their own
   "now" (see [decayed_heat]), so the score is always comparable. *)
let touch t c ~now ~weight =
  Mutex.lock c.heat_mutex;
  let dt = now - c.heat_at_ns in
  if dt > 0 then begin
    c.heat <- c.heat *. Float.exp2 (-.float_of_int dt /. t.half_life_ns);
    c.heat_at_ns <- now
  end;
  c.heat <- c.heat +. weight;
  Mutex.unlock c.heat_mutex

let decayed_heat t c ~now =
  Mutex.lock c.heat_mutex;
  let h = c.heat and at = c.heat_at_ns in
  Mutex.unlock c.heat_mutex;
  let dt = now - at in
  if dt > 0 then h *. Float.exp2 (-.float_of_int dt /. t.half_life_ns) else h

let record_get t id comp ~now =
  let c = cell t id ~now in
  Atomic.incr c.gets;
  (match comp with
  | Munk -> Atomic.incr c.munk_hits
  | Row -> Atomic.incr c.row_hits
  | Funk -> Atomic.incr c.funk_reads);
  touch t c ~now ~weight:1.0

let record_put t id ~now =
  let c = cell t id ~now in
  Atomic.incr c.puts;
  touch t c ~now ~weight:1.0

let record_scan t id ~now =
  let c = cell t id ~now in
  Atomic.incr c.scans;
  touch t c ~now ~weight:1.0

let record_rebalance t id ~now =
  let c = cell t id ~now in
  Atomic.incr c.rebalances

let record_split t id ~now =
  let c = cell t id ~now in
  Atomic.incr c.splits

(* Split/merge lineage: children of a split each inherit half the
   parent's decayed heat; a merge child inherits the parents' sum. Op
   counters stay with the retired id (they count what happened to that
   chunk), but heat must follow the key range or a hot range would look
   cold right after every split. *)
let transfer t ~now ~old_ids ~new_ids =
  match new_ids with
  | [] -> ()
  | _ ->
    let inherited =
      List.fold_left (fun acc id -> acc +. decayed_heat t (cell t id ~now) ~now) 0.0 old_ids
    in
    let share = inherited /. float_of_int (List.length new_ids) in
    List.iter
      (fun id ->
        let c = cell t id ~now in
        Mutex.lock c.heat_mutex;
        c.heat <- c.heat +. share;
        c.heat_at_ns <- now;
        Mutex.unlock c.heat_mutex)
      new_ids;
    List.iter
      (fun id ->
        let c = cell t id ~now in
        Mutex.lock c.heat_mutex;
        c.heat <- 0.0;
        c.heat_at_ns <- now;
        Mutex.unlock c.heat_mutex)
      old_ids

let heat t id ~now =
  let arr = Atomic.get t.cells in
  if id >= 0 && id < Array.length arr then
    match arr.(id) with Some c -> decayed_heat t c ~now | None -> 0.0
  else 0.0

let stat_of t c ~now =
  {
    st_gets = Atomic.get c.gets;
    st_puts = Atomic.get c.puts;
    st_scans = Atomic.get c.scans;
    st_munk_hits = Atomic.get c.munk_hits;
    st_row_hits = Atomic.get c.row_hits;
    st_funk_reads = Atomic.get c.funk_reads;
    st_rebalances = Atomic.get c.rebalances;
    st_splits = Atomic.get c.splits;
    st_heat = decayed_heat t c ~now;
  }

let stat t id ~now =
  let arr = Atomic.get t.cells in
  if id >= 0 && id < Array.length arr then
    match arr.(id) with Some c -> Some (stat_of t c ~now) | None -> None
  else None

let stats t ~now =
  let arr = Atomic.get t.cells in
  let acc = ref [] in
  for id = Array.length arr - 1 downto 0 do
    match arr.(id) with
    | Some c -> acc := (id, stat_of t c ~now) :: !acc
    | None -> ()
  done;
  !acc

let zero_residue (id, s) =
  let fields =
    [
      ("gets", s.st_gets);
      ("puts", s.st_puts);
      ("scans", s.st_scans);
      ("munk_hits", s.st_munk_hits);
      ("row_hits", s.st_row_hits);
      ("funk_reads", s.st_funk_reads);
      ("rebalances", s.st_rebalances);
      ("splits", s.st_splits);
    ]
  in
  List.filter_map
    (fun (f, v) -> if v <> 0 then Some (Printf.sprintf "chunk.%d.%s" id f) else None)
    fields
  @ if s.st_heat <> 0.0 then [ Printf.sprintf "chunk.%d.heat" id ] else []

let residue t ~now = List.concat_map (zero_residue) (stats t ~now)

let reset t ~now =
  Mutex.lock t.grow;
  let arr = Atomic.get t.cells in
  Array.iter
    (function
      | None -> ()
      | Some c ->
        Atomic.set c.gets 0;
        Atomic.set c.puts 0;
        Atomic.set c.scans 0;
        Atomic.set c.munk_hits 0;
        Atomic.set c.row_hits 0;
        Atomic.set c.funk_reads 0;
        Atomic.set c.rebalances 0;
        Atomic.set c.splits 0;
        Mutex.lock c.heat_mutex;
        c.heat <- 0.0;
        c.heat_at_ns <- now;
        Mutex.unlock c.heat_mutex)
    arr;
  Mutex.unlock t.grow
