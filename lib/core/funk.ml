open Evendb_util
open Evendb_storage
open Evendb_sstable
open Evendb_log

(* The cached sorted view. [V_unknown] means "not looked at yet":
   the first scan attempts a load from disk; a failed load caches
   [V_none] so scans don't re-read a missing/stale sidecar until a
   rebuild resets the slot to [V_unknown]. *)
type view_state = V_unknown | V_none | V_loaded of Sorted_view.t

type t = {
  funk_id : int;
  funk_env : Env.t;
  sst_reader : Sstable.Reader.t;
  log : Log_file.Writer.t;
  refs : int Atomic.t; (* one per owner + one per reader pin *)
  owners : int Atomic.t; (* chunks currently backed by this funk *)
  retired : bool Atomic.t;
  view : view_state Atomic.t;
}

let sst_name id = Printf.sprintf "funk_%08d.sst" id
let log_name id = Printf.sprintf "funk_%08d.log" id
let view_name id = Printf.sprintf "funk_%08d.view" id

let create_from_iter env ~block_bytes ~id ~min_key it =
  let builder =
    Sstable.Builder.create env ~block_size:block_bytes ~name:(sst_name id) ~min_key ()
  in
  let rec drain () =
    match it () with
    | None -> ()
    | Some e ->
      Sstable.Builder.add builder e;
      drain ()
  in
  (* A funk is never observable half-created: abort the builder if an
     append dies mid-drain, and remove the finished table if the log
     cannot be created, so the only partial artifacts a crash can leave
     are swept as non-live at recovery. *)
  (try drain ()
   with exn ->
     Sstable.Builder.abort builder;
     raise exn);
  Sstable.Builder.finish builder;
  let log =
    try Log_file.Writer.create env (log_name id)
    with exn ->
      (try Env.delete env (sst_name id) with _ -> ());
      raise exn
  in
  {
    funk_id = id;
    funk_env = env;
    sst_reader = Sstable.Reader.open_ env (sst_name id);
    log;
    refs = Atomic.make 1;
    owners = Atomic.make 1;
    retired = Atomic.make false;
    view = Atomic.make V_unknown;
  }

let open_existing env ~id =
  let sst_reader = Sstable.Reader.open_ env (sst_name id) in
  let log = Log_file.Writer.open_append env (log_name id) in
  {
    funk_id = id;
    funk_env = env;
    sst_reader;
    log;
    refs = Atomic.make 1;
    owners = Atomic.make 1;
    retired = Atomic.make false;
    view = Atomic.make V_unknown;
  }

let id t = t.funk_id
let min_key t = Sstable.Reader.chunk_min_key t.sst_reader
let sst t = t.sst_reader
let env t = t.funk_env

let append t e = Log_file.Writer.append t.log e

let log_size t = Log_file.Writer.size t.log
let log_append_count t = Log_file.Writer.append_count t.log

let total_bytes t =
  let sst_bytes = try Env.size t.funk_env (sst_name t.funk_id) with Not_found -> 0 in
  sst_bytes + log_size t

let fsync_log t = Log_file.Writer.fsync t.log

let get_from_log t ?segments ~visible ~max_version key =
  let consider best _off (e : Kv_iter.entry) =
    if String.equal e.key key && e.version <= max_version && visible e.version then
      match best with
      | Some b when Kv_iter.entry_newer b e -> best
      | _ -> Some e
    else best
  in
  match segments with
  | None -> Log_file.Reader.fold t.funk_env (log_name t.funk_id) ~init:None ~f:consider
  | Some ranges ->
    (* Ranges are newest-first; a hit in a newer range cannot be
       superseded by an older one, so stop at the first hit. *)
    let rec scan = function
      | [] -> None
      | (lo, hi) :: rest -> (
        let hi = if hi = max_int then None else Some hi in
        match
          Log_file.Reader.fold ~lo ?hi t.funk_env (log_name t.funk_id) ~init:None ~f:consider
        with
        | Some e -> Some e
        | None -> scan rest)
    in
    scan ranges

let get_from_sst t ~visible ~max_version key =
  (* The SSTable stores versions newest-first per key; take the newest
     visible one within bound. *)
  let versions = Sstable.Reader.get_all_versions t.sst_reader key in
  List.find_opt (fun (e : Kv_iter.entry) -> e.version <= max_version && visible e.version) versions

let log_entries_in_range t ~visible ~low ~high =
  let entries =
    Log_file.Reader.fold t.funk_env (log_name t.funk_id) ~init:[] ~f:(fun acc _off e ->
        if
          String.compare low e.Kv_iter.key <= 0
          && String.compare e.Kv_iter.key high <= 0
          && visible e.Kv_iter.version
        then e :: acc
        else acc)
  in
  List.sort Kv_iter.compare_entries entries

let all_entries t ~visible =
  let log_entries =
    Log_file.Reader.fold t.funk_env (log_name t.funk_id) ~init:[] ~f:(fun acc _off e ->
        if visible e.Kv_iter.version then e :: acc else acc)
  in
  let log_sorted = Kv_iter.of_list (List.sort Kv_iter.compare_entries log_entries) in
  let sst_it = Kv_iter.filter (fun e -> visible e.Kv_iter.version) (Sstable.Reader.iter t.sst_reader) in
  Kv_iter.merge [ log_sorted; sst_it ]

let log_offsets_for_bloom t ~visible =
  List.rev
    (Log_file.Reader.fold t.funk_env (log_name t.funk_id) ~init:[] ~f:(fun acc off e ->
         if visible e.Kv_iter.version then (off, e.Kv_iter.key) :: acc else acc))

(* ------------------------------------------------------------------ *)
(* Sorted view (sidecar)                                               *)

let build_view t =
  Sorted_view.build t.funk_env ~sst:t.sst_reader ~log_name:(log_name t.funk_id)
    ~view_name:(view_name t.funk_id);
  (* Force the next scan to pick up the fresh file. *)
  Atomic.set t.view V_unknown

let load_view ?(on_load = fun () -> ()) t =
  match Atomic.get t.view with
  | V_loaded v -> Some v
  | V_none -> None
  | V_unknown ->
    let v =
      Sorted_view.load t.funk_env ~sst:t.sst_reader ~log_name:(log_name t.funk_id)
        ~view_name:(view_name t.funk_id)
    in
    Atomic.set t.view (match v with Some v -> V_loaded v | None -> V_none);
    if v <> None then on_load ();
    v

let invalidate_view t = Atomic.set t.view V_unknown

let view_cursor t v ~low ~high =
  Sorted_view.cursor v t.funk_env ~sst:t.sst_reader ~log_name:(log_name t.funk_id) ~low ~high

let delete_files t =
  Log_file.Writer.close t.log;
  Env.delete t.funk_env (sst_name t.funk_id);
  Env.delete t.funk_env (log_name t.funk_id);
  Env.delete t.funk_env (view_name t.funk_id)

let release t =
  let before = Atomic.fetch_and_add t.refs (-1) in
  if before = 1 && Atomic.get t.retired then delete_files t

let acquire t =
  ignore (Atomic.fetch_and_add t.refs 1);
  if Atomic.get t.retired then begin
    release t;
    false
  end
  else true

let retire t =
  Atomic.set t.retired true;
  release t

(* Ownership: splits share one funk between two chunks until each has
   flushed its own. The funk is retired only when the last owner lets
   go, regardless of which maintenance path (split phase 2, munk
   eviction flush, funk rebalance) gets there first. *)
let add_owner t =
  ignore (Atomic.fetch_and_add t.owners 1);
  ignore (Atomic.fetch_and_add t.refs 1)

let disown t =
  let last = Atomic.fetch_and_add t.owners (-1) = 1 in
  (* When this was the last owner, retirement (and file deletion) is
     the caller's move — it must first drop the funk from the manifest
     so a crash can never leave a manifest-live id with deleted files. *)
  if not last then release t;
  last

exception Stale

let with_pin ~current f =
  (* A retired funk whose owner chunk is itself retired will never be
     replaced; after a few attempts let the caller re-resolve the chunk
     through the (already updated) index. *)
  let rec pin attempts =
    if attempts > 64 then raise Stale;
    let funk = current () in
    if acquire funk then funk
    else begin
      Domain.cpu_relax ();
      pin (attempts + 1)
    end
  in
  let funk = pin 0 in
  Fun.protect ~finally:(fun () -> release funk) (fun () -> f funk)

let close_log t = Log_file.Writer.close t.log
