open Evendb_util
open Evendb_storage

type t = {
  next_id : int;
  live : int list;
}

let file_name = "MANIFEST"

let u32_le_string (crc : int32) =
  String.init 4 (fun i -> Char.chr (Int32.to_int (Int32.shift_right_logical crc (8 * i)) land 0xff))

let u32_le_of_string s pos =
  let b i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let store ?(name = file_name) env t =
  let buf = Buffer.create 64 in
  Varint.write buf t.next_id;
  Varint.write buf (List.length t.live);
  List.iter (fun id -> Varint.write buf id) t.live;
  let payload = Buffer.contents buf in
  let tmp = name ^ ".tmp" in
  let file = Env.create env tmp in
  (* Write-tmp-then-rename: a failure anywhere leaves the previous
     manifest untouched; only the tmp file needs sweeping up. *)
  (try
     Env.append file payload;
     Env.append file (u32_le_string (Crc32c.string payload));
     Env.fsync file;
     Env.close_file file;
     Env.rename env ~old_name:tmp ~new_name:name
   with exn ->
     Env.close_file file;
     (try Env.delete env tmp with _ -> ());
     raise exn)

let corrupt env ~name detail =
  Env.note_corruption env;
  Io_error.raise_corruption ~file:name ~detail

let load ?(name = file_name) env =
  let corrupt env detail = corrupt env ~name detail in
  if not (Env.exists env name) then None
  else begin
    let data = Env.read_all env name in
    if String.length data < 4 then corrupt env "truncated";
    let payload = String.sub data 0 (String.length data - 4) in
    if Crc32c.string payload <> u32_le_of_string data (String.length data - 4) then
      corrupt env "bad checksum";
    match
      let next_id, pos = Varint.read payload 0 in
      let n, pos = Varint.read payload pos in
      let rec ids acc pos = function
        | 0 -> List.rev acc
        | k ->
          let id, pos = Varint.read payload pos in
          ids (id :: acc) pos (k - 1)
      in
      { next_id; live = ids [] pos n }
    with
    | t -> Some t
    | exception Invalid_argument _ -> corrupt env "malformed payload"
  end
