(** Published point-in-time snapshots (ROADMAP item 5).

    {!Db.snapshot} pins the store's manifest, checkpoint, recovery
    table and funk set at a consistent version cut and copies them
    under the ["snapshots/<id>/"] namespace of the same environment
    (see {!Evendb_storage.Env.snapshots_prefix}). This module owns the
    on-disk layout: the [COMPLETE] publish marker (written last, via
    tmp + fsync + rename, CRC-trailered), namespace enumeration and
    garbage collection, and a read-only point-in-time {!reader}.

    Records newer than the cut may physically appear in the copied
    logs (writers race the publish); they are invisible both to the
    {!reader} and to a store restored from the snapshot, because the
    snapshot's checkpoint/recovery-table pair bounds visibility at the
    cut version. *)

open Evendb_storage

val validate_id : string -> unit
(** Ids name directories: alphanumerics plus [-_.], non-empty, not
    ["."]/[".."]. Raises [Invalid_argument] otherwise. *)

val member : id:string -> string -> string
(** Re-export of {!Env.snapshot_member}. *)

val complete_name : string
(** The publish marker's member name, ["COMPLETE"]. *)

type info = {
  id : string;
  version : int;  (** The cut: records above this are not in the view. *)
  next_id : int;  (** The source's next funk id at publish time. *)
  funks : (int * int) list;  (** Funk id and clipped log length. *)
}

val store_complete : Env.t -> info -> unit
val load_complete : Env.t -> id:string -> info option
(** [None] when the marker is absent; raises [Corruption] when present
    but damaged (a half-published snapshot that {!sweep_orphans} will
    collect). *)

val exists : Env.t -> id:string -> bool
(** Whether a published (COMPLETE) snapshot [id] exists. *)

val all_ids : Env.t -> string list
(** Every id with any member file on disk, published or not. *)

val list : Env.t -> info list
(** Published snapshots, oldest cut first. Unpublished or corrupt
    directories are skipped. *)

val member_names : Env.t -> id:string -> string list

val drop : Env.t -> id:string -> unit
(** Delete every member file of [id]; no-op when absent. *)

val sweep_orphans : Env.t -> int
(** Delete every snapshot directory without a valid [COMPLETE] marker
    (a crash between pin and publish) plus leftover member [*.tmp]
    files; returns the number of snapshots swept. Called by recovery. *)

(** {2 Point-in-time reads} *)

type reader

val open_reader : Env.t -> id:string -> reader
(** Raises [Invalid_argument] when [id] is not published. *)

val reader_info : reader -> info
val get : reader -> string -> string option
val scan : reader -> low:string -> high:string -> (string * string) list
(** Inclusive range, newest visible version per key, tombstones
    elided — the same contract as {!Db.scan}. *)
