type t = {
  keys : string array;
  nodes : Chunk.t array;
}

let build chunk_list =
  (match chunk_list with
  | [] -> invalid_arg "Chunk_index.build: empty"
  | first :: _ ->
    if Chunk.min_key first <> "" then
      invalid_arg "Chunk_index.build: missing sentinel chunk");
  let nodes = Array.of_list chunk_list in
  let keys = Array.map Chunk.min_key nodes in
  Array.iteri
    (fun i k -> if i > 0 && String.compare keys.(i - 1) k >= 0 then
        invalid_arg (Printf.sprintf "Chunk_index.build: unsorted chunks (%S >= %S at %d/%d)"
          keys.(i - 1) k i (Array.length keys)))
    keys;
  { keys; nodes }

let of_first_chunk first =
  let rec walk acc c =
    match Chunk.next c with None -> List.rev (c :: acc) | Some n -> walk (c :: acc) n
  in
  build (walk [] first)

let find t key =
  let lo = ref 0 and hi = ref (Array.length t.keys - 1) and result = ref 0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare t.keys.(mid) key <= 0 then begin
      result := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  t.nodes.(!result)

let size t = Array.length t.nodes
let chunks t = Array.to_list t.nodes
