(* Group commit for sync-durable puts.

   In Sync mode every put must be on disk before it is acked, and PR 6's
   attribution showed the fsync is ~all of the op. One fsync can durably
   cover every log append that happened before it, so concurrent sync
   puts share fsyncs instead of issuing one each: each put joins the
   currently *forming* batch after its append; the first member with no
   active leader becomes the batch's leader, waits for the batch to
   fill (fill-aware: only while some [track]ed in-flight mutation is
   still missing from it, bounded by [max_wait_ns]), and seals the
   batch (rotating [forming] so later arrivals start the next one).

   A sealed batch holds one pending fsync per distinct funk log its
   members appended to. The fsyncs are claimed cooperatively: the
   committer and every woken member each grab an unclaimed funk (their
   own first), fsync it with the mutex dropped, and mark it complete —
   so a batch spanning n logs (the sharded front end) issues its n
   fsyncs CONCURRENTLY, and the journal layer merges them into about
   one transaction commit where the same n fsyncs issued serially would
   each pay a full one. Helping is an acceleration, never a dependency:
   the committing thread drains every unclaimed funk itself, so the
   batch completes even if all members sleep through the broadcast.

   A member is acked when ITS funk's fsync completes, not when the
   whole batch does — members of an early-finishing funk resume (and
   start their next op, overlapping the remaining fsyncs) while slower
   funks are still committing. Batches also form for free during a
   batch's fsyncs: later arrivals join the next forming batch and
   whoever is promoted commits them together.

   Durability argument (acked <=> durable at every batch boundary):
   a put only joins a batch AFTER its append returned, and a batch is
   sealed under the mutex BEFORE any of its fsyncs start, so every
   member's bytes are in the OS buffer when its funk's fsync covers
   them. A member is only acked after its funk's [p_done] with
   [p_err = None], i.e. after that covering fsync succeeded. Conversely
   a crash before the fsync loses at most un-acked puts: nobody acks on
   a pending fsync that has not completed. On fsync failure the error
   fans out to exactly the failed funk's members — members on the
   batch's other funks are acked by their own fsyncs, which is precise:
   their bytes are durable.

   Liveness: members wait holding their chunk's shared rebalance lock
   and a pending-op slot, but a committer needs neither — it only takes
   this mutex and the funk logs' writer mutexes (leaf locks). A full
   forming batch always has a member that either leads it or waits on a
   live leader, every pending fsync is drained by its claimer or the
   committer, and every completion broadcasts, so a waiting member
   always eventually resumes. [max_batch = 1] degenerates to today's
   behaviour exactly: every put is its own batch and fsyncs alone (one
   fsync per put, serialized per funk). *)

open Evendb_obs

type pending = {
  p_funk : Funk.t;
  mutable p_done : bool;
  mutable p_err : exn option; (* fans out to this funk's members *)
}

type batch = {
  mutable b_pend : pending list; (* one per distinct funk, newest first *)
  mutable b_count : int; (* member puts *)
  mutable b_todo : pending list; (* sealed: fsyncs not yet claimed *)
  mutable b_left : int; (* sealed: fsyncs not yet completed *)
  mutable b_done : bool; (* every fsync completed *)
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t; (* a pending fsync completed, or [forming] rotated *)
  mutable forming : batch;
  mutable leader_active : bool;
  mutable wait_target : int;
      (* >0 while a leader waits for [forming] to reach this size; the
         joiner that fills it commits the batch itself (see [sync]) *)
  in_flight : int Atomic.t; (* sync mutations currently inside [track] *)
  mutable prev_size : int; (* last committed batch's member count *)
  max_batch : int;
  max_wait_ns : int;
  mutable last_finish_ns : int; (* when the previous batch completed *)
  ctr_batches : Obs.Counter.t;
  ctr_fsyncs : Obs.Counter.t;
  ctr_fsyncs_saved : Obs.Counter.t; (* members beyond the first per funk *)
  tm_batch_size : Obs.Timer.t; (* histogram of members per batch *)
  tm_fsync : Obs.Timer.t; (* duration of each log fsync *)
  tm_reform : Obs.Timer.t;
      (* previous batch completed -> this batch sealed: the commit
         pipeline's dead time (writers waking, applying, re-joining) *)
}

let fresh_batch () =
  { b_pend = []; b_count = 0; b_todo = []; b_left = 0; b_done = false }

let create ~max_batch ~max_wait_ns obs =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    forming = fresh_batch ();
    leader_active = false;
    wait_target = 0;
    in_flight = Atomic.make 0;
    prev_size = 1;
    max_batch;
    max_wait_ns;
    last_finish_ns = 0;
    ctr_batches = Obs.counter obs "commit.batches";
    ctr_fsyncs = Obs.counter obs "commit.fsyncs";
    ctr_fsyncs_saved = Obs.counter obs "commit.fsyncs_saved";
    tm_batch_size = Obs.timer obs "commit.batch_size";
    tm_fsync = Obs.timer obs "commit.fsync";
    tm_reform = Obs.timer obs "commit.reform";
  }

(* Complete the sealed batch [b]: called with [t.mutex] held by the
   thread whose fsync was the last outstanding one. *)
let finish t b =
  b.b_done <- true;
  t.last_finish_ns <- Obs.now_ns ();
  t.leader_active <- false;
  t.prev_size <- max 1 b.b_count;
  Obs.Counter.incr t.ctr_batches;
  let n_fsyncs = List.length b.b_pend in
  Obs.Counter.add t.ctr_fsyncs n_fsyncs;
  Obs.Counter.add t.ctr_fsyncs_saved (b.b_count - n_fsyncs);
  Obs.Timer.record_ns t.tm_batch_size b.b_count;
  Condition.broadcast t.cond

(* Fsync the claimed pending [p] of the sealed batch [b]. Called with
   [t.mutex] held ([p] already removed from [b.b_todo]); returns with
   it held and [p] completed. *)
let fsync_one t b p =
  Mutex.unlock t.mutex;
  (* The funk is alive: some member of [b] still holds its chunk's
     shared rebalance lock — which a funk flip needs exclusively —
     until this completion wakes it. *)
  let t0 = Obs.now_ns () in
  let err = (try Funk.fsync_log p.p_funk; None with e -> Some e) in
  Obs.Timer.record_ns t.tm_fsync (Obs.now_ns () - t0);
  Mutex.lock t.mutex;
  p.p_err <- err;
  p.p_done <- true;
  b.b_left <- b.b_left - 1;
  if b.b_left = 0 then finish t b else Condition.broadcast t.cond

(* Claim own pending fsync if nobody else has: a member fsyncs the funk
   it is itself waiting on first, so it acks the moment that completes. *)
let claim_own b p =
  if List.memq p b.b_todo then begin
    b.b_todo <- List.filter (fun q -> q != p) b.b_todo;
    true
  end
  else false

(* Claim and fsync unclaimed funks until none are left. *)
let rec help t b =
  match b.b_todo with
  | [] -> ()
  | p :: rest ->
    b.b_todo <- rest;
    fsync_one t b p;
    help t b

(* Seal and commit the forming batch [b], of which the caller is a
   member on pending [p]. Called with [t.mutex] held by the thread
   owning the committer role ([t.leader_active] set); returns with the
   mutex held and [p] completed ([t.leader_active] is cleared by
   whichever thread's fsync finishes the batch). *)
let commit t b p =
  (* Seal: rotate [forming] so later arrivals join the next batch, and
     wake parked members — both puts waiting out a full forming batch
     and this batch's members, who wake to claim their funks' fsyncs.
     Every member's append happened-before this point, so the batch's
     fsyncs cover them all. *)
  assert (t.forming == b);
  t.forming <- fresh_batch ();
  t.wait_target <- 0;
  b.b_todo <- b.b_pend;
  b.b_left <- List.length b.b_pend;
  if t.last_finish_ns > 0 then
    Obs.Timer.record_ns t.tm_reform (Obs.now_ns () - t.last_finish_ns);
  Condition.broadcast t.cond;
  if claim_own b p then fsync_one t b p;
  help t b;
  while not p.p_done do
    Attr.timed Attr.Commit_wait (fun () -> Condition.wait t.cond t.mutex)
  done

(* Lead the forming batch [b] as a member on [p]: wait for it to fill,
   then commit it — unless a joiner filled and committed it first.
   Called with [t.mutex] held and [t.leader_active] already set;
   returns with the mutex held and [p] completed. *)
let lead t b p =
  (* Formation wait: the leader waits for the batch to reach a target
     size before anyone pays the fsync. The target is a SNAPSHOT taken
     once, here at promotion — the larger of the writers currently in
     flight ([track]) and the previous batch's size. At promotion the
     previous batch's members are still parked inside [sync] (hence
     tracked), so the snapshot counts the whole writer population; it
     must not be recomputed during the wait, because members exit
     [track] (quick) faster than they rejoin (ack, next op, append),
     and a shrinking target collapses the batch to whichever half of
     the writers appended during the last fsync — a stable oscillation
     between two half-size cohorts. A solo writer snapshots a target of
     one and never waits; [max_wait_ns] bounds the wait when counted
     writers stop issuing (end of load).

     The commit itself is event-driven: the leader publishes the target
     in [t.wait_target] and the joiner that fills the batch commits it
     on the spot ([sync]), so the fsyncs start the instant the last
     member arrives. The sleeping leader is only the deadline backstop
     for batches that never fill. The stdlib has no timed condition
     wait, so the backstop polls with a real [nanosleep] between
     checks: the sleep must release the OS CPU, not just this domain —
     [Thread.yield] only rotates systhreads within one domain and
     returns immediately across domains, and any flavour of spin
     starves the joiners this wait exists for when hardware threads are
     scarce. The kernel rounds the 1µs request up to its slack (~50µs),
     which is fine for a backstop. *)
  let target = min t.max_batch (max t.prev_size (Atomic.get t.in_flight)) in
  if b.b_count < target && t.max_wait_ns > 0 then begin
    t.wait_target <- target;
    Attr.timed Attr.Commit_wait (fun () ->
        let deadline = Obs.now_ns () + t.max_wait_ns in
        let expired = ref false in
        while (not !expired) && t.forming == b && b.b_count < target do
          Mutex.unlock t.mutex;
          Unix.sleepf 1e-6;
          Mutex.lock t.mutex;
          if Obs.now_ns () >= deadline then expired := true
        done)
  end;
  if t.forming == b then commit t b p
  else
    (* A joiner filled the batch and owns its commit now; this thread
       is a plain member again. No promotion here: [b] is sealed and
       its committer is live, so claim a share of its fsyncs and await
       own completion. *)
    while not p.p_done do
      if claim_own b p then fsync_one t b p
      else if b.b_todo <> [] then help t b
      else Attr.timed Attr.Commit_wait (fun () -> Condition.wait t.cond t.mutex)
    done

(* Join the forming batch (waiting out a full one), with the mutex
   held. Returns the joined batch and the member's pending fsync. *)
let rec join t funk =
  let b = t.forming in
  if b.b_count >= t.max_batch then begin
    (* Full: its leader (current or promoted) will rotate [forming]
       when it seals; park until then so no batch exceeds the bound. *)
    Attr.timed Attr.Commit_wait (fun () -> Condition.wait t.cond t.mutex);
    join t funk
  end
  else begin
    b.b_count <- b.b_count + 1;
    match List.find_opt (fun p -> p.p_funk == funk) b.b_pend with
    | Some p -> (b, p)
    | None ->
      let p = { p_funk = funk; p_done = false; p_err = None } in
      b.b_pend <- p :: b.b_pend;
      (b, p)
  end

let sync t funk =
  if not (Mutex.try_lock t.mutex) then
    Attr.timed Attr.Commit_wait (fun () -> Mutex.lock t.mutex);
  let b, p = join t funk in
  if not t.leader_active then begin
    t.leader_active <- true;
    lead t b p
  end
  else if t.wait_target > 0 && b == t.forming && b.b_count >= t.wait_target
  then
    (* This join filled a waiting leader's batch: commit it right here
       rather than waiting out the leader's next backstop poll — the
       leader wakes to find the batch sealed and rejoins as a member.
       The committer role transfers; [leader_active] stays set until
       the batch's last fsync clears it. *)
    commit t b p
  else
    (* Follower: wait for own completion, claiming a share of the
       batch's fsyncs once it seals. The active leader may be
       committing an older batch; when that batch finishes (broadcast)
       the first member to wake finds no leader and promotes itself. *)
    while not p.p_done do
      if claim_own b p then fsync_one t b p
      else if b.b_todo <> [] then help t b
      else if not t.leader_active then begin
        t.leader_active <- true;
        lead t b p
      end
      else Attr.timed Attr.Commit_wait (fun () -> Condition.wait t.cond t.mutex)
    done;
  let err = p.p_err in
  Mutex.unlock t.mutex;
  match err with Some e -> raise e | None -> ()

let track t f =
  Atomic.incr t.in_flight;
  Fun.protect ~finally:(fun () -> Atomic.decr t.in_flight) f
