(** Funk-grained incremental backup over published snapshots.

    {!ship} packs one snapshot into a self-describing, CRC-trailered
    archive ([backup_<seq>.evbk]) in a destination environment. With a
    [base_id], only what changed since the base snapshot is shipped:
    SSTables of funks shared with the base are carried by reference and
    their append-only logs ship only the suffix grown since the base —
    the funk-grained increment. {!restore} folds a chain of archives
    (one full + any number of incrementals) back into a store directory
    that opens and passes [evendb fsck] clean, equal to the source at
    the last snapshot's cut.

    Interrupted ships leave only a [*.tmp] in the destination (archives
    publish via tmp + fsync + rename); torn or damaged archives fail
    their whole-file CRC, and restore rejects a broken chain instead of
    materializing a partial store. *)

open Evendb_storage

val archive_name : int -> string
(** [archive_name seq] = ["backup_<seq08>.evbk"]. *)

val parse_archive_name : string -> int option

val list_archives : Env.t -> (int * string) list
(** Published archives as [(seq, name)], chain order. *)

type stats = { funks_shipped : int; bytes_shipped : int }

val ship :
  ?obs:Evendb_obs.Obs.t ->
  src:Env.t ->
  dest:Env.t ->
  snapshot_id:string ->
  ?base_id:string ->
  unit ->
  string * stats
(** Pack snapshot [snapshot_id] (which must be published in [src]) into
    the next archive of [dest]; returns the archive name and what was
    shipped. [base_id] enables the incremental diff and is recorded in
    the archive for chain validation at restore. [obs] receives the
    [backup.funks_shipped] / [backup.bytes] counters. *)

val verify : Env.t -> string -> unit
(** Structurally validate one archive (magic, CRCs, section lengths);
    raises [Env.Corruption] with the failing detail. *)

val restore : src:Env.t -> dest:Env.t -> unit
(** Replay the full archive chain of [src] into [dest], which must be
    empty. Raises [Env.Corruption] on a damaged archive or a broken
    chain (wrong base linkage), [Invalid_argument] when [src] has no
    archives or [dest] is non-empty. *)
