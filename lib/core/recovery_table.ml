open Evendb_util
open Evendb_storage

(* Sorted association list epoch -> last checkpointed seq; tiny (one row
   per crash survived). *)
type t = (int * int) list

let file_name = "RECOVERY_TABLE"
let empty = []

let add t ~epoch ~last_seq = (epoch, last_seq) :: List.remove_assoc epoch t

let last_seq t ~epoch = List.assoc_opt epoch t

let is_visible t ~current_epoch version =
  let e = Version.epoch version in
  if e = current_epoch then true
  else
    match last_seq t ~epoch:e with
    | None -> false
    | Some limit -> Version.seq version <= limit

let max_epoch t = List.fold_left (fun acc (e, _) -> max acc e) (-1) t

(* On-disk: [n] rows of [epoch] [seq+1] (shifted so -1 encodes as 0),
   varints, with a trailing CRC over the payload. *)
let store ?(name = file_name) env t =
  let buf = Buffer.create 64 in
  Varint.write buf (List.length t);
  List.iter
    (fun (e, s) ->
      Varint.write buf e;
      Varint.write buf (s + 1))
    t;
  let payload = Buffer.contents buf in
  let crc = Crc32c.string payload in
  let tmp = name ^ ".tmp" in
  let file = Env.create env tmp in
  Env.append file payload;
  let crc_buf = Buffer.create 4 in
  Buffer.add_char crc_buf (Char.chr (Int32.to_int crc land 0xff));
  Buffer.add_char crc_buf (Char.chr (Int32.to_int (Int32.shift_right_logical crc 8) land 0xff));
  Buffer.add_char crc_buf (Char.chr (Int32.to_int (Int32.shift_right_logical crc 16) land 0xff));
  Buffer.add_char crc_buf (Char.chr (Int32.to_int (Int32.shift_right_logical crc 24) land 0xff));
  Env.append file (Buffer.contents crc_buf);
  Env.fsync file;
  Env.close_file file;
  Env.rename env ~old_name:tmp ~new_name:name

let corrupt env ~name detail =
  Env.note_corruption env;
  Io_error.raise_corruption ~file:name ~detail

let load ?(name = file_name) env =
  let corrupt env detail = corrupt env ~name detail in
  if not (Env.exists env name) then empty
  else begin
    let data = Env.read_all env name in
    if String.length data < 4 then corrupt env "truncated";
    let payload = String.sub data 0 (String.length data - 4) in
    let crc_bytes = String.sub data (String.length data - 4) 4 in
    let stored =
      let b i = Int32.of_int (Char.code crc_bytes.[i]) in
      Int32.logor (b 0)
        (Int32.logor
           (Int32.shift_left (b 1) 8)
           (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))
    in
    if Crc32c.string payload <> stored then corrupt env "bad checksum";
    match
      let n, pos = Varint.read payload 0 in
      let rec rows acc pos = function
        | 0 -> List.rev acc
        | k ->
          let e, pos = Varint.read payload pos in
          let s, pos = Varint.read payload pos in
          rows ((e, s - 1) :: acc) pos (k - 1)
      in
      rows [] pos n
    with
    | rows -> rows
    | exception Invalid_argument _ -> corrupt env "malformed payload"
  end
