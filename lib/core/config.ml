type persistence = Async | Sync

type t = {
  max_chunk_bytes : int;
  munk_rebalance_bytes : int;
  munk_rebalance_appended : int;
  funk_log_limit_no_munk : int;
  funk_log_limit_with_munk : int;
  bloom_split_factor : int;
  bloom_bits_per_key : int;
  munk_cache_capacity : int;
  row_cache_tables : int;
  row_cache_capacity_per_table : int;
  po_slots : int;
  persistence : persistence;
  checkpoint_every_puts : int;
  sstable_block_bytes : int;
  collect_read_stats : bool;
  background_maintenance : bool;
  hot_prefix_len : int;
  topk_capacity : int;
  heat_half_life_ns : int;
  attr_enabled : bool;
  attr_slow_threshold_ns : int;
  attr_slow_ring : int;
  attr_watchdog_share_ppm : int;
  attr_watchdog_cooldown_ops : int;
  group_commit_max_batch : int;
  group_commit_max_wait_ns : int;
  block_cache_bytes : int;
  sorted_view_enabled : bool;
  snapshot_max_retained : int;
  repl_window : int;
  repl_retry_backoff_ns : int;
  telemetry_interval_ns : int;
  telemetry_ring : int;
  telemetry_journal_segment_bytes : int;
  telemetry_journal_segments : int;
}

let mib = 1024 * 1024

let default =
  {
    max_chunk_bytes = 10 * mib;
    munk_rebalance_bytes = 7 * mib;
    munk_rebalance_appended = 8192;
    funk_log_limit_no_munk = 2 * mib;
    funk_log_limit_with_munk = 20 * mib;
    bloom_split_factor = 16;
    bloom_bits_per_key = 10;
    munk_cache_capacity = 64;
    row_cache_tables = 3;
    row_cache_capacity_per_table = 4096;
    po_slots = 128;
    persistence = Async;
    checkpoint_every_puts = 32768;
    sstable_block_bytes = 4096;
    collect_read_stats = false;
    background_maintenance = false;
    hot_prefix_len = 8;
    topk_capacity = 512;
    heat_half_life_ns = 10_000_000_000;
    attr_enabled = true;
    attr_slow_threshold_ns = 1_000_000;
    attr_slow_ring = 256;
    attr_watchdog_share_ppm = 500_000;
    attr_watchdog_cooldown_ops = 4096;
    group_commit_max_batch = 64;
    group_commit_max_wait_ns = 400_000;
    block_cache_bytes = 32 * mib;
    sorted_view_enabled = true;
    snapshot_max_retained = 0;
    repl_window = 64;
    repl_retry_backoff_ns = 1_000_000;
    telemetry_interval_ns = 1_000_000_000;
    telemetry_ring = 512;
    telemetry_journal_segment_bytes = 256 * 1024;
    telemetry_journal_segments = 4;
  }

(* Reject knob combinations that would silently misbehave — a ring of
   capacity 0 drops every slow op, a watchdog share above 100% never
   trips, a batch of 0 would deadlock the committer. Raised before any
   file is touched, so a bad config can't half-open a store. *)
let validate t =
  let fail fmt = Printf.ksprintf invalid_arg ("Config.validate: " ^^ fmt) in
  if t.max_chunk_bytes <= 0 then fail "max_chunk_bytes = %d (must be positive)" t.max_chunk_bytes;
  if t.po_slots < 1 then fail "po_slots = %d (must be >= 1)" t.po_slots;
  if t.munk_cache_capacity < 1 then
    fail "munk_cache_capacity = %d (must be >= 1)" t.munk_cache_capacity;
  if t.group_commit_max_batch < 1 then
    fail "group_commit_max_batch = %d (must be >= 1; 1 = per-op fsync)" t.group_commit_max_batch;
  if t.group_commit_max_wait_ns < 1 then
    fail "group_commit_max_wait_ns = %d (must be >= 1ns)" t.group_commit_max_wait_ns;
  if t.attr_slow_ring < 1 then fail "attr_slow_ring = %d (must be >= 1)" t.attr_slow_ring;
  if t.attr_slow_threshold_ns < 0 then
    fail "attr_slow_threshold_ns = %d (must be >= 0)" t.attr_slow_threshold_ns;
  if t.attr_watchdog_share_ppm < 0 || t.attr_watchdog_share_ppm > 1_000_000 then
    fail "attr_watchdog_share_ppm = %d (must be in [0, 1_000_000])" t.attr_watchdog_share_ppm;
  if t.attr_watchdog_cooldown_ops < 0 then
    fail "attr_watchdog_cooldown_ops = %d (must be >= 0)" t.attr_watchdog_cooldown_ops;
  if t.checkpoint_every_puts < 0 then
    fail "checkpoint_every_puts = %d (must be >= 0; 0 = explicit only)" t.checkpoint_every_puts;
  if t.block_cache_bytes < 0 then
    fail "block_cache_bytes = %d (must be >= 0; 0 = no block cache)" t.block_cache_bytes;
  if t.snapshot_max_retained < 0 then
    fail "snapshot_max_retained = %d (must be >= 0; 0 = unlimited)" t.snapshot_max_retained;
  if t.repl_window < 1 then
    fail "repl_window = %d (must be >= 1; 1 = one record in flight)" t.repl_window;
  if t.repl_retry_backoff_ns < 0 then
    fail "repl_retry_backoff_ns = %d (must be >= 0; 0 = immediate retry)" t.repl_retry_backoff_ns;
  if t.telemetry_interval_ns < 1 then
    fail "telemetry_interval_ns = %d (must be >= 1ns)" t.telemetry_interval_ns;
  if t.telemetry_ring < 1 then fail "telemetry_ring = %d (must be >= 1)" t.telemetry_ring;
  if t.telemetry_journal_segment_bytes < 64 then
    fail "telemetry_journal_segment_bytes = %d (must be >= 64)" t.telemetry_journal_segment_bytes;
  if t.telemetry_journal_segments < 0 then
    fail "telemetry_journal_segments = %d (must be >= 0; 0 = in-memory ring only)"
      t.telemetry_journal_segments

let scaled ?(factor = 64) () =
  if factor <= 0 then invalid_arg "Config.scaled: factor <= 0";
  {
    default with
    max_chunk_bytes = max 4096 (default.max_chunk_bytes / factor);
    munk_rebalance_bytes = max 2048 (default.munk_rebalance_bytes / factor);
    munk_rebalance_appended = max 256 (default.munk_rebalance_appended / factor);
    funk_log_limit_no_munk = max 1024 (default.funk_log_limit_no_munk / factor);
    funk_log_limit_with_munk = max 8192 (default.funk_log_limit_with_munk / factor);
  }
