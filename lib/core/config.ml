type persistence = Async | Sync

type t = {
  max_chunk_bytes : int;
  munk_rebalance_bytes : int;
  munk_rebalance_appended : int;
  funk_log_limit_no_munk : int;
  funk_log_limit_with_munk : int;
  bloom_split_factor : int;
  bloom_bits_per_key : int;
  munk_cache_capacity : int;
  row_cache_tables : int;
  row_cache_capacity_per_table : int;
  po_slots : int;
  persistence : persistence;
  checkpoint_every_puts : int;
  sstable_block_bytes : int;
  collect_read_stats : bool;
  background_maintenance : bool;
  hot_prefix_len : int;
  topk_capacity : int;
  heat_half_life_ns : int;
  attr_enabled : bool;
  attr_slow_threshold_ns : int;
  attr_slow_ring : int;
  attr_watchdog_share_ppm : int;
  attr_watchdog_cooldown_ops : int;
}

let mib = 1024 * 1024

let default =
  {
    max_chunk_bytes = 10 * mib;
    munk_rebalance_bytes = 7 * mib;
    munk_rebalance_appended = 8192;
    funk_log_limit_no_munk = 2 * mib;
    funk_log_limit_with_munk = 20 * mib;
    bloom_split_factor = 16;
    bloom_bits_per_key = 10;
    munk_cache_capacity = 64;
    row_cache_tables = 3;
    row_cache_capacity_per_table = 4096;
    po_slots = 128;
    persistence = Async;
    checkpoint_every_puts = 32768;
    sstable_block_bytes = 4096;
    collect_read_stats = false;
    background_maintenance = false;
    hot_prefix_len = 8;
    topk_capacity = 512;
    heat_half_life_ns = 10_000_000_000;
    attr_enabled = true;
    attr_slow_threshold_ns = 1_000_000;
    attr_slow_ring = 256;
    attr_watchdog_share_ppm = 500_000;
    attr_watchdog_cooldown_ops = 4096;
  }

let scaled ?(factor = 64) () =
  if factor <= 0 then invalid_arg "Config.scaled: factor <= 0";
  {
    default with
    max_chunk_bytes = max 4096 (default.max_chunk_bytes / factor);
    munk_rebalance_bytes = max 2048 (default.munk_rebalance_bytes / factor);
    munk_rebalance_appended = max 256 (default.munk_rebalance_appended / factor);
    funk_log_limit_no_munk = max 1024 (default.funk_log_limit_no_munk / factor);
    funk_log_limit_with_munk = max 8192 (default.funk_log_limit_with_munk / factor);
  }
