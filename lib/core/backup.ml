open Evendb_util
open Evendb_storage
module Obs = Evendb_obs.Obs

(* Self-describing backup archives, one file per shipped segment:

     backup_<seq>.evbk :=
       "EVBK1"
       varint header_len · header · data
       u32 CRC32C over everything before the trailer

     header :=
       varint format (1)
       string snapshot_id          (varint len · bytes)
       varint has_base · [string base_id]
       varint version              (the snapshot's cut)
       varint n_entries
       entry* := string name · varint kind · varint base_len
                 · varint data_len · u32 data_crc

   [kind]: 0 = full content shipped, 1 = log suffix shipped (the first
   [base_len] bytes come from the restored base), 2 = carried unchanged
   from the base. The entry list is the segment's COMPLETE file set:
   restore drops any file of the previous state that a segment does not
   mention, which is how a funk deleted between two snapshots
   disappears from the restored store.

   An interrupted ship leaves only a [*.tmp] in the destination (the
   archive is published tmp+fsync+rename); a torn or bit-flipped
   archive fails its CRC at restore. Either way a damaged chain is
   rejected wholesale rather than restored partially. *)

let magic = "EVBK1"
let format_version = 1

let archive_name seq = Printf.sprintf "backup_%08d.evbk" seq

let parse_archive_name name = Scanf.sscanf_opt name "backup_%8d.evbk%!" (fun seq -> seq)

let list_archives env =
  Env.list_files env
  |> List.filter_map (fun name ->
         match parse_archive_name name with Some seq -> Some (seq, name) | None -> None)
  |> List.sort compare

type kind = Full | Log_suffix of int (* base_len *) | Carried

type entry = {
  e_name : string;
  e_kind : kind;
  e_data_len : int;
  e_data_crc : int32;
}

type header = {
  h_snapshot : string;
  h_base : string option;
  h_version : int;
  h_entries : entry list;
}

type stats = { funks_shipped : int; bytes_shipped : int }

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let u32_le_string (crc : int32) =
  String.init 4 (fun i -> Char.chr (Int32.to_int (Int32.shift_right_logical crc (8 * i)) land 0xff))

let u32_le_of_string s pos =
  let b i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let write_string buf s =
  Varint.write buf (String.length s);
  Buffer.add_string buf s

let read_string s pos =
  let len, pos = Varint.read s pos in
  if pos + len > String.length s then invalid_arg "Backup: string out of bounds";
  (String.sub s pos len, pos + len)

let encode_header h =
  let buf = Buffer.create 256 in
  Varint.write buf format_version;
  write_string buf h.h_snapshot;
  (match h.h_base with
  | None -> Varint.write buf 0
  | Some b ->
    Varint.write buf 1;
    write_string buf b);
  Varint.write buf h.h_version;
  Varint.write buf (List.length h.h_entries);
  List.iter
    (fun e ->
      write_string buf e.e_name;
      (match e.e_kind with
      | Full ->
        Varint.write buf 0;
        Varint.write buf 0
      | Log_suffix base_len ->
        Varint.write buf 1;
        Varint.write buf base_len
      | Carried ->
        Varint.write buf 2;
        Varint.write buf 0);
      Varint.write buf e.e_data_len;
      Buffer.add_string buf (u32_le_string e.e_data_crc))
    h.h_entries;
  Buffer.contents buf

let decode_header s =
  let v, pos = Varint.read s 0 in
  if v <> format_version then invalid_arg "Backup: unknown format version";
  let snapshot, pos = read_string s pos in
  let has_base, pos = Varint.read s pos in
  let base, pos =
    if has_base = 0 then (None, pos)
    else
      let b, pos = read_string s pos in
      (Some b, pos)
  in
  let version, pos = Varint.read s pos in
  let n, pos = Varint.read s pos in
  let rec entries acc pos = function
    | 0 -> List.rev acc
    | k ->
      let name, pos = read_string s pos in
      let kind, pos = Varint.read s pos in
      let base_len, pos = Varint.read s pos in
      let data_len, pos = Varint.read s pos in
      if pos + 4 > String.length s then invalid_arg "Backup: entry crc out of bounds";
      let crc = u32_le_of_string s pos in
      let kind =
        match kind with
        | 0 -> Full
        | 1 -> Log_suffix base_len
        | 2 -> Carried
        | _ -> invalid_arg "Backup: unknown entry kind"
      in
      entries
        ({ e_name = name; e_kind = kind; e_data_len = data_len; e_data_crc = crc } :: acc)
        (pos + 4) (k - 1)
  in
  { h_snapshot = snapshot; h_base = base; h_version = version; h_entries = entries [] pos n }

let corrupt env ~file detail =
  Env.note_corruption env;
  Io_error.raise_corruption ~file ~detail

(* Read and structurally validate one archive; returns the header plus
   the data section. *)
let read_archive env name =
  let data = Env.read_all env name in
  let fail detail = corrupt env ~file:name detail in
  if String.length data < String.length magic + 4 then fail "truncated";
  if String.sub data 0 (String.length magic) <> magic then fail "bad magic";
  let body = String.sub data 0 (String.length data - 4) in
  if Crc32c.string body <> u32_le_of_string data (String.length data - 4) then
    fail "bad checksum";
  match
    let hlen, pos = Varint.read body (String.length magic) in
    if pos + hlen > String.length body then invalid_arg "Backup: header out of bounds";
    let header = decode_header (String.sub body pos hlen) in
    let payload = String.sub body (pos + hlen) (String.length body - pos - hlen) in
    let total = List.fold_left (fun acc e -> acc + e.e_data_len) 0 header.h_entries in
    if total <> String.length payload then invalid_arg "Backup: data section length mismatch";
    (header, payload)
  with
  | result -> result
  | exception Invalid_argument _ -> fail "malformed archive"

let verify env name = ignore (read_archive env name)

(* ------------------------------------------------------------------ *)
(* Ship                                                                *)

let meta_members =
  [ Manifest.file_name; Checkpoint_file.file_name; Recovery_table.file_name; "MODE" ]

let ship ?obs ~src ~dest ~snapshot_id ?base_id () =
  let snap =
    match Snapshot.load_complete src ~id:snapshot_id with
    | Some info -> info
    | None -> invalid_arg (Printf.sprintf "Backup.ship: no snapshot %S" snapshot_id)
  in
  let base =
    match base_id with
    | None -> None
    | Some id -> (
      match Snapshot.load_complete src ~id with
      | Some info -> Some info
      | None -> invalid_arg (Printf.sprintf "Backup.ship: no base snapshot %S" id))
  in
  let base_logs = Hashtbl.create 16 in
  (match base with
  | Some b -> List.iter (fun (fid, len) -> Hashtbl.replace base_logs fid len) b.Snapshot.funks
  | None -> ());
  let member name = Snapshot.member ~id:snapshot_id name in
  let data = Buffer.create 4096 in
  let funks_shipped = ref 0 in
  let full name content =
    Buffer.add_string data content;
    {
      e_name = name;
      e_kind = Full;
      e_data_len = String.length content;
      e_data_crc = Crc32c.string content;
    }
  in
  let meta_entries = List.map (fun name -> full name (Env.read_all src (member name))) meta_members in
  let funk_entries =
    List.concat_map
      (fun (fid, log_len) ->
        let sst = Funk.sst_name fid and log = Funk.log_name fid in
        match Hashtbl.find_opt base_logs fid with
        | Some base_len when base_len <= log_len ->
          (* Shared with the base: the SSTable is immutable, the log is
             append-only — ship only the suffix grown since the base. *)
          let suffix =
            if log_len = base_len then ""
            else Env.read_at src (member log) ~off:base_len ~len:(log_len - base_len)
          in
          Buffer.add_string data suffix;
          if suffix <> "" then incr funks_shipped;
          [
            { e_name = sst; e_kind = Carried; e_data_len = 0; e_data_crc = 0l };
            {
              e_name = log;
              e_kind = Log_suffix base_len;
              e_data_len = String.length suffix;
              e_data_crc = Crc32c.string suffix;
            };
          ]
        | _ ->
          incr funks_shipped;
          (* Bind in order: [full] appends to the data section, and list
             literals evaluate right-to-left — the header and the data
             must agree on entry order. *)
          let sst_entry = full sst (Env.read_all src (member sst)) in
          let log_entry = full log (Env.read_all src (member log)) in
          [ sst_entry; log_entry ])
      snap.Snapshot.funks
  in
  let header =
    {
      h_snapshot = snapshot_id;
      h_base = base_id;
      h_version = snap.Snapshot.version;
      h_entries = meta_entries @ funk_entries;
    }
  in
  let hdr = encode_header header in
  let buf = Buffer.create (Buffer.length data + String.length hdr + 64) in
  Buffer.add_string buf magic;
  Varint.write buf (String.length hdr);
  Buffer.add_string buf hdr;
  Buffer.add_buffer buf data;
  let body = Buffer.contents buf in
  let seq = match List.rev (list_archives dest) with (s, _) :: _ -> s + 1 | [] -> 1 in
  let name = archive_name seq in
  let tmp = name ^ ".tmp" in
  let file = Env.create dest tmp in
  (try
     Env.append file body;
     Env.append file (u32_le_string (Crc32c.string body));
     Env.fsync file;
     Env.close_file file;
     Env.rename dest ~old_name:tmp ~new_name:name
   with exn ->
     Env.close_file file;
     (try Env.delete dest tmp with _ -> ());
     raise exn);
  let bytes = String.length body + 4 in
  (match obs with
  | Some obs ->
    Obs.Counter.add (Obs.counter obs "backup.funks_shipped") !funks_shipped;
    Obs.Counter.add (Obs.counter obs "backup.bytes") bytes
  | None -> ());
  (name, { funks_shipped = !funks_shipped; bytes_shipped = bytes })

(* ------------------------------------------------------------------ *)
(* Restore                                                             *)

let restore ~src ~dest =
  let archives = list_archives src in
  if archives = [] then invalid_arg "Backup.restore: no backup archives";
  (* Fold the chain into a name -> content map, validating linkage:
     segment 1 must be a full backup, segment N's base must be segment
     N-1's snapshot. *)
  let files : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let _last =
    List.fold_left
      (fun prev (_seq, name) ->
        let header, payload = read_archive src name in
        let fail detail = corrupt src ~file:name detail in
        (match (prev, header.h_base) with
        | None, None -> ()
        | None, Some _ -> fail "chain starts with an incremental archive"
        | Some _, None -> fail "full archive in the middle of the chain"
        | Some p, Some b -> if p <> b then fail (Printf.sprintf "base %S does not match previous snapshot %S" b p));
        let next : (string, string) Hashtbl.t = Hashtbl.create 64 in
        let off = ref 0 in
        List.iter
          (fun e ->
            let data = String.sub payload !off e.e_data_len in
            off := !off + e.e_data_len;
            if Crc32c.string data <> e.e_data_crc then
              fail (Printf.sprintf "entry %S fails its checksum" e.e_name);
            let content =
              match e.e_kind with
              | Full -> data
              | Carried -> (
                match Hashtbl.find_opt files e.e_name with
                | Some c -> c
                | None -> fail (Printf.sprintf "entry %S carried but absent from base" e.e_name))
              | Log_suffix base_len -> (
                match Hashtbl.find_opt files e.e_name with
                | Some c when String.length c >= base_len -> String.sub c 0 base_len ^ data
                | Some _ -> fail (Printf.sprintf "entry %S shorter than its base length" e.e_name)
                | None -> fail (Printf.sprintf "entry %S suffix but absent from base" e.e_name))
            in
            Hashtbl.replace next e.e_name content)
          header.h_entries;
        (* Files the segment does not mention are gone at its snapshot. *)
        Hashtbl.reset files;
        Hashtbl.iter (Hashtbl.replace files) next;
        Some header.h_snapshot)
      None archives
  in
  (match Env.list_files dest with
  | [] -> ()
  | _ -> invalid_arg "Backup.restore: destination is not empty");
  Hashtbl.iter
    (fun name content ->
      let f = Env.create dest name in
      (try
         Env.append f content;
         Env.fsync f;
         Env.close_file f
       with exn ->
         Env.close_file f;
         raise exn))
    files
