(** Volatile chunk index (§3.1, §4).

    "The chunk index is implemented as a sorted array holding the
    minimal keys of all chunks. Whenever a new chunk is created (upon
    split), the index is rebuilt and the reference to the index is
    atomically flipped."

    Lookups are best-effort: the index may briefly lag the chunk list
    after a split, so callers validate coverage against the list and
    fall back to walking [next] pointers. *)

type t

val build : Chunk.t list -> t
(** The list must be sorted by min-key and start with the sentinel
    chunk (min key [""]); raises [Invalid_argument] if empty or
    unsorted. *)

val of_first_chunk : Chunk.t -> t
(** Build by walking the chunk list from its head. *)

val find : t -> string -> Chunk.t
(** Chunk with the greatest min-key [<= key]. *)

val size : t -> int
val chunks : t -> Chunk.t list
