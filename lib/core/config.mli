(** EvenDB configuration.

    Defaults correspond to the paper's setup (§5.1), scaled so that the
    defaults are sensible for test-sized datasets; the benchmark
    harness overrides sizes explicitly per experiment. *)

type persistence =
  | Async  (** fsync in the background/checkpoints only (default). *)
  | Sync  (** fsync every put before returning. *)

type t = {
  max_chunk_bytes : int;
      (** Split trigger: a munk whose compacted size exceeds this is
          split (paper: 10MB). *)
  munk_rebalance_bytes : int;
      (** Munk rebalance trigger on raw (uncompacted) size (paper: 7MB). *)
  munk_rebalance_appended : int;
      (** Munk rebalance trigger on the unsorted-region length, which
          keeps bypass paths short independently of byte size. *)
  funk_log_limit_no_munk : int;
      (** Funk rebalance trigger for munk-less chunks (paper: 2MB). *)
  funk_log_limit_with_munk : int;
      (** Funk rebalance trigger for chunks with munks (paper: 20MB) —
          high, so compaction happens almost exclusively in memory. *)
  bloom_split_factor : int;  (** Log bloom partitions (paper: 16). *)
  bloom_bits_per_key : int;
  munk_cache_capacity : int;  (** Max resident munks (LFU w/ decay). *)
  row_cache_tables : int;  (** Paper: 3 hash tables. *)
  row_cache_capacity_per_table : int;
  po_slots : int;
  persistence : persistence;
  checkpoint_every_puts : int;
      (** Take a checkpoint after this many puts (0 = only explicit
          {!Db.checkpoint} calls). Async mode only. *)
  sstable_block_bytes : int;
  collect_read_stats : bool;
      (** Record the per-component get-latency breakdown (Figure 9);
          small overhead on the read path. *)
  background_maintenance : bool;
      (** Run rebalances/splits on a dedicated maintenance domain (the
          paper's background threads) instead of inline on the put
          path. Default [false]: deterministic, good for tests. *)
  hot_prefix_len : int;
      (** Key-prefix length fed to the hot-prefix sketch on every
          get/put (default 8 — ["user" + 4 digits] under the YCSB key
          scheme, i.e. 10^6-key blocks). *)
  topk_capacity : int;
      (** Monitored-key capacity of the hot-prefix Space-Saving sketch
          (default 512); the sketch's error bound is [N/capacity] after
          [N] observations. *)
  heat_half_life_ns : int;
      (** Half-life of the per-chunk heat score's exponential decay
          (default 10s): heat halves after this much idle time. *)
  attr_enabled : bool;
      (** Per-op tail-latency cause attribution ({!Evendb_obs.Attr}).
          Default [true]; the overhead is a few clock reads per op. *)
  attr_slow_threshold_ns : int;
      (** Ops at least this slow are captured in the slow-op ring with
          their full cause breakdown (default 1ms). *)
  attr_slow_ring : int;  (** Slow-op ring capacity (default 256). *)
  attr_watchdog_share_ppm : int;
      (** Stall-watchdog trip point: a single cause exceeding this
          share (ppm) of recent op time fires a flight-recorder event
          (default 500_000 = 50%). 0 disables the watchdog. *)
  attr_watchdog_cooldown_ops : int;
      (** Minimum ops between two trips on the same cause. *)
  group_commit_max_batch : int;
      (** Max sync puts coalesced into one fsync by the group committer
          (default 64). [1] degenerates to one fsync per put — exactly
          the pre-group-commit behaviour. Sync mode only. *)
  group_commit_max_wait_ns : int;
      (** Upper bound on how long a commit leader waits for followers to
          join a forming batch (default 400µs, a couple of device
          fsyncs). Mostly a backstop: the leader publishes a batch
          target sized to the in-flight writer cohort, the joiner that
          fills it seals the batch immediately, and a solo writer
          (target 1) commits without waiting at all — the bound only
          matters when an expected writer stalls before joining. *)
  block_cache_bytes : int;
      (** Capacity of the shared sstable block cache installed on the
          store's environment (default 32MiB; 0 disables it and reads
          take the historical uncached path). Shards opened over one
          parent environment share a single budget. *)
  sorted_view_enabled : bool;
      (** Serve munk-less scans through the persistent sorted view
          (rebuilt at flush/eviction) instead of re-merging log +
          SSTable per scan (default [true]; disable for A/B). Scans
          fall back to the merge path whenever a view is missing or
          stale, so flipping this is always safe. *)
  snapshot_max_retained : int;
      (** Retention cap enforced after {!Db.snapshot} publishes: when
          more than this many snapshots exist, the oldest (lowest
          version) are dropped (default 0 = unlimited). *)
  repl_window : int;
      (** Replication shipping window: max change-stream records the
          shipper hands the follower between watermark syncs
          (default 64). *)
  repl_retry_backoff_ns : int;
      (** Pause before retrying a failed change-stream send
          (default 1ms; 0 = immediate retry). *)
  telemetry_interval_ns : int;
      (** Tick period of the continuous-telemetry sampler started by
          {!Db.serve_telemetry}/{!Db.start_sampler} (default 1s). Each
          tick cuts one windowed sample: counter deltas, gauge values
          and per-timer windowed p50/p95/p99 from histogram-bucket
          deltas. *)
  telemetry_ring : int;
      (** In-memory sample ring capacity (default 512 — ~8.5 minutes of
          history at the default interval), served by [/series]. *)
  telemetry_journal_segment_bytes : int;
      (** Rotation threshold of one on-disk metrics-journal segment
          under [telemetry/] (default 256KiB). *)
  telemetry_journal_segments : int;
      (** Segments retained on disk; the oldest is deleted when a
          rotation would exceed this (default 4). 0 disables the
          journal entirely (the in-memory ring still runs). *)
}

val default : t

val validate : t -> unit
(** Reject nonsensical knob values with [Invalid_argument] — e.g. a
    group-commit batch or formation wait below 1, an
    [attr_slow_ring] of 0, or a watchdog share above 1e6 ppm. Called by
    {!Db.open_} before touching storage. *)

val scaled : ?factor:int -> unit -> t
(** [scaled ~factor ()] divides all size thresholds by [factor]
    (default 64) for laptop-scale experiments, preserving the paper's
    ratios (chunk : rebalance : log-limits = 10 : 7 : 2 / 20). *)
