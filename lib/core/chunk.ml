open Evendb_util
open Evendb_bloom
open Evendb_munk

type t = {
  chunk_id : int;
  min_key_v : string;
  next_ref : t option Atomic.t;
  funk_ref : Funk.t Atomic.t;
  munk_ref : Munk.t option Atomic.t;
  bloom_ref : Partitioned_bloom.t option Atomic.t;
  bloom_mutex : Mutex.t;
  lock : Rwlock.t;
  funk_change : Mutex.t;
  counter : int Atomic.t;
  retired_flag : bool Atomic.t;
}

let create_inheriting ~id ~min_key ~funk ~munk ~counter =
  {
    chunk_id = id;
    min_key_v = min_key;
    next_ref = Atomic.make None;
    funk_ref = Atomic.make funk;
    munk_ref = Atomic.make munk;
    bloom_ref = Atomic.make None;
    bloom_mutex = Mutex.create ();
    lock = Rwlock.create ();
    funk_change = Mutex.create ();
    counter = Atomic.make counter;
    retired_flag = Atomic.make false;
  }

let create ~id ~min_key ~funk ~munk = create_inheriting ~id ~min_key ~funk ~munk ~counter:0

let id t = t.chunk_id
let min_key t = t.min_key_v
let next t = Atomic.get t.next_ref
let set_next t n = Atomic.set t.next_ref n
let funk t = Atomic.get t.funk_ref
let set_funk t f = Atomic.set t.funk_ref f
let munk t = Atomic.get t.munk_ref
let set_munk t m = Atomic.set t.munk_ref m
let retired t = Atomic.get t.retired_flag
let retire t = Atomic.set t.retired_flag true
let rebalance_lock t = t.lock
let funk_change_mutex t = t.funk_change
let next_counter t = Atomic.fetch_and_add t.counter 1
let counter_base t = Atomic.get t.counter

let bloom_note_put t ~key ~log_offset =
  match Atomic.get t.bloom_ref with
  | None -> ()
  | Some _ ->
    Mutex.lock t.bloom_mutex;
    (* Re-read under the mutex: the bloom may have been dropped by a
       concurrent munk load. *)
    (match Atomic.get t.bloom_ref with
    | Some bloom -> Partitioned_bloom.add bloom ~key ~log_offset
    | None -> ());
    Mutex.unlock t.bloom_mutex

let bloom_segments t key =
  Mutex.lock t.bloom_mutex;
  let result =
    match Atomic.get t.bloom_ref with
    | None -> None
    | Some bloom -> Some (Partitioned_bloom.segments_maybe_containing bloom key)
  in
  Mutex.unlock t.bloom_mutex;
  result

let set_bloom t b =
  Mutex.lock t.bloom_mutex;
  Atomic.set t.bloom_ref b;
  Mutex.unlock t.bloom_mutex

let covers t ~key =
  String.compare t.min_key_v key <= 0
  &&
  match next t with
  | None -> true
  | Some nxt -> String.compare key (min_key nxt) < 0
