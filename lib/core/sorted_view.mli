(** REMIX-style persistent sorted view of one funk.

    A small sidecar file ([funk_%08d.view]) that persists the merge
    order of a funk's sstable and log so cold scans walk one cursor
    over pre-sorted tokens instead of re-merging (fold + sort) the log
    on every scan. Token [0] means "next sstable entry in file order";
    token [k > 0] means "the log record framed at byte [k-1]". Key
    fences every ~256 tokens support range seeks via
    {!Sstable.Reader.iter_from_nth}.

    Views are derived data: they are rebuilt whenever a funk is
    created or its munk is evicted, validated end to end at {!load}
    (trailer CRC, sstable identity, covered-log-prefix CRC), and
    re-verified record by record while scanning — any disagreement
    raises {!Stale} and the caller falls back to the merge path. Log
    records appended after the build are merged in at scan time from
    the uncovered suffix. Losing or corrupting a view never loses
    data; repair is always regeneration. *)

open Evendb_storage
open Evendb_sstable

type t

exception Stale
(** The view no longer matches the funk underneath it (mid-walk CRC
    disagreement, sstable exhausted early, log truncated). Raised
    lazily by the iterator {!cursor} returns. *)

val build :
  Env.t -> sst:Sstable.Reader.t -> log_name:string -> view_name:string -> unit
(** Merge the sstable with the log's current contents and atomically
    publish the view (tmp + fsync + rename; an interrupted build
    leaves only a [.tmp] the scrubber sweeps). The caller must hold
    the funk exclusively — a log append racing the build would be
    covered by [log_crc] but not by a token. Raises {!Env.Io_error}
    on storage failure (after deleting the tmp). *)

val load :
  Env.t -> sst:Sstable.Reader.t -> log_name:string -> view_name:string -> t option
(** Read and validate the view. [None] if the file is missing,
    corrupt, or describes a different sstable/log state (stale).
    Never raises on bad bytes — a view failing validation is simply
    not used. *)

val cursor :
  t -> Env.t -> sst:Sstable.Reader.t -> log_name:string -> low:string -> high:string ->
  Evendb_util.Kv_iter.t
(** Sorted iterator over the funk's entries with [low <= key <= high]
    (inclusive), in {!Evendb_util.Kv_iter.compare_entries} order:
    the token walk (seeked via fences) merged with the sorted
    uncovered log suffix. Pulls may raise {!Stale}; the caller should
    materialise the iterator before consuming it into results. *)

val well_formed : string -> bool
(** Structural self-check of raw view bytes (magic + trailer CRC +
    parseable layout) — the scrubber's test. Staleness is NOT a
    structural failure: a valid view of an older log state is healthy
    derived data awaiting rebuild. *)

val token_count : t -> int
val covered_log_bytes : t -> int
