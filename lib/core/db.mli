(** EvenDB: a persistent ordered key-value store optimized for spatial
    locality (the paper's core contribution).

    Data is range-partitioned into chunks. Each chunk is backed by a
    funk on disk (SSTable + per-chunk log — there is no global WAL) and
    may be cached wholesale in memory as a munk. Hot chunks are
    compacted almost exclusively in memory; cold chunks' funk logs are
    merged into their SSTables only when the log exceeds a (larger or
    smaller, munk-dependent) threshold, which keeps write amplification
    low (§2).

    [put], [get] and [scan] are atomic under arbitrary concurrency
    (multi-domain): gets are wait-free, puts synchronize with rebalance
    through a shared/exclusive per-chunk lock, and scans obtain
    snapshots from a global version, waiting only for overlapping
    pending puts (§3.2–§3.3).

    Persistence is asynchronous by default: a checkpoint fixes a global
    version below which everything is durable; after a crash the store
    recovers to that consistent prefix, ignoring newer on-disk records
    via epoch-tagged versions (§3.5). With [Config.persistence = Sync],
    every put fsyncs its funk log before returning. *)

open Evendb_storage

type t

(** {2 Lifecycle} *)

val open_ : ?config:Config.t -> ?committer:Group_commit.t -> Env.t -> t
(** Open (or create) the database stored in [env]. Runs recovery if
    funks from a previous incarnation are present: chunk metadata is
    rebuilt from the funk files (no log replay); data loads lazily.
    Raises [Invalid_argument] on corrupted metadata files.

    [committer] supplies an external group committer to use instead of
    a store-private one, so several stores can coalesce their sync puts
    into shared fsync batches (the sharded front end passes one
    committer to every shard). Only consulted when
    [config.persistence = Sync]; ignored otherwise. *)

val open_dir : ?config:Config.t -> string -> t
(** Convenience: [open_] over a fresh disk environment rooted at the
    directory. *)

val close : t -> unit
(** Checkpoint (async mode) and release all files. Idempotent. *)

(** {2 Operations} *)

val put : t -> string -> string -> unit
val get : t -> string -> string option
val delete : t -> string -> unit

val scan : t -> ?limit:int -> low:string -> high:string -> unit -> (string * string) list
(** Atomic range query: all pairs with [low <= key <= high] (at most
    [limit]) from one consistent snapshot. *)

val checkpoint : t -> unit
(** Complete a consistency checkpoint: obtain a snapshot version, wait
    for overlapping puts, fsync everything, persist the checkpoint
    marker (§3.5). Serialized internally. *)

(** {2 Point-in-time snapshots}

    [snapshot] publishes a read-only view of the store at a consistent
    version cut under the ["snapshots/<id>/"] namespace of the store's
    environment: the funk set is pinned and copied together with the
    manifest, checkpoint and recovery table, and a CRC-trailered
    [COMPLETE] marker is written last (tmp + fsync + rename) — a crash
    mid-publish leaves no marker and recovery sweeps the debris. Read
    a published snapshot with {!Snapshot.open_reader}; back it up with
    {!Backup}. *)

val snapshot : t -> id:string -> Snapshot.info
(** Publish snapshot [id]. Raises [Invalid_argument] if [id] is
    malformed (see {!Snapshot.validate_id}) or already exists. Enforces
    [Config.snapshot_max_retained] by dropping the oldest snapshots
    after publishing. *)

val list_snapshots : t -> Snapshot.info list
(** Published snapshots, oldest first. *)

val drop_snapshot : t -> id:string -> unit
(** Delete snapshot [id]; no-op when absent. *)

(** {2 Fencing (failover)}

    Promotion fences the deposed primary: a durable [FENCED] marker
    makes every subsequent [put]/[delete] — in this process and after
    any restart — raise {!Fenced}, while reads stay available. *)

exception Fenced

val fence : t -> unit
val fenced : t -> bool
val unfence : t -> unit
(** Operator override: delete the marker and accept writes again. *)

val set_commit_hook : t -> (Evendb_util.Kv_iter.entry -> unit) option -> unit
(** Install (or clear) the post-commit tap: called once per
    [put]/[delete] with the appended entry, after the write is acked —
    under [Sync] persistence that is after the group-commit fsync
    covering it, so a hook never observes unacked data. The hook runs
    inline on the put path and must be fast and non-blocking; its time
    is attributed to the [repl_ship] cause. *)

(** {2 Maintenance} *)

val maintain : t -> unit
(** Run every pending rebalance/split to quiescence (tests and phase
    boundaries in benchmarks; normal operation triggers maintenance
    inline on the put path). *)

val evict_munk : t -> string -> bool
(** [evict_munk t key] drops the munk of the chunk covering [key] (if
    any), rebuilding its bloom filter — exposed for cache experiments;
    returns whether a munk was evicted. *)

(** {2 Introspection (benchmark harness)} *)

val env : t -> Env.t
val config : t -> Config.t

val chunk_count : t -> int
val munk_count : t -> int

val logical_bytes_written : t -> int
(** Sum of key+value sizes accepted through [put]/[delete]. *)

val write_amplification : t -> float
(** Physical bytes written (from the env's {!Io_stats}) over
    {!logical_bytes_written}. *)

val read_stats : t -> Read_stats.summary
(** Per-component get breakdown (Figure 9); detailed latencies only
    when [Config.collect_read_stats]. *)

val chunk_weights : t -> (string * int * bool) list
(** Per-chunk (min-key, approximate live bytes, has-munk) — diagnostic
    and benchmark introspection. *)

val log_space : t -> int
(** Total bytes currently held in funk logs (Figure 4's "EvenDB Log"
    series). *)

val current_version : t -> int
val current_epoch : t -> int

(** {2 Observability} *)

val obs : t -> Evendb_obs.Obs.t
(** The instance's metrics registry and trace: op-latency timers
    ([db.put]/[db.get]/[db.delete]/[db.scan]), funk log-append, flush
    and merge counters, cache and per-file-kind I/O probes, and spans
    around maintenance ([munk_rebalance], [chunk_split],
    [cold_funk_rebalance], [funk_flush], [chunk_merge], [checkpoint],
    [recovery]) with bytes/entries attributes. *)

val attr : t -> Evendb_obs.Attr.t
(** Per-op tail-latency cause attribution (see {!Evendb_obs.Attr}):
    every put/get/delete/scan decomposes its wall time into lock-wait,
    log-append, fsync, disk-read, rebalance and compaction stalls; ops
    over [attr_slow_threshold_ns] land in a slow-op ring with their
    breakdown, and the stall watchdog ticks the flight recorder when a
    single cause dominates recent op time. Configured by the [attr_*]
    fields of {!Config.t}. *)

val metrics_dump : t -> [ `Json | `Prometheus ] -> string
(** Render the registry with the corresponding {!Evendb_obs.Obs}
    exporter. *)

(** {2 Spatial-locality telemetry}

    The paper's bet is that a few key ranges absorb most traffic; these
    APIs make that skew — and whether the munk cache tracks it —
    directly observable. *)

type chunk_stat = {
  cs_id : int;
  cs_min_key : string;
  cs_munk_resident : bool;
  cs_resident_bytes : int;  (** munk bytes when resident, else 0 *)
  cs_stat : Chunk_stats.stat;
}

val chunk_stats : t -> chunk_stat list
(** One entry per live chunk, in key order: access counters, cache-hit
    split, maintenance counts, and the exponentially-decayed heat score
    (see {!Chunk_stats}), joined with residency info. *)

val hot_prefixes : t -> (string * int * int) list * int
(** The hot-prefix Space-Saving sketch, fed the leading
    [Config.hot_prefix_len] bytes of every get/put key:
    [(entries, total)] where entries are [(prefix, count_lo, count_hi)]
    sorted hottest-first (see {!Evendb_obs.Topk.entries}) and [total]
    is the number of observations. *)

val dump_trace : t -> string
(** The span ring buffer as Chrome trace-event JSON
    ([chrome://tracing]/Perfetto-loadable); see
    {!Evendb_obs.Obs.to_chrome_trace}. *)

val recorder : t -> Evendb_obs.Obs.Recorder.t
(** The instance's flight recorder: one frame of metric deltas is cut
    automatically every 4096 puts; tick it explicitly for finer
    resolution. *)

(** {2 Continuous telemetry}

    Opt-in (nothing is spawned by {!open_}): {!start_sampler} runs the
    windowed {!Evendb_telemetry.Sampler} on a background domain at
    [Config.telemetry_interval_ns], journaling each sample under the
    environment's [telemetry/] namespace (unless
    [Config.telemetry_journal_segments = 0]); {!serve_telemetry}
    additionally serves the live store over loopback HTTP. {!close}
    tears both down. *)

val uptime_ns : t -> int
(** Monotonic nanoseconds since this handle was opened. *)

val start_sampler : t -> Evendb_telemetry.Sampler.t
(** Start (or return the already-running) continuous sampler for this
    instance. Its per-tick gauges include [db.uptime_ns] and the
    hottest key prefixes as [hot.<prefix>]. *)

val telemetry_sampler : t -> Evendb_telemetry.Sampler.t option
(** The running sampler, if {!start_sampler}/{!serve_telemetry} was
    called. *)

val serve_telemetry : ?host:string -> ?port:int -> t -> int
(** Start the sampler and an HTTP endpoint (default: ephemeral port on
    [127.0.0.1]; returns the bound port) serving [/metrics]
    (Prometheus), [/stat.json], [/series?last=N] (windowed samples),
    [/trace] (Chrome trace events) and [/slow] (slow-op JSONL).
    Idempotent: a second call returns the existing port. *)

val stop_telemetry : t -> unit
(** Stop the endpoint and sampler and close the journal. Idempotent;
    also run by {!close}. *)

val stat_json : t -> string
(** One JSON document for [evendb stat]/[/stat.json]: [uptime_ns],
    per-op lifetime [count] and derived [per_s] rates, the full
    metrics registry ({!Evendb_obs.Obs.to_json}) and the attribution
    state ({!Evendb_obs.Attr.to_json}). *)

val reset_metrics : t -> unit
(** Zero every resettable statistic in one shot: the {!obs} registry
    (counters/timers/trace — probes stay registered), read stats, the
    per-chunk stats table, the hot-prefix sketch, and the flight
    recorder. Structural state (chunks, munks, caches) is untouched. *)

val metrics_residue : t -> string list
(** Names of resettable metrics that are currently non-zero (counters,
    timers, span aggregates, per-chunk fields, sketch total). Empty
    right after {!reset_metrics} on a quiescent store — regression
    guard for reset coverage of new tables. *)
