let seq_bits = 46
let max_epoch = (1 lsl 16) - 1
let max_seq = (1 lsl seq_bits) - 1

let pack ~epoch ~seq =
  if epoch < 0 || epoch > max_epoch then invalid_arg "Version.pack: epoch out of range";
  if seq < 0 || seq > max_seq then invalid_arg "Version.pack: seq out of range";
  (epoch lsl seq_bits) lor seq

let epoch v = v lsr seq_bits
let seq v = v land max_seq
let first_of_epoch e = pack ~epoch:e ~seq:0
